//! # lqcd — *Scaling Lattice QCD beyond 100 GPUs*, in Rust
//!
//! A pure-Rust reproduction of Babich, Clark, Joó, Shi, Brower &
//! Gottlieb, SC '11 (arXiv:1109.2935): multi-dimensionally partitioned
//! Wilson-clover and improved-staggered (asqtad) Dirac operators, the
//! additive-Schwarz domain-decomposed GCR solver (GCR-DD) with
//! single/half mixed precision, multi-shift CG, and a calibrated
//! simulated-GPU-cluster performance model that regenerates every
//! evaluation figure of the paper.
//!
//! ## Quick start
//!
//! ```
//! use lqcd::prelude::*;
//!
//! // A small Wilson-clover problem, solved with GCR-DD on a 2×2 grid of
//! // simulated "GPUs" (threads).
//! let problem = WilsonProblem::small();
//! let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), problem.global).unwrap();
//! let outcomes = run_wilson_gcr_dd(&problem, grid, false).unwrap();
//! assert!(outcomes.iter().all(|o| o.stats.converged));
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! figure-regeneration harness. The crate is a facade: the implementation
//! lives in the `lqcd-*` workspace members re-exported below.

pub use lqcd_comms as comms;
pub use lqcd_core as core;
pub use lqcd_dirac as dirac;
pub use lqcd_field as field;
pub use lqcd_gauge as gauge;
pub use lqcd_lattice as lattice;
pub use lqcd_perf as perf;
pub use lqcd_solvers as solvers;
pub use lqcd_su3 as su3;
pub use lqcd_tune as tune;
pub use lqcd_util as util;

/// The items most programs need.
pub mod prelude {
    pub use lqcd_comms::{
        run_on_grid, run_on_grid_fallible, run_world_fallible, CommConfig, Communicator, FaultPlan,
        FaultRule, FaultyComm, MsgClass, SharedComm, SingleComm, ThreadedComm,
    };
    pub use lqcd_core::{
        run_staggered_multishift, run_staggered_multishift_tuned, run_wilson_bicgstab,
        run_wilson_gcr_dd, run_wilson_gcr_dd_resilient, run_wilson_gcr_dd_supervised,
        run_wilson_gcr_dd_tuned, tune_wilson, PrecisionRung, StaggeredProblem, SupervisedOutcome,
        SupervisorConfig, WilsonProblem,
    };
    pub use lqcd_dirac::{BoundaryMode, StaggeredOp, WilsonCloverOp};
    pub use lqcd_gauge::{average_plaquette, AsqtadLinks, GaugeField};
    pub use lqcd_lattice::{Dims, Parity, PartitionScheme, ProcessGrid, SubLattice};
    pub use lqcd_perf::{edge, simulate_dslash, OperatorKind, Precision, Recon};
    pub use lqcd_solvers::{
        bicgstab, cg, cgnr, gcr, lanczos_extremes, mr, multishift_cg, GcrParams, IdentityPrecond,
        SchwarzMR, SolveStats, SolverSpace, Spectrum,
    };
    pub use lqcd_su3::{ColorVector, Su3, WilsonSpinor};
    pub use lqcd_tune::{TuneCache, TuneParam, TunePolicy};
    pub use lqcd_util::rng::SeedTree;
    pub use lqcd_util::{Complex, Error, Real, Result};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        use crate::prelude::*;
        let d = Dims::symm(8, 16);
        assert_eq!(d.volume(), 8 * 8 * 8 * 16);
        let _ = edge();
    }
}

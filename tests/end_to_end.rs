//! Workspace-level integration tests through the `lqcd` facade: whole
//! distributed solves, cross-scheme solution equivalence, and the
//! mixed-precision stack end to end.

use lqcd::prelude::*;

#[test]
fn gcr_dd_solution_is_partition_invariant() {
    // The same physical problem solved on different process grids must
    // produce the same solution (global norms compared; sitewise
    // equivalence is covered in the dirac/solver crates).
    let problem = WilsonProblem::small();
    let mut norms = Vec::new();
    for shape in [Dims([1, 1, 1, 1]), Dims([1, 1, 1, 2]), Dims([1, 1, 2, 2]), Dims([1, 2, 2, 2])] {
        let grid = ProcessGrid::new(shape, problem.global).unwrap();
        let out = run_wilson_gcr_dd(&problem, grid, false).unwrap();
        assert!(out.iter().all(|o| o.stats.converged), "{shape:?} failed to converge");
        norms.push(out[0].solution_norm2);
    }
    for w in norms.windows(2) {
        let rel = (w[0] - w[1]).abs() / w[0];
        assert!(rel < 1e-7, "solution norm varies across grids: {norms:?}");
    }
}

#[test]
fn bicgstab_matches_gcr_dd_distributed() {
    let problem = WilsonProblem::small();
    let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), problem.global).unwrap();
    let b = run_wilson_bicgstab(&problem, grid.clone()).unwrap();
    let g = run_wilson_gcr_dd(&problem, grid, false).unwrap();
    let rel = (b[0].solution_norm2 - g[0].solution_norm2).abs() / b[0].solution_norm2;
    assert!(rel < 1e-6, "different solvers, different answers: {rel}");
}

#[test]
fn single_half_half_production_configuration() {
    // The paper's §8.1 configuration end to end: single-precision
    // restarts, half-precision Krylov space and Schwarz blocks.
    let mut problem = WilsonProblem::small();
    problem.tol = 3e-5;
    problem.gcr.tol = 3e-5;
    let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), problem.global).unwrap();
    let out = run_wilson_gcr_dd(&problem, grid, true).unwrap();
    for (rank, o) in out.iter().enumerate() {
        assert!(o.stats.converged, "rank {rank}: {:?}", o.stats);
        assert!(o.stats.residual <= 3e-5);
        assert!(o.dirichlet_matvecs > 0, "half-precision blocks never solved");
    }
}

#[test]
fn staggered_multishift_full_pipeline() {
    let problem = StaggeredProblem::small();
    let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), problem.global).unwrap();
    let out = run_staggered_multishift(&problem, grid).unwrap();
    let o = &out[0];
    assert!(o.stats.converged);
    assert_eq!(o.solution_norms.len(), problem.shifts.len());
    // Every rank agrees on every global norm.
    for r in 1..out.len() {
        for (a, b) in o.solution_norms.iter().zip(&out[r].solution_norms) {
            assert!((a - b).abs() < 1e-9 * a.max(1.0));
        }
    }
}

#[test]
fn partition_schemes_produce_valid_grids_for_paper_volumes() {
    // Every (scheme, GPU count) combination used in Figs. 5–10 must be
    // constructible on the paper's volumes with even local extents.
    let wilson = Dims::symm(32, 256);
    for gpus in [4usize, 8, 16, 32, 64, 128, 256] {
        let g = PartitionScheme::XYZT.grid(wilson, gpus).unwrap();
        assert_eq!(g.num_ranks(), gpus);
    }
    let staggered = Dims::symm(64, 192);
    for scheme in [PartitionScheme::ZT, PartitionScheme::YZT, PartitionScheme::XYZT] {
        for gpus in [32usize, 64, 128, 256] {
            let g = scheme.grid(staggered, gpus).unwrap();
            assert_eq!(g.num_ranks(), gpus);
            // Deep enough for the 3-hop Naik stencil everywhere.
            for mu in 0..4 {
                if g.shape.0[mu] > 1 {
                    assert!(g.local.0[mu] >= 3, "{scheme:?}/{gpus}: dim {mu} too thin");
                }
            }
        }
    }
}

//! Regression tests pinning the *shape* of every evaluation figure: who
//! wins, by roughly what factor, and where the crossovers fall. These are
//! the workspace's contract with the paper.

use lqcd::perf::solver_model::{StaggeredIterModel, WilsonIterModel};
use lqcd::perf::sweep;
use lqcd::prelude::*;

#[test]
fn fig5_contract() {
    let pts = sweep::fig5(&edge()).unwrap();
    let v = |prec: &str, gpus: usize| {
        pts.iter().find(|p| p.precision == prec && p.gpus == gpus).unwrap().gflops_per_gpu
    };
    // Strong-scaling departure beyond 32 GPUs: 8→32 loses less than half
    // per GPU, 32→256 loses much more.
    assert!(v("SP", 32) > 0.55 * v("SP", 8));
    assert!(v("SP", 256) < 0.35 * v("SP", 32));
    // HP advantage ≈ 1.5× at small scale, diminished at 256.
    let small = v("HP", 8) / v("SP", 8);
    let large = v("HP", 256) / v("SP", 256);
    assert!(small > 1.4 && large < small - 0.15, "HP/SP: {small} -> {large}");
    // Aggregate throughput still rises with GPUs (it's the per-GPU curve
    // that collapses).
    let total = |gpus: usize| v("SP", gpus) * gpus as f64;
    assert!(total(256) > total(32));
}

#[test]
fn fig6_contract() {
    let pts = sweep::fig6(&edge()).unwrap();
    let v = |scheme: &str, gpus: usize, prec: &str| {
        pts.iter()
            .find(|p| p.scheme == scheme && p.gpus == gpus && p.precision == prec)
            .map(|p| p.gflops_per_gpu)
    };
    // "the XYZT partitioning scheme, which has the worst single-GPU
    // performance, obtains the best performance on 256 GPUs" — at low
    // counts fewer partitioned dims win, at 256 XYZT is on top.
    let (zt32, xyzt32) = (v("ZT", 32, "SP").unwrap(), v("XYZT", 32, "SP").unwrap());
    assert!(zt32 >= xyzt32, "at 32 GPUs ZT should lead: {zt32} vs {xyzt32}");
    let (zt256, xyzt256) = (v("ZT", 256, "SP").unwrap(), v("XYZT", 256, "SP").unwrap());
    assert!(xyzt256 > zt256, "at 256 GPUs XYZT should lead: {xyzt256} vs {zt256}");
    // SP ≈ 2× DP where both exist (bandwidth-bound kernels).
    let ratio = v("XYZT", 64, "SP").unwrap() / v("XYZT", 64, "DP").unwrap();
    assert!((1.5..2.5).contains(&ratio), "SP/DP {ratio}");
}

#[test]
fn fig7_fig8_contract() {
    let pts = sweep::fig7_fig8(&edge(), &WilsonIterModel::default()).unwrap();
    let tts = |solver: &str, gpus: usize| {
        pts.iter().find(|p| p.solver == solver && p.gpus == gpus).unwrap().time_to_solution
    };
    // Crossover: BiCGstab superior (or equal) at ≤32 GPUs, GCR-DD wins
    // beyond, with the improvement growing toward the paper's 1.5–1.6×.
    assert!(tts("BiCGstab", 32) <= tts("GCR-DD", 32) * 1.05);
    for gpus in [64usize, 128, 256] {
        let win = tts("BiCGstab", gpus) / tts("GCR-DD", gpus);
        assert!(win > 1.25, "GCR-DD should win at {gpus}: {win}");
    }
    // BiCGstab stops scaling: ≤25 % total gain from 64 → 256.
    assert!(tts("BiCGstab", 64) / tts("BiCGstab", 256) < 1.25);
    // GCR-DD exceeds 10 sustained Tflops at ≥128 GPUs (§9.1).
    let tf =
        |gpus: usize| pts.iter().find(|p| p.solver == "GCR-DD" && p.gpus == gpus).unwrap().tflops;
    assert!(tf(128) >= 10.0 && tf(256) >= 10.0);
}

#[test]
fn fig9_contract() {
    let pts = sweep::fig9();
    // All three machines present with multiple core counts, peaking in
    // the paper's 10–17 Tflops band above 16 384 cores.
    for name in ["Intrepid BG/P", "Jaguar XT4", "Jaguar XT5"] {
        assert!(pts.iter().filter(|p| p.machine == name).count() >= 3, "{name} missing");
    }
    let peak = pts.iter().map(|p| p.tflops).fold(0.0f64, f64::max);
    assert!((10.0..20.0).contains(&peak));
    let big = pts.iter().filter(|p| p.cores > 16_384).map(|p| p.tflops).fold(0.0f64, f64::max);
    assert!(big >= 10.0, "10+ Tflops band should be reached above 16K cores");
}

#[test]
fn fig10_contract() {
    let pts = sweep::fig10(&edge(), &StaggeredIterModel::default()).unwrap();
    let v = |scheme: &str, gpus: usize| {
        pts.iter().find(|p| p.scheme == scheme && p.gpus == gpus).map(|p| p.total_tflops).unwrap()
    };
    // Reasonable strong scaling 64→256 (paper: 2.56×) and a total in the
    // few-Tflops range at 256 (paper: 5.49).
    let speedup = v("XYZT", 256) / v("XYZT", 64);
    assert!((1.7..3.2).contains(&speedup), "64→256 speedup {speedup}");
    assert!((3.0..9.0).contains(&v("XYZT", 256)));
    // Multi-dimensional partitioning beats ZT at 256 GPUs.
    assert!(v("XYZT", 256) > v("ZT", 256));
}

#[test]
fn in_text_claims() {
    // §1: LQCD needs ≈ 1 byte/flop in single precision.
    let cfg = lqcd::perf::cost::OpConfig {
        kind: OperatorKind::Wilson,
        precision: Precision::Single,
        recon: Recon::None,
    };
    let intensity = cfg.flops_per_site() / cfg.bytes_per_site();
    assert!((0.7..1.3).contains(&intensity));
    // §9.1: a single GPU at the 256-GPU local volume is ≈ 2× slower than
    // at the 16-GPU local volume.
    let m = edge();
    let ratio = m.eff_bandwidth(262_144) / m.eff_bandwidth(16_384);
    assert!((1.6..2.4).contains(&ratio));
    // §9.2: one GPU ≈ 74 Kraken cores (942 Gflops at 4096 cores).
    let per_core = lqcd::perf::capability::KRAKEN_GFLOPS_AT_4096 / 4096.0;
    let pts = sweep::fig10(&m, &StaggeredIterModel::default()).unwrap();
    let gpu_gflops = pts
        .iter()
        .find(|p| p.scheme == "XYZT" && p.gpus == 256)
        .map(|p| p.total_tflops * 1000.0 / 256.0)
        .unwrap();
    let cores_per_gpu = gpu_gflops / per_core;
    assert!((40.0..110.0).contains(&cores_per_gpu), "1 GPU ≈ {cores_per_gpu:.0} cores");
}

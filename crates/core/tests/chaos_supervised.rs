//! Chaos tests for the supervised checkpoint/restart driver: a rank is
//! killed mid-solve by fault injection and the supervisor must tear the
//! world down, rebuild it, restore the newest common checkpoint, and
//! resume to the same tolerance an undisturbed solve reaches.

use lqcd_comms::{CommConfig, FaultPlan, FaultRule};
use lqcd_core::drivers::{run_wilson_gcr_dd, PrecisionRung};
use lqcd_core::supervise::{run_wilson_gcr_dd_supervised, SupervisorConfig};
use lqcd_core::WilsonProblem;
use lqcd_lattice::{Dims, ProcessGrid};
use lqcd_util::{BreakdownKind, Error};
use std::path::PathBuf;
use std::time::Duration;

/// The small chaos problem: single-precision-friendly tolerance and a
/// short GCR cycle so restart boundaries (= checkpoint opportunities)
/// come up every few outer iterations.
fn chaos_problem() -> (WilsonProblem, ProcessGrid) {
    let mut p = WilsonProblem::small();
    p.tol = 3e-5;
    p.gcr.tol = 3e-5;
    p.gcr.kmax = 8;
    let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), p.global).unwrap();
    (p, grid)
}

/// A fresh checkpoint root per test so suites can run concurrently.
fn ckpt_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lqcd-chaos-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn fault_free_supervised_solve_matches_plain_driver() {
    let (p, grid) = chaos_problem();
    let dir = ckpt_dir("fault-free");
    let plain = run_wilson_gcr_dd(&p, grid.clone(), false).unwrap();
    let sup = SupervisorConfig::new(&dir);
    let out = run_wilson_gcr_dd_supervised(
        &p,
        grid,
        PrecisionRung::Double,
        CommConfig::resilient(),
        &sup,
        |_| None,
    );
    assert_eq!(out.attempts, 1, "an undisturbed solve needs exactly one world launch");
    assert_eq!(out.resumed_generations, vec![None]);
    for (slot, r) in out.outcomes.iter().enumerate() {
        let o = r.as_ref().unwrap_or_else(|e| panic!("rank {slot}: {e}"));
        assert!(o.stats.converged);
        assert!(o.stats.residual <= p.tol);
        assert_eq!(o.stats.supervisor_restarts, 0);
        assert!(!o.stats.resumed_from_checkpoint);
        // Checkpoints were cut at the restart boundaries along the way.
        assert!(o.stats.checkpoints_written > 0, "rank {slot} wrote no checkpoints");
        // Identical Krylov trajectory to the unsupervised driver.
        let rel =
            (o.solution_norm2 - plain[slot].solution_norm2).abs() / plain[slot].solution_norm2;
        assert!(rel < 1e-10, "rank {slot} diverged from the plain driver: {rel}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The headline chaos test: rank 2 is killed mid-solve on the first
/// world launch, after checkpoints exist. The supervisor rebuilds the
/// world, every rank restores the newest *common* checkpoint generation,
/// and the resumed solve converges to the same tolerance as an
/// uninterrupted one — with the restart and the resume recorded in the
/// per-rank [`SolveStats`].
#[test]
fn rank_death_mid_solve_is_supervised_back_to_convergence() {
    let (p, grid) = chaos_problem();
    let dir = ckpt_dir("rank-death");
    let config = CommConfig::resilient().with_timeout(Duration::from_secs(2));
    let sup = SupervisorConfig::new(&dir);
    // Kill rank 2 well into the solve (past several restart boundaries)
    // on the first launch only: FaultPlan counters are per-world, so the
    // supervisor must be handed a fresh, fault-free plan for the retry.
    let started = std::time::Instant::now();
    let out =
        run_wilson_gcr_dd_supervised(&p, grid, PrecisionRung::Double, config, &sup, |attempt| {
            (attempt == 0).then(|| {
                FaultPlan::new(47).with_rule(FaultRule::die_rank().on_rank(2).after(62).times(1))
            })
        });
    assert!(started.elapsed() < Duration::from_secs(120), "supervision must not hang");
    assert_eq!(out.attempts, 2, "one death, one supervised restart");
    assert_eq!(out.resumed_generations[0], None);
    let resumed = out.resumed_generations[1]
        .expect("the retry must resume from a checkpoint, not start from scratch");
    assert!(resumed >= 1);
    for (slot, r) in out.outcomes.iter().enumerate() {
        let o = r.as_ref().unwrap_or_else(|e| panic!("rank {slot}: {e}"));
        assert!(o.stats.converged, "rank {slot}: {:?}", o.stats);
        assert!(
            o.stats.residual <= p.tol,
            "rank {slot} resumed solve missed tolerance: {} > {}",
            o.stats.residual,
            p.tol
        );
        assert_eq!(o.stats.supervisor_restarts, 1, "rank {slot}");
        assert!(o.stats.resumed_from_checkpoint, "rank {slot}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A death so early that no checkpoint exists yet: the supervisor still
/// recovers — the retry simply starts from a zero guess.
#[test]
fn death_before_any_checkpoint_restarts_from_scratch() {
    let (p, grid) = chaos_problem();
    let dir = ckpt_dir("early-death");
    let config = CommConfig::resilient().with_timeout(Duration::from_secs(2));
    let sup = SupervisorConfig::new(&dir);
    let out =
        run_wilson_gcr_dd_supervised(&p, grid, PrecisionRung::Double, config, &sup, |attempt| {
            (attempt == 0).then(|| {
                FaultPlan::new(53).with_rule(FaultRule::die_rank().on_rank(1).after(2).times(1))
            })
        });
    assert_eq!(out.attempts, 2);
    assert_eq!(out.resumed_generations, vec![None, None]);
    for (slot, r) in out.outcomes.iter().enumerate() {
        let o = r.as_ref().unwrap_or_else(|e| panic!("rank {slot}: {e}"));
        assert!(o.stats.converged);
        assert_eq!(o.stats.supervisor_restarts, 1);
        assert!(!o.stats.resumed_from_checkpoint, "no checkpoint existed to resume from");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression for the per-attempt wall-clock reset: the watchdog budget
/// covers the *logical* solve, so a solve that exhausts it across two
/// supervised attempts must break down with `WallClock` — not get a
/// fresh budget per world launch. Attempt 0 burns well past the budget
/// (a 500 ms rank stall against a 200 ms budget); with the carry in
/// place, attempt 1's watchdogs inherit that elapsed time and trip at
/// their very first observation, deterministically.
#[test]
fn wall_clock_budget_spans_supervised_attempts() {
    let (p, grid) = chaos_problem();
    let dir = ckpt_dir("wall-clock-carry");
    let config = CommConfig::resilient().with_timeout(Duration::from_secs(2));
    let mut sup = SupervisorConfig::new(&dir);
    sup.max_restarts = 1;
    sup.watchdog.wall_clock = Some(Duration::from_millis(200));
    let out = run_wilson_gcr_dd_supervised(&p, grid, PrecisionRung::Double, config, &sup, |a| {
        (a == 0).then(|| {
            FaultPlan::new(77).with_rule(
                FaultRule::stall_rank(Duration::from_millis(500)).on_rank(2).after(10).times(1),
            )
        })
    });
    assert_eq!(out.attempts, 2, "attempt 0 trips the budget, attempt 1 inherits it");
    for (slot, r) in out.outcomes.iter().enumerate() {
        match r {
            Err(Error::Breakdown { kind: BreakdownKind::WallClock, .. }) => {}
            other => panic!(
                "rank {slot}: the carried budget must force a wall-clock breakdown, got {other:?}"
            ),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// An exhausted restart budget surfaces the underlying failure instead
/// of looping forever: with `max_restarts = 0` and a watchdog wall-clock
/// budget of zero, every rank reports the structured wall-clock
/// breakdown from its own watchdog.
#[test]
fn watchdog_trip_with_no_restart_budget_is_a_structured_failure() {
    let (p, grid) = chaos_problem();
    let dir = ckpt_dir("watchdog-trip");
    let mut sup = SupervisorConfig::new(&dir);
    sup.max_restarts = 0;
    sup.watchdog.wall_clock = Some(Duration::ZERO);
    let out = run_wilson_gcr_dd_supervised(
        &p,
        grid,
        PrecisionRung::Double,
        CommConfig::resilient(),
        &sup,
        |_| None,
    );
    assert_eq!(out.attempts, 1);
    for (slot, r) in out.outcomes.iter().enumerate() {
        match r {
            Err(Error::Breakdown { kind: BreakdownKind::WallClock, .. }) => {}
            other => panic!("rank {slot}: expected a wall-clock breakdown, got {other:?}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

//! Supervised checkpoint/restart for long GCR-DD solves.
//!
//! A production propagator solve runs for hours across hundreds of ranks;
//! §9's scaling argument only pays off if a single rank death does not
//! discard the accumulated Krylov progress. This module closes that loop:
//!
//! * [`CheckpointingMonitor`] rides the [`SolveMonitor`] hooks of
//!   [`gcr_monitored`]: at every high-precision restart boundary — the
//!   only points where the implicit solution update has been applied and
//!   the true residual recomputed, i.e. the only *consistent* states — it
//!   snapshots the current solution (always stored in double precision,
//!   whatever rung produced it) plus a [`SolveCheckpointMeta`] record into
//!   a per-rank [`CheckpointStore`]. The same monitor runs the
//!   [`SolveWatchdog`] health checks each outer iteration.
//! * [`run_wilson_gcr_dd_supervised`] is the supervisor: it launches the
//!   world, and when any rank fails — watchdog trip, injected rank death,
//!   deadline timeout — it tears the world down (the panic-safe
//!   [`run_world_fallible`] path already guarantees every peer unwinds),
//!   waits out an exponential backoff, rebuilds the world, restores the
//!   newest checkpoint generation *common to all ranks*, and resumes the
//!   solve from that guess. Restart attempts are bounded by
//!   [`SupervisorConfig::max_restarts`].
//!
//! Consistency note: checkpoint generations align across ranks because
//! they are written at collective restart boundaries — every rank passes
//! generation *g*'s write before any rank can reach generation *g + 1*.
//! A death mid-write can still leave ranks one generation apart (or with
//! a torn file, which [`CheckpointStore::valid_generations`] rejects by
//! checksum), which is why resume uses the newest *common valid*
//! generation rather than each rank's own latest. Mathematically any
//! consistent guess resumes correctly — GCR converges to the unique
//! solution from any starting vector — so the common generation is a
//! convergence optimisation and a determinism aid, not a correctness
//! requirement.

use crate::drivers::{PrecisionRung, WilsonSolveOutcome};
use crate::problem::WilsonProblem;
use lqcd_comms::{
    run_world_fallible, CommConfig, Communicator, FaultPlan, FaultyComm, SharedComm, ThreadedComm,
};
use lqcd_dirac::wilson::SpinorField;
use lqcd_dirac::{OverlapHost, WilsonCloverOp};
use lqcd_field::snapshot::{decode_field_into, encode_field};
use lqcd_lattice::{Parity, ProcessGrid};
use lqcd_solvers::spaces::{cast_wilson_op, EoWilsonSpace};
use lqcd_solvers::{
    gcr_monitored, SchwarzMR, SolveMonitor, SolveStats, SolveWatchdog, SolverSpace, WatchdogConfig,
};
use lqcd_util::checkpoint::{ByteReader, Checkpoint, CheckpointStore};
use lqcd_util::{trace, Error, Result};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Format version of the solve-checkpoint metadata record.
const META_VERSION: u8 = 1;

/// Everything needed to decide whether a checkpoint may seed a resume:
/// which run it belongs to (seed, volume, grid shape, rank) and where the
/// solve stood when it was written.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolveCheckpointMeta {
    /// Monotonic checkpoint generation (1-based).
    pub generation: u64,
    /// Writing rank.
    pub rank: u32,
    /// Precision rung the solve was on (see [`rung_code`]).
    pub rung: u8,
    /// Outer iterations completed at the write.
    pub iterations: u64,
    /// High-precision restarts completed at the write.
    pub restarts: u64,
    /// True relative residual at the write.
    pub residual: f64,
    /// Problem master seed.
    pub seed: u64,
    /// Global lattice extents.
    pub global: [u32; 4],
    /// Process-grid shape.
    pub grid: [u32; 4],
}

/// Stable wire encoding of a [`PrecisionRung`].
pub fn rung_code(rung: PrecisionRung) -> u8 {
    match rung {
        PrecisionRung::Half => 2,
        PrecisionRung::Single => 4,
        PrecisionRung::Double => 8,
    }
}

impl SolveCheckpointMeta {
    /// Serialize to the little-endian wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + 8 + 4 + 1 + 8 + 8 + 8 + 8 + 16 + 16);
        out.push(META_VERSION);
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.rank.to_le_bytes());
        out.push(self.rung);
        out.extend_from_slice(&self.iterations.to_le_bytes());
        out.extend_from_slice(&self.restarts.to_le_bytes());
        out.extend_from_slice(&self.residual.to_bits().to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        for d in self.global {
            out.extend_from_slice(&d.to_le_bytes());
        }
        for d in self.grid {
            out.extend_from_slice(&d.to_le_bytes());
        }
        out
    }

    /// Decode from the wire format; `what` names the source in errors.
    pub fn decode(bytes: &[u8], what: &str) -> Result<Self> {
        let mut r = ByteReader::new(bytes, what);
        let version = r.take(1)?[0];
        if version != META_VERSION {
            return Err(Error::Corrupt {
                what: what.to_string(),
                detail: format!("unsupported meta version {version}"),
            });
        }
        let generation = r.take_u64()?;
        let rank = r.take_u32()?;
        let rung = r.take(1)?[0];
        let iterations = r.take_u64()?;
        let restarts = r.take_u64()?;
        let residual = r.take_f64()?;
        let seed = r.take_u64()?;
        let mut global = [0u32; 4];
        for d in &mut global {
            *d = r.take_u32()?;
        }
        let mut grid = [0u32; 4];
        for d in &mut grid {
            *d = r.take_u32()?;
        }
        if !r.is_empty() {
            return Err(Error::Corrupt {
                what: what.to_string(),
                detail: format!("{} trailing bytes after meta record", r.remaining()),
            });
        }
        Ok(SolveCheckpointMeta {
            generation,
            rank,
            rung,
            iterations,
            restarts,
            residual,
            seed,
            global,
            grid,
        })
    }

    /// Reject checkpoints written by a different run: wrong seed, volume,
    /// grid shape, or rank. A stale-but-matching checkpoint is fine (it
    /// is just a further-from-converged guess); a mismatched one would
    /// silently seed the wrong linear system.
    pub fn validate(
        &self,
        problem: &WilsonProblem,
        grid: &ProcessGrid,
        rank: u32,
        what: &str,
    ) -> Result<()> {
        let mismatch = |field: &str, got: String, want: String| {
            Err(Error::Corrupt {
                what: what.to_string(),
                detail: format!(
                    "checkpoint {field} mismatch: checkpoint has {got}, run has {want}"
                ),
            })
        };
        if self.seed != problem.seed {
            return mismatch("seed", self.seed.to_string(), problem.seed.to_string());
        }
        let global: Vec<u32> = problem.global.0.iter().map(|&d| d as u32).collect();
        if self.global.as_slice() != global.as_slice() {
            return mismatch("volume", format!("{:?}", self.global), format!("{global:?}"));
        }
        let shape: Vec<u32> = grid.shape.0.iter().map(|&d| d as u32).collect();
        if self.grid.as_slice() != shape.as_slice() {
            return mismatch("grid shape", format!("{:?}", self.grid), format!("{shape:?}"));
        }
        if self.rank != rank {
            return mismatch("rank", self.rank.to_string(), rank.to_string());
        }
        Ok(())
    }
}

/// Names of the sections a solve checkpoint carries.
pub const META_SECTION: &str = "meta";
/// Solution-vector section (always a double-precision field snapshot).
pub const SOLUTION_SECTION: &str = "solution";

/// The monitor a supervised solve threads through [`gcr_monitored`]:
/// watchdog health checks every outer iteration, a checkpoint every
/// `every`-th high-precision restart. The solution is stored in double
/// precision regardless of the rung that produced it, so a resume can
/// seed any rung.
pub struct CheckpointingMonitor {
    watchdog: SolveWatchdog,
    store: Option<CheckpointStore>,
    every: usize,
    template: SolveCheckpointMeta,
    next_generation: u64,
    written: usize,
}

impl CheckpointingMonitor {
    /// A monitor writing into `store` (or watchdog-only when `None`).
    /// `every` = 0 disables checkpointing; `next_generation` numbers the
    /// first checkpoint this monitor will write.
    pub fn new(
        watchdog: SolveWatchdog,
        store: Option<CheckpointStore>,
        every: usize,
        template: SolveCheckpointMeta,
        next_generation: u64,
    ) -> Self {
        CheckpointingMonitor { watchdog, store, every, template, next_generation, written: 0 }
    }

    /// Generation the *next* checkpoint would get.
    pub fn next_generation(&self) -> u64 {
        self.next_generation
    }

    /// Checkpoints written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    fn write_checkpoint(
        &mut self,
        x64: &SpinorField<f64>,
        stats: &SolveStats,
        rel_residual: f64,
    ) -> Result<()> {
        if self.every == 0 || !stats.restarts.is_multiple_of(self.every) {
            return Ok(());
        }
        let Some(store) = &self.store else {
            return Ok(());
        };
        let _sp = trace::span_arg(
            trace::Track::Checkpoint,
            "checkpoint_write",
            self.next_generation as i64,
        );
        let meta = SolveCheckpointMeta {
            generation: self.next_generation,
            iterations: stats.iterations as u64,
            restarts: stats.restarts as u64,
            residual: rel_residual,
            ..self.template
        };
        let mut ckpt = Checkpoint::new();
        ckpt.insert(META_SECTION, meta.encode());
        ckpt.insert(SOLUTION_SECTION, encode_field(x64));
        store.save(self.next_generation, &ckpt)?;
        self.next_generation += 1;
        self.written += 1;
        Ok(())
    }
}

/// The monitor is precision-agnostic on the outside but must convert the
/// rung's solution vector to f64 for storage, so it is implemented per
/// concrete rung precision (mirroring the drivers' per-rung dispatch).
macro_rules! impl_checkpointing_monitor {
    ($real:ty) => {
        impl<C: Communicator> SolveMonitor<EoWilsonSpace<$real, SharedComm<C>>>
            for CheckpointingMonitor
        {
            fn observe(&mut self, iteration: usize, rel_residual: f64) -> Result<()> {
                self.watchdog.check(iteration, rel_residual)
            }

            fn at_restart(
                &mut self,
                _space: &mut EoWilsonSpace<$real, SharedComm<C>>,
                x: &SpinorField<$real>,
                stats: &SolveStats,
                rel_residual: f64,
            ) -> Result<()> {
                self.write_checkpoint(&x.cast_body::<f64>(), stats, rel_residual)
            }
        }
    };
}

impl_checkpointing_monitor!(f64);
impl_checkpointing_monitor!(f32);

/// Supervisor policy: where checkpoints live, how often they are cut,
/// how many restarts to attempt, and how the watchdog is tuned.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Checkpoint root; each rank writes under `dir/rankNNN/`.
    pub dir: PathBuf,
    /// World teardown/rebuild attempts after the first (0 = fail fast).
    pub max_restarts: usize,
    /// Base backoff before the first rebuild; doubles per restart.
    pub backoff: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Checkpoint every this-many high-precision restarts (0 disables).
    pub checkpoint_every: usize,
    /// Checkpoint generations retained per rank.
    pub keep: usize,
    /// Watchdog tuning threaded into every attempt.
    pub watchdog: WatchdogConfig,
}

impl SupervisorConfig {
    /// Defaults suitable for tests: checkpoint every restart, keep 3
    /// generations, up to 3 supervised restarts, 50 ms base backoff.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SupervisorConfig {
            dir: dir.into(),
            max_restarts: 3,
            backoff: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            checkpoint_every: 1,
            keep: 3,
            watchdog: WatchdogConfig::default(),
        }
    }
}

/// What a supervised run reports beyond the per-rank outcomes.
#[derive(Debug)]
pub struct SupervisedOutcome {
    /// Final per-rank results (rank order), from the last attempt.
    pub outcomes: Vec<Result<WilsonSolveOutcome>>,
    /// World launches performed (1 = no supervised restart needed).
    pub attempts: usize,
    /// Per attempt: the checkpoint generation it resumed from (`None` =
    /// fresh start).
    pub resumed_generations: Vec<Option<u64>>,
}

/// This rank's checkpoint store under the supervisor root.
fn rank_store(dir: &Path, rank: usize, keep: usize) -> Result<CheckpointStore> {
    CheckpointStore::new(dir.join(format!("rank{rank:03}")), keep)
}

/// The newest checkpoint generation that is valid (checksum-verified) on
/// *every* rank, or `None` when any rank lacks one. Runs on the
/// supervisor thread between world launches, so plain filesystem access —
/// no communicator needed.
pub fn common_generation(dir: &Path, num_ranks: usize, keep: usize) -> Option<u64> {
    let mut common: Option<Vec<u64>> = None;
    for rank in 0..num_ranks {
        let store = rank_store(dir, rank, keep).ok()?;
        let valid = store.valid_generations();
        common = Some(match common {
            None => valid,
            Some(prev) => prev.into_iter().filter(|g| valid.contains(g)).collect(),
        });
    }
    common.and_then(|gens| gens.into_iter().max())
}

/// One monitored GCR-DD attempt at a fixed rung, optionally seeded from a
/// restored double-precision solution. Checkpoint numbering continues
/// from `*next_generation`; both counters survive a failed attempt so the
/// ladder's next rung does not overwrite earlier generations.
///
/// `prior` is wall time the logical solve consumed before this attempt
/// (earlier rungs *and* earlier supervised world launches); the watchdog
/// budget covers the whole solve, not each attempt. Failure returns the
/// salvaged partial stats alongside the error, with dslash counters
/// drained as deltas against the operator's state at attempt start.
#[allow(clippy::too_many_arguments)]
// The Err payload deliberately carries the salvaged SolveStats of the
// failed attempt; boxing it would add an allocation to an error path
// the ladder unwraps immediately.
#[allow(clippy::result_large_err)]
fn supervised_attempt<C: Communicator>(
    p: &WilsonProblem,
    op64: &WilsonCloverOp<f64>,
    comm: SharedComm<C>,
    rung: PrecisionRung,
    resume: Option<&SpinorField<f64>>,
    store: &CheckpointStore,
    sup: &SupervisorConfig,
    template: SolveCheckpointMeta,
    next_generation: &mut u64,
    written: &mut usize,
    prior: Duration,
) -> crate::drivers::AttemptResult {
    fn fail(e: Error) -> (Error, SolveStats) {
        (e, SolveStats::new())
    }
    macro_rules! attempt {
        ($space:expr, $precond:expr, $params:expr) => {{
            let mut space = $space.map_err(fail)?;
            let mut baseline = space.op.dslash_counters();
            let b = p.rhs(&space.op);
            let mut x = space.alloc();
            if let Some(x64) = resume {
                x64.convert_body_into(&mut x);
            }
            let mut precond = $precond;
            let mut monitor = CheckpointingMonitor::new(
                SolveWatchdog::resumed("gcr-dd", sup.watchdog, prior),
                Some(store.clone()),
                sup.checkpoint_every,
                SolveCheckpointMeta { rung: rung_code(rung), ..template },
                *next_generation,
            );
            let result =
                gcr_monitored(&mut space, &mut precond, &mut x, &b, &$params, &mut monitor);
            *next_generation = monitor.next_generation();
            *written += monitor.written();
            match result {
                Ok(mut stats) => {
                    crate::drivers::drain_dslash(
                        &mut stats,
                        space.op.dslash_counters(),
                        &mut baseline,
                    );
                    let n2 = space.norm2(&x).map_err(|e| (e, stats))?;
                    Ok(WilsonSolveOutcome {
                        stats,
                        solution_norm2: n2,
                        matvecs: space.matvec_count(),
                        dirichlet_matvecs: space.dirichlet_matvecs(),
                    })
                }
                Err(e) => {
                    // Salvage what the failed rung actually did.
                    let mut partial = SolveStats::new();
                    partial.matvecs = space.matvec_count();
                    partial.precond_matvecs = space.dirichlet_matvecs();
                    crate::drivers::drain_dslash(
                        &mut partial,
                        space.op.dslash_counters(),
                        &mut baseline,
                    );
                    Err((e, partial))
                }
            }
        }};
    }
    match rung {
        PrecisionRung::Double => {
            let op = cast_wilson_op::<f64>(op64).map_err(fail)?;
            attempt!(EoWilsonSpace::new(op, comm), SchwarzMR::new(p.mr_steps), p.gcr)
        }
        PrecisionRung::Single => {
            let op = cast_wilson_op::<f32>(op64).map_err(fail)?;
            attempt!(EoWilsonSpace::new(op, comm), SchwarzMR::new(p.mr_steps), p.gcr)
        }
        PrecisionRung::Half => {
            let op = cast_wilson_op::<f32>(op64).map_err(fail)?;
            let mut params = p.gcr;
            params.quantize_krylov = true;
            attempt!(
                EoWilsonSpace::new(op, comm).map(|s| s.with_half_storage()),
                SchwarzMR::new(p.mr_steps).quantized(),
                params
            )
        }
    }
}

/// The per-rank body of one supervised world launch: restore the common
/// checkpoint (when there is one), then climb the precision ladder with
/// checkpointing and watchdog monitoring threaded through every attempt.
fn supervised_body<C: Communicator>(
    p: &WilsonProblem,
    g: &ProcessGrid,
    comm: C,
    start: PrecisionRung,
    sup: &SupervisorConfig,
    resume_gen: Option<u64>,
    prior: Duration,
) -> Result<WilsonSolveOutcome> {
    let body_started = Instant::now();
    let shared = SharedComm::new(comm);
    let rank = shared.rank();
    let op64 = p.build_operator(&mut shared.clone(), g)?;
    let store = rank_store(&sup.dir, rank, sup.keep)?;

    let mut resume64: Option<SpinorField<f64>> = None;
    if let Some(generation) = resume_gen {
        let what = store.path_for(generation).display().to_string();
        let ckpt = store.load(generation)?;
        let meta = SolveCheckpointMeta::decode(ckpt.require(META_SECTION)?, &what)?;
        meta.validate(p, g, rank as u32, &what)?;
        let mut x64 = op64.alloc(Parity::Odd);
        decode_field_into(ckpt.require(SOLUTION_SECTION)?, &mut x64, &what)?;
        resume64 = Some(x64);
    }

    let template = SolveCheckpointMeta {
        generation: 0,
        rank: rank as u32,
        rung: rung_code(start),
        iterations: 0,
        restarts: 0,
        residual: f64::NAN,
        seed: p.seed,
        global: {
            let mut d = [0u32; 4];
            for (o, &i) in d.iter_mut().zip(p.global.0.iter()) {
                *o = i as u32;
            }
            d
        },
        grid: {
            let mut d = [0u32; 4];
            for (o, &i) in d.iter_mut().zip(g.shape.0.iter()) {
                *o = i as u32;
            }
            d
        },
    };

    let mut next_generation = resume_gen.map_or(1, |g| g + 1);
    let mut written = 0usize;
    let mut rung = start;
    let mut fallbacks = 0usize;
    // Salvaged work of failed rungs, folded into the final record (the
    // attempts drain their counters as deltas, so each apply is counted
    // exactly once).
    let mut carried = SolveStats::new();
    loop {
        match supervised_attempt(
            p,
            &op64,
            shared.clone(),
            rung,
            resume64.as_ref(),
            &store,
            sup,
            template,
            &mut next_generation,
            &mut written,
            prior + body_started.elapsed(),
        ) {
            Ok(mut out) => {
                out.stats.absorb(&carried);
                out.stats.precision_fallbacks = fallbacks;
                out.stats.exchange_retries = shared.exchange_retries();
                out.stats.faults_survived = shared.faults_survived();
                out.stats.checkpoints_written = written;
                out.stats.resumed_from_checkpoint = resume64.is_some();
                return Ok(out);
            }
            Err((e, partial)) if crate::drivers::recoverable(&e) => match rung.escalate() {
                Some(next) => {
                    carried.absorb(&partial);
                    fallbacks += 1;
                    rung = next;
                }
                None => return Err(e),
            },
            Err((e, _)) => return Err(e),
        }
    }
}

/// Run a supervised distributed GCR-DD solve: fault-tolerant comms,
/// watchdog monitoring, periodic checkpoints, and bounded
/// teardown/rebuild/resume when any rank fails.
///
/// `plan_for_attempt(i)` supplies the fault plan for world launch `i`
/// (0-based). This is a closure rather than a single plan because
/// [`FaultPlan`] counters are per-world: rebuilding from the same plan
/// would re-fire a `die_rank` rule on every attempt and the run could
/// never recover. Chaos tests inject on attempt 0 and return `None`
/// afterwards; production callers return `None` throughout.
pub fn run_wilson_gcr_dd_supervised<F>(
    problem: &WilsonProblem,
    grid: ProcessGrid,
    start: PrecisionRung,
    config: CommConfig,
    sup: &SupervisorConfig,
    mut plan_for_attempt: F,
) -> SupervisedOutcome
where
    F: FnMut(usize) -> Option<FaultPlan>,
{
    let num_ranks = grid.num_ranks();
    let flatten = |r: Result<Result<WilsonSolveOutcome>>| r.and_then(|inner| inner);
    let mut resumed_generations = Vec::new();
    let mut attempt = 0usize;
    // Wall time earlier world launches spent solving (backoff sleeps
    // excluded): the watchdog's wall-clock budget covers the logical
    // solve, so a supervised restart must not reset the clock.
    let mut consumed = Duration::ZERO;
    // Control-plane events (launches, failures, backoffs) land on their
    // own pseudo-rank track; rank threads install their own scopes.
    let _ctl = trace::rank_scope(trace::CONTROL_RANK);
    loop {
        let resume_gen = common_generation(&sup.dir, num_ranks, sup.keep);
        resumed_generations.push(resume_gen);
        trace::instant(
            trace::Track::Supervisor,
            if resume_gen.is_some() { "world_launch_resumed" } else { "world_launch_fresh" },
            attempt as i64,
        );
        let p = problem.clone();
        let g = grid.clone();
        let prior = consumed;
        let launched = Instant::now();
        let outcomes: Vec<Result<WilsonSolveOutcome>> = match plan_for_attempt(attempt) {
            Some(plan) => {
                let comms = FaultyComm::world(grid.clone(), config, plan);
                run_world_fallible(comms, |comm| {
                    supervised_body(&p, &g, comm, start, sup, resume_gen, prior)
                })
                .into_iter()
                .map(flatten)
                .collect()
            }
            None => {
                let comms = ThreadedComm::world_with(grid.clone(), config);
                run_world_fallible(comms, |comm| {
                    supervised_body(&p, &g, comm, start, sup, resume_gen, prior)
                })
                .into_iter()
                .map(flatten)
                .collect()
            }
        };
        consumed += launched.elapsed();
        let all_ok = outcomes.iter().all(|r| r.is_ok());
        if all_ok || attempt >= sup.max_restarts {
            trace::instant(
                trace::Track::Supervisor,
                if all_ok { "supervision_converged" } else { "supervision_exhausted" },
                attempt as i64,
            );
            let mut outcomes = outcomes;
            for out in outcomes.iter_mut().flatten() {
                out.stats.supervisor_restarts = attempt;
            }
            return SupervisedOutcome { outcomes, attempts: attempt + 1, resumed_generations };
        }
        attempt += 1;
        trace::instant(trace::Track::Supervisor, "world_failed", attempt as i64);
        let doubling = 1u32 << (attempt - 1).min(16) as u32;
        let delay = sup.backoff.saturating_mul(doubling).min(sup.backoff_max);
        let _backoff = trace::span_arg(trace::Track::Supervisor, "backoff", attempt as i64);
        std::thread::sleep(delay);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqcd_lattice::Dims;

    fn meta() -> SolveCheckpointMeta {
        SolveCheckpointMeta {
            generation: 7,
            rank: 3,
            rung: rung_code(PrecisionRung::Single),
            iterations: 120,
            restarts: 4,
            residual: 3.25e-6,
            seed: 20260707,
            global: [8, 8, 8, 8],
            grid: [1, 1, 2, 2],
        }
    }

    #[test]
    fn meta_roundtrips() {
        let m = meta();
        let back = SolveCheckpointMeta::decode(&m.encode(), "test").unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn meta_rejects_truncation_and_trailing_garbage() {
        let bytes = meta().encode();
        for len in 0..bytes.len() {
            assert!(
                matches!(
                    SolveCheckpointMeta::decode(&bytes[..len], "test"),
                    Err(Error::Corrupt { .. })
                ),
                "truncation to {len} bytes must be a structured error"
            );
        }
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(SolveCheckpointMeta::decode(&long, "test"), Err(Error::Corrupt { .. })));
    }

    #[test]
    fn meta_validation_pins_the_run_identity() {
        let p = WilsonProblem::small();
        let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), p.global).unwrap();
        let m = meta();
        m.validate(&p, &grid, 3, "test").unwrap();
        // Each identity field is checked independently.
        let mut wrong = m;
        wrong.seed ^= 1;
        assert!(wrong.validate(&p, &grid, 3, "test").is_err());
        let mut wrong = m;
        wrong.global[0] = 16;
        assert!(wrong.validate(&p, &grid, 3, "test").is_err());
        let mut wrong = m;
        wrong.grid = [4, 1, 1, 1];
        assert!(wrong.validate(&p, &grid, 3, "test").is_err());
        assert!(m.validate(&p, &grid, 2, "test").is_err());
    }

    #[test]
    fn common_generation_is_the_intersection_maximum() {
        let dir = std::env::temp_dir().join("lqcd-supervise-common-gen");
        let _ = std::fs::remove_dir_all(&dir);
        // No stores yet: empty intersection.
        assert_eq!(common_generation(&dir, 2, 3), None);
        let mut ckpt = Checkpoint::new();
        ckpt.insert("x", vec![1, 2, 3]);
        let s0 = rank_store(&dir, 0, 3).unwrap();
        let s1 = rank_store(&dir, 1, 3).unwrap();
        // Rank 0 has generations 1 and 2; rank 1 only 1: common max = 1.
        s0.save(1, &ckpt).unwrap();
        s0.save(2, &ckpt).unwrap();
        s1.save(1, &ckpt).unwrap();
        assert_eq!(common_generation(&dir, 2, 3), Some(1));
        // Rank 1 catches up: common max advances.
        s1.save(2, &ckpt).unwrap();
        assert_eq!(common_generation(&dir, 2, 3), Some(2));
        // Corrupting rank 0's generation 2 drops it from the intersection.
        let path = s0.path_for(2);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, bytes).unwrap();
        assert_eq!(common_generation(&dir, 2, 3), Some(1));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Declarative problem descriptions.
//!
//! A *problem* carries everything needed to reconstruct the same physical
//! system on any rank of any process grid: the global volume, the gauge
//! configuration recipe (seed + disorder), the fermion parameters, and
//! solver settings. Determinism is by construction — field generation is
//! keyed on global coordinates (see `lqcd-gauge`) — so a problem solved
//! on 1 rank and on 16 is the same linear system.

use lqcd_comms::Communicator;
use lqcd_dirac::wilson::SpinorField;
use lqcd_dirac::{StaggeredOp, WilsonCloverOp, STAGGERED_DEPTH, WILSON_DEPTH};
use lqcd_gauge::asqtad::{AsqtadCoeffs, AsqtadLinks};
use lqcd_gauge::clover_build::{build_clover_field, restrict_clover};
use lqcd_gauge::field::GaugeStart;
use lqcd_gauge::GaugeField;
use lqcd_lattice::{Dims, FaceGeometry, Parity, ProcessGrid, SubLattice};
use lqcd_solvers::{GcrParams, WatchdogConfig};
use lqcd_su3::{ColorVector, WilsonSpinor};
use lqcd_util::rng::SeedTree;
use lqcd_util::{Real, Result};
use std::sync::Arc;

/// A Wilson-clover solve specification.
#[derive(Clone, Debug)]
pub struct WilsonProblem {
    /// Global lattice extents.
    pub global: Dims,
    /// Master seed (gauge field, right-hand side).
    pub seed: u64,
    /// Gauge-field roughness in `[0, 1]` (our conditioning knob standing
    /// in for the ensemble's coupling/quark mass; see DESIGN.md).
    pub disorder: f64,
    /// Quark mass parameter `m`.
    pub mass: f64,
    /// Clover coefficient (`None` = plain Wilson).
    pub csw: Option<f64>,
    /// Solver tolerance (relative residual).
    pub tol: f64,
    /// Iteration budget.
    pub maxiter: usize,
    /// GCR parameters (for the GCR-DD driver).
    pub gcr: GcrParams,
    /// MR steps in the Schwarz preconditioner.
    pub mr_steps: usize,
    /// Solver-health watchdog thresholds (threaded through every rung of
    /// the GCR-DD drivers' precision ladder).
    pub watchdog: WatchdogConfig,
}

impl WilsonProblem {
    /// A small, well-conditioned default suitable for tests and examples.
    pub fn small() -> Self {
        WilsonProblem {
            global: Dims([8, 8, 8, 8]),
            seed: 20260707,
            disorder: 0.25,
            mass: 0.15,
            csw: Some(1.0),
            tol: 1e-8,
            maxiter: 4000,
            gcr: GcrParams {
                tol: 1e-8,
                kmax: 16,
                delta: 0.05,
                maxiter: 4000,
                quantize_krylov: false,
            },
            mr_steps: 8,
            watchdog: WatchdogConfig::default(),
        }
    }

    /// Build this rank's operator (gauge ghosts exchanged, clover built
    /// globally and restricted, `T⁻¹` tables ready).
    pub fn build_operator<C: Communicator>(
        &self,
        comm: &mut C,
        grid: &ProcessGrid,
    ) -> Result<WilsonCloverOp<f64>> {
        let seed = SeedTree::new(self.seed);
        let sub = Arc::new(SubLattice::for_rank(grid, comm.rank()));
        let faces = FaceGeometry::new(&sub, WILSON_DEPTH)?;
        let mut gauge = GaugeField::<f64>::generate(
            sub.clone(),
            &faces,
            self.global,
            &seed,
            GaugeStart::Disordered(self.disorder),
        );
        gauge.exchange_ghosts(comm, &faces)?;
        let clover = match self.csw {
            Some(csw) => {
                // Clover term is site-diagonal: build on the global lattice
                // (deterministic, identical on every rank) and restrict.
                let gsub = Arc::new(SubLattice::single(self.global)?);
                let gfaces = FaceGeometry::new(&gsub, WILSON_DEPTH)?;
                let ggauge = GaugeField::<f64>::generate(
                    gsub,
                    &gfaces,
                    self.global,
                    &seed,
                    GaugeStart::Disordered(self.disorder),
                );
                let whole = build_clover_field(&ggauge, self.global, csw);
                Some(restrict_clover(&whole, sub.clone(), &faces))
            }
            None => None,
        };
        let mut op = WilsonCloverOp::new(gauge, clover, self.mass)?;
        op.build_t_inverse()?;
        Ok(op)
    }

    /// The deterministic Gaussian right-hand side on this rank (odd
    /// parity, as the even-odd preconditioned system expects).
    pub fn rhs<R: Real>(&self, op: &WilsonCloverOp<R>) -> SpinorField<R> {
        let seed = SeedTree::new(self.seed).child("rhs");
        let sub = op.sublattice().clone();
        let global = self.global;
        let mut b = op.alloc(Parity::Odd);
        b.fill(|idx| {
            let c = sub.cb_coords(Parity::Odd, idx);
            let mut gc = c;
            for d in 0..4 {
                gc[d] = c[d] + sub.origin[d];
            }
            WilsonSpinor::<f64>::random(&mut seed.stream(global.index(gc) as u64)).cast::<R>()
        });
        b
    }
}

/// An improved-staggered (asqtad) solve specification.
#[derive(Clone, Debug)]
pub struct StaggeredProblem {
    /// Global lattice extents.
    pub global: Dims,
    /// Master seed.
    pub seed: u64,
    /// Gauge roughness.
    pub disorder: f64,
    /// Quark mass `m` (the base of the shifted systems).
    pub mass: f64,
    /// The shifts σ_i of Eq. 4.
    pub shifts: Vec<f64>,
    /// Solver tolerance.
    pub tol: f64,
    /// Iteration budget.
    pub maxiter: usize,
}

impl StaggeredProblem {
    /// A small default for tests and examples.
    pub fn small() -> Self {
        StaggeredProblem {
            global: Dims([8, 8, 8, 8]),
            seed: 20260708,
            disorder: 0.2,
            mass: 0.2,
            shifts: vec![0.0, 0.1, 0.4, 1.6],
            tol: 1e-8,
            maxiter: 8000,
        }
    }

    /// Build this rank's operator. Fat/long links are computed on the
    /// global lattice (identically on every rank — they are precomputed
    /// inputs in production, §2.3) and restricted with their gauge
    /// ghosts.
    pub fn build_operator(&self, grid: &ProcessGrid, rank: usize) -> Result<StaggeredOp<f64>> {
        let seed = SeedTree::new(self.seed);
        let gsub = Arc::new(SubLattice::single(self.global)?);
        let gfaces = FaceGeometry::new(&gsub, STAGGERED_DEPTH)?;
        let thin = GaugeField::<f64>::generate(
            gsub,
            &gfaces,
            self.global,
            &seed,
            GaugeStart::Disordered(self.disorder),
        );
        let links = AsqtadLinks::compute(&thin, self.global, &AsqtadCoeffs::default());
        let sub = Arc::new(SubLattice::for_rank(grid, rank));
        let faces = FaceGeometry::new(&sub, STAGGERED_DEPTH)?;
        let fat = GaugeField::restrict_from_global(&links.fat, sub.clone(), &faces, self.global);
        let long = GaugeField::restrict_from_global(&links.long, sub, &faces, self.global);
        StaggeredOp::new(fat, long, self.mass)
    }

    /// The deterministic right-hand side (even parity — the decoupled
    /// normal system).
    pub fn rhs(&self, op: &StaggeredOp<f64>) -> lqcd_dirac::staggered::StaggeredField<f64> {
        let seed = SeedTree::new(self.seed).child("rhs");
        let sub = op.sublattice().clone();
        let global = self.global;
        let mut b = op.alloc(Parity::Even);
        b.fill(|idx| {
            let c = sub.cb_coords(Parity::Even, idx);
            let mut gc = c;
            for d in 0..4 {
                gc[d] = c[d] + sub.origin[d];
            }
            ColorVector::random(&mut seed.stream(global.index(gc) as u64))
        });
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqcd_comms::SingleComm;

    #[test]
    fn wilson_problem_builds_on_single_rank() {
        let p = WilsonProblem::small();
        let grid = ProcessGrid::new(Dims([1, 1, 1, 1]), p.global).unwrap();
        let mut comm = SingleComm::new(p.global).unwrap();
        let op = p.build_operator(&mut comm, &grid).unwrap();
        assert!(op.t_inv.is_some());
        assert!(op.clover.is_some());
        let b = p.rhs(&op);
        assert!(lqcd_field::blas::norm2_local(&b) > 0.0);
    }

    #[test]
    fn staggered_problem_builds_on_single_rank() {
        let p = StaggeredProblem::small();
        let grid = ProcessGrid::new(Dims([1, 1, 1, 1]), p.global).unwrap();
        let op = p.build_operator(&grid, 0).unwrap();
        let b = p.rhs(&op);
        assert!(lqcd_field::blas::norm2_local(&b) > 0.0);
        assert_eq!(op.mass, p.mass);
    }

    #[test]
    fn rhs_is_partition_invariant() {
        let p = WilsonProblem::small();
        // Single rank.
        let grid1 = ProcessGrid::new(Dims([1, 1, 1, 1]), p.global).unwrap();
        let mut comm = SingleComm::new(p.global).unwrap();
        let op1 = p.build_operator(&mut comm, &grid1).unwrap();
        let b1 = p.rhs(&op1);
        let sub1 = op1.sublattice().clone();
        // The (0,0,0,1) site on a split grid must carry the same value.
        let grid2 = ProcessGrid::new(Dims([1, 1, 2, 2]), p.global).unwrap();
        let sub2 = Arc::new(SubLattice::for_rank(&grid2, 0));
        let faces2 = FaceGeometry::new(&sub2, WILSON_DEPTH).unwrap();
        // Build rank 0's rhs directly without comms (fields only).
        let seed = SeedTree::new(p.seed).child("rhs");
        let mut b2: SpinorField<f64> =
            lqcd_field::LatticeField::zeros(sub2.clone(), &faces2, Parity::Odd, 0);
        let s2 = sub2.clone();
        let global = p.global;
        b2.fill(|idx| {
            let c = s2.cb_coords(Parity::Odd, idx);
            WilsonSpinor::random(&mut seed.stream(global.index(c) as u64))
        });
        // Compare the overlapping region (rank 0's origin is [0,0,0,0]).
        for (idx2, c) in sub2.sites(Parity::Odd) {
            let v2 = b2.site(idx2);
            let v1 = b1.site(sub1.cb_index(c));
            assert_eq!(v1, v2, "rhs differs at {c:?}");
        }
    }
}

//! Analysis-phase observables: propagators and the pion correlator.
//!
//! The paper's capacity phase (§2) evaluates observables on gauge
//! configurations; the canonical first observable is the Goldstone pion
//! two-point function from a staggered point-source propagator:
//!
//! `C(t) = Σ_x̄ |G(x̄, t; 0)|²` with `M G = δ₀`.
//!
//! The solve uses the parity trick the solvers are built around:
//! `x = M† y` with `(M M†) y = b`, and `M M† = m² − D²/4` decouples the
//! parities (§3.1) — so one even-parity normal solve plus one dslash
//! reconstructs the full propagator.

use crate::problem::StaggeredProblem;
use lqcd_comms::Communicator;
use lqcd_dirac::staggered::StaggeredField;
use lqcd_dirac::{BoundaryMode, StaggeredOp};
use lqcd_field::blas;
use lqcd_lattice::{Parity, ProcessGrid};
use lqcd_solvers::spaces::StaggeredNormalSpace;
use lqcd_solvers::{cg, SolveStats, SolverSpace};
use lqcd_su3::ColorVector;
use lqcd_util::{Complex, Error, Result};

/// A unit point source at global coordinate `origin`, color component
/// `color`, placed on whichever rank owns it (zero elsewhere).
pub fn point_source(
    op: &StaggeredOp<f64>,
    origin: [usize; 4],
    color: usize,
) -> Result<StaggeredField<f64>> {
    let sub = op.sublattice().clone();
    let mut local = [0usize; 4];
    let mut mine = true;
    for d in 0..4 {
        if origin[d] < sub.origin[d] || origin[d] >= sub.origin[d] + sub.dims.0[d] {
            mine = false;
            break;
        }
        local[d] = origin[d] - sub.origin[d];
    }
    let parity = Parity::of_sum(origin.iter().sum());
    if parity != Parity::Even {
        return Err(Error::Config("point_source expects an even origin site".into()));
    }
    let mut b = op.alloc(Parity::Even);
    if mine {
        let mut v = ColorVector::zero();
        v.c[color] = Complex::one();
        b.set_site(sub.cb_index(local), v);
    }
    Ok(b)
}

/// The full staggered propagator from an even-parity source:
/// solve `(M M†) y = b` on the even parity, then `x = M† y = m·y + D y/2`.
/// Returns `(x_even, x_odd, solve stats)`.
pub fn staggered_propagator<C: Communicator>(
    op: &StaggeredOp<f64>,
    comm: C,
    b: &StaggeredField<f64>,
    tol: f64,
    maxiter: usize,
) -> Result<(StaggeredField<f64>, StaggeredField<f64>, SolveStats)> {
    let mut space = StaggeredNormalSpace::new(clone_op(op)?, comm);
    let mut y = space.alloc();
    let stats = cg(&mut space, &mut y, b, tol, maxiter)?;
    // x_e = m y ; x_o = (1/2) D_oe y.
    let m = space.op.mass;
    let mut x_e = space.alloc();
    blas::copy(&mut x_e, &y);
    blas::scale(&mut x_e, m);
    let mut x_o = space.op.alloc(Parity::Odd);
    {
        let StaggeredNormalSpace { op, comm, .. } = &mut space;
        op.dslash(&mut x_o, &mut y, comm, BoundaryMode::Full)?;
    }
    blas::scale(&mut x_o, 0.5);
    Ok((x_e, x_o, stats))
}

/// Zero-momentum timeslice sums `C(t) = Σ_x̄ |x(x̄, t)|²`, globally
/// reduced (identical on all ranks).
pub fn pion_correlator<C: Communicator>(
    x_e: &StaggeredField<f64>,
    x_o: &StaggeredField<f64>,
    global_t: usize,
    comm: &mut C,
) -> Result<Vec<f64>> {
    let sub = x_e.sublattice().clone();
    let mut local = vec![0.0f64; global_t];
    for (field, parity) in [(x_e, Parity::Even), (x_o, Parity::Odd)] {
        for (idx, c) in sub.sites(parity) {
            let t = c[3] + sub.origin[3];
            local[t] += field.site(idx).norm_sqr();
        }
    }
    comm.allreduce_sum(&mut local)?;
    Ok(local)
}

/// Effective mass `m_eff(t) = ln[C(t) / C(t+1)]` (valid away from the
/// midpoint of the periodic lattice).
pub fn effective_mass(correlator: &[f64]) -> Vec<f64> {
    correlator
        .windows(2)
        .map(|w| if w[1] > 0.0 && w[0] > 0.0 { (w[0] / w[1]).ln() } else { f64::NAN })
        .collect()
}

/// Verify the propagator by applying the full operator: `‖M x − b‖/‖b‖`.
pub fn verify_propagator<C: Communicator>(
    op: &StaggeredOp<f64>,
    comm: &mut C,
    x_e: &StaggeredField<f64>,
    x_o: &StaggeredField<f64>,
    b: &StaggeredField<f64>,
) -> Result<f64> {
    let mut xe = x_e.clone();
    let mut xo = x_o.clone();
    let mut me = op.alloc(Parity::Even);
    let mut mo = op.alloc(Parity::Odd);
    op.apply_full(&mut me, &mut mo, &mut xe, &mut xo, comm, BoundaryMode::Full)?;
    blas::axpy(-1.0, b, &mut me);
    let num = comm.sum_scalar(blas::norm2_local(&me) + blas::norm2_local(&mo))?;
    let den = comm.sum_scalar(blas::norm2_local(b))?;
    Ok((num / den).sqrt())
}

/// Duplicate an operator (fields are reference-counted or cloneable).
fn clone_op(op: &StaggeredOp<f64>) -> Result<StaggeredOp<f64>> {
    Ok(op.clone())
}

/// Solve one column of the Wilson propagator `M x = b` through the Schur
/// complement: `b̂ = b_o + (1/4) D̂_oe T_ee⁻¹ b_e`, BiCGstab on `M̂`, then
/// even reconstruction. Returns `(x_e, x_o, stats)`.
pub fn wilson_propagator_column<C: Communicator>(
    op: &lqcd_dirac::WilsonCloverOp<f64>,
    comm: &mut C,
    b_e: &lqcd_dirac::wilson::SpinorField<f64>,
    b_o: &lqcd_dirac::wilson::SpinorField<f64>,
    tol: f64,
    maxiter: usize,
) -> Result<(lqcd_dirac::wilson::SpinorField<f64>, lqcd_dirac::wilson::SpinorField<f64>, SolveStats)>
{
    use lqcd_solvers::{bicgstab, spaces::EoWilsonSpace};
    // b̂ = b_o + (1/4) D̂_oe T⁻¹ b_e.
    let mut tinv_be = op.alloc(Parity::Even);
    op.t_inv_apply(&mut tinv_be, b_e)?;
    let mut bhat = op.alloc(Parity::Odd);
    op.dslash(&mut bhat, &mut tinv_be, comm, BoundaryMode::Full)?;
    blas::scale(&mut bhat, 0.25);
    blas::axpy(1.0, b_o, &mut bhat);
    // Schur solve (EoWilsonSpace takes the operator by value).
    let mut space = EoWilsonSpace::new(op.clone(), share(comm))?;
    let mut x_o = space.alloc();
    let stats = bicgstab(&mut space, &mut x_o, &bhat, tol, maxiter)?;
    // Reconstruct the even part.
    let mut x_e = op.alloc(Parity::Even);
    op.reconstruct_even(&mut x_e, b_e, &mut x_o, comm, BoundaryMode::Full)?;
    Ok((x_e, x_o, stats))
}

/// The Wilson pseudoscalar (pion) correlator from a point source at the
/// origin: by γ₅-hermiticity the γ₅–γ₅ contraction reduces to
/// `C(t) = Σ_x̄ Σ_{s,c;s₀,c₀} |S(x̄,t; 0)|²` — twelve propagator columns,
/// one per source spin-color.
pub fn wilson_pion_correlator<C: Communicator>(
    problem: &crate::problem::WilsonProblem,
    grid: &ProcessGrid,
    comm: &mut C,
) -> Result<(Vec<f64>, usize)> {
    use lqcd_su3::WilsonSpinor;
    let op = problem.build_operator(comm, grid)?;
    let sub = op.sublattice().clone();
    let global_t = problem.global.0[3];
    let mut corr = vec![0.0f64; global_t];
    let mut total_iters = 0usize;
    let origin = [0usize; 4];
    let origin_local =
        (0..4).all(|d| origin[d] >= sub.origin[d] && origin[d] < sub.origin[d] + sub.dims.0[d]);
    for spin in 0..4 {
        for color in 0..3 {
            let mut b_e = op.alloc(Parity::Even);
            let b_o = op.alloc(Parity::Odd);
            if origin_local {
                let mut s = WilsonSpinor::zero();
                s.s[spin].c[color] = Complex::one();
                let mut local = origin;
                for d in 0..4 {
                    local[d] = origin[d] - sub.origin[d];
                }
                b_e.set_site(sub.cb_index(local), s);
            }
            let (x_e, x_o, stats) =
                wilson_propagator_column(&op, comm, &b_e, &b_o, problem.tol, problem.maxiter)?;
            total_iters += stats.iterations;
            for (field, parity) in [(&x_e, Parity::Even), (&x_o, Parity::Odd)] {
                for (idx, c) in sub.sites(parity) {
                    corr[c[3] + sub.origin[3]] += field.site(idx).norm_sqr();
                }
            }
        }
    }
    comm.allreduce_sum(&mut corr)?;
    Ok((corr, total_iters))
}

/// Convenience: the whole pipeline for a problem on one grid rank.
pub fn pion_from_problem<C: Communicator>(
    problem: &StaggeredProblem,
    grid: &ProcessGrid,
    mut comm: C,
) -> Result<(Vec<f64>, SolveStats)> {
    let rank = comm.rank();
    let op = problem.build_operator(grid, rank)?;
    let b = point_source(&op, [0, 0, 0, 0], 0)?;
    let (x_e, x_o, stats) =
        staggered_propagator(&op, share(&mut comm), &b, problem.tol, problem.maxiter)?;
    let corr = pion_correlator(&x_e, &x_o, problem.global.0[3], &mut comm)?;
    Ok((corr, stats))
}

// The propagator needs the communicator by value while the correlator
// needs it afterwards; a tiny forwarding communicator keeps the API
// simple for callers with a single endpoint.
fn share<C: Communicator>(c: &mut C) -> ShareComm<'_, C> {
    ShareComm(c)
}

struct ShareComm<'a, C>(&'a mut C);

impl<'a, C: Communicator> Communicator for ShareComm<'a, C> {
    fn rank(&self) -> usize {
        self.0.rank()
    }
    fn size(&self) -> usize {
        self.0.size()
    }
    fn grid(&self) -> &ProcessGrid {
        self.0.grid()
    }
    fn send_recv(&mut self, mu: usize, fwd: bool, s: &[f64], r: &mut [f64]) -> Result<()> {
        self.0.send_recv(mu, fwd, s, r)
    }
    fn allreduce_sum(&mut self, v: &mut [f64]) -> Result<()> {
        self.0.allreduce_sum(v)
    }
    fn allreduce_max(&mut self, v: &mut [f64]) -> Result<()> {
        self.0.allreduce_max(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqcd_comms::SingleComm;
    use lqcd_lattice::Dims;

    fn setup() -> (StaggeredProblem, ProcessGrid) {
        let mut p = StaggeredProblem::small();
        p.global = Dims([4, 4, 4, 16]); // long T for a clean decay
        p.mass = 0.5;
        p.disorder = 0.15;
        p.tol = 1e-9;
        let grid = ProcessGrid::new(Dims([1, 1, 1, 1]), p.global).unwrap();
        (p, grid)
    }

    #[test]
    fn propagator_satisfies_the_dirac_equation() {
        let (p, grid) = setup();
        let op = p.build_operator(&grid, 0).unwrap();
        let b = point_source(&op, [0, 0, 0, 0], 0).unwrap();
        let comm = SingleComm::new(p.global).unwrap();
        let (x_e, x_o, stats) = staggered_propagator(&op, comm, &b, p.tol, p.maxiter).unwrap();
        assert!(stats.converged);
        let mut comm = SingleComm::new(p.global).unwrap();
        let resid = verify_propagator(&op, &mut comm, &x_e, &x_o, &b).unwrap();
        assert!(resid < 1e-7, "M x ≠ b: {resid}");
    }

    #[test]
    fn pion_correlator_is_positive_and_decays() {
        let (p, grid) = setup();
        let comm = SingleComm::new(p.global).unwrap();
        let (corr, stats) = pion_from_problem(&p, &grid, comm).unwrap();
        assert!(stats.converged);
        assert_eq!(corr.len(), 16);
        assert!(corr.iter().all(|&c| c > 0.0), "correlator must be positive: {corr:?}");
        // Decay away from the source up to the periodic midpoint.
        for t in 0..7 {
            assert!(
                corr[t + 1] < corr[t],
                "C(t) must decay toward the midpoint: C({})={} C({})={}",
                t,
                corr[t],
                t + 1,
                corr[t + 1]
            );
        }
        // Approximate time-reflection symmetry of the periodic lattice.
        for t in 1..8 {
            let ratio = corr[t] / corr[16 - t];
            assert!((0.2..5.0).contains(&ratio), "gross asymmetry at t={t}: {ratio}");
        }
        // Effective mass positive in the decay region.
        let meff = effective_mass(&corr);
        assert!(meff[1] > 0.0 && meff[5] > 0.0);
    }

    #[test]
    fn odd_origin_is_rejected() {
        let (p, grid) = setup();
        let op = p.build_operator(&grid, 0).unwrap();
        assert!(point_source(&op, [1, 0, 0, 0], 0).is_err());
    }

    #[test]
    fn correlator_is_partition_invariant() {
        use lqcd_comms::run_on_grid;
        let (p, _) = setup();
        let serial = {
            let grid = ProcessGrid::new(Dims([1, 1, 1, 1]), p.global).unwrap();
            let comm = SingleComm::new(p.global).unwrap();
            pion_from_problem(&p, &grid, comm).unwrap().0
        };
        let grid = ProcessGrid::new(Dims([1, 1, 1, 2]), p.global).unwrap();
        let grid2 = grid.clone();
        let p2 = p.clone();
        let dist = run_on_grid(grid, move |comm| pion_from_problem(&p2, &grid2, comm).unwrap().0);
        for (a, b) in serial.iter().zip(&dist[0]) {
            assert!((a - b).abs() < 1e-8 * a.max(1e-30), "correlators differ: {a} vs {b}");
        }
    }
}

#[cfg(test)]
mod wilson_tests {
    use super::*;
    use crate::problem::WilsonProblem;
    use lqcd_comms::SingleComm;
    use lqcd_lattice::Dims;

    #[test]
    fn wilson_pion_correlator_is_positive_and_decays() {
        let mut p = WilsonProblem::small();
        p.global = Dims([4, 4, 4, 16]);
        p.mass = 0.4;
        p.disorder = 0.15;
        p.tol = 1e-9;
        let grid = ProcessGrid::new(Dims([1, 1, 1, 1]), p.global).unwrap();
        let mut comm = SingleComm::new(p.global).unwrap();
        let (corr, iters) = wilson_pion_correlator(&p, &grid, &mut comm).unwrap();
        assert!(iters > 0);
        assert_eq!(corr.len(), 16);
        assert!(corr.iter().all(|&c| c > 0.0), "pion correlator must be positive: {corr:?}");
        for t in 0..6 {
            assert!(corr[t + 1] < corr[t], "decay violated at t={t}: {corr:?}");
        }
        // Periodic backward image: approximate reflection symmetry.
        for t in 1..8 {
            let r = corr[t] / corr[16 - t];
            assert!((0.2..5.0).contains(&r), "asymmetry at t={t}: {r}");
        }
    }

    #[test]
    fn wilson_and_staggered_pions_share_qualitative_shape() {
        // Cross-discretization consistency: both correlators are positive
        // and decay; their effective masses differ (different actions and
        // masses) but both plateau at positive values.
        let mut pw = WilsonProblem::small();
        pw.global = Dims([4, 4, 4, 16]);
        pw.mass = 0.4;
        pw.disorder = 0.15;
        let grid = ProcessGrid::new(Dims([1, 1, 1, 1]), pw.global).unwrap();
        let mut comm = SingleComm::new(pw.global).unwrap();
        let (cw, _) = wilson_pion_correlator(&pw, &grid, &mut comm).unwrap();
        let mut ps = StaggeredProblem::small();
        ps.global = Dims([4, 4, 4, 16]);
        ps.mass = 0.5;
        ps.disorder = 0.15;
        let comm = SingleComm::new(ps.global).unwrap();
        let (cs, _) = pion_from_problem(&ps, &grid, comm).unwrap();
        for corr in [&cw, &cs] {
            let meff = effective_mass(corr);
            assert!(meff[2] > 0.0 && meff[4] > 0.0, "no decay plateau: {meff:?}");
        }
    }
}

//! Measured-iteration calibration experiments.
//!
//! The performance model's iteration inputs (EXPERIMENTS.md) come from
//! running the *real* solvers here at laptop scale: the DD block-size
//! dependence of GCR-DD outer iterations, the BiCGstab baseline count,
//! and the single-vs-double iteration overhead of the mixed-precision
//! staggered solver (§9.2's ≈ 20 % note).

use crate::problem::{StaggeredProblem, WilsonProblem};
use lqcd_comms::run_on_grid;
use lqcd_lattice::{Dims, PartitionScheme, ProcessGrid, SubLattice};
use lqcd_solvers::spaces::{cast_staggered_op, EoWilsonSpace, StaggeredNormalSpace};
use lqcd_solvers::{bicgstab, cg, gcr, multishift_cg, SchwarzMR, SolverSpace};
use lqcd_util::Result;
use serde::{Deserialize, Serialize};

/// One measured GCR-DD data point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DdCalibrationPoint {
    /// Partitioning used.
    pub scheme: String,
    /// Ranks (= Schwarz blocks).
    pub ranks: usize,
    /// Checkerboard block volume.
    pub block_cb: usize,
    /// Measured GCR-DD outer iterations.
    pub outer_iterations: usize,
    /// Measured BiCGstab iterations on the same system.
    pub bicgstab_iterations: usize,
}

/// Measure GCR-DD outer iterations vs. block size on a real lattice:
/// the data behind the `block_exponent` of the performance model.
pub fn measure_dd_block_dependence(
    problem: &WilsonProblem,
    rank_counts: &[usize],
) -> Result<Vec<DdCalibrationPoint>> {
    let mut out = Vec::new();
    for &ranks in rank_counts {
        let scheme = PartitionScheme::XYZT;
        let grid = scheme.grid(problem.global, ranks)?;
        let block_cb = SubLattice::for_rank(&grid, 0).volume_cb();
        let p = problem.clone();
        let g = grid.clone();
        let per_rank = run_on_grid(grid, move |mut comm| -> Result<(usize, usize)> {
            let op = p.build_operator(&mut comm, &g)?;
            let mut space = EoWilsonSpace::new(op, comm)?;
            let b = p.rhs(&space.op);
            let mut x = space.alloc();
            let gcr_stats = gcr(&mut space, &mut SchwarzMR::new(p.mr_steps), &mut x, &b, &p.gcr)?;
            let mut x2 = space.alloc();
            let bi = bicgstab(&mut space, &mut x2, &b, p.tol, p.maxiter)?;
            Ok((gcr_stats.iterations, bi.iterations))
        });
        let (outer, bicg) = per_rank.into_iter().next().expect("at least one rank")?;
        out.push(DdCalibrationPoint {
            scheme: scheme.label().into(),
            ranks,
            block_cb,
            outer_iterations: outer,
            bicgstab_iterations: bicg,
        });
    }
    Ok(out)
}

/// Fit the block exponent `q` of `outer ∝ block^{-q}` from measured
/// points (least squares in log-log).
pub fn fit_block_exponent(points: &[DdCalibrationPoint]) -> f64 {
    let n = points.len() as f64;
    if points.len() < 2 {
        return 0.0;
    }
    let xs: Vec<f64> = points.iter().map(|p| (p.block_cb as f64).ln()).collect();
    let ys: Vec<f64> = points.iter().map(|p| (p.outer_iterations as f64).ln()).collect();
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    // outer ∝ block^{slope}; q = −slope.
    -(sxy / sxx)
}

/// Measured single-vs-double iteration overhead of the staggered solver
/// (the ≈ 20 % increase noted in §9.2 for mixed precision).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrecisionOverhead {
    /// Iterations of the f64 CG base solve.
    pub double_iters: usize,
    /// Iterations of the f32 CG solve to the same (loose) tolerance.
    pub single_iters: usize,
    /// `single/double − 1`.
    pub overhead: f64,
}

/// Measure the single-precision iteration overhead on the staggered
/// normal system at tolerance `tol` (must be within f32 reach, ≳ 1e-5).
pub fn measure_precision_overhead(
    problem: &StaggeredProblem,
    tol: f64,
) -> Result<PrecisionOverhead> {
    let grid = ProcessGrid::new(Dims([1, 1, 1, 1]), problem.global)?;
    let op = problem.build_operator(&grid, 0)?;
    let op32 = cast_staggered_op::<f32>(&op)?;
    let comm = lqcd_comms::SingleComm::new(problem.global)?;
    let comm32 = lqcd_comms::SingleComm::new(problem.global)?;
    let mut hi = StaggeredNormalSpace::new(op, comm);
    let mut lo = StaggeredNormalSpace::new(op32, comm32);
    let b = problem.rhs(&hi.op);
    let mut x = hi.alloc();
    let d = cg(&mut hi, &mut x, &b, tol, problem.maxiter)?;
    // Same solve in f32.
    let mut b32 = lo.alloc();
    use lqcd_field::CastSite;
    for idx in 0..b.num_sites() {
        b32.set_site(idx, b.site(idx).cast_site());
    }
    let mut x32 = lo.alloc();
    let s = cg(&mut lo, &mut x32, &b32, tol, problem.maxiter)?;
    Ok(PrecisionOverhead {
        double_iters: d.iterations,
        single_iters: s.iterations,
        overhead: s.iterations as f64 / d.iterations as f64 - 1.0,
    })
}

/// Measured multishift-vs-sequential matvec economy: the multi-shift
/// solver produces all N solutions in one Krylov pass (§3.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultishiftEconomy {
    /// Matvecs used by the multi-shift solve.
    pub multishift_matvecs: usize,
    /// Matvecs a sequential per-shift CG would use.
    pub sequential_matvecs: usize,
}

/// Measure matvec counts multishift vs sequential CG.
pub fn measure_multishift_economy(problem: &StaggeredProblem) -> Result<MultishiftEconomy> {
    let grid = ProcessGrid::new(Dims([1, 1, 1, 1]), problem.global)?;
    let op = problem.build_operator(&grid, 0)?;
    let comm = lqcd_comms::SingleComm::new(problem.global)?;
    let mut space = StaggeredNormalSpace::new(op, comm);
    let b = problem.rhs(&space.op);
    let ms = multishift_cg(&mut space, &problem.shifts, &b, problem.tol, problem.maxiter)?;
    // Sequential: one CG per shift via the shifted view.
    let mut seq = 0usize;
    for &sigma in &problem.shifts {
        let mut view = lqcd_solvers::mixed::ShiftedSpace { base: &mut space, sigma };
        let mut x = view.alloc();
        let st = cg(&mut view, &mut x, &b, problem.tol, problem.maxiter)?;
        seq += st.matvecs;
    }
    Ok(MultishiftEconomy { multishift_matvecs: ms.stats.matvecs, sequential_matvecs: seq })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dd_block_dependence_and_fit() {
        let mut p = WilsonProblem::small();
        p.tol = 1e-7;
        p.gcr.tol = 1e-7;
        let points = measure_dd_block_dependence(&p, &[1, 4, 16]).unwrap();
        assert_eq!(points.len(), 3);
        // Blocks shrink with more ranks; iterations don't decrease.
        assert!(points[2].block_cb < points[0].block_cb);
        assert!(points[2].outer_iterations >= points[0].outer_iterations);
        // BiCGstab count is partition-independent (same linear system).
        let b0 = points[0].bicgstab_iterations as f64;
        for pt in &points {
            let rel = (pt.bicgstab_iterations as f64 - b0).abs() / b0;
            assert!(rel < 0.05, "BiCGstab count varies with partitioning: {points:?}");
        }
        let q = fit_block_exponent(&points);
        assert!((-0.05..0.6).contains(&q), "block exponent {q}");
    }

    #[test]
    fn precision_overhead_is_modest() {
        let p = StaggeredProblem::small();
        let o = measure_precision_overhead(&p, 1e-4).unwrap();
        assert!(o.single_iters >= o.double_iters);
        assert!(o.overhead < 0.5, "f32 overhead {:.0}% too large", o.overhead * 100.0);
    }

    #[test]
    fn multishift_saves_matvecs() {
        let p = StaggeredProblem::small();
        let e = measure_multishift_economy(&p).unwrap();
        assert!(
            e.multishift_matvecs * 2 < e.sequential_matvecs,
            "multishift {} vs sequential {}",
            e.multishift_matvecs,
            e.sequential_matvecs
        );
    }
}

//! The ensemble workflow of §2: generate importance-sampled gauge
//! configurations sequentially, checkpoint them, evaluate observables on
//! each, and form ensemble averages with jackknife errors — the
//! generation (capability) and analysis (capacity) phases end to end at
//! laptop scale.

use lqcd_comms::SingleComm;
use lqcd_dirac::StaggeredOp;
use lqcd_gauge::field::{GaugeField, GaugeStart};
use lqcd_gauge::heatbath::{heatbath_sweep, overrelax_sweep};
use lqcd_gauge::{average_plaquette, AsqtadCoeffs, AsqtadLinks};
use lqcd_lattice::{Dims, FaceGeometry, SubLattice};
use lqcd_util::rng::SeedTree;
use lqcd_util::{Error, Result};
use std::sync::Arc;

/// Parameters of a small quenched ensemble.
#[derive(Clone, Debug)]
pub struct EnsembleParams {
    /// Lattice extents.
    pub global: Dims,
    /// Gauge coupling β.
    pub beta: f64,
    /// Thermalization sweeps before the first saved configuration.
    pub thermalization: usize,
    /// Heatbath(+OR) sweeps between saved configurations (decorrelation).
    pub separation: usize,
    /// Number of configurations.
    pub count: usize,
    /// Master seed.
    pub seed: u64,
}

impl EnsembleParams {
    /// A tiny default ensemble for tests and demos.
    pub fn tiny() -> Self {
        EnsembleParams {
            global: Dims([4, 4, 4, 8]),
            beta: 5.7,
            thermalization: 6,
            separation: 2,
            count: 4,
            seed: 20260709,
        }
    }
}

/// Generate the ensemble (sequential Markov chain, as §2 describes) and
/// return the configurations.
pub fn generate_ensemble(p: &EnsembleParams) -> Result<Vec<GaugeField<f64>>> {
    let sub = Arc::new(SubLattice::single(p.global)?);
    let faces = FaceGeometry::new(&sub, 3)?;
    let seeds = SeedTree::new(p.seed);
    let mut g = GaugeField::<f64>::generate(sub, &faces, p.global, &seeds, GaugeStart::Hot);
    let mut sweep_id = 0u64;
    let do_sweeps = |g: &mut GaugeField<f64>, n: usize, sweep_id: &mut u64| {
        for _ in 0..n {
            heatbath_sweep(g, p.global, p.beta, &seeds, *sweep_id);
            overrelax_sweep(g, p.global);
            *sweep_id += 1;
        }
    };
    do_sweeps(&mut g, p.thermalization, &mut sweep_id);
    let mut out = Vec::with_capacity(p.count);
    for _ in 0..p.count {
        do_sweeps(&mut g, p.separation, &mut sweep_id);
        out.push(g.clone());
    }
    Ok(out)
}

/// One configuration's measurements.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Average plaquette.
    pub plaquette: f64,
    /// Pion correlator `C(t)`.
    pub pion: Vec<f64>,
}

/// Analysis phase: measure the plaquette and the staggered pion
/// correlator on each configuration ("task parallelized over the
/// available configurations" in production; sequential here).
pub fn analyze_ensemble(
    p: &EnsembleParams,
    configs: &[GaugeField<f64>],
    mass: f64,
    tol: f64,
) -> Result<Vec<Measurement>> {
    let mut out = Vec::with_capacity(configs.len());
    for g in configs {
        let plaquette = average_plaquette(g, p.global);
        let links = AsqtadLinks::compute(g, p.global, &AsqtadCoeffs::default());
        let op = StaggeredOp::new(links.fat, links.long, mass)?;
        let b = crate::observables::point_source(&op, [0, 0, 0, 0], 0)?;
        let comm = SingleComm::new(p.global)?;
        let (x_e, x_o, _) = crate::observables::staggered_propagator(&op, comm, &b, tol, 20_000)?;
        let mut comm = SingleComm::new(p.global)?;
        let pion = crate::observables::pion_correlator(&x_e, &x_o, p.global.0[3], &mut comm)?;
        out.push(Measurement { plaquette, pion });
    }
    Ok(out)
}

/// Jackknife mean and error of a per-configuration scalar.
pub fn jackknife(samples: &[f64]) -> Result<(f64, f64)> {
    let n = samples.len();
    if n < 2 {
        return Err(Error::Config("jackknife needs at least two samples".into()));
    }
    let total: f64 = samples.iter().sum();
    let mean = total / n as f64;
    // Leave-one-out means.
    let loo: Vec<f64> = samples.iter().map(|s| (total - s) / (n - 1) as f64).collect();
    let var: f64 =
        loo.iter().map(|m| (m - mean) * (m - mean)).sum::<f64>() * (n - 1) as f64 / n as f64;
    Ok((mean, var.sqrt()))
}

/// Ensemble-averaged pion correlator with per-timeslice jackknife errors.
pub fn ensemble_pion(measurements: &[Measurement]) -> Result<Vec<(f64, f64)>> {
    let nt = measurements
        .first()
        .map(|m| m.pion.len())
        .ok_or_else(|| Error::Config("empty ensemble".into()))?;
    (0..nt)
        .map(|t| {
            let samples: Vec<f64> = measurements.iter().map(|m| m.pion[t]).collect();
            jackknife(&samples)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jackknife_of_constant_has_zero_error() {
        let (m, e) = jackknife(&[3.0, 3.0, 3.0, 3.0]).unwrap();
        assert_eq!(m, 3.0);
        assert_eq!(e, 0.0);
        assert!(jackknife(&[1.0]).is_err());
    }

    #[test]
    fn jackknife_matches_standard_error_for_gaussian() {
        // For iid samples, jackknife error ≈ σ/√n.
        let t = SeedTree::new(5);
        let mut rng = t.rng();
        let n = 400;
        let samples: Vec<f64> = (0..n / 2)
            .flat_map(|_| {
                let (a, b) = lqcd_util::rng::normal_pair(&mut rng);
                [10.0 + a, 10.0 + b]
            })
            .collect();
        let (mean, err) = jackknife(&samples).unwrap();
        assert!((mean - 10.0).abs() < 0.2);
        let expect = 1.0 / (n as f64).sqrt();
        assert!((err - expect).abs() < 0.4 * expect, "err {err} vs σ/√n {expect}");
    }

    #[test]
    fn tiny_ensemble_end_to_end() {
        let mut p = EnsembleParams::tiny();
        p.count = 3;
        p.thermalization = 4;
        let configs = generate_ensemble(&p).unwrap();
        assert_eq!(configs.len(), 3);
        // Configurations are decorrelated Markov states, not copies.
        let p0 = average_plaquette(&configs[0], p.global);
        let p1 = average_plaquette(&configs[1], p.global);
        assert!((p0 - p1).abs() > 1e-8, "chain did not move");
        // Plaquettes in the physical range for β = 5.7.
        for c in &configs {
            let plq = average_plaquette(c, p.global);
            assert!((0.3..0.7).contains(&plq), "plaquette {plq}");
        }
        let measurements = analyze_ensemble(&p, &configs, 0.5, 1e-8).unwrap();
        let avg = ensemble_pion(&measurements).unwrap();
        assert_eq!(avg.len(), p.global.0[3]);
        // Averaged correlator positive, decaying, with finite errors.
        for (t, (c, e)) in avg.iter().enumerate().take(4) {
            assert!(*c > 0.0, "C({t}) = {c}");
            assert!(e.is_finite() && *e >= 0.0);
        }
        assert!(avg[2].0 < avg[0].0, "no decay in the ensemble average");
        // Plaquette jackknife over the ensemble.
        let plqs: Vec<f64> = measurements.iter().map(|m| m.plaquette).collect();
        let (pm, pe) = jackknife(&plqs).unwrap();
        assert!((0.3..0.7).contains(&pm) && pe < 0.1);
    }
}

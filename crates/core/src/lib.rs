//! The paper's system, assembled: high-level problem builders and solver
//! drivers that put the multi-dimensionally partitioned operators, the
//! GCR-DD solver stack, and the simulated cluster together behind a small
//! API. This is the crate examples and benches program against.
//!
//! * [`WilsonProblem`] / [`StaggeredProblem`] — declarative descriptions
//!   of a solve (volume, process grid, gauge disorder, mass, solver
//!   parameters) that any rank can instantiate;
//! * [`drivers`] — SPMD entry points: run a whole distributed solve over
//!   a process grid with one call, returning per-rank statistics;
//!   [`drivers::run_wilson_gcr_dd_resilient`] adds the fault-tolerant
//!   variant (deadline/retry comms, panic-safe launch, precision-fallback
//!   ladder);
//! * [`supervise`] — checkpoint/restart for long solves: periodic field
//!   snapshots at GCR restart boundaries, watchdog monitoring, and
//!   [`supervise::run_wilson_gcr_dd_supervised`], which rebuilds a dead
//!   world and resumes from the newest common checkpoint;
//! * [`calibration`] — measured-iteration experiments linking the real
//!   solvers to the performance model's iteration inputs (the
//!   EXPERIMENTS.md data).

pub mod calibration;
pub mod drivers;
pub mod ensemble;
pub mod observables;
pub mod problem;
pub mod supervise;
pub mod tuning;

pub use drivers::{
    run_staggered_multishift, run_wilson_bicgstab, run_wilson_gcr_dd, run_wilson_gcr_dd_resilient,
    PrecisionRung, StaggeredSolveOutcome, WilsonSolveOutcome,
};
pub use problem::{StaggeredProblem, WilsonProblem};
pub use supervise::{
    run_wilson_gcr_dd_supervised, CheckpointingMonitor, SolveCheckpointMeta, SupervisedOutcome,
    SupervisorConfig,
};
pub use tuning::{
    run_staggered_multishift_tuned, run_wilson_gcr_dd_tuned, tune_wilson, WilsonTuneOutcome,
};

//! SPMD solver drivers: one call runs a full distributed solve.

use crate::problem::{StaggeredProblem, WilsonProblem};
use lqcd_comms::{run_on_grid, Communicator};
use lqcd_lattice::ProcessGrid;
use lqcd_solvers::spaces::{EoWilsonSpace, StaggeredNormalSpace};
use lqcd_solvers::{bicgstab, gcr, multishift_cg, SchwarzMR, SolveStats, SolverSpace};
use lqcd_util::Result;

/// Per-rank outcome of a Wilson solve.
#[derive(Debug, Clone)]
pub struct WilsonSolveOutcome {
    /// Solver statistics.
    pub stats: SolveStats,
    /// Global solution norm² (identical on all ranks).
    pub solution_norm2: f64,
    /// Communicating matvecs this rank performed.
    pub matvecs: usize,
    /// Dirichlet (Schwarz-block) matvecs this rank performed.
    pub dirichlet_matvecs: usize,
}

/// Run a distributed mixed-workflow BiCGstab solve of the even-odd
/// preconditioned Wilson-clover system over `grid`. Returns one outcome
/// per rank (rank order).
pub fn run_wilson_bicgstab(
    problem: &WilsonProblem,
    grid: ProcessGrid,
) -> Result<Vec<WilsonSolveOutcome>> {
    let p = problem.clone();
    let g = grid.clone();
    let results = run_on_grid(grid, move |mut comm| -> Result<WilsonSolveOutcome> {
        let op = p.build_operator(&mut comm, &g)?;
        let mut space = EoWilsonSpace::new(op, comm)?;
        let b = p.rhs(&space.op);
        let mut x = space.alloc();
        let stats = bicgstab(&mut space, &mut x, &b, p.tol, p.maxiter)?;
        let n2 = space.norm2(&x)?;
        Ok(WilsonSolveOutcome {
            stats,
            solution_norm2: n2,
            matvecs: space.matvec_count(),
            dirichlet_matvecs: space.dirichlet_matvecs(),
        })
    });
    results.into_iter().collect()
}

/// Run a distributed GCR-DD solve (additive-Schwarz preconditioned
/// flexible GCR, Algorithm 1) over `grid`.
pub fn run_wilson_gcr_dd(
    problem: &WilsonProblem,
    grid: ProcessGrid,
    half_precision: bool,
) -> Result<Vec<WilsonSolveOutcome>> {
    let p = problem.clone();
    let g = grid.clone();
    let results = run_on_grid(grid, move |mut comm| -> Result<WilsonSolveOutcome> {
        let op = p.build_operator(&mut comm, &g)?;
        if half_precision {
            // Single-half-half: cast the operator to f32, quantized
            // storage for the Krylov space and the block solves.
            let op32 = lqcd_solvers::spaces::cast_wilson_op::<f32>(&op)?;
            let mut space = EoWilsonSpace::new(op32, comm)?.with_half_storage();
            let b = p.rhs(&space.op);
            let mut x = space.alloc();
            let mut precond = SchwarzMR::new(p.mr_steps).quantized();
            let mut params = p.gcr;
            params.quantize_krylov = true;
            let stats = gcr(&mut space, &mut precond, &mut x, &b, &params)?;
            let n2 = space.norm2(&x)?;
            Ok(WilsonSolveOutcome {
                stats,
                solution_norm2: n2,
                matvecs: space.matvec_count(),
                dirichlet_matvecs: space.dirichlet_matvecs(),
            })
        } else {
            let mut space = EoWilsonSpace::new(op, comm)?;
            let b = p.rhs(&space.op);
            let mut x = space.alloc();
            let mut precond = SchwarzMR::new(p.mr_steps);
            let stats = gcr(&mut space, &mut precond, &mut x, &b, &p.gcr)?;
            let n2 = space.norm2(&x)?;
            Ok(WilsonSolveOutcome {
                stats,
                solution_norm2: n2,
                matvecs: space.matvec_count(),
                dirichlet_matvecs: space.dirichlet_matvecs(),
            })
        }
    });
    results.into_iter().collect()
}

/// Per-rank outcome of a staggered multi-shift solve.
#[derive(Debug, Clone)]
pub struct StaggeredSolveOutcome {
    /// Solver statistics (matvecs shared across shifts).
    pub stats: SolveStats,
    /// Iteration at which each shift converged.
    pub converged_at: Vec<usize>,
    /// Global norm² of each shifted solution.
    pub solution_norms: Vec<f64>,
}

/// Run a distributed multi-shift CG solve of `(M†M + σ_i) x_i = b` over
/// `grid`.
pub fn run_staggered_multishift(
    problem: &StaggeredProblem,
    grid: ProcessGrid,
) -> Result<Vec<StaggeredSolveOutcome>> {
    let p = problem.clone();
    let g = grid.clone();
    let results = run_on_grid(grid, move |comm| -> Result<StaggeredSolveOutcome> {
        let rank = comm.rank();
        let op = p.build_operator(&g, rank)?;
        let mut space = StaggeredNormalSpace::new(op, comm);
        let b = p.rhs(&space.op);
        let ms = multishift_cg(&mut space, &p.shifts, &b, p.tol, p.maxiter)?;
        let mut norms = Vec::with_capacity(ms.solutions.len());
        for s in &ms.solutions {
            norms.push(space.norm2(s)?);
        }
        Ok(StaggeredSolveOutcome {
            stats: ms.stats,
            converged_at: ms.converged_at,
            solution_norms: norms,
        })
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqcd_lattice::Dims;

    #[test]
    fn bicgstab_and_gcr_dd_agree_on_solution_norm() {
        let p = WilsonProblem::small();
        let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), p.global).unwrap();
        let b = run_wilson_bicgstab(&p, grid.clone()).unwrap();
        let g = run_wilson_gcr_dd(&p, grid, false).unwrap();
        assert!(b[0].stats.converged && g[0].stats.converged);
        let rel = (b[0].solution_norm2 - g[0].solution_norm2).abs() / b[0].solution_norm2;
        assert!(rel < 1e-6, "solvers disagree: {rel}");
        // All ranks report identical global norms.
        for r in 1..4 {
            assert!((b[r].solution_norm2 - b[0].solution_norm2).abs() < 1e-9);
        }
        // GCR-DD did block work; BiCGstab did none.
        assert!(g[0].dirichlet_matvecs > 0);
        assert_eq!(b[0].dirichlet_matvecs, 0);
    }

    #[test]
    fn half_precision_gcr_dd_reaches_single_accuracy() {
        let mut p = WilsonProblem::small();
        p.tol = 3e-5;
        p.gcr.tol = 3e-5;
        let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), p.global).unwrap();
        let out = run_wilson_gcr_dd(&p, grid, true).unwrap();
        assert!(out.iter().all(|o| o.stats.converged));
        assert!(out[0].stats.residual <= 3e-5);
    }

    #[test]
    fn multishift_driver_distributed() {
        let p = StaggeredProblem::small();
        let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), p.global).unwrap();
        let out = run_staggered_multishift(&p, grid).unwrap();
        assert!(out[0].stats.converged);
        // Shift ordering: larger shifts converge no later.
        let ca = &out[0].converged_at;
        for w in ca.windows(2) {
            assert!(w[1] <= w[0], "larger shift converged later: {ca:?}");
        }
        // Norm decreases with shift (more regularized system).
        let n = &out[0].solution_norms;
        for w in n.windows(2) {
            assert!(w[1] < w[0], "shifted solutions should shrink: {n:?}");
        }
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;
    use lqcd_lattice::Dims;
    use lqcd_util::Error;

    #[test]
    fn exhausted_iteration_budget_surfaces_no_convergence() {
        let mut p = WilsonProblem::small();
        p.maxiter = 1;
        p.tol = 1e-14;
        let grid = ProcessGrid::new(Dims([1, 1, 1, 2]), p.global).unwrap();
        match run_wilson_bicgstab(&p, grid) {
            Err(Error::NoConvergence { solver: "bicgstab", iterations, .. }) => {
                assert_eq!(iterations, 1);
            }
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn gcr_budget_exhaustion_surfaces_too() {
        let mut p = WilsonProblem::small();
        p.gcr.maxiter = 2;
        p.gcr.tol = 1e-14;
        let grid = ProcessGrid::new(Dims([1, 1, 1, 2]), p.global).unwrap();
        assert!(matches!(
            run_wilson_gcr_dd(&p, grid, false),
            Err(Error::NoConvergence { solver: "gcr", .. })
        ));
    }

    #[test]
    fn invalid_grid_is_rejected_before_any_solve() {
        let p = WilsonProblem::small();
        // 3 ranks cannot divide an 8-extent dimension evenly.
        assert!(ProcessGrid::new(Dims([1, 1, 1, 3]), p.global).is_err());
        // Odd local extents break checkerboarding.
        assert!(ProcessGrid::new(Dims([1, 1, 1, 4]), Dims([8, 8, 8, 12])).is_err());
    }

    #[test]
    fn thin_partition_rejects_the_naik_stencil() {
        // Local T extent 2 < depth 3: the staggered operator must refuse.
        let mut p = StaggeredProblem::small();
        p.global = Dims([8, 8, 8, 8]);
        let grid = ProcessGrid::new(Dims([1, 1, 1, 4]), p.global).unwrap();
        assert!(matches!(p.build_operator(&grid, 0), Err(Error::Geometry(_))));
    }
}

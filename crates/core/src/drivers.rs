//! SPMD solver drivers: one call runs a full distributed solve.
//!
//! Besides the plain launchers, this module hosts the
//! graceful-degradation ladder ([`run_wilson_gcr_dd_resilient`]): a
//! GCR-DD solve started at a reduced precision that automatically
//! restarts one rung higher (half → single → double) when the solver
//! reports a breakdown or fails to converge — the recovery story for
//! corrupted data or an overly aggressive precision choice. See
//! DESIGN.md, "Fault model & recovery".

use crate::problem::{StaggeredProblem, WilsonProblem};
use lqcd_comms::{
    run_on_grid, run_world_fallible, CommConfig, Communicator, FaultPlan, FaultyComm, SharedComm,
    ThreadedComm,
};
use lqcd_dirac::{OverlapHost, WilsonCloverOp};
use lqcd_lattice::ProcessGrid;
use lqcd_solvers::spaces::{cast_wilson_op, EoWilsonSpace, StaggeredNormalSpace};
use lqcd_solvers::{
    bicgstab, gcr, gcr_monitored, multishift_cg, SchwarzMR, SolveStats, SolveWatchdog, SolverSpace,
};
use lqcd_util::{Error, Result};
use std::time::{Duration, Instant};

/// Per-rank outcome of a Wilson solve.
#[derive(Debug, Clone)]
pub struct WilsonSolveOutcome {
    /// Solver statistics.
    pub stats: SolveStats,
    /// Global solution norm² (identical on all ranks).
    pub solution_norm2: f64,
    /// Communicating matvecs this rank performed.
    pub matvecs: usize,
    /// Dirichlet (Schwarz-block) matvecs this rank performed.
    pub dirichlet_matvecs: usize,
}

/// Run a distributed mixed-workflow BiCGstab solve of the even-odd
/// preconditioned Wilson-clover system over `grid`. Returns one outcome
/// per rank (rank order).
pub fn run_wilson_bicgstab(
    problem: &WilsonProblem,
    grid: ProcessGrid,
) -> Result<Vec<WilsonSolveOutcome>> {
    let p = problem.clone();
    let g = grid.clone();
    let results = run_on_grid(grid, move |mut comm| -> Result<WilsonSolveOutcome> {
        let op = p.build_operator(&mut comm, &g)?;
        let mut space = EoWilsonSpace::new(op, comm)?;
        let b = p.rhs(&space.op);
        let mut x = space.alloc();
        let mut stats = bicgstab(&mut space, &mut x, &b, p.tol, p.maxiter)?;
        record_dslash(&mut stats, space.op.dslash_counters());
        let n2 = space.norm2(&x)?;
        Ok(WilsonSolveOutcome {
            stats,
            solution_norm2: n2,
            matvecs: space.matvec_count(),
            dirichlet_matvecs: space.dirichlet_matvecs(),
        })
    });
    results.into_iter().collect()
}

/// Run a distributed GCR-DD solve (additive-Schwarz preconditioned
/// flexible GCR, Algorithm 1) over `grid`.
pub fn run_wilson_gcr_dd(
    problem: &WilsonProblem,
    grid: ProcessGrid,
    half_precision: bool,
) -> Result<Vec<WilsonSolveOutcome>> {
    let p = problem.clone();
    let g = grid.clone();
    let results = run_on_grid(grid, move |mut comm| -> Result<WilsonSolveOutcome> {
        let op = p.build_operator(&mut comm, &g)?;
        if half_precision {
            // Single-half-half: cast the operator to f32, quantized
            // storage for the Krylov space and the block solves.
            let op32 = lqcd_solvers::spaces::cast_wilson_op::<f32>(&op)?;
            let mut space = EoWilsonSpace::new(op32, comm)?.with_half_storage();
            let b = p.rhs(&space.op);
            let mut x = space.alloc();
            let mut precond = SchwarzMR::new(p.mr_steps).quantized();
            let mut params = p.gcr;
            params.quantize_krylov = true;
            let mut stats = gcr(&mut space, &mut precond, &mut x, &b, &params)?;
            record_dslash(&mut stats, space.op.dslash_counters());
            let n2 = space.norm2(&x)?;
            Ok(WilsonSolveOutcome {
                stats,
                solution_norm2: n2,
                matvecs: space.matvec_count(),
                dirichlet_matvecs: space.dirichlet_matvecs(),
            })
        } else {
            let mut space = EoWilsonSpace::new(op, comm)?;
            let b = p.rhs(&space.op);
            let mut x = space.alloc();
            let mut precond = SchwarzMR::new(p.mr_steps);
            let mut stats = gcr(&mut space, &mut precond, &mut x, &b, &p.gcr)?;
            record_dslash(&mut stats, space.op.dslash_counters());
            let n2 = space.norm2(&x)?;
            Ok(WilsonSolveOutcome {
                stats,
                solution_norm2: n2,
                matvecs: space.matvec_count(),
                dirichlet_matvecs: space.dirichlet_matvecs(),
            })
        }
    });
    results.into_iter().collect()
}

/// One rung of the precision ladder the resilient driver climbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrecisionRung {
    /// f32 operator with 16-bit Krylov/block storage (the paper's
    /// single-half-half configuration).
    Half,
    /// f32 operator, full single-precision storage.
    Single,
    /// f64 operator — the last resort; a breakdown here is final.
    Double,
}

impl PrecisionRung {
    /// The next-higher rung, if any.
    pub fn escalate(self) -> Option<PrecisionRung> {
        match self {
            PrecisionRung::Half => Some(PrecisionRung::Single),
            PrecisionRung::Single => Some(PrecisionRung::Double),
            PrecisionRung::Double => None,
        }
    }
}

/// Record the dslash work done since `baseline` into a solve's stats and
/// advance the baseline to `now`.
///
/// Operator counters are *cumulative over the operator's lifetime*, so
/// any stats record destined for [`SolveStats::absorb`] must be a delta
/// between two reads — reading totals at rung boundaries double-counts
/// every apply the previous read already claimed when the ladder folds
/// rungs drained from the same shared operator. Threading the baseline
/// through makes the drain delta-by-construction.
pub(crate) fn drain_dslash(
    stats: &mut SolveStats,
    now: lqcd_dirac::DslashCounters,
    baseline: &mut lqcd_dirac::DslashCounters,
) {
    stats.dslash_applies = now.applies.saturating_sub(baseline.applies);
    stats.dslash_total_ns = now.total_ns.saturating_sub(baseline.total_ns);
    stats.dslash_interior_ns = now.interior_ns.saturating_sub(baseline.interior_ns);
    stats.dslash_exposed_comm_ns = now.exposed_comm_ns.saturating_sub(baseline.exposed_comm_ns);
    *baseline = now;
}

/// Drain against a zero baseline — for the single-attempt drivers whose
/// operator is freshly built for exactly one solve.
pub(crate) fn record_dslash(stats: &mut SolveStats, d: lqcd_dirac::DslashCounters) {
    let mut zero = lqcd_dirac::DslashCounters::default();
    drain_dslash(stats, d, &mut zero);
}

/// Outcome of one ladder attempt: success, or the error paired with the
/// salvaged partial stats of the failed rung (what the ladder folds into
/// the final record instead of discarding).
pub(crate) type AttemptResult = std::result::Result<WilsonSolveOutcome, (Error, SolveStats)>;

/// Errors worth retrying at a higher precision: numerical breakdowns
/// (NaN from corruption, quantization overflow) and convergence stalls.
/// Communication failures (timeout, dead rank) are not — more precision
/// will not resurrect a peer.
pub(crate) fn recoverable(e: &Error) -> bool {
    matches!(e, Error::Breakdown { .. } | Error::NoConvergence { .. })
}

/// One GCR-DD attempt at a fixed rung. Every rank makes the same
/// decisions: the breakdown/convergence tests all hang off *global*
/// reductions, so either every rank succeeds or every rank sees the
/// same recoverable error and climbs the ladder in lockstep.
///
/// `prior` is wall time earlier attempts of the same logical solve
/// already consumed; the watchdog counts it against the wall-clock
/// budget. A failed attempt returns the work it *did* perform alongside
/// the error (dslash counters drained as deltas against the operator's
/// state at attempt start) so the ladder can fold it into the final
/// record instead of silently dropping it.
// The Err payload deliberately carries the salvaged SolveStats of the
// failed attempt; boxing it would add an allocation to an error path
// the ladder unwraps immediately.
#[allow(clippy::result_large_err)]
fn gcr_dd_attempt<C: Communicator>(
    p: &WilsonProblem,
    op64: &WilsonCloverOp<f64>,
    comm: SharedComm<C>,
    rung: PrecisionRung,
    prior: Duration,
) -> AttemptResult {
    fn fail(e: Error) -> (Error, SolveStats) {
        (e, SolveStats::new())
    }
    macro_rules! attempt {
        ($space:expr, $precond:expr, $params:expr) => {{
            let mut space = $space.map_err(fail)?;
            let mut baseline = space.op.dslash_counters();
            let b = p.rhs(&space.op);
            let mut x = space.alloc();
            // The watchdog rides every rung of the ladder: a NaN or a
            // stagnating attempt becomes a structured breakdown the
            // ladder can escalate instead of a burned iteration budget.
            // Its budget covers the logical solve, so earlier attempts'
            // elapsed time carries in.
            let mut dog = SolveWatchdog::resumed("gcr-dd", p.watchdog, prior);
            match gcr_monitored(&mut space, &mut $precond, &mut x, &b, &$params, &mut dog) {
                Ok(mut stats) => {
                    drain_dslash(&mut stats, space.op.dslash_counters(), &mut baseline);
                    let n2 = space.norm2(&x).map_err(|e| (e, stats))?;
                    Ok(WilsonSolveOutcome {
                        stats,
                        solution_norm2: n2,
                        matvecs: space.matvec_count(),
                        dirichlet_matvecs: space.dirichlet_matvecs(),
                    })
                }
                Err(e) => {
                    // Salvage what the failed rung actually did.
                    let mut partial = SolveStats::new();
                    partial.matvecs = space.matvec_count();
                    partial.precond_matvecs = space.dirichlet_matvecs();
                    drain_dslash(&mut partial, space.op.dslash_counters(), &mut baseline);
                    Err((e, partial))
                }
            }
        }};
    }
    match rung {
        PrecisionRung::Double => {
            let op = cast_wilson_op::<f64>(op64).map_err(fail)?;
            attempt!(EoWilsonSpace::new(op, comm), SchwarzMR::new(p.mr_steps), p.gcr)
        }
        PrecisionRung::Single => {
            let op = cast_wilson_op::<f32>(op64).map_err(fail)?;
            attempt!(EoWilsonSpace::new(op, comm), SchwarzMR::new(p.mr_steps), p.gcr)
        }
        PrecisionRung::Half => {
            let op = cast_wilson_op::<f32>(op64).map_err(fail)?;
            let mut params = p.gcr;
            params.quantize_krylov = true;
            attempt!(
                EoWilsonSpace::new(op, comm).map(|s| s.with_half_storage()),
                SchwarzMR::new(p.mr_steps).quantized(),
                params
            )
        }
    }
}

/// The per-rank body of the resilient driver: climb the precision
/// ladder from `start` until an attempt converges or the ladder (or the
/// error class) runs out.
fn resilient_solve<C: Communicator>(
    p: &WilsonProblem,
    g: &ProcessGrid,
    comm: C,
    start: PrecisionRung,
) -> Result<WilsonSolveOutcome> {
    // One endpoint, shared across attempts (and across the operator
    // build): the mixed-precision stack multiplexes it.
    let shared = SharedComm::new(comm);
    let op64 = p.build_operator(&mut shared.clone(), g)?;
    let ladder_started = Instant::now();
    let mut rung = start;
    let mut fallbacks = 0usize;
    // Work the failed rungs performed, folded into the final record —
    // each attempt drains its counters as deltas, so absorbing here
    // counts every apply exactly once.
    let mut carried = SolveStats::new();
    loop {
        match gcr_dd_attempt(p, &op64, shared.clone(), rung, ladder_started.elapsed()) {
            Ok(mut out) => {
                out.stats.absorb(&carried);
                out.stats.precision_fallbacks = fallbacks;
                out.stats.exchange_retries = shared.exchange_retries();
                out.stats.faults_survived = shared.faults_survived();
                return Ok(out);
            }
            Err((e, partial)) if recoverable(&e) => match rung.escalate() {
                Some(next) => {
                    carried.absorb(&partial);
                    fallbacks += 1;
                    rung = next;
                }
                None => return Err(e),
            },
            Err((e, _)) => return Err(e),
        }
    }
}

/// Run a distributed GCR-DD solve with the graceful-degradation ladder,
/// starting at `start` precision, under the given deadline/retry policy
/// and an optional fault-injection plan (chaos testing).
///
/// Unlike [`run_wilson_gcr_dd`] this never panics and never hangs: each
/// rank's slot carries its own result, and a rank that dies, stalls
/// past the deadline, or breaks down beyond recovery reports a
/// structured error ([`Error::RankFailure`], [`Error::Timeout`],
/// [`Error::Breakdown`], …) while its peers unwind cleanly.
pub fn run_wilson_gcr_dd_resilient(
    problem: &WilsonProblem,
    grid: ProcessGrid,
    start: PrecisionRung,
    config: CommConfig,
    plan: Option<FaultPlan>,
) -> Vec<Result<WilsonSolveOutcome>> {
    let p = problem.clone();
    let g = grid.clone();
    let flatten = |r: Result<Result<WilsonSolveOutcome>>| r.and_then(|inner| inner);
    match plan {
        Some(plan) => {
            let comms = FaultyComm::world(grid, config, plan);
            run_world_fallible(comms, move |comm| resilient_solve(&p, &g, comm, start))
                .into_iter()
                .map(flatten)
                .collect()
        }
        None => {
            let comms = ThreadedComm::world_with(grid, config);
            run_world_fallible(comms, move |comm| resilient_solve(&p, &g, comm, start))
                .into_iter()
                .map(flatten)
                .collect()
        }
    }
}

/// Per-rank outcome of a staggered multi-shift solve.
#[derive(Debug, Clone)]
pub struct StaggeredSolveOutcome {
    /// Solver statistics (matvecs shared across shifts).
    pub stats: SolveStats,
    /// Iteration at which each shift converged.
    pub converged_at: Vec<usize>,
    /// Global norm² of each shifted solution.
    pub solution_norms: Vec<f64>,
}

/// Run a distributed multi-shift CG solve of `(M†M + σ_i) x_i = b` over
/// `grid`.
pub fn run_staggered_multishift(
    problem: &StaggeredProblem,
    grid: ProcessGrid,
) -> Result<Vec<StaggeredSolveOutcome>> {
    let p = problem.clone();
    let g = grid.clone();
    let results = run_on_grid(grid, move |comm| -> Result<StaggeredSolveOutcome> {
        let rank = comm.rank();
        let op = p.build_operator(&g, rank)?;
        let mut space = StaggeredNormalSpace::new(op, comm);
        let b = p.rhs(&space.op);
        let mut ms = multishift_cg(&mut space, &p.shifts, &b, p.tol, p.maxiter)?;
        record_dslash(&mut ms.stats, space.op.dslash_counters());
        let mut norms = Vec::with_capacity(ms.solutions.len());
        for s in &ms.solutions {
            norms.push(space.norm2(s)?);
        }
        Ok(StaggeredSolveOutcome {
            stats: ms.stats,
            converged_at: ms.converged_at,
            solution_norms: norms,
        })
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqcd_lattice::Dims;

    #[test]
    fn bicgstab_and_gcr_dd_agree_on_solution_norm() {
        let p = WilsonProblem::small();
        let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), p.global).unwrap();
        let b = run_wilson_bicgstab(&p, grid.clone()).unwrap();
        let g = run_wilson_gcr_dd(&p, grid, false).unwrap();
        assert!(b[0].stats.converged && g[0].stats.converged);
        let rel = (b[0].solution_norm2 - g[0].solution_norm2).abs() / b[0].solution_norm2;
        assert!(rel < 1e-6, "solvers disagree: {rel}");
        // All ranks report identical global norms.
        for r in 1..4 {
            assert!((b[r].solution_norm2 - b[0].solution_norm2).abs() < 1e-9);
        }
        // GCR-DD did block work; BiCGstab did none.
        assert!(g[0].dirichlet_matvecs > 0);
        assert_eq!(b[0].dirichlet_matvecs, 0);
    }

    #[test]
    fn half_precision_gcr_dd_reaches_single_accuracy() {
        let mut p = WilsonProblem::small();
        p.tol = 3e-5;
        p.gcr.tol = 3e-5;
        let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), p.global).unwrap();
        let out = run_wilson_gcr_dd(&p, grid, true).unwrap();
        assert!(out.iter().all(|o| o.stats.converged));
        assert!(out[0].stats.residual <= 3e-5);
    }

    #[test]
    fn multishift_driver_distributed() {
        let p = StaggeredProblem::small();
        let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), p.global).unwrap();
        let out = run_staggered_multishift(&p, grid).unwrap();
        assert!(out[0].stats.converged);
        // Shift ordering: larger shifts converge no later.
        let ca = &out[0].converged_at;
        for w in ca.windows(2) {
            assert!(w[1] <= w[0], "larger shift converged later: {ca:?}");
        }
        // Norm decreases with shift (more regularized system).
        let n = &out[0].solution_norms;
        for w in n.windows(2) {
            assert!(w[1] < w[0], "shifted solutions should shrink: {n:?}");
        }
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;
    use lqcd_lattice::Dims;
    use lqcd_util::Error;

    #[test]
    fn exhausted_iteration_budget_surfaces_no_convergence() {
        let mut p = WilsonProblem::small();
        p.maxiter = 1;
        p.tol = 1e-14;
        let grid = ProcessGrid::new(Dims([1, 1, 1, 2]), p.global).unwrap();
        match run_wilson_bicgstab(&p, grid) {
            Err(Error::NoConvergence { solver: "bicgstab", iterations, .. }) => {
                assert_eq!(iterations, 1);
            }
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn gcr_budget_exhaustion_surfaces_too() {
        let mut p = WilsonProblem::small();
        p.gcr.maxiter = 2;
        p.gcr.tol = 1e-14;
        let grid = ProcessGrid::new(Dims([1, 1, 1, 2]), p.global).unwrap();
        assert!(matches!(
            run_wilson_gcr_dd(&p, grid, false),
            Err(Error::NoConvergence { solver: "gcr", .. })
        ));
    }

    #[test]
    fn invalid_grid_is_rejected_before_any_solve() {
        let p = WilsonProblem::small();
        // 3 ranks cannot divide an 8-extent dimension evenly.
        assert!(ProcessGrid::new(Dims([1, 1, 1, 3]), p.global).is_err());
        // Odd local extents break checkerboarding.
        assert!(ProcessGrid::new(Dims([1, 1, 1, 4]), Dims([8, 8, 8, 12])).is_err());
    }

    #[test]
    fn thin_partition_rejects_the_naik_stencil() {
        // Local T extent 2 < depth 3: the staggered operator must refuse.
        let mut p = StaggeredProblem::small();
        p.global = Dims([8, 8, 8, 8]);
        let grid = ProcessGrid::new(Dims([1, 1, 1, 4]), p.global).unwrap();
        assert!(matches!(p.build_operator(&grid, 0), Err(Error::Geometry(_))));
    }
}

#[cfg(test)]
mod resilient_tests {
    use super::*;
    use lqcd_comms::{FaultRule, MsgClass};
    use lqcd_lattice::Dims;
    use std::time::Duration;

    fn small_problem() -> (WilsonProblem, ProcessGrid) {
        let mut p = WilsonProblem::small();
        p.tol = 3e-5;
        p.gcr.tol = 3e-5;
        let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), p.global).unwrap();
        (p, grid)
    }

    #[test]
    fn fault_free_resilient_solve_matches_plain_driver() {
        let (p, grid) = small_problem();
        let plain = run_wilson_gcr_dd(&p, grid.clone(), false).unwrap();
        let res = run_wilson_gcr_dd_resilient(
            &p,
            grid,
            PrecisionRung::Double,
            CommConfig::default(),
            None,
        );
        for (slot, r) in res.iter().enumerate() {
            let out = r.as_ref().unwrap_or_else(|e| panic!("rank {slot}: {e}"));
            assert!(out.stats.converged);
            assert_eq!(out.stats.precision_fallbacks, 0);
            let rel = (out.solution_norm2 - plain[slot].solution_norm2).abs()
                / plain[slot].solution_norm2;
            assert!(rel < 1e-10, "resilient driver diverged from plain: {rel}");
        }
    }

    #[test]
    fn corruption_at_half_precision_falls_back_and_converges() {
        let (p, grid) = small_problem();
        // Corrupt the first reduction contribution rank 1 sends: the
        // operator build performs no reductions, so this lands on the
        // half-precision attempt's ‖b‖ — the NaN reaches every rank via
        // the broadcast, GCR reports Breakdown, and the ladder climbs.
        let plan = FaultPlan::new(11).with_rule(
            FaultRule::corrupt_payload().on_rank(1).for_class(MsgClass::Reduce).times(1),
        );
        let res = run_wilson_gcr_dd_resilient(
            &p,
            grid,
            PrecisionRung::Half,
            CommConfig::resilient(),
            Some(plan),
        );
        for (slot, r) in res.iter().enumerate() {
            let out = r.as_ref().unwrap_or_else(|e| panic!("rank {slot}: {e}"));
            assert!(out.stats.converged);
            assert!(out.stats.residual <= 3e-5);
            assert!(
                out.stats.precision_fallbacks >= 1,
                "rank {slot} should have climbed the ladder"
            );
        }
        // The fault plan actually fired somewhere.
        assert!(res.iter().flatten().any(|o| o.stats.faults_survived > 0));
    }

    /// Regression for the absorb double-count bug: after the ladder
    /// folds a failed rung's salvaged stats into the successful rung's,
    /// `dslash_applies` must equal the operators' true apply count.
    /// Every apply comes from `apply_eo_prec` (exactly two dslash calls),
    /// invoked once per communicating matvec and once per Dirichlet
    /// (Schwarz-block) matvec — and nothing else applies the operator —
    /// so the folded record must satisfy
    /// `dslash_applies == 2 · (matvecs + precond_matvecs)` exactly.
    /// Reading totals instead of deltas at a rung boundary breaks this
    /// the moment more than one rung contributes.
    #[test]
    fn ladder_dslash_accounting_matches_true_apply_counts() {
        let (p, grid) = small_problem();
        // Corrupt a reduction a few outer iterations into the
        // half-precision rung (not the very first, which would break the
        // rung before it performs any matvec): the rung does real work,
        // breaks down, the ladder climbs, and the final record folds two
        // rungs' worth of counters.
        let plan = FaultPlan::new(11).with_rule(
            FaultRule::corrupt_payload().on_rank(1).for_class(MsgClass::Reduce).after(4).times(1),
        );
        let res = run_wilson_gcr_dd_resilient(
            &p,
            grid,
            PrecisionRung::Half,
            CommConfig::resilient(),
            Some(plan),
        );
        for (slot, r) in res.iter().enumerate() {
            let out = r.as_ref().unwrap_or_else(|e| panic!("rank {slot}: {e}"));
            assert!(out.stats.converged);
            assert!(
                out.stats.precision_fallbacks >= 1,
                "rank {slot}: the test needs at least one folded rung"
            );
            let true_applies = 2 * (out.stats.matvecs + out.stats.precond_matvecs) as u64;
            assert_eq!(
                out.stats.dslash_applies, true_applies,
                "rank {slot}: dslash_applies {} != 2·(matvecs {} + precond {})",
                out.stats.dslash_applies, out.stats.matvecs, out.stats.precond_matvecs
            );
            // The fold added the failed rung's work on top of the final
            // attempt's own counts.
            assert!(
                out.stats.matvecs > out.matvecs,
                "rank {slot}: folded matvecs {} should exceed the final attempt's {}",
                out.stats.matvecs,
                out.matvecs
            );
        }
    }

    /// Every ARQ-absorbable fault class — loss, duplication, delay, and
    /// a short stall — leaves the resilient solve converged and in exact
    /// agreement with the plain driver, without touching the ladder.
    #[test]
    fn drop_dup_delay_stall_are_invisible_to_the_resilient_solve() {
        let (p, grid) = small_problem();
        let plain = run_wilson_gcr_dd(&p, grid.clone(), false).unwrap();
        for (name, rule) in [
            ("drop", FaultRule::drop_message().on_rank(1).data_only().times(3)),
            ("dup", FaultRule::duplicate_message().on_rank(2).times(4)),
            ("delay", FaultRule::delay_message(Duration::from_millis(30)).on_rank(0).times(3)),
            ("stall", FaultRule::stall_rank(Duration::from_millis(40)).on_rank(3).times(2)),
        ] {
            let res = run_wilson_gcr_dd_resilient(
                &p,
                grid.clone(),
                PrecisionRung::Double,
                CommConfig::resilient(),
                Some(FaultPlan::new(23).with_rule(rule)),
            );
            let mut survived = 0;
            for (slot, r) in res.iter().enumerate() {
                let out = r.as_ref().unwrap_or_else(|e| panic!("[{name}] rank {slot}: {e}"));
                assert!(out.stats.converged, "[{name}] rank {slot}: {:?}", out.stats);
                assert_eq!(out.stats.precision_fallbacks, 0, "[{name}] rank {slot}");
                let rel = (out.solution_norm2 - plain[slot].solution_norm2).abs()
                    / plain[slot].solution_norm2;
                assert!(rel < 1e-10, "[{name}] rank {slot} diverged from plain: {rel}");
                survived = survived.max(out.stats.faults_survived);
            }
            assert!(survived > 0, "[{name}] fault plan never fired");
        }
    }

    /// A rank dying mid-run is reported in its own slot; every peer
    /// unwinds with a structured error within the deadline — never a
    /// hang, never a fabricated result.
    #[test]
    fn rank_death_mid_solve_unwinds_every_rank_within_the_deadline() {
        let (p, grid) = small_problem();
        let config = CommConfig::resilient().with_timeout(Duration::from_secs(2));
        let plan = FaultPlan::new(31).with_rule(FaultRule::die_rank().on_rank(2).after(6).times(1));
        let started = std::time::Instant::now();
        let res = run_wilson_gcr_dd_resilient(&p, grid, PrecisionRung::Double, config, Some(plan));
        assert!(started.elapsed() < Duration::from_secs(30), "death must not hang the solve");
        match &res[2] {
            Err(Error::RankFailure { rank: 2, detail }) => {
                assert!(detail.contains("injected fault"), "detail: {detail}");
            }
            other => panic!("expected rank 2's own death, got {other:?}"),
        }
        for (slot, r) in res.iter().enumerate() {
            if slot == 2 {
                continue;
            }
            match r {
                Err(Error::Timeout { .. } | Error::RankFailure { .. }) => {}
                other => panic!("rank {slot}: expected a structured unwind, got {other:?}"),
            }
        }
    }
}

//! Autotuning glue: real micro-trial runners for `lqcd-tune` and the
//! tuned solver drivers.
//!
//! `lqcd-tune`'s [`Tuner`] is closure-based — it knows nothing about
//! operators or communicators. This module supplies the closures: a
//! dslash trial that launches a fresh in-process world per candidate
//! partition scheme, applies the candidate's [`InteriorPolicy`], times
//! the real overlapped pipeline (min-of-rounds behind barriers, max
//! over ranks), and bit-compares one apply against the blocking
//! reference path; and a GCR-DD trial that times whole preconditioned
//! solves under candidate `mr_steps`/`n_kv`. On top sit
//! [`tune_wilson`] (the two-phase dslash-then-solver search) and
//! [`run_wilson_gcr_dd_tuned`] / [`run_staggered_multishift_tuned`],
//! the drivers that accept a [`TunePolicy`] and stamp
//! `SolveStats::tuned_config` with the fingerprint of whatever
//! configuration actually ran. See DESIGN.md, "Autotuning".

use crate::drivers::{record_dslash, StaggeredSolveOutcome, WilsonSolveOutcome};
use crate::problem::{StaggeredProblem, WilsonProblem};
use lqcd_comms::{run_on_grid, Communicator};
use lqcd_dirac::{BoundaryMode, InteriorPolicy, OverlapHost};
use lqcd_lattice::{PartitionScheme, ProcessGrid};
use lqcd_solvers::spaces::{cast_wilson_op, EoWilsonSpace, StaggeredNormalSpace};
use lqcd_solvers::{gcr, multishift_cg, SchwarzMR, SolverSpace};
use lqcd_tune::{
    LadderChoice, TrialOutcome, TuneCache, TuneKey, TuneParam, TunePolicy, TuneReport, Tuner,
};
use lqcd_util::trace::MetricsRegistry;
use lqcd_util::Result;
use std::time::Instant;

/// The tune key of the Wilson-clover dslash phase.
pub fn wilson_dslash_key(problem: &WilsonProblem, ranks: usize) -> TuneKey {
    TuneKey::new("wilson_clover/dslash", problem.global, ranks)
}

/// The tune key of the Wilson-clover GCR-DD solver phase.
pub fn wilson_solver_key(problem: &WilsonProblem, ranks: usize) -> TuneKey {
    TuneKey::new("wilson_clover/gcr_dd", problem.global, ranks)
}

/// The tune key of the staggered (asqtad) dslash phase.
pub fn staggered_dslash_key(problem: &StaggeredProblem, ranks: usize) -> TuneKey {
    TuneKey::new("asqtad/dslash", problem.global, ranks)
}

/// `problem` with the solver axes of `param` applied (`mr_steps`,
/// GCR restart length `kmax`).
fn tuned_problem(problem: &WilsonProblem, param: &TuneParam) -> WilsonProblem {
    let mut p = problem.clone();
    p.mr_steps = param.mr_steps;
    p.gcr.kmax = param.n_kv;
    p
}

/// One dslash micro-trial: launch `param.scheme`'s world, apply the
/// candidate interior policy, and measure the real overlapped pipeline.
/// The trial unit is one dslash apply; the bitwise guard compares one
/// overlapped apply against `dslash_sequential` on every rank.
pub fn wilson_dslash_trial(
    problem: &WilsonProblem,
    ranks: usize,
    tuner: &Tuner,
    param: &TuneParam,
) -> Result<TrialOutcome> {
    let grid = param.scheme.grid(problem.global, ranks)?;
    let policy = InteriorPolicy::new(param.interior_threads, param.ghost_order)?;
    let p = problem.clone();
    let g = grid.clone();
    let (warmup, rounds, applies) = (tuner.warmup, tuner.rounds, tuner.applies);
    let results = run_on_grid(grid, move |mut comm| -> Result<(f64, bool)> {
        let op = p.build_operator(&mut comm, &g)?;
        op.set_interior_policy(policy);
        let mut src = p.rhs(&op);
        let mut out = op.alloc(src.parity().other());
        let mut reference = op.alloc(src.parity().other());
        op.dslash_sequential(&mut reference, &mut src, &mut comm, BoundaryMode::Full)?;
        op.dslash(&mut out, &mut src, &mut comm, BoundaryMode::Full)?;
        let identical =
            reference.body().iter().zip(out.body()).all(|(a, b)| a.to_bits() == b.to_bits());
        for _ in 0..warmup {
            op.dslash(&mut out, &mut src, &mut comm, BoundaryMode::Full)?;
        }
        let mut best = f64::INFINITY;
        for _ in 0..rounds {
            comm.barrier()?;
            let t = Instant::now();
            for _ in 0..applies {
                op.dslash(&mut out, &mut src, &mut comm, BoundaryMode::Full)?;
            }
            comm.barrier()?;
            let mut wall = [t.elapsed().as_secs_f64()];
            comm.allreduce_max(&mut wall)?;
            best = best.min(wall[0]);
        }
        Ok((best / applies as f64, identical))
    });
    let per_rank: Result<Vec<_>> = results.into_iter().collect();
    let per_rank = per_rank?;
    let bit_identical = per_rank.iter().all(|&(_, id)| id);
    Ok(TrialOutcome { secs_per_unit: per_rank[0].0, bit_identical })
}

/// The staggered twin of [`wilson_dslash_trial`].
pub fn staggered_dslash_trial(
    problem: &StaggeredProblem,
    ranks: usize,
    tuner: &Tuner,
    param: &TuneParam,
) -> Result<TrialOutcome> {
    let grid = param.scheme.grid(problem.global, ranks)?;
    let policy = InteriorPolicy::new(param.interior_threads, param.ghost_order)?;
    let p = problem.clone();
    let g = grid.clone();
    let (warmup, rounds, applies) = (tuner.warmup, tuner.rounds, tuner.applies);
    let results = run_on_grid(grid, move |mut comm| -> Result<(f64, bool)> {
        let op = p.build_operator(&g, comm.rank())?;
        op.set_interior_policy(policy);
        let mut src = p.rhs(&op);
        let mut out = op.alloc(src.parity().other());
        let mut reference = op.alloc(src.parity().other());
        op.dslash_sequential(&mut reference, &mut src, &mut comm, BoundaryMode::Full)?;
        op.dslash(&mut out, &mut src, &mut comm, BoundaryMode::Full)?;
        let identical =
            reference.body().iter().zip(out.body()).all(|(a, b)| a.to_bits() == b.to_bits());
        for _ in 0..warmup {
            op.dslash(&mut out, &mut src, &mut comm, BoundaryMode::Full)?;
        }
        let mut best = f64::INFINITY;
        for _ in 0..rounds {
            comm.barrier()?;
            let t = Instant::now();
            for _ in 0..applies {
                op.dslash(&mut out, &mut src, &mut comm, BoundaryMode::Full)?;
            }
            comm.barrier()?;
            let mut wall = [t.elapsed().as_secs_f64()];
            comm.allreduce_max(&mut wall)?;
            best = best.min(wall[0]);
        }
        Ok((best / applies as f64, identical))
    });
    let per_rank: Result<Vec<_>> = results.into_iter().collect();
    let per_rank = per_rank?;
    let bit_identical = per_rank.iter().all(|&(_, id)| id);
    Ok(TrialOutcome { secs_per_unit: per_rank[0].0, bit_identical })
}

/// One GCR-DD micro-trial: whole preconditioned solves of `problem`
/// under `param`'s solver axes. The trial unit is one solve. Exact
/// bit-identity against a reference cannot hold here — different
/// `mr_steps`/`n_kv` legitimately change the iterates — so the guard
/// checks what *must* hold: every solve converges, all ranks agree
/// bit-exactly on the global solution norm, and repeated solves of the
/// same candidate are bit-identical run to run (the determinism the
/// warm-cache contract relies on).
pub fn wilson_gcr_trial(
    problem: &WilsonProblem,
    ranks: usize,
    tuner: &Tuner,
    param: &TuneParam,
) -> Result<TrialOutcome> {
    let grid = param.scheme.grid(problem.global, ranks)?;
    let mut best = f64::INFINITY;
    let mut sound = true;
    let mut norms: Vec<f64> = Vec::new();
    for i in 0..tuner.warmup + tuner.rounds * tuner.applies {
        let t = Instant::now();
        let out = solve_with_param(problem, grid.clone(), *param)?;
        let wall = t.elapsed().as_secs_f64();
        sound &= out.iter().all(|o| o.stats.converged);
        let n0 = out[0].solution_norm2;
        sound &= out.iter().all(|o| o.solution_norm2.to_bits() == n0.to_bits());
        norms.push(n0);
        if i >= tuner.warmup {
            best = best.min(wall);
        }
    }
    sound &= norms.windows(2).all(|w| w[0].to_bits() == w[1].to_bits());
    Ok(TrialOutcome { secs_per_unit: best, bit_identical: sound })
}

/// The GCR-DD solve body under one full tuned configuration: candidate
/// partition grid, interior policy, solver axes, and precision ladder.
/// Stamps `stats.tuned_config` with the parameter fingerprint.
fn solve_with_param(
    problem: &WilsonProblem,
    grid: ProcessGrid,
    param: TuneParam,
) -> Result<Vec<WilsonSolveOutcome>> {
    let p = tuned_problem(problem, &param);
    let g = grid.clone();
    let policy = InteriorPolicy::new(param.interior_threads, param.ghost_order)?;
    let fingerprint = param.fingerprint();
    let ladder = param.ladder;
    let results = run_on_grid(grid, move |mut comm| -> Result<WilsonSolveOutcome> {
        let op = p.build_operator(&mut comm, &g)?;
        // The policy is applied to `space.op` inside the macro: casting
        // to a lower precision builds a fresh operator that would not
        // inherit a policy set here.
        macro_rules! solve {
            ($space:expr, $precond:expr, $params:expr) => {{
                let mut space = $space;
                space.op.set_interior_policy(policy);
                let b = p.rhs(&space.op);
                let mut x = space.alloc();
                let mut precond = $precond;
                let mut stats = gcr(&mut space, &mut precond, &mut x, &b, &$params)?;
                record_dslash(&mut stats, space.op.dslash_counters());
                stats.tuned_config = fingerprint;
                let n2 = space.norm2(&x)?;
                Ok(WilsonSolveOutcome {
                    stats,
                    solution_norm2: n2,
                    matvecs: space.matvec_count(),
                    dirichlet_matvecs: space.dirichlet_matvecs(),
                })
            }};
        }
        match ladder {
            LadderChoice::Double => {
                solve!(EoWilsonSpace::new(op, comm)?, SchwarzMR::new(p.mr_steps), p.gcr)
            }
            LadderChoice::Single => {
                let op32 = cast_wilson_op::<f32>(&op)?;
                solve!(EoWilsonSpace::new(op32, comm)?, SchwarzMR::new(p.mr_steps), p.gcr)
            }
            LadderChoice::Half => {
                let op32 = cast_wilson_op::<f32>(&op)?;
                let mut params = p.gcr;
                params.quantize_krylov = true;
                solve!(
                    EoWilsonSpace::new(op32, comm)?.with_half_storage(),
                    SchwarzMR::new(p.mr_steps).quantized(),
                    params
                )
            }
        }
    });
    results.into_iter().collect()
}

/// Everything the two-phase Wilson tune produced.
#[derive(Clone, Debug)]
pub struct WilsonTuneOutcome {
    /// Phase 1: partition scheme / interior threads / ghost completion
    /// order, decided on dslash micro-trials.
    pub dslash: TuneReport,
    /// Phase 2: `mr_steps` / `n_kv`, decided on whole-solve trials
    /// around the phase-1 winner.
    pub solver: TuneReport,
}

impl WilsonTuneOutcome {
    /// The fully tuned configuration (phase-2 winner, which carries the
    /// phase-1 axes as its baseline).
    pub fn best(&self) -> TuneParam {
        self.solver.decision.param
    }
}

/// Two-phase Wilson-clover tune: dslash axes first (scheme, threads,
/// ghost completion order), then the solver axes around that winner.
/// Each phase consults `cache` first — a warm cache runs zero trials.
pub fn tune_wilson(
    problem: &WilsonProblem,
    ranks: usize,
    max_threads: usize,
    cache: &mut TuneCache,
    metrics: &mut MetricsRegistry,
) -> Result<WilsonTuneOutcome> {
    let baseline = TuneParam::baseline(1);
    let dslash_tuner = Tuner::dslash(baseline, max_threads);
    let dslash =
        dslash_tuner.tune(&wilson_dslash_key(problem, ranks), cache, metrics, |param| {
            wilson_dslash_trial(problem, ranks, &dslash_tuner, param)
        })?;
    let solver_tuner = Tuner::solver(dslash.decision.param);
    let solver =
        solver_tuner.tune(&wilson_solver_key(problem, ranks), cache, metrics, |param| {
            wilson_gcr_trial(problem, ranks, &solver_tuner, param)
        })?;
    Ok(WilsonTuneOutcome { dslash, solver })
}

/// Run a GCR-DD solve under a tuning policy. `Off` (or a cache miss
/// under `Tuned`) runs the hardcoded defaults — ZT partitioning, the
/// problem's own solver parameters — with `tuned_config` left 0;
/// `Fixed`/`Tuned` apply the resolved [`TuneParam`] end to end.
pub fn run_wilson_gcr_dd_tuned(
    problem: &WilsonProblem,
    ranks: usize,
    policy: &TunePolicy,
) -> Result<Vec<WilsonSolveOutcome>> {
    let key = wilson_solver_key(problem, ranks);
    match policy.resolve(&key)? {
        Some(param) => {
            let grid = param.scheme.grid(problem.global, ranks)?;
            solve_with_param(problem, grid, param)
        }
        None => {
            let grid = PartitionScheme::ZT.grid(problem.global, ranks)?;
            crate::drivers::run_wilson_gcr_dd(problem, grid, false)
        }
    }
}

/// Run a staggered multi-shift solve under a tuning policy. Only the
/// dslash axes apply (multishift CG has no Schwarz/GCR knobs), so the
/// policy is resolved against the staggered *dslash* key.
pub fn run_staggered_multishift_tuned(
    problem: &StaggeredProblem,
    ranks: usize,
    policy: &TunePolicy,
) -> Result<Vec<StaggeredSolveOutcome>> {
    let key = staggered_dslash_key(problem, ranks);
    let param = policy.resolve(&key)?;
    let (scheme, fingerprint) = match &param {
        Some(p) => (p.scheme, p.fingerprint()),
        None => (PartitionScheme::ZT, 0),
    };
    let grid = scheme.grid(problem.global, ranks)?;
    let policy = match &param {
        Some(p) => InteriorPolicy::new(p.interior_threads, p.ghost_order)?,
        None => InteriorPolicy::default(),
    };
    let p = problem.clone();
    let g = grid.clone();
    let results = run_on_grid(grid, move |comm| -> Result<StaggeredSolveOutcome> {
        let rank = comm.rank();
        let op = p.build_operator(&g, rank)?;
        op.set_interior_policy(policy);
        let mut space = StaggeredNormalSpace::new(op, comm);
        let b = p.rhs(&space.op);
        let mut ms = multishift_cg(&mut space, &p.shifts, &b, p.tol, p.maxiter)?;
        record_dslash(&mut ms.stats, space.op.dslash_counters());
        ms.stats.tuned_config = fingerprint;
        let mut norms = Vec::with_capacity(ms.solutions.len());
        for s in &ms.solutions {
            norms.push(space.norm2(s)?);
        }
        Ok(StaggeredSolveOutcome {
            stats: ms.stats,
            converged_at: ms.converged_at,
            solution_norms: norms,
        })
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqcd_tune::host_fingerprint;

    fn quick_problem() -> WilsonProblem {
        let mut p = WilsonProblem::small();
        p.tol = 1e-6;
        p.gcr.tol = 1e-6;
        p
    }

    #[test]
    fn off_policy_matches_the_plain_driver_bitwise() {
        let p = quick_problem();
        let grid = PartitionScheme::ZT.grid(p.global, 4).unwrap();
        let plain = crate::drivers::run_wilson_gcr_dd(&p, grid, false).unwrap();
        let tuned = run_wilson_gcr_dd_tuned(&p, 4, &TunePolicy::Off).unwrap();
        for (a, b) in plain.iter().zip(&tuned) {
            assert_eq!(a.solution_norm2.to_bits(), b.solution_norm2.to_bits());
            assert_eq!(b.stats.tuned_config, 0);
        }
    }

    #[test]
    fn fixed_policy_with_baseline_solver_axes_is_bit_identical_and_stamped() {
        let p = quick_problem();
        // Baseline solver axes (mr 8, kv 16) match WilsonProblem::small,
        // and thread count / ghost order are scheduling-only — so a
        // Fixed policy at the baseline point must reproduce the plain
        // driver bit for bit while stamping the fingerprint.
        let param = TuneParam::baseline(2);
        let grid = param.scheme.grid(p.global, 4).unwrap();
        let plain = crate::drivers::run_wilson_gcr_dd(&p, grid, false).unwrap();
        let tuned = run_wilson_gcr_dd_tuned(&p, 4, &TunePolicy::Fixed(param)).unwrap();
        for (a, b) in plain.iter().zip(&tuned) {
            assert!(b.stats.converged);
            assert_eq!(a.solution_norm2.to_bits(), b.solution_norm2.to_bits());
            assert_eq!(b.stats.tuned_config, param.fingerprint());
            assert_ne!(b.stats.tuned_config, 0);
        }
    }

    #[test]
    fn dslash_trial_guards_and_times_real_applies() {
        let p = quick_problem();
        let mut tuner = Tuner::dslash(TuneParam::baseline(1), 2);
        tuner.warmup = 1;
        tuner.rounds = 2;
        tuner.applies = 3;
        let param = TuneParam::baseline(2);
        let out = wilson_dslash_trial(&p, 4, &tuner, &param).unwrap();
        assert!(out.bit_identical, "overlap must stay bit-identical to the reference");
        assert!(out.secs_per_unit > 0.0 && out.secs_per_unit.is_finite());
    }

    #[test]
    fn tune_keys_separate_operator_and_host() {
        let p = quick_problem();
        let dk = wilson_dslash_key(&p, 4).cache_key();
        let sk = wilson_solver_key(&p, 4).cache_key();
        assert_ne!(dk, sk);
        assert!(dk.contains(&host_fingerprint()));
    }
}

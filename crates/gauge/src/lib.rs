//! Gauge fields: storage, generation, observables, and link improvement.
//!
//! The paper consumes production gauge configurations; this crate is our
//! substitute substrate (see DESIGN.md):
//!
//! * [`GaugeField`] — the 4-direction, 2-parity link field with ghost
//!   zones and comm-based ghost exchange ("transferred once at the
//!   beginning of a solve", §6.1). Deterministic generators (cold / hot /
//!   tunable disorder) key every link on its *global* coordinates, so the
//!   same seed yields bit-identical physics on any process grid.
//! * [`plaquette`] — the standard gauge observable, used to validate the
//!   heatbath and smearing code.
//! * [`heatbath`] — quenched Cabibbo–Marinari SU(2)-subgroup heatbath to
//!   produce equilibrated configurations at coupling β.
//! * [`paths`] — products of links along arbitrary lattice paths, the
//!   building block for staples and improved actions.
//! * [`asqtad`] — fat-link (3/5/7-staple + Lepage) and long-link (Naik)
//!   construction with the standard asqtad path coefficients (§2.3: these
//!   fields "are pre-calculated before the application of M", which is why
//!   we compute them globally and restrict per rank, as MILC does for
//!   QUDA).
//! * [`clover_build`] — clover-leaf field strength and the packed clover
//!   term for the Wilson-clover operator.

pub mod asqtad;
pub mod clover_build;
pub mod field;
pub mod heatbath;
pub mod hmc;
pub mod io;
pub mod paths;
pub mod plaquette;
pub mod snapshot;

pub use asqtad::{AsqtadCoeffs, AsqtadLinks};
pub use field::GaugeField;
pub use plaquette::average_plaquette;

//! The average plaquette observable.

use crate::field::GaugeField;
use crate::paths::{path_product, Step};
use lqcd_lattice::{Dims, Parity, NDIM};
use lqcd_util::Real;

/// Average plaquette `⟨(1/3) Re tr U_µν⟩` over all sites and the six
/// µ < ν planes. 1.0 for a cold field, → 0 for maximal disorder.
pub fn average_plaquette<R: Real>(g: &GaugeField<R>, global: Dims) -> f64 {
    let sub = g.sublattice();
    assert!(
        sub.partitioned.iter().all(|&x| !x),
        "average_plaquette expects a global (single-rank) field"
    );
    let mut sum = 0.0f64;
    let mut count = 0usize;
    for p in Parity::BOTH {
        for (_, c) in sub.sites(p) {
            for mu in 0..NDIM {
                for nu in (mu + 1)..NDIM {
                    let u = path_product(
                        g,
                        global,
                        c,
                        &[Step(mu, true), Step(nu, true), Step(mu, false), Step(nu, false)],
                    );
                    sum += u.trace().re.to_f64() / 3.0;
                    count += 1;
                }
            }
        }
    }
    sum / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::GaugeStart;
    use lqcd_lattice::{FaceGeometry, SubLattice};
    use lqcd_util::rng::SeedTree;
    use std::sync::Arc;

    fn field(global: Dims, start: GaugeStart, seed: u64) -> GaugeField<f64> {
        let sub = Arc::new(SubLattice::single(global).unwrap());
        let faces = FaceGeometry::new(&sub, 1).unwrap();
        GaugeField::generate(sub, &faces, global, &SeedTree::new(seed), start)
    }

    #[test]
    fn cold_plaquette_is_one() {
        let global = Dims([4, 4, 4, 4]);
        let g = field(global, GaugeStart::Cold, 1);
        assert!((average_plaquette(&g, global) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hot_plaquette_is_near_zero() {
        let global = Dims([4, 4, 4, 4]);
        let g = field(global, GaugeStart::Hot, 2);
        let p = average_plaquette(&g, global);
        assert!(p.abs() < 0.1, "hot plaquette {p} should be ~0");
    }

    #[test]
    fn disorder_interpolates_monotonically() {
        let global = Dims([4, 4, 4, 4]);
        let p_small = average_plaquette(&field(global, GaugeStart::Disordered(0.05), 3), global);
        let p_mid = average_plaquette(&field(global, GaugeStart::Disordered(0.2), 3), global);
        let p_big = average_plaquette(&field(global, GaugeStart::Disordered(0.6), 3), global);
        assert!(p_small > 0.9, "{p_small}");
        assert!(p_small > p_mid && p_mid > p_big, "{p_small} > {p_mid} > {p_big} violated");
    }
}

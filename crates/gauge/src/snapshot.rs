//! Bit-exact gauge-field snapshots for checkpoint/restart.
//!
//! The existing [`crate::io`] format (LQCDGF01) is the *archival* format:
//! gauge configurations exchanged between runs, verified by plaquette.
//! Checkpoints need something stricter — a restored field must be
//! bit-identical so a resumed solve walks the same trajectory — so this
//! module wraps the per-field snapshots of `lqcd-field::snapshot` (one per
//! direction × parity, each carrying its own CRC-64) in a small framed
//! container with an outer CRC.
//!
//! Only link bodies are stored; ghost zones are rebuilt by
//! [`GaugeField::exchange_ghosts`] after restore, exactly as after
//! generation.

use crate::field::GaugeField;
use lqcd_field::snapshot::{decode_field_into, encode_field, SnapshotReal};
use lqcd_field::SiteObject;
use lqcd_lattice::NDIM;
use lqcd_su3::Su3;
use lqcd_util::checkpoint::ByteReader;
use lqcd_util::checksum::crc64;
use lqcd_util::{Error, Result};

/// Gauge snapshot magic.
pub const GAUGE_MAGIC: &[u8; 4] = b"LQGS";
/// Gauge snapshot format version.
pub const GAUGE_VERSION: u8 = 1;

/// Serialize all eight link fields (4 directions × 2 parities) bit-exactly.
pub fn snapshot_bytes<R: SnapshotReal>(g: &GaugeField<R>) -> Vec<u8>
where
    Su3<R>: SiteObject<R>,
{
    let mut out = Vec::new();
    out.extend_from_slice(GAUGE_MAGIC);
    out.push(GAUGE_VERSION);
    out.push((NDIM * 2) as u8);
    for mu in 0..NDIM {
        for p in 0..2 {
            let field = encode_field(&g.links[mu][p]);
            out.extend_from_slice(&(field.len() as u64).to_le_bytes());
            out.extend_from_slice(&field);
        }
    }
    out.extend_from_slice(&crc64(&out).to_le_bytes());
    out
}

/// Restore a snapshot into an existing gauge field of identical geometry
/// and precision. Ghost zones are left stale — exchange them before use.
pub fn restore_into<R: SnapshotReal>(bytes: &[u8], g: &mut GaugeField<R>, what: &str) -> Result<()>
where
    Su3<R>: SiteObject<R>,
{
    let corrupt = |detail: String| Error::Corrupt { what: what.to_string(), detail };
    if bytes.len() < 4 + 1 + 1 + 8 {
        return Err(corrupt(format!("truncated: {} bytes", bytes.len())));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte split"));
    if crc64(body) != stored {
        return Err(corrupt("gauge snapshot crc mismatch".into()));
    }
    let mut r = ByteReader::new(body, what);
    if r.take(4)? != GAUGE_MAGIC {
        return Err(corrupt("bad gauge-snapshot magic".into()));
    }
    let version = r.take(1)?[0];
    if version != GAUGE_VERSION {
        return Err(corrupt(format!("unsupported gauge snapshot version {version}")));
    }
    let count = r.take(1)?[0] as usize;
    if count != NDIM * 2 {
        return Err(corrupt(format!("expected {} link fields, found {count}", NDIM * 2)));
    }
    for mu in 0..NDIM {
        for p in 0..2 {
            let len = r.take_u64()? as usize;
            let field = r.take(len)?;
            decode_field_into(field, &mut g.links[mu][p], what)?;
        }
    }
    if !r.is_empty() {
        return Err(corrupt(format!("{} trailing bytes after last link field", r.remaining())));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::GaugeStart;
    use lqcd_lattice::{Dims, FaceGeometry, SubLattice};
    use lqcd_util::rng::SeedTree;
    use std::sync::Arc;

    fn hot_field() -> GaugeField<f64> {
        let global = Dims([4, 4, 4, 4]);
        let sub = Arc::new(SubLattice::single(global).unwrap());
        let faces = FaceGeometry::new(&sub, 1).unwrap();
        GaugeField::generate(sub, &faces, global, &SeedTree::new(9), GaugeStart::Hot)
    }

    fn bodies_equal<R: SnapshotReal>(a: &GaugeField<R>, b: &GaugeField<R>) -> bool
    where
        Su3<R>: SiteObject<R>,
    {
        (0..NDIM).all(|mu| {
            (0..2).all(|p| {
                a.links[mu][p]
                    .body()
                    .iter()
                    .zip(b.links[mu][p].body())
                    .all(|(x, y)| x.to_f64().to_bits() == y.to_f64().to_bits())
            })
        })
    }

    #[test]
    fn gauge_roundtrip_is_bit_exact_in_both_precisions() {
        let g = hot_field();
        let bytes = snapshot_bytes(&g);
        let mut back = GaugeField::zeros(
            g.sublattice().clone(),
            &FaceGeometry::new(g.sublattice(), 1).unwrap(),
            0,
        );
        restore_into(&bytes, &mut back, "test").unwrap();
        assert!(bodies_equal(&g, &back));

        let g32 = g.cast::<f32>();
        let bytes32 = snapshot_bytes(&g32);
        let mut back32 = GaugeField::<f32>::zeros(
            g.sublattice().clone(),
            &FaceGeometry::new(g.sublattice(), 1).unwrap(),
            0,
        );
        restore_into(&bytes32, &mut back32, "test").unwrap();
        assert!(bodies_equal(&g32, &back32));
    }

    #[test]
    fn corruption_and_truncation_are_typed_errors() {
        let g = hot_field();
        let bytes = snapshot_bytes(&g);
        let fresh = || {
            GaugeField::<f64>::zeros(
                g.sublattice().clone(),
                &FaceGeometry::new(g.sublattice(), 1).unwrap(),
                0,
            )
        };
        let mut bad = bytes.clone();
        bad[bytes.len() / 3] ^= 0x40;
        assert!(matches!(restore_into(&bad, &mut fresh(), "test"), Err(Error::Corrupt { .. })));
        assert!(matches!(
            restore_into(&bytes[..bytes.len() / 2], &mut fresh(), "test"),
            Err(Error::Corrupt { .. })
        ));
        // Wrong precision destination is a shape error, not silence.
        let mut wrong = GaugeField::<f32>::zeros(
            g.sublattice().clone(),
            &FaceGeometry::new(g.sublattice(), 1).unwrap(),
            0,
        );
        assert!(matches!(restore_into(&bytes, &mut wrong, "test"), Err(Error::Shape(_))));
    }
}

//! Quenched gauge updates: Cabibbo–Marinari SU(2)-subgroup heatbath.
//!
//! The paper's solves run on importance-sampled configurations from
//! large-scale production runs (§9). Our substitute generates equilibrated
//! quenched configurations at coupling β with the standard
//! Cabibbo–Marinari sweep: each link is updated through its three SU(2)
//! subgroups, sampling each with the Kennedy–Pendleton heatbath against
//! the Wilson single-link action `(β/3)·Re tr(U·S)` (S = staple sum).
//!
//! Physics sanity anchors used in tests: plaquette → 1 at large β,
//! ≈ β/18 at strong coupling, and ≈ 0.55 at the much-studied β = 5.7.

use crate::field::GaugeField;
use crate::paths::staple_sum;
use lqcd_lattice::{Dims, Parity, NDIM};
use lqcd_su3::Su3;
use lqcd_util::rng::SeedTree;
use lqcd_util::{Complex, Real};
use rand::Rng;

/// A unit quaternion ≙ SU(2) element `a0 + i(a1 σ1 + a2 σ2 + a3 σ3)`.
///
/// The product matches matrix multiplication in that representation.
/// Because `(iσ1)(iσ2) = −iσ3`, this is the *conjugate*-Hamilton algebra:
/// `i·j = −k`, `j·k = −i`, `k·i = −j` (and `i² = j² = k² = −1`).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Quat(pub [f64; 4]);

impl Quat {
    /// Quaternion (SU(2)) product.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, o: Quat) -> Quat {
        let [a0, a1, a2, a3] = self.0;
        let [b0, b1, b2, b3] = o.0;
        Quat([
            a0 * b0 - a1 * b1 - a2 * b2 - a3 * b3,
            a0 * b1 + a1 * b0 - a2 * b3 + a3 * b2,
            a0 * b2 + a2 * b0 - a3 * b1 + a1 * b3,
            a0 * b3 + a3 * b0 - a1 * b2 + a2 * b1,
        ])
    }

    /// Conjugate (inverse for unit quaternions).
    pub fn conj(self) -> Quat {
        let [a0, a1, a2, a3] = self.0;
        Quat([a0, -a1, -a2, -a3])
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.0.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Normalize to the unit sphere.
    pub fn normalized(self) -> Quat {
        let n = self.norm();
        Quat([self.0[0] / n, self.0[1] / n, self.0[2] / n, self.0[3] / n])
    }

    /// The 2×2 complex matrix `[[a0+ia3, a2+ia1], [−a2+ia1, a0−ia3]]`.
    pub fn to_su2<R: Real>(self) -> [[Complex<R>; 2]; 2] {
        let [a0, a1, a2, a3] = self.0;
        let c = |re: f64, im: f64| Complex::new(R::from_f64(re), R::from_f64(im));
        [[c(a0, a3), c(a2, a1)], [c(-a2, a1), c(a0, -a3)]]
    }
}

/// SU(2)-project a 2×2 complex submatrix: the closest multiple of an
/// SU(2) element, returned as `(k, v)` with `k ≥ 0` the modulus and `v`
/// the unit quaternion (v arbitrary when k = 0).
pub fn su2_project<R: Real>(m: &[[Complex<R>; 2]; 2]) -> (f64, Quat) {
    let a0 = (m[0][0].re.to_f64() + m[1][1].re.to_f64()) / 2.0;
    let a1 = (m[0][1].im.to_f64() + m[1][0].im.to_f64()) / 2.0;
    let a2 = (m[0][1].re.to_f64() - m[1][0].re.to_f64()) / 2.0;
    let a3 = (m[0][0].im.to_f64() - m[1][1].im.to_f64()) / 2.0;
    let q = Quat([a0, a1, a2, a3]);
    let k = q.norm();
    if k < 1e-300 {
        (0.0, Quat([1.0, 0.0, 0.0, 0.0]))
    } else {
        (k, q.normalized())
    }
}

/// The three SU(2) subgroup row/column pairs of SU(3).
const SUBGROUPS: [(usize, usize); 3] = [(0, 1), (0, 2), (1, 2)];

/// Extract the 2×2 submatrix of rows/cols `(i, j)`.
fn submatrix<R: Real>(u: &Su3<R>, i: usize, j: usize) -> [[Complex<R>; 2]; 2] {
    [[u.m[i][i], u.m[i][j]], [u.m[j][i], u.m[j][j]]]
}

/// Embed an SU(2) element into SU(3) at rows/cols `(i, j)`.
fn embed<R: Real>(q: Quat, i: usize, j: usize) -> Su3<R> {
    let s = q.to_su2::<R>();
    let mut u = Su3::identity();
    u.m[i][i] = s[0][0];
    u.m[i][j] = s[0][1];
    u.m[j][i] = s[1][0];
    u.m[j][j] = s[1][1];
    u
}

/// Kennedy–Pendleton sampling of the SU(2) heatbath distribution
/// `P(h) ∝ √(1 − h0²) exp(α h0) δ(|h| − 1)`: returns a unit quaternion.
///
/// Derivation of the divisor: with `h0 = 1 − 2λ²` the target density in λ
/// is `λ² √(1−λ²) e^{−2αλ²}`; the `(ln r1 + cos² ln r3)` trick draws
/// `s ~ Γ(3/2, 1)`, so `λ² = s / (2α)` gives the `e^{−2αλ²}` proposal and
/// the `√(1−λ²)` acceptance completes it.
pub fn kennedy_pendleton<G: Rng>(rng: &mut G, alpha: f64) -> Quat {
    debug_assert!(alpha > 0.0);
    let h0 = loop {
        let r1: f64 = 1.0 - rng.gen::<f64>(); // (0,1]
        let r2: f64 = rng.gen();
        let r3: f64 = 1.0 - rng.gen::<f64>();
        let lam2 =
            -(r1.ln() + (2.0 * std::f64::consts::PI * r2).cos().powi(2) * r3.ln()) / (2.0 * alpha);
        if lam2 > 1.0 {
            continue;
        }
        let r4: f64 = rng.gen();
        if r4 * r4 <= 1.0 - lam2 {
            break 1.0 - 2.0 * lam2;
        }
    };
    // Direction uniform on the 2-sphere of radius √(1−h0²).
    let r = (1.0 - h0 * h0).max(0.0).sqrt();
    let cos_theta: f64 = 2.0 * rng.gen::<f64>() - 1.0;
    let sin_theta = (1.0 - cos_theta * cos_theta).sqrt();
    let phi = 2.0 * std::f64::consts::PI * rng.gen::<f64>();
    Quat([h0, r * sin_theta * phi.cos(), r * sin_theta * phi.sin(), r * cos_theta])
}

/// One Cabibbo–Marinari heatbath update of a single link given its staple
/// sum, at coupling `beta`.
pub fn update_link<R: Real, G: Rng>(u: &Su3<R>, staple: &Su3<R>, beta: f64, rng: &mut G) -> Su3<R> {
    let mut u = *u;
    for &(i, j) in &SUBGROUPS {
        let w = u.mul(staple);
        let (k, v) = su2_project(&submatrix(&w, i, j));
        if k < 1e-12 {
            continue;
        }
        // Action term: (β/3)·Re tr₂(g·m) = (2βk/3)·(g·v)₀, so the h = g·v
        // distribution has exponent coefficient α = 2βk/3.
        let alpha = 2.0 * beta * k / 3.0;
        let h = kennedy_pendleton(rng, alpha);
        // g = h · v̄ rotates the projected part onto h.
        let g = h.mul(v.conj());
        u = embed::<R>(g, i, j).mul(&u);
    }
    u.reunitarize()
}

/// One Cabibbo–Marinari *overrelaxation* update of a single link: for
/// each SU(2) subgroup, reflect the element about the staple direction —
/// `g = v̄²` preserves `Re tr₂(g·m)` exactly (microcanonical) while
/// moving the link as far as possible, decorrelating the Markov chain
/// between heatbath touches.
pub fn update_link_or<R: Real>(u: &Su3<R>, staple: &Su3<R>) -> Su3<R> {
    let mut u = *u;
    for &(i, j) in &SUBGROUPS {
        let w = u.mul(staple);
        let (k, v) = su2_project(&submatrix(&w, i, j));
        if k < 1e-12 {
            continue;
        }
        let g = v.conj().mul(v.conj());
        u = embed::<R>(g, i, j).mul(&u);
    }
    u.reunitarize()
}

/// One full overrelaxation sweep (microcanonical: the Wilson action is
/// unchanged to rounding).
pub fn overrelax_sweep<R: Real>(g: &mut GaugeField<R>, global: Dims) {
    let sub = g.sublattice().clone();
    assert!(sub.partitioned.iter().all(|&x| !x), "overrelaxation operates on global fields");
    for p in Parity::BOTH {
        for mu in 0..NDIM {
            let updates: Vec<(usize, Su3<R>)> = sub
                .sites(p)
                .map(|(idx, c)| {
                    let staple = staple_sum(g, global, c, mu);
                    (idx, update_link_or(&g.link(mu, p, idx), &staple))
                })
                .collect();
            for (idx, u) in updates {
                g.set_link(mu, p, idx, u);
            }
        }
    }
}

/// The Wilson gauge action `−(β/3) Σ_p Re tr U_p` (up to the constant),
/// for monitoring updates.
pub fn wilson_action<R: Real>(g: &GaugeField<R>, global: Dims, beta: f64) -> f64 {
    let plaq = crate::plaquette::average_plaquette(g, global);
    let n_plaq = (global.volume() * 6) as f64;
    -beta * plaq * n_plaq
}

/// One full heatbath sweep over every link of a global field.
pub fn heatbath_sweep<R: Real>(
    g: &mut GaugeField<R>,
    global: Dims,
    beta: f64,
    seeds: &SeedTree,
    sweep_id: u64,
) {
    let sub = g.sublattice().clone();
    assert!(sub.partitioned.iter().all(|&x| !x), "heatbath operates on global fields");
    let tree = seeds.child("heatbath");
    for p in Parity::BOTH {
        for mu in 0..NDIM {
            let updates: Vec<(usize, Su3<R>)> = sub
                .sites(p)
                .map(|(idx, c)| {
                    let staple = staple_sum(g, global, c, mu);
                    let key = sweep_id.wrapping_mul(0x1_0000_0000).wrapping_add(
                        (global.index({
                            let mut gc = c;
                            for d in 0..NDIM {
                                gc[d] += sub.origin[d];
                            }
                            gc
                        }) * NDIM
                            + mu) as u64,
                    );
                    let mut rng = tree.stream(key);
                    let old = g.link(mu, p, idx);
                    (idx, update_link(&old, &staple, beta, &mut rng))
                })
                .collect();
            for (idx, u) in updates {
                g.set_link(mu, p, idx, u);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::GaugeStart;
    use crate::plaquette::average_plaquette;
    use lqcd_lattice::{FaceGeometry, SubLattice};
    use std::sync::Arc;

    #[test]
    fn quaternion_algebra() {
        let i = Quat([0.0, 1.0, 0.0, 0.0]);
        let j = Quat([0.0, 0.0, 1.0, 0.0]);
        let k = Quat([0.0, 0.0, 0.0, 1.0]);
        let neg = |q: Quat| Quat([-q.0[0], -q.0[1], -q.0[2], -q.0[3]]);
        // Conjugate-Hamilton convention (see type docs): i·j = −k, etc.
        assert_eq!(i.mul(j), neg(k));
        assert_eq!(j.mul(k), neg(i));
        assert_eq!(k.mul(i), neg(j));
        assert_eq!(i.mul(i), Quat([-1.0, 0.0, 0.0, 0.0]));
        // The product must represent matrix multiplication under to_su2.
        let a = Quat([0.5, 0.5, -0.5, 0.5]);
        let b = Quat([0.1, -0.7, 0.3, 0.2]).normalized();
        let lhs = a.mul(b).to_su2::<f64>();
        let (ma, mb) = (a.to_su2::<f64>(), b.to_su2::<f64>());
        for r in 0..2 {
            for c in 0..2 {
                let want = ma[r][0] * mb[0][c] + ma[r][1] * mb[1][c];
                assert!((lhs[r][c] - want).abs() < 1e-12);
            }
        }
        // Unit quaternions map to unitary 2×2 with det 1.
        let q = Quat([0.5, 0.5, 0.5, 0.5]);
        let m = q.to_su2::<f64>();
        let det = m[0][0] * m[1][1] - m[0][1] * m[1][0];
        assert!((det - Complex::one()).abs() < 1e-14);
    }

    #[test]
    fn embed_produces_special_unitary() {
        for &(i, j) in &SUBGROUPS {
            let u: Su3<f64> = embed(Quat([0.6, 0.8, 0.0, 0.0]), i, j);
            assert!(u.unitarity_error() < 1e-14);
            assert!((u.det() - Complex::one()).abs() < 1e-14);
        }
    }

    #[test]
    fn su2_project_recovers_pure_su2() {
        let q = Quat([0.1, -0.7, 0.3, 0.2]).normalized();
        let m = q.to_su2::<f64>();
        let (k, v) = su2_project(&m);
        assert!((k - 1.0).abs() < 1e-12);
        for d in 0..4 {
            assert!((v.0[d] - q.0[d]).abs() < 1e-12);
        }
    }

    #[test]
    fn kp_sampler_favors_alignment_at_large_xi() {
        let t = SeedTree::new(1);
        let mut rng = t.rng();
        let n = 2000;
        let mean: f64 =
            (0..n).map(|_| kennedy_pendleton(&mut rng, 20.0).0[0]).sum::<f64>() / n as f64;
        // ⟨h0⟩ → 1 as ξ → ∞; at ξ=20 it's around 0.95.
        assert!(mean > 0.9, "mean h0 {mean}");
        let mean_weak: f64 =
            (0..n).map(|_| kennedy_pendleton(&mut rng, 0.05).0[0]).sum::<f64>() / n as f64;
        assert!(mean_weak < mean, "weak coupling should be less aligned");
    }

    #[test]
    fn heatbath_equilibrates_toward_known_plaquettes() {
        let global = Dims([4, 4, 4, 4]);
        let sub = Arc::new(SubLattice::single(global).unwrap());
        let faces = FaceGeometry::new(&sub, 1).unwrap();
        let seeds = SeedTree::new(9);
        // Weak coupling: β large ⇒ plaquette close to 1.
        let mut g =
            GaugeField::<f64>::generate(sub.clone(), &faces, global, &seeds, GaugeStart::Cold);
        for sweep in 0..8 {
            heatbath_sweep(&mut g, global, 12.0, &seeds, sweep);
        }
        let p_weak = average_plaquette(&g, global);
        assert!(p_weak > 0.8, "β=12 plaquette {p_weak}");
        // Strong coupling: β small ⇒ plaquette ≈ β/18.
        let mut g = GaugeField::<f64>::generate(sub, &faces, global, &seeds, GaugeStart::Hot);
        for sweep in 0..8 {
            heatbath_sweep(&mut g, global, 0.9, &seeds, sweep);
        }
        let p_strong = average_plaquette(&g, global);
        let want = 0.9 / 18.0;
        assert!(
            (p_strong - want).abs() < 0.05,
            "β=0.9 plaquette {p_strong}, strong-coupling estimate {want}"
        );
    }

    #[test]
    fn overrelaxation_is_microcanonical() {
        // A full OR sweep must leave the Wilson action unchanged (to
        // rounding) while actually moving the links.
        let global = Dims([4, 4, 4, 4]);
        let sub = Arc::new(SubLattice::single(global).unwrap());
        let faces = FaceGeometry::new(&sub, 1).unwrap();
        let seeds = SeedTree::new(21);
        let mut g =
            GaugeField::<f64>::generate(sub, &faces, global, &seeds, GaugeStart::Disordered(0.3));
        let s_before = wilson_action(&g, global, 5.7);
        let u_before = g.link(0, Parity::Even, 0);
        overrelax_sweep(&mut g, global);
        let s_after = wilson_action(&g, global, 5.7);
        // Each link update preserves its own local action exactly, but
        // subsequent updates see already-moved staples — a *sweep* is
        // microcanonical only to the per-update exactness; verify tightly.
        assert!(
            (s_after - s_before).abs() < 1e-6 * s_before.abs(),
            "action drifted: {s_before} -> {s_after}"
        );
        let u_after = g.link(0, Parity::Even, 0);
        assert!(
            u_before.sub(&u_after).norm_sqr() > 1e-6,
            "overrelaxation left the links unchanged"
        );
        assert!(u_after.unitarity_error() < 1e-10);
    }

    #[test]
    fn heatbath_plus_or_equilibrates_like_heatbath() {
        let global = Dims([4, 4, 4, 4]);
        let sub = Arc::new(SubLattice::single(global).unwrap());
        let faces = FaceGeometry::new(&sub, 1).unwrap();
        let seeds = SeedTree::new(22);
        let mut g = GaugeField::<f64>::generate(sub, &faces, global, &seeds, GaugeStart::Cold);
        for sweep in 0..5 {
            heatbath_sweep(&mut g, global, 12.0, &seeds, sweep);
            overrelax_sweep(&mut g, global);
        }
        let p = average_plaquette(&g, global);
        assert!(p > 0.8, "β=12 with HB+OR should sit near the weak-coupling plaquette: {p}");
    }

    #[test]
    fn heatbath_links_stay_in_group() {
        let global = Dims([4, 4, 4, 4]);
        let sub = Arc::new(SubLattice::single(global).unwrap());
        let faces = FaceGeometry::new(&sub, 1).unwrap();
        let seeds = SeedTree::new(10);
        let mut g =
            GaugeField::<f64>::generate(sub, &faces, global, &seeds, GaugeStart::Disordered(0.3));
        heatbath_sweep(&mut g, global, 5.7, &seeds, 0);
        for mu in 0..4 {
            for p in Parity::BOTH {
                for idx in 0..g.links[mu][p.index()].num_sites() {
                    assert!(g.link(mu, p, idx).unitarity_error() < 1e-10);
                }
            }
        }
    }
}

//! The 4-direction gauge (link) field.

use lqcd_comms::Communicator;
use lqcd_field::{LatticeField, SiteObject};
use lqcd_lattice::{Dims, FaceGeometry, Neighbor, Parity, SubLattice, NDIM};
use lqcd_su3::Su3;
use lqcd_util::rng::SeedTree;
use lqcd_util::{Real, Result};
use std::sync::Arc;

/// How to initialize a gauge field.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum GaugeStart {
    /// All links set to the identity ("cold": free field).
    Cold,
    /// Haar-random links ("hot": maximal disorder).
    Hot,
    /// Links `exp`-close to the identity with spread `eps ∈ [0, 1]` — our
    /// tunable stand-in for ensembles at different couplings.
    Disordered(f64),
}

/// A gauge field on one rank's subvolume: `U_µ(x)` for µ = 0..4, stored
/// per parity with ghost zones (paper Fig. 3).
#[derive(Clone, Debug)]
pub struct GaugeField<R: Real> {
    /// `links[mu][parity]`.
    pub links: [[LatticeField<R, Su3<R>>; 2]; NDIM],
    sub: Arc<SubLattice>,
    depth: usize,
}

impl<R: Real> GaugeField<R> {
    /// Allocate an all-zero field (links must be filled before use).
    pub fn zeros(sub: Arc<SubLattice>, faces: &FaceGeometry, pad: usize) -> Self {
        let make = || {
            [
                LatticeField::zeros(sub.clone(), faces, Parity::Even, pad),
                LatticeField::zeros(sub.clone(), faces, Parity::Odd, pad),
            ]
        };
        Self { links: [make(), make(), make(), make()], sub, depth: faces.depth }
    }

    /// Generate deterministically from a seed. Each link's RNG stream is
    /// keyed on its **global** lexicographic site index and direction, so
    /// any process grid over the same global lattice sees the same
    /// physical field — the property the distributed-equals-serial
    /// operator tests rely on.
    pub fn generate(
        sub: Arc<SubLattice>,
        faces: &FaceGeometry,
        global: Dims,
        seed: &SeedTree,
        start: GaugeStart,
    ) -> Self {
        let mut g = Self::zeros(sub.clone(), faces, 0);
        let tree = seed.child("gauge");
        for mu in 0..NDIM {
            for p in Parity::BOTH {
                let field = &mut g.links[mu][p.index()];
                for (idx, c) in sub.sites(p) {
                    let mut gc = [0usize; NDIM];
                    for d in 0..NDIM {
                        gc[d] = c[d] + sub.origin[d];
                    }
                    let key = (global.index(gc) * NDIM + mu) as u64;
                    let mut rng = tree.stream(key);
                    let u = match start {
                        GaugeStart::Cold => Su3::identity(),
                        GaugeStart::Hot => Su3::random(&mut rng),
                        GaugeStart::Disordered(eps) => Su3::random_near_identity(&mut rng, eps),
                    };
                    field.set_site(idx, u);
                }
            }
        }
        g
    }

    /// The subvolume this field lives on.
    pub fn sublattice(&self) -> &Arc<SubLattice> {
        &self.sub
    }

    /// Ghost-zone depth the field was allocated with.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Read link `U_µ` at a body site of parity `p`.
    #[inline(always)]
    pub fn link(&self, mu: usize, p: Parity, idx: usize) -> Su3<R> {
        self.links[mu][p.index()].site(idx)
    }

    /// Write link `U_µ`.
    #[inline(always)]
    pub fn set_link(&mut self, mu: usize, p: Parity, idx: usize, u: Su3<R>) {
        self.links[mu][p.index()].set_site(idx, u);
    }

    /// Read a link resolved through [`SubLattice::neighbor`]: interior
    /// links come from the body, ghost links from the (previously
    /// exchanged) ghost zone of the same direction.
    #[inline(always)]
    pub fn link_resolved(&self, mu: usize, p: Parity, n: Neighbor) -> Su3<R> {
        match n {
            Neighbor::Interior { idx } => self.link(mu, p, idx),
            Neighbor::Ghost { mu: gmu, forward, offset } => {
                self.links[mu][p.index()].ghost(gmu, forward, offset)
            }
        }
    }

    /// Exchange gauge ghost zones: for every partitioned dimension µ, send
    /// the *high* face of `U_µ` forward so each rank's backward ghost
    /// holds its −µ neighbour's edge links. (Only backward gauge ghosts
    /// are ever read: the forward hop uses the local `U_µ(x)`, the
    /// backward hop `U_µ(x−µ̂)`.) Done once per solve, per §6.1.
    pub fn exchange_ghosts<C: Communicator>(
        &mut self,
        comm: &mut C,
        faces: &FaceGeometry,
    ) -> Result<()> {
        let reals = <Su3<R> as SiteObject<R>>::REALS;
        for mu in 0..NDIM {
            if !self.sub.partitioned[mu] {
                continue;
            }
            for p in Parity::BOTH {
                let table = faces.high_face(mu, p);
                let mut send = vec![R::ZERO; table.len() * reals];
                self.links[mu][p.index()].gather(table, &mut send);
                let send64: Vec<f64> = send.iter().map(|x| x.to_f64()).collect();
                let mut recv64 = vec![0.0f64; send64.len()];
                comm.send_recv(mu, true, &send64, &mut recv64)?;
                let zone = self.links[mu][p.index()].ghost_zone_mut(mu, false);
                for (z, v) in zone.iter_mut().zip(&recv64) {
                    *z = R::from_f64(*v);
                }
            }
        }
        Ok(())
    }

    /// Convert the whole field (bodies and ghost zones) to another
    /// precision — used to instantiate lower-precision operators for the
    /// mixed-precision solvers.
    pub fn cast<R2: Real>(&self) -> GaugeField<R2>
    where
        Su3<R>: lqcd_field::CastSite<R, R2> + lqcd_field::CastSiteAny<R2, Target = Su3<R2>>,
    {
        let mk =
            |mu: usize| [self.links[mu][0].cast_all::<R2>(), self.links[mu][1].cast_all::<R2>()];
        GaugeField { links: [mk(0), mk(1), mk(2), mk(3)], sub: self.sub.clone(), depth: self.depth }
    }

    /// Restrict a *global* (single-rank) field to this rank's subvolume,
    /// filling both body and the backward gauge ghosts directly (no
    /// communication; used for precomputed smeared links — see module
    /// docs).
    pub fn restrict_from_global(
        global_field: &GaugeField<R>,
        sub: Arc<SubLattice>,
        faces: &FaceGeometry,
        global: Dims,
    ) -> Self {
        let gsub = global_field.sublattice();
        assert!(
            gsub.partitioned.iter().all(|&x| !x),
            "source of a restriction must be a single-rank field"
        );
        assert_eq!(gsub.dims, global, "global field does not cover the global lattice");
        let mut out = Self::zeros(sub.clone(), faces, 0);
        out.depth = faces.depth;
        let lookup = |gc: [usize; NDIM], mu: usize| -> Su3<R> {
            let p = gsub.parity(gc);
            global_field.link(mu, p, gsub.cb_index(gc))
        };
        for mu in 0..NDIM {
            for p in Parity::BOTH {
                // Body.
                let mut staged: Vec<(usize, Su3<R>)> = Vec::with_capacity(sub.volume_cb());
                for (idx, c) in sub.sites(p) {
                    let mut gc = [0usize; NDIM];
                    for d in 0..NDIM {
                        gc[d] = c[d] + sub.origin[d];
                    }
                    staged.push((idx, lookup(gc, mu)));
                }
                for (idx, u) in staged {
                    out.links[mu][p.index()].set_site(idx, u);
                }
                // Backward ghost along µ: the −µ neighbour's high face.
                // The −µ neighbour has identical local dims, so *our* own
                // high-face gather table enumerates exactly the ghost
                // order; translate each entry by the neighbour's origin
                // (ours shifted −L in µ, with global wrap).
                if sub.partitioned[mu] {
                    let l = sub.dims.extent(mu) as isize;
                    let reals = <Su3<R> as SiteObject<R>>::REALS;
                    let table = faces.high_face(mu, p);
                    let mut ghost_vals = vec![R::ZERO; table.len() * reals];
                    for (k, &scb) in table.iter().enumerate() {
                        let sc = sub.cb_coords(p, scb as usize);
                        let mut gc = [0usize; NDIM];
                        for d in 0..NDIM {
                            gc[d] = sc[d] + sub.origin[d];
                        }
                        let gc = global.displace(gc, mu, -l);
                        let u = lookup(gc, mu);
                        u.write(&mut ghost_vals[k * reals..(k + 1) * reals]);
                    }
                    let zone = out.links[mu][p.index()].ghost_zone_mut(mu, false);
                    zone.copy_from_slice(&ghost_vals);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqcd_lattice::ProcessGrid;

    fn single(global: Dims) -> (Arc<SubLattice>, FaceGeometry) {
        let sub = Arc::new(SubLattice::single(global).unwrap());
        let faces = FaceGeometry::new(&sub, 1).unwrap();
        (sub, faces)
    }

    #[test]
    fn cold_start_is_identity() {
        let global = Dims([4, 4, 4, 4]);
        let (sub, faces) = single(global);
        let g =
            GaugeField::<f64>::generate(sub, &faces, global, &SeedTree::new(1), GaugeStart::Cold);
        for mu in 0..4 {
            for p in Parity::BOTH {
                for idx in 0..g.links[mu][p.index()].num_sites() {
                    assert_eq!(g.link(mu, p, idx), Su3::identity());
                }
            }
        }
    }

    #[test]
    fn hot_start_links_are_unitary_and_seed_stable() {
        let global = Dims([4, 4, 4, 4]);
        let (sub, faces) = single(global);
        let g1 = GaugeField::<f64>::generate(
            sub.clone(),
            &faces,
            global,
            &SeedTree::new(7),
            GaugeStart::Hot,
        );
        let g2 =
            GaugeField::<f64>::generate(sub, &faces, global, &SeedTree::new(7), GaugeStart::Hot);
        for mu in 0..4 {
            for p in Parity::BOTH {
                for idx in 0..g1.links[mu][p.index()].num_sites() {
                    let u = g1.link(mu, p, idx);
                    assert!(u.unitarity_error() < 1e-12);
                    assert_eq!(u, g2.link(mu, p, idx), "same seed must reproduce");
                }
            }
        }
    }

    #[test]
    fn generation_is_partition_invariant() {
        // The same (seed, global lattice) generated on a 1-rank grid and
        // on each rank of a 2x2 grid must agree link-by-link.
        let global = Dims([4, 4, 8, 8]);
        let seed = SeedTree::new(42);
        let (gsub, gfaces) = single(global);
        let whole =
            GaugeField::<f64>::generate(gsub.clone(), &gfaces, global, &seed, GaugeStart::Hot);
        let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), global).unwrap();
        for rank in 0..grid.num_ranks() {
            let sub = Arc::new(SubLattice::for_rank(&grid, rank));
            let faces = FaceGeometry::new(&sub, 1).unwrap();
            let local =
                GaugeField::<f64>::generate(sub.clone(), &faces, global, &seed, GaugeStart::Hot);
            for mu in 0..4 {
                for p in Parity::BOTH {
                    for (idx, c) in sub.sites(p) {
                        let mut gc = [0usize; 4];
                        for d in 0..4 {
                            gc[d] = c[d] + sub.origin[d];
                        }
                        let want = whole.link(mu, gsub.parity(gc), gsub.cb_index(gc));
                        assert_eq!(local.link(mu, p, idx), want, "rank {rank} µ={mu} {c:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn restriction_fills_backward_ghosts_correctly() {
        let global = Dims([4, 4, 8, 8]);
        let seed = SeedTree::new(3);
        let (gsub, gfaces) = single(global);
        let whole =
            GaugeField::<f64>::generate(gsub.clone(), &gfaces, global, &seed, GaugeStart::Hot);
        let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), global).unwrap();
        for rank in 0..grid.num_ranks() {
            let sub = Arc::new(SubLattice::for_rank(&grid, rank));
            let faces = FaceGeometry::new(&sub, 1).unwrap();
            let local = GaugeField::restrict_from_global(&whole, sub.clone(), &faces, global);
            // Every backward hop from an x_µ = 0 site must see the link the
            // global field holds at the wrapped coordinate.
            for p in Parity::BOTH {
                for (_, c) in sub.sites(p) {
                    for mu in 2..4 {
                        if c[mu] != 0 {
                            continue;
                        }
                        let hop = sub.neighbor(c, mu, -1, 1);
                        let Neighbor::Ghost { .. } = hop else { panic!("expected ghost") };
                        // Link parity is the parity of the *neighbour* site.
                        let got = local.link_resolved(mu, p.other(), hop);
                        let mut gc = [0usize; 4];
                        for d in 0..4 {
                            gc[d] = c[d] + sub.origin[d];
                        }
                        let ggc = global.displace(gc, mu, -1);
                        let want = whole.link(mu, gsub.parity(ggc), gsub.cb_index(ggc));
                        assert_eq!(got, want, "rank {rank} µ={mu} {c:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn comm_exchange_matches_restriction() {
        use lqcd_comms::run_on_grid;
        let global = Dims([4, 4, 8, 8]);
        let seed = SeedTree::new(11);
        let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), global).unwrap();
        let (gsub, gfaces) = single(global);
        let whole =
            GaugeField::<f64>::generate(gsub.clone(), &gfaces, global, &seed, GaugeStart::Hot);
        let grid2 = grid.clone();
        let whole_ref = &whole;
        let ok = run_on_grid(grid.clone(), move |mut comm| {
            let sub = Arc::new(SubLattice::for_rank(&grid2, comm.rank()));
            let faces = FaceGeometry::new(&sub, 1).unwrap();
            // Generate per rank, then exchange ghosts over comms.
            let mut mine =
                GaugeField::<f64>::generate(sub.clone(), &faces, global, &seed, GaugeStart::Hot);
            mine.exchange_ghosts(&mut comm, &faces).unwrap();
            // Compare against the no-comm restriction.
            let reference =
                GaugeField::restrict_from_global(whole_ref, sub.clone(), &faces, global);
            let mut same = true;
            for mu in 2..4 {
                for p in Parity::BOTH {
                    let a = mine.links[mu][p.index()].ghost_zone(mu, false);
                    let b = reference.links[mu][p.index()].ghost_zone(mu, false);
                    same &= a == b;
                }
            }
            same
        });
        assert!(ok.iter().all(|&x| x));
    }
}

//! Clover-leaf field strength and construction of the packed clover term.
//!
//! The Wilson-clover operator's site-diagonal term is
//! `(4 + m + A_x)` with `A_x = c_sw Σ_{µ<ν} σ_µν ⊗ (i F̂_µν(x))`, where
//! `F̂_µν = (Q_µν − Q†_µν)/8` is the traceless anti-Hermitian clover
//! average of the four plaquette leaves and `σ_µν = (i/2)[γ_µ, γ_ν]`
//! (paper §2.2). In our chiral basis σ_µν is block diagonal, so `A_x`
//! packs into two 6×6 Hermitian blocks — the 72-real [`CloverSite`].
//!
//! Like the asqtad links, the clover field is precomputed on the global
//! lattice (it is site-diagonal, so per-rank restriction is a plain copy).

use crate::field::GaugeField;
use crate::paths::{path_product, Step};
use lqcd_field::LatticeField;
use lqcd_lattice::{Dims, FaceGeometry, Parity, SubLattice, NDIM};
use lqcd_su3::clover::{CloverSite, HermBlock, BLOCK_DIM};
use lqcd_su3::gamma::GAMMA;
use lqcd_su3::Su3;
use lqcd_util::{Complex, Real};
use std::sync::Arc;

/// Clover-averaged field strength `F̂_µν(x)`: the four leaves around `x`
/// in the µ–ν plane, anti-hermitized and traceless-projected.
pub fn field_strength<R: Real>(
    g: &GaugeField<R>,
    global: Dims,
    x: [usize; NDIM],
    mu: usize,
    nu: usize,
) -> Su3<R> {
    debug_assert!(mu != nu);
    let leaves: [[Step; 4]; 4] = [
        [Step(mu, true), Step(nu, true), Step(mu, false), Step(nu, false)],
        [Step(nu, true), Step(mu, false), Step(nu, false), Step(mu, true)],
        [Step(mu, false), Step(nu, false), Step(mu, true), Step(nu, true)],
        [Step(nu, false), Step(mu, true), Step(nu, true), Step(mu, false)],
    ];
    let mut q = Su3::zero();
    for leaf in &leaves {
        q = q.add(&path_product(g, global, x, leaf));
    }
    // Anti-hermitize and remove the trace.
    let f = q.sub(&q.adjoint()).scale(R::from_f64(1.0 / 8.0));
    let tr = f.trace().scale(R::from_f64(1.0 / 3.0));
    let mut out = f;
    for i in 0..3 {
        out.m[i][i] -= tr;
    }
    out
}

/// Dense 4×4 value of `σ_µν = i γ_µ γ_ν` (for µ ≠ ν the commutator
/// collapses to a single product).
fn sigma_entry<R: Real>(mu: usize, nu: usize, row: usize, col: usize) -> Complex<R> {
    let prod = GAMMA[mu].mul(&GAMMA[nu]);
    if prod.col[row] == col {
        prod.phase[row].value::<R>().mul_i()
    } else {
        Complex::zero()
    }
}

/// Construct the packed clover term for every site of a *global* gauge
/// field: `A_x = c_sw Σ_{µ<ν} σ_µν ⊗ (i F̂_µν)` (no mass/diagonal shift —
/// operators fold `4 + m` in at apply time).
pub fn build_clover_field<R: Real>(
    g: &GaugeField<R>,
    global: Dims,
    c_sw: f64,
) -> [LatticeField<R, CloverSite<R>>; 2] {
    let sub = g.sublattice().clone();
    assert!(
        sub.partitioned.iter().all(|&x| !x),
        "clover field is precomputed on the global lattice"
    );
    let faces = FaceGeometry::new(&sub, 1).expect("face geometry");
    let mut out = [
        LatticeField::zeros(sub.clone(), &faces, Parity::Even, 0),
        LatticeField::zeros(sub.clone(), &faces, Parity::Odd, 0),
    ];
    for p in Parity::BOTH {
        let sites: Vec<(usize, CloverSite<R>)> =
            sub.sites(p).map(|(idx, x)| (idx, clover_site(g, global, x, c_sw))).collect();
        for (idx, site) in sites {
            out[p.index()].set_site(idx, site);
        }
    }
    out
}

/// The clover term at one site.
pub fn clover_site<R: Real>(
    g: &GaugeField<R>,
    global: Dims,
    x: [usize; NDIM],
    c_sw: f64,
) -> CloverSite<R> {
    let mut dense = [[[Complex::<R>::zero(); BLOCK_DIM]; BLOCK_DIM]; 2];
    for mu in 0..NDIM {
        for nu in (mu + 1)..NDIM {
            let f = field_strength(g, global, x, mu, nu);
            // H = iF is Hermitian in color.
            let h = f.scale_c(Complex::i());
            for chi in 0..2 {
                for s in 0..2 {
                    for s2 in 0..2 {
                        let ph = sigma_entry::<R>(mu, nu, 2 * chi + s, 2 * chi + s2);
                        if ph == Complex::zero() {
                            continue;
                        }
                        for c in 0..3 {
                            for c2 in 0..3 {
                                dense[chi][s * 3 + c][s2 * 3 + c2] +=
                                    ph * h.m[c][c2] * Complex::from_re(R::from_f64(c_sw));
                            }
                        }
                    }
                }
            }
        }
    }
    // Verify hermiticity before packing (cheap; debug builds only).
    #[cfg(debug_assertions)]
    for block in &dense {
        for i in 0..BLOCK_DIM {
            for j in 0..BLOCK_DIM {
                let d = block[i][j] - block[j][i].conj();
                debug_assert!(
                    d.norm_sqr().to_f64() < 1e-16,
                    "clover block not Hermitian at ({i},{j})"
                );
            }
        }
    }
    CloverSite { blocks: [HermBlock::from_dense(&dense[0]), HermBlock::from_dense(&dense[1])] }
}

/// Restrict a globally-built clover field to one rank's subvolume.
pub fn restrict_clover<R: Real>(
    global_clover: &[LatticeField<R, CloverSite<R>>; 2],
    sub: Arc<SubLattice>,
    faces: &FaceGeometry,
) -> [LatticeField<R, CloverSite<R>>; 2] {
    [
        LatticeField::restrict_from_global(&global_clover[0], sub.clone(), faces, Parity::Even, 0),
        LatticeField::restrict_from_global(&global_clover[1], sub, faces, Parity::Odd, 0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::GaugeStart;
    use lqcd_su3::WilsonSpinor;
    use lqcd_util::rng::SeedTree;

    fn field(global: Dims, start: GaugeStart, seed: u64) -> GaugeField<f64> {
        let sub = Arc::new(SubLattice::single(global).unwrap());
        let faces = FaceGeometry::new(&sub, 1).unwrap();
        GaugeField::generate(sub, &faces, global, &SeedTree::new(seed), start)
    }

    #[test]
    fn free_field_strength_vanishes() {
        let global = Dims([4, 4, 4, 4]);
        let g = field(global, GaugeStart::Cold, 1);
        for mu in 0..4 {
            for nu in (mu + 1)..4 {
                let f = field_strength(&g, global, [1, 2, 0, 3], mu, nu);
                assert!(f.norm_sqr() < 1e-24, "F_{mu}{nu} ≠ 0 on free field");
            }
        }
    }

    #[test]
    fn field_strength_is_traceless_antihermitian() {
        let global = Dims([4, 4, 4, 4]);
        let g = field(global, GaugeStart::Disordered(0.3), 2);
        let f = field_strength(&g, global, [0, 1, 2, 3], 0, 2);
        assert!(f.norm_sqr() > 1e-6, "disordered field should have flux");
        assert!(f.trace().abs() < 1e-12);
        // F† = −F.
        assert!(f.adjoint().add(&f).norm_sqr() < 1e-24);
    }

    #[test]
    fn sigma_is_hermitian_and_block_diagonal() {
        for mu in 0..4 {
            for nu in 0..4 {
                if mu == nu {
                    continue;
                }
                for r in 0..4 {
                    for c in 0..4 {
                        let a: Complex<f64> = sigma_entry(mu, nu, r, c);
                        let b: Complex<f64> = sigma_entry(mu, nu, c, r);
                        assert!((a - b.conj()).abs() < 1e-15, "σ not Hermitian");
                        // Chirality block structure: rows 0,1 couple only
                        // to cols 0,1 etc.
                        if (r < 2) != (c < 2) {
                            assert_eq!(a, Complex::zero(), "σ crosses chirality");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn clover_term_vanishes_on_free_field() {
        let global = Dims([4, 4, 4, 4]);
        let g = field(global, GaugeStart::Cold, 3);
        let a = clover_site(&g, global, [0, 0, 0, 0], 1.0);
        let t = SeedTree::new(4);
        let v = WilsonSpinor::<f64>::random(&mut t.rng());
        assert!(a.apply(&v).norm_sqr() < 1e-20);
    }

    #[test]
    fn clover_term_is_hermitian_operator() {
        let global = Dims([4, 4, 4, 4]);
        let g = field(global, GaugeStart::Disordered(0.25), 5);
        let a = clover_site(&g, global, [1, 0, 2, 3], 1.2);
        let t = SeedTree::new(6);
        let mut rng = t.rng();
        let v = WilsonSpinor::<f64>::random(&mut rng);
        let w = WilsonSpinor::<f64>::random(&mut rng);
        let lhs = w.dot(&a.apply(&v));
        let rhs = a.apply(&w).dot(&v);
        assert!((lhs - rhs).abs() < 1e-10);
        // And it is genuinely nonzero.
        assert!(a.apply(&v).norm_sqr() > 1e-8);
    }

    #[test]
    fn build_and_restrict_roundtrip() {
        use lqcd_lattice::ProcessGrid;
        let global = Dims([4, 4, 4, 8]);
        let g = field(global, GaugeStart::Disordered(0.2), 7);
        let whole = build_clover_field(&g, global, 1.0);
        let grid = ProcessGrid::new(Dims([1, 1, 1, 2]), global).unwrap();
        let gsub = g.sublattice().clone();
        for rank in 0..2 {
            let sub = Arc::new(SubLattice::for_rank(&grid, rank));
            let faces = FaceGeometry::new(&sub, 1).unwrap();
            let local = restrict_clover(&whole, sub.clone(), &faces);
            for p in Parity::BOTH {
                for (idx, c) in sub.sites(p) {
                    let mut gc = c;
                    gc[3] += sub.origin[3];
                    let want = whole[gsub.parity(gc).index()].site(gsub.cb_index(gc));
                    assert_eq!(local[p.index()].site(idx), want);
                }
            }
        }
    }
}

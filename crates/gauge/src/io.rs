//! Gauge-configuration storage.
//!
//! Production lattice workflows checkpoint gauge configurations between
//! the generation and analysis phases (§2). This module provides a
//! simple, self-describing binary format (in the spirit of the NERSC
//! archive format LQCD codes use): a header with the lattice extents and
//! a link checksum, followed by the raw link data in canonical order
//! (µ-major, parity, checkerboard site, row-major re/im `f64`s).

use crate::field::GaugeField;
use crate::plaquette::average_plaquette;
use lqcd_field::SiteObject;
use lqcd_lattice::{Dims, FaceGeometry, Parity, SubLattice, NDIM};
use lqcd_su3::Su3;
use lqcd_util::{Error, Result};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"LQCDGF01";

/// Save a *global* (single-rank) gauge field to `path`.
///
/// The header records the lattice extents, the average plaquette, and a
/// simple additive checksum of all link entries; [`load`] verifies both.
pub fn save<P: AsRef<Path>>(g: &GaugeField<f64>, global: Dims, path: P) -> Result<()> {
    let sub = g.sublattice();
    if sub.partitioned.iter().any(|&x| x) {
        return Err(Error::Config("gauge I/O operates on global fields".into()));
    }
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    for d in 0..NDIM {
        out.extend_from_slice(&(global.0[d] as u64).to_le_bytes());
    }
    let plaq = average_plaquette(g, global);
    out.extend_from_slice(&plaq.to_le_bytes());
    // Payload + running checksum.
    let mut checksum = 0.0f64;
    let mut payload = Vec::new();
    for mu in 0..NDIM {
        for p in Parity::BOTH {
            let field = &g.links[mu][p.index()];
            for idx in 0..field.num_sites() {
                let mut buf = [0.0f64; 18];
                field.site(idx).write(&mut buf);
                for v in buf {
                    checksum += v;
                    payload.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
    }
    out.extend_from_slice(&checksum.to_le_bytes());
    out.extend_from_slice(&payload);
    std::fs::File::create(path.as_ref())
        .and_then(|mut f| f.write_all(&out))
        .map_err(|e| Error::Config(format!("write {}: {e}", path.as_ref().display())))
}

/// Load a gauge field saved by [`save`], verifying extents, checksum,
/// and the recorded plaquette. Ghost zones are allocated at `depth` and
/// left unfilled (exchange or restrict after loading).
pub fn load<P: AsRef<Path>>(path: P, depth: usize) -> Result<(GaugeField<f64>, Dims)> {
    let mut bytes = Vec::new();
    std::fs::File::open(path.as_ref())
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| Error::Config(format!("read {}: {e}", path.as_ref().display())))?;
    let mut cur = 0usize;
    let take = |bytes: &[u8], cur: &mut usize, n: usize| -> Result<Vec<u8>> {
        if *cur + n > bytes.len() {
            return Err(Error::Config("gauge file truncated".into()));
        }
        let out = bytes[*cur..*cur + n].to_vec();
        *cur += n;
        Ok(out)
    };
    let magic = take(&bytes, &mut cur, 8)?;
    if magic != MAGIC {
        return Err(Error::Config("not an LQCDGF01 gauge file".into()));
    }
    let mut dims = [0usize; NDIM];
    for d in dims.iter_mut() {
        let b: [u8; 8] = take(&bytes, &mut cur, 8)?.try_into().expect("8 bytes");
        *d = u64::from_le_bytes(b) as usize;
    }
    let global = Dims::new(dims)?;
    let plaq_hdr = f64::from_le_bytes(take(&bytes, &mut cur, 8)?.try_into().expect("8 bytes"));
    let checksum_hdr = f64::from_le_bytes(take(&bytes, &mut cur, 8)?.try_into().expect("8 bytes"));

    let sub = Arc::new(SubLattice::single(global)?);
    let faces = FaceGeometry::new(&sub, depth)?;
    let mut g = GaugeField::zeros(sub.clone(), &faces, 0);
    let mut checksum = 0.0f64;
    for mu in 0..NDIM {
        for p in Parity::BOTH {
            let n = g.links[mu][p.index()].num_sites();
            for idx in 0..n {
                let mut buf = [0.0f64; 18];
                for v in buf.iter_mut() {
                    *v =
                        f64::from_le_bytes(take(&bytes, &mut cur, 8)?.try_into().expect("8 bytes"));
                    checksum += *v;
                }
                g.set_link(mu, p, idx, <Su3<f64> as SiteObject<f64>>::read(&buf));
            }
        }
    }
    if (checksum - checksum_hdr).abs() > 1e-9 * (1.0 + checksum_hdr.abs()) {
        return Err(Error::Config(format!(
            "gauge checksum mismatch: header {checksum_hdr}, recomputed {checksum}"
        )));
    }
    let plaq = average_plaquette(&g, global);
    if (plaq - plaq_hdr).abs() > 1e-10 {
        return Err(Error::Config(format!(
            "gauge plaquette mismatch: header {plaq_hdr}, recomputed {plaq}"
        )));
    }
    Ok((g, global))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::GaugeStart;
    use lqcd_util::rng::SeedTree;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("lqcd_io_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample() -> (GaugeField<f64>, Dims) {
        let global = Dims([4, 4, 4, 4]);
        let sub = Arc::new(SubLattice::single(global).unwrap());
        let faces = FaceGeometry::new(&sub, 1).unwrap();
        let g = GaugeField::<f64>::generate(
            sub,
            &faces,
            global,
            &SeedTree::new(17),
            GaugeStart::Disordered(0.3),
        );
        (g, global)
    }

    #[test]
    fn save_load_roundtrip_is_exact() {
        let (g, global) = sample();
        let path = tmpfile("roundtrip.lqcd");
        save(&g, global, &path).unwrap();
        let (back, dims) = load(&path, 1).unwrap();
        assert_eq!(dims, global);
        for mu in 0..4 {
            for p in Parity::BOTH {
                for idx in 0..g.links[mu][p.index()].num_sites() {
                    assert_eq!(g.link(mu, p, idx), back.link(mu, p, idx));
                }
            }
        }
    }

    #[test]
    fn corruption_is_detected() {
        let (g, global) = sample();
        let path = tmpfile("corrupt.lqcd");
        save(&g, global, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte well past the header.
        let k = bytes.len() - 9;
        bytes[k] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(load(&path, 1).is_err(), "corrupted file must be rejected");
    }

    #[test]
    fn truncation_and_bad_magic_are_detected() {
        let (g, global) = sample();
        let path = tmpfile("trunc.lqcd");
        save(&g, global, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(load(&path, 1).is_err());
        std::fs::write(&path, b"NOTAGAUGE").unwrap();
        assert!(load(&path, 1).is_err());
    }

    #[test]
    fn loaded_field_is_usable_at_depth_3() {
        let (g, global) = sample();
        let path = tmpfile("depth3.lqcd");
        save(&g, global, &path).unwrap();
        let (back, _) = load(&path, 3).unwrap();
        // Usable as input to asqtad smearing (which needs depth-3 faces).
        let links = crate::asqtad::AsqtadLinks::compute(
            &back,
            global,
            &crate::asqtad::AsqtadCoeffs::default(),
        );
        assert!(links.fat.link(0, Parity::Even, 0).norm_sqr() > 0.0);
    }
}

//! Quenched Hybrid Monte Carlo for the gauge field.
//!
//! The paper's §5 lists "force term computations required for gauge field
//! generation" among QUDA's kernels, and §2 describes the generation
//! phase as a sequential stochastic evolution — this module is that
//! substrate: molecular-dynamics momenta, the Wilson gauge force, a
//! reversible leapfrog integrator, and the Metropolis accept/reject step.
//!
//! Conventions: links evolve as `U̇_µ(x) = i P_µ(x) U_µ(x)` with momenta
//! `P` traceless Hermitian; the kinetic term is `Σ tr P²/2`; the action
//! is `S_g = −(β/3) Σ_p Re tr U_p`. The force is the
//! traceless-Hermitian projection of `i U·A/…` derived below and is
//! validated against a finite-difference of the action in the tests —
//! the force test *is* the derivation check.

use crate::field::GaugeField;
use crate::heatbath::wilson_action;
use crate::paths::staple_sum;
use lqcd_lattice::{Dims, Parity, SubLattice, NDIM};
use lqcd_su3::Su3;
use lqcd_util::rng::{normal_pair, SeedTree};
use lqcd_util::Complex;
use rand::Rng;

/// A field of su(3) momenta (traceless Hermitian matrices), one per link.
pub type MomentumField = Vec<[Vec<Su3<f64>>; 2]>;

/// Traceless-Hermitian projection: `TH(M) = (M + M†)/2 − tr(M + M†)/6`.
pub fn traceless_hermitian(m: &Su3<f64>) -> Su3<f64> {
    let h = m.add(&m.adjoint()).scale(0.5);
    let tr = h.trace().scale(1.0 / 3.0);
    let mut out = h;
    for i in 0..3 {
        out.m[i][i] -= tr;
    }
    out
}

/// Matrix exponential of `i·eps·P` for Hermitian `P`, by scaling and
/// squaring with a 12-term Taylor series; exactly unitary up to rounding
/// for Hermitian input.
pub fn exp_i_eps(p: &Su3<f64>, eps: f64) -> Su3<f64> {
    // A = i·eps·P (anti-Hermitian).
    let a = p.scale_c(Complex::new(0.0, eps));
    // Scale down so ‖A/2^k‖ is small.
    let norm = a.norm_sqr().sqrt();
    let k = if norm > 0.25 { (norm / 0.25).log2().ceil() as u32 } else { 0 };
    let small = a.scale(1.0 / f64::powi(2.0, k as i32));
    // Taylor.
    let mut term = Su3::identity();
    let mut sum = Su3::identity();
    for n in 1..=12 {
        term = term.mul(&small).scale(1.0 / n as f64);
        sum = sum.add(&term);
    }
    // Square back up.
    let mut out = sum;
    for _ in 0..k {
        out = out.mul(&out);
    }
    out
}

/// Gaussian momenta with `⟨tr P²⟩` per the Gell-Mann normalization
/// (`P = Σ_a p_a λ_a/…`, equivalently: independent N(0,1) in an
/// orthonormal su(3) basis).
pub fn sample_momenta<G: Rng>(sub: &SubLattice, rng: &mut G) -> MomentumField {
    let vh = sub.volume_cb();
    (0..NDIM)
        .map(|_| {
            [
                (0..vh).map(|_| random_th(rng)).collect::<Vec<_>>(),
                (0..vh).map(|_| random_th(rng)).collect::<Vec<_>>(),
            ]
        })
        .collect()
}

/// Stream-stable momentum sampling: every link's momentum comes from its
/// own ChaCha8 stream keyed on the global link index — the same keying
/// [`GaugeField::generate`] uses for links — so the draw is independent
/// of iteration order and rank partitioning, and a trajectory is exactly
/// reproducible from `(seed, traj_id)` alone.
pub fn sample_momenta_keyed(sub: &SubLattice, global: Dims, seed: &SeedTree) -> MomentumField {
    (0..NDIM)
        .map(|mu| {
            let one = |parity: Parity| {
                sub.sites(parity)
                    .map(|(_, c)| {
                        let mut gc = c;
                        for d in 0..NDIM {
                            gc[d] = c[d] + sub.origin[d];
                        }
                        let key = global.index(gc) as u64 * NDIM as u64 + mu as u64;
                        random_th(&mut seed.stream(key))
                    })
                    .collect::<Vec<_>>()
            };
            [one(Parity::Even), one(Parity::Odd)]
        })
        .collect()
}

/// A random traceless Hermitian matrix with the HMC normalization
/// `⟨p_{ij} p*_{ij}⟩` such that `tr P²/2` is χ²-distributed correctly:
/// off-diagonals complex N(0, 1/2) per component; diagonals from two
/// N(0,1) draws in the λ₃/λ₈ directions.
pub fn random_th<G: Rng>(rng: &mut G) -> Su3<f64> {
    let mut m = Su3::zero();
    // Off-diagonal entries.
    for i in 0..3 {
        for j in (i + 1)..3 {
            let (a, b) = normal_pair(rng);
            let z = Complex::new(a * 0.5f64.sqrt(), b * 0.5f64.sqrt());
            m.m[i][j] = z;
            m.m[j][i] = z.conj();
        }
    }
    // Diagonal via λ₃ = diag(1,−1,0)/√2-normalized and λ₈.
    let (x3, x8) = normal_pair(rng);
    let d3 = x3 / 2.0f64.sqrt();
    let d8 = x8 / 6.0f64.sqrt();
    m.m[0][0] += Complex::from_re(d3 + d8);
    m.m[1][1] += Complex::from_re(-d3 + d8);
    m.m[2][2] += Complex::from_re(-2.0 * d8);
    m
}

/// Kinetic energy `Σ tr P² / 2`.
pub fn kinetic_energy(p: &MomentumField) -> f64 {
    let mut s = 0.0;
    for dim in p {
        for parity in dim {
            for m in parity {
                s += m.mul(m).trace().re / 2.0;
            }
        }
    }
    s
}

/// The Wilson gauge force for one link — the *negative gradient* of the
/// action along the su(3) direction `Q` when the link moves as
/// `U(t) = e^{iQt}U`. With `S = −(β/3) Σ Re tr (U·Σ)` (Σ = staple sum),
/// `dS/dt|₀ = −(β/3) Re tr(iQ U Σ) = −(β/3) tr(Q · TH(i U Σ))`, so the
/// negative gradient is `F = +(β/3)·TH(i·U·Σ)`: `dS/dt = −tr(Q·F)` and
/// Hamilton's equations read `Ṗ = F`.
pub fn gauge_force(
    g: &GaugeField<f64>,
    global: Dims,
    x: [usize; NDIM],
    mu: usize,
    beta: f64,
) -> Su3<f64> {
    let sub = g.sublattice();
    let u = g.link(mu, sub.parity(x), sub.cb_index(x));
    let sigma = staple_sum(g, global, x, mu);
    let us = u.mul(&sigma).scale_c(Complex::i());
    traceless_hermitian(&us).scale(beta / 3.0)
}

/// One leapfrog trajectory of `steps` steps of size `eps`, in place.
/// Returns nothing; energies are measured by the caller around it.
pub fn leapfrog(
    g: &mut GaugeField<f64>,
    p: &mut MomentumField,
    global: Dims,
    beta: f64,
    eps: f64,
    steps: usize,
) {
    let sub = g.sublattice().clone();
    let half = eps / 2.0;
    update_momenta(g, p, global, beta, half);
    for step in 0..steps {
        // U ← exp(i eps P) U for every link.
        for mu in 0..NDIM {
            for parity in Parity::BOTH {
                for (idx, _) in sub.sites(parity) {
                    let u = g.link(mu, parity, idx);
                    let rot = exp_i_eps(&p[mu][parity.index()][idx], eps);
                    g.set_link(mu, parity, idx, rot.mul(&u).reunitarize());
                }
            }
        }
        let de = if step + 1 == steps { half } else { eps };
        update_momenta(g, p, global, beta, de);
    }
}

/// `P ← P − dt·F` over every link.
fn update_momenta(g: &GaugeField<f64>, p: &mut MomentumField, global: Dims, beta: f64, dt: f64) {
    let sub = g.sublattice().clone();
    for mu in 0..NDIM {
        for parity in Parity::BOTH {
            let updates: Vec<(usize, Su3<f64>)> = sub
                .sites(parity)
                .map(|(idx, c)| (idx, gauge_force(g, global, c, mu, beta)))
                .collect();
            for (idx, f) in updates {
                let cur = &p[mu][parity.index()][idx];
                p[mu][parity.index()][idx] = cur.add(&f.scale(dt));
            }
        }
    }
}

/// Outcome of one HMC trajectory.
#[derive(Debug, Clone, Copy)]
pub struct Trajectory {
    /// Energy change `ΔH = H' − H`.
    pub delta_h: f64,
    /// Whether the Metropolis step accepted.
    pub accepted: bool,
    /// Plaquette after the (accepted or rejected) trajectory.
    pub plaquette: f64,
}

/// One full HMC trajectory: sample momenta, integrate, Metropolis.
pub fn hmc_trajectory(
    g: &mut GaugeField<f64>,
    global: Dims,
    beta: f64,
    eps: f64,
    steps: usize,
    seeds: &SeedTree,
    traj_id: u64,
) -> Trajectory {
    // Momenta and the accept draw come from separate, explicitly labelled
    // streams keyed on the trajectory id: the Metropolis decision cannot
    // shift when the momentum field's sampling order changes.
    let traj_seed = seeds.child("hmc").child(&format!("traj{traj_id}"));
    let sub = g.sublattice().clone();
    let mut p = sample_momenta_keyed(&sub, global, &traj_seed.child("momenta"));
    let h0 = kinetic_energy(&p) + wilson_action(g, global, beta);
    let backup = g.clone();
    leapfrog(g, &mut p, global, beta, eps, steps);
    let h1 = kinetic_energy(&p) + wilson_action(g, global, beta);
    let delta_h = h1 - h0;
    let accept =
        delta_h <= 0.0 || traj_seed.child("accept").stream(0).gen::<f64>() < (-delta_h).exp();
    if !accept {
        *g = backup;
    }
    Trajectory {
        delta_h,
        accepted: accept,
        plaquette: crate::plaquette::average_plaquette(g, global),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::GaugeStart;
    use lqcd_lattice::FaceGeometry;
    use std::sync::Arc;

    fn setup(start: GaugeStart, seed: u64) -> (GaugeField<f64>, Dims) {
        let global = Dims([4, 4, 4, 4]);
        let sub = Arc::new(SubLattice::single(global).unwrap());
        let faces = FaceGeometry::new(&sub, 1).unwrap();
        let g = GaugeField::<f64>::generate(sub, &faces, global, &SeedTree::new(seed), start);
        (g, global)
    }

    #[test]
    fn exp_is_unitary_and_matches_small_angle() {
        let t = SeedTree::new(1);
        let mut rng = t.rng();
        let p = random_th(&mut rng);
        let u = exp_i_eps(&p, 0.37);
        assert!(u.unitarity_error() < 1e-12, "exp not unitary");
        assert!((u.det().abs() - 1.0) < 1e-12);
        // Small angle: exp(iεP) ≈ 1 + iεP.
        let eps = 1e-6;
        let v = exp_i_eps(&p, eps);
        let lin = Su3::identity().add(&p.scale_c(Complex::new(0.0, eps)));
        assert!(v.sub(&lin).norm_sqr().sqrt() < 1e-11);
        // Group property: exp(iaP) exp(ibP) = exp(i(a+b)P).
        let a = exp_i_eps(&p, 0.2).mul(&exp_i_eps(&p, 0.3));
        let b = exp_i_eps(&p, 0.5);
        assert!(a.sub(&b).norm_sqr().sqrt() < 1e-12);
    }

    #[test]
    fn momenta_are_traceless_hermitian_with_unit_variance() {
        let t = SeedTree::new(2);
        let mut rng = t.rng();
        let n = 4000;
        let mut tr2 = 0.0;
        for _ in 0..n {
            let p = random_th(&mut rng);
            assert!(p.trace().abs() < 1e-12, "not traceless");
            assert!(p.sub(&p.adjoint()).norm_sqr() < 1e-24, "not Hermitian");
            tr2 += p.mul(&p).trace().re;
        }
        // P has 8 real degrees of freedom sampled from exp(−tr P²/2), so
        // ⟨tr P²/2⟩ = 8/2 = 4 ⇒ ⟨tr P²⟩ = 8.
        let mean = tr2 / n as f64;
        assert!((mean - 8.0).abs() < 0.3, "⟨tr P²⟩ = {mean}, want 8");
    }

    /// The defining test: the analytic force equals the finite-difference
    /// derivative of the Wilson action along a random su(3) direction.
    #[test]
    fn force_matches_finite_difference_of_action() {
        let (g, global) = setup(GaugeStart::Disordered(0.3), 3);
        let beta = 5.5;
        let sub = g.sublattice().clone();
        let t = SeedTree::new(4);
        let mut rng = t.rng();
        for (x, mu) in [([0, 1, 2, 3], 0usize), ([2, 0, 3, 1], 2), ([1, 1, 1, 1], 3)] {
            let q = random_th(&mut rng);
            let f = gauge_force(&g, global, x, mu, beta);
            // F is the negative gradient: dS/dt along Q = −tr(Q·F).
            let analytic = -q.mul(&f).trace().re;
            // Finite difference: rotate the single link by exp(±iεQ).
            let eps = 1e-5;
            let p = sub.parity(x);
            let idx = sub.cb_index(x);
            let u0 = g.link(mu, p, idx);
            let mut gp = g.clone();
            gp.set_link(mu, p, idx, exp_i_eps(&q, eps).mul(&u0));
            let mut gm = g.clone();
            gm.set_link(mu, p, idx, exp_i_eps(&q, -eps).mul(&u0));
            let numeric =
                (wilson_action(&gp, global, beta) - wilson_action(&gm, global, beta)) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 1e-5 * (1.0 + numeric.abs()),
                "force mismatch at {x:?} µ={mu}: analytic {analytic}, numeric {numeric}"
            );
        }
    }

    #[test]
    fn leapfrog_is_reversible() {
        let (mut g, global) = setup(GaugeStart::Disordered(0.2), 5);
        let g0 = g.clone();
        let sub = g.sublattice().clone();
        let t = SeedTree::new(6);
        let mut rng = t.rng();
        let mut p = sample_momenta(&sub, &mut rng);
        leapfrog(&mut g, &mut p, global, 5.5, 0.02, 10);
        // Negate momenta, integrate back.
        for dim in &mut p {
            for parity in dim {
                for m in parity.iter_mut() {
                    *m = m.scale(-1.0);
                }
            }
        }
        leapfrog(&mut g, &mut p, global, 5.5, 0.02, 10);
        // Back to the start (up to integrator rounding).
        let mut max_err: f64 = 0.0;
        for mu in 0..4 {
            for parity in Parity::BOTH {
                for idx in 0..g.links[mu][parity.index()].num_sites() {
                    let d =
                        g.link(mu, parity, idx).sub(&g0.link(mu, parity, idx)).norm_sqr().sqrt();
                    max_err = max_err.max(d);
                }
            }
        }
        assert!(max_err < 1e-8, "reversibility violated: {max_err}");
    }

    #[test]
    fn delta_h_scales_as_eps_squared() {
        // Leapfrog is a second-order integrator: ΔH ∝ ε² at fixed
        // trajectory length.
        let (g, global) = setup(GaugeStart::Disordered(0.2), 7);
        let sub = g.sublattice().clone();
        let beta = 5.5;
        let dh = |eps: f64, steps: usize| -> f64 {
            let mut gg = g.clone();
            // Stream-stable momenta: the same field at every refinement
            // level and on every platform/run — the ΔH ratios below
            // compare integrations of *identical* trajectories, so the
            // assertions are exact, not statistical.
            let mut p = sample_momenta_keyed(&sub, global, &SeedTree::new(17));
            let h0 = kinetic_energy(&p) + wilson_action(&gg, global, beta);
            leapfrog(&mut gg, &mut p, global, beta, eps, steps);
            let h1 = kinetic_energy(&p) + wilson_action(&gg, global, beta);
            (h1 - h0).abs()
        };
        // Halving ε at fixed trajectory length: |ΔH| falls by ≈4×
        // asymptotically (second-order integrator). The ε⁴ correction
        // approaches the asymptote from below for this action, so the
        // tight check is monotone distance to 4, not ratio ordering.
        let d1 = dh(0.005, 40);
        let d2 = dh(0.0025, 80);
        let d3 = dh(0.00125, 160);
        let r12 = d1 / d2.max(1e-15);
        let r23 = d2 / d3.max(1e-15);
        assert!(
            (r23 - 4.0).abs() < (r12 - 4.0).abs(),
            "ratios must approach the ε² asymptote: {r12} -> {r23}"
        );
        assert!((3.5..4.5).contains(&r23), "near-asymptotic ratio {r23} (want ≈4)");
        assert!(d3 < 1e-3, "finest ΔH {d3} too large");
        assert!(d3 < d1 / 8.0, "refinement barely improved conservation: {d1} -> {d3}");
    }

    #[test]
    fn hmc_accepts_and_equilibrates() {
        let (mut g, global) = setup(GaugeStart::Cold, 9);
        let seeds = SeedTree::new(10);
        let beta = 12.0;
        let mut accepted = 0;
        let mut last = Trajectory { delta_h: 0.0, accepted: false, plaquette: 1.0 };
        for traj in 0..12 {
            last = hmc_trajectory(&mut g, global, beta, 0.008, 50, &seeds, traj);
            if last.accepted {
                accepted += 1;
            }
        }
        assert!(accepted >= 8, "HMC acceptance too low: {accepted}/12");
        // Weak coupling: plaquette near (but off) 1 after equilibration.
        assert!((0.75..0.999).contains(&last.plaquette), "β=12 HMC plaquette {}", last.plaquette);
        // And consistent with the heatbath's equilibrium at the same β
        // (cross-validation of two independent update algorithms).
        let (mut ghb, _) = setup(GaugeStart::Cold, 11);
        for sweep in 0..8 {
            crate::heatbath::heatbath_sweep(&mut ghb, global, beta, &seeds, sweep);
        }
        let p_hb = crate::plaquette::average_plaquette(&ghb, global);
        assert!(
            (last.plaquette - p_hb).abs() < 0.06,
            "HMC {} vs heatbath {} disagree",
            last.plaquette,
            p_hb
        );
    }
}

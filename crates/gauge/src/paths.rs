//! Products of links along arbitrary lattice paths.
//!
//! Staples, plaquettes, improved-action terms, and the clover leaves are
//! all path products. These helpers operate on *single-rank* (global)
//! gauge fields with periodic wrap — precomputation of smeared links and
//! clover terms happens globally and is then restricted per rank (see
//! crate docs).

use crate::field::GaugeField;
use lqcd_lattice::{Dims, NDIM};
use lqcd_su3::Su3;
use lqcd_util::Real;

/// One step of a path: direction µ, sign ±.
///
/// `Step(mu, true)` hops +µ̂ multiplying by `U_µ(x)`;
/// `Step(mu, false)` hops −µ̂ multiplying by `U_µ(x−µ̂)†`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Step(pub usize, pub bool);

impl Step {
    /// The reversed step (undoes this one).
    pub fn reverse(self) -> Step {
        Step(self.0, !self.1)
    }
}

/// Fetch `U_µ` at an arbitrary global coordinate (wrapped).
#[inline]
pub fn link_at<R: Real>(g: &GaugeField<R>, _global: Dims, c: [usize; NDIM], mu: usize) -> Su3<R> {
    let sub = g.sublattice();
    debug_assert!(sub.partitioned.iter().all(|&x| !x), "link_at requires a global field");
    let p = sub.parity(c);
    g.link(mu, p, sub.cb_index(c))
}

/// Product of links along `path` starting at `start` (global coordinates,
/// periodic wrap). Returns the ordered product and ends wherever the path
/// ends.
pub fn path_product<R: Real>(
    g: &GaugeField<R>,
    global: Dims,
    start: [usize; NDIM],
    path: &[Step],
) -> Su3<R> {
    let mut acc = Su3::identity();
    let mut pos = start;
    for &Step(mu, fwd) in path {
        if fwd {
            acc = acc.mul(&link_at(g, global, pos, mu));
            pos = global.displace(pos, mu, 1);
        } else {
            pos = global.displace(pos, mu, -1);
            acc = acc.mul(&link_at(g, global, pos, mu).adjoint());
        }
    }
    acc
}

/// The sum of the six staples around `U_µ(x)` (used by the heatbath):
/// for each ν ≠ µ, the up staple `U_ν(x+µ̂) U_µ(x+ν̂)† U_ν(x)†` and the
/// down staple `U_ν(x+µ̂−ν̂)† U_µ(x−ν̂)† U_ν(x−ν̂)`.
pub fn staple_sum<R: Real>(g: &GaugeField<R>, global: Dims, x: [usize; NDIM], mu: usize) -> Su3<R> {
    let mut sum = Su3::zero();
    let xpmu = global.displace(x, mu, 1);
    for nu in 0..NDIM {
        if nu == mu {
            continue;
        }
        // Up: from x+µ̂ walk +ν, −µ, −ν back to x.
        let up = path_product(g, global, xpmu, &[Step(nu, true), Step(mu, false), Step(nu, false)]);
        // Down: from x+µ̂ walk −ν, −µ, +ν back to x.
        let down =
            path_product(g, global, xpmu, &[Step(nu, false), Step(mu, false), Step(nu, true)]);
        sum = sum.add(&up).add(&down);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::GaugeStart;
    use lqcd_lattice::{FaceGeometry, SubLattice};
    use lqcd_util::rng::SeedTree;
    use std::sync::Arc;

    fn hot_field(global: Dims, seed: u64) -> GaugeField<f64> {
        let sub = Arc::new(SubLattice::single(global).unwrap());
        let faces = FaceGeometry::new(&sub, 1).unwrap();
        GaugeField::generate(sub, &faces, global, &SeedTree::new(seed), GaugeStart::Hot)
    }

    #[test]
    fn closed_path_of_step_and_reverse_is_identity() {
        let global = Dims([4, 4, 4, 4]);
        let g = hot_field(global, 1);
        let x = [1, 2, 3, 0];
        for mu in 0..4 {
            let prod = path_product(&g, global, x, &[Step(mu, true), Step(mu, false)]);
            assert!(prod.sub(&Su3::identity()).norm_sqr() < 1e-24, "µ={mu}");
        }
    }

    #[test]
    fn plaquette_path_is_unitary_with_unit_det() {
        let global = Dims([4, 4, 4, 4]);
        let g = hot_field(global, 2);
        let x = [0, 1, 2, 3];
        let loop_path = [Step(0, true), Step(1, true), Step(0, false), Step(1, false)];
        let u = path_product(&g, global, x, &loop_path);
        assert!(u.unitarity_error() < 1e-12);
        assert!((u.det().abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_loop_is_adjoint() {
        let global = Dims([4, 4, 4, 4]);
        let g = hot_field(global, 3);
        let x = [2, 0, 1, 3];
        let fwd = [Step(2, true), Step(3, true), Step(2, false), Step(3, false)];
        let rev: Vec<Step> = fwd.iter().rev().map(|s| s.reverse()).collect();
        let a = path_product(&g, global, x, &fwd);
        let b = path_product(&g, global, x, &rev);
        assert!(a.mul(&b).sub(&Su3::identity()).norm_sqr() < 1e-22);
        assert!(a.adjoint().sub(&b).norm_sqr() < 1e-22);
    }

    #[test]
    fn cold_staple_sum_is_six_identities() {
        let global = Dims([4, 4, 4, 4]);
        let sub = Arc::new(SubLattice::single(global).unwrap());
        let faces = FaceGeometry::new(&sub, 1).unwrap();
        let g =
            GaugeField::<f64>::generate(sub, &faces, global, &SeedTree::new(4), GaugeStart::Cold);
        let s = staple_sum(&g, global, [0, 0, 0, 0], 0);
        assert!(s.sub(&Su3::identity().scale(6.0)).norm_sqr() < 1e-24);
    }
}

//! Asqtad link improvement: fat links and long (Naik) links.
//!
//! The improved staggered operator (paper §2.3) replaces the thin link by
//! two precomputed fields: the *fat* link `Û_µ(x)` — a weighted sum of the
//! single link and 3-, 5-, 7-link staples plus the Lepage term — and the
//! *long* link `Ǔ_µ(x) = c_N · U_µ(x) U_µ(x+µ̂) U_µ(x+2µ̂)` carrying the
//! Naik coefficient.
//!
//! Coefficients are the standard asqtad set (MILC conventions, tadpole
//! factor u₀ = 1), fixed by three conditions the tests verify on the free
//! field: the Fat7 kernel sums to 1, the Lepage term's −3/8 is compensated
//! in the one-link, and the Naik compensation makes the total one-hop
//! coefficient 9/8 so that `(9/8)·sin(p) − (1/24)·sin(3p) = p + O(p⁵)`.

use crate::field::GaugeField;
use crate::paths::{path_product, Step};
use lqcd_lattice::{Dims, Parity, NDIM};
use lqcd_su3::Su3;
use lqcd_util::Real;

/// Path coefficients of the asqtad action (per path).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct AsqtadCoeffs {
    /// Single thin link.
    pub one_link: f64,
    /// Each 3-link staple (6 paths per direction).
    pub three_staple: f64,
    /// Each 5-link staple (24 paths).
    pub five_staple: f64,
    /// Each 7-link staple (48 paths).
    pub seven_staple: f64,
    /// Each Lepage (double-staple) path (6 paths).
    pub lepage: f64,
    /// The Naik (3-hop) coefficient, folded into the long link.
    pub naik: f64,
}

impl Default for AsqtadCoeffs {
    fn default() -> Self {
        // one_link = 1/8 (Fat7) + 3/8 (Lepage compensation) + 1/8 (Naik
        // compensation) = 5/8.
        AsqtadCoeffs {
            one_link: 5.0 / 8.0,
            three_staple: 1.0 / 16.0,
            five_staple: 1.0 / 64.0,
            seven_staple: 1.0 / 384.0,
            lepage: -1.0 / 16.0,
            naik: -1.0 / 24.0,
        }
    }
}

impl AsqtadCoeffs {
    /// Free-field (cold-link) value of the fat link: the sum over all
    /// paths. Must be 9/8 for the default set.
    pub fn free_field_fat(&self) -> f64 {
        self.one_link
            + 6.0 * self.three_staple
            + 24.0 * self.five_staple
            + 48.0 * self.seven_staple
            + 6.0 * self.lepage
    }
}

/// The precomputed improved-staggered link pair.
#[derive(Clone, Debug)]
pub struct AsqtadLinks<R: Real> {
    /// Fat links `Û_µ` (not unitary — stored uncompressed, cf. Fig. 6's
    /// "no gauge reconstruction").
    pub fat: GaugeField<R>,
    /// Long links `Ǔ_µ` with the Naik coefficient folded in.
    pub long: GaugeField<R>,
}

/// Enumerate the staple paths for direction `mu`.
#[cfg(test)]
fn staple_paths(mu: usize) -> Vec<(f64, Vec<Step>)> {
    let c = AsqtadCoeffs::default();
    staple_paths_with(mu, &c)
}

/// Enumerate the staple paths for direction `mu` with explicit
/// coefficients. Every path starts and ends displaced by +µ̂ overall.
pub fn staple_paths_with(mu: usize, c: &AsqtadCoeffs) -> Vec<(f64, Vec<Step>)> {
    let mut out = Vec::new();
    let trans: Vec<usize> = (0..NDIM).filter(|&d| d != mu).collect();
    // One-link.
    out.push((c.one_link, vec![Step(mu, true)]));
    for (i, &nu) in trans.iter().enumerate() {
        for &s1 in &[true, false] {
            // 3-staple: ν, µ, ν̄.
            out.push((c.three_staple, vec![Step(nu, s1), Step(mu, true), Step(nu, !s1)]));
            // Lepage: ν, ν, µ, ν̄, ν̄.
            out.push((
                c.lepage,
                vec![Step(nu, s1), Step(nu, s1), Step(mu, true), Step(nu, !s1), Step(nu, !s1)],
            ));
            for (j, &rho) in trans.iter().enumerate() {
                if j == i {
                    continue;
                }
                for &s2 in &[true, false] {
                    // 5-staple: ν, ρ, µ, ρ̄, ν̄.
                    out.push((
                        c.five_staple,
                        vec![
                            Step(nu, s1),
                            Step(rho, s2),
                            Step(mu, true),
                            Step(rho, !s2),
                            Step(nu, !s1),
                        ],
                    ));
                    for (k, &sig) in trans.iter().enumerate() {
                        if k == i || k == j {
                            continue;
                        }
                        for &s3 in &[true, false] {
                            // 7-staple: ν, ρ, σ, µ, σ̄, ρ̄, ν̄.
                            out.push((
                                c.seven_staple,
                                vec![
                                    Step(nu, s1),
                                    Step(rho, s2),
                                    Step(sig, s3),
                                    Step(mu, true),
                                    Step(sig, !s3),
                                    Step(rho, !s2),
                                    Step(nu, !s1),
                                ],
                            ));
                        }
                    }
                }
            }
        }
    }
    out
}

impl<R: Real> AsqtadLinks<R> {
    /// Compute fat and long links from a *global* thin-link field.
    pub fn compute(thin: &GaugeField<R>, global: Dims, coeffs: &AsqtadCoeffs) -> Self {
        let sub = thin.sublattice().clone();
        assert!(
            sub.partitioned.iter().all(|&x| !x),
            "asqtad links are precomputed on the global lattice (see crate docs)"
        );
        let faces = lqcd_lattice::FaceGeometry::new(&sub, 3).expect("global face geometry");
        let mut fat = GaugeField::zeros(sub.clone(), &faces, 0);
        let mut long = GaugeField::zeros(sub.clone(), &faces, 0);
        for mu in 0..NDIM {
            let paths = staple_paths_with(mu, coeffs);
            for p in Parity::BOTH {
                let updates: Vec<(usize, Su3<R>, Su3<R>)> = sub
                    .sites(p)
                    .map(|(idx, x)| {
                        let mut acc = Su3::zero();
                        for (w, path) in &paths {
                            let prod = path_product(thin, global, x, path);
                            acc = acc.add(&prod.scale(R::from_f64(*w)));
                        }
                        let l = path_product(
                            thin,
                            global,
                            x,
                            &[Step(mu, true), Step(mu, true), Step(mu, true)],
                        )
                        .scale(R::from_f64(coeffs.naik));
                        (idx, acc, l)
                    })
                    .collect();
                for (idx, f, l) in updates {
                    fat.set_link(mu, p, idx, f);
                    long.set_link(mu, p, idx, l);
                }
            }
        }
        Self { fat, long }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::GaugeStart;
    use lqcd_lattice::{FaceGeometry, SubLattice};
    use lqcd_util::rng::SeedTree;
    use std::sync::Arc;

    fn field(global: Dims, start: GaugeStart, seed: u64) -> GaugeField<f64> {
        let sub = Arc::new(SubLattice::single(global).unwrap());
        let faces = FaceGeometry::new(&sub, 3).unwrap();
        GaugeField::generate(sub, &faces, global, &SeedTree::new(seed), start)
    }

    #[test]
    fn default_coefficients_satisfy_improvement_conditions() {
        let c = AsqtadCoeffs::default();
        // Free-field fat coefficient 9/8.
        assert!((c.free_field_fat() - 9.0 / 8.0).abs() < 1e-15);
        // Continuum normalization: c_fat + 3·c_naik = 1.
        assert!((c.free_field_fat() + 3.0 * c.naik - 1.0).abs() < 1e-15);
        // O(a²) dispersion: p³ terms cancel: c_fat·(1/6) = −c_naik·(27/6).
        assert!((c.free_field_fat() / 6.0 + c.naik * 27.0 / 6.0).abs() < 1e-15);
    }

    #[test]
    fn path_counts_match_asqtad() {
        let paths = staple_paths(0);
        let count = |len: usize| paths.iter().filter(|(_, p)| p.len() == len).count();
        assert_eq!(count(1), 1, "one-link");
        assert_eq!(count(3), 6, "3-staples");
        // Length 5: 24 five-staples + 6 Lepage.
        assert_eq!(count(5), 30);
        assert_eq!(count(7), 48, "7-staples");
    }

    #[test]
    fn cold_field_fat_and_long_links() {
        let global = Dims([4, 4, 4, 8]);
        let thin = field(global, GaugeStart::Cold, 1);
        let links = AsqtadLinks::compute(&thin, global, &AsqtadCoeffs::default());
        let want_fat = Su3::identity().scale(9.0 / 8.0);
        let want_long = Su3::identity().scale(-1.0 / 24.0);
        for mu in 0..4 {
            for p in Parity::BOTH {
                for idx in [0, 5, 17] {
                    assert!(links.fat.link(mu, p, idx).sub(&want_fat).norm_sqr() < 1e-20);
                    assert!(links.long.link(mu, p, idx).sub(&want_long).norm_sqr() < 1e-20);
                }
            }
        }
    }

    #[test]
    fn fat_links_are_not_unitary_on_rough_fields() {
        let global = Dims([4, 4, 4, 4]);
        let thin = field(global, GaugeStart::Disordered(0.3), 2);
        let links = AsqtadLinks::compute(&thin, global, &AsqtadCoeffs::default());
        let u = links.fat.link(0, Parity::Even, 3);
        assert!(u.unitarity_error() > 1e-3, "smeared links should leave the group");
    }

    #[test]
    fn smearing_is_gauge_covariant_under_global_center_phase() {
        // Multiplying every T-link on a fixed timeslice by a center phase
        // commutes with smearing of spatial links away from that slice
        // (weak but cheap covariance check: fat spatial links on distant
        // slices are unchanged).
        let global = Dims([4, 4, 4, 8]);
        let thin = field(global, GaugeStart::Disordered(0.2), 3);
        let links = AsqtadLinks::compute(&thin, global, &AsqtadCoeffs::default());
        let mut twisted = thin.clone();
        let sub = thin.sublattice().clone();
        for p in Parity::BOTH {
            for (idx, c) in sub.sites(p) {
                if c[3] == 0 {
                    let u = twisted.link(3, p, idx);
                    twisted.set_link(3, p, idx, u.scale(-1.0));
                }
            }
        }
        let links_tw = AsqtadLinks::compute(&twisted, global, &AsqtadCoeffs::default());
        // A spatial fat link at t = 4 involves paths within t ∈ [3, 5]
        // (staples step at most ±1 in T), so it never touches t = 0 links.
        for p in Parity::BOTH {
            for (idx, c) in sub.sites(p) {
                if c[3] == 4 {
                    let a = links.fat.link(0, p, idx);
                    let b = links_tw.fat.link(0, p, idx);
                    assert!(a.sub(&b).norm_sqr() < 1e-24);
                }
            }
        }
    }
}

//! Shared error type for the `lqcd` workspace.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by lattice construction, communication, and solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Lattice dimensions or partitioning were inconsistent (e.g. local
    /// extent not divisible, odd local extent breaking checkerboarding).
    Geometry(String),
    /// Field shapes/precisions disagreed between operands.
    Shape(String),
    /// A solver failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the solver that failed.
        solver: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
        /// Relative residual at the point of failure.
        residual: f64,
        /// Target relative residual.
        target: f64,
    },
    /// A solver hit a numerical breakdown (zero pivot / division by ~0).
    Breakdown {
        /// Name of the solver that broke down.
        solver: &'static str,
        /// Description of the breakdown.
        detail: String,
    },
    /// Message-passing failure (peer disappeared, tag mismatch, size
    /// mismatch).
    Comms(String),
    /// Experiment/bench configuration error.
    Config(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Geometry(msg) => write!(f, "lattice geometry error: {msg}"),
            Error::Shape(msg) => write!(f, "field shape mismatch: {msg}"),
            Error::NoConvergence { solver, iterations, residual, target } => write!(
                f,
                "{solver} did not converge: |r|/|b| = {residual:.3e} after {iterations} iterations (target {target:.3e})"
            ),
            Error::Breakdown { solver, detail } => {
                write!(f, "{solver} numerical breakdown: {detail}")
            }
            Error::Comms(msg) => write!(f, "communication error: {msg}"),
            Error::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = Error::NoConvergence {
            solver: "bicgstab",
            iterations: 500,
            residual: 1.2e-5,
            target: 1e-8,
        };
        let msg = e.to_string();
        assert!(msg.contains("bicgstab"));
        assert!(msg.contains("500"));
        assert!(msg.contains("1.200e-5"));

        assert!(Error::Geometry("bad".into()).to_string().contains("geometry"));
        assert!(Error::Comms("lost".into()).to_string().contains("communication"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::Geometry("x".into()), Error::Geometry("x".into()));
        assert_ne!(Error::Geometry("x".into()), Error::Shape("x".into()));
    }
}

//! Shared error type for the `lqcd` workspace.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// What kind of numerical breakdown a solver hit.
///
/// Solvers historically reported breakdowns as free-form strings; the
/// watchdog and supervisor need to branch on the *class* of failure
/// (a stagnating solve wants a precision bump, a wall-clock overrun
/// wants a checkpointed restart), so the class is now structured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakdownKind {
    /// A pivot / inner product collapsed to (numerical) zero.
    ZeroPivot,
    /// NaN or Inf contaminated the iteration state.
    NonFinite,
    /// The residual stopped improving for a configured window.
    Stagnation,
    /// The residual grew far beyond its best value.
    Divergence,
    /// The solve exceeded its wall-clock budget.
    WallClock,
    /// Anything else (legacy free-form breakdowns).
    Other,
}

impl fmt::Display for BreakdownKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BreakdownKind::ZeroPivot => "zero pivot",
            BreakdownKind::NonFinite => "non-finite",
            BreakdownKind::Stagnation => "stagnation",
            BreakdownKind::Divergence => "divergence",
            BreakdownKind::WallClock => "wall-clock overrun",
            BreakdownKind::Other => "breakdown",
        };
        f.write_str(s)
    }
}

/// Errors surfaced by lattice construction, communication, and solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Lattice dimensions or partitioning were inconsistent (e.g. local
    /// extent not divisible, odd local extent breaking checkerboarding).
    Geometry(String),
    /// Field shapes/precisions disagreed between operands.
    Shape(String),
    /// A solver failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the solver that failed.
        solver: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
        /// Relative residual at the point of failure.
        residual: f64,
        /// Target relative residual.
        target: f64,
    },
    /// A solver hit a numerical breakdown (zero pivot, NaN contamination,
    /// stagnation, divergence, or wall-clock overrun).
    Breakdown {
        /// Name of the solver that broke down.
        solver: &'static str,
        /// Structured class of the breakdown.
        kind: BreakdownKind,
        /// Description of the breakdown.
        detail: String,
    },
    /// Message-passing failure (peer disappeared, tag mismatch, size
    /// mismatch).
    Comms(String),
    /// A receive missed its deadline: the expected message from `peer`
    /// never arrived (dropped, stalled sender, dead sender) within the
    /// configured timeout, retries included.
    Timeout {
        /// Rank whose receive timed out.
        rank: usize,
        /// Rank the message was expected from.
        peer: usize,
        /// Exchange dimension (`None` for reductions/barriers).
        mu: Option<usize>,
        /// Full message tag (encodes class, dimension, direction,
        /// sequence number).
        tag: u64,
        /// Total time spent waiting, retries included.
        waited: std::time::Duration,
    },
    /// A rank died (panicked or closed its mailbox) and the world was
    /// poisoned so surviving ranks stop instead of hanging.
    RankFailure {
        /// The rank that failed.
        rank: usize,
        /// What happened (panic payload or detection site).
        detail: String,
    },
    /// Experiment/bench configuration error.
    Config(String),
    /// A checkpoint / snapshot I/O operation failed. The `std::io::Error`
    /// is flattened to a string because [`Error`] must stay `Clone +
    /// PartialEq` for the chaos harness's per-rank comparisons.
    Io {
        /// Path involved in the failed operation.
        path: String,
        /// Stringified OS-level error.
        detail: String,
    },
    /// A checkpoint / snapshot failed validation: bad magic, unsupported
    /// version, checksum mismatch, or truncation. Never a panic — corrupt
    /// data on disk is an expected failure mode after a crash.
    Corrupt {
        /// What was being decoded (file path or container/section name).
        what: String,
        /// Why validation failed.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Geometry(msg) => write!(f, "lattice geometry error: {msg}"),
            Error::Shape(msg) => write!(f, "field shape mismatch: {msg}"),
            Error::NoConvergence { solver, iterations, residual, target } => write!(
                f,
                "{solver} did not converge: |r|/|b| = {residual:.3e} after {iterations} iterations (target {target:.3e})"
            ),
            Error::Breakdown { solver, kind, detail } => {
                write!(f, "{solver} numerical breakdown ({kind}): {detail}")
            }
            Error::Comms(msg) => write!(f, "communication error: {msg}"),
            Error::Timeout { rank, peer, mu, tag, waited } => {
                match mu {
                    Some(mu) => write!(
                        f,
                        "rank {rank} timed out after {waited:?} waiting for peer {peer} \
                         (mu {mu}, tag {tag:#x})"
                    ),
                    None => write!(
                        f,
                        "rank {rank} timed out after {waited:?} waiting for peer {peer} \
                         in a reduction (tag {tag:#x})"
                    ),
                }
            }
            Error::RankFailure { rank, detail } => {
                write!(f, "rank {rank} failed: {detail}")
            }
            Error::Config(msg) => write!(f, "configuration error: {msg}"),
            Error::Io { path, detail } => write!(f, "i/o error on {path}: {detail}"),
            Error::Corrupt { what, detail } => write!(f, "corrupt data in {what}: {detail}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = Error::NoConvergence {
            solver: "bicgstab",
            iterations: 500,
            residual: 1.2e-5,
            target: 1e-8,
        };
        let msg = e.to_string();
        assert!(msg.contains("bicgstab"));
        assert!(msg.contains("500"));
        assert!(msg.contains("1.200e-5"));

        assert!(Error::Geometry("bad".into()).to_string().contains("geometry"));
        assert!(Error::Comms("lost".into()).to_string().contains("communication"));

        let t = Error::Timeout {
            rank: 2,
            peer: 3,
            mu: Some(1),
            tag: 0x42,
            waited: std::time::Duration::from_millis(250),
        };
        let msg = t.to_string();
        assert!(msg.contains("rank 2"));
        assert!(msg.contains("peer 3"));
        assert!(msg.contains("mu 1"));
        assert!(msg.contains("0x42"));

        let r = Error::RankFailure { rank: 5, detail: "panicked: boom".into() };
        assert!(r.to_string().contains("rank 5"));
        assert!(r.to_string().contains("boom"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::Geometry("x".into()), Error::Geometry("x".into()));
        assert_ne!(Error::Geometry("x".into()), Error::Shape("x".into()));
    }

    #[test]
    fn breakdown_kind_is_displayed_and_matchable() {
        let e = Error::Breakdown {
            solver: "gcr",
            kind: BreakdownKind::Stagnation,
            detail: "no progress in 200 iterations".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("gcr"));
        assert!(msg.contains("stagnation"));
        assert!(matches!(e, Error::Breakdown { kind: BreakdownKind::Stagnation, .. }));
        assert_ne!(BreakdownKind::NonFinite, BreakdownKind::WallClock);
    }

    #[test]
    fn checkpoint_errors_format() {
        let io = Error::Io { path: "/tmp/ckpt".into(), detail: "permission denied".into() };
        assert!(io.to_string().contains("/tmp/ckpt"));
        let c = Error::Corrupt { what: "ckpt-000001.lqcp".into(), detail: "crc mismatch".into() };
        assert!(c.to_string().contains("crc mismatch"));
    }
}

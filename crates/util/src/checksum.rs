//! Streaming CRC-64 for checkpoint integrity.
//!
//! Field snapshots and solver checkpoints are written by ranks that may die
//! mid-campaign; on restart we must distinguish a *valid* checkpoint from a
//! torn or bit-rotted one before trusting it as an initial guess. The gauge
//! file format's additive f64 checksum (see `lqcd-gauge::io`) detects gross
//! corruption but is blind to reordering and cancellation; checkpoints use a
//! real CRC instead.
//!
//! This is CRC-64/XZ (ECMA-182 polynomial, reflected, init/xorout all-ones),
//! implemented with a single 256-entry table — small enough to build at
//! startup, fast enough for multi-MB field payloads.

/// Reflected ECMA-182 polynomial.
const POLY: u64 = 0xC96C_5795_D787_0F42;

/// Streaming CRC-64/XZ hasher.
#[derive(Clone, Debug)]
pub struct Crc64 {
    state: u64,
}

impl Default for Crc64 {
    fn default() -> Self {
        Self::new()
    }
}

fn table() -> &'static [u64; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u64; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut crc = i as u64;
            for _ in 0..8 {
                crc = if crc & 1 == 1 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            *slot = crc;
        }
        t
    })
}

impl Crc64 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Absorb a byte slice.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        for &b in bytes {
            self.state = t[((self.state ^ b as u64) & 0xff) as usize] ^ (self.state >> 8);
        }
    }

    /// Finish and return the digest (the hasher can keep absorbing; this
    /// just reports the digest of everything seen so far).
    pub fn finish(&self) -> u64 {
        !self.state
    }
}

/// One-shot CRC-64/XZ of a byte slice.
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut h = Crc64::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vector() {
        // The standard CRC-64/XZ check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut h = Crc64::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc64(&data));
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let mut data = vec![0u8; 4096];
        let base = crc64(&data);
        for pos in [0usize, 1, 2047, 4095] {
            data[pos] ^= 0x10;
            assert_ne!(crc64(&data), base, "flip at {pos} not detected");
            data[pos] ^= 0x10;
        }
        assert_eq!(crc64(&data), base);
    }
}

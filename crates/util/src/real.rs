//! The floating-point precision abstraction.
//!
//! All lattice algebra in this workspace is generic over [`Real`], so the
//! Wilson-clover and staggered operators, BLAS-1 kernels, and Krylov
//! solvers are each written once and instantiated in double (`f64`) and
//! single (`f32`) precision. The 16-bit "half" format of the paper is a
//! *storage* format only (computation always happens in `f32` registers, as
//! on the GPU) and lives in [`crate::half`].

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real scalar type usable throughout the lattice stack.
///
/// This is deliberately a small trait: just the arithmetic surface the
/// operators and solvers need, plus lossless-ish conversions through `f64`
/// used at mixed-precision boundaries.
pub trait Real:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon for this precision.
    const EPSILON: Self;
    /// Human-readable precision label used in experiment output
    /// (`"double"` / `"single"`).
    const NAME: &'static str;

    /// Widen to `f64` (exact for both supported precisions).
    fn to_f64(self) -> f64;
    /// Narrow from `f64` (rounds for `f32`).
    fn from_f64(x: f64) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Fused (or at least composed) multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Maximum of two values.
    fn max(self, other: Self) -> Self;
    /// Minimum of two values.
    fn min(self, other: Self) -> Self;
    /// True if the value is finite (not NaN/inf).
    fn is_finite(self) -> bool;

    /// Values of this precision carried in each `f64` wire word of a
    /// ghost exchange (`1` for double, `2` for single: two bit-packed
    /// `f32`s per word, so messages ship at the field's true width).
    const WIRE_PER_WORD: usize;

    /// Wire words needed to carry `n` values of this precision.
    #[inline]
    fn wire_words(n: usize) -> usize {
        n.div_ceil(Self::WIRE_PER_WORD)
    }

    /// Bit-pack `src` into `wire` (`wire.len() == wire_words(src.len())`).
    /// Lossless: `unpack_wire` recovers `src` bit-for-bit.
    fn pack_wire(src: &[Self], wire: &mut [f64]);

    /// Inverse of [`Real::pack_wire`].
    fn unpack_wire(wire: &[f64], dst: &mut [Self]);

    /// Convenience: convert a `usize` count into this precision.
    #[inline]
    fn from_usize(n: usize) -> Self {
        Self::from_f64(n as f64)
    }
}

macro_rules! impl_real {
    ($t:ty, $name:literal, $wire_per_word:expr, $pack:item, $unpack:item) => {
        impl Real for $t {
            const WIRE_PER_WORD: usize = $wire_per_word;
            $pack
            $unpack
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPSILON: Self = <$t>::EPSILON;
            const NAME: &'static str = $name;

            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                self * a + b
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
        }
    };
}

impl_real!(
    f32,
    "single",
    2,
    fn pack_wire(src: &[f32], wire: &mut [f64]) {
        assert_eq!(wire.len(), src.len().div_ceil(2), "wire buffer size");
        for (w, pair) in wire.iter_mut().zip(src.chunks(2)) {
            let lo = pair[0].to_bits() as u64;
            let hi = if pair.len() > 1 { pair[1].to_bits() as u64 } else { 0 };
            *w = f64::from_bits(lo | (hi << 32));
        }
    },
    fn unpack_wire(wire: &[f64], dst: &mut [f32]) {
        assert_eq!(wire.len(), dst.len().div_ceil(2), "wire buffer size");
        for (pair, w) in dst.chunks_mut(2).zip(wire) {
            let bits = w.to_bits();
            pair[0] = f32::from_bits(bits as u32);
            if pair.len() > 1 {
                pair[1] = f32::from_bits((bits >> 32) as u32);
            }
        }
    }
);
impl_real!(
    f64,
    "double",
    1,
    fn pack_wire(src: &[f64], wire: &mut [f64]) {
        assert_eq!(wire.len(), src.len(), "wire buffer size");
        wire.copy_from_slice(src);
    },
    fn unpack_wire(wire: &[f64], dst: &mut [f64]) {
        assert_eq!(wire.len(), dst.len(), "wire buffer size");
        dst.copy_from_slice(wire);
    }
);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<R: Real>() {
        for x in [-3.5f64, 0.0, 1.0, 123.25] {
            let r = R::from_f64(x);
            assert_eq!(r.to_f64(), x, "{x} should roundtrip exactly in {}", R::NAME);
        }
    }

    #[test]
    fn f32_roundtrip_exact_for_representable() {
        roundtrip::<f32>();
    }

    #[test]
    fn f64_roundtrip_exact() {
        roundtrip::<f64>();
    }

    #[test]
    fn constants_behave() {
        fn check<R: Real>() {
            assert_eq!(R::ZERO + R::ONE, R::ONE);
            assert_eq!(R::ONE * R::ONE, R::ONE);
            assert!(R::EPSILON > R::ZERO);
            assert!((R::ONE / R::from_f64(2.0)).to_f64() == 0.5);
        }
        check::<f32>();
        check::<f64>();
    }

    #[test]
    fn minmax_and_abs() {
        fn check<R: Real>() {
            let a = R::from_f64(-2.0);
            let b = R::from_f64(3.0);
            assert_eq!(a.abs().to_f64(), 2.0);
            assert_eq!(a.max(b).to_f64(), 3.0);
            assert_eq!(a.min(b).to_f64(), -2.0);
            assert!(b.sqrt().to_f64() > 1.73 && b.sqrt().to_f64() < 1.74);
        }
        check::<f32>();
        check::<f64>();
    }

    #[test]
    fn from_usize_matches() {
        assert_eq!(<f32 as Real>::from_usize(7), 7.0f32);
        assert_eq!(<f64 as Real>::from_usize(7), 7.0f64);
    }

    #[test]
    fn wire_words_count_by_precision() {
        assert_eq!(<f64 as Real>::wire_words(6), 6);
        assert_eq!(<f32 as Real>::wire_words(6), 3);
        assert_eq!(<f32 as Real>::wire_words(7), 4, "odd counts round up");
        assert_eq!(<f32 as Real>::wire_words(0), 0);
    }

    #[test]
    fn wire_pack_roundtrips_bit_exactly() {
        // Include values that do NOT survive an f32→f64→f32 cast of bits
        // (subnormals, negative zero) and odd lengths.
        let src32: Vec<f32> = vec![1.5, -0.0, f32::MIN_POSITIVE / 2.0, 3.25e-7, -9.75, 42.0, 0.1];
        for len in [0, 1, 2, 6, 7] {
            let s = &src32[..len];
            let mut wire = vec![0.0f64; <f32 as Real>::wire_words(len)];
            f32::pack_wire(s, &mut wire);
            let mut back = vec![0.0f32; len];
            f32::unpack_wire(&wire, &mut back);
            for (a, b) in s.iter().zip(&back) {
                assert_eq!(a.to_bits(), b.to_bits(), "f32 wire must be lossless");
            }
        }
        let src64 = [1.0f64, -2.5, 1e-300, 0.1];
        let mut wire = vec![0.0f64; 4];
        f64::pack_wire(&src64, &mut wire);
        let mut back = [0.0f64; 4];
        f64::unpack_wire(&wire, &mut back);
        assert_eq!(src64, back);
    }

    #[test]
    fn corrupted_wire_word_stays_detectable() {
        // The chaos layer corrupts wire words to NaN; an unpacked f32
        // pair must still contain a non-finite value so downstream
        // breakdown detection fires.
        let wire = [f64::NAN];
        let mut pair = [0.0f32; 2];
        f32::unpack_wire(&wire, &mut pair);
        assert!(pair.iter().any(|x| !x.is_finite()), "corruption must survive unpacking");
    }
}

//! The floating-point precision abstraction.
//!
//! All lattice algebra in this workspace is generic over [`Real`], so the
//! Wilson-clover and staggered operators, BLAS-1 kernels, and Krylov
//! solvers are each written once and instantiated in double (`f64`) and
//! single (`f32`) precision. The 16-bit "half" format of the paper is a
//! *storage* format only (computation always happens in `f32` registers, as
//! on the GPU) and lives in [`crate::half`].

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real scalar type usable throughout the lattice stack.
///
/// This is deliberately a small trait: just the arithmetic surface the
/// operators and solvers need, plus lossless-ish conversions through `f64`
/// used at mixed-precision boundaries.
pub trait Real:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon for this precision.
    const EPSILON: Self;
    /// Human-readable precision label used in experiment output
    /// (`"double"` / `"single"`).
    const NAME: &'static str;

    /// Widen to `f64` (exact for both supported precisions).
    fn to_f64(self) -> f64;
    /// Narrow from `f64` (rounds for `f32`).
    fn from_f64(x: f64) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Fused (or at least composed) multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Maximum of two values.
    fn max(self, other: Self) -> Self;
    /// Minimum of two values.
    fn min(self, other: Self) -> Self;
    /// True if the value is finite (not NaN/inf).
    fn is_finite(self) -> bool;

    /// Convenience: convert a `usize` count into this precision.
    #[inline]
    fn from_usize(n: usize) -> Self {
        Self::from_f64(n as f64)
    }
}

macro_rules! impl_real {
    ($t:ty, $name:literal) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPSILON: Self = <$t>::EPSILON;
            const NAME: &'static str = $name;

            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                self * a + b
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
        }
    };
}

impl_real!(f32, "single");
impl_real!(f64, "double");

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<R: Real>() {
        for x in [-3.5f64, 0.0, 1.0, 123.25] {
            let r = R::from_f64(x);
            assert_eq!(r.to_f64(), x, "{x} should roundtrip exactly in {}", R::NAME);
        }
    }

    #[test]
    fn f32_roundtrip_exact_for_representable() {
        roundtrip::<f32>();
    }

    #[test]
    fn f64_roundtrip_exact() {
        roundtrip::<f64>();
    }

    #[test]
    fn constants_behave() {
        fn check<R: Real>() {
            assert_eq!(R::ZERO + R::ONE, R::ONE);
            assert_eq!(R::ONE * R::ONE, R::ONE);
            assert!(R::EPSILON > R::ZERO);
            assert!((R::ONE / R::from_f64(2.0)).to_f64() == 0.5);
        }
        check::<f32>();
        check::<f64>();
    }

    #[test]
    fn minmax_and_abs() {
        fn check<R: Real>() {
            let a = R::from_f64(-2.0);
            let b = R::from_f64(3.0);
            assert_eq!(a.abs().to_f64(), 2.0);
            assert_eq!(a.max(b).to_f64(), 3.0);
            assert_eq!(a.min(b).to_f64(), -2.0);
            assert!(b.sqrt().to_f64() > 1.73 && b.sqrt().to_f64() < 1.74);
        }
        check::<f32>();
        check::<f64>();
    }

    #[test]
    fn from_usize_matches() {
        assert_eq!(<f32 as Real>::from_usize(7), 7.0f32);
        assert_eq!(<f64 as Real>::from_usize(7), 7.0f64);
    }
}

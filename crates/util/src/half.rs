//! 16-bit fixed-point "half precision" storage, after QUDA.
//!
//! The paper (§5) describes a custom 16-bit fixed-point storage format used
//! together with mixed-precision solvers: fields are stored as 16-bit
//! integers and expanded to 32-bit floats in registers at load time. For
//! spinor fields, whose per-site magnitude varies across the lattice, QUDA
//! stores an auxiliary per-site `f32` norm and normalizes the 16-bit
//! mantissas by it; gauge links have entries bounded by 1 in magnitude (for
//! unitary links) so a global scale suffices.
//!
//! We reproduce both schemes:
//!
//! * [`Fixed16`] — one 16-bit fixed-point value with a compile-time-free
//!   dynamic scale handled by the caller;
//! * [`encode_block`] / [`decode_block`] — per-site block conversion with
//!   an explicit stored norm, exactly the per-site-normalized spinor scheme.
//!
//! Round-trip error is bounded by `norm / 2^15` per component, which the
//! property tests below pin down.

use serde::{Deserialize, Serialize};

/// A single 16-bit fixed-point mantissa in `[-1, 1]`.
///
/// `Fixed16(i16::MAX)` represents `+1.0` under a unit scale. Values are
/// saturated on encode so out-of-range inputs clamp instead of wrapping.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Fixed16(pub i16);

/// The encoding scale: the largest representable magnitude maps to `i16::MAX`.
const SCALE: f32 = i16::MAX as f32;

impl Fixed16 {
    /// Encode a value already normalized to `[-1, 1]`; saturates outside.
    #[inline(always)]
    pub fn encode_unit(x: f32) -> Self {
        let clamped = x.clamp(-1.0, 1.0);
        Fixed16((clamped * SCALE).round() as i16)
    }

    /// Decode back to `f32` under a unit scale.
    #[inline(always)]
    pub fn decode_unit(self) -> f32 {
        self.0 as f32 / SCALE
    }

    /// Worst-case absolute round-trip error under a unit scale.
    pub const fn unit_eps() -> f32 {
        // Half a quantization step.
        0.5 / SCALE
    }
}

/// Encode a block of `f32` values (e.g. the 24 reals of one Wilson spinor
/// site) into 16-bit mantissas plus a stored norm.
///
/// The stored norm is the max-abs of the block (QUDA uses the site norm; the
/// max-abs gives the tightest quantization bound and identical asymptotics).
/// Returns the norm; `out` receives one mantissa per input value.
///
/// # Panics
/// Panics if `out.len() != block.len()`.
pub fn encode_block(block: &[f32], out: &mut [Fixed16]) -> f32 {
    assert_eq!(block.len(), out.len(), "mantissa buffer must match block");
    let mut norm = 0.0f32;
    for &x in block {
        norm = norm.max(x.abs());
    }
    if norm == 0.0 || !norm.is_finite() {
        for o in out.iter_mut() {
            *o = Fixed16(0);
        }
        return if norm.is_finite() { 0.0 } else { norm };
    }
    let inv = 1.0 / norm;
    for (o, &x) in out.iter_mut().zip(block) {
        *o = Fixed16::encode_unit(x * inv);
    }
    norm
}

/// Decode a block previously produced by [`encode_block`].
///
/// # Panics
/// Panics if `out.len() != block.len()`.
pub fn decode_block(block: &[Fixed16], norm: f32, out: &mut [f32]) {
    assert_eq!(block.len(), out.len(), "output buffer must match block");
    for (o, &m) in out.iter_mut().zip(block) {
        *o = m.decode_unit() * norm;
    }
}

/// Worst-case absolute error of a block round-trip with the given norm.
#[inline]
pub fn block_eps(norm: f32) -> f32 {
    // encode_unit introduces ≤ 0.5/SCALE on the normalized value; scaling by
    // the norm gives the absolute bound. One extra ulp covers the division
    // and multiplication rounding.
    norm * (0.5 / SCALE) + norm * f32::EPSILON * 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_block_is_exact() {
        let block = [0.0f32; 8];
        let mut enc = [Fixed16(0); 8];
        let norm = encode_block(&block, &mut enc);
        assert_eq!(norm, 0.0);
        let mut dec = [1.0f32; 8];
        decode_block(&enc, norm, &mut dec);
        assert_eq!(dec, [0.0f32; 8]);
    }

    #[test]
    fn unit_values_roundtrip_tightly() {
        for &x in &[1.0f32, -1.0, 0.5, -0.25, 0.125] {
            let e = Fixed16::encode_unit(x);
            assert!((e.decode_unit() - x).abs() <= Fixed16::unit_eps(), "x={x}");
        }
    }

    #[test]
    fn saturation_clamps() {
        assert_eq!(Fixed16::encode_unit(10.0), Fixed16::encode_unit(1.0));
        assert_eq!(Fixed16::encode_unit(-10.0), Fixed16::encode_unit(-1.0));
    }

    #[test]
    fn max_component_survives() {
        // The block max maps to exactly ±1 mantissa, so it round-trips to
        // within one decode scaling of itself.
        let block = [3.0f32, -1.5, 0.75];
        let mut enc = [Fixed16(0); 3];
        let norm = encode_block(&block, &mut enc);
        assert_eq!(norm, 3.0);
        let mut dec = [0.0f32; 3];
        decode_block(&enc, norm, &mut dec);
        assert!((dec[0] - 3.0).abs() < 1e-3);
    }

    proptest! {
        #[test]
        fn prop_block_roundtrip_error_bounded(
            block in proptest::collection::vec(-1e6f32..1e6, 1..64)
        ) {
            let mut enc = vec![Fixed16(0); block.len()];
            let norm = encode_block(&block, &mut enc);
            let mut dec = vec![0.0f32; block.len()];
            decode_block(&enc, norm, &mut dec);
            let bound = block_eps(norm);
            for (i, (&orig, &back)) in block.iter().zip(&dec).enumerate() {
                prop_assert!(
                    (orig - back).abs() <= bound,
                    "component {i}: {orig} vs {back}, bound {bound}"
                );
            }
        }

        #[test]
        fn prop_encode_is_monotone(a in -1.0f32..1.0, b in -1.0f32..1.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(Fixed16::encode_unit(lo).0 <= Fixed16::encode_unit(hi).0);
        }
    }
}

//! Small statistics helpers used by the benchmark harness.

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Compute summary statistics over a slice. Returns `None` when empty.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Some(Summary { n, mean, std_dev: var.sqrt(), min, max })
    }
}

/// Geometric mean of positive values (0 if any non-positive or empty).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 2.5);
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn summary_edge_cases() {
        assert!(Summary::of(&[]).is_none());
        let one = Summary::of(&[7.0]).unwrap();
        assert_eq!(one.std_dev, 0.0);
        assert_eq!(one.mean, 7.0);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(geomean(&[1.0, -1.0]), 0.0);
    }
}

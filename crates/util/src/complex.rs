//! Complex arithmetic over any [`Real`] precision.
//!
//! A deliberately small, `#[repr(C)]`, `Copy` complex type: every lattice
//! quantity (color matrices, spinors) is built from contiguous arrays of
//! these, so layout and copyability matter more than a rich API.

use crate::real::Real;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` over real type `R`.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
#[repr(C)]
pub struct Complex<R> {
    /// Real part.
    pub re: R,
    /// Imaginary part.
    pub im: R,
}

impl<R: Real> Complex<R> {
    /// The additive identity.
    pub const fn zero() -> Self
    where
        R: Copy,
    {
        Self { re: R::ZERO, im: R::ZERO }
    }

    /// The multiplicative identity.
    pub const fn one() -> Self {
        Self { re: R::ONE, im: R::ZERO }
    }

    /// The imaginary unit.
    pub const fn i() -> Self {
        Self { re: R::ZERO, im: R::ONE }
    }

    /// Construct from parts.
    #[inline(always)]
    pub const fn new(re: R, im: R) -> Self {
        Self { re, im }
    }

    /// Construct a purely real value.
    #[inline(always)]
    pub fn from_re(re: R) -> Self {
        Self { re, im: R::ZERO }
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    /// Squared modulus `|z|²`.
    #[inline(always)]
    pub fn norm_sqr(self) -> R {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline(always)]
    pub fn abs(self) -> R {
        self.norm_sqr().sqrt()
    }

    /// Multiply by the imaginary unit: `i·z = -im + i·re`.
    #[inline(always)]
    pub fn mul_i(self) -> Self {
        Self { re: -self.im, im: self.re }
    }

    /// Multiply by `-i`: `-i·z = im - i·re`.
    #[inline(always)]
    pub fn mul_neg_i(self) -> Self {
        Self { re: self.im, im: -self.re }
    }

    /// Scale by a real factor.
    #[inline(always)]
    pub fn scale(self, s: R) -> Self {
        Self { re: self.re * s, im: self.im * s }
    }

    /// `self * rhs.conj()` — the elementary inner-product term.
    #[inline(always)]
    pub fn mul_conj(self, rhs: Self) -> Self {
        Self { re: self.re * rhs.re + self.im * rhs.im, im: self.im * rhs.re - self.re * rhs.im }
    }

    /// Fused multiply-accumulate: `acc + a * b`.
    #[inline(always)]
    pub fn mul_acc(acc: Self, a: Self, b: Self) -> Self {
        Self { re: acc.re + a.re * b.re - a.im * b.im, im: acc.im + a.re * b.im + a.im * b.re }
    }

    /// Multiplicative inverse. Returns `None` for (exact) zero.
    pub fn inv(self) -> Option<Self> {
        let n = self.norm_sqr();
        if n == R::ZERO {
            return None;
        }
        Some(Self { re: self.re / n, im: -self.im / n })
    }

    /// Convert to another precision through `f64`.
    #[inline(always)]
    pub fn cast<S: Real>(self) -> Complex<S> {
        Complex { re: S::from_f64(self.re.to_f64()), im: S::from_f64(self.im.to_f64()) }
    }

    /// True if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl<R: Real> Add for Complex<R> {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl<R: Real> Sub for Complex<R> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl<R: Real> Mul for Complex<R> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl<R: Real> Mul<R> for Complex<R> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: R) -> Self {
        self.scale(rhs)
    }
}

impl<R: Real> Div for Complex<R> {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let n = rhs.norm_sqr();
        Self {
            re: (self.re * rhs.re + self.im * rhs.im) / n,
            im: (self.im * rhs.re - self.re * rhs.im) / n,
        }
    }
}

impl<R: Real> Div<R> for Complex<R> {
    type Output = Self;
    #[inline(always)]
    fn div(self, rhs: R) -> Self {
        Self { re: self.re / rhs, im: self.im / rhs }
    }
}

impl<R: Real> Neg for Complex<R> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self { re: -self.re, im: -self.im }
    }
}

impl<R: Real> AddAssign for Complex<R> {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl<R: Real> SubAssign for Complex<R> {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl<R: Real> MulAssign for Complex<R> {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<R: Real> MulAssign<R> for Complex<R> {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: R) {
        self.re *= rhs;
        self.im *= rhs;
    }
}

impl<R: Real> DivAssign<R> for Complex<R> {
    #[inline(always)]
    fn div_assign(&mut self, rhs: R) {
        self.re /= rhs;
        self.im /= rhs;
    }
}

impl<R: Real> Sum for Complex<R> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::zero(), |a, b| a + b)
    }
}

impl<R: Real> std::fmt::Display for Complex<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}{:+}i)", self.re, self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    type C = Complex<f64>;

    fn c(re: f64, im: f64) -> C {
        C::new(re, im)
    }

    fn close(a: C, b: C, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn identities() {
        let z = c(2.0, -3.0);
        assert_eq!(z + C::zero(), z);
        assert_eq!(z * C::one(), z);
        assert_eq!(z * C::i(), z.mul_i());
        assert_eq!(z.mul_i().mul_neg_i(), z);
    }

    #[test]
    fn conjugation_and_norm() {
        let z = c(3.0, 4.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!((z * z.conj()).re, 25.0);
        assert_eq!((z * z.conj()).im, 0.0);
        assert_eq!(z.mul_conj(z), z * z.conj());
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = c(1.5, -2.25);
        let b = c(-0.5, 0.75);
        assert!(close(a * b / b, a, 1e-12));
        assert!(close(b * b.inv().unwrap(), C::one(), 1e-12));
        assert_eq!(C::zero().inv(), None);
    }

    #[test]
    fn mul_acc_matches_expanded() {
        let acc = c(0.1, 0.2);
        let a = c(1.0, -1.0);
        let b = c(2.0, 3.0);
        assert!(close(C::mul_acc(acc, a, b), acc + a * b, 1e-15));
    }

    #[test]
    fn cast_roundtrips_within_f32() {
        let z = c(1.25, -7.5);
        let w: Complex<f32> = z.cast();
        assert_eq!(w.cast::<f64>(), z);
    }

    proptest! {
        #[test]
        fn prop_field_axioms(ar in -1e3f64..1e3, ai in -1e3f64..1e3,
                             br in -1e3f64..1e3, bi in -1e3f64..1e3,
                             cr in -1e3f64..1e3, ci in -1e3f64..1e3) {
            let a = c(ar, ai);
            let b = c(br, bi);
            let d = c(cr, ci);
            // commutativity
            prop_assert!(close(a + b, b + a, 1e-9));
            prop_assert!(close(a * b, b * a, 1e-6));
            // associativity (with tolerance)
            prop_assert!(close((a + b) + d, a + (b + d), 1e-9));
            // distributivity
            prop_assert!(close(a * (b + d), a * b + a * d, 1e-5));
            // conj is an involution and a homomorphism
            prop_assert_eq!(a.conj().conj(), a);
            prop_assert!(close((a * b).conj(), a.conj() * b.conj(), 1e-6));
            // |ab| = |a||b|
            prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-6 * (1.0 + a.abs() * b.abs()));
        }

        #[test]
        fn prop_mul_i_is_rotation(ar in -1e3f64..1e3, ai in -1e3f64..1e3) {
            let a = c(ar, ai);
            prop_assert_eq!(a.mul_i(), a * C::i());
            prop_assert_eq!(a.mul_i().mul_i(), -a);
            prop_assert_eq!(a.mul_i().abs(), a.abs());
        }
    }
}

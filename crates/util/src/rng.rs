//! Deterministic random-number plumbing.
//!
//! Gauge configurations, random sources, and noise vectors must be exactly
//! reproducible across runs (and across rank counts!) for the paper's
//! experiments to be regression-testable. We use ChaCha8 streams keyed by a
//! master seed plus a purpose/site-derived stream id, so:
//!
//! * the same `(seed, label)` pair always yields the same stream, and
//! * a field generated on 1 rank is *identical* to the same field generated
//!   on N ranks, because per-site randomness is keyed by the *global* site
//!   index, not by the order sites happen to be visited.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A reproducible source of RNG streams.
#[derive(Clone, Debug)]
pub struct SeedTree {
    seed: u64,
}

impl SeedTree {
    /// Create a tree from a master seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive a named child tree (e.g. "gauge", "source").
    pub fn child(&self, label: &str) -> SeedTree {
        SeedTree { seed: splitmix(self.seed ^ fnv1a(label)) }
    }

    /// An RNG for a specific global index (site, shift id, ...) under this
    /// tree. Streams for distinct indices are independent.
    pub fn stream(&self, index: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(splitmix(
            self.seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index ^ 0xdead_beef)),
        ))
    }

    /// A single RNG for bulk, order-insensitive uses.
    pub fn rng(&self) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(self.seed)
    }
}

/// Draw a standard-normal pair via Box–Muller from a uniform RNG.
///
/// Used for Gaussian noise sources; avoids pulling in a distributions crate.
pub fn normal_pair<G: Rng>(rng: &mut G) -> (f64, f64) {
    // Repeat until u1 is safely nonzero so ln(u1) is finite.
    let mut u1: f64 = rng.gen();
    while u1 <= f64::MIN_POSITIVE {
        u1 = rng.gen();
    }
    let u2: f64 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// FNV-1a hash of a label, for deriving child seeds.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: decorrelates sequential seeds.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_seed_same_stream() {
        let t = SeedTree::new(42);
        let a: Vec<u64> = (0..8).map(|_| t.stream(7).next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| t.stream(7).next_u64()).collect();
        // stream(7) restarts the stream each call, so first draws agree.
        assert_eq!(a[0], b[0]);
        let mut s1 = t.stream(7);
        let mut s2 = t.stream(7);
        for _ in 0..100 {
            assert_eq!(s1.next_u64(), s2.next_u64());
        }
    }

    #[test]
    fn children_and_streams_are_independent() {
        let t = SeedTree::new(42);
        assert_ne!(t.child("gauge").seed(), t.child("source").seed());
        assert_ne!(t.stream(0).next_u64(), t.stream(1).next_u64());
        assert_ne!(SeedTree::new(1).stream(0).next_u64(), SeedTree::new(2).stream(0).next_u64());
    }

    #[test]
    fn normal_pair_has_sane_moments() {
        let t = SeedTree::new(7);
        let mut rng = t.rng();
        let n = 40_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n / 2 {
            let (a, b) = normal_pair(&mut rng);
            sum += a + b;
            sum2 += a * a + b * b;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn label_hash_is_stable() {
        // Pin the derivation so saved experiment artifacts stay valid.
        let t = SeedTree::new(0);
        assert_eq!(t.child("gauge").seed(), t.child("gauge").seed());
        assert_ne!(t.child("a").seed(), t.child("b").seed());
    }
}

//! Per-rank flight recorder: the observability layer of the workspace.
//!
//! The paper's argument is a *timeline* argument — Fig. 4 is nine streams
//! of interior compute overlapped with staged ghost traffic, Fig. 7
//! attributes solver time to kernels vs. exposed communication. The four
//! scalar `dslash_*` counters the overlap pipeline keeps are too coarse
//! to validate that stage mapping, so this module records the stages
//! themselves:
//!
//! * a per-rank [`TraceBuffer`] of typed [`TraceEvent`]s — span
//!   begin/end, instants, counters — with monotonic nanosecond timestamps
//!   off one process-wide epoch (so ranks align on a common time axis);
//! * recording is *lock-free on the hot path*: each rank thread owns its
//!   buffer through a thread-local installed by [`rank_scope`], pushes
//!   are plain `Vec` appends, and the buffer only crosses a lock once,
//!   when the scope drops and flushes it to the global sink;
//! * when tracing is disabled (the default) every recording call is one
//!   relaxed atomic load and a branch — no timestamps, no thread-local
//!   access, no allocation;
//! * collected buffers export as Chrome `trace_event` JSON
//!   ([`export_chrome_json`]: one *process* per rank, one *thread* track
//!   per pipeline stage — load the file in `chrome://tracing` or
//!   Perfetto) or aggregate into a text report ([`summarize`]);
//! * [`MetricsRegistry`] is the named counter/histogram registry that
//!   the ad-hoc scalar plumbing (`SolveStats` and friends) publishes
//!   into, so reports are driven off one mergeable structure instead of
//!   hand-carried struct fields.
//!
//! Instrumentation sites pick a [`Track`] matching the Fig. 4 stream the
//! work belongs to; see DESIGN.md, "Observability".

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Pipeline stage a trace event belongs to. Exported as one Chrome
/// thread track per stage within each rank's process group.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// Wire traffic: link sends/receives, ARQ retries, acks, reductions,
    /// and the in-flight window of posted ghost exchanges.
    Comm,
    /// Face gathers + nonblocking posts (Fig. 4 gather kernels).
    Gather,
    /// Interior stencil kernel (runs concurrently with `Comm`).
    Interior,
    /// Per-dimension exterior (boundary) kernels.
    Exterior,
    /// Outer solver iterations and restarts.
    Solver,
    /// Schwarz-block preconditioner applications.
    Precond,
    /// Checkpoint writes.
    Checkpoint,
    /// Supervisor control plane: world teardown/rebuild, resume.
    Supervisor,
}

impl Track {
    /// Every track, in export order.
    pub const ALL: [Track; 8] = [
        Track::Comm,
        Track::Gather,
        Track::Interior,
        Track::Exterior,
        Track::Solver,
        Track::Precond,
        Track::Checkpoint,
        Track::Supervisor,
    ];

    /// Stable Chrome `tid` for the track.
    pub fn tid(self) -> u64 {
        match self {
            Track::Comm => 0,
            Track::Gather => 1,
            Track::Interior => 2,
            Track::Exterior => 3,
            Track::Solver => 4,
            Track::Precond => 5,
            Track::Checkpoint => 6,
            Track::Supervisor => 7,
        }
    }

    /// Human-readable track label.
    pub fn label(self) -> &'static str {
        match self {
            Track::Comm => "comm",
            Track::Gather => "gather",
            Track::Interior => "interior",
            Track::Exterior => "exterior",
            Track::Solver => "solver",
            Track::Precond => "precond",
            Track::Checkpoint => "checkpoint",
            Track::Supervisor => "supervisor",
        }
    }
}

/// What a [`TraceEvent`] marks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EventKind {
    /// Span opens (Chrome `B`).
    Begin,
    /// Span closes (Chrome `E`).
    End,
    /// Point event (Chrome `i`).
    Instant,
    /// Sampled counter value (Chrome `C`).
    Counter(f64),
}

/// One recorded event. `name` is static so recording never allocates;
/// `arg` carries one small payload (a dimension, sequence, iteration…).
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Nanoseconds since the process-wide trace epoch.
    pub t_ns: u64,
    /// Pipeline stage track.
    pub track: Track,
    /// Event name (span and its end share the name).
    pub name: &'static str,
    /// Begin/End/Instant/Counter.
    pub kind: EventKind,
    /// Small integer payload; meaning is per event name.
    pub arg: i64,
}

/// One rank's recorded events, in record order.
pub type TraceBuffer = Vec<TraceEvent>;

/// Pseudo-rank for control-plane events recorded outside any rank thread
/// (the supervisor). Exported under its own process group.
pub const CONTROL_RANK: usize = usize::MAX;

static ENABLED: AtomicBool = AtomicBool::new(false);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the process-wide trace epoch. All ranks
/// (threads) share the epoch, so timestamps are directly comparable.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Switch recording on. Call before launching the world whose ranks
/// should record; typically paired with [`take`] afterwards.
pub fn enable() {
    // Pin the epoch before the first event so early timestamps are small.
    let _ = epoch();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Switch recording off (recording calls return to the one-load path).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether recording is switched on.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

struct LocalBuf {
    rank: usize,
    events: TraceBuffer,
}

thread_local! {
    static LOCAL: RefCell<Option<LocalBuf>> = const { RefCell::new(None) };
}

static SINK: Mutex<Vec<(usize, TraceBuffer)>> = Mutex::new(Vec::new());

/// Install this thread as recorder for `rank` until the guard drops, at
/// which point the buffer is flushed to the global sink (readable via
/// [`take`]). Scopes nest: the previous recorder (if any) is restored on
/// drop, so a supervisor scope survives worlds launched inside it. A
/// no-op (and cost-free) when tracing is disabled at creation.
pub fn rank_scope(rank: usize) -> RankScope {
    if !is_enabled() {
        return RankScope { prev: None, armed: false };
    }
    let prev = LOCAL.with(|l| l.replace(Some(LocalBuf { rank, events: Vec::with_capacity(1024) })));
    RankScope { prev, armed: true }
}

/// Guard returned by [`rank_scope`]; flushes the rank's buffer on drop
/// (including during panic unwinding, so a dying rank's events survive).
pub struct RankScope {
    prev: Option<LocalBuf>,
    armed: bool,
}

impl Drop for RankScope {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let buf = LOCAL.with(|l| l.replace(self.prev.take()));
        if let Some(b) = buf {
            if !b.events.is_empty() {
                SINK.lock().unwrap().push((b.rank, b.events));
            }
        }
    }
}

/// Drain every flushed buffer, merged per rank and ordered by timestamp
/// (rank order first). Buffers of scopes still alive are not included.
pub fn take() -> Vec<(usize, TraceBuffer)> {
    let drained = std::mem::take(&mut *SINK.lock().unwrap());
    let mut by_rank: BTreeMap<usize, TraceBuffer> = BTreeMap::new();
    for (rank, events) in drained {
        by_rank.entry(rank).or_default().extend(events);
    }
    by_rank
        .into_iter()
        .map(|(rank, mut events)| {
            // Stable: equal timestamps keep record order (B before E).
            events.sort_by_key(|e| e.t_ns);
            (rank, events)
        })
        .collect()
}

/// Discard everything flushed so far.
pub fn clear() {
    SINK.lock().unwrap().clear();
}

#[inline]
fn record_at(t_ns: u64, track: Track, name: &'static str, kind: EventKind, arg: i64) {
    LOCAL.with(|l| {
        if let Some(buf) = l.borrow_mut().as_mut() {
            buf.events.push(TraceEvent { t_ns, track, name, kind, arg });
        }
    });
}

#[inline]
fn record(track: Track, name: &'static str, kind: EventKind, arg: i64) {
    if !is_enabled() {
        return;
    }
    record_at(now_ns(), track, name, kind, arg);
}

/// Record a point event.
#[inline]
pub fn instant(track: Track, name: &'static str, arg: i64) {
    record(track, name, EventKind::Instant, arg);
}

/// Record a counter sample.
#[inline]
pub fn counter(track: Track, name: &'static str, value: f64) {
    record(track, name, EventKind::Counter(value), 0);
}

/// Open a span; it closes when the returned guard drops. When disabled
/// the guard is inert (no timestamp is even read).
#[inline]
pub fn span(track: Track, name: &'static str) -> Span {
    span_arg(track, name, 0)
}

/// [`span`] with a payload on the begin event.
#[inline]
pub fn span_arg(track: Track, name: &'static str, arg: i64) -> Span {
    if !is_enabled() {
        return Span { track, name, armed: false };
    }
    record_at(now_ns(), track, name, EventKind::Begin, arg);
    Span { track, name, armed: true }
}

/// Record an already-measured span retroactively (both endpoints at
/// once) — used for stages timed on other threads, like the interior
/// kernel, whose duration is known only after the fact.
#[inline]
pub fn span_at(track: Track, name: &'static str, start_ns: u64, end_ns: u64, arg: i64) {
    if !is_enabled() {
        return;
    }
    record_at(start_ns, track, name, EventKind::Begin, arg);
    record_at(end_ns.max(start_ns), track, name, EventKind::End, arg);
}

/// RAII span guard from [`span`]; records the matching end on drop (also
/// during unwinding, keeping per-rank begin/end balanced).
pub struct Span {
    track: Track,
    name: &'static str,
    armed: bool,
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            record_at(now_ns(), self.track, self.name, EventKind::End, 0);
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn chrome_pid(rank: usize) -> u64 {
    if rank == CONTROL_RANK {
        999_999
    } else {
        rank as u64
    }
}

fn push_ts(out: &mut String, t_ns: u64) {
    // Chrome expects microseconds; keep nanosecond resolution as the
    // fractional part.
    let _ = write!(out, "{}.{:03}", t_ns / 1_000, t_ns % 1_000);
}

/// Render collected buffers as Chrome `trace_event` JSON (the
/// `{"traceEvents": [...]}` object form): one process per rank, one
/// thread track per [`Track`]. Guaranteed well-formed even for buffers
/// truncated by a dying rank: stray `E`s are dropped and unclosed `B`s
/// are closed at the buffer's last timestamp, so every `B` has a
/// matching `E`.
pub fn export_chrome_json(ranks: &[(usize, TraceBuffer)]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    let meta = |out: &mut String, first: &mut bool, pid: u64, tid: Option<u64>, name: &str| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        let field = if tid.is_some() { "thread_name" } else { "process_name" };
        let _ = write!(out, "{{\"ph\":\"M\",\"pid\":{pid},");
        if let Some(tid) = tid {
            let _ = write!(out, "\"tid\":{tid},");
        }
        let _ = write!(out, "\"name\":\"{field}\",\"args\":{{\"name\":\"");
        escape_into(out, name);
        out.push_str("\"}}");
    };
    for (rank, events) in ranks {
        let pid = chrome_pid(*rank);
        let pname =
            if *rank == CONTROL_RANK { "control".to_string() } else { format!("rank {rank}") };
        meta(&mut out, &mut first, pid, None, &pname);
        let mut tracks: Vec<Track> = events.iter().map(|e| e.track).collect();
        tracks.sort();
        tracks.dedup();
        for track in &tracks {
            meta(&mut out, &mut first, pid, Some(track.tid()), track.label());
        }
        // Per-track open-span stacks, for balance repair.
        let mut open: BTreeMap<u64, Vec<&'static str>> = BTreeMap::new();
        let mut last_ns = 0u64;
        for e in events {
            last_ns = last_ns.max(e.t_ns);
            let tid = e.track.tid();
            let ph = match e.kind {
                EventKind::Begin => {
                    open.entry(tid).or_default().push(e.name);
                    "B"
                }
                EventKind::End => {
                    // A stray end (begin lost to a truncated buffer)
                    // would unbalance the track: drop it.
                    if open.get_mut(&tid).and_then(Vec::pop).is_none() {
                        continue;
                    }
                    "E"
                }
                EventKind::Instant => "i",
                EventKind::Counter(_) => "C",
            };
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(out, "{{\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{tid},\"ts\":");
            push_ts(&mut out, e.t_ns);
            out.push_str(",\"name\":\"");
            escape_into(&mut out, e.name);
            out.push('"');
            match e.kind {
                EventKind::Instant => {
                    let _ = write!(out, ",\"s\":\"t\",\"args\":{{\"arg\":{}}}", e.arg);
                }
                EventKind::Counter(v) => {
                    let _ = write!(out, ",\"args\":{{\"value\":{v}}}");
                }
                EventKind::Begin => {
                    let _ = write!(out, ",\"args\":{{\"arg\":{}}}", e.arg);
                }
                EventKind::End => {}
            }
            out.push('}');
        }
        // Close anything a truncated buffer left open.
        for (tid, stack) in open {
            for name in stack.into_iter().rev() {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                let _ = write!(out, "{{\"ph\":\"E\",\"pid\":{pid},\"tid\":{tid},\"ts\":");
                push_ts(&mut out, last_ns);
                out.push_str(",\"name\":\"");
                escape_into(&mut out, name);
                out.push_str("\"}");
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Aggregate collected buffers into an aligned text report: per
/// (track, span name) the call count and total/mean wall time across all
/// ranks, plus instant counts and counter sums.
pub fn summarize(ranks: &[(usize, TraceBuffer)]) -> String {
    #[derive(Default)]
    struct Agg {
        spans: u64,
        span_ns: u64,
        instants: u64,
        counter_sum: f64,
    }
    let mut agg: BTreeMap<(Track, &'static str), Agg> = BTreeMap::new();
    for (_, events) in ranks {
        let mut open: BTreeMap<u64, Vec<(&'static str, u64)>> = BTreeMap::new();
        for e in events {
            let a = agg.entry((e.track, e.name)).or_default();
            match e.kind {
                EventKind::Begin => open.entry(e.track.tid()).or_default().push((e.name, e.t_ns)),
                EventKind::End => {
                    if let Some((name, begin)) = open.get_mut(&e.track.tid()).and_then(Vec::pop) {
                        let a = agg.entry((e.track, name)).or_default();
                        a.spans += 1;
                        a.span_ns += e.t_ns.saturating_sub(begin);
                    }
                }
                EventKind::Instant => a.instants += 1,
                EventKind::Counter(v) => a.counter_sum += v,
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:<24} {:>9} {:>12} {:>10} {:>8}",
        "track", "event", "spans", "total µs", "mean µs", "points"
    );
    for ((track, name), a) in &agg {
        let mean = if a.spans > 0 { a.span_ns as f64 / a.spans as f64 / 1e3 } else { 0.0 };
        let _ = writeln!(
            out,
            "{:<12} {:<24} {:>9} {:>12.1} {:>10.2} {:>8}",
            track.label(),
            name,
            a.spans,
            a.span_ns as f64 / 1e3,
            mean,
            a.instants + if a.counter_sum != 0.0 { 1 } else { 0 },
        );
    }
    out
}

/// A log₂-bucketed histogram of nonnegative samples.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// Samples recorded.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    buckets: [u64; 64],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; 64],
        }
    }
}

impl Histogram {
    fn bucket_of(value: f64) -> usize {
        if value <= 1.0 {
            0
        } else {
            (value.log2().ceil() as usize).min(63)
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Mean of the samples (`NaN` before any sample).
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }

    /// Samples with value ≤ 2^`bucket` (bucket 0 covers ≤ 1).
    pub fn bucket(&self, bucket: usize) -> u64 {
        self.buckets[bucket.min(63)]
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }
}

/// A registry of named counters and histograms — the structured home for
/// what used to travel as ad-hoc struct scalars. `SolveStats::publish`
/// is the facade that maps the legacy record into it; reports and
/// cross-rank aggregation go through [`MetricsRegistry::merge`] instead
/// of hand-summing fields.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named counter (created at zero).
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Record one sample into the named histogram.
    pub fn record(&mut self, name: &'static str, value: f64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Fold another registry into this one (counters add, histograms
    /// merge) — cross-rank aggregation.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name).or_default().merge(h);
        }
    }

    /// Aligned text report of every counter and histogram.
    pub fn text_report(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            let _ = writeln!(out, "{:<36} {:>14}", "counter", "value");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "{name:<36} {v:>14}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(
                out,
                "{:<36} {:>8} {:>12} {:>12} {:>12}",
                "histogram", "count", "mean", "min", "max"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "{:<36} {:>8} {:>12.4} {:>12.4} {:>12.4}",
                    name,
                    h.count,
                    h.mean(),
                    h.min,
                    h.max
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global enable flag and sink are process-wide; trace tests
    /// serialize on this lock so `cargo test`'s parallel runner cannot
    /// interleave two recording sessions.
    pub(super) fn session_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let _g = session_lock();
        disable();
        clear();
        {
            let _s = rank_scope(0);
            let _sp = span(Track::Solver, "iter");
            instant(Track::Comm, "send", 1);
            counter(Track::Comm, "bytes", 10.0);
        }
        assert!(take().is_empty());
    }

    #[test]
    fn spans_nest_and_flush_per_rank() {
        let _g = session_lock();
        enable();
        clear();
        {
            let _s = rank_scope(3);
            let _outer = span_arg(Track::Solver, "outer", 7);
            {
                let _inner = span(Track::Solver, "inner");
                instant(Track::Solver, "tick", 0);
            }
        }
        disable();
        let got = take();
        assert_eq!(got.len(), 1);
        let (rank, events) = &got[0];
        assert_eq!(*rank, 3);
        let kinds: Vec<(&str, bool)> =
            events.iter().map(|e| (e.name, matches!(e.kind, EventKind::Begin))).collect();
        assert_eq!(
            kinds,
            vec![
                ("outer", true),
                ("inner", true),
                ("tick", false),
                ("inner", false),
                ("outer", false)
            ]
        );
        // Timestamps are monotone within the buffer.
        assert!(events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
    }

    #[test]
    fn nested_scopes_restore_the_outer_recorder() {
        let _g = session_lock();
        enable();
        clear();
        {
            let _outer = rank_scope(CONTROL_RANK);
            instant(Track::Supervisor, "launch", 0);
            {
                let _inner = rank_scope(5);
                instant(Track::Solver, "inner-evt", 0);
            }
            // Back on the control recorder.
            instant(Track::Supervisor, "relaunch", 1);
        }
        disable();
        let got = take();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 5);
        assert_eq!(got[1].0, CONTROL_RANK);
        assert_eq!(got[1].1.len(), 2);
    }

    #[test]
    fn retroactive_spans_clamp_and_order() {
        let _g = session_lock();
        enable();
        clear();
        {
            let _s = rank_scope(0);
            span_at(Track::Interior, "interior", 1_000, 5_000, 2);
            // end < start must not produce a negative-length span.
            span_at(Track::Interior, "degenerate", 9_000, 8_000, 0);
        }
        disable();
        let got = take();
        let events = &got[0].1;
        assert_eq!(events[0].t_ns, 1_000);
        assert_eq!(events[1].t_ns, 5_000);
        assert_eq!(events[2].t_ns, 9_000);
        assert_eq!(events[3].t_ns, 9_000);
    }

    #[test]
    fn chrome_export_repairs_truncated_buffers() {
        let buf = vec![
            TraceEvent {
                t_ns: 10,
                track: Track::Solver,
                name: "a",
                kind: EventKind::Begin,
                arg: 0,
            },
            TraceEvent {
                t_ns: 20,
                track: Track::Solver,
                name: "b",
                kind: EventKind::Begin,
                arg: 0,
            },
            // Buffer truncated here: both spans left open, plus a stray
            // end on another track.
            TraceEvent { t_ns: 30, track: Track::Comm, name: "x", kind: EventKind::End, arg: 0 },
        ];
        let json = export_chrome_json(&[(1, buf)]);
        let b = json.matches("\"ph\":\"B\"").count();
        let e = json.matches("\"ph\":\"E\"").count();
        assert_eq!(b, 2);
        assert_eq!(e, 2, "unclosed spans must be closed, stray ends dropped: {json}");
    }

    #[test]
    fn summarize_reports_span_totals() {
        let buf = vec![
            TraceEvent {
                t_ns: 0,
                track: Track::Interior,
                name: "interior",
                kind: EventKind::Begin,
                arg: 0,
            },
            TraceEvent {
                t_ns: 4_000,
                track: Track::Interior,
                name: "interior",
                kind: EventKind::End,
                arg: 0,
            },
            TraceEvent {
                t_ns: 100,
                track: Track::Comm,
                name: "retry",
                kind: EventKind::Instant,
                arg: 0,
            },
        ];
        let report = summarize(&[(0, buf)]);
        assert!(report.contains("interior"), "{report}");
        assert!(report.contains("4.0"), "span total µs missing: {report}");
        assert!(report.contains("retry"), "{report}");
    }

    #[test]
    fn metrics_registry_counts_merges_and_reports() {
        let mut a = MetricsRegistry::new();
        a.add("solve.iterations", 10);
        a.add("solve.iterations", 5);
        a.record("dslash.apply_us", 12.0);
        a.record("dslash.apply_us", 4.0);
        let mut b = MetricsRegistry::new();
        b.add("solve.iterations", 3);
        b.record("dslash.apply_us", 100.0);
        a.merge(&b);
        assert_eq!(a.counter("solve.iterations"), 18);
        let h = a.histogram("dslash.apply_us").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 4.0);
        assert_eq!(h.max, 100.0);
        assert!((h.mean() - 116.0 / 3.0).abs() < 1e-12);
        let report = a.text_report();
        assert!(report.contains("solve.iterations"));
        assert!(report.contains("dslash.apply_us"));
        assert_eq!(a.counter("never.touched"), 0);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::default();
        for v in [0.5, 1.0, 2.0, 3.0, 1000.0] {
            h.record(v);
        }
        assert_eq!(h.bucket(0), 2); // ≤ 1
        assert_eq!(h.bucket(1), 1); // ≤ 2
        assert_eq!(h.bucket(2), 1); // ≤ 4
        assert_eq!(h.bucket(10), 1); // ≤ 1024
    }
}

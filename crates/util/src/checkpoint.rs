//! Versioned, checksummed checkpoint container with atomic persistence.
//!
//! A [`Checkpoint`] is a named bag of binary sections (field snapshots,
//! solver metadata, ...) serialized as
//!
//! ```text
//! magic "LQCKPT01" | format u32 | nsections u32
//! per section: name_len u32 | name | payload_len u64 | payload | crc64(payload)
//! trailer: crc64(everything above)
//! ```
//!
//! all little-endian. Every payload carries its own CRC-64 so a flipped byte
//! is pinned to a section; the trailer CRC catches truncation and header
//! damage. Decoding never panics: any malformed input is reported as
//! [`Error::Corrupt`].
//!
//! Persistence is crash-safe: [`Checkpoint::save_atomic`] writes to a
//! sibling `*.tmp` file, re-reads and re-validates it, then `rename`s into
//! place — so a rank that dies mid-write leaves either the previous valid
//! checkpoint or a stray tmp file, never a torn checkpoint at the real
//! path. [`CheckpointStore`] layers rotating generations on top, and
//! [`CheckpointStore::latest_valid`] skips corrupt generations instead of
//! failing, which is what a supervisor restoring after a crash wants.

use crate::checksum::{crc64, Crc64};
use crate::error::{Error, Result};
use std::path::{Path, PathBuf};

/// File magic: "LQCKPT" + 2-digit container revision.
pub const MAGIC: &[u8; 8] = b"LQCKPT01";
/// Container format version (bump on incompatible layout changes).
pub const FORMAT_VERSION: u32 = 1;

/// A named bag of checksummed binary sections.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Checkpoint {
    sections: Vec<(String, Vec<u8>)>,
}

impl Checkpoint {
    /// Empty checkpoint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (or replace) a section.
    pub fn insert(&mut self, name: &str, payload: Vec<u8>) {
        if let Some(slot) = self.sections.iter_mut().find(|(n, _)| n == name) {
            slot.1 = payload;
        } else {
            self.sections.push((name.to_string(), payload));
        }
    }

    /// Payload of a section, if present.
    pub fn get(&self, name: &str) -> Option<&[u8]> {
        self.sections.iter().find(|(n, _)| n == name).map(|(_, p)| p.as_slice())
    }

    /// Payload of a required section, as a typed error if missing.
    pub fn require(&self, name: &str) -> Result<&[u8]> {
        self.get(name).ok_or_else(|| Error::Corrupt {
            what: "checkpoint".into(),
            detail: format!("missing section '{name}'"),
        })
    }

    /// Section names in insertion order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// Serialize to the on-disk byte layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let body: usize = self.sections.iter().map(|(n, p)| 4 + n.len() + 8 + p.len() + 8).sum();
        let mut out = Vec::with_capacity(8 + 4 + 4 + body + 8);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, payload) in &self.sections {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(payload);
            out.extend_from_slice(&crc64(payload).to_le_bytes());
        }
        let mut trailer = Crc64::new();
        trailer.update(&out);
        out.extend_from_slice(&trailer.finish().to_le_bytes());
        out
    }

    /// Decode and fully validate a checkpoint. `what` names the source
    /// (usually the file path) for error messages.
    pub fn from_bytes(bytes: &[u8], what: &str) -> Result<Self> {
        let corrupt = |detail: String| Error::Corrupt { what: what.to_string(), detail };
        if bytes.len() < 8 + 4 + 4 + 8 {
            return Err(corrupt(format!(
                "truncated: {} bytes is below the minimum header size",
                bytes.len()
            )));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte split"));
        if crc64(body) != stored {
            return Err(corrupt("trailer crc mismatch (torn or bit-rotted file)".into()));
        }
        let mut r = ByteReader::new(body, what);
        let magic = r.take(8)?;
        if magic != MAGIC {
            return Err(corrupt(format!("bad magic {:02x?}, expected {:?}", magic, MAGIC)));
        }
        let version = r.take_u32()?;
        if version != FORMAT_VERSION {
            return Err(corrupt(format!(
                "unsupported container version {version} (this build reads {FORMAT_VERSION})"
            )));
        }
        let nsections = r.take_u32()? as usize;
        let mut sections = Vec::with_capacity(nsections.min(64));
        for i in 0..nsections {
            let name_len = r.take_u32()? as usize;
            let name = std::str::from_utf8(r.take(name_len)?)
                .map_err(|e| corrupt(format!("section {i} name is not utf-8: {e}")))?
                .to_string();
            let payload_len = r.take_u64()? as usize;
            let payload = r.take(payload_len)?.to_vec();
            let stored_crc = r.take_u64()?;
            if crc64(&payload) != stored_crc {
                return Err(corrupt(format!("section '{name}' crc mismatch")));
            }
            sections.push((name, payload));
        }
        if !r.is_empty() {
            return Err(corrupt(format!("{} trailing bytes after last section", r.remaining())));
        }
        Ok(Self { sections })
    }

    /// Atomically persist: write a sibling tmp file, re-read and validate
    /// the round trip, then rename into place.
    pub fn save_atomic(&self, path: &Path) -> Result<()> {
        let io = |detail: std::io::Error| Error::Io {
            path: path.display().to_string(),
            detail: detail.to_string(),
        };
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(io)?;
        }
        let bytes = self.to_bytes();
        let tmp = tmp_sibling(path);
        std::fs::write(&tmp, &bytes).map_err(io)?;
        // Round-trip verification: decode what actually hit the disk before
        // letting it shadow the previous generation.
        let written = std::fs::read(&tmp).map_err(io)?;
        let reread = Checkpoint::from_bytes(&written, &tmp.display().to_string())?;
        if reread != *self {
            let _ = std::fs::remove_file(&tmp);
            return Err(Error::Corrupt {
                what: tmp.display().to_string(),
                detail: "round-trip verification failed after write".into(),
            });
        }
        std::fs::rename(&tmp, path).map_err(io)?;
        Ok(())
    }

    /// Load and fully validate a checkpoint file.
    pub fn load(path: &Path) -> Result<Self> {
        let bytes = std::fs::read(path)
            .map_err(|e| Error::Io { path: path.display().to_string(), detail: e.to_string() })?;
        Self::from_bytes(&bytes, &path.display().to_string())
    }
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// A directory of rotating checkpoint generations
/// (`ckpt-<generation>.lqcp`), keeping the newest `keep` on disk.
#[derive(Clone, Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
}

impl CheckpointStore {
    /// Open (creating if needed) a store rooted at `dir`, retaining the
    /// newest `keep >= 1` generations.
    pub fn new(dir: impl Into<PathBuf>, keep: usize) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| Error::Io { path: dir.display().to_string(), detail: e.to_string() })?;
        Ok(Self { dir, keep: keep.max(1) })
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// On-disk path of a generation.
    pub fn path_for(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{generation:08}.lqcp"))
    }

    /// Atomically write `generation`, then prune old generations beyond
    /// the retention count.
    pub fn save(&self, generation: u64, ckpt: &Checkpoint) -> Result<PathBuf> {
        let path = self.path_for(generation);
        ckpt.save_atomic(&path)?;
        let gens = self.generations_on_disk();
        if gens.len() > self.keep {
            for old in &gens[..gens.len() - self.keep] {
                let _ = std::fs::remove_file(self.path_for(*old));
            }
        }
        Ok(path)
    }

    /// Load and validate one generation.
    pub fn load(&self, generation: u64) -> Result<Checkpoint> {
        Checkpoint::load(&self.path_for(generation))
    }

    /// Generations present on disk (unvalidated), ascending.
    pub fn generations_on_disk(&self) -> Vec<u64> {
        let mut gens: Vec<u64> = std::fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .filter_map(|entry| {
                let name = entry.file_name();
                let name = name.to_str()?;
                let gen = name.strip_prefix("ckpt-")?.strip_suffix(".lqcp")?;
                gen.parse::<u64>().ok()
            })
            .collect();
        gens.sort_unstable();
        gens
    }

    /// Generations that decode and pass all checksums, ascending.
    pub fn valid_generations(&self) -> Vec<u64> {
        self.generations_on_disk().into_iter().filter(|g| self.load(*g).is_ok()).collect()
    }

    /// Newest generation that passes validation, skipping corrupt ones.
    pub fn latest_valid(&self) -> Option<(u64, Checkpoint)> {
        for gen in self.generations_on_disk().into_iter().rev() {
            if let Ok(ckpt) = self.load(gen) {
                return Some((gen, ckpt));
            }
        }
        None
    }
}

/// Bounds-checked little-endian cursor used by checkpoint and snapshot
/// decoders; every overrun is an [`Error::Corrupt`], never a panic.
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    what: &'a str,
}

impl<'a> ByteReader<'a> {
    /// Wrap a byte slice; `what` names the source for error messages.
    pub fn new(bytes: &'a [u8], what: &'a str) -> Self {
        Self { bytes, pos: 0, what }
    }

    /// Take the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::Corrupt {
                what: self.what.to_string(),
                detail: format!(
                    "truncated: wanted {n} bytes at offset {}, only {} left",
                    self.pos,
                    self.remaining()
                ),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Next little-endian u32.
    pub fn take_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Next little-endian u64.
    pub fn take_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Next little-endian f64 (by bit pattern — exact).
    pub fn take_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Unconsumed byte count.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut c = Checkpoint::new();
        c.insert("meta", vec![1, 2, 3, 4]);
        c.insert("solution", (0..512u16).flat_map(|x| x.to_le_bytes()).collect());
        c
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lqcd-ckpt-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn byte_roundtrip_is_exact() {
        let c = sample();
        let bytes = c.to_bytes();
        let back = Checkpoint::from_bytes(&bytes, "test").unwrap();
        assert_eq!(back, c);
        assert_eq!(back.get("meta"), Some(&[1u8, 2, 3, 4][..]));
        assert!(back.get("missing").is_none());
        assert!(matches!(back.require("missing"), Err(Error::Corrupt { .. })));
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let bytes = sample().to_bytes();
        // Flip a byte in the header, a section payload, and the trailer.
        for pos in [0usize, 9, 40, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x01;
            assert!(
                matches!(Checkpoint::from_bytes(&bad, "test"), Err(Error::Corrupt { .. })),
                "flip at {pos} accepted"
            );
        }
    }

    #[test]
    fn truncation_is_a_typed_error_never_a_panic() {
        let bytes = sample().to_bytes();
        for len in 0..bytes.len() {
            let r = Checkpoint::from_bytes(&bytes[..len], "test");
            assert!(matches!(r, Err(Error::Corrupt { .. })), "prefix of {len} bytes accepted");
        }
    }

    #[test]
    fn save_atomic_then_load() {
        let dir = tmpdir("atomic");
        let path = dir.join("a.lqcp");
        let c = sample();
        c.save_atomic(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), c);
        // No tmp residue after a successful save.
        assert!(!tmp_sibling(&path).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_rotates_and_skips_corrupt_generations() {
        let dir = tmpdir("store");
        let store = CheckpointStore::new(&dir, 2).unwrap();
        for gen in 1..=4u64 {
            let mut c = Checkpoint::new();
            c.insert("meta", vec![gen as u8]);
            store.save(gen, &c).unwrap();
        }
        // Retention: only the newest two survive.
        assert_eq!(store.generations_on_disk(), vec![3, 4]);
        // Corrupt the newest; latest_valid falls back to generation 3.
        let p4 = store.path_for(4);
        let mut bytes = std::fs::read(&p4).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&p4, &bytes).unwrap();
        let (gen, ckpt) = store.latest_valid().unwrap();
        assert_eq!(gen, 3);
        assert_eq!(ckpt.get("meta"), Some(&[3u8][..]));
        assert_eq!(store.valid_generations(), vec![3]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_io_error() {
        let r = Checkpoint::load(Path::new("/nonexistent/dir/x.lqcp"));
        assert!(matches!(r, Err(Error::Io { .. })));
    }
}

//! Foundations for the `lqcd` workspace.
//!
//! This crate holds the small, dependency-free building blocks everything
//! else is written against:
//!
//! * [`Real`] — the floating-point precision abstraction (`f32` / `f64`)
//!   used by all field and solver code, so each algorithm is written once
//!   and instantiated per precision, mirroring the paper's double / single
//!   split.
//! * [`Complex`] — complex arithmetic over any [`Real`].
//! * [`half`] — the 16-bit fixed-point storage format ("half precision" in
//!   QUDA terminology, §5 of the paper) together with block conversion
//!   helpers.
//! * [`rng`] — deterministic, seedable random-number plumbing so gauge
//!   configurations and sources are reproducible across runs.
//! * [`Error`] — the shared error type.

pub mod checkpoint;
pub mod checksum;
pub mod complex;
pub mod error;
pub mod half;
pub mod real;
pub mod rng;
pub mod stats;
pub mod trace;

pub use checkpoint::{ByteReader, Checkpoint, CheckpointStore};
pub use checksum::{crc64, Crc64};
pub use complex::Complex;
pub use error::{BreakdownKind, Error, Result};
pub use half::Fixed16;
pub use real::Real;

/// Shorthand for a double-precision complex number.
pub type C64 = Complex<f64>;
/// Shorthand for a single-precision complex number.
pub type C32 = Complex<f32>;

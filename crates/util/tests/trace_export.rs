//! Parse the Chrome `trace_event` export back through the JSON parser
//! and verify the structural contract: the `{"traceEvents": [...]}`
//! object form, metadata naming every rank process, and B/E balance on
//! every (pid, tid) — including a buffer truncated mid-span (a dying
//! rank), which the exporter must repair by closing the stray `B`.

use lqcd_util::trace;
use std::collections::HashMap;

#[test]
fn exported_chrome_trace_parses_and_every_b_matches_an_e() {
    trace::clear();
    trace::enable();
    {
        let _scope = trace::rank_scope(0);
        {
            let _outer = trace::span(trace::Track::Solver, "gcr_iter");
            let _inner = trace::span_arg(trace::Track::Precond, "schwarz_mr", 4);
            trace::instant(trace::Track::Comm, "send_exchange", 1);
        }
        trace::counter(trace::Track::Solver, "residual", 0.5);
    }
    {
        // A rank whose recorder died mid-span: the span guard is leaked,
        // so its `End` is never recorded and the exporter must repair.
        let _scope = trace::rank_scope(1);
        trace::span_at(trace::Track::Interior, "interior", 10, 2000, 0);
        std::mem::forget(trace::span(trace::Track::Comm, "allreduce"));
    }
    trace::disable();

    let ranks = trace::take();
    assert_eq!(ranks.len(), 2, "two rank scopes flushed");
    let json = trace::export_chrome_json(&ranks);
    let v = serde_json::from_str(&json).expect("export must be valid JSON");
    let events =
        v.get("traceEvents").and_then(|e| e.as_array()).expect("export must use the object form");

    let mut depth: HashMap<(i64, i64), i64> = HashMap::new();
    let mut process_names = Vec::new();
    let mut begins = 0;
    let mut ends = 0;
    for e in events {
        let ph = e.get("ph").and_then(|p| p.as_str()).expect("every event has a phase");
        let pid = e.get("pid").and_then(|p| p.as_i64()).expect("every event has a pid");
        match ph {
            "M" => {
                if e.get("name").and_then(|n| n.as_str()) == Some("process_name") {
                    let name = e
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(|n| n.as_str())
                        .expect("process_name metadata carries args.name");
                    process_names.push(name.to_string());
                }
            }
            "B" | "E" => {
                let tid = e.get("tid").and_then(|t| t.as_i64()).expect("tid");
                let d = depth.entry((pid, tid)).or_default();
                if ph == "B" {
                    begins += 1;
                    *d += 1;
                } else {
                    ends += 1;
                    *d -= 1;
                    assert!(*d >= 0, "E without B on pid {pid} tid {tid}");
                }
            }
            "i" | "C" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for ((pid, tid), d) in depth {
        assert_eq!(d, 0, "pid {pid} tid {tid} finished with {d} unclosed span(s)");
    }
    assert_eq!(begins, ends, "every B must have a matching E");
    assert!(begins >= 4, "outer, inner, interior, and the repaired span");
    assert_eq!(process_names, vec!["rank 0".to_string(), "rank 1".to_string()]);
}

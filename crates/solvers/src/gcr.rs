//! Flexible GCR with restarts — Algorithm 1 of the paper — and the
//! additive-Schwarz preconditioner that turns it into GCR-DD.
//!
//! Structure follows the paper exactly (§8.1):
//!
//! * the preconditioner `K` may be a (nonlinear, iteration-dependent)
//!   approximate solve, so the outer method must be *flexible*;
//! * the Krylov space is explicitly orthogonalized (`β_{i,k}` stored) and
//!   capped at `kmax`, after which the algorithm restarts;
//! * the solution is updated **implicitly** at restart by the triangular
//!   back-substitution for `χ` (the scheme of Lüscher [20] adopted by the
//!   paper to cut orthogonalization overhead);
//! * an **early restart** triggers when the iterated (low-precision)
//!   residual has dropped by more than δ since the Krylov space was
//!   started — guarding against the half-precision iterated residual
//!   straying from the true one;
//! * every restart recomputes the true residual with a full-precision
//!   matvec, which is where mixed precision enters: "the Krylov space is
//!   built up in low precision and restarted in high precision".

use crate::mr::mr as mr_steps;
use crate::space::{DirichletMatvec, SolveStats, SolverSpace};
use crate::watchdog::{NullMonitor, SolveMonitor};
use lqcd_util::{trace, BreakdownKind, Complex, Error, Result};

/// Tunables of the GCR solver.
#[derive(Clone, Copy, Debug)]
pub struct GcrParams {
    /// Target relative residual.
    pub tol: f64,
    /// Maximum Krylov-space size before a restart (`kmax`).
    pub kmax: usize,
    /// Early-restart threshold δ: restart once `‖r̂‖/‖r₀‖ < δ` within a
    /// cycle.
    pub delta: f64,
    /// Total outer-iteration budget.
    pub maxiter: usize,
    /// Store Krylov vectors in 16-bit fixed point (the "half" of
    /// single-half-half; a no-op in double-precision spaces).
    pub quantize_krylov: bool,
}

impl Default for GcrParams {
    fn default() -> Self {
        GcrParams { tol: 1e-6, kmax: 16, delta: 0.1, maxiter: 2000, quantize_krylov: false }
    }
}

/// A (possibly approximate / nonlinear) preconditioner.
pub trait Preconditioner<S: SolverSpace> {
    /// `out ≈ A⁻¹ r`.
    fn apply(&mut self, space: &mut S, out: &mut S::V, r: &S::V) -> Result<()>;
    /// Dirichlet matvecs consumed so far (for stats).
    fn precond_matvecs(&self) -> usize {
        0
    }
}

/// The identity preconditioner (plain flexible GCR).
pub struct IdentityPrecond;

impl<S: SolverSpace> Preconditioner<S> for IdentityPrecond {
    fn apply(&mut self, space: &mut S, out: &mut S::V, r: &S::V) -> Result<()> {
        space.copy(out, r);
        Ok(())
    }
}

/// The non-overlapping additive-Schwarz preconditioner: a fixed number of
/// MR steps on the rank-local Dirichlet operator, with rank-local
/// reductions — "essentially, we just have to switch off the
/// communications between GPUs" (§8.1).
pub struct SchwarzMR {
    /// MR steps per application (the paper's figures use 10).
    pub steps: usize,
    /// MR relaxation.
    pub omega: f64,
    /// Quantize the block iterates (preconditioner solved in half
    /// precision, §8.1).
    pub quantize: bool,
    matvecs: usize,
}

impl SchwarzMR {
    /// Preconditioner with `steps` block-MR iterations.
    pub fn new(steps: usize) -> Self {
        SchwarzMR { steps, omega: 1.0, quantize: false, matvecs: 0 }
    }

    /// Enable half-precision block solves.
    pub fn quantized(mut self) -> Self {
        self.quantize = true;
        self
    }
}

/// Adapter: view a space through its Dirichlet operator with local
/// reductions so the generic [`mr_steps`] loop can drive block solves.
struct DirichletView<'a, S: DirichletMatvec>(&'a mut S);

impl<'a, S: DirichletMatvec> SolverSpace for DirichletView<'a, S> {
    type V = S::V;

    fn alloc(&mut self) -> Self::V {
        self.0.alloc()
    }
    fn matvec(&mut self, out: &mut Self::V, x: &mut Self::V) -> Result<()> {
        self.0.matvec_dirichlet(out, x)
    }
    fn dot(&mut self, a: &Self::V, b: &Self::V) -> Result<Complex<f64>> {
        Ok(self.0.dot_local(a, b))
    }
    fn norm2(&mut self, a: &Self::V) -> Result<f64> {
        Ok(self.0.norm2_local(a))
    }
    fn copy(&mut self, dst: &mut Self::V, src: &Self::V) {
        self.0.copy(dst, src)
    }
    fn zero(&mut self, v: &mut Self::V) {
        self.0.zero(v)
    }
    fn axpy(&mut self, a: f64, x: &Self::V, y: &mut Self::V) {
        self.0.axpy(a, x, y)
    }
    fn caxpy(&mut self, a: Complex<f64>, x: &Self::V, y: &mut Self::V) {
        self.0.caxpy(a, x, y)
    }
    fn xpay(&mut self, x: &Self::V, a: f64, y: &mut Self::V) {
        self.0.xpay(x, a, y)
    }
    fn cxpay(&mut self, x: &Self::V, a: Complex<f64>, y: &mut Self::V) {
        self.0.cxpay(x, a, y)
    }
    fn scale(&mut self, v: &mut Self::V, a: f64) {
        self.0.scale(v, a)
    }
    fn quantize(&mut self, v: &mut Self::V) {
        self.0.quantize(v)
    }
}

impl<S: DirichletMatvec> Preconditioner<S> for SchwarzMR {
    fn apply(&mut self, space: &mut S, out: &mut S::V, r: &S::V) -> Result<()> {
        let _sp = trace::span_arg(trace::Track::Precond, "schwarz_mr", self.steps as i64);
        space.zero(out);
        let mut view = DirichletView(space);
        if self.quantize {
            // Block solve in half precision: quantize the incoming
            // residual once, and the iterate after the solve.
            let mut rq = view.alloc();
            view.copy(&mut rq, r);
            view.quantize(&mut rq);
            let st = mr_steps(&mut view, out, &rq, self.steps, self.omega)?;
            self.matvecs += st.matvecs;
            view.quantize(out);
        } else {
            let st = mr_steps(&mut view, out, r, self.steps, self.omega)?;
            self.matvecs += st.matvecs;
        }
        Ok(())
    }

    fn precond_matvecs(&self) -> usize {
        self.matvecs
    }
}

/// NaN/Inf residuals mean corrupted data is circulating (a damaged ghost
/// zone, an overflowed half-precision value): report a structured
/// breakdown instead of iterating on garbage until the budget runs out.
fn check_finite(norm: f64, what: &str) -> Result<()> {
    if norm.is_finite() {
        Ok(())
    } else {
        Err(Error::Breakdown {
            solver: "gcr",
            kind: BreakdownKind::NonFinite,
            detail: format!("{what} norm is not finite ({norm})"),
        })
    }
}

/// Solve `A x = b` by preconditioned flexible GCR (Algorithm 1).
pub fn gcr<S: SolverSpace, P: Preconditioner<S>>(
    space: &mut S,
    precond: &mut P,
    x: &mut S::V,
    b: &S::V,
    params: &GcrParams,
) -> Result<SolveStats> {
    gcr_monitored(space, precond, x, b, params, &mut NullMonitor)
}

/// [`gcr`] with [`SolveMonitor`] hooks threaded through the outer
/// iteration: `observe` fires once per iteration with the iterated
/// relative residual (plus once up front with the initial true residual),
/// `at_restart` fires after every high-precision restart with the solution
/// freshly updated — the point where a checkpoint is consistent.
pub fn gcr_monitored<S: SolverSpace, P: Preconditioner<S>, M: SolveMonitor<S>>(
    space: &mut S,
    precond: &mut P,
    x: &mut S::V,
    b: &S::V,
    params: &GcrParams,
    monitor: &mut M,
) -> Result<SolveStats> {
    let mut stats = SolveStats::new();
    let kmax = params.kmax.max(1);
    let bnorm = space.norm2(b)?.sqrt();
    if !bnorm.is_finite() {
        return Err(Error::Breakdown {
            solver: "gcr",
            kind: BreakdownKind::NonFinite,
            detail: format!("right-hand-side norm is not finite ({bnorm})"),
        });
    }
    if bnorm == 0.0 {
        space.zero(x);
        stats.converged = true;
        stats.residual = 0.0;
        return Ok(stats);
    }
    // r0 = b − A x (high precision).
    let mut r0 = space.alloc();
    space.matvec(&mut r0, x)?;
    stats.matvecs += 1;
    space.xpay(b, -1.0, &mut r0);
    let mut r0_norm = space.norm2(&r0)?.sqrt();
    check_finite(r0_norm, "initial residual")?;
    monitor.observe(0, r0_norm / bnorm)?;

    // Krylov storage.
    let mut p: Vec<S::V> = (0..kmax).map(|_| space.alloc()).collect();
    let mut z: Vec<S::V> = (0..kmax).map(|_| space.alloc()).collect();
    let mut beta = vec![vec![Complex::<f64>::zero(); kmax]; kmax];
    let mut gamma = vec![0.0f64; kmax];
    let mut alpha = vec![Complex::<f64>::zero(); kmax];
    // Low-precision iterated residual.
    let mut r_hat = space.alloc();
    space.copy(&mut r_hat, &r0);
    space.quantize(&mut r_hat);
    let mut k = 0usize;

    while stats.iterations < params.maxiter {
        if r0_norm <= params.tol * bnorm {
            stats.converged = true;
            break;
        }
        let _iter_sp = trace::span_arg(trace::Track::Solver, "gcr_iter", stats.iterations as i64);
        // p̂_k = K r̂_k ; ẑ_k = A p̂_k.
        precond.apply(space, &mut p[k], &r_hat)?;
        if params.quantize_krylov {
            space.quantize(&mut p[k]);
        }
        // Split borrow: z[k] out of the z vector.
        {
            let (zk, _rest) = {
                let (head, tail) = z.split_at_mut(k);
                (&mut tail[0], head)
            };
            space.matvec(zk, &mut p[k])?;
            stats.matvecs += 1;
        }
        // Orthogonalize against the existing basis.
        for i in 0..k {
            let (zi, zk) = {
                let (head, tail) = z.split_at_mut(k);
                (&head[i], &mut tail[0])
            };
            let bik = space.dot(zi, zk)?;
            beta[i][k] = bik;
            space.caxpy(-bik, zi, zk);
        }
        if params.quantize_krylov {
            space.quantize(&mut z[k]);
            // Re-measure projections after quantization? The paper's
            // half-precision basis tolerates this; the δ-restart guards
            // drift.
        }
        let gk = space.norm2(&z[k])?.sqrt();
        if !gk.is_finite() {
            // A NaN/Inf here means corrupted data (e.g. a damaged ghost
            // zone) has entered the Krylov space: fail fast so callers
            // can retry, possibly at higher precision.
            return Err(Error::Breakdown {
                solver: "gcr",
                kind: BreakdownKind::NonFinite,
                detail: format!("Krylov vector norm is not finite ({gk})"),
            });
        }
        if gk < 1e-300 {
            return Err(Error::Breakdown {
                solver: "gcr",
                kind: BreakdownKind::ZeroPivot,
                detail: "Krylov vector vanished after orthogonalization".into(),
            });
        }
        gamma[k] = gk;
        space.scale(&mut z[k], 1.0 / gk);
        let ak = space.dot(&z[k], &r_hat)?;
        alpha[k] = ak;
        space.caxpy(-ak, &z[k], &mut r_hat);
        k += 1;
        stats.iterations += 1;

        let rhat_norm = space.norm2(&r_hat)?.sqrt();
        check_finite(rhat_norm, "iterated residual")?;
        monitor.observe(stats.iterations, rhat_norm / bnorm)?;
        let cycle_drop = rhat_norm / r0_norm;
        if k == kmax || cycle_drop < params.delta || rhat_norm <= params.tol * bnorm {
            // Implicit solution update: back-substitute
            // γ_l χ_l + Σ_{i>l} β_{l,i} χ_i = α_l.
            let mut chi = vec![Complex::<f64>::zero(); k];
            for l in (0..k).rev() {
                let mut acc = alpha[l];
                for i in (l + 1)..k {
                    acc -= beta[l][i] * chi[i];
                }
                chi[l] = acc / Complex::from_re(gamma[l]);
            }
            for (l, c) in chi.iter().enumerate() {
                space.caxpy(*c, &p[l], x);
            }
            // High-precision restart.
            space.matvec(&mut r0, x)?;
            stats.matvecs += 1;
            space.xpay(b, -1.0, &mut r0);
            r0_norm = space.norm2(&r0)?.sqrt();
            check_finite(r0_norm, "restart residual")?;
            space.copy(&mut r_hat, &r0);
            space.quantize(&mut r_hat);
            k = 0;
            stats.restarts += 1;
            trace::instant(trace::Track::Solver, "gcr_restart", stats.restarts as i64);
            monitor.at_restart(space, x, &stats, r0_norm / bnorm)?;
        }
    }
    stats.residual = r0_norm / bnorm;
    stats.precond_matvecs = precond.precond_matvecs();
    if stats.residual <= params.tol {
        stats.converged = true;
    }
    if !stats.converged {
        return Err(Error::NoConvergence {
            solver: "gcr",
            iterations: stats.iterations,
            residual: stats.residual,
            target: params.tol,
        });
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{DenseDdSpace, DenseSpace};

    fn rand_b(n: usize) -> Vec<Complex<f64>> {
        (0..n).map(|k| Complex::new((k as f64 * 1.1).sin(), (k as f64 * 0.6).cos())).collect()
    }

    #[allow(clippy::ptr_arg)]
    fn true_resid(space: &mut DenseSpace, x: &Vec<Complex<f64>>, b: &Vec<Complex<f64>>) -> f64 {
        let mut ax = space.alloc();
        let mut xc = x.clone();
        space.matvec(&mut ax, &mut xc).unwrap();
        space.xpay(b, -1.0, &mut ax);
        (space.norm2(&ax).unwrap() / space.norm2(b).unwrap()).sqrt()
    }

    #[test]
    fn plain_gcr_solves_nonsymmetric_system() {
        let mut s = DenseSpace::random_general(24, 1);
        let b = rand_b(24);
        let mut x = s.alloc();
        let params = GcrParams { tol: 1e-10, kmax: 8, ..Default::default() };
        let stats = gcr(&mut s, &mut IdentityPrecond, &mut x, &b, &params).unwrap();
        assert!(stats.converged);
        assert!(true_resid(&mut s, &x, &b) < 1e-9);
        assert!(stats.restarts >= 1, "kmax=8 on a 24-dim system should restart");
    }

    #[test]
    fn gcr_exact_in_n_steps_without_restart() {
        // With kmax ≥ n, GCR is a direct method (up to rounding).
        let n = 10;
        let mut s = DenseSpace::random_general(n, 2);
        let b = rand_b(n);
        let mut x = s.alloc();
        let params = GcrParams { tol: 1e-12, kmax: n + 2, delta: 0.0, ..Default::default() };
        let stats = gcr(&mut s, &mut IdentityPrecond, &mut x, &b, &params).unwrap();
        assert!(stats.iterations <= n + 1, "took {} iterations", stats.iterations);
    }

    #[test]
    fn schwarz_preconditioner_cuts_iterations() {
        // A block-structured system: strong couplings inside 8×8 blocks,
        // weak coupling between blocks — the regime where block solves
        // capture most of the operator and GCR-DD needs far fewer outer
        // iterations (the lattice analogue: local physics inside a rank's
        // domain dominates).
        use lqcd_util::rng::{normal_pair, SeedTree};
        let n = 32;
        let block = 8;
        let t = SeedTree::new(33);
        let mut rng = t.rng();
        let mut a = vec![vec![Complex::<f64>::zero(); n]; n];
        for i in 0..n {
            for j in 0..n {
                let (xr, xi) = normal_pair(&mut rng);
                let same_block = i / block == j / block;
                a[i][j] = if i == j {
                    Complex::from_re(4.0 + xr.abs())
                } else if same_block {
                    Complex::new(0.7 * xr, 0.7 * xi)
                } else {
                    Complex::new(0.02 * xr, 0.02 * xi)
                };
            }
        }
        let mut s = DenseDdSpace { full: DenseSpace::new(a), block, dcount: 0 };
        let b = rand_b(n);
        let params = GcrParams { tol: 1e-9, kmax: 12, ..Default::default() };
        let mut x_plain = s.alloc();
        let plain = gcr(&mut s, &mut IdentityPrecond, &mut x_plain, &b, &params).unwrap();
        let mut x_dd = s.alloc();
        let mut dd = SchwarzMR::new(6);
        let dd_stats = gcr(&mut s, &mut dd, &mut x_dd, &b, &params).unwrap();
        assert!(
            dd_stats.iterations < plain.iterations,
            "DD {} vs plain {}",
            dd_stats.iterations,
            plain.iterations
        );
        assert!(dd_stats.precond_matvecs > 0);
        assert!(true_resid(&mut s.full, &x_dd, &b) < 1e-8);
    }

    #[test]
    fn schwarz_equals_block_jacobi_in_the_many_step_limit() {
        // §3.2: "an additive Schwarz solver with non-overlapping blocks is
        // equivalent to a block-Jacobi solver" — with enough MR steps the
        // preconditioner application inverts the block-diagonal part:
        // A_D · (K r) ≈ r.
        let n = 24;
        let mut s = DenseDdSpace { full: DenseSpace::random_general(n, 9), block: 6, dcount: 0 };
        let r = rand_b(n);
        let mut kr = s.alloc();
        let mut precond = SchwarzMR::new(400);
        precond.apply(&mut s, &mut kr, &r).unwrap();
        // Apply the Dirichlet (block-diagonal) operator to K r.
        use crate::space::DirichletMatvec;
        let mut adkr = s.alloc();
        let mut krc = kr.clone();
        s.matvec_dirichlet(&mut adkr, &mut krc).unwrap();
        s.xpay(&r, -1.0, &mut adkr); // r − A_D K r
        let rel = (s.norm2(&adkr).unwrap() / s.norm2(&r).unwrap()).sqrt();
        assert!(rel < 1e-6, "Schwarz application is not the block inverse: {rel}");
    }

    #[test]
    fn delta_restart_triggers() {
        let mut s = DenseSpace::random_general(24, 4);
        let b = rand_b(24);
        let mut x = s.alloc();
        // Huge δ forces a restart every iteration.
        let params =
            GcrParams { tol: 1e-8, kmax: 16, delta: 1.1, maxiter: 4000, ..Default::default() };
        let stats = gcr(&mut s, &mut IdentityPrecond, &mut x, &b, &params).unwrap();
        assert_eq!(stats.restarts, stats.iterations, "δ > 1 must restart each step");
        assert!(true_resid(&mut s, &x, &b) < 1e-7);
    }

    #[test]
    fn zero_rhs() {
        let mut s = DenseSpace::random_general(8, 5);
        let b = s.alloc();
        let mut x = s.alloc();
        x[1] = Complex::one();
        let stats = gcr(&mut s, &mut IdentityPrecond, &mut x, &b, &GcrParams::default()).unwrap();
        assert!(stats.converged);
        assert_eq!(s.norm2(&x).unwrap(), 0.0);
    }

    #[test]
    fn nan_in_rhs_is_a_structured_breakdown() {
        // Corrupted input (the chaos suites inject NaN payloads) must
        // surface as Breakdown, not hang or return a "converged" lie.
        let mut s = DenseSpace::random_general(8, 3);
        let mut b = rand_b(8);
        b[3] = Complex::new(f64::NAN, 0.0);
        let mut x = s.alloc();
        match gcr(&mut s, &mut IdentityPrecond, &mut x, &b, &GcrParams::default()) {
            Err(Error::Breakdown { solver: "gcr", detail, .. }) => {
                assert!(detail.contains("not finite"), "detail: {detail}");
            }
            other => panic!("expected Breakdown, got {other:?}"),
        }
    }

    #[test]
    fn nan_in_initial_guess_is_a_structured_breakdown() {
        let mut s = DenseSpace::random_general(8, 3);
        let b = rand_b(8);
        let mut x = s.alloc();
        x[0] = Complex::new(0.0, f64::INFINITY);
        assert!(matches!(
            gcr(&mut s, &mut IdentityPrecond, &mut x, &b, &GcrParams::default()),
            Err(Error::Breakdown { solver: "gcr", .. })
        ));
    }

    #[test]
    fn budget_exhaustion_errors() {
        let mut s = DenseSpace::random_general(32, 6);
        let b = rand_b(32);
        let mut x = s.alloc();
        let params = GcrParams { tol: 1e-14, maxiter: 2, ..Default::default() };
        assert!(matches!(
            gcr(&mut s, &mut IdentityPrecond, &mut x, &b, &params),
            Err(Error::NoConvergence { solver: "gcr", .. })
        ));
    }

    #[test]
    fn monitor_hooks_fire_with_a_consistent_solution() {
        // `at_restart` must see the *updated* x: re-deriving the true
        // residual from (space, x, b) has to reproduce the reported one.
        struct Probe {
            observes: usize,
            restarts: Vec<(f64, f64)>, // (reported, recomputed)
            b: Vec<Complex<f64>>,
        }
        impl SolveMonitor<DenseSpace> for Probe {
            fn observe(&mut self, _i: usize, rel: f64) -> lqcd_util::Result<()> {
                assert!(rel.is_finite());
                self.observes += 1;
                Ok(())
            }
            fn at_restart(
                &mut self,
                space: &mut DenseSpace,
                x: &Vec<Complex<f64>>,
                stats: &SolveStats,
                rel: f64,
            ) -> lqcd_util::Result<()> {
                assert!(stats.restarts > self.restarts.len());
                let b = self.b.clone();
                let recomputed = true_resid(space, x, &b);
                self.restarts.push((rel, recomputed));
                Ok(())
            }
        }
        let mut s = DenseSpace::random_general(24, 1);
        let b = rand_b(24);
        let mut x = s.alloc();
        let params = GcrParams { tol: 1e-10, kmax: 8, ..Default::default() };
        let mut probe = Probe { observes: 0, restarts: Vec::new(), b: b.clone() };
        let stats =
            gcr_monitored(&mut s, &mut IdentityPrecond, &mut x, &b, &params, &mut probe).unwrap();
        assert!(stats.converged);
        assert_eq!(probe.observes, stats.iterations + 1);
        assert_eq!(probe.restarts.len(), stats.restarts);
        for (reported, recomputed) in &probe.restarts {
            assert!(
                (reported - recomputed).abs() <= 1e-12 + 1e-6 * reported,
                "reported {reported}, recomputed {recomputed}"
            );
        }
    }

    #[test]
    fn watchdog_wall_clock_trip_aborts_the_solve() {
        use crate::watchdog::{SolveWatchdog, WatchdogConfig};
        let mut s = DenseSpace::random_general(32, 4);
        let b = rand_b(32);
        let mut x = s.alloc();
        let cfg =
            WatchdogConfig { wall_clock: Some(std::time::Duration::ZERO), ..Default::default() };
        let mut dog = SolveWatchdog::new("gcr", cfg);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let params = GcrParams { tol: 1e-12, ..Default::default() };
        assert!(matches!(
            gcr_monitored(&mut s, &mut IdentityPrecond, &mut x, &b, &params, &mut dog),
            Err(Error::Breakdown { kind: BreakdownKind::WallClock, .. })
        ));
    }
}

//! The vector-space abstraction solvers are written against.

use lqcd_util::{Complex, Result};

/// Outcome of a solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Outer iterations performed.
    pub iterations: usize,
    /// Operator applications (communicating matvecs).
    pub matvecs: usize,
    /// Dirichlet (comm-free) matvecs performed inside preconditioners.
    pub precond_matvecs: usize,
    /// Restart count (GCR / defect-correction cycles).
    pub restarts: usize,
    /// Final relative residual `‖b − Ax‖ / ‖b‖`.
    pub residual: f64,
    /// Whether the target tolerance was reached.
    pub converged: bool,
    /// Times the solve restarted at a higher floating-point precision
    /// after a breakdown (the graceful-degradation ladder).
    pub precision_fallbacks: usize,
    /// Ghost-exchange retransmissions the communicator performed under
    /// the deadline/retry protocol during the solve.
    pub exchange_retries: u64,
    /// Injected faults the communication world absorbed during the
    /// solve (nonzero only in chaos tests).
    pub faults_survived: u64,
    /// Checkpoints a checkpointing monitor wrote during the solve.
    pub checkpoints_written: usize,
    /// True when the solve started from a restored checkpoint instead of
    /// a zero guess.
    pub resumed_from_checkpoint: bool,
    /// Supervised world teardown/rebuild cycles that preceded this
    /// result (0 for an undisturbed solve).
    pub supervisor_restarts: usize,
    /// Dslash applications counted by the overlapped operator pipeline.
    pub dslash_applies: u64,
    /// Wall time of those applies, nanoseconds.
    pub dslash_total_ns: u64,
    /// Interior-kernel time inside those applies (max over workers when
    /// the interior runs parallel), nanoseconds.
    pub dslash_interior_ns: u64,
    /// Communication-completion time *not* hidden behind the interior
    /// kernel, nanoseconds — the quantity overlap drives toward zero.
    pub dslash_exposed_comm_ns: u64,
    /// Fingerprint of the autotuned configuration the solve ran under
    /// (`lqcd-tune`'s `TuneParam::fingerprint()`), or 0 when the solve
    /// used hardcoded defaults.
    pub tuned_config: u64,
}

impl SolveStats {
    /// A fresh zeroed record.
    pub fn new() -> Self {
        SolveStats {
            iterations: 0,
            matvecs: 0,
            precond_matvecs: 0,
            restarts: 0,
            residual: f64::INFINITY,
            converged: false,
            precision_fallbacks: 0,
            exchange_retries: 0,
            faults_survived: 0,
            checkpoints_written: 0,
            resumed_from_checkpoint: false,
            supervisor_restarts: 0,
            dslash_applies: 0,
            dslash_total_ns: 0,
            dslash_interior_ns: 0,
            dslash_exposed_comm_ns: 0,
            tuned_config: 0,
        }
    }

    /// Fold an inner solve's counters into an outer record.
    pub fn absorb(&mut self, inner: &SolveStats) {
        self.iterations += inner.iterations;
        self.matvecs += inner.matvecs;
        self.precond_matvecs += inner.precond_matvecs;
        self.precision_fallbacks += inner.precision_fallbacks;
        self.exchange_retries += inner.exchange_retries;
        self.faults_survived += inner.faults_survived;
        self.checkpoints_written += inner.checkpoints_written;
        self.resumed_from_checkpoint |= inner.resumed_from_checkpoint;
        self.supervisor_restarts += inner.supervisor_restarts;
        self.dslash_applies += inner.dslash_applies;
        self.dslash_total_ns += inner.dslash_total_ns;
        self.dslash_interior_ns += inner.dslash_interior_ns;
        self.dslash_exposed_comm_ns += inner.dslash_exposed_comm_ns;
        if self.tuned_config == 0 {
            self.tuned_config = inner.tuned_config;
        }
    }

    /// Fraction of dslash wall time *not* lost to exposed communication
    /// (`1 − exposed/total`), or `None` if no overlapped applies
    /// contributed. Clamped to `[0, 1]`: records folded via [`absorb`]
    /// can interleave sequential applies (full comm time, no overlap
    /// credit) with overlapped ones, pushing the raw ratio outside the
    /// meaningful range.
    ///
    /// [`absorb`]: SolveStats::absorb
    pub fn overlap_efficiency(&self) -> Option<f64> {
        (self.dslash_applies > 0 && self.dslash_total_ns > 0).then(|| {
            (1.0 - self.dslash_exposed_comm_ns as f64 / self.dslash_total_ns as f64).clamp(0.0, 1.0)
        })
    }

    /// Publish this record into a named-metric registry — the facade
    /// that maps the legacy scalar plumbing onto `lqcd_util::trace`'s
    /// [`MetricsRegistry`]. Counters are cumulative adds (so absorbing
    /// many rank records into one registry aggregates); ratios land as
    /// histogram samples.
    ///
    /// [`MetricsRegistry`]: lqcd_util::trace::MetricsRegistry
    pub fn publish(&self, reg: &mut lqcd_util::trace::MetricsRegistry) {
        reg.add("solve.iterations", self.iterations as u64);
        reg.add("solve.matvecs", self.matvecs as u64);
        reg.add("solve.precond_matvecs", self.precond_matvecs as u64);
        reg.add("solve.restarts", self.restarts as u64);
        reg.add("solve.converged", self.converged as u64);
        reg.add("solve.precision_fallbacks", self.precision_fallbacks as u64);
        reg.add("comm.exchange_retries", self.exchange_retries);
        reg.add("comm.faults_survived", self.faults_survived);
        reg.add("checkpoint.written", self.checkpoints_written as u64);
        reg.add("checkpoint.resumed", self.resumed_from_checkpoint as u64);
        reg.add("supervisor.restarts", self.supervisor_restarts as u64);
        reg.add("dslash.applies", self.dslash_applies);
        reg.add("dslash.total_ns", self.dslash_total_ns);
        reg.add("dslash.interior_ns", self.dslash_interior_ns);
        reg.add("dslash.exposed_comm_ns", self.dslash_exposed_comm_ns);
        reg.add("solve.tuned", (self.tuned_config != 0) as u64);
        reg.record("solve.residual", self.residual);
        if let Some(eff) = self.overlap_efficiency() {
            reg.record("dslash.overlap_efficiency", eff);
        }
    }
}

impl Default for SolveStats {
    fn default() -> Self {
        Self::new()
    }
}

/// A vector space with an operator: everything a Krylov solver needs.
///
/// Scalar coefficients are always `f64`/`Complex<f64>` regardless of the
/// space's storage precision — reductions are globally summed in double
/// (QUDA does the same), which is what keeps single/half solvers stable.
pub trait SolverSpace {
    /// The vector type.
    type V;

    /// Allocate a zero vector.
    fn alloc(&mut self) -> Self::V;

    /// `out = A x`. `x` is mutable because distributed operators refresh
    /// its ghost zones.
    fn matvec(&mut self, out: &mut Self::V, x: &mut Self::V) -> Result<()>;

    /// Global inner product `⟨a, b⟩` (conjugate-linear in `a`).
    fn dot(&mut self, a: &Self::V, b: &Self::V) -> Result<Complex<f64>>;

    /// Global `‖a‖²`.
    fn norm2(&mut self, a: &Self::V) -> Result<f64>;

    /// `dst = src`.
    fn copy(&mut self, dst: &mut Self::V, src: &Self::V);

    /// `v = 0`.
    fn zero(&mut self, v: &mut Self::V);

    /// `y += a·x`.
    fn axpy(&mut self, a: f64, x: &Self::V, y: &mut Self::V);

    /// `y += a·x` (complex coefficient).
    fn caxpy(&mut self, a: Complex<f64>, x: &Self::V, y: &mut Self::V);

    /// `y = x + a·y`.
    fn xpay(&mut self, x: &Self::V, a: f64, y: &mut Self::V);

    /// `y = x + a·y` (complex coefficient).
    fn cxpay(&mut self, x: &Self::V, a: Complex<f64>, y: &mut Self::V);

    /// `v *= a`.
    fn scale(&mut self, v: &mut Self::V, a: f64);

    /// Storage-precision round trip (no-op unless the space stores its
    /// Krylov vectors in 16-bit fixed point — §8.1's "the Krylov space is
    /// built up in low precision").
    fn quantize(&mut self, _v: &mut Self::V) {}

    /// Number of matvecs performed so far (for stats).
    fn matvec_count(&self) -> usize {
        0
    }
}

/// Extension for spaces whose operator has a communication-free
/// (Dirichlet-boundary) form — the additive-Schwarz block operator. All
/// reductions here are rank-local: each domain solve is independent
/// (§8.1: "the reductions required in each of the domain-specific linear
/// solvers are restricted to that domain only").
pub trait DirichletMatvec: SolverSpace {
    /// `out = A_Dirichlet x` (no communication).
    fn matvec_dirichlet(&mut self, out: &mut Self::V, x: &mut Self::V) -> Result<()>;

    /// Rank-local inner product.
    fn dot_local(&mut self, a: &Self::V, b: &Self::V) -> Complex<f64>;

    /// Rank-local norm².
    fn norm2_local(&mut self, a: &Self::V) -> f64;

    /// Dirichlet matvecs performed so far.
    fn dirichlet_count(&self) -> usize {
        0
    }
}

/// A dense complex test space: `A` is an explicit n×n matrix, vectors are
/// `Vec<Complex<f64>>`. Lets every solver be validated against exactly
/// solvable systems.
pub struct DenseSpace {
    /// Row-major dense matrix.
    pub a: Vec<Vec<Complex<f64>>>,
    /// Matvec counter.
    pub count: usize,
}

impl DenseSpace {
    /// Wrap a dense matrix.
    pub fn new(a: Vec<Vec<Complex<f64>>>) -> Self {
        Self { a, count: 0 }
    }

    /// A random diagonally-dominant Hermitian positive-definite matrix.
    pub fn random_hpd(n: usize, seed: u64) -> Self {
        use lqcd_util::rng::{normal_pair, SeedTree};
        let t = SeedTree::new(seed);
        let mut rng = t.rng();
        let mut a = vec![vec![Complex::<f64>::zero(); n]; n];
        for i in 0..n {
            for j in 0..i {
                let (x, y) = normal_pair(&mut rng);
                a[i][j] = Complex::new(0.3 * x, 0.3 * y);
                a[j][i] = a[i][j].conj();
            }
            let (x, _) = normal_pair(&mut rng);
            a[i][i] = Complex::from_re(n as f64 * 0.4 + 2.0 + x.abs());
        }
        Self::new(a)
    }

    /// A random diagonally-dominant *non-Hermitian* matrix (for BiCGstab
    /// and GCR).
    pub fn random_general(n: usize, seed: u64) -> Self {
        use lqcd_util::rng::{normal_pair, SeedTree};
        let t = SeedTree::new(seed);
        let mut rng = t.rng();
        let mut a = vec![vec![Complex::<f64>::zero(); n]; n];
        for (i, row) in a.iter_mut().enumerate() {
            for (j, e) in row.iter_mut().enumerate() {
                let (x, y) = normal_pair(&mut rng);
                *e = if i == j {
                    Complex::from_re(n as f64 * 0.4 + 3.0 + x.abs())
                } else {
                    Complex::new(0.3 * x, 0.3 * y)
                };
            }
        }
        Self::new(a)
    }

    fn n(&self) -> usize {
        self.a.len()
    }
}

impl SolverSpace for DenseSpace {
    type V = Vec<Complex<f64>>;

    fn alloc(&mut self) -> Self::V {
        vec![Complex::zero(); self.n()]
    }

    fn matvec(&mut self, out: &mut Self::V, x: &mut Self::V) -> Result<()> {
        self.count += 1;
        for (i, row) in self.a.iter().enumerate() {
            let mut acc = Complex::zero();
            for (j, &m) in row.iter().enumerate() {
                acc = Complex::mul_acc(acc, m, x[j]);
            }
            out[i] = acc;
        }
        Ok(())
    }

    fn dot(&mut self, a: &Self::V, b: &Self::V) -> Result<Complex<f64>> {
        let mut acc = Complex::zero();
        for (x, y) in a.iter().zip(b) {
            acc = Complex::mul_acc(acc, x.conj(), *y);
        }
        Ok(acc)
    }

    fn norm2(&mut self, a: &Self::V) -> Result<f64> {
        Ok(a.iter().map(|x| x.norm_sqr()).sum())
    }

    fn copy(&mut self, dst: &mut Self::V, src: &Self::V) {
        dst.copy_from_slice(src);
    }

    fn zero(&mut self, v: &mut Self::V) {
        for x in v.iter_mut() {
            *x = Complex::zero();
        }
    }

    fn axpy(&mut self, a: f64, x: &Self::V, y: &mut Self::V) {
        for (yv, xv) in y.iter_mut().zip(x) {
            *yv += xv.scale(a);
        }
    }

    fn caxpy(&mut self, a: Complex<f64>, x: &Self::V, y: &mut Self::V) {
        for (yv, xv) in y.iter_mut().zip(x) {
            *yv = Complex::mul_acc(*yv, a, *xv);
        }
    }

    fn xpay(&mut self, x: &Self::V, a: f64, y: &mut Self::V) {
        for (yv, xv) in y.iter_mut().zip(x) {
            *yv = *xv + yv.scale(a);
        }
    }

    fn cxpay(&mut self, x: &Self::V, a: Complex<f64>, y: &mut Self::V) {
        for (yv, xv) in y.iter_mut().zip(x) {
            *yv = *xv + *yv * a;
        }
    }

    fn scale(&mut self, v: &mut Self::V, a: f64) {
        for x in v.iter_mut() {
            *x = x.scale(a);
        }
    }

    fn matvec_count(&self) -> usize {
        self.count
    }
}

/// For the dense test space, the "Dirichlet" operator keeps only a block
/// diagonal (blocks of size `block`), mimicking domain decomposition.
pub struct DenseDdSpace {
    /// The full operator.
    pub full: DenseSpace,
    /// Dirichlet block size.
    pub block: usize,
    /// Dirichlet matvec counter.
    pub dcount: usize,
}

impl SolverSpace for DenseDdSpace {
    type V = Vec<Complex<f64>>;

    fn alloc(&mut self) -> Self::V {
        self.full.alloc()
    }
    fn matvec(&mut self, out: &mut Self::V, x: &mut Self::V) -> Result<()> {
        self.full.matvec(out, x)
    }
    fn dot(&mut self, a: &Self::V, b: &Self::V) -> Result<Complex<f64>> {
        self.full.dot(a, b)
    }
    fn norm2(&mut self, a: &Self::V) -> Result<f64> {
        self.full.norm2(a)
    }
    fn copy(&mut self, dst: &mut Self::V, src: &Self::V) {
        self.full.copy(dst, src)
    }
    fn zero(&mut self, v: &mut Self::V) {
        self.full.zero(v)
    }
    fn axpy(&mut self, a: f64, x: &Self::V, y: &mut Self::V) {
        self.full.axpy(a, x, y)
    }
    fn caxpy(&mut self, a: Complex<f64>, x: &Self::V, y: &mut Self::V) {
        self.full.caxpy(a, x, y)
    }
    fn xpay(&mut self, x: &Self::V, a: f64, y: &mut Self::V) {
        self.full.xpay(x, a, y)
    }
    fn cxpay(&mut self, x: &Self::V, a: Complex<f64>, y: &mut Self::V) {
        self.full.cxpay(x, a, y)
    }
    fn scale(&mut self, v: &mut Self::V, a: f64) {
        self.full.scale(v, a)
    }
    fn matvec_count(&self) -> usize {
        self.full.count
    }
}

impl DirichletMatvec for DenseDdSpace {
    fn matvec_dirichlet(&mut self, out: &mut Self::V, x: &mut Self::V) -> Result<()> {
        self.dcount += 1;
        let n = self.full.n();
        for i in 0..n {
            let lo = (i / self.block) * self.block;
            let hi = (lo + self.block).min(n);
            let mut acc = Complex::zero();
            for j in lo..hi {
                acc = Complex::mul_acc(acc, self.full.a[i][j], x[j]);
            }
            out[i] = acc;
        }
        Ok(())
    }

    fn dot_local(&mut self, a: &Self::V, b: &Self::V) -> Complex<f64> {
        let mut acc = Complex::zero();
        for (x, y) in a.iter().zip(b) {
            acc = Complex::mul_acc(acc, x.conj(), *y);
        }
        acc
    }

    fn norm2_local(&mut self, a: &Self::V) -> f64 {
        a.iter().map(|x| x.norm_sqr()).sum()
    }

    fn dirichlet_count(&self) -> usize {
        self.dcount
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_efficiency_is_clamped_and_gated_on_applies() {
        // No applies at all → no meaningful efficiency, even if stray
        // nanoseconds were absorbed from somewhere.
        let mut s = SolveStats::new();
        assert_eq!(s.overlap_efficiency(), None);
        s.dslash_total_ns = 500;
        assert_eq!(s.overlap_efficiency(), None, "zero applies must yield None");

        // Regression: a record absorbing sequential applies can carry
        // exposed_comm_ns > total_ns; the ratio must clamp to 0, never
        // go negative.
        let mut seq = SolveStats::new();
        seq.dslash_applies = 4;
        seq.dslash_total_ns = 1_000;
        seq.dslash_exposed_comm_ns = 3_000;
        assert_eq!(seq.overlap_efficiency(), Some(0.0));

        // Fully hidden comm stays exactly 1.
        let mut hidden = SolveStats::new();
        hidden.dslash_applies = 2;
        hidden.dslash_total_ns = 1_000;
        hidden.dslash_exposed_comm_ns = 0;
        assert_eq!(hidden.overlap_efficiency(), Some(1.0));

        // A partial overlap is reported untouched.
        let mut partial = SolveStats::new();
        partial.dslash_applies = 1;
        partial.dslash_total_ns = 1_000;
        partial.dslash_exposed_comm_ns = 250;
        assert_eq!(partial.overlap_efficiency(), Some(0.75));

        // Absorbing the pathological record into the healthy one keeps
        // the folded efficiency in range.
        hidden.absorb(&seq);
        let eff = hidden.overlap_efficiency().unwrap();
        assert!((0.0..=1.0).contains(&eff), "folded efficiency {eff} out of range");
    }

    #[test]
    fn solve_stats_publish_lands_in_registry() {
        let mut s = SolveStats::new();
        s.iterations = 12;
        s.matvecs = 13;
        s.dslash_applies = 26;
        s.dslash_total_ns = 1_000;
        s.dslash_exposed_comm_ns = 100;
        s.converged = true;
        s.residual = 1e-9;
        let mut reg = lqcd_util::trace::MetricsRegistry::new();
        s.publish(&mut reg);
        s.publish(&mut reg); // counters aggregate across publishes
        assert_eq!(reg.counter("solve.iterations"), 24);
        assert_eq!(reg.counter("dslash.applies"), 52);
        assert_eq!(reg.counter("solve.converged"), 2);
        let h = reg.histogram("dslash.overlap_efficiency").unwrap();
        assert_eq!(h.count, 2);
        assert!((h.mean() - 0.9).abs() < 1e-12);
        assert!(reg.text_report().contains("solve.matvecs"));
    }

    #[test]
    fn dense_matvec_identity() {
        let n = 4;
        let mut id = vec![vec![Complex::zero(); n]; n];
        for (i, row) in id.iter_mut().enumerate() {
            row[i] = Complex::one();
        }
        let mut s = DenseSpace::new(id);
        let mut x = s.alloc();
        x[2] = Complex::new(1.0, -2.0);
        let mut y = s.alloc();
        let mut xc = x.clone();
        s.matvec(&mut y, &mut xc).unwrap();
        assert_eq!(y, x);
        assert_eq!(s.matvec_count(), 1);
    }

    #[test]
    fn hpd_matrix_is_hermitian_positive() {
        let mut s = DenseSpace::random_hpd(8, 1);
        for i in 0..8 {
            for j in 0..8 {
                assert!((s.a[i][j] - s.a[j][i].conj()).abs() < 1e-15);
            }
        }
        // x† A x > 0 for random x.
        let mut x = s.alloc();
        for (k, v) in x.iter_mut().enumerate() {
            *v = Complex::new(1.0 / (k + 1) as f64, (k as f64).sin());
        }
        let mut ax = s.alloc();
        let mut xc = x.clone();
        s.matvec(&mut ax, &mut xc).unwrap();
        let q = s.dot(&x, &ax).unwrap();
        assert!(q.re > 0.0 && q.im.abs() < 1e-12);
    }

    #[test]
    fn blas_surface_consistency() {
        let mut s = DenseSpace::random_hpd(6, 2);
        let mut x = s.alloc();
        for (k, v) in x.iter_mut().enumerate() {
            *v = Complex::new(k as f64, -1.0);
        }
        let mut y = s.alloc();
        s.copy(&mut y, &x);
        s.xpay(&x, -1.0, &mut y); // y = x - y = 0
        assert_eq!(s.norm2(&y).unwrap(), 0.0);
        s.caxpy(Complex::i(), &x, &mut y); // y = i x
        let d = s.dot(&x, &y).unwrap();
        // ⟨x, ix⟩ = i‖x‖².
        assert!((d.im - s.norm2(&x).unwrap()).abs() < 1e-12);
        assert!(d.re.abs() < 1e-12);
    }

    #[test]
    fn dd_space_block_diagonal() {
        let mut s = DenseDdSpace { full: DenseSpace::random_general(6, 3), block: 3, dcount: 0 };
        let mut x = s.alloc();
        x[0] = Complex::one(); // support in block 0
        let mut out = s.alloc();
        let mut xc = x.clone();
        s.matvec_dirichlet(&mut out, &mut xc).unwrap();
        // Output confined to block 0.
        for i in 3..6 {
            assert_eq!(out[i], Complex::zero());
        }
        assert!(s.dirichlet_count() == 1);
    }
}

//! Numerical-health monitoring for long solves.
//!
//! A production GCR-DD campaign runs for hours; the failure modes that
//! waste that time are rarely clean errors. A NaN from a corrupted ghost
//! zone circulates silently, a stagnating solve burns its whole iteration
//! budget making no progress, and a diverging one actively destroys the
//! solution it started from. The [`SolveWatchdog`] watches the residual
//! stream from inside the outer iteration and converts each of these into
//! a *structured* breakdown ([`BreakdownKind`]) so the caller — the
//! precision ladder or the [`SolveSupervisor`](../../lqcd_core) — can
//! choose the right remedy: escalate precision for stagnation, restore a
//! checkpoint for wall-clock overrun, rebuild the world for rank death.
//!
//! The hooks are expressed as a [`SolveMonitor`] trait so checkpointing
//! (which needs access to the solution vector at restart boundaries) rides
//! the same mechanism; [`gcr_monitored`](crate::gcr_monitored) calls
//! [`SolveMonitor::observe`] once per outer iteration and
//! [`SolveMonitor::at_restart`] after every high-precision restart.
//!
//! Lockstep caveat: `observe` sees *globally reduced* residuals, so the
//! stagnation/divergence/NaN trips fire on the same iteration on every
//! rank of a distributed solve. The wall-clock trip measures each rank's
//! own clock and can in principle fire unevenly; ranks that trip stop
//! communicating, so their peers unwind through the deadline/ARQ path
//! (`Error::Timeout`) — the supervisor treats both identically.

use crate::space::{SolveStats, SolverSpace};
use lqcd_util::{BreakdownKind, Error, Result};
use std::time::{Duration, Instant};

/// Observer hooks threaded through a solver's outer iteration.
///
/// Returning an error from either hook aborts the solve with that error —
/// this is how the watchdog stops a sick solve, and how a checkpointing
/// monitor can surface an unwritable checkpoint directory early.
pub trait SolveMonitor<S: SolverSpace> {
    /// Called once per outer iteration with the iterated relative
    /// residual `‖r̂‖/‖b‖` (and once before the first iteration with the
    /// initial true residual).
    fn observe(&mut self, iteration: usize, rel_residual: f64) -> Result<()> {
        let _ = (iteration, rel_residual);
        Ok(())
    }

    /// Called after each high-precision restart: the implicit solution
    /// update has been applied, so `x` is current and `rel_residual` is
    /// the freshly recomputed *true* relative residual.
    fn at_restart(
        &mut self,
        space: &mut S,
        x: &S::V,
        stats: &SolveStats,
        rel_residual: f64,
    ) -> Result<()> {
        let _ = (space, x, stats, rel_residual);
        Ok(())
    }
}

/// The do-nothing monitor (what plain [`crate::gcr`] uses).
pub struct NullMonitor;

impl<S: SolverSpace> SolveMonitor<S> for NullMonitor {}

/// Tunables for [`SolveWatchdog`]. The defaults are deliberately loose —
/// a watchdog that trips healthy solves is worse than none.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WatchdogConfig {
    /// Trip [`BreakdownKind::Stagnation`] after this many consecutive
    /// observations without a new best residual (0 disables).
    pub stagnation_window: usize,
    /// Trip [`BreakdownKind::Divergence`] when the residual exceeds the
    /// best seen by this factor (`INFINITY` disables).
    pub divergence_factor: f64,
    /// Trip [`BreakdownKind::WallClock`] when the solve has run longer
    /// than this (`None` disables).
    pub wall_clock: Option<Duration>,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self { stagnation_window: 500, divergence_factor: 1e4, wall_clock: None }
    }
}

/// Residual-stream health monitor; see the module docs.
#[derive(Clone, Debug)]
pub struct SolveWatchdog {
    config: WatchdogConfig,
    solver: &'static str,
    started: Instant,
    /// Wall time consumed by earlier attempts of the same logical solve
    /// (supervised restarts); counted against the budget alongside this
    /// attempt's own clock.
    consumed: Duration,
    best: f64,
    since_best: usize,
}

impl SolveWatchdog {
    /// A watchdog for `solver` (the name lands in breakdown reports).
    pub fn new(solver: &'static str, config: WatchdogConfig) -> Self {
        Self::resumed(solver, config, Duration::ZERO)
    }

    /// A watchdog resuming a solve that already consumed
    /// `already_elapsed` of its wall-clock budget in earlier attempts —
    /// the budget covers the *logical* solve, not each attempt, so a
    /// supervised restart must not reset the clock.
    pub fn resumed(
        solver: &'static str,
        config: WatchdogConfig,
        already_elapsed: Duration,
    ) -> Self {
        Self {
            config,
            solver,
            started: Instant::now(),
            consumed: already_elapsed,
            best: f64::INFINITY,
            since_best: 0,
        }
    }

    /// Wall time attributed to the logical solve: earlier attempts'
    /// carry plus time since this watchdog's construction.
    pub fn elapsed(&self) -> Duration {
        self.consumed + self.started.elapsed()
    }

    /// Best relative residual seen so far.
    pub fn best_residual(&self) -> f64 {
        self.best
    }

    /// Feed one relative residual; errors when a health check trips.
    pub fn check(&mut self, iteration: usize, rel_residual: f64) -> Result<()> {
        let breakdown = |kind: BreakdownKind, detail: String| {
            Err(Error::Breakdown { solver: self.solver, kind, detail })
        };
        if !rel_residual.is_finite() {
            return breakdown(
                BreakdownKind::NonFinite,
                format!("relative residual {rel_residual} at iteration {iteration}"),
            );
        }
        if let Some(budget) = self.config.wall_clock {
            let elapsed = self.elapsed();
            if elapsed > budget {
                return breakdown(
                    BreakdownKind::WallClock,
                    format!(
                        "solve ran {elapsed:?} against a budget of {budget:?} \
                         (iteration {iteration}, |r|/|b| = {rel_residual:.3e})"
                    ),
                );
            }
        }
        if rel_residual < self.best {
            self.best = rel_residual;
            self.since_best = 0;
            return Ok(());
        }
        if self.best.is_finite() && rel_residual > self.config.divergence_factor * self.best {
            return breakdown(
                BreakdownKind::Divergence,
                format!(
                    "|r|/|b| = {rel_residual:.3e} at iteration {iteration} is {:.1e}× the best \
                     {:.3e}",
                    rel_residual / self.best,
                    self.best
                ),
            );
        }
        self.since_best += 1;
        if self.config.stagnation_window > 0 && self.since_best >= self.config.stagnation_window {
            return breakdown(
                BreakdownKind::Stagnation,
                format!(
                    "no residual improvement in {} iterations (best {:.3e}, now {:.3e})",
                    self.since_best, self.best, rel_residual
                ),
            );
        }
        Ok(())
    }
}

impl<S: SolverSpace> SolveMonitor<S> for SolveWatchdog {
    fn observe(&mut self, iteration: usize, rel_residual: f64) -> Result<()> {
        self.check(iteration, rel_residual)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kind(r: Result<()>) -> BreakdownKind {
        match r {
            Err(Error::Breakdown { kind, .. }) => kind,
            other => panic!("expected a breakdown, got {other:?}"),
        }
    }

    #[test]
    fn healthy_convergence_never_trips() {
        let mut w = SolveWatchdog::new("test", WatchdogConfig::default());
        for i in 0..1000 {
            let rel = 0.99f64.powi(i as i32);
            w.check(i, rel).unwrap();
        }
        assert!(w.best_residual() < 1e-4);
    }

    #[test]
    fn nan_trips_nonfinite() {
        let mut w = SolveWatchdog::new("test", WatchdogConfig::default());
        w.check(0, 1.0).unwrap();
        assert_eq!(kind(w.check(1, f64::NAN)), BreakdownKind::NonFinite);
        let mut w = SolveWatchdog::new("test", WatchdogConfig::default());
        assert_eq!(kind(w.check(0, f64::INFINITY)), BreakdownKind::NonFinite);
    }

    #[test]
    fn plateau_trips_stagnation() {
        let cfg = WatchdogConfig { stagnation_window: 10, ..Default::default() };
        let mut w = SolveWatchdog::new("test", cfg);
        w.check(0, 1e-3).unwrap();
        for i in 1..10 {
            w.check(i, 1e-3).unwrap();
        }
        assert_eq!(kind(w.check(10, 1e-3)), BreakdownKind::Stagnation);
    }

    #[test]
    fn progress_resets_the_stagnation_counter() {
        let cfg = WatchdogConfig { stagnation_window: 5, ..Default::default() };
        let mut w = SolveWatchdog::new("test", cfg);
        let mut rel = 1.0;
        for i in 0..100 {
            // Improve every 4th observation: never 5 stale in a row.
            if i % 4 == 0 {
                rel *= 0.5;
            }
            w.check(i, rel).unwrap();
        }
    }

    #[test]
    fn blowup_trips_divergence() {
        let cfg = WatchdogConfig { divergence_factor: 100.0, ..Default::default() };
        let mut w = SolveWatchdog::new("test", cfg);
        w.check(0, 1e-6).unwrap();
        w.check(1, 1e-5).unwrap(); // 10× worse: tolerated
        assert_eq!(kind(w.check(2, 1e-3)), BreakdownKind::Divergence);
    }

    #[test]
    fn exhausted_budget_trips_wall_clock() {
        let cfg = WatchdogConfig { wall_clock: Some(Duration::ZERO), ..Default::default() };
        let mut w = SolveWatchdog::new("test", cfg);
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(kind(w.check(0, 0.5)), BreakdownKind::WallClock);
    }

    #[test]
    fn resumed_watchdog_counts_prior_attempts_against_the_budget() {
        // Regression: the wall-clock budget covers the whole logical
        // solve. A watchdog resumed with carried elapsed time must trip
        // even though *this* attempt just started.
        let cfg = WatchdogConfig { wall_clock: Some(Duration::from_secs(1)), ..Default::default() };
        let mut w = SolveWatchdog::resumed("test", cfg, Duration::from_secs(2));
        assert_eq!(kind(w.check(0, 0.5)), BreakdownKind::WallClock);
        assert!(w.elapsed() >= Duration::from_secs(2));

        // Carry below the budget does not trip.
        let mut fresh = SolveWatchdog::resumed("test", cfg, Duration::from_millis(1));
        fresh.check(0, 0.5).unwrap();

        // `new` is the zero-carry special case.
        let mut zero = SolveWatchdog::new("test", cfg);
        zero.check(0, 0.5).unwrap();
    }

    #[test]
    fn disabled_checks_never_trip() {
        let cfg = WatchdogConfig {
            stagnation_window: 0,
            divergence_factor: f64::INFINITY,
            wall_clock: None,
        };
        let mut w = SolveWatchdog::new("test", cfg);
        for i in 0..10_000 {
            w.check(i, 1.0).unwrap();
        }
        w.check(10_000, 1e300).unwrap();
    }
}

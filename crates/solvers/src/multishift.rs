//! Multi-shift (multi-mass) conjugate gradients.
//!
//! Solves `(A + σ_i) x_i = b` for all shifts simultaneously in the
//! iteration count of the hardest (smallest) shift (§3.1, Eq. 4), using
//! the shifted-polynomial recurrences of Jegerlehner [12]: the base CG on
//! `A + σ_0` generates residuals `r_k`; each shifted system's residual is
//! `ζ_k^σ · r_k` with scalar recurrences for `ζ`, so every extra shift
//! costs only BLAS-1 work — no extra matvecs.
//!
//! Restrictions the paper leans on (§8.2): multi-shift CG **cannot be
//! restarted**, so no mixed precision inside; the extra linear algebra is
//! bandwidth-heavy; and all `N` solution + direction vectors stay live.

use crate::space::{SolveStats, SolverSpace};
use lqcd_util::{BreakdownKind, Error, Result};

/// Result of a multi-shift solve.
pub struct MultishiftResult<V> {
    /// One solution per input shift (same order).
    pub solutions: Vec<V>,
    /// Combined statistics (matvecs are shared across shifts).
    pub stats: SolveStats,
    /// Iteration at which each shift converged.
    pub converged_at: Vec<usize>,
}

/// Solve `(A + σ_i) x_i = b` for every `shifts[i] = σ_i ≥ 0` (sorted or
/// not) to relative residual `tol`, from zero initial guesses.
pub fn multishift_cg<S: SolverSpace>(
    space: &mut S,
    shifts: &[f64],
    b: &S::V,
    tol: f64,
    maxiter: usize,
) -> Result<MultishiftResult<S::V>> {
    if shifts.is_empty() {
        return Err(Error::Config("multishift_cg needs at least one shift".into()));
    }
    let nshift = shifts.len();
    // Base system: the smallest shift (worst conditioned) drives CG.
    let base_idx = (0..nshift).min_by(|&a, &b| shifts[a].total_cmp(&shifts[b])).expect("nonempty");
    let sigma0 = shifts[base_idx];

    let mut stats = SolveStats::new();
    let bnorm2 = space.norm2(b)?;
    let mut solutions: Vec<S::V> = (0..nshift).map(|_| space.alloc()).collect();
    let mut converged_at = vec![usize::MAX; nshift];
    if bnorm2 == 0.0 {
        stats.converged = true;
        stats.residual = 0.0;
        return Ok(MultishiftResult { solutions, stats, converged_at: vec![0; nshift] });
    }
    let target2 = tol * tol * bnorm2;

    // Base CG state (on A + σ0).
    let mut r = space.alloc();
    space.copy(&mut r, b); // x0 = 0 ⇒ r = b
    let mut p = space.alloc();
    space.copy(&mut p, b);
    let mut ap = space.alloc();
    let mut rr = bnorm2;
    // Per-shift state (relative shifts σ_i − σ0).
    let mut ps: Vec<S::V> = (0..nshift)
        .map(|_| {
            let mut v = space.alloc();
            space.copy(&mut v, b);
            v
        })
        .collect();
    let mut zeta_prev = vec![1.0f64; nshift];
    let mut zeta_cur = vec![1.0f64; nshift];
    let mut alpha_prev = 1.0f64;
    let mut beta_prev = 1.0f64;
    let mut done = vec![false; nshift];

    let mut iter = 0usize;
    while iter < maxiter {
        // Convergence bookkeeping: shifted residual i is ζ_i·r.
        let mut all_done = true;
        for i in 0..nshift {
            if !done[i] {
                let res2 = zeta_cur[i] * zeta_cur[i] * rr;
                if res2 <= target2 {
                    done[i] = true;
                    converged_at[i] = iter;
                } else {
                    all_done = false;
                }
            }
        }
        if all_done {
            break;
        }
        // Base matvec: Ap + σ0 p.
        space.matvec(&mut ap, &mut p)?;
        stats.matvecs += 1;
        if sigma0 != 0.0 {
            space.axpy(sigma0, &p, &mut ap);
        }
        let pap = space.dot(&p, &ap)?.re;
        if pap <= 0.0 {
            return Err(Error::Breakdown {
                solver: "multishift_cg",
                kind: BreakdownKind::ZeroPivot,
                detail: format!("⟨p, (A+σ₀)p⟩ = {pap} not positive"),
            });
        }
        let alpha = rr / pap;
        // Base solution update.
        space.axpy(alpha, &p, &mut solutions[base_idx]);
        space.axpy(-alpha, &ap, &mut r);
        let rr_new = space.norm2(&r)?;
        let beta = rr_new / rr;

        // Shifted updates (Jegerlehner recurrences; relative shift
        // dσ = σ_i − σ0).
        for i in 0..nshift {
            if i == base_idx || done[i] {
                continue;
            }
            let dsigma = shifts[i] - sigma0;
            let denom = alpha * beta_prev * (zeta_prev[i] - zeta_cur[i])
                + zeta_prev[i] * alpha_prev * (1.0 + dsigma * alpha);
            if denom.abs() < 1e-300 {
                return Err(Error::Breakdown {
                    solver: "multishift_cg",
                    kind: BreakdownKind::ZeroPivot,
                    detail: format!("ζ recurrence denominator vanished for shift {i}"),
                });
            }
            let zeta_next = zeta_cur[i] * zeta_prev[i] * alpha_prev / denom;
            let alpha_i = alpha * zeta_next / zeta_cur[i];
            let beta_i = beta * (zeta_next / zeta_cur[i]) * (zeta_next / zeta_cur[i]);
            // x_i += α_i p_i ; p_i = ζ_next·r_{k+1} + β_i p_i
            // (r is already r_{k+1} here).
            space.axpy(alpha_i, &ps[i], &mut solutions[i]);
            space.scale(&mut ps[i], beta_i);
            space.axpy(zeta_next, &r, &mut ps[i]);
            zeta_prev[i] = zeta_cur[i];
            zeta_cur[i] = zeta_next;
        }
        // Base direction update.
        space.xpay(&r, beta, &mut p);
        alpha_prev = alpha;
        beta_prev = beta;
        rr = rr_new;
        iter += 1;
        stats.iterations += 1;
    }
    // Final convergence check.
    let mut worst: f64 = 0.0;
    for i in 0..nshift {
        let res = (zeta_cur[i] * zeta_cur[i] * rr / bnorm2).sqrt();
        worst = worst.max(res);
        if converged_at[i] == usize::MAX && res <= tol {
            converged_at[i] = iter;
            done[i] = true;
        }
    }
    stats.residual = worst;
    stats.converged = done.iter().all(|&d| d);
    if !stats.converged {
        return Err(Error::NoConvergence {
            solver: "multishift_cg",
            iterations: iter,
            residual: worst,
            target: tol,
        });
    }
    Ok(MultishiftResult { solutions, stats, converged_at })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::cg;
    use crate::space::DenseSpace;
    use lqcd_util::Complex;

    fn rand_b(n: usize) -> Vec<Complex<f64>> {
        (0..n).map(|k| Complex::new((k as f64 * 0.8).sin(), (k as f64 * 0.3).cos())).collect()
    }

    /// Shifted wrapper for verification solves.
    struct Shifted<'a> {
        base: &'a mut DenseSpace,
        sigma: f64,
    }

    impl<'a> SolverSpace for Shifted<'a> {
        type V = Vec<Complex<f64>>;
        fn alloc(&mut self) -> Self::V {
            self.base.alloc()
        }
        fn matvec(&mut self, out: &mut Self::V, x: &mut Self::V) -> Result<()> {
            self.base.matvec(out, x)?;
            let s = self.sigma;
            self.base.axpy(s, x, out);
            Ok(())
        }
        fn dot(&mut self, a: &Self::V, b: &Self::V) -> Result<Complex<f64>> {
            self.base.dot(a, b)
        }
        fn norm2(&mut self, a: &Self::V) -> Result<f64> {
            self.base.norm2(a)
        }
        fn copy(&mut self, d: &mut Self::V, s: &Self::V) {
            self.base.copy(d, s)
        }
        fn zero(&mut self, v: &mut Self::V) {
            self.base.zero(v)
        }
        fn axpy(&mut self, a: f64, x: &Self::V, y: &mut Self::V) {
            self.base.axpy(a, x, y)
        }
        fn caxpy(&mut self, a: Complex<f64>, x: &Self::V, y: &mut Self::V) {
            self.base.caxpy(a, x, y)
        }
        fn xpay(&mut self, x: &Self::V, a: f64, y: &mut Self::V) {
            self.base.xpay(x, a, y)
        }
        fn cxpay(&mut self, x: &Self::V, a: Complex<f64>, y: &mut Self::V) {
            self.base.cxpay(x, a, y)
        }
        fn scale(&mut self, v: &mut Self::V, a: f64) {
            self.base.scale(v, a)
        }
    }

    #[test]
    fn matches_individual_shifted_solves() {
        let n = 20;
        let shifts = [0.0, 0.05, 0.25, 1.0, 4.0];
        let mut s = DenseSpace::random_hpd(n, 1);
        let b = rand_b(n);
        let ms = multishift_cg(&mut s, &shifts, &b, 1e-10, 500).unwrap();
        assert!(ms.stats.converged);
        for (i, &sigma) in shifts.iter().enumerate() {
            let mut shifted = Shifted { base: &mut s, sigma };
            let mut x_ref = shifted.alloc();
            cg(&mut shifted, &mut x_ref, &b, 1e-12, 500).unwrap();
            let mut diff = ms.solutions[i].clone();
            for (d, r) in diff.iter_mut().zip(&x_ref) {
                *d -= *r;
            }
            let err: f64 = diff.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
            let norm: f64 = x_ref.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
            assert!(err / norm < 1e-8, "shift {sigma}: relative error {}", err / norm);
        }
    }

    #[test]
    fn larger_shifts_converge_earlier() {
        let n = 24;
        let shifts = [0.0, 2.0, 16.0];
        let mut s = DenseSpace::random_hpd(n, 2);
        let b = rand_b(n);
        let ms = multishift_cg(&mut s, &shifts, &b, 1e-10, 500).unwrap();
        assert!(
            ms.converged_at[2] <= ms.converged_at[1] && ms.converged_at[1] <= ms.converged_at[0],
            "convergence order: {:?}",
            ms.converged_at
        );
    }

    #[test]
    fn matvec_count_is_independent_of_shift_count() {
        let n = 16;
        let mut s1 = DenseSpace::random_hpd(n, 3);
        let b = rand_b(n);
        let one = multishift_cg(&mut s1, &[0.0], &b, 1e-10, 500).unwrap();
        let mut s5 = DenseSpace::random_hpd(n, 3);
        let five = multishift_cg(&mut s5, &[0.0, 0.1, 0.5, 2.0, 8.0], &b, 1e-10, 500).unwrap();
        // "in the same number of iterations as the smallest shift" (§3.1).
        assert_eq!(one.stats.matvecs, five.stats.matvecs);
    }

    #[test]
    fn base_shift_need_not_be_first() {
        let n = 12;
        let shifts = [3.0, 0.0, 1.0]; // smallest in the middle
        let mut s = DenseSpace::random_hpd(n, 4);
        let b = rand_b(n);
        let ms = multishift_cg(&mut s, &shifts, &b, 1e-10, 500).unwrap();
        for (i, &sigma) in shifts.iter().enumerate() {
            let mut shifted = Shifted { base: &mut s, sigma };
            let mut ax = shifted.alloc();
            let mut xc = ms.solutions[i].clone();
            shifted.matvec(&mut ax, &mut xc).unwrap();
            shifted.xpay(&b, -1.0, &mut ax);
            let res = (shifted.norm2(&ax).unwrap() / shifted.norm2(&b).unwrap()).sqrt();
            assert!(res < 1e-8, "shift {sigma}: residual {res}");
        }
    }

    #[test]
    fn empty_shift_list_is_config_error() {
        let mut s = DenseSpace::random_hpd(4, 5);
        let b = rand_b(4);
        assert!(matches!(multishift_cg(&mut s, &[], &b, 1e-8, 10), Err(Error::Config(_))));
    }
}

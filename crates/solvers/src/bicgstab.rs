//! BiCGstab for general (non-Hermitian) systems.
//!
//! The production Wilson-clover solver (§3.1: "more commonly, the system
//! is solved directly using a non-symmetric method, e.g., BiCGstab") and
//! the baseline that GCR-DD outperforms past 32 GPUs in Figs. 7–8. Note
//! the per-iteration cost: **two** matvecs and **four** global
//! reductions — the reduction count is part of why strong scaling stalls
//! (§3.2: "the need for periodic global reduction operations").

use crate::space::{SolveStats, SolverSpace};
use lqcd_util::{BreakdownKind, Complex, Error, Result};

/// Solve `A x = b` by BiCGstab to relative residual `tol` starting from
/// `x`.
pub fn bicgstab<S: SolverSpace>(
    space: &mut S,
    x: &mut S::V,
    b: &S::V,
    tol: f64,
    maxiter: usize,
) -> Result<SolveStats> {
    let mut stats = SolveStats::new();
    let bnorm2 = space.norm2(b)?;
    if bnorm2 == 0.0 {
        space.zero(x);
        stats.converged = true;
        stats.residual = 0.0;
        return Ok(stats);
    }
    let target2 = tol * tol * bnorm2;
    let mut r = space.alloc();
    space.matvec(&mut r, x)?;
    stats.matvecs += 1;
    space.xpay(b, -1.0, &mut r);
    // Fixed shadow residual.
    let mut r_hat = space.alloc();
    space.copy(&mut r_hat, &r);
    let mut p = space.alloc();
    let mut v = space.alloc();
    let mut s = space.alloc();
    let mut t = space.alloc();
    let mut rho_prev = Complex::<f64>::one();
    let mut alpha = Complex::<f64>::one();
    let mut omega = Complex::<f64>::one();
    let mut rnorm2 = space.norm2(&r)?;
    while stats.iterations < maxiter {
        if rnorm2 <= target2 {
            stats.converged = true;
            break;
        }
        let rho = space.dot(&r_hat, &r)?;
        if rho.abs() < 1e-300 {
            return Err(Error::Breakdown {
                solver: "bicgstab",
                kind: BreakdownKind::ZeroPivot,
                detail: "ρ = ⟨r̂, r⟩ vanished".into(),
            });
        }
        let beta = (rho / rho_prev) * (alpha / omega);
        // p = r + β (p − ω v).
        space.caxpy(-omega, &v, &mut p);
        space.cxpay(&r, beta, &mut p);
        space.matvec(&mut v, &mut p)?;
        stats.matvecs += 1;
        let rhat_v = space.dot(&r_hat, &v)?;
        if rhat_v.abs() < 1e-300 {
            return Err(Error::Breakdown {
                solver: "bicgstab",
                kind: BreakdownKind::ZeroPivot,
                detail: "⟨r̂, v⟩ vanished".into(),
            });
        }
        alpha = rho / rhat_v;
        // s = r − α v.
        space.copy(&mut s, &r);
        space.caxpy(-alpha, &v, &mut s);
        space.matvec(&mut t, &mut s)?;
        stats.matvecs += 1;
        let tt = space.norm2(&t)?;
        if tt == 0.0 {
            // s is an exact solution increment.
            space.caxpy(alpha, &p, x);
            space.copy(&mut r, &s);
            rnorm2 = space.norm2(&r)?;
            stats.iterations += 1;
            rho_prev = rho;
            continue;
        }
        omega = space.dot(&t, &s)? / Complex::from_re(tt);
        // x += α p + ω s.
        space.caxpy(alpha, &p, x);
        space.caxpy(omega, &s, x);
        // r = s − ω t.
        space.copy(&mut r, &s);
        space.caxpy(-omega, &t, &mut r);
        rho_prev = rho;
        rnorm2 = space.norm2(&r)?;
        stats.iterations += 1;
    }
    stats.residual = (rnorm2 / bnorm2).sqrt();
    if rnorm2 <= target2 {
        stats.converged = true;
    }
    if !stats.converged {
        return Err(Error::NoConvergence {
            solver: "bicgstab",
            iterations: stats.iterations,
            residual: stats.residual,
            target: tol,
        });
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DenseSpace;

    fn rand_b(n: usize) -> Vec<Complex<f64>> {
        (0..n).map(|k| Complex::new((k as f64 * 0.9).sin(), (k as f64 * 0.4).cos())).collect()
    }

    #[allow(clippy::ptr_arg)]
    fn true_resid(space: &mut DenseSpace, x: &Vec<Complex<f64>>, b: &Vec<Complex<f64>>) -> f64 {
        let mut ax = space.alloc();
        let mut xc = x.clone();
        space.matvec(&mut ax, &mut xc).unwrap();
        space.xpay(b, -1.0, &mut ax);
        (space.norm2(&ax).unwrap() / space.norm2(b).unwrap()).sqrt()
    }

    #[test]
    fn solves_nonsymmetric_system() {
        let mut s = DenseSpace::random_general(24, 1);
        let b = rand_b(24);
        let mut x = s.alloc();
        let stats = bicgstab(&mut s, &mut x, &b, 1e-10, 300).unwrap();
        assert!(stats.converged);
        assert!(true_resid(&mut s, &x, &b) < 1e-9);
        // Two matvecs per iteration (+1 initial).
        assert_eq!(stats.matvecs, 2 * stats.iterations + 1);
    }

    #[test]
    fn solves_hermitian_system_too() {
        let mut s = DenseSpace::random_hpd(16, 2);
        let b = rand_b(16);
        let mut x = s.alloc();
        bicgstab(&mut s, &mut x, &b, 1e-11, 300).unwrap();
        assert!(true_resid(&mut s, &x, &b) < 1e-10);
    }

    #[test]
    fn zero_rhs() {
        let mut s = DenseSpace::random_general(8, 3);
        let b = s.alloc();
        let mut x = s.alloc();
        x[3] = Complex::i();
        let stats = bicgstab(&mut s, &mut x, &b, 1e-12, 10).unwrap();
        assert!(stats.converged);
        assert_eq!(s.norm2(&x).unwrap(), 0.0);
    }

    #[test]
    fn budget_exhaustion_reports_residual() {
        let mut s = DenseSpace::random_general(32, 4);
        let b = rand_b(32);
        let mut x = s.alloc();
        match bicgstab(&mut s, &mut x, &b, 1e-15, 1) {
            Err(Error::NoConvergence { residual, iterations, .. }) => {
                assert_eq!(iterations, 1);
                assert!(residual > 0.0 && residual.is_finite());
            }
            other => panic!("expected NoConvergence, got {other:?}"),
        }
    }
}

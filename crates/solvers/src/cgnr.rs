//! CG on the normal equations (CGNR) — the classic fallback the paper
//! mentions for the non-Hermitian Wilson system (§3.1: "either Conjugate
//! Gradients on the normal equations (CGNE or CGNR) is used, or more
//! commonly … BiCGstab").
//!
//! CGNR solves `A†A x = A† b` with CG; each iteration costs one `A` and
//! one `A†` application. For γ₅-Hermitian Dirac operators the adjoint is
//! free: `A† = γ₅ A γ₅` ([`AdjointMatvec`] implementations exploit this).

use crate::space::{SolveStats, SolverSpace};
use lqcd_util::{BreakdownKind, Error, Result};

/// A space whose operator adjoint is available.
pub trait AdjointMatvec: SolverSpace {
    /// `out = A† x`.
    fn matvec_adj(&mut self, out: &mut Self::V, x: &mut Self::V) -> Result<()>;
}

/// Solve `A x = b` through the normal equations `A†A x = A† b`.
///
/// Convergence is monitored on the *normal* residual `A†(b − Ax)`; the
/// returned stats additionally carry the true relative residual
/// `‖b − Ax‖/‖b‖` measured at exit.
pub fn cgnr<S: AdjointMatvec>(
    space: &mut S,
    x: &mut S::V,
    b: &S::V,
    tol: f64,
    maxiter: usize,
) -> Result<SolveStats> {
    let mut stats = SolveStats::new();
    let bnorm2 = space.norm2(b)?;
    if bnorm2 == 0.0 {
        space.zero(x);
        stats.converged = true;
        stats.residual = 0.0;
        return Ok(stats);
    }
    // r = b − A x (true residual), s = A† r (normal residual).
    let mut r = space.alloc();
    space.matvec(&mut r, x)?;
    stats.matvecs += 1;
    space.xpay(b, -1.0, &mut r);
    let mut s = space.alloc();
    space.matvec_adj(&mut s, &mut r)?;
    stats.matvecs += 1;
    let mut p = space.alloc();
    space.copy(&mut p, &s);
    let mut ap = space.alloc();
    let mut ss = space.norm2(&s)?;
    let target2 = tol * tol * bnorm2;
    loop {
        // True-residual convergence test.
        let rr = space.norm2(&r)?;
        if rr <= target2 {
            stats.converged = true;
            stats.residual = (rr / bnorm2).sqrt();
            return Ok(stats);
        }
        if stats.iterations >= maxiter {
            stats.residual = (rr / bnorm2).sqrt();
            return Err(Error::NoConvergence {
                solver: "cgnr",
                iterations: stats.iterations,
                residual: stats.residual,
                target: tol,
            });
        }
        space.matvec(&mut ap, &mut p)?;
        stats.matvecs += 1;
        let apap = space.norm2(&ap)?;
        if apap <= 0.0 {
            return Err(Error::Breakdown {
                solver: "cgnr",
                kind: BreakdownKind::ZeroPivot,
                detail: "‖Ap‖² vanished with nonzero residual".into(),
            });
        }
        let alpha = ss / apap;
        space.axpy(alpha, &p, x);
        space.axpy(-alpha, &ap, &mut r);
        // s = A† r.
        space.matvec_adj(&mut s, &mut r)?;
        stats.matvecs += 1;
        let ss_new = space.norm2(&s)?;
        let beta = ss_new / ss;
        space.xpay(&s, beta, &mut p);
        ss = ss_new;
        stats.iterations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DenseSpace;
    use lqcd_util::Complex;

    /// Dense space with an explicit adjoint.
    struct DenseAdj(DenseSpace);

    impl SolverSpace for DenseAdj {
        type V = Vec<Complex<f64>>;
        fn alloc(&mut self) -> Self::V {
            self.0.alloc()
        }
        fn matvec(&mut self, out: &mut Self::V, x: &mut Self::V) -> Result<()> {
            self.0.matvec(out, x)
        }
        fn dot(&mut self, a: &Self::V, b: &Self::V) -> Result<Complex<f64>> {
            self.0.dot(a, b)
        }
        fn norm2(&mut self, a: &Self::V) -> Result<f64> {
            self.0.norm2(a)
        }
        fn copy(&mut self, d: &mut Self::V, s: &Self::V) {
            self.0.copy(d, s)
        }
        fn zero(&mut self, v: &mut Self::V) {
            self.0.zero(v)
        }
        fn axpy(&mut self, a: f64, x: &Self::V, y: &mut Self::V) {
            self.0.axpy(a, x, y)
        }
        fn caxpy(&mut self, a: Complex<f64>, x: &Self::V, y: &mut Self::V) {
            self.0.caxpy(a, x, y)
        }
        fn xpay(&mut self, x: &Self::V, a: f64, y: &mut Self::V) {
            self.0.xpay(x, a, y)
        }
        fn cxpay(&mut self, x: &Self::V, a: Complex<f64>, y: &mut Self::V) {
            self.0.cxpay(x, a, y)
        }
        fn scale(&mut self, v: &mut Self::V, a: f64) {
            self.0.scale(v, a)
        }
    }

    impl AdjointMatvec for DenseAdj {
        fn matvec_adj(&mut self, out: &mut Self::V, x: &mut Self::V) -> Result<()> {
            let n = self.0.a.len();
            for i in 0..n {
                let mut acc = Complex::zero();
                for j in 0..n {
                    acc = Complex::mul_acc(acc, self.0.a[j][i].conj(), x[j]);
                }
                out[i] = acc;
            }
            Ok(())
        }
    }

    fn rand_b(n: usize) -> Vec<Complex<f64>> {
        (0..n).map(|k| Complex::new((k as f64 * 0.6).sin(), (k as f64 * 1.2).cos())).collect()
    }

    #[test]
    fn solves_nonsymmetric_system() {
        let mut s = DenseAdj(DenseSpace::random_general(20, 1));
        let b = rand_b(20);
        let mut x = s.alloc();
        let stats = cgnr(&mut s, &mut x, &b, 1e-10, 2000).unwrap();
        assert!(stats.converged);
        let mut ax = s.alloc();
        let mut xc = x.clone();
        s.matvec(&mut ax, &mut xc).unwrap();
        s.xpay(&b, -1.0, &mut ax);
        let res = (s.norm2(&ax).unwrap() / s.norm2(&b).unwrap()).sqrt();
        assert!(res < 1e-9, "true residual {res}");
    }

    #[test]
    fn squares_the_condition_number() {
        // CGNR should need (roughly) more iterations than BiCGstab on the
        // same system — the reason the paper prefers BiCGstab.
        let mut s = DenseAdj(DenseSpace::random_general(24, 2));
        let b = rand_b(24);
        let mut x1 = s.alloc();
        let cgnr_stats = cgnr(&mut s, &mut x1, &b, 1e-9, 2000).unwrap();
        let mut x2 = s.0.alloc();
        let bicg = crate::bicgstab(&mut s.0, &mut x2, &b, 1e-9, 2000).unwrap();
        assert!(
            cgnr_stats.matvecs >= bicg.matvecs,
            "cgnr {} matvecs vs bicgstab {}",
            cgnr_stats.matvecs,
            bicg.matvecs
        );
    }

    #[test]
    fn zero_rhs() {
        let mut s = DenseAdj(DenseSpace::random_general(8, 3));
        let b = s.alloc();
        let mut x = s.alloc();
        x[0] = Complex::one();
        let stats = cgnr(&mut s, &mut x, &b, 1e-10, 100).unwrap();
        assert!(stats.converged);
        assert_eq!(s.norm2(&x).unwrap(), 0.0);
    }
}

//! Krylov solvers for lattice Dirac systems.
//!
//! The solver stack the paper builds and benchmarks (§3, §8):
//!
//! * [`cg`] — conjugate gradients for Hermitian positive-definite systems
//!   (the staggered normal operator);
//! * [`bicgstab`] — the production Wilson-clover solver being outscaled
//!   in Figs. 7–8;
//! * [`mr`] — minimum residual, the cheap smoother used *inside* Schwarz
//!   blocks ("only a small number of steps of MR", §8.1);
//! * [`gcr`] — flexible GCR with explicit orthogonalization, restarts,
//!   the δ early-restart criterion and the implicit solution update:
//!   Algorithm 1 verbatim;
//! * [`SchwarzMR`] — the non-overlapping additive-Schwarz preconditioner:
//!   a few MR steps on the rank-local Dirichlet operator with *local*
//!   reductions only;
//! * [`multishift_cg`] — the shifted-system CG (Eq. 4) with Jegerlehner
//!   recurrences;
//! * [`mixed`] — mixed-precision drivers: double-single defect-correction
//!   (reliable-update analogue) and the staggered strategy of §8.2
//!   (single-precision multi-shift followed by sequential refinement);
//! * [`watchdog`] — [`SolveMonitor`] hooks through the outer iterations
//!   ([`gcr_monitored`], [`mixed::defect_correction_monitored`]) and the
//!   [`SolveWatchdog`] that turns NaN contamination, stagnation,
//!   divergence, and wall-clock overrun into structured breakdowns.
//!
//! All solvers are generic over [`SolverSpace`] — implemented by the
//! distributed lattice operators in [`spaces`] and by a dense test matrix
//! in [`space::DenseSpace`], so every algorithm is also unit-tested
//! against exactly solvable systems.

pub mod bicgstab;
pub mod cg;
pub mod cgnr;
pub mod gcr;
pub mod lanczos;
pub mod mixed;
pub mod mr;
pub mod multishift;
pub mod space;
pub mod spaces;
pub mod watchdog;

pub use bicgstab::bicgstab;
pub use cg::cg;
pub use cgnr::{cgnr, AdjointMatvec};
pub use gcr::{gcr, gcr_monitored, GcrParams, IdentityPrecond, Preconditioner, SchwarzMR};
pub use lanczos::{lanczos_extremes, Spectrum};
pub use mr::mr;
pub use multishift::multishift_cg;
pub use space::{DirichletMatvec, SolveStats, SolverSpace};
pub use watchdog::{NullMonitor, SolveMonitor, SolveWatchdog, WatchdogConfig};

//! Mixed-precision solver drivers.
//!
//! Two of the paper's three mixed-precision strategies live here as
//! generic drivers (the third — half-precision Krylov storage inside
//! GCR-DD — is a [`crate::GcrParams`] flag):
//!
//! * [`defect_correction`] — the outer/inner split behind the paper's
//!   "double-single" solvers: the outer loop computes true residuals at
//!   high precision, an inner low-precision solve produces a correction,
//!   and the cycle repeats (the reliable-update scheme of [3] in its
//!   defect-correction form);
//! * [`multishift_refined`] — §8.2's staggered strategy: "solve Equation
//!   (4) using a pure single-precision multi-shift CG solver and then use
//!   mixed-precision sequential CG, refining each of the x_i solution
//!   vectors until the desired tolerance has been reached."

use crate::cg::cg;
use crate::multishift::{multishift_cg, MultishiftResult};
use crate::space::{SolveStats, SolverSpace};
use crate::watchdog::{NullMonitor, SolveMonitor};
use lqcd_util::{Complex, Error, Result};

/// Moves vectors between a high-precision and a low-precision space.
pub trait Bridge<HI: SolverSpace + ?Sized, LO: SolverSpace + ?Sized> {
    /// Convert (truncate) `hi` into `lo`.
    fn down(&self, hi: &HI::V, lo: &mut LO::V);
    /// Convert (widen) `lo` into `hi`.
    fn up(&self, lo: &LO::V, hi: &mut HI::V);
}

/// Identity bridge for same-type vector spaces (testing, or
/// double-double configurations).
pub struct IdentityBridge;

impl<S> Bridge<S, S> for IdentityBridge
where
    S: SolverSpace,
    S::V: Clone,
{
    fn down(&self, hi: &S::V, lo: &mut S::V) {
        *lo = hi.clone();
    }
    fn up(&self, lo: &S::V, hi: &mut S::V) {
        *hi = lo.clone();
    }
}

/// Solve `A x = b` to high-precision tolerance `tol` by repeated
/// low-precision correction solves: each cycle computes `r = b − A x` at
/// high precision, solves `A e = r` in the low space to `inner_tol`, and
/// applies `x += e`.
#[allow(clippy::too_many_arguments)]
pub fn defect_correction<HI, LO, B, F>(
    hi: &mut HI,
    lo: &mut LO,
    bridge: &B,
    x: &mut HI::V,
    b: &HI::V,
    tol: f64,
    max_cycles: usize,
    inner: F,
) -> Result<SolveStats>
where
    HI: SolverSpace,
    LO: SolverSpace,
    B: Bridge<HI, LO>,
    F: FnMut(&mut LO, &mut LO::V, &LO::V) -> Result<SolveStats>,
{
    defect_correction_monitored(hi, lo, bridge, x, b, tol, max_cycles, inner, &mut NullMonitor)
}

/// [`defect_correction`] with [`SolveMonitor`] hooks: `observe` fires on
/// every true-residual recomputation (so a watchdog sees the outer
/// convergence trajectory), `at_restart` after every applied correction —
/// the mixed-precision ladder's consistent-checkpoint points.
#[allow(clippy::too_many_arguments)]
pub fn defect_correction_monitored<HI, LO, B, F, M>(
    hi: &mut HI,
    lo: &mut LO,
    bridge: &B,
    x: &mut HI::V,
    b: &HI::V,
    tol: f64,
    max_cycles: usize,
    mut inner: F,
    monitor: &mut M,
) -> Result<SolveStats>
where
    HI: SolverSpace,
    LO: SolverSpace,
    B: Bridge<HI, LO>,
    F: FnMut(&mut LO, &mut LO::V, &LO::V) -> Result<SolveStats>,
    M: SolveMonitor<HI>,
{
    let mut stats = SolveStats::new();
    let bnorm = hi.norm2(b)?.sqrt();
    if bnorm == 0.0 {
        hi.zero(x);
        stats.converged = true;
        stats.residual = 0.0;
        return Ok(stats);
    }
    let mut r = hi.alloc();
    let mut e_hi = hi.alloc();
    let mut r_lo = lo.alloc();
    let mut e_lo = lo.alloc();
    for _cycle in 0..max_cycles {
        // True residual at high precision.
        hi.matvec(&mut r, x)?;
        stats.matvecs += 1;
        hi.xpay(b, -1.0, &mut r);
        let rnorm = hi.norm2(&r)?.sqrt();
        stats.residual = rnorm / bnorm;
        monitor.observe(stats.restarts, stats.residual)?;
        if stats.residual <= tol {
            stats.converged = true;
            return Ok(stats);
        }
        // Inner correction solve in low precision.
        bridge.down(&r, &mut r_lo);
        lo.zero(&mut e_lo);
        let inner_stats = inner(lo, &mut e_lo, &r_lo)?;
        stats.absorb(&inner_stats);
        stats.restarts += 1;
        bridge.up(&e_lo, &mut e_hi);
        hi.axpy(1.0, &e_hi, x);
        monitor.at_restart(hi, x, &stats, stats.residual)?;
    }
    // Final check.
    hi.matvec(&mut r, x)?;
    stats.matvecs += 1;
    hi.xpay(b, -1.0, &mut r);
    stats.residual = hi.norm2(&r)?.sqrt() / bnorm;
    stats.converged = stats.residual <= tol;
    if !stats.converged {
        return Err(Error::NoConvergence {
            solver: "defect_correction",
            iterations: stats.restarts,
            residual: stats.residual,
            target: tol,
        });
    }
    Ok(stats)
}

/// A shifted view of a space: `matvec = A + σ`.
pub struct ShiftedSpace<'a, S: SolverSpace> {
    /// The unshifted space.
    pub base: &'a mut S,
    /// The shift σ.
    pub sigma: f64,
}

impl<'a, S: SolverSpace> SolverSpace for ShiftedSpace<'a, S> {
    type V = S::V;

    fn alloc(&mut self) -> Self::V {
        self.base.alloc()
    }
    fn matvec(&mut self, out: &mut Self::V, x: &mut Self::V) -> Result<()> {
        self.base.matvec(out, x)?;
        let s = self.sigma;
        if s != 0.0 {
            self.base.axpy(s, x, out);
        }
        Ok(())
    }
    fn dot(&mut self, a: &Self::V, b: &Self::V) -> Result<Complex<f64>> {
        self.base.dot(a, b)
    }
    fn norm2(&mut self, a: &Self::V) -> Result<f64> {
        self.base.norm2(a)
    }
    fn copy(&mut self, d: &mut Self::V, s: &Self::V) {
        self.base.copy(d, s)
    }
    fn zero(&mut self, v: &mut Self::V) {
        self.base.zero(v)
    }
    fn axpy(&mut self, a: f64, x: &Self::V, y: &mut Self::V) {
        self.base.axpy(a, x, y)
    }
    fn caxpy(&mut self, a: Complex<f64>, x: &Self::V, y: &mut Self::V) {
        self.base.caxpy(a, x, y)
    }
    fn xpay(&mut self, x: &Self::V, a: f64, y: &mut Self::V) {
        self.base.xpay(x, a, y)
    }
    fn cxpay(&mut self, x: &Self::V, a: Complex<f64>, y: &mut Self::V) {
        self.base.cxpay(x, a, y)
    }
    fn scale(&mut self, v: &mut Self::V, a: f64) {
        self.base.scale(v, a)
    }
    fn quantize(&mut self, v: &mut Self::V) {
        self.base.quantize(v)
    }
}

/// §8.2 end-to-end: single-precision multi-shift CG for every shift, then
/// per-shift defect-corrected CG refinement to `tol` at high precision.
///
/// The initial multi-shift runs entirely in the low space at
/// `initial_tol`; refinement runs `defect_correction` per shift with CG
/// inner solves at `inner_tol`. (Half precision is *not* usable here —
/// "the solutions produced from the initial multi-shift solver would be
/// too inaccurate", §8.2 footnote 3.)
#[allow(clippy::too_many_arguments)]
pub fn multishift_refined<HI, LO, B>(
    hi: &mut HI,
    lo: &mut LO,
    bridge: &B,
    shifts: &[f64],
    b: &HI::V,
    tol: f64,
    initial_tol: f64,
    inner_tol: f64,
    maxiter: usize,
) -> Result<(Vec<HI::V>, SolveStats)>
where
    HI: SolverSpace,
    LO: SolverSpace,
    B: Bridge<HI, LO>,
{
    let mut stats = SolveStats::new();
    // Stage 1: low-precision multi-shift.
    let mut b_lo = lo.alloc();
    bridge.down(b, &mut b_lo);
    let MultishiftResult { solutions: lo_solutions, stats: ms_stats, .. } =
        multishift_cg(lo, shifts, &b_lo, initial_tol, maxiter)?;
    stats.absorb(&ms_stats);
    // Stage 2: per-shift sequential refinement.
    let mut out = Vec::with_capacity(shifts.len());
    for (i, &sigma) in shifts.iter().enumerate() {
        let mut x = hi.alloc();
        bridge.up(&lo_solutions[i], &mut x);
        let mut hi_shift = ShiftedSpace { base: hi, sigma };
        // Inner CG on the shifted low-precision operator.
        let refine = {
            let mut lo_view = ShiftedSpace { base: lo, sigma };
            defect_correction(
                &mut hi_shift,
                &mut lo_view,
                &ShiftedBridgeAdapter(bridge),
                &mut x,
                b,
                tol,
                maxiter,
                |space, e, r| cg(space, e, r, inner_tol, maxiter),
            )?
        };
        stats.absorb(&refine);
        stats.restarts += refine.restarts;
        out.push(x);
    }
    stats.converged = true;
    stats.residual = tol;
    Ok((out, stats))
}

/// Adapter making a `Bridge<HI, LO>` usable between the *shifted* views
/// of the same spaces (vector types are unchanged by shifting).
pub struct ShiftedBridgeAdapter<'b, B>(pub &'b B);

impl<'a, 'c, 'b, HI, LO, B> Bridge<ShiftedSpace<'a, HI>, ShiftedSpace<'c, LO>>
    for ShiftedBridgeAdapter<'b, B>
where
    HI: SolverSpace,
    LO: SolverSpace,
    B: Bridge<HI, LO>,
{
    fn down(&self, hi: &HI::V, lo: &mut LO::V) {
        self.0.down(hi, lo);
    }
    fn up(&self, lo: &LO::V, hi: &mut HI::V) {
        self.0.up(lo, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bicgstab::bicgstab;
    use crate::space::DenseSpace;

    fn rand_b(n: usize) -> Vec<Complex<f64>> {
        (0..n).map(|k| Complex::new((k as f64 * 0.5).sin(), (k as f64 * 1.7).cos())).collect()
    }

    /// A lossy bridge simulating f32 truncation on a dense space.
    struct TruncatingBridge;

    fn trunc(z: Complex<f64>) -> Complex<f64> {
        Complex::new(z.re as f32 as f64, z.im as f32 as f64)
    }

    impl Bridge<DenseSpace, DenseSpace> for TruncatingBridge {
        fn down(&self, hi: &Vec<Complex<f64>>, lo: &mut Vec<Complex<f64>>) {
            lo.clear();
            lo.extend(hi.iter().map(|&z| trunc(z)));
        }
        fn up(&self, lo: &Vec<Complex<f64>>, hi: &mut Vec<Complex<f64>>) {
            hi.clear();
            hi.extend_from_slice(lo);
        }
    }

    #[test]
    fn defect_correction_reaches_beyond_inner_precision() {
        let n = 20;
        let mut hi = DenseSpace::random_general(n, 1);
        let mut lo = DenseSpace::random_general(n, 1); // same matrix
        let b = rand_b(n);
        let mut x = hi.alloc();
        // Inner tolerance only 1e-4, outer demands 1e-12.
        let stats = defect_correction(
            &mut hi,
            &mut lo,
            &TruncatingBridge,
            &mut x,
            &b,
            1e-12,
            50,
            |space, e, r| bicgstab(space, e, r, 1e-4, 500),
        )
        .unwrap();
        assert!(stats.converged);
        assert!(stats.restarts >= 2, "should need multiple cycles");
        let mut ax = hi.alloc();
        let mut xc = x.clone();
        hi.matvec(&mut ax, &mut xc).unwrap();
        hi.xpay(&b, -1.0, &mut ax);
        let res = (hi.norm2(&ax).unwrap() / hi.norm2(&b).unwrap()).sqrt();
        assert!(res < 1e-11, "true residual {res}");
    }

    #[test]
    fn shifted_space_matches_manual_shift() {
        let n = 8;
        let mut s = DenseSpace::random_hpd(n, 2);
        let mut x = rand_b(n);
        let mut want = s.alloc();
        let mut xc = x.clone();
        s.matvec(&mut want, &mut xc).unwrap();
        s.axpy(2.5, &x, &mut want);
        let mut shifted = ShiftedSpace { base: &mut s, sigma: 2.5 };
        let mut got = shifted.alloc();
        shifted.matvec(&mut got, &mut x).unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert!((*g - *w).abs() < 1e-13);
        }
    }

    #[test]
    fn multishift_refined_end_to_end() {
        let n = 16;
        let shifts = [0.0, 0.5, 2.0];
        let mut hi = DenseSpace::random_hpd(n, 3);
        let mut lo = DenseSpace::random_hpd(n, 3);
        let b = rand_b(n);
        let (solutions, stats) = multishift_refined(
            &mut hi,
            &mut lo,
            &TruncatingBridge,
            &shifts,
            &b,
            1e-11,
            1e-4,
            1e-4,
            1000,
        )
        .unwrap();
        assert!(stats.converged);
        for (i, &sigma) in shifts.iter().enumerate() {
            let mut shifted = ShiftedSpace { base: &mut hi, sigma };
            let mut ax = shifted.alloc();
            let mut xc = solutions[i].clone();
            shifted.matvec(&mut ax, &mut xc).unwrap();
            shifted.xpay(&b, -1.0, &mut ax);
            let res = (shifted.norm2(&ax).unwrap() / shifted.norm2(&b).unwrap()).sqrt();
            assert!(res < 1e-10, "shift {sigma}: residual {res}");
        }
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let mut hi = DenseSpace::random_hpd(6, 4);
        let mut lo = DenseSpace::random_hpd(6, 4);
        let b = hi.alloc();
        let mut x = hi.alloc();
        x[0] = Complex::one();
        let stats = defect_correction(
            &mut hi,
            &mut lo,
            &TruncatingBridge,
            &mut x,
            &b,
            1e-12,
            5,
            |space, e, r| bicgstab(space, e, r, 1e-4, 100),
        )
        .unwrap();
        assert!(stats.converged);
        assert_eq!(hi.norm2(&x).unwrap(), 0.0);
    }
}

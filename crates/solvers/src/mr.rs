//! Minimum residual (MR) iteration.
//!
//! The workhorse *inside* Schwarz blocks (§8.1): cheap, no long
//! recurrences, needs only "a small number of steps ... to achieve
//! satisfactory accuracy". Also usable as a standalone smoother.

use crate::space::{SolveStats, SolverSpace};
use lqcd_util::Result;

/// Run `steps` MR iterations on `A x = b` with relaxation `omega`
/// (QUDA defaults to ω = 1): `x ← x + ω·(⟨Ar, r⟩/‖Ar‖²)·r`.
///
/// Runs a *fixed* number of steps with no convergence test — exactly how
/// the Schwarz preconditioner uses it. Returns the stats (residual left
/// unset unless the caller computes it).
pub fn mr<S: SolverSpace>(
    space: &mut S,
    x: &mut S::V,
    b: &S::V,
    steps: usize,
    omega: f64,
) -> Result<SolveStats> {
    let mut stats = SolveStats::new();
    let mut r = space.alloc();
    space.matvec(&mut r, x)?;
    stats.matvecs += 1;
    space.xpay(b, -1.0, &mut r);
    let mut ar = space.alloc();
    for _ in 0..steps {
        space.matvec(&mut ar, &mut r)?;
        stats.matvecs += 1;
        let num = space.dot(&ar, &r)?;
        let den = space.norm2(&ar)?;
        if den <= f64::MIN_POSITIVE {
            break; // residual (numerically) zero: nothing left to minimize
        }
        let alpha = num.scale(omega / den);
        if !alpha.is_finite() {
            break; // denormal-range breakdown; x is already converged
        }
        space.caxpy(alpha, &r, x);
        // r −= α·Ar.
        space.caxpy(-alpha, &ar, &mut r);
        stats.iterations += 1;
    }
    stats.converged = true; // fixed-step smoother: "done" by definition
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DenseSpace;
    use lqcd_util::Complex;

    #[allow(clippy::ptr_arg)]
    fn resid(space: &mut DenseSpace, x: &Vec<Complex<f64>>, b: &Vec<Complex<f64>>) -> f64 {
        let mut ax = space.alloc();
        let mut xc = x.clone();
        space.matvec(&mut ax, &mut xc).unwrap();
        space.xpay(b, -1.0, &mut ax);
        (space.norm2(&ax).unwrap() / space.norm2(b).unwrap()).sqrt()
    }

    #[test]
    fn each_step_reduces_the_residual() {
        let mut s = DenseSpace::random_general(16, 1);
        let b: Vec<Complex<f64>> = (0..16).map(|k| Complex::new((k as f64).cos(), 0.5)).collect();
        let mut x = s.alloc();
        let mut last = 1.0;
        for _ in 0..5 {
            mr(&mut s, &mut x, &b, 1, 1.0).unwrap();
            let r = resid(&mut s, &x, &b);
            assert!(r < last, "MR step increased residual: {r} ≥ {last}");
            last = r;
        }
        assert!(last < 0.5, "five MR steps should reduce noticeably, got {last}");
    }

    #[test]
    fn many_steps_solve_well_conditioned_system() {
        let mut s = DenseSpace::random_general(12, 2);
        let b: Vec<Complex<f64>> =
            (0..12).map(|k| Complex::from_re(1.0 / (k + 1) as f64)).collect();
        let mut x = s.alloc();
        mr(&mut s, &mut x, &b, 200, 1.0).unwrap();
        assert!(resid(&mut s, &x, &b) < 1e-8);
    }

    #[test]
    fn underrelaxation_still_converges() {
        let mut s = DenseSpace::random_general(12, 3);
        let b: Vec<Complex<f64>> = (0..12).map(|k| Complex::from_re((k as f64).sin())).collect();
        let mut x = s.alloc();
        mr(&mut s, &mut x, &b, 600, 0.8).unwrap();
        let r = resid(&mut s, &x, &b);
        assert!(r < 1e-5, "residual after 600 underrelaxed MR steps: {r}");
    }

    #[test]
    fn exact_start_is_stable() {
        let mut s = DenseSpace::random_general(8, 4);
        let b = s.alloc(); // zero rhs
        let mut x = s.alloc(); // zero start: r = 0
        let st = mr(&mut s, &mut x, &b, 5, 1.0).unwrap();
        assert_eq!(s.norm2(&x).unwrap(), 0.0);
        // Breaks out immediately on the zero residual.
        assert_eq!(st.iterations, 0);
    }
}

//! Lanczos estimation of extremal eigenvalues of Hermitian operators.
//!
//! §3.1: "the quark mass controls the condition number of the matrix,
//! and hence the convergence of such iterative solvers". This module
//! measures that statement on our operators: a simple Lanczos iteration
//! with full reorthogonalization estimates `λ_min`/`λ_max` of Hermitian
//! positive-definite systems (the staggered normal operator), giving the
//! condition number `κ = λ_max/λ_min` that CG's convergence rate
//! `(√κ−1)/(√κ+1)` is governed by.

use crate::space::SolverSpace;
use lqcd_util::{Error, Result};

/// Result of a Lanczos run.
#[derive(Debug, Clone)]
pub struct Spectrum {
    /// Estimated smallest eigenvalue.
    pub lambda_min: f64,
    /// Estimated largest eigenvalue.
    pub lambda_max: f64,
    /// Krylov dimension used.
    pub steps: usize,
}

impl Spectrum {
    /// Condition number estimate.
    pub fn kappa(&self) -> f64 {
        self.lambda_max / self.lambda_min
    }

    /// CG asymptotic convergence factor `(√κ−1)/(√κ+1)`.
    pub fn cg_rate(&self) -> f64 {
        let s = self.kappa().sqrt();
        (s - 1.0) / (s + 1.0)
    }
}

/// Run `steps` Lanczos iterations on the Hermitian operator of `space`
/// starting from `seed_vector`, with full reorthogonalization (stable at
/// the modest Krylov sizes we use). Returns the extremal Ritz values.
pub fn lanczos_extremes<S: SolverSpace>(
    space: &mut S,
    seed_vector: &S::V,
    steps: usize,
) -> Result<Spectrum> {
    if steps < 2 {
        return Err(Error::Config("lanczos needs at least 2 steps".into()));
    }
    let norm = space.norm2(seed_vector)?.sqrt();
    if norm == 0.0 {
        return Err(Error::Config("lanczos seed vector is zero".into()));
    }
    // Basis and tridiagonal coefficients.
    let mut basis: Vec<S::V> = Vec::with_capacity(steps);
    let mut alphas = Vec::with_capacity(steps);
    let mut betas: Vec<f64> = Vec::with_capacity(steps);
    let mut q = space.alloc();
    space.copy(&mut q, seed_vector);
    space.scale(&mut q, 1.0 / norm);
    let mut w = space.alloc();
    for j in 0..steps {
        // w = A q_j.
        {
            let mut qq = space.alloc();
            space.copy(&mut qq, &q);
            space.matvec(&mut w, &mut qq)?;
        }
        let alpha = space.dot(&q, &w)?.re;
        alphas.push(alpha);
        // w −= α q_j + β_{j−1} q_{j−1}, then full reorthogonalization.
        space.axpy(-alpha, &q, &mut w);
        if let (Some(&beta), Some(prev)) = (betas.last(), basis.last()) {
            space.axpy(-beta, prev, &mut w);
        }
        basis.push({
            let mut kept = space.alloc();
            space.copy(&mut kept, &q);
            kept
        });
        for v in &basis {
            let c = space.dot(v, &w)?;
            space.caxpy(-c, v, &mut w);
        }
        let beta = space.norm2(&w)?.sqrt();
        if j + 1 < steps {
            if beta < 1e-14 {
                // Krylov space exhausted: spectrum fully resolved.
                break;
            }
            betas.push(beta);
            space.copy(&mut q, &w);
            space.scale(&mut q, 1.0 / beta);
        }
    }
    // Extremal eigenvalues of the symmetric tridiagonal (bisection via
    // Sturm sequences — robust and dependency-free).
    let (lo, hi) = tridiag_extremes(&alphas, &betas);
    Ok(Spectrum { lambda_min: lo, lambda_max: hi, steps: alphas.len() })
}

/// Number of eigenvalues of the tridiagonal `(alphas, betas)` smaller
/// than `x` (Sturm sequence count).
fn sturm_count(alphas: &[f64], betas: &[f64], x: f64) -> usize {
    let mut count = 0usize;
    let mut d = 1.0f64;
    for i in 0..alphas.len() {
        let b2 = if i == 0 { 0.0 } else { betas[i - 1] * betas[i - 1] };
        d = alphas[i] - x - b2 / if d == 0.0 { f64::MIN_POSITIVE } else { d };
        if d < 0.0 {
            count += 1;
        }
    }
    count
}

/// Smallest and largest eigenvalues of a symmetric tridiagonal matrix by
/// bisection.
fn tridiag_extremes(alphas: &[f64], betas: &[f64]) -> (f64, f64) {
    let n = alphas.len();
    // Gershgorin bounds.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..n {
        let r = if i == 0 { 0.0 } else { betas[i - 1].abs() }
            + if i + 1 < n { betas.get(i).map_or(0.0, |b| b.abs()) } else { 0.0 };
        lo = lo.min(alphas[i] - r);
        hi = hi.max(alphas[i] + r);
    }
    let bisect = |k: usize| -> f64 {
        // Find x with exactly k eigenvalues below it ⇒ the (k+1)-th
        // eigenvalue is the limit point.
        let (mut a, mut b) = (lo, hi);
        for _ in 0..120 {
            let m = 0.5 * (a + b);
            if sturm_count(alphas, betas, m) > k {
                b = m;
            } else {
                a = m;
            }
        }
        0.5 * (a + b)
    };
    (bisect(0), bisect(n - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DenseSpace;
    use lqcd_util::Complex;

    #[test]
    fn sturm_counts_diagonal_matrix() {
        let alphas = [1.0, 2.0, 5.0];
        let betas: [f64; 2] = [0.0, 0.0];
        assert_eq!(sturm_count(&alphas, &betas, 0.5), 0);
        assert_eq!(sturm_count(&alphas, &betas, 1.5), 1);
        assert_eq!(sturm_count(&alphas, &betas, 3.0), 2);
        assert_eq!(sturm_count(&alphas, &betas, 6.0), 3);
    }

    #[test]
    fn recovers_known_diagonal_spectrum() {
        // Diagonal matrix with known eigenvalues 1..n.
        let n = 12;
        let mut a = vec![vec![Complex::<f64>::zero(); n]; n];
        for (i, row) in a.iter_mut().enumerate() {
            row[i] = Complex::from_re((i + 1) as f64);
        }
        let mut s = DenseSpace::new(a);
        // A seed with weight on every eigenvector.
        let seed: Vec<Complex<f64>> =
            (0..n).map(|k| Complex::from_re(1.0 + k as f64 * 0.1)).collect();
        let sp = lanczos_extremes(&mut s, &seed, n).unwrap();
        assert!((sp.lambda_min - 1.0).abs() < 1e-8, "λmin {}", sp.lambda_min);
        assert!((sp.lambda_max - n as f64).abs() < 1e-8, "λmax {}", sp.lambda_max);
        assert!((sp.kappa() - n as f64).abs() < 1e-6);
    }

    #[test]
    fn partial_krylov_brackets_the_spectrum() {
        let mut s = DenseSpace::random_hpd(30, 7);
        let seed: Vec<Complex<f64>> =
            (0..30).map(|k| Complex::new((k as f64).sin() + 1.5, 0.3)).collect();
        let sp_small = lanczos_extremes(&mut s, &seed, 10).unwrap();
        let sp_full = lanczos_extremes(&mut s, &seed, 30).unwrap();
        // Ritz values from a smaller Krylov space lie inside the full
        // spectrum.
        assert!(sp_small.lambda_min >= sp_full.lambda_min - 1e-8);
        assert!(sp_small.lambda_max <= sp_full.lambda_max + 1e-8);
        assert!(sp_full.kappa() >= 1.0);
        assert!(sp_full.cg_rate() < 1.0 && sp_full.cg_rate() >= 0.0);
    }

    #[test]
    fn rejects_degenerate_input() {
        let mut s = DenseSpace::random_hpd(4, 1);
        let zero = s.alloc();
        assert!(lanczos_extremes(&mut s, &zero, 4).is_err());
        let seed: Vec<Complex<f64>> = vec![Complex::one(); 4];
        assert!(lanczos_extremes(&mut s, &seed, 1).is_err());
    }
}

//! [`SolverSpace`] implementations for the distributed lattice operators.
//!
//! * [`EoWilsonSpace`] — the even-odd preconditioned Wilson-clover
//!   operator `M̂_oo` (what BiCGstab and GCR-DD solve in §9.1);
//! * [`StaggeredNormalSpace`] — the parity-decoupled staggered normal
//!   operator `(M†M)_ee` (what multi-shift CG solves in §9.2);
//! * [`FieldBridge`] — the double↔single precision bridge for the
//!   mixed-precision drivers.
//!
//! Reductions compute rank-local partials in `f64` and combine them with
//! one allreduce; the Dirichlet (Schwarz-block) paths use local partials
//! only.

use crate::mixed::Bridge;
use crate::space::{DirichletMatvec, SolverSpace};
use lqcd_comms::Communicator;
use lqcd_dirac::staggered::StaggeredField;
use lqcd_dirac::wilson::SpinorField;
use lqcd_dirac::{BoundaryMode, StaggeredOp, WilsonCloverOp};
use lqcd_field::half::Quantize;
use lqcd_field::{blas, LatticeField};
use lqcd_lattice::Parity;
use lqcd_util::{Complex, Real, Result};

/// Shared BLAS delegation for spaces whose vectors are lattice fields.
macro_rules! field_space_blas {
    ($site:ident) => {
        fn dot(&mut self, a: &Self::V, b: &Self::V) -> Result<Complex<f64>> {
            let local = blas::cdot_local(a, b);
            let (re, im) = self.comm.sum_complex(local.re, local.im)?;
            Ok(Complex::new(re, im))
        }

        fn norm2(&mut self, a: &Self::V) -> Result<f64> {
            self.comm.sum_scalar(blas::norm2_local(a))
        }

        fn copy(&mut self, dst: &mut Self::V, src: &Self::V) {
            blas::copy(dst, src);
        }

        fn zero(&mut self, v: &mut Self::V) {
            blas::zero(v);
        }

        fn axpy(&mut self, a: f64, x: &Self::V, y: &mut Self::V) {
            blas::axpy(R::from_f64(a), x, y);
        }

        fn caxpy(&mut self, a: Complex<f64>, x: &Self::V, y: &mut Self::V) {
            blas::caxpy(a.cast::<R>(), x, y);
        }

        fn xpay(&mut self, x: &Self::V, a: f64, y: &mut Self::V) {
            blas::xpay(x, R::from_f64(a), y);
        }

        fn cxpay(&mut self, x: &Self::V, a: Complex<f64>, y: &mut Self::V) {
            blas::cxpay(x, a.cast::<R>(), y);
        }

        fn scale(&mut self, v: &mut Self::V, a: f64) {
            blas::scale(v, R::from_f64(a));
        }

        fn quantize(&mut self, v: &mut Self::V) {
            if self.half_storage {
                <$site<R> as Quantize<R>>::quantize_in_place(v);
            }
        }

        fn matvec_count(&self) -> usize {
            self.matvecs
        }
    };
}

/// The even-odd preconditioned Wilson-clover system
/// `M̂ x = T_oo x − (1/16) D̂_oe T_ee⁻¹ D̂_eo x` on the odd parity.
pub struct EoWilsonSpace<R: Real, C: Communicator> {
    /// The bound operator (must have its T-inverse built).
    pub op: WilsonCloverOp<R>,
    /// This rank's communicator.
    pub comm: C,
    /// Store Krylov vectors in 16-bit fixed point when asked to quantize
    /// (meaningful at single precision only).
    pub half_storage: bool,
    scratch_e: SpinorField<R>,
    scratch_e2: SpinorField<R>,
    matvecs: usize,
    dmatvecs: usize,
}

impl<R: Real, C: Communicator> EoWilsonSpace<R, C> {
    /// Wrap an operator (builds the `T⁻¹` tables if missing).
    pub fn new(mut op: WilsonCloverOp<R>, comm: C) -> Result<Self> {
        if op.t_inv.is_none() {
            op.build_t_inverse()?;
        }
        let scratch_e = op.alloc(Parity::Even);
        let scratch_e2 = op.alloc(Parity::Even);
        Ok(Self { op, comm, half_storage: false, scratch_e, scratch_e2, matvecs: 0, dmatvecs: 0 })
    }

    /// Enable half-precision Krylov storage semantics.
    pub fn with_half_storage(mut self) -> Self {
        self.half_storage = true;
        self
    }

    /// Dirichlet matvec count (preconditioner work).
    pub fn dirichlet_matvecs(&self) -> usize {
        self.dmatvecs
    }
}

impl<R: Real, C: Communicator> SolverSpace for EoWilsonSpace<R, C>
where
    lqcd_su3::WilsonSpinor<R>: Quantize<R>,
{
    type V = SpinorField<R>;

    fn alloc(&mut self) -> Self::V {
        self.op.alloc(Parity::Odd)
    }

    fn matvec(&mut self, out: &mut Self::V, x: &mut Self::V) -> Result<()> {
        self.matvecs += 1;
        self.op.apply_eo_prec(
            out,
            x,
            &mut self.scratch_e,
            &mut self.scratch_e2,
            &mut self.comm,
            BoundaryMode::Full,
        )
    }

    field_space_blas!(WilsonSpinorAlias);
}

use lqcd_su3::ColorVector as ColorVectorAlias;
/// Alias so the macro can name the site type generically.
use lqcd_su3::WilsonSpinor as WilsonSpinorAlias;

impl<R: Real, C: Communicator> DirichletMatvec for EoWilsonSpace<R, C>
where
    lqcd_su3::WilsonSpinor<R>: Quantize<R>,
{
    fn matvec_dirichlet(&mut self, out: &mut Self::V, x: &mut Self::V) -> Result<()> {
        self.dmatvecs += 1;
        self.op.apply_eo_prec(
            out,
            x,
            &mut self.scratch_e,
            &mut self.scratch_e2,
            &mut self.comm,
            BoundaryMode::Dirichlet,
        )
    }

    fn dot_local(&mut self, a: &Self::V, b: &Self::V) -> Complex<f64> {
        blas::cdot_local(a, b)
    }

    fn norm2_local(&mut self, a: &Self::V) -> f64 {
        blas::norm2_local(a)
    }

    fn dirichlet_count(&self) -> usize {
        self.dmatvecs
    }
}

/// The staggered normal system `(M†M)_ee x = m² x − (1/4)(D_eo D_oe) x`
/// on the even parity.
pub struct StaggeredNormalSpace<R: Real, C: Communicator> {
    /// The bound operator.
    pub op: StaggeredOp<R>,
    /// This rank's communicator.
    pub comm: C,
    /// Half-precision storage semantics for `quantize`.
    pub half_storage: bool,
    scratch_o: StaggeredField<R>,
    matvecs: usize,
    dmatvecs: usize,
}

impl<R: Real, C: Communicator> StaggeredNormalSpace<R, C> {
    /// Wrap an operator.
    pub fn new(op: StaggeredOp<R>, comm: C) -> Self {
        let scratch_o = op.alloc(Parity::Odd);
        Self { op, comm, half_storage: false, scratch_o, matvecs: 0, dmatvecs: 0 }
    }
}

impl<R: Real, C: Communicator> SolverSpace for StaggeredNormalSpace<R, C>
where
    lqcd_su3::ColorVector<R>: Quantize<R>,
{
    type V = StaggeredField<R>;

    fn alloc(&mut self) -> Self::V {
        self.op.alloc(Parity::Even)
    }

    fn matvec(&mut self, out: &mut Self::V, x: &mut Self::V) -> Result<()> {
        self.matvecs += 1;
        self.op.apply_normal(out, x, &mut self.scratch_o, &mut self.comm, BoundaryMode::Full)
    }

    field_space_blas!(ColorVectorAlias);
}

impl<R: Real, C: Communicator> DirichletMatvec for StaggeredNormalSpace<R, C>
where
    lqcd_su3::ColorVector<R>: Quantize<R>,
{
    fn matvec_dirichlet(&mut self, out: &mut Self::V, x: &mut Self::V) -> Result<()> {
        self.dmatvecs += 1;
        self.op.apply_normal(out, x, &mut self.scratch_o, &mut self.comm, BoundaryMode::Dirichlet)
    }

    fn dot_local(&mut self, a: &Self::V, b: &Self::V) -> Complex<f64> {
        blas::cdot_local(a, b)
    }

    fn norm2_local(&mut self, a: &Self::V) -> f64 {
        blas::norm2_local(a)
    }

    fn dirichlet_count(&self) -> usize {
        self.dmatvecs
    }
}

/// The *unpreconditioned* Wilson-clover system on the full lattice
/// (both parities). Exists to quantify what even-odd preconditioning
/// buys — §3.1: "Even-odd (also known as red-black) preconditioning is
/// almost always used to accelerate the solution finding process".
pub struct FullWilsonSpace<R: Real, C: Communicator> {
    /// The bound operator.
    pub op: WilsonCloverOp<R>,
    /// This rank's communicator.
    pub comm: C,
    matvecs: usize,
}

impl<R: Real, C: Communicator> FullWilsonSpace<R, C> {
    /// Wrap an operator.
    pub fn new(op: WilsonCloverOp<R>, comm: C) -> Self {
        Self { op, comm, matvecs: 0 }
    }
}

impl<R: Real, C: Communicator> SolverSpace for FullWilsonSpace<R, C> {
    /// `(even, odd)` field pair.
    type V = (SpinorField<R>, SpinorField<R>);

    fn alloc(&mut self) -> Self::V {
        (self.op.alloc(Parity::Even), self.op.alloc(Parity::Odd))
    }

    fn matvec(&mut self, out: &mut Self::V, x: &mut Self::V) -> Result<()> {
        self.matvecs += 1;
        self.op.apply_full(
            &mut out.0,
            &mut out.1,
            &mut x.0,
            &mut x.1,
            &mut self.comm,
            BoundaryMode::Full,
        )
    }

    fn dot(&mut self, a: &Self::V, b: &Self::V) -> Result<Complex<f64>> {
        let local = blas::cdot_local(&a.0, &b.0) + blas::cdot_local(&a.1, &b.1);
        let (re, im) = self.comm.sum_complex(local.re, local.im)?;
        Ok(Complex::new(re, im))
    }

    fn norm2(&mut self, a: &Self::V) -> Result<f64> {
        self.comm.sum_scalar(blas::norm2_local(&a.0) + blas::norm2_local(&a.1))
    }

    fn copy(&mut self, dst: &mut Self::V, src: &Self::V) {
        blas::copy(&mut dst.0, &src.0);
        blas::copy(&mut dst.1, &src.1);
    }

    fn zero(&mut self, v: &mut Self::V) {
        blas::zero(&mut v.0);
        blas::zero(&mut v.1);
    }

    fn axpy(&mut self, a: f64, x: &Self::V, y: &mut Self::V) {
        blas::axpy(R::from_f64(a), &x.0, &mut y.0);
        blas::axpy(R::from_f64(a), &x.1, &mut y.1);
    }

    fn caxpy(&mut self, a: Complex<f64>, x: &Self::V, y: &mut Self::V) {
        blas::caxpy(a.cast::<R>(), &x.0, &mut y.0);
        blas::caxpy(a.cast::<R>(), &x.1, &mut y.1);
    }

    fn xpay(&mut self, x: &Self::V, a: f64, y: &mut Self::V) {
        blas::xpay(&x.0, R::from_f64(a), &mut y.0);
        blas::xpay(&x.1, R::from_f64(a), &mut y.1);
    }

    fn cxpay(&mut self, x: &Self::V, a: Complex<f64>, y: &mut Self::V) {
        blas::cxpay(&x.0, a.cast::<R>(), &mut y.0);
        blas::cxpay(&x.1, a.cast::<R>(), &mut y.1);
    }

    fn scale(&mut self, v: &mut Self::V, a: f64) {
        blas::scale(&mut v.0, R::from_f64(a));
        blas::scale(&mut v.1, R::from_f64(a));
    }

    fn matvec_count(&self) -> usize {
        self.matvecs
    }
}

impl<R: Real, C: Communicator> crate::cgnr::AdjointMatvec for EoWilsonSpace<R, C>
where
    lqcd_su3::WilsonSpinor<R>: Quantize<R>,
{
    /// `M̂† = γ₅ M̂ γ₅` (γ₅-hermiticity of the Schur complement; the
    /// clover term is chirality-block-diagonal so it commutes with γ₅).
    fn matvec_adj(&mut self, out: &mut Self::V, x: &mut Self::V) -> Result<()> {
        lqcd_dirac::wilson::gamma5_in_place(x);
        let status = self.matvec(out, x);
        // Restore the caller's vector regardless of the matvec outcome.
        lqcd_dirac::wilson::gamma5_in_place(x);
        status?;
        lqcd_dirac::wilson::gamma5_in_place(out);
        Ok(())
    }
}

/// The double↔single bridge for lattice fields.
pub struct FieldBridge;

impl<C1, C2> Bridge<EoWilsonSpace<f64, C1>, EoWilsonSpace<f32, C2>> for FieldBridge
where
    C1: Communicator,
    C2: Communicator,
{
    fn down(&self, hi: &SpinorField<f64>, lo: &mut SpinorField<f32>) {
        hi.convert_body_into::<f32>(lo);
    }
    fn up(&self, lo: &SpinorField<f32>, hi: &mut SpinorField<f64>) {
        lo.convert_body_into::<f64>(hi);
    }
}

impl<C1, C2> Bridge<StaggeredNormalSpace<f64, C1>, StaggeredNormalSpace<f32, C2>> for FieldBridge
where
    C1: Communicator,
    C2: Communicator,
{
    fn down(&self, hi: &StaggeredField<f64>, lo: &mut StaggeredField<f32>) {
        hi.convert_body_into::<f32>(lo);
    }
    fn up(&self, lo: &StaggeredField<f32>, hi: &mut StaggeredField<f64>) {
        lo.convert_body_into::<f64>(hi);
    }
}

/// Cast a Wilson-clover operator to another precision (gauge, clover and
/// `T⁻¹` fields converted with ghosts intact).
pub fn cast_wilson_op<R2: Real>(op: &WilsonCloverOp<f64>) -> Result<WilsonCloverOp<R2>>
where
    lqcd_su3::Su3<f64>:
        lqcd_field::CastSite<f64, R2> + lqcd_field::CastSiteAny<R2, Target = lqcd_su3::Su3<R2>>,
    lqcd_su3::CloverSite<f64>: lqcd_field::CastSite<f64, R2>
        + lqcd_field::CastSiteAny<R2, Target = lqcd_su3::CloverSite<R2>>,
{
    let gauge = op.gauge.cast::<R2>();
    let clover = op.clover.as_ref().map(|c| [c[0].cast_all::<R2>(), c[1].cast_all::<R2>()]);
    let mut out = WilsonCloverOp::new(gauge, clover, op.mass)?;
    out.build_t_inverse()?;
    Ok(out)
}

/// Cast a staggered operator to another precision.
pub fn cast_staggered_op<R2: Real>(op: &StaggeredOp<f64>) -> Result<StaggeredOp<R2>>
where
    lqcd_su3::Su3<f64>:
        lqcd_field::CastSite<f64, R2> + lqcd_field::CastSiteAny<R2, Target = lqcd_su3::Su3<R2>>,
{
    StaggeredOp::new(op.fat.cast::<R2>(), op.long.cast::<R2>(), op.mass)
}

/// Suppress an unused-import lint for the alias trick above.
#[allow(unused)]
fn _alias_check<R: Real>(_: Option<(WilsonSpinorAlias<R>, ColorVectorAlias<R>)>) {}

#[allow(unused_imports)]
use lqcd_lattice as _lattice_field_unused;

#[allow(dead_code)]
fn _keep_latticefield_import<R: Real>(_: Option<LatticeField<R, WilsonSpinorAlias<R>>>) {}

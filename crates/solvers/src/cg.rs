//! Conjugate gradients for Hermitian positive-definite systems.

use crate::space::{SolveStats, SolverSpace};
use lqcd_util::{BreakdownKind, Error, Result};

/// Solve `A x = b` by CG to relative residual `tol`, starting from the
/// provided `x` (which may be nonzero). Fails with
/// [`Error::NoConvergence`] after `maxiter` iterations.
pub fn cg<S: SolverSpace>(
    space: &mut S,
    x: &mut S::V,
    b: &S::V,
    tol: f64,
    maxiter: usize,
) -> Result<SolveStats> {
    let mut stats = SolveStats::new();
    let bnorm2 = space.norm2(b)?;
    if bnorm2 == 0.0 {
        space.zero(x);
        stats.converged = true;
        stats.residual = 0.0;
        return Ok(stats);
    }
    // r = b − A x.
    let mut r = space.alloc();
    space.matvec(&mut r, x)?;
    stats.matvecs += 1;
    space.xpay(b, -1.0, &mut r);
    let mut p = space.alloc();
    space.copy(&mut p, &r);
    let mut ap = space.alloc();
    let mut rr = space.norm2(&r)?;
    let target2 = tol * tol * bnorm2;
    while stats.iterations < maxiter {
        if rr <= target2 {
            stats.converged = true;
            break;
        }
        space.matvec(&mut ap, &mut p)?;
        stats.matvecs += 1;
        let pap = space.dot(&p, &ap)?.re;
        if pap <= 0.0 {
            return Err(Error::Breakdown {
                solver: "cg",
                kind: BreakdownKind::ZeroPivot,
                detail: format!("⟨p, Ap⟩ = {pap} not positive (operator not HPD?)"),
            });
        }
        let alpha = rr / pap;
        space.axpy(alpha, &p, x);
        space.axpy(-alpha, &ap, &mut r);
        let rr_new = space.norm2(&r)?;
        let beta = rr_new / rr;
        space.xpay(&r, beta, &mut p);
        rr = rr_new;
        stats.iterations += 1;
    }
    stats.residual = (rr / bnorm2).sqrt();
    if rr <= target2 {
        stats.converged = true;
    }
    if !stats.converged {
        return Err(Error::NoConvergence {
            solver: "cg",
            iterations: stats.iterations,
            residual: stats.residual,
            target: tol,
        });
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DenseSpace;
    use lqcd_util::Complex;

    fn rand_b(n: usize) -> Vec<Complex<f64>> {
        (0..n).map(|k| Complex::new((k as f64 * 0.7).sin(), (k as f64 * 1.3).cos())).collect()
    }

    #[test]
    fn solves_hpd_system() {
        let mut s = DenseSpace::random_hpd(24, 1);
        let b = rand_b(24);
        let mut x = s.alloc();
        let stats = cg(&mut s, &mut x, &b, 1e-10, 200).unwrap();
        assert!(stats.converged);
        // Verify the true residual.
        let mut ax = s.alloc();
        s.matvec(&mut ax, &mut x).unwrap();
        s.xpay(&b, -1.0, &mut ax);
        let res = (s.norm2(&ax).unwrap() / s.norm2(&b).unwrap()).sqrt();
        assert!(res < 1e-9, "true residual {res}");
    }

    #[test]
    fn warm_start_converges_faster() {
        let mut s = DenseSpace::random_hpd(24, 2);
        let b = rand_b(24);
        let mut x = s.alloc();
        let cold = cg(&mut s, &mut x, &b, 1e-10, 200).unwrap();
        // Restart from the solution: should converge in ~0 iterations.
        let warm = cg(&mut s, &mut x, &b, 1e-10, 200).unwrap();
        assert!(warm.iterations <= 1, "warm start took {}", warm.iterations);
        assert!(cold.iterations > warm.iterations);
    }

    #[test]
    fn zero_rhs_gives_zero_solution() {
        let mut s = DenseSpace::random_hpd(8, 3);
        let b = s.alloc();
        let mut x = s.alloc();
        x[0] = Complex::one();
        let stats = cg(&mut s, &mut x, &b, 1e-12, 10).unwrap();
        assert!(stats.converged);
        assert_eq!(s.norm2(&x).unwrap(), 0.0);
    }

    #[test]
    fn iteration_budget_exhaustion_errors() {
        let mut s = DenseSpace::random_hpd(32, 4);
        let b = rand_b(32);
        let mut x = s.alloc();
        let err = cg(&mut s, &mut x, &b, 1e-14, 1).unwrap_err();
        assert!(matches!(err, Error::NoConvergence { solver: "cg", .. }));
    }

    #[test]
    fn non_hpd_operator_breaks_down() {
        // A negative-definite matrix makes ⟨p, Ap⟩ < 0 on the first step.
        let mut s = DenseSpace::random_hpd(8, 5);
        for row in &mut s.a {
            for e in row.iter_mut() {
                *e = -*e;
            }
        }
        let b = rand_b(8);
        let mut x = s.alloc();
        let err = cg(&mut s, &mut x, &b, 1e-10, 50).unwrap_err();
        assert!(matches!(err, Error::Breakdown { solver: "cg", .. }));
    }
}

//! Chaos suite at the solver level: a distributed Wilson GCR-DD solve
//! under injected comm faults must either converge to the bit-identical
//! fault-free answer (the ARQ layer absorbs the fault) or return a clean
//! structured error (corruption surfaces as a breakdown, loss without
//! retries as a timeout) — never hang, never silently corrupt.

use lqcd_comms::{
    run_world_fallible, CommConfig, Communicator, FaultPlan, FaultRule, FaultyComm, MsgClass,
    ThreadedComm,
};
use lqcd_dirac::{WilsonCloverOp, WILSON_DEPTH};
use lqcd_gauge::clover_build::build_clover_field;
use lqcd_gauge::field::GaugeStart;
use lqcd_gauge::GaugeField;
use lqcd_lattice::{Dims, FaceGeometry, Parity, ProcessGrid, SubLattice};
use lqcd_solvers::spaces::EoWilsonSpace;
use lqcd_solvers::{gcr, GcrParams, SchwarzMR, SolveStats, SolverSpace};
use lqcd_su3::WilsonSpinor;
use lqcd_util::rng::SeedTree;
use lqcd_util::{Error, Result};
use std::sync::Arc;
use std::time::Duration;

const GLOBAL: Dims = Dims([8, 8, 8, 8]);
const SEED: u64 = 424242;

fn grid() -> ProcessGrid {
    ProcessGrid::new(Dims([1, 1, 2, 2]), GLOBAL).unwrap()
}

/// Build this rank's operator; ghost exchange goes over the (possibly
/// faulty) wire, so failures must propagate, not panic.
fn wilson_op_for_rank<C: Communicator>(
    comm: &mut C,
    grid: &ProcessGrid,
) -> Result<WilsonCloverOp<f64>> {
    let seed = SeedTree::new(SEED);
    let sub = Arc::new(SubLattice::for_rank(grid, comm.rank()));
    let faces = FaceGeometry::new(&sub, WILSON_DEPTH)?;
    let mut gauge = GaugeField::<f64>::generate(
        sub.clone(),
        &faces,
        GLOBAL,
        &seed,
        GaugeStart::Disordered(0.25),
    );
    gauge.exchange_ghosts(comm, &faces)?;
    let gsub = Arc::new(SubLattice::single(GLOBAL)?);
    let gfaces = FaceGeometry::new(&gsub, WILSON_DEPTH)?;
    let ggauge =
        GaugeField::<f64>::generate(gsub, &gfaces, GLOBAL, &seed, GaugeStart::Disordered(0.25));
    let gclover = build_clover_field(&ggauge, GLOBAL, 1.0);
    let clover = lqcd_gauge::clover_build::restrict_clover(&gclover, sub, &faces);
    WilsonCloverOp::new(gauge, Some(clover), 0.15)
}

/// One rank's GCR-DD solve; returns (stats, global ‖x‖², faults seen).
fn gcr_dd_solve<C: Communicator>(
    mut comm: C,
    grid: &ProcessGrid,
) -> Result<(SolveStats, f64, u64)> {
    let op = wilson_op_for_rank(&mut comm, grid)?;
    let sub = op.sublattice().clone();
    let mut space = EoWilsonSpace::new(op, comm)?;
    let seedb = SeedTree::new(SEED).child("rhs");
    let mut b = space.alloc();
    let subc = sub.clone();
    b.fill(|idx| {
        let c = subc.cb_coords(Parity::Odd, idx);
        let mut gc = c;
        for d in 0..4 {
            gc[d] = c[d] + subc.origin[d];
        }
        WilsonSpinor::random(&mut seedb.stream(GLOBAL.index(gc) as u64))
    });
    let mut x = space.alloc();
    let params =
        GcrParams { tol: 1e-8, kmax: 16, delta: 0.05, maxiter: 4000, quantize_krylov: false };
    let stats = gcr(&mut space, &mut SchwarzMR::new(6), &mut x, &b, &params)?;
    let norm = space.norm2(&x)?;
    Ok((stats, norm, space.comm.faults_survived()))
}

fn run_solves(
    config: CommConfig,
    plan: Option<FaultPlan>,
) -> Vec<Result<Result<(SolveStats, f64, u64)>>> {
    let g = grid();
    let g2 = g.clone();
    match plan {
        Some(plan) => {
            let comms = FaultyComm::world(g.clone(), config, plan);
            run_world_fallible(comms, move |c| gcr_dd_solve(c, &g2))
        }
        None => {
            let comms = ThreadedComm::world_with(g.clone(), config);
            run_world_fallible(comms, move |c| gcr_dd_solve(c, &g2))
        }
    }
}

/// Drop, duplicate, delay, and short stalls are absorbed by the ARQ
/// protocol: the solve converges to the *bit-identical* solution the
/// fault-free world produces.
#[test]
fn arq_absorbed_faults_leave_the_solve_bit_identical() {
    let clean: Vec<_> = run_solves(CommConfig::resilient(), None)
        .into_iter()
        .map(|r| r.unwrap().unwrap())
        .collect();
    assert!(clean.iter().all(|(s, _, _)| s.converged));
    for (name, rule) in [
        ("drop", FaultRule::drop_message().on_rank(1).data_only().times(3)),
        ("dup", FaultRule::duplicate_message().on_rank(2).times(4)),
        ("delay", FaultRule::delay_message(Duration::from_millis(30)).on_rank(0).times(3)),
        ("stall", FaultRule::stall_rank(Duration::from_millis(40)).on_rank(3).times(2)),
    ] {
        let chaotic = run_solves(CommConfig::resilient(), Some(FaultPlan::new(97).with_rule(rule)));
        let mut survived = 0;
        for (slot, r) in chaotic.into_iter().enumerate() {
            let (stats, norm, faults) =
                r.unwrap().unwrap_or_else(|e| panic!("[{name}] rank {slot}: {e}"));
            assert!(stats.converged, "[{name}] rank {slot}: {stats:?}");
            assert_eq!(stats.iterations, clean[slot].0.iterations, "[{name}] rank {slot}");
            assert_eq!(
                norm.to_bits(),
                clean[slot].1.to_bits(),
                "[{name}] rank {slot}: solution differs under faults"
            );
            survived = survived.max(faults);
        }
        assert!(survived > 0, "[{name}] fault plan never fired");
    }
}

/// A NaN injected into a reduction is *not* silently absorbed: every
/// rank reports a structured breakdown (the NaN reaches all ranks via
/// the reduce broadcast), and nobody hangs.
#[test]
fn corrupted_reduction_is_a_collective_breakdown_not_a_hang() {
    // The operator build performs no reductions, so this fires on the
    // solver's first global norm.
    let plan = FaultPlan::new(29)
        .with_rule(FaultRule::corrupt_payload().on_rank(1).for_class(MsgClass::Reduce).times(1));
    let started = std::time::Instant::now();
    let results = run_solves(CommConfig::resilient(), Some(plan));
    assert!(started.elapsed() < Duration::from_secs(30));
    for (slot, r) in results.iter().enumerate() {
        match r {
            Ok(Err(Error::Breakdown { .. })) => {}
            other => panic!("rank {slot}: expected a structured breakdown, got {other:?}"),
        }
    }
}

/// With retries disabled, sustained message loss surfaces as structured
/// timeouts on every rank within the deadline — the pre-deadline
/// behaviour was an unbounded hang.
#[test]
fn message_loss_without_retries_times_out_structurally() {
    let config = CommConfig::default().with_timeout(Duration::from_millis(400)).with_retries(0);
    let plan =
        FaultPlan::new(53).with_rule(FaultRule::drop_message().on_rank(1).data_only().times(1_000));
    let started = std::time::Instant::now();
    let results = run_solves(config, Some(plan));
    assert!(started.elapsed() < Duration::from_secs(30), "loss must not hang the solve");
    for (slot, r) in results.iter().enumerate() {
        match r {
            Ok(Err(Error::Timeout { .. } | Error::RankFailure { .. })) => {}
            other => panic!("rank {slot}: expected a structured unwind, got {other:?}"),
        }
    }
}

//! End-to-end solves on real lattice Dirac operators, serial and
//! distributed — the numerical behaviours §8–§9 of the paper rely on.

use lqcd_comms::{run_on_grid, Communicator, SingleComm};
use lqcd_dirac::{StaggeredOp, WilsonCloverOp, STAGGERED_DEPTH, WILSON_DEPTH};
use lqcd_field::blas;
use lqcd_gauge::asqtad::{AsqtadCoeffs, AsqtadLinks};
use lqcd_gauge::clover_build::build_clover_field;
use lqcd_gauge::field::GaugeStart;
use lqcd_gauge::GaugeField;
use lqcd_lattice::{Dims, FaceGeometry, Parity, ProcessGrid, SubLattice};
use lqcd_solvers::mixed::{defect_correction, multishift_refined};
use lqcd_solvers::spaces::{
    cast_staggered_op, cast_wilson_op, EoWilsonSpace, FieldBridge, StaggeredNormalSpace,
};
use lqcd_solvers::{bicgstab, cg, gcr, multishift_cg, GcrParams, IdentityPrecond, SchwarzMR};
use lqcd_solvers::{SolveStats, SolverSpace};
use lqcd_su3::WilsonSpinor;
use lqcd_util::rng::SeedTree;
use std::sync::Arc;

const GLOBAL: Dims = Dims([8, 8, 8, 8]);
const SEED: u64 = 777;
const DISORDER: f64 = 0.25;
const MASS: f64 = 0.15;

fn wilson_op_serial() -> WilsonCloverOp<f64> {
    let seed = SeedTree::new(SEED);
    let sub = Arc::new(SubLattice::single(GLOBAL).unwrap());
    let faces = FaceGeometry::new(&sub, WILSON_DEPTH).unwrap();
    let gauge =
        GaugeField::<f64>::generate(sub, &faces, GLOBAL, &seed, GaugeStart::Disordered(DISORDER));
    let clover = build_clover_field(&gauge, GLOBAL, 1.0);
    WilsonCloverOp::new(gauge, Some(clover), MASS).unwrap()
}

fn wilson_op_for_rank<C: Communicator>(comm: &mut C, grid: &ProcessGrid) -> WilsonCloverOp<f64> {
    let seed = SeedTree::new(SEED);
    let sub = Arc::new(SubLattice::for_rank(grid, comm.rank()));
    let faces = FaceGeometry::new(&sub, WILSON_DEPTH).unwrap();
    let mut gauge = GaugeField::<f64>::generate(
        sub.clone(),
        &faces,
        GLOBAL,
        &seed,
        GaugeStart::Disordered(DISORDER),
    );
    gauge.exchange_ghosts(comm, &faces).unwrap();
    // Clover built globally, restricted (site-diagonal).
    let gsub = Arc::new(SubLattice::single(GLOBAL).unwrap());
    let gfaces = FaceGeometry::new(&gsub, WILSON_DEPTH).unwrap();
    let ggauge =
        GaugeField::<f64>::generate(gsub, &gfaces, GLOBAL, &seed, GaugeStart::Disordered(DISORDER));
    let gclover = build_clover_field(&ggauge, GLOBAL, 1.0);
    let clover = lqcd_gauge::clover_build::restrict_clover(&gclover, sub, &faces);
    WilsonCloverOp::new(gauge, Some(clover), MASS).unwrap()
}

fn rhs_for(
    space_sub: &Arc<SubLattice>,
    op: &WilsonCloverOp<f64>,
) -> lqcd_dirac::wilson::SpinorField<f64> {
    let seed = SeedTree::new(SEED).child("rhs");
    let mut b = op.alloc(Parity::Odd);
    let sub = space_sub.clone();
    b.fill(|idx| {
        let c = sub.cb_coords(Parity::Odd, idx);
        let mut gc = c;
        for d in 0..4 {
            gc[d] = c[d] + sub.origin[d];
        }
        WilsonSpinor::random(&mut seed.stream(GLOBAL.index(gc) as u64))
    });
    b
}

/// Verify a solution of `M̂ x = b` by applying the operator once more.
fn verify_eo<C: Communicator>(
    space: &mut EoWilsonSpace<f64, C>,
    x: &lqcd_dirac::wilson::SpinorField<f64>,
    b: &lqcd_dirac::wilson::SpinorField<f64>,
) -> f64 {
    let mut ax = space.alloc();
    let mut xc = x.clone();
    space.matvec(&mut ax, &mut xc).unwrap();
    blas::xpay(b, -1.0, &mut ax);
    (space.norm2(&ax).unwrap() / space.norm2(b).unwrap()).sqrt()
}

#[test]
fn bicgstab_solves_wilson_clover_serial() {
    let op = wilson_op_serial();
    let sub = op.sublattice().clone();
    let comm = SingleComm::new(GLOBAL).unwrap();
    let mut space = EoWilsonSpace::new(op, comm).unwrap();
    let b = rhs_for(&sub, &space.op);
    let mut x = space.alloc();
    let stats = bicgstab(&mut space, &mut x, &b, 1e-10, 2000).unwrap();
    assert!(stats.converged, "stats: {stats:?}");
    assert!(verify_eo(&mut space, &x, &b) < 1e-9);
}

#[test]
fn gcr_dd_solves_wilson_clover_distributed_and_matches_serial() {
    // Serial reference solution.
    let op = wilson_op_serial();
    let sub = op.sublattice().clone();
    let comm = SingleComm::new(GLOBAL).unwrap();
    let mut serial_space = EoWilsonSpace::new(op, comm).unwrap();
    let b = rhs_for(&sub, &serial_space.op);
    let mut x_ref = serial_space.alloc();
    bicgstab(&mut serial_space, &mut x_ref, &b, 1e-10, 2000).unwrap();
    // Flatten reference by global site.
    let mut reference = vec![0.0f64; GLOBAL.volume() * 24];
    for (idx, c) in sub.sites(Parity::Odd) {
        let s = x_ref.site(idx);
        let mut buf = [0.0f64; 24];
        lqcd_field::SiteObject::<f64>::write(&s, &mut buf);
        reference[GLOBAL.index(c) * 24..GLOBAL.index(c) * 24 + 24].copy_from_slice(&buf);
    }
    let reference = Arc::new(reference);

    let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), GLOBAL).unwrap();
    let grid2 = grid.clone();
    let ref2 = reference.clone();
    let results = run_on_grid(grid, move |mut comm| {
        let op = wilson_op_for_rank(&mut comm, &grid2);
        let sub = op.sublattice().clone();
        let mut space = EoWilsonSpace::new(op, comm).unwrap();
        let b = rhs_for(&sub, &space.op);
        let mut x = space.alloc();
        let mut precond = SchwarzMR::new(6);
        let params =
            GcrParams { tol: 1e-10, kmax: 16, delta: 0.05, maxiter: 4000, quantize_krylov: false };
        let stats = gcr(&mut space, &mut precond, &mut x, &b, &params).unwrap();
        // Compare with serial solution sitewise.
        let mut max_err = 0.0f64;
        for (idx, c) in sub.sites(Parity::Odd) {
            let mut gc = c;
            for d in 0..4 {
                gc[d] = c[d] + sub.origin[d];
            }
            let s = x.site(idx);
            let mut buf = [0.0f64; 24];
            lqcd_field::SiteObject::<f64>::write(&s, &mut buf);
            for k in 0..24 {
                max_err = max_err.max((buf[k] - ref2[GLOBAL.index(gc) * 24 + k]).abs());
            }
        }
        (stats, max_err)
    });
    for (rank, (stats, err)) in results.iter().enumerate() {
        assert!(stats.converged, "rank {rank}: {stats:?}");
        assert!(stats.precond_matvecs > 0, "Schwarz blocks never solved");
        assert!(*err < 1e-7, "rank {rank}: solution deviates by {err}");
    }
}

#[test]
fn gcr_dd_beats_unpreconditioned_gcr_in_outer_iterations() {
    let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), GLOBAL).unwrap();
    let grid2 = grid.clone();
    let results = run_on_grid(grid, move |mut comm| {
        let op = wilson_op_for_rank(&mut comm, &grid2);
        let sub = op.sublattice().clone();
        let mut space = EoWilsonSpace::new(op, comm).unwrap();
        let b = rhs_for(&sub, &space.op);
        let params =
            GcrParams { tol: 1e-8, kmax: 16, delta: 0.05, maxiter: 4000, quantize_krylov: false };
        let mut x1 = space.alloc();
        let plain = gcr(&mut space, &mut IdentityPrecond, &mut x1, &b, &params).unwrap();
        let mut x2 = space.alloc();
        let dd = gcr(&mut space, &mut SchwarzMR::new(8), &mut x2, &b, &params).unwrap();
        (plain.iterations, dd.iterations)
    });
    let (plain, dd) = results[0];
    assert!(dd < plain, "GCR-DD outer iterations {dd} should undercut plain GCR {plain}");
}

#[test]
fn mixed_double_single_defect_correction_wilson() {
    let op = wilson_op_serial();
    let sub = op.sublattice().clone();
    let op32 = cast_wilson_op::<f32>(&op).unwrap();
    let comm = SingleComm::new(GLOBAL).unwrap();
    let comm32 = SingleComm::new(GLOBAL).unwrap();
    let mut hi = EoWilsonSpace::new(op, comm).unwrap();
    let mut lo = EoWilsonSpace::new(op32, comm32).unwrap();
    let b = rhs_for(&sub, &hi.op);
    let mut x = hi.alloc();
    let stats =
        defect_correction(&mut hi, &mut lo, &FieldBridge, &mut x, &b, 1e-10, 30, |space, e, r| {
            bicgstab(space, e, r, 1e-4, 2000)
        })
        .unwrap();
    assert!(stats.converged);
    assert!(stats.restarts >= 2, "double-single should take several cycles");
    assert!(verify_eo(&mut hi, &x, &b) < 1e-9);
}

#[test]
fn single_half_half_gcr_dd_converges_to_single_accuracy() {
    // The paper's production configuration (§8.1): GCR restarted in
    // single, Krylov space and preconditioner in half. Verify it reaches
    // the "single-precision accuracy is sufficient" regime (~1e-5).
    let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), GLOBAL).unwrap();
    let grid2 = grid.clone();
    let results = run_on_grid(grid, move |mut comm| {
        let op = wilson_op_for_rank(&mut comm, &grid2);
        let sub = op.sublattice().clone();
        let op32 = cast_wilson_op::<f32>(&op).unwrap();
        let mut space = EoWilsonSpace::new(op32, comm).unwrap().with_half_storage();
        // Build the RHS in f32 from the f64 prototype.
        let seedb = SeedTree::new(SEED).child("rhs");
        let mut b = space.alloc();
        let subc = sub.clone();
        b.fill(|idx| {
            let c = subc.cb_coords(Parity::Odd, idx);
            let mut gc = c;
            for d in 0..4 {
                gc[d] = c[d] + subc.origin[d];
            }
            WilsonSpinor::<f64>::random(&mut seedb.stream(GLOBAL.index(gc) as u64)).cast::<f32>()
        });
        let mut x = space.alloc();
        let mut precond = SchwarzMR::new(10).quantized();
        let params =
            GcrParams { tol: 3e-5, kmax: 16, delta: 0.05, maxiter: 4000, quantize_krylov: true };
        let stats = gcr(&mut space, &mut precond, &mut x, &b, &params).unwrap();
        // True residual at f32.
        let mut ax = space.alloc();
        let mut xc = x.clone();
        space.matvec(&mut ax, &mut xc).unwrap();
        blas::xpay(&b, -1.0f32, &mut ax);
        let resid = (space.norm2(&ax).unwrap() / space.norm2(&b).unwrap()).sqrt();
        (stats.converged, resid)
    });
    for (rank, (conv, resid)) in results.iter().enumerate() {
        assert!(*conv, "rank {rank} did not converge");
        assert!(*resid < 5e-5, "rank {rank}: residual {resid}");
    }
}

#[test]
fn staggered_cg_and_multishift_serial() {
    let seed = SeedTree::new(SEED + 9);
    let sub = Arc::new(SubLattice::single(GLOBAL).unwrap());
    let faces = FaceGeometry::new(&sub, STAGGERED_DEPTH).unwrap();
    let thin = GaugeField::<f64>::generate(
        sub.clone(),
        &faces,
        GLOBAL,
        &seed,
        GaugeStart::Disordered(0.2),
    );
    let links = AsqtadLinks::compute(&thin, GLOBAL, &AsqtadCoeffs::default());
    let op = StaggeredOp::new(links.fat, links.long, 0.2).unwrap();
    let comm = SingleComm::new(GLOBAL).unwrap();
    let mut space = StaggeredNormalSpace::new(op, comm);
    let seedb = seed.child("rhs");
    let mut b = space.alloc();
    let subc = sub.clone();
    b.fill(|idx| {
        let c = subc.cb_coords(Parity::Even, idx);
        lqcd_su3::ColorVector::random(&mut seedb.stream(GLOBAL.index(c) as u64))
    });
    // Plain CG.
    let mut x = space.alloc();
    let stats = cg(&mut space, &mut x, &b, 1e-10, 4000).unwrap();
    assert!(stats.converged);
    // Multi-shift: solutions must match per-shift defect-corrected solves.
    let shifts = [0.0, 0.1, 0.5];
    let ms = multishift_cg(&mut space, &shifts, &b, 1e-10, 4000).unwrap();
    assert!(ms.stats.converged);
    // σ = 0 must equal the plain CG solution.
    let mut diff = ms.solutions[0].clone();
    blas::axpy(-1.0, &x, &mut diff);
    let rel = (blas::norm2_local(&diff) / blas::norm2_local(&x)).sqrt();
    assert!(rel < 1e-7, "multishift σ=0 differs from CG by {rel}");
    // Shift ordering: larger shifts converge no later.
    assert!(ms.converged_at[2] <= ms.converged_at[1]);
    assert!(ms.converged_at[1] <= ms.converged_at[0]);
}

#[test]
fn staggered_mixed_multishift_refinement_matches_paper_strategy() {
    let seed = SeedTree::new(SEED + 10);
    let sub = Arc::new(SubLattice::single(GLOBAL).unwrap());
    let faces = FaceGeometry::new(&sub, STAGGERED_DEPTH).unwrap();
    let thin = GaugeField::<f64>::generate(
        sub.clone(),
        &faces,
        GLOBAL,
        &seed,
        GaugeStart::Disordered(0.2),
    );
    let links = AsqtadLinks::compute(&thin, GLOBAL, &AsqtadCoeffs::default());
    let op = StaggeredOp::new(links.fat, links.long, 0.15).unwrap();
    let op32 = cast_staggered_op::<f32>(&op).unwrap();
    let mut hi = StaggeredNormalSpace::new(op, SingleComm::new(GLOBAL).unwrap());
    let mut lo = StaggeredNormalSpace::new(op32, SingleComm::new(GLOBAL).unwrap());
    let seedb = seed.child("rhs");
    let mut b = hi.alloc();
    let subc = sub.clone();
    b.fill(|idx| {
        let c = subc.cb_coords(Parity::Even, idx);
        lqcd_su3::ColorVector::random(&mut seedb.stream(GLOBAL.index(c) as u64))
    });
    let shifts = [0.0, 0.25, 1.0];
    let (solutions, stats) =
        multishift_refined(&mut hi, &mut lo, &FieldBridge, &shifts, &b, 1e-10, 1e-5, 1e-5, 8000)
            .unwrap();
    assert!(stats.converged);
    // Verify every shifted system at double precision.
    for (i, &sigma) in shifts.iter().enumerate() {
        let mut ax = hi.alloc();
        let mut xc = solutions[i].clone();
        hi.matvec(&mut ax, &mut xc).unwrap();
        blas::axpy(sigma, &solutions[i], &mut ax);
        blas::xpay(&b, -1.0, &mut ax);
        let res = (hi.norm2(&ax).unwrap() / hi.norm2(&b).unwrap()).sqrt();
        assert!(res < 1e-9, "shift {sigma}: residual {res}");
    }
}

#[test]
fn staggered_multishift_distributed_matches_serial() {
    let seed = SeedTree::new(SEED + 11);
    let gsub = Arc::new(SubLattice::single(GLOBAL).unwrap());
    let gfaces = FaceGeometry::new(&gsub, STAGGERED_DEPTH).unwrap();
    let thin = GaugeField::<f64>::generate(
        gsub.clone(),
        &gfaces,
        GLOBAL,
        &seed,
        GaugeStart::Disordered(0.2),
    );
    let links = Arc::new(AsqtadLinks::compute(&thin, GLOBAL, &AsqtadCoeffs::default()));
    // Serial.
    let op = StaggeredOp::new(links.fat.clone(), links.long.clone(), 0.2).unwrap();
    let mut space = StaggeredNormalSpace::new(op, SingleComm::new(GLOBAL).unwrap());
    let seedb = seed.child("rhs");
    let mut b = space.alloc();
    let subc = gsub.clone();
    b.fill(|idx| {
        let c = subc.cb_coords(Parity::Even, idx);
        lqcd_su3::ColorVector::random(&mut seedb.stream(GLOBAL.index(c) as u64))
    });
    let shifts = [0.0, 0.3];
    let ms = multishift_cg(&mut space, &shifts, &b, 1e-9, 4000).unwrap();
    let mut flat = vec![0.0f64; GLOBAL.volume() * 6 * shifts.len()];
    for (si, sol) in ms.solutions.iter().enumerate() {
        for (idx, c) in gsub.sites(Parity::Even) {
            let mut buf = [0.0f64; 6];
            lqcd_field::SiteObject::<f64>::write(&sol.site(idx), &mut buf);
            let base = (si * GLOBAL.volume() + GLOBAL.index(c)) * 6;
            flat[base..base + 6].copy_from_slice(&buf);
        }
    }
    let flat = Arc::new(flat);
    // Distributed (YZT-style 2x2 in Z,T).
    let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), GLOBAL).unwrap();
    let grid2 = grid.clone();
    let links2 = links.clone();
    let flat2 = flat.clone();
    let seed2 = seed.clone();
    let errs = run_on_grid(grid, move |comm| {
        let sub = Arc::new(SubLattice::for_rank(&grid2, comm.rank()));
        let faces = FaceGeometry::new(&sub, STAGGERED_DEPTH).unwrap();
        let fat = GaugeField::restrict_from_global(&links2.fat, sub.clone(), &faces, GLOBAL);
        let long = GaugeField::restrict_from_global(&links2.long, sub.clone(), &faces, GLOBAL);
        let op = StaggeredOp::new(fat, long, 0.2).unwrap();
        let mut space = StaggeredNormalSpace::new(op, comm);
        let seedb = seed2.child("rhs");
        let mut b = space.alloc();
        let subc = sub.clone();
        b.fill(|idx| {
            let c = subc.cb_coords(Parity::Even, idx);
            let mut gc = c;
            for d in 0..4 {
                gc[d] = c[d] + subc.origin[d];
            }
            lqcd_su3::ColorVector::random(&mut seedb.stream(GLOBAL.index(gc) as u64))
        });
        let ms = multishift_cg(&mut space, &[0.0, 0.3], &b, 1e-9, 4000).unwrap();
        let mut max_err = 0.0f64;
        for (si, sol) in ms.solutions.iter().enumerate() {
            for (idx, c) in sub.sites(Parity::Even) {
                let mut gc = c;
                for d in 0..4 {
                    gc[d] = c[d] + sub.origin[d];
                }
                let mut buf = [0.0f64; 6];
                lqcd_field::SiteObject::<f64>::write(&sol.site(idx), &mut buf);
                let base = (si * GLOBAL.volume() + GLOBAL.index(gc)) * 6;
                for k in 0..6 {
                    max_err = max_err.max((buf[k] - flat2[base + k]).abs());
                }
            }
        }
        max_err
    });
    let worst = errs.iter().cloned().fold(0.0, f64::max);
    assert!(worst < 1e-6, "distributed multishift deviates by {worst}");
}

/// Iteration-count growth as DD blocks shrink — the effect behind the
/// GCR-DD scaling limit (§9.1: smaller local volume ⇒ weaker
/// preconditioner) and an input to the Fig. 7/8 model.
#[test]
fn dd_outer_iterations_grow_as_blocks_shrink() {
    let mut iters = Vec::new();
    for shape in [Dims([1, 1, 1, 2]), Dims([1, 1, 2, 2]), Dims([1, 2, 2, 2])] {
        let grid = ProcessGrid::new(shape, GLOBAL).unwrap();
        let grid2 = grid.clone();
        let results = run_on_grid(grid, move |mut comm| {
            let op = wilson_op_for_rank(&mut comm, &grid2);
            let sub = op.sublattice().clone();
            let mut space = EoWilsonSpace::new(op, comm).unwrap();
            let b = rhs_for(&sub, &space.op);
            let mut x = space.alloc();
            let params = GcrParams {
                tol: 1e-8,
                kmax: 16,
                delta: 0.05,
                maxiter: 4000,
                quantize_krylov: false,
            };
            let stats: SolveStats =
                gcr(&mut space, &mut SchwarzMR::new(8), &mut x, &b, &params).unwrap();
            stats.iterations
        });
        iters.push(results[0]);
    }
    // Non-strict monotonicity (small lattices can tie) but the 8-rank
    // blocks must need at least as many outer iterations as the 2-rank
    // blocks.
    assert!(iters[2] >= iters[0], "outer iterations did not grow with shrinking blocks: {iters:?}");
}

#[test]
fn cgnr_solves_wilson_via_gamma5_adjoint() {
    // CGNR (§3.1's "CG on the normal equations") through the free
    // adjoint M̂† = γ₅ M̂ γ₅ must match BiCGstab's solution, at a higher
    // matvec cost — the reason the paper prefers BiCGstab.
    use lqcd_solvers::cgnr;
    let op = wilson_op_serial();
    let sub = op.sublattice().clone();
    let comm = SingleComm::new(GLOBAL).unwrap();
    let mut space = EoWilsonSpace::new(op, comm).unwrap();
    let b = rhs_for(&sub, &space.op);
    let mut x_cgnr = space.alloc();
    let st_cgnr = cgnr(&mut space, &mut x_cgnr, &b, 1e-9, 8000).unwrap();
    assert!(st_cgnr.converged);
    let mut x_bicg = space.alloc();
    let st_bicg = bicgstab(&mut space, &mut x_bicg, &b, 1e-9, 8000).unwrap();
    let mut diff = x_cgnr.clone();
    blas::axpy(-1.0, &x_bicg, &mut diff);
    let rel = (blas::norm2_local(&diff) / blas::norm2_local(&x_bicg)).sqrt();
    assert!(rel < 1e-6, "CGNR and BiCGstab disagree by {rel}");
    assert!(
        st_cgnr.matvecs >= st_bicg.matvecs,
        "CGNR should pay more matvecs: {} vs {}",
        st_cgnr.matvecs,
        st_bicg.matvecs
    );
}

#[test]
fn lanczos_condition_number_tracks_quark_mass() {
    // §3.1: "the quark mass controls the condition number of the
    // matrix" — measure κ(M†M) with Lanczos at two masses and check the
    // lighter quark is worse conditioned, and that CG iteration counts
    // order accordingly.
    use lqcd_solvers::lanczos_extremes;
    let seed = SeedTree::new(SEED + 20);
    let sub = Arc::new(SubLattice::single(GLOBAL).unwrap());
    let faces = FaceGeometry::new(&sub, STAGGERED_DEPTH).unwrap();
    let thin = GaugeField::<f64>::generate(
        sub.clone(),
        &faces,
        GLOBAL,
        &seed,
        GaugeStart::Disordered(0.2),
    );
    let links = AsqtadLinks::compute(&thin, GLOBAL, &AsqtadCoeffs::default());
    let mut kappa = Vec::new();
    let mut iters = Vec::new();
    for mass in [0.5f64, 0.1] {
        let op = StaggeredOp::new(links.fat.clone(), links.long.clone(), mass).unwrap();
        let mut space = StaggeredNormalSpace::new(op, SingleComm::new(GLOBAL).unwrap());
        let seedb = seed.child("rhs");
        let mut b = space.alloc();
        let subc = sub.clone();
        b.fill(|idx| {
            let c = subc.cb_coords(Parity::Even, idx);
            lqcd_su3::ColorVector::random(&mut seedb.stream(GLOBAL.index(c) as u64))
        });
        let sp = lanczos_extremes(&mut space, &b, 40).unwrap();
        // λ_min of M†M is bounded below by m² — and approaches it.
        assert!(sp.lambda_min >= mass * mass * 0.99, "λmin {} < m²", sp.lambda_min);
        kappa.push(sp.kappa());
        let mut x = space.alloc();
        let st = cg(&mut space, &mut x, &b, 1e-8, 8000).unwrap();
        iters.push(st.iterations);
    }
    assert!(kappa[1] > kappa[0], "lighter quark must be worse conditioned: {kappa:?}");
    assert!(iters[1] > iters[0], "lighter quark must need more CG iterations: {iters:?}");
}

#[test]
fn even_odd_preconditioning_accelerates_the_solve() {
    // §3.1: even-odd preconditioning "is almost always used to
    // accelerate the solution finding process". Solve the SAME physical
    // system unpreconditioned (full lattice) and via the Schur
    // complement, and compare matvec counts and solutions.
    use lqcd_solvers::spaces::FullWilsonSpace;
    let mut op = wilson_op_serial();
    op.build_t_inverse().unwrap();
    let sub = op.sublattice().clone();
    let seedb = SeedTree::new(SEED).child("rhs-full");
    // Full-system right-hand side (both parities).
    let comm = SingleComm::new(GLOBAL).unwrap();
    let mut full = FullWilsonSpace::new(op, comm);
    let mut b = full.alloc();
    let subc = sub.clone();
    b.0.fill(|idx| {
        let c = subc.cb_coords(Parity::Even, idx);
        WilsonSpinor::random(&mut seedb.stream(GLOBAL.index(c) as u64))
    });
    let subc = sub.clone();
    b.1.fill(|idx| {
        let c = subc.cb_coords(Parity::Odd, idx);
        WilsonSpinor::random(&mut seedb.stream(GLOBAL.index(c) as u64))
    });
    let mut x_full = full.alloc();
    let full_stats = bicgstab(&mut full, &mut x_full, &b, 1e-9, 8000).unwrap();
    assert!(full_stats.converged);

    // Schur path: b̂ = b_o + (1/4) D̂_oe T_ee⁻¹ b_e ; solve M̂ x_o = b̂ ;
    // reconstruct x_e.
    let op = full.op;
    let comm = SingleComm::new(GLOBAL).unwrap();
    let mut eo = EoWilsonSpace::new(op, comm).unwrap();
    let mut comm2 = SingleComm::new(GLOBAL).unwrap();
    let mut tinv_be = eo.op.alloc(Parity::Even);
    eo.op.t_inv_apply(&mut tinv_be, &b.0).unwrap();
    let mut bhat = eo.op.alloc(Parity::Odd);
    eo.op.dslash(&mut bhat, &mut tinv_be, &mut comm2, lqcd_dirac::BoundaryMode::Full).unwrap();
    blas::scale(&mut bhat, 0.25);
    blas::axpy(1.0, &b.1, &mut bhat);
    let mut x_o = eo.alloc();
    let eo_stats = bicgstab(&mut eo, &mut x_o, &bhat, 1e-9, 8000).unwrap();
    assert!(eo_stats.converged);
    let mut x_e = eo.op.alloc(Parity::Even);
    eo.op
        .reconstruct_even(&mut x_e, &b.0, &mut x_o, &mut comm2, lqcd_dirac::BoundaryMode::Full)
        .unwrap();

    // Same solution.
    let mut d_e = x_e.clone();
    blas::axpy(-1.0, &x_full.0, &mut d_e);
    let rel = (blas::norm2_local(&d_e) / blas::norm2_local(&x_full.0)).sqrt();
    assert!(rel < 1e-6, "eo-prec and full solutions differ: {rel}");
    // The acceleration claim: each eo matvec costs 2 dslash (like one
    // full matvec) but on half the sites, and converges in fewer
    // iterations — compare *dslash-equivalent volumes* processed.
    let full_work = full_stats.matvecs * 2; // 2 half-volume dslash per matvec, both parities
    let eo_work = eo_stats.matvecs * 2; // 2 half-volume dslash per Schur matvec
    assert!(
        eo_work < full_work,
        "even-odd should reduce work: eo {eo_work} vs full {full_work} dslash applications"
    );
}

//! Ablation benchmarks for the design decisions DESIGN.md calls out:
//! gauge-link compression levels, the half-spinor projection trick,
//! interior/exterior kernel split, fused multi-shift BLAS, and the real
//! cost of ghost exchange over the threaded communicator.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lqcd_comms::{run_on_grid, SingleComm};
use lqcd_dirac::{BoundaryMode, WilsonCloverOp, WILSON_DEPTH};
use lqcd_field::{blas, LatticeField};
use lqcd_gauge::field::GaugeStart;
use lqcd_gauge::GaugeField;
use lqcd_lattice::{Dims, FaceGeometry, Parity, ProcessGrid, SubLattice};
use lqcd_su3::{Su3, Su3Compressed12, Su3Compressed8, WilsonSpinor};
use lqcd_util::rng::SeedTree;
use std::sync::Arc;

const GLOBAL: Dims = Dims([8, 8, 8, 8]);

/// Ablation 5 (DESIGN.md): 18 vs 12 vs 8-real link storage — the
/// compute cost of reconstruction that buys the bandwidth saving.
fn reconstruction(c: &mut Criterion) {
    let seed = SeedTree::new(1);
    let mut rng = seed.rng();
    let u = Su3::<f64>::random(&mut rng);
    let r12 = Su3Compressed12::encode(&u);
    let r8 = Su3Compressed8::encode(&u).unwrap();
    let raw = u.to_reals();
    let mut g = c.benchmark_group("reconstruct");
    g.bench_function("none_18", |b| b.iter(|| black_box(Su3::from_reals(black_box(&raw)))));
    g.bench_function("twelve", |b| b.iter(|| black_box(black_box(&r12).decode())));
    g.bench_function("eight", |b| b.iter(|| black_box(black_box(&r8).decode())));
    g.finish();
}

/// Ablation 2: interior/exterior split — Dirichlet (interior only) vs the
/// full operator on an unpartitioned lattice quantifies the split's
/// bookkeeping overhead; the same comparison on 4 threaded ranks adds the
/// real exchange cost.
fn kernel_split(c: &mut Criterion) {
    let seed = SeedTree::new(2);
    let sub = Arc::new(SubLattice::single(GLOBAL).unwrap());
    let faces = FaceGeometry::new(&sub, WILSON_DEPTH).unwrap();
    let gauge = GaugeField::<f64>::generate(
        sub.clone(),
        &faces,
        GLOBAL,
        &seed,
        GaugeStart::Disordered(0.3),
    );
    let op = WilsonCloverOp::new(gauge, None, 0.1).unwrap();
    let mut comm = SingleComm::new(GLOBAL).unwrap();
    let mut src = op.alloc(Parity::Odd);
    let mut rng = seed.rng();
    src.fill(|_| WilsonSpinor::random(&mut rng));
    let mut out = op.alloc(Parity::Even);
    let mut g = c.benchmark_group("kernel_split");
    g.sample_size(20);
    g.bench_function("serial_full", |b| {
        b.iter(|| op.dslash(&mut out, &mut src, &mut comm, BoundaryMode::Full).unwrap())
    });
    g.bench_function("serial_dirichlet", |b| {
        b.iter(|| op.dslash(&mut out, &mut src, &mut comm, BoundaryMode::Dirichlet).unwrap())
    });
    g.finish();
}

/// Real multi-rank dslash wall time across partitionings (threads +
/// channel exchange): the execution-substrate analogue of Fig. 6.
fn multirank_dslash(c: &mut Criterion) {
    let mut g = c.benchmark_group("multirank_dslash");
    g.sample_size(10);
    for (label, shape) in [
        ("1rank", Dims([1, 1, 1, 1])),
        ("2ranks_T", Dims([1, 1, 1, 2])),
        ("4ranks_ZT", Dims([1, 1, 2, 2])),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let grid = ProcessGrid::new(shape, GLOBAL).unwrap();
                let grid2 = grid.clone();
                let sums = run_on_grid(grid, move |mut comm| {
                    let seed = SeedTree::new(3);
                    let sub = Arc::new(SubLattice::for_rank(
                        &grid2,
                        lqcd_comms::Communicator::rank(&comm),
                    ));
                    let faces = FaceGeometry::new(&sub, WILSON_DEPTH).unwrap();
                    let mut gauge = GaugeField::<f64>::generate(
                        sub.clone(),
                        &faces,
                        GLOBAL,
                        &seed,
                        GaugeStart::Disordered(0.3),
                    );
                    gauge.exchange_ghosts(&mut comm, &faces).unwrap();
                    let op = WilsonCloverOp::new(gauge, None, 0.1).unwrap();
                    let mut src = op.alloc(Parity::Odd);
                    let mut rng = seed.rng();
                    src.fill(|_| WilsonSpinor::random(&mut rng));
                    let mut out = op.alloc(Parity::Even);
                    op.dslash(&mut out, &mut src, &mut comm, BoundaryMode::Full).unwrap();
                    blas::norm2_local(&out)
                });
                black_box(sums)
            })
        });
    }
    g.finish();
}

/// Ablation: the fused multi-shift update vs its unfused equivalent.
fn fused_shift_update(c: &mut Criterion) {
    let sub = Arc::new(SubLattice::single(GLOBAL).unwrap());
    let faces = FaceGeometry::new(&sub, 1).unwrap();
    let seed = SeedTree::new(4);
    let mut rng = seed.rng();
    let mut z: LatticeField<f64, WilsonSpinor<f64>> =
        LatticeField::zeros(sub.clone(), &faces, Parity::Even, 0);
    z.fill(|_| WilsonSpinor::random(&mut rng));
    let mut x = z.clone();
    let mut p = z.clone();
    let mut g = c.benchmark_group("multishift_update");
    g.bench_function("fused", |b| b.iter(|| blas::shift_update(0.3, -0.1, &z, &mut x, &mut p)));
    g.bench_function("unfused", |b| {
        b.iter(|| {
            blas::axpy(0.3, &p, &mut x);
            blas::xpay(&z, -0.1, &mut p);
        })
    });
    g.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(20);
    targets = reconstruction, kernel_split, multirank_dslash, fused_shift_update
}
criterion_main!(ablations);

//! Criterion benchmarks of the real Rust kernels: the per-site algebra,
//! the Dirac stencils, BLAS, and the precision machinery.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lqcd_comms::SingleComm;
use lqcd_dirac::{BoundaryMode, StaggeredOp, WilsonCloverOp, STAGGERED_DEPTH, WILSON_DEPTH};
use lqcd_field::{blas, HalfField, LatticeField};
use lqcd_gauge::asqtad::{AsqtadCoeffs, AsqtadLinks};
use lqcd_gauge::clover_build::build_clover_field;
use lqcd_gauge::field::GaugeStart;
use lqcd_gauge::GaugeField;
use lqcd_lattice::{Dims, FaceGeometry, Parity, SubLattice};
use lqcd_su3::{gamma, ColorVector, Su3, WilsonSpinor};
use lqcd_util::rng::SeedTree;
use std::sync::Arc;

const GLOBAL: Dims = Dims([8, 8, 8, 8]);

fn su3_algebra(c: &mut Criterion) {
    let seed = SeedTree::new(1);
    let mut rng = seed.rng();
    let a = Su3::<f64>::random(&mut rng);
    let b = Su3::<f64>::random(&mut rng);
    let v = ColorVector::<f64>::random(&mut rng);
    let mut g = c.benchmark_group("su3");
    g.bench_function("mat_mul", |bch| bch.iter(|| black_box(a.mul(black_box(&b)))));
    g.bench_function("mat_vec", |bch| bch.iter(|| black_box(a.mul_vec(black_box(&v)))));
    g.bench_function("adj_mat_vec", |bch| bch.iter(|| black_box(a.adj_mul_vec(black_box(&v)))));
    g.bench_function("reunitarize", |bch| bch.iter(|| black_box(a.reunitarize())));
    g.finish();
}

fn spin_projection(c: &mut Criterion) {
    let seed = SeedTree::new(2);
    let mut rng = seed.rng();
    let psi = WilsonSpinor::<f64>::random(&mut rng);
    let u = Su3::<f64>::random(&mut rng);
    let mut g = c.benchmark_group("projector");
    g.bench_function("project_colorrot_reconstruct", |bch| {
        bch.iter(|| {
            let h = gamma::project(black_box(0), false, black_box(&psi)).color_mul(&u);
            black_box(gamma::reconstruct(0, false, &h))
        })
    });
    g.bench_function("dense_reference", |bch| {
        bch.iter(|| {
            let full = gamma::project_reference(black_box(0), false, black_box(&psi));
            black_box(WilsonSpinor::from_fn(|sp| u.mul_vec(&full.s[sp])))
        })
    });
    g.finish();
}

fn wilson_dslash(c: &mut Criterion) {
    let seed = SeedTree::new(3);
    let sub = Arc::new(SubLattice::single(GLOBAL).unwrap());
    let faces = FaceGeometry::new(&sub, WILSON_DEPTH).unwrap();
    let gauge = GaugeField::<f64>::generate(
        sub.clone(),
        &faces,
        GLOBAL,
        &seed,
        GaugeStart::Disordered(0.3),
    );
    let clover = build_clover_field(&gauge, GLOBAL, 1.0);
    let op = WilsonCloverOp::new(gauge, Some(clover), 0.1).unwrap();
    let mut comm = SingleComm::new(GLOBAL).unwrap();
    let mut src = op.alloc(Parity::Odd);
    let mut rng = seed.rng();
    src.fill(|_| WilsonSpinor::random(&mut rng));
    let mut out = op.alloc(Parity::Even);
    let mut g = c.benchmark_group("wilson");
    g.throughput(Throughput::Elements(sub.volume_cb() as u64));
    g.bench_function("dslash_8x8x8x8", |bch| {
        bch.iter(|| op.dslash(&mut out, &mut src, &mut comm, BoundaryMode::Full).unwrap())
    });
    let mut t = op.alloc(Parity::Odd);
    g.bench_function("clover_t_apply", |bch| bch.iter(|| op.t_apply(&mut t, &src)));
    g.finish();
}

fn staggered_dslash(c: &mut Criterion) {
    let seed = SeedTree::new(4);
    let sub = Arc::new(SubLattice::single(GLOBAL).unwrap());
    let faces = FaceGeometry::new(&sub, STAGGERED_DEPTH).unwrap();
    let thin = GaugeField::<f64>::generate(
        sub.clone(),
        &faces,
        GLOBAL,
        &seed,
        GaugeStart::Disordered(0.2),
    );
    let links = AsqtadLinks::compute(&thin, GLOBAL, &AsqtadCoeffs::default());
    let op = StaggeredOp::new(links.fat, links.long, 0.2).unwrap();
    let mut comm = SingleComm::new(GLOBAL).unwrap();
    let mut src = op.alloc(Parity::Odd);
    let mut rng = seed.rng();
    src.fill(|_| ColorVector::random(&mut rng));
    let mut out = op.alloc(Parity::Even);
    let mut g = c.benchmark_group("staggered");
    g.throughput(Throughput::Elements(sub.volume_cb() as u64));
    g.bench_function("asqtad_dslash_8x8x8x8", |bch| {
        bch.iter(|| op.dslash(&mut out, &mut src, &mut comm, BoundaryMode::Full).unwrap())
    });
    g.finish();
}

fn blas_kernels(c: &mut Criterion) {
    let sub = Arc::new(SubLattice::single(GLOBAL).unwrap());
    let faces = FaceGeometry::new(&sub, 1).unwrap();
    let seed = SeedTree::new(5);
    let mut rng = seed.rng();
    let mut x: LatticeField<f64, WilsonSpinor<f64>> =
        LatticeField::zeros(sub.clone(), &faces, Parity::Even, 0);
    x.fill(|_| WilsonSpinor::random(&mut rng));
    let mut y = x.clone();
    let mut g = c.benchmark_group("blas");
    g.throughput(Throughput::Bytes((x.body().len() * 8) as u64));
    g.bench_function("axpy", |bch| bch.iter(|| blas::axpy(black_box(0.5), &x, &mut y)));
    g.bench_function("cdot", |bch| bch.iter(|| black_box(blas::cdot_local(&x, &y))));
    g.bench_function("norm2", |bch| bch.iter(|| black_box(blas::norm2_local(&x))));
    g.finish();
}

fn half_precision(c: &mut Criterion) {
    let sub = Arc::new(SubLattice::single(GLOBAL).unwrap());
    let faces = FaceGeometry::new(&sub, 1).unwrap();
    let seed = SeedTree::new(6);
    let mut rng = seed.rng();
    let mut x: LatticeField<f32, WilsonSpinor<f32>> =
        LatticeField::zeros(sub.clone(), &faces, Parity::Even, 0);
    x.fill(|_| WilsonSpinor::random(&mut rng));
    let mut g = c.benchmark_group("half");
    g.bench_function("encode", |bch| bch.iter(|| black_box(HalfField::encode(&x))));
    let h = HalfField::encode(&x);
    let mut back = LatticeField::zeros_like(&x);
    g.bench_function("decode", |bch| bch.iter(|| h.decode_into(&mut back)));
    g.finish();
}

fn whole_solves(c: &mut Criterion) {
    use lqcd_core::{run_wilson_bicgstab, run_wilson_gcr_dd, WilsonProblem};
    use lqcd_lattice::ProcessGrid;
    let p = WilsonProblem::small();
    let mut g = c.benchmark_group("solves");
    g.sample_size(10);
    g.bench_function("bicgstab_4ranks_8x8x8x8", |b| {
        b.iter(|| {
            let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), p.global).unwrap();
            black_box(run_wilson_bicgstab(&p, grid).unwrap())
        })
    });
    g.bench_function("gcr_dd_4ranks_8x8x8x8", |b| {
        b.iter(|| {
            let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), p.global).unwrap();
            black_box(run_wilson_gcr_dd(&p, grid.clone(), false).unwrap())
        })
    });
    g.finish();
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = su3_algebra, spin_projection, wilson_dslash, staggered_dslash, blas_kernels,
              half_precision, whole_solves
}
criterion_main!(kernels);

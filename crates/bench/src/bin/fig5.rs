//! Regenerate Fig. 5: Wilson-clover dslash strong scaling (SP/HP,
//! V = 32³×256, 12-reconstruct, 8→256 GPUs) — paper vs model.

use lqcd_bench::{paper, BenchArgs};
use lqcd_perf::{edge, sweep};

fn main() {
    let args = BenchArgs::parse();
    let model = edge();
    let pts = sweep::fig5(&model).expect("fig5 sweep");
    println!("Fig. 5 — Wilson-clover dslash, V = 32³×256, 12-recon, Gflops/GPU");
    println!("{:>6} {:>6} {:>12} {:>12} {:>9}", "GPUs", "prec", "paper≈", "model", "ratio");
    for p in &pts {
        let table = if p.precision == "SP" { &paper::FIG5_SP } else { &paper::FIG5_HP };
        let reference = table.iter().find(|(g, _)| *g == p.gpus).map(|(_, v)| *v);
        match reference {
            Some(r) => println!(
                "{:>6} {:>6} {:>12.0} {:>12.1} {:>9.2}",
                p.gpus,
                p.precision,
                r,
                p.gflops_per_gpu,
                p.gflops_per_gpu / r
            ),
            None => {
                println!("{:>6} {:>6} {:>12} {:>12.1}", p.gpus, p.precision, "-", p.gflops_per_gpu)
            }
        }
    }
    // Shape summary.
    let ratio = |prec: &str, gpus: usize| {
        pts.iter().find(|p| p.precision == prec && p.gpus == gpus).unwrap().gflops_per_gpu
    };
    println!(
        "\nHP/SP advantage: {:.2}x at 8 GPUs -> {:.2}x at 256 GPUs (paper: ~1.6x -> ~1.1x)",
        ratio("HP", 8) / ratio("SP", 8),
        ratio("HP", 256) / ratio("SP", 256)
    );
    args.write_primary("fig5", &pts);
}

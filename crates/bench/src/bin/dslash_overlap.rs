//! Measure the real overlapped dslash pipeline against the blocking
//! baseline on a multi-rank in-process world, and compare the measured
//! overlap efficiency with the stream-model prediction (Fig. 4).
//!
//! Emits `BENCH_dslash.json` (via the standard artifact dir) with both
//! measured and simulated numbers. With `--trace`, also records the
//! flight recorder across the run and emits `TRACE_dslash.json` in
//! Chrome `trace_event` format (open in `about:tracing` / Perfetto) —
//! one process per rank, one thread track per pipeline stage — plus an
//! aggregated text report. Tracing adds a little overhead per stage, so
//! the measured numbers of a traced run are not comparison-grade.

use lqcd_bench::{artifact_dir, BenchArgs};
use lqcd_comms::{run_on_grid, Communicator};
use lqcd_core::problem::WilsonProblem;
use lqcd_dirac::{BoundaryMode, DslashCounters, OverlapHost};
use lqcd_lattice::{Dims, ProcessGrid};
use lqcd_perf::cost::{OpConfig, PartitionGeometry};
use lqcd_perf::{edge, simulate_dslash, OperatorKind, Precision, Recon};
use lqcd_util::{trace, Result};
use serde::Serialize;
use std::collections::HashMap;
use std::time::Instant;

/// Measurement rounds per path; the fastest round of each is reported.
const ROUNDS: usize = 5;

#[derive(Serialize)]
struct MeasuredSide {
    total_s: f64,
    per_apply_us: f64,
    msites_per_s: f64,
}

#[derive(Serialize)]
struct BenchDslash {
    global: [usize; 4],
    grid: [usize; 4],
    ranks: usize,
    interior_threads: usize,
    applies: usize,
    sequential: MeasuredSide,
    overlapped: MeasuredSide,
    speedup: f64,
    /// Rank-0 cumulative pipeline counters over the overlapped applies.
    gather_ns: u64,
    interior_ns: u64,
    exterior_ns: u64,
    exposed_comm_ns: u64,
    total_ns: u64,
    overlap_efficiency: Option<f64>,
    /// Stream-model prediction for the same partition geometry.
    model_total_us: f64,
    model_interior_us: f64,
    model_idle_us: f64,
}

/// Parse the exported Chrome trace back through `serde_json` and check
/// its structural invariants: every `B` closes with an `E` on its
/// (pid, tid) stack, and every rank's Interior track shows at least one
/// span overlapping an in-flight exchange span on the Comm track — the
/// overlap the pipeline exists to produce.
fn validate_trace(json: &str) {
    let v = serde_json::from_str(json).expect("trace JSON must parse");
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("trace must be the {\"traceEvents\": [...]} object form");
    let mut stacks: HashMap<(i64, i64), Vec<(String, f64)>> = HashMap::new();
    let mut interior: HashMap<i64, Vec<(f64, f64)>> = HashMap::new();
    let mut inflight: HashMap<i64, Vec<(f64, f64)>> = HashMap::new();
    for e in events {
        let ph = e.get("ph").and_then(|p| p.as_str()).expect("ph");
        if ph != "B" && ph != "E" {
            continue;
        }
        let pid = e.get("pid").and_then(|p| p.as_i64()).expect("pid");
        let tid = e.get("tid").and_then(|t| t.as_i64()).expect("tid");
        let ts = e.get("ts").and_then(|t| t.as_f64()).expect("ts");
        let name = e.get("name").and_then(|n| n.as_str()).expect("name").to_string();
        let stack = stacks.entry((pid, tid)).or_default();
        if ph == "B" {
            stack.push((name, ts));
        } else {
            let (opened, begin) = stack
                .pop()
                .unwrap_or_else(|| panic!("unbalanced E for {name:?} on pid {pid} tid {tid}"));
            match opened.as_str() {
                "interior" => interior.entry(pid).or_default().push((begin, ts)),
                "exchange_inflight" => inflight.entry(pid).or_default().push((begin, ts)),
                _ => {}
            }
        }
    }
    for ((pid, tid), stack) in &stacks {
        assert!(stack.is_empty(), "pid {pid} tid {tid} left {} span(s) open", stack.len());
    }
    assert!(!interior.is_empty(), "no interior spans in the trace");
    for (pid, spans) in &interior {
        let comm = inflight.get(pid).map(Vec::as_slice).unwrap_or(&[]);
        let overlapping =
            spans.iter().any(|&(i0, i1)| comm.iter().any(|&(c0, c1)| i0.max(c0) < i1.min(c1)));
        assert!(overlapping, "rank {pid}: no interior span overlaps an in-flight exchange");
    }
    println!(
        "  trace OK: {} ranks, every B/E balanced, interior ∥ exchange on every rank",
        interior.len()
    );
}

fn main() {
    let args = BenchArgs::parse();
    let traced = args.trace;
    if traced {
        trace::enable();
    }
    let p = WilsonProblem::small();
    let shape = Dims([1, 1, 2, 2]);
    let grid = ProcessGrid::new(shape, p.global).expect("grid");
    let ranks = grid.num_ranks();
    let applies = 50usize;
    let threads =
        args.threads_or(std::thread::available_parallelism().map_or(1, |n| n.get()).min(4));

    let pb = p.clone();
    let g = grid.clone();
    let results =
        run_on_grid(grid.clone(), move |mut comm| -> Result<(f64, f64, DslashCounters)> {
            let op = pb.build_operator(&mut comm, &g)?;
            op.set_interior_threads(threads);
            let mut src = pb.rhs(&op);
            let mut out = op.alloc(src.parity().other());
            for _ in 0..3 {
                op.dslash_sequential(&mut out, &mut src, &mut comm, BoundaryMode::Full)?;
                op.dslash(&mut out, &mut src, &mut comm, BoundaryMode::Full)?;
            }
            // Alternate blocking / overlapped rounds and keep the fastest
            // round of each: min-of-rounds cancels scheduler noise, which
            // swamps the signal on an oversubscribed host.
            let mut seq_best = f64::INFINITY;
            let mut ovl_best = f64::INFINITY;
            for _ in 0..ROUNDS {
                // Blocking baseline: exchange every ghost zone, then compute.
                comm.barrier()?;
                let t = Instant::now();
                for _ in 0..applies {
                    op.dslash_sequential(&mut out, &mut src, &mut comm, BoundaryMode::Full)?;
                }
                comm.barrier()?;
                let mut seq = [t.elapsed().as_secs_f64()];
                comm.allreduce_max(&mut seq)?;
                seq_best = seq_best.min(seq[0]);
                // Overlapped pipeline: post sends, interior while in flight,
                // complete per dimension, exteriors.
                op.reset_dslash_counters();
                comm.barrier()?;
                let t = Instant::now();
                for _ in 0..applies {
                    op.dslash(&mut out, &mut src, &mut comm, BoundaryMode::Full)?;
                }
                comm.barrier()?;
                let mut ovl = [t.elapsed().as_secs_f64()];
                comm.allreduce_max(&mut ovl)?;
                ovl_best = ovl_best.min(ovl[0]);
            }
            Ok((seq_best, ovl_best, op.dslash_counters()))
        });
    let per_rank: Result<Vec<_>> = results.into_iter().collect();
    let per_rank = per_rank.expect("bench world");
    let (seq_s, ovl_s, counters) = per_rank[0];

    // Sites updated per apply: one parity of the global lattice.
    let vol_cb = p.global.0.iter().product::<usize>() / 2;
    let side = |total_s: f64| MeasuredSide {
        total_s,
        per_apply_us: total_s / applies as f64 * 1e6,
        msites_per_s: vol_cb as f64 * applies as f64 / total_s / 1e6,
    };

    let model = edge();
    let cfg = OpConfig {
        kind: OperatorKind::WilsonClover,
        precision: Precision::Double,
        recon: Recon::None,
    };
    let sim = simulate_dslash(&model, &PartitionGeometry::of(&grid), &cfg);

    let report = BenchDslash {
        global: p.global.0,
        grid: shape.0,
        ranks,
        interior_threads: threads,
        applies,
        sequential: side(seq_s),
        overlapped: side(ovl_s),
        speedup: seq_s / ovl_s,
        gather_ns: counters.gather_ns,
        interior_ns: counters.interior_ns,
        exterior_ns: counters.exterior_ns,
        exposed_comm_ns: counters.exposed_comm_ns,
        total_ns: counters.total_ns,
        overlap_efficiency: counters.overlap_efficiency(),
        model_total_us: sim.total * 1e6,
        model_interior_us: sim.interior_end * 1e6,
        model_idle_us: sim.gpu_idle * 1e6,
    };

    println!(
        "dslash overlap bench — global {:?}, grid {:?} ({ranks} ranks), {} interior thread(s), \
         {applies} applies",
        p.global.0, shape.0, threads
    );
    println!(
        "  sequential : {:>9.1} µs/apply  {:>8.2} Msites/s",
        report.sequential.per_apply_us, report.sequential.msites_per_s
    );
    println!(
        "  overlapped : {:>9.1} µs/apply  {:>8.2} Msites/s  (speedup {:.2}x)",
        report.overlapped.per_apply_us, report.overlapped.msites_per_s, report.speedup
    );
    println!(
        "  pipeline   : gather {:.1} µs, interior {:.1} µs, exterior {:.1} µs, exposed comm \
         {:.1} µs per apply",
        counters.gather_ns as f64 / applies as f64 / 1e3,
        counters.interior_ns as f64 / applies as f64 / 1e3,
        counters.exterior_ns as f64 / applies as f64 / 1e3,
        counters.exposed_comm_ns as f64 / applies as f64 / 1e3,
    );
    if let Some(eff) = report.overlap_efficiency {
        println!("  overlap efficiency: {:.1}% (1 = communication fully hidden)", eff * 100.0);
    }
    println!(
        "  stream model (same geometry): total {:.1} µs, interior {:.1} µs, idle {:.1} µs",
        report.model_total_us, report.model_interior_us, report.model_idle_us
    );
    if report.speedup >= 1.0 {
        println!("  RESULT: overlapped >= sequential throughput");
    } else {
        println!("  RESULT: WARNING overlapped slower than sequential ({:.2}x)", report.speedup);
    }
    args.write_primary("BENCH_dslash", &report);

    if traced {
        trace::disable();
        let ranks_trace = trace::take();
        let json = trace::export_chrome_json(&ranks_trace);
        let path = artifact_dir().join("TRACE_dslash.json");
        std::fs::write(&path, &json).expect("write trace artifact");
        println!("[artifact] {} (load in about:tracing or ui.perfetto.dev)", path.display());
        validate_trace(&json);
        print!("{}", trace::summarize(&ranks_trace));
        println!("  note: tracing adds per-stage overhead; timings above are not comparison-grade");
    }
}

//! Autotune the Wilson-clover dslash + GCR-DD stack on a 4-rank
//! in-process world and report the tuned configuration against the
//! hardcoded defaults.
//!
//! First run (cold cache): both tuning phases run measured micro-trials
//! and persist their decisions to `target/figures/TUNE_CACHE.json`.
//! Second run (warm cache): zero micro-trials, identical decisions, and
//! — because the tuned axes are scheduling-only or deterministic solver
//! parameters — bit-identical solver results, which
//! `solution_norm2_bits` in `BENCH_tune.json` lets a script assert.
//!
//! `--threads N` caps the tuner's thread axis; `--trace` records the
//! flight recorder across the tuning trials (exported as
//! `TRACE_tune.json`); `--json PATH` redirects the primary artifact.

use lqcd_bench::{artifact_dir, BenchArgs};
use lqcd_core::problem::WilsonProblem;
use lqcd_core::tuning::{self, run_wilson_gcr_dd_tuned};
use lqcd_tune::{TuneCache, TunePolicy, TuneReport};
use lqcd_util::trace::{self, MetricsRegistry};
use serde::Serialize;
use std::time::Instant;

const RANKS: usize = 4;

#[derive(Serialize)]
struct PhaseSummary {
    key: String,
    cache_hit: bool,
    trials_run: usize,
    chosen: String,
    default_us: f64,
    tuned_us: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct BenchTune {
    global: [usize; 4],
    ranks: usize,
    cache_path: String,
    dslash: PhaseSummary,
    solver: PhaseSummary,
    /// True when *both* phases came straight from the persisted cache.
    cache_hit: bool,
    /// Micro-trials measured across both phases (0 on a warm cache).
    trials_run: usize,
    /// The fully tuned configuration.
    tuned: String,
    /// `TuneParam::fingerprint()` of the tuned configuration, hex
    /// (`SolveStats::tuned_config` of the verification solve).
    tuned_config: String,
    /// Combined measured speedup of the tuned configuration over the
    /// hardcoded defaults (product of the per-phase min-of-N measured
    /// ratios; ≥ 1 because each phase's argmin includes its baseline).
    speedup: f64,
    /// One-shot verification solves (informational; single-shot wall
    /// time, not min-of-N).
    verify_default_s: f64,
    verify_tuned_s: f64,
    converged: bool,
    solution_norm2: f64,
    /// Bit pattern of `solution_norm2`, hex — compare across runs to
    /// assert warm-cache solves are bit-identical.
    solution_norm2_bits: String,
}

fn phase(report: &TuneReport) -> PhaseSummary {
    PhaseSummary {
        key: report.key.cache_key(),
        cache_hit: report.cache_hit,
        trials_run: report.trials_run,
        chosen: report.decision.param.label(),
        default_us: report.decision.default_us,
        tuned_us: report.decision.tuned_us,
        speedup: report.decision.speedup(),
    }
}

fn main() {
    let args = BenchArgs::parse();
    if args.trace {
        trace::enable();
    }
    let mut p = WilsonProblem::small();
    // Micro-trial solves: a looser tolerance keeps each trial short
    // without changing the relative ordering of candidates.
    p.tol = 1e-6;
    p.gcr.tol = 1e-6;
    let max_threads =
        args.threads_or(std::thread::available_parallelism().map_or(1, |n| n.get()).min(4));

    let cache_path = artifact_dir().join("TUNE_CACHE.json");
    let mut cache = match TuneCache::open(&cache_path) {
        Ok(c) => c,
        Err(e) => {
            println!("tune cache unreadable ({e}); discarding and retuning");
            TuneCache::empty(&cache_path)
        }
    };
    let mut metrics = MetricsRegistry::new();

    println!(
        "lqcd-tune — Wilson-clover on {:?}, {RANKS} ranks, thread axis ≤ {max_threads}",
        p.global.0
    );
    println!("cache: {} ({} prior decisions)\n", cache_path.display(), cache.len());

    let started = Instant::now();
    let outcome = tuning::tune_wilson(&p, RANKS, max_threads, &mut cache, &mut metrics)
        .expect("tuning failed");
    let tune_s = started.elapsed().as_secs_f64();

    for (name, report) in [("dslash", &outcome.dslash), ("gcr_dd", &outcome.solver)] {
        if report.cache_hit {
            println!(
                "phase {name}: cache hit — {} ({:.1} µs, speedup {:.2}x), 0 trials",
                report.decision.param.label(),
                report.decision.tuned_us,
                report.decision.speedup()
            );
        } else {
            println!("phase {name}: {} micro-trials", report.trials_run);
            print!("{}", report.table());
            println!(
                "  -> {} ({:.1} µs vs default {:.1} µs, speedup {:.2}x)",
                report.decision.param.label(),
                report.decision.tuned_us,
                report.decision.default_us,
                report.decision.speedup()
            );
        }
        println!();
    }

    let best = outcome.best();
    let speedup = outcome.dslash.decision.speedup() * outcome.solver.decision.speedup();

    // Verification solves: defaults vs the tuned configuration.
    let t = Instant::now();
    let default_out = run_wilson_gcr_dd_tuned(&p, RANKS, &TunePolicy::Off).expect("default solve");
    let verify_default_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let tuned_out =
        run_wilson_gcr_dd_tuned(&p, RANKS, &TunePolicy::Fixed(best)).expect("tuned solve");
    let verify_tuned_s = t.elapsed().as_secs_f64();
    let converged = tuned_out.iter().all(|o| o.stats.converged)
        && default_out.iter().all(|o| o.stats.converged);
    let n2 = tuned_out[0].solution_norm2;
    assert!(
        tuned_out.iter().all(|o| o.solution_norm2.to_bits() == n2.to_bits()),
        "ranks disagree on the tuned solution norm"
    );
    assert_eq!(tuned_out[0].stats.tuned_config, best.fingerprint());

    println!("tuned configuration : {} (fingerprint {:016x})", best.label(), best.fingerprint());
    println!("measured speedup    : {speedup:.2}x vs hardcoded defaults (min-of-N trials)");
    println!(
        "verification solve  : default {verify_default_s:.2} s, tuned {verify_tuned_s:.2} s \
         (single shot), converged: {converged}"
    );
    println!("solution ‖x‖²       : {n2:.12e} (bits {:016x})", n2.to_bits());
    println!("tuning wall time    : {tune_s:.1} s");
    print!("{}", metrics.text_report());

    let report = BenchTune {
        global: p.global.0,
        ranks: RANKS,
        cache_path: cache_path.display().to_string(),
        dslash: phase(&outcome.dslash),
        solver: phase(&outcome.solver),
        cache_hit: outcome.dslash.cache_hit && outcome.solver.cache_hit,
        trials_run: outcome.dslash.trials_run + outcome.solver.trials_run,
        tuned: best.label(),
        tuned_config: format!("{:016x}", best.fingerprint()),
        speedup,
        verify_default_s,
        verify_tuned_s,
        converged,
        solution_norm2: n2,
        solution_norm2_bits: format!("{:016x}", n2.to_bits()),
    };
    args.write_primary("BENCH_tune", &report);
    assert!(report.speedup >= 1.0, "tuned config slower than baseline: {:.3}x", report.speedup);

    if args.trace {
        trace::disable();
        let ranks_trace = trace::take();
        let json = trace::export_chrome_json(&ranks_trace);
        let path = artifact_dir().join("TRACE_tune.json");
        std::fs::write(&path, &json).expect("write trace artifact");
        println!("[artifact] {}", path.display());
    }
}

//! Regenerate Fig. 7: sustained solver Tflops, mixed-precision BiCGstab
//! vs GCR-DD (V = 32³×256, 10 MR steps in the preconditioner).

use lqcd_bench::{paper, BenchArgs};
use lqcd_perf::solver_model::WilsonIterModel;
use lqcd_perf::{edge, sweep};

fn main() {
    let args = BenchArgs::parse();
    let model = edge();
    let im = WilsonIterModel::default();
    let pts = sweep::fig7_fig8(&model, &im).expect("fig7 sweep");
    println!("Fig. 7 — Wilson-clover solver sustained Tflops (V = 32³×256)");
    println!("{:>6} {:>10} {:>10} {:>8}", "GPUs", "solver", "Tflops", "iters");
    for p in &pts {
        println!("{:>6} {:>10} {:>10.2} {:>8.0}", p.gpus, p.solver, p.tflops, p.iterations);
    }
    let tf = |solver: &str, gpus: usize| {
        pts.iter().find(|p| p.solver == solver && p.gpus == gpus).unwrap().tflops
    };
    println!(
        "\nGCR-DD at 128 GPUs: {:.1} Tflops (paper: exceeds {} Tflops at >=128)",
        tf("GCR-DD", 128),
        paper::GCR_TFLOPS_AT_128
    );
    // Effective-BiCGstab numbers: GCR time scaled into BiCGstab flop terms
    // (the paper quotes 9.95 / 11.5 Tflops at 128 / 256).
    for gpus in [128usize, 256] {
        let b = pts.iter().find(|p| p.solver == "BiCGstab" && p.gpus == gpus).unwrap();
        let g = pts.iter().find(|p| p.solver == "GCR-DD" && p.gpus == gpus).unwrap();
        let effective = b.tflops * b.time_to_solution / g.time_to_solution;
        println!(
            "effective BiCGstab performance of GCR-DD at {gpus} GPUs: {:.2} Tflops (paper: {}; \
             the ratio matches — the absolute level scales with our lower modeled BiCGstab \
             sustained rate, see EXPERIMENTS.md)",
            effective,
            if gpus == 128 { "9.95" } else { "11.5" }
        );
    }
    args.write_primary("fig7", &pts);
}

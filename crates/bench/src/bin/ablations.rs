//! Model-level ablations of the paper's design choices and anticipated
//! improvements (DESIGN.md ◆ items):
//!
//! * GPU-Direct (§6.3 future work): drop both host memcpies from every
//!   ghost pipeline;
//! * gauge-link compression: 18 vs 12 vs 8 reals per link;
//! * MR-step count in the Schwarz preconditioner;
//! * GCR restart length (kmax).

use lqcd_bench::BenchArgs;
use lqcd_lattice::{Dims, PartitionScheme};
use lqcd_perf::cost::{OpConfig, PartitionGeometry};
use lqcd_perf::solver_model::{gcr_dd_solve, WilsonIterModel};
use lqcd_perf::{edge, edge_gpu_direct, simulate_dslash, OperatorKind, Precision, Recon};
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    name: String,
    gpus: usize,
    value: f64,
}

fn main() {
    let args = BenchArgs::parse();
    let mut rows = Vec::new();
    let volume = Dims::symm(32, 256);
    let sp = OpConfig {
        kind: OperatorKind::WilsonClover,
        precision: Precision::Single,
        recon: Recon::Twelve,
    };

    println!("── GPU-Direct ablation (§6.3): Wilson-clover SP dslash Gflops/GPU ──");
    println!("{:>6} {:>12} {:>14} {:>8}", "GPUs", "Edge 2011", "+GPU-Direct", "gain");
    let base = edge();
    let direct = edge_gpu_direct();
    for gpus in [32usize, 64, 128, 256] {
        let geo = PartitionGeometry::of(&PartitionScheme::XYZT.grid(volume, gpus).unwrap());
        let flops = geo.vol_cb as f64 * sp.nominal_flops_per_site();
        let g0 = flops / simulate_dslash(&base, &geo, &sp).total / 1e9;
        let g1 = flops / simulate_dslash(&direct, &geo, &sp).total / 1e9;
        println!("{:>6} {:>12.1} {:>14.1} {:>7.0}%", gpus, g0, g1, (g1 / g0 - 1.0) * 100.0);
        rows.push(AblationRow { name: "gpu_direct_gain".into(), gpus, value: g1 / g0 });
    }

    println!("\n── link compression: SP dslash Gflops/GPU (device-bound vs comm-bound) ──");
    for gpus in [8usize, 64] {
        let geo = PartitionGeometry::of(&PartitionScheme::XYZT.grid(volume, gpus).unwrap());
        print!("{gpus:>4} GPUs: ");
        for recon in [Recon::None, Recon::Twelve, Recon::Eight] {
            let cfg = OpConfig { recon, ..sp };
            let flops = geo.vol_cb as f64 * cfg.nominal_flops_per_site();
            let g = flops / simulate_dslash(&base, &geo, &cfg).total / 1e9;
            print!("{}r {:>6.1}  ", recon.reals(), g);
            rows.push(AblationRow { name: format!("recon_{}", recon.reals()), gpus, value: g });
        }
        println!();
    }
    println!("(compression pays where the kernel is bandwidth-bound — small partitions —");
    println!(" and washes out once communication dominates, which is why the paper pairs");
    println!(" it with the communication-reducing algorithm rather than relying on it)");

    println!("\n── Schwarz MR steps: GCR-DD TTS at 256 GPUs (model) ──");
    let hp = OpConfig { precision: Precision::Half, ..sp };
    let geo256 = PartitionGeometry::of(&PartitionScheme::XYZT.grid(volume, 256).unwrap());
    for steps in [4usize, 8, 10, 16] {
        // More MR steps cost more block work but strengthen the
        // preconditioner: model the iteration saving as ∝ steps^-0.3
        // around the calibrated 10-step point.
        let mut im = WilsonIterModel { mr_steps: steps, ..Default::default() };
        im.gcr_outer_ref *= (10.0 / steps as f64).powf(0.3);
        let s = gcr_dd_solve(&base, &geo256, &sp, &hp, &im);
        println!(
            "{:>4} MR steps: TTS {:>6.2} s ({:.0} outer iters)",
            steps, s.time_to_solution, s.iterations
        );
        rows.push(AblationRow {
            name: format!("mr_{steps}"),
            gpus: 256,
            value: s.time_to_solution,
        });
    }

    println!("\n── GCR restart length kmax: TTS at 256 GPUs (model) ──");
    for kmax in [8usize, 16, 32] {
        let im = WilsonIterModel { kmax, ..Default::default() };
        let s = gcr_dd_solve(&base, &geo256, &sp, &hp, &im);
        println!("{:>4} kmax: TTS {:>6.2} s", kmax, s.time_to_solution);
        rows.push(AblationRow {
            name: format!("kmax_{kmax}"),
            gpus: 256,
            value: s.time_to_solution,
        });
    }

    args.write_primary("ablations", &rows);
}

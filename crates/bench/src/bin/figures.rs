//! Regenerate every evaluation figure in one run (Figs. 4–10), plus the
//! measured-iteration calibration data that feeds the model. This is the
//! binary EXPERIMENTS.md is produced from.

use lqcd_bench::{paper, write_artifact, BenchArgs};
use lqcd_core::calibration::{fit_block_exponent, measure_dd_block_dependence};
use lqcd_core::WilsonProblem;
use lqcd_perf::solver_model::{StaggeredIterModel, WilsonIterModel};
use lqcd_perf::{edge, sweep};

fn section(title: &str) {
    println!("\n{}\n{}", title, "─".repeat(title.len().min(100)));
}

fn main() {
    // Multi-artifact bin: the flags parse for consistency, but there is
    // no single primary artifact for --json to redirect — each figure
    // keeps its standard target/figures/<name>.json location.
    let _args = BenchArgs::parse();
    let model = edge();
    let im = WilsonIterModel::default();
    let sm = StaggeredIterModel::default();

    section("Calibration: measured GCR-DD block dependence (real solves, 8⁴ lattice)");
    let mut problem = WilsonProblem::small();
    problem.disorder = 0.35;
    problem.mass = 0.05;
    problem.tol = 1e-7;
    problem.gcr.tol = 1e-7;
    match measure_dd_block_dependence(&problem, &[1, 4, 16]) {
        Ok(points) => {
            println!("{:>8} {:>10} {:>12} {:>12}", "ranks", "block_cb", "GCR-DD outer", "BiCGstab");
            for p in &points {
                println!(
                    "{:>8} {:>10} {:>12} {:>12}",
                    p.ranks, p.block_cb, p.outer_iterations, p.bicgstab_iterations
                );
            }
            let q = fit_block_exponent(&points);
            println!("fitted block exponent q = {q:.3} (model uses {})", im.block_exponent);
            write_artifact("calibration_dd", &points);
        }
        Err(e) => println!("calibration run skipped: {e}"),
    }

    section("Fig. 5 — Wilson-clover dslash Gflops/GPU (SP & HP)");
    let f5 = sweep::fig5(&model).expect("fig5");
    for p in &f5 {
        let table = if p.precision == "SP" { &paper::FIG5_SP } else { &paper::FIG5_HP };
        let r = table.iter().find(|(g, _)| *g == p.gpus).map(|(_, v)| *v).unwrap_or(f64::NAN);
        println!(
            "{:>6} {:>4}  paper≈{:>6.0}  model {:>6.1}",
            p.gpus, p.precision, r, p.gflops_per_gpu
        );
    }
    write_artifact("fig5", &f5);

    section("Fig. 6 — asqtad dslash Gflops/GPU by partitioning");
    let f6 = sweep::fig6(&model).expect("fig6");
    for p in &f6 {
        println!("{:>6} {:>5} {:>4} {:>8.1}", p.gpus, p.scheme, p.precision, p.gflops_per_gpu);
    }
    write_artifact("fig6", &f6);

    section("Figs. 7/8 — BiCGstab vs GCR-DD (sustained Tflops, time to solution)");
    let f78 = sweep::fig7_fig8(&model, &im).expect("fig7/8");
    for p in &f78 {
        println!(
            "{:>6} {:>9}  {:>7.2} Tflops  TTS {:>7.2} s  ({:.0} iters)",
            p.gpus, p.solver, p.tflops, p.time_to_solution, p.iterations
        );
    }
    write_artifact("fig7_fig8", &f78);

    section("Fig. 9 — capability machines");
    let f9 = sweep::fig9();
    for p in &f9 {
        println!("{:>8} cores  {:>16}  {:>7.2} Tflops", p.cores, p.machine, p.tflops);
    }
    write_artifact("fig9", &f9);

    section("Fig. 10 — asqtad multi-shift total Tflops");
    let f10 = sweep::fig10(&model, &sm).expect("fig10");
    for p in &f10 {
        println!("{:>6} {:>5}  {:>7.2} Tflops", p.gpus, p.scheme, p.total_tflops);
    }
    write_artifact("fig10", &f10);

    section("Headline checks");
    let tts = |solver: &str, gpus: usize| {
        f78.iter()
            .find(|p| p.solver == solver && p.gpus == gpus)
            .map(|p| p.time_to_solution)
            .unwrap()
    };
    for gpus in [64usize, 128, 256] {
        println!(
            "GCR-DD improvement at {gpus:>3} GPUs: {:.2}x (paper: {})",
            tts("BiCGstab", gpus) / tts("GCR-DD", gpus),
            match gpus {
                64 => "1.52x",
                128 => "1.63x",
                _ => "1.64x",
            }
        );
    }
    let g128 =
        f78.iter().find(|p| p.solver == "GCR-DD" && p.gpus == 128).map(|p| p.tflops).unwrap();
    println!("GCR-DD sustained at 128 GPUs: {g128:.1} Tflops (paper: >10)");
    let x64 = f10.iter().find(|p| p.scheme == "XYZT" && p.gpus == 64).unwrap().total_tflops;
    let x256 = f10.iter().find(|p| p.scheme == "XYZT" && p.gpus == 256).unwrap().total_tflops;
    println!("multi-shift 64→256 speedup: {:.2}x (paper: 2.56x)", x256 / x64);
    println!("multi-shift total at 256: {x256:.2} Tflops (paper: 5.49)");
}

//! Regenerate Fig. 6: asqtad dslash strong scaling by partitioning
//! scheme (DP/SP, V = 64³×192, no reconstruction, 32→256 GPUs).

use lqcd_bench::BenchArgs;
use lqcd_perf::{edge, sweep};

fn main() {
    let args = BenchArgs::parse();
    let model = edge();
    let pts = sweep::fig6(&model).expect("fig6 sweep");
    println!("Fig. 6 — asqtad dslash, V = 64³×192, Gflops/GPU by partitioning");
    println!("{:>6} {:>6} {:>6} {:>12}", "GPUs", "dims", "prec", "Gflops/GPU");
    for p in &pts {
        println!("{:>6} {:>6} {:>6} {:>12.1}", p.gpus, p.scheme, p.precision, p.gflops_per_gpu);
    }
    // The paper's observation: the scheme with the worst kernel speed
    // (XYZT, most exterior kernels) has the best 256-GPU throughput.
    let get = |scheme: &str, gpus: usize, prec: &str| {
        pts.iter()
            .find(|p| p.scheme == scheme && p.gpus == gpus && p.precision == prec)
            .map(|p| p.gflops_per_gpu)
    };
    if let (Some(x256), Some(y256)) = (get("XYZT", 256, "SP"), get("YZT", 256, "SP")) {
        println!(
            "\nat 256 GPUs (SP): XYZT {:.1} vs YZT {:.1} — {}",
            x256,
            y256,
            if x256 > y256 {
                "minimal surface-to-volume wins at scale (paper §7.3)"
            } else {
                "unexpected ordering"
            }
        );
    }
    args.write_primary("fig6", &pts);
}

//! Regenerate Fig. 10: asqtad mixed-precision multi-shift solver total
//! Tflops by partitioning (V = 64³×192, 64→256 GPUs).

use lqcd_bench::{paper, BenchArgs};
use lqcd_perf::solver_model::StaggeredIterModel;
use lqcd_perf::{edge, sweep};

fn main() {
    let args = BenchArgs::parse();
    let model = edge();
    let im = StaggeredIterModel::default();
    let pts = sweep::fig10(&model, &im).expect("fig10 sweep");
    println!("Fig. 10 — asqtad mixed-precision multi-shift solver, V = 64³×192");
    println!("{:>6} {:>6} {:>14}", "GPUs", "dims", "total Tflops");
    for p in &pts {
        println!("{:>6} {:>6} {:>14.2}", p.gpus, p.scheme, p.total_tflops);
    }
    let xyzt = |gpus: usize| {
        pts.iter()
            .find(|p| p.scheme == "XYZT" && p.gpus == gpus)
            .map(|p| p.total_tflops)
            .unwrap_or(0.0)
    };
    let speedup = xyzt(256) / xyzt(64);
    println!(
        "\nXYZT 64→256 speedup: {:.2}x (paper: 2.56x); 256-GPU total: {:.2} Tflops (paper: {:.2})",
        speedup,
        xyzt(256),
        paper::FIG10_XYZT[1].1
    );
    println!(
        "CPU comparison point: MILC on Kraken sustains {:.0} Gflops with 4096 cores (§9.2), so \
         one GPU ≈ {:.0} CPU cores here.",
        paper::KRAKEN_GFLOPS,
        xyzt(256) * 1000.0 / 256.0 / (paper::KRAKEN_GFLOPS / 4096.0)
    );
    args.write_primary("fig10", &pts);
}

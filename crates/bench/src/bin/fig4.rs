//! Regenerate Fig. 4 (the 9-stream schedule) as data: the per-stream
//! task timeline of one dslash application, with the GPU-idle interval
//! the paper highlights for small subvolumes.

use lqcd_bench::write_artifact;
use lqcd_lattice::{Dims, PartitionScheme};
use lqcd_perf::cost::{OpConfig, PartitionGeometry};
use lqcd_perf::{edge, simulate_dslash, OperatorKind, Precision, Recon};

fn main() {
    let model = edge();
    let cfg = OpConfig {
        kind: OperatorKind::WilsonClover,
        precision: Precision::Single,
        recon: Recon::Twelve,
    };
    println!("Fig. 4 — stream schedule of one dslash application (V = 32³×256)");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>8}",
        "GPUs", "total µs", "interior µs", "idle µs", "tasks"
    );
    let mut artifacts = Vec::new();
    for gpus in [16usize, 64, 256] {
        let grid = PartitionScheme::XYZT.grid(Dims::symm(32, 256), gpus).expect("grid");
        let geo = PartitionGeometry::of(&grid);
        let t = simulate_dslash(&model, &geo, &cfg);
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>12.1} {:>8}",
            gpus,
            t.total * 1e6,
            t.interior_end * 1e6,
            t.gpu_idle * 1e6,
            t.timeline.len()
        );
        artifacts.push((gpus, t));
    }
    println!(
        "\n'For small subvolumes, the total communication time over all dimensions is likely to \
         exceed the interior kernel run time, resulting in some interval when the GPU is idle' \
         (§6.3) — visible in the growing idle column."
    );
    println!("Run `cargo run --release --example stream_timeline -- <gpus>` for the ASCII chart.");
    write_artifact("fig4", &artifacts);
}

//! Regenerate Fig. 4 (the 9-stream schedule) as data: the per-stream
//! task timeline of one dslash application, with the GPU-idle interval
//! the paper highlights for small subvolumes.
//!
//! With `--trace`, also runs a short *measured* section: a 4-rank
//! in-process world applying the real overlapped dslash with the flight
//! recorder on, exported as `TRACE_fig4.json` (Chrome `trace_event`
//! form) so the measured per-rank stream timeline can be eyeballed next
//! to the model's schedule.

use lqcd_bench::{artifact_dir, BenchArgs};
use lqcd_lattice::{Dims, PartitionScheme};
use lqcd_perf::cost::{OpConfig, PartitionGeometry};
use lqcd_perf::{edge, simulate_dslash, OperatorKind, Precision, Recon};
use lqcd_util::trace;

/// The measured counterpart to the simulated schedule: trace a few real
/// overlapped applies and emit the per-rank timeline.
fn traced_measurement() {
    use lqcd_comms::run_on_grid;
    use lqcd_core::problem::WilsonProblem;
    use lqcd_dirac::BoundaryMode;
    use lqcd_lattice::ProcessGrid;

    trace::enable();
    let p = WilsonProblem::small();
    let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), p.global).expect("grid");
    let g = grid.clone();
    let results = run_on_grid(grid, move |mut comm| -> lqcd_util::Result<()> {
        let op = p.build_operator(&mut comm, &g)?;
        let mut src = p.rhs(&op);
        let mut out = op.alloc(src.parity().other());
        for _ in 0..5 {
            op.dslash(&mut out, &mut src, &mut comm, BoundaryMode::Full)?;
        }
        Ok(())
    });
    for r in results {
        r.expect("traced fig4 world");
    }
    trace::disable();
    let ranks = trace::take();
    let json = trace::export_chrome_json(&ranks);
    let path = artifact_dir().join("TRACE_fig4.json");
    std::fs::write(&path, &json).expect("write trace artifact");
    println!("\nMeasured stream timeline (5 overlapped applies, 4 ranks):");
    println!("[artifact] {} (load in about:tracing or ui.perfetto.dev)", path.display());
    print!("{}", trace::summarize(&ranks));
}

fn main() {
    let args = BenchArgs::parse();
    let traced = args.trace;
    let model = edge();
    let cfg = OpConfig {
        kind: OperatorKind::WilsonClover,
        precision: Precision::Single,
        recon: Recon::Twelve,
    };
    println!("Fig. 4 — stream schedule of one dslash application (V = 32³×256)");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>8}",
        "GPUs", "total µs", "interior µs", "idle µs", "tasks"
    );
    let mut artifacts = Vec::new();
    for gpus in [16usize, 64, 256] {
        let grid = PartitionScheme::XYZT.grid(Dims::symm(32, 256), gpus).expect("grid");
        let geo = PartitionGeometry::of(&grid);
        let t = simulate_dslash(&model, &geo, &cfg);
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>12.1} {:>8}",
            gpus,
            t.total * 1e6,
            t.interior_end * 1e6,
            t.gpu_idle * 1e6,
            t.timeline.len()
        );
        artifacts.push((gpus, t));
    }
    println!(
        "\n'For small subvolumes, the total communication time over all dimensions is likely to \
         exceed the interior kernel run time, resulting in some interval when the GPU is idle' \
         (§6.3) — visible in the growing idle column."
    );
    println!("Run `cargo run --release --example stream_timeline -- <gpus>` for the ASCII chart.");
    args.write_primary("fig4", &artifacts);
    if traced {
        traced_measurement();
    }
}

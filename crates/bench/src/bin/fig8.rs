//! Regenerate Fig. 8: time to solution, BiCGstab vs GCR-DD — the
//! paper's headline result (GCR-DD wins past 32 GPUs by 1.52×–1.64×).

use lqcd_bench::{paper, BenchArgs};
use lqcd_perf::solver_model::WilsonIterModel;
use lqcd_perf::{edge, sweep};

fn main() {
    let args = BenchArgs::parse();
    let model = edge();
    let im = WilsonIterModel::default();
    let pts = sweep::fig7_fig8(&model, &im).expect("fig8 sweep");
    println!("Fig. 8 — time to solution (s), V = 32³×256");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "GPUs", "BiCG paper≈", "BiCG model", "GCR paper≈", "GCR model", "win paper", "win model"
    );
    let tts = |solver: &str, gpus: usize| {
        pts.iter().find(|p| p.solver == solver && p.gpus == gpus).map(|p| p.time_to_solution)
    };
    for &(gpus, b_ref, g_ref) in &paper::FIG8 {
        let (Some(b), Some(g)) = (tts("BiCGstab", gpus), tts("GCR-DD", gpus)) else { continue };
        println!(
            "{:>6} {:>12.1} {:>12.2} {:>12.1} {:>12.2} {:>10.2} {:>10.2}",
            gpus,
            b_ref,
            b,
            g_ref,
            g,
            b_ref / g_ref,
            b / g
        );
    }
    println!("\n(paper quotes improvement factors 1.52x / 1.63x / 1.64x at 64 / 128 / 256 GPUs;");
    println!(" crossover between 32 and 64 GPUs — 'at 32 GPUs BiCGstab is a superior solver')");
    args.write_primary("fig8", &pts);
}

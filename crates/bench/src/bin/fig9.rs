//! Regenerate Fig. 9: capability-machine context — sustained solver
//! Tflops of BG/P, XT4 and XT5 on the same 32³×256 volume, placing the
//! GPU results against contemporary leadership systems.

use lqcd_bench::BenchArgs;
use lqcd_perf::sweep;

fn main() {
    let args = BenchArgs::parse();
    let pts = sweep::fig9();
    println!("Fig. 9 — capability machines, V = 32³×256, sustained solver Tflops");
    println!("{:>8} {:>16} {:>30} {:>10}", "cores", "machine", "solver", "Tflops");
    for p in &pts {
        println!("{:>8} {:>16} {:>30} {:>10.2}", p.cores, p.machine, p.solver, p.tflops);
    }
    let max = pts.iter().map(|p| p.tflops).fold(0.0f64, f64::max);
    println!(
        "\npeak sustained: {max:.1} Tflops (paper: 'the performance range of 10-17 Tflops is \
         attained on partitions of size greater than 16,384 cores')"
    );
    println!(
        "GPU comparison: the GCR-DD solves reach >10 Tflops on 128 GPUs (Fig. 7) — 'on par \
         with capability-class systems'."
    );
    args.write_primary("fig9", &pts);
}

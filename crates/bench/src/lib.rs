//! Benchmark-harness support: table rendering, JSON artifact output, and
//! the paper's reference numbers for side-by-side comparison.
//!
//! Binaries (`fig4` … `fig10`, `figures`) regenerate each evaluation
//! figure from the calibrated performance model and print paper-vs-model
//! tables; criterion benches (`benches/`) measure the real Rust kernels
//! and the ablations called out in DESIGN.md.

use serde::Serialize;
use std::path::PathBuf;

/// Where figure artifacts (JSON series) are written.
pub fn artifact_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/figures");
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    dir
}

/// Serialize a figure series to `target/figures/<name>.json`.
pub fn write_artifact<T: Serialize>(name: &str, value: &T) {
    let path = artifact_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize artifact");
    std::fs::write(&path, json).expect("write artifact");
    println!("[artifact] {}", path.display());
}

/// Paper reference points (digitized from the figures; approximate — the
/// axes are log-scale plots). Used for the paper-vs-model columns.
pub mod paper {
    /// Fig. 5, Wilson-clover SP Gflops/GPU at [8, 16, 32, 64, 128, 256].
    pub const FIG5_SP: [(usize, f64); 6] =
        [(8, 128.0), (16, 120.0), (32, 95.0), (64, 60.0), (128, 40.0), (256, 27.0)];
    /// Fig. 5, HP.
    pub const FIG5_HP: [(usize, f64); 6] =
        [(8, 210.0), (16, 195.0), (32, 130.0), (64, 75.0), (128, 47.0), (256, 30.0)];
    /// Fig. 8: (gpus, BiCGstab TTS s, GCR-DD TTS s). GCR-DD improvement
    /// factors 1.52/1.63/1.64 at 64/128/256 are quoted in the text.
    pub const FIG8: [(usize, f64, f64); 4] =
        [(32, 8.5, 9.5), (64, 7.0, 4.6), (128, 6.4, 3.9), (256, 6.2, 3.8)];
    /// Fig. 10 headline numbers: XYZT total Tflops at 64/256 GPUs; the
    /// text quotes 2.56× for 64→256 and 5.49 Tflops at 256.
    pub const FIG10_XYZT: [(usize, f64); 2] = [(64, 2.14), (256, 5.49)];
    /// §9.1: GCR-DD exceeds 10 Tflops at ≥128 GPUs.
    pub const GCR_TFLOPS_AT_128: f64 = 10.0;
    /// §9.2: MILC on Kraken, 942 Gflops at 4096 cores.
    pub const KRAKEN_GFLOPS: f64 = 942.0;
}

/// Render a uniform comparison row.
pub fn row(cols: &[String]) -> String {
    cols.iter().map(|c| format!("{c:>14}")).collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_round_trip() {
        #[derive(Serialize)]
        struct Tiny {
            x: i32,
        }
        write_artifact("test_artifact", &Tiny { x: 7 });
        let back = std::fs::read_to_string(artifact_dir().join("test_artifact.json")).unwrap();
        assert!(back.contains("\"x\": 7"));
    }

    #[test]
    fn paper_constants_sane() {
        assert_eq!(paper::FIG5_SP.len(), 6);
        // The quoted improvement factors hold in the digitized table.
        for (gpus, b, g) in &paper::FIG8[1..] {
            let ratio = b / g;
            assert!((1.4..1.8).contains(&ratio), "{gpus}: {ratio}");
        }
    }
}

//! Benchmark-harness support: table rendering, JSON artifact output, and
//! the paper's reference numbers for side-by-side comparison.
//!
//! Binaries (`fig4` … `fig10`, `figures`) regenerate each evaluation
//! figure from the calibrated performance model and print paper-vs-model
//! tables; criterion benches (`benches/`) measure the real Rust kernels
//! and the ablations called out in DESIGN.md.

use serde::Serialize;
use std::path::PathBuf;

/// Where figure artifacts (JSON series) are written.
pub fn artifact_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/figures");
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    dir
}

/// Serialize a figure series to `target/figures/<name>.json`.
pub fn write_artifact<T: Serialize>(name: &str, value: &T) {
    let path = artifact_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize artifact");
    std::fs::write(&path, json).expect("write artifact");
    println!("[artifact] {}", path.display());
}

const USAGE: &str = "usage: <bin> [--trace] [--threads N] [--json PATH]
  --trace      record the flight recorder across the run (bins that
               measure real kernels export TRACE_*.json)
  --threads N  interior worker threads for measured sections
  --json PATH  write the primary JSON artifact to PATH instead of
               target/figures/<name>.json";

/// Command-line arguments every bench binary accepts, parsed one way.
///
/// All three flags parse in every bin; `--trace` and `--threads` only
/// change behaviour in bins with a measured (real-kernel) section —
/// model-only figure bins accept them as no-ops so invocations stay
/// interchangeable across binaries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BenchArgs {
    /// `--trace`: enable the flight recorder.
    pub trace: bool,
    /// `--threads N`: interior worker threads for measured sections.
    pub threads: Option<usize>,
    /// `--json PATH`: redirect the primary artifact.
    pub json: Option<PathBuf>,
}

impl BenchArgs {
    /// Parse the process arguments; prints usage and exits on a flag it
    /// does not know.
    pub fn parse() -> Self {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("error: {msg}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Parse from an explicit argument list (testable core of
    /// [`BenchArgs::parse`]).
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> std::result::Result<Self, String> {
        let mut out = BenchArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--trace" => out.trace = true,
                "--threads" => {
                    let v = it.next().ok_or("--threads needs a value")?;
                    let n: usize =
                        v.parse().map_err(|_| format!("--threads: '{v}' is not a number"))?;
                    if n == 0 {
                        return Err("--threads must be positive".into());
                    }
                    out.threads = Some(n);
                }
                "--json" => {
                    let v = it.next().ok_or("--json needs a path")?;
                    out.json = Some(PathBuf::from(v));
                }
                other => return Err(format!("unknown argument '{other}'")),
            }
        }
        Ok(out)
    }

    /// The interior thread count: `--threads` if given, else `default`.
    pub fn threads_or(&self, default: usize) -> usize {
        self.threads.unwrap_or(default)
    }

    /// Write the bin's primary artifact: to `--json PATH` when given,
    /// else to the standard `target/figures/<name>.json` location.
    pub fn write_primary<T: Serialize>(&self, name: &str, value: &T) {
        match &self.json {
            Some(path) => {
                let json = serde_json::to_string_pretty(value).expect("serialize artifact");
                if let Some(dir) = path.parent() {
                    if !dir.as_os_str().is_empty() {
                        std::fs::create_dir_all(dir).expect("create artifact dir");
                    }
                }
                std::fs::write(path, json).expect("write artifact");
                println!("[artifact] {}", path.display());
            }
            None => write_artifact(name, value),
        }
    }
}

/// Paper reference points (digitized from the figures; approximate — the
/// axes are log-scale plots). Used for the paper-vs-model columns.
pub mod paper {
    /// Fig. 5, Wilson-clover SP Gflops/GPU at [8, 16, 32, 64, 128, 256].
    pub const FIG5_SP: [(usize, f64); 6] =
        [(8, 128.0), (16, 120.0), (32, 95.0), (64, 60.0), (128, 40.0), (256, 27.0)];
    /// Fig. 5, HP.
    pub const FIG5_HP: [(usize, f64); 6] =
        [(8, 210.0), (16, 195.0), (32, 130.0), (64, 75.0), (128, 47.0), (256, 30.0)];
    /// Fig. 8: (gpus, BiCGstab TTS s, GCR-DD TTS s). GCR-DD improvement
    /// factors 1.52/1.63/1.64 at 64/128/256 are quoted in the text.
    pub const FIG8: [(usize, f64, f64); 4] =
        [(32, 8.5, 9.5), (64, 7.0, 4.6), (128, 6.4, 3.9), (256, 6.2, 3.8)];
    /// Fig. 10 headline numbers: XYZT total Tflops at 64/256 GPUs; the
    /// text quotes 2.56× for 64→256 and 5.49 Tflops at 256.
    pub const FIG10_XYZT: [(usize, f64); 2] = [(64, 2.14), (256, 5.49)];
    /// §9.1: GCR-DD exceeds 10 Tflops at ≥128 GPUs.
    pub const GCR_TFLOPS_AT_128: f64 = 10.0;
    /// §9.2: MILC on Kraken, 942 Gflops at 4096 cores.
    pub const KRAKEN_GFLOPS: f64 = 942.0;
}

/// Render a uniform comparison row.
pub fn row(cols: &[String]) -> String {
    cols.iter().map(|c| format!("{c:>14}")).collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_round_trip() {
        #[derive(Serialize)]
        struct Tiny {
            x: i32,
        }
        write_artifact("test_artifact", &Tiny { x: 7 });
        let back = std::fs::read_to_string(artifact_dir().join("test_artifact.json")).unwrap();
        assert!(back.contains("\"x\": 7"));
    }

    #[test]
    fn bench_args_parse_all_flags_and_reject_garbage() {
        let ok = |args: &[&str]| BenchArgs::try_parse(args.iter().map(|s| s.to_string()));
        assert_eq!(ok(&[]).unwrap(), BenchArgs::default());
        let a = ok(&["--trace", "--threads", "3", "--json", "/tmp/x.json"]).unwrap();
        assert!(a.trace);
        assert_eq!(a.threads, Some(3));
        assert_eq!(a.json.as_deref(), Some(std::path::Path::new("/tmp/x.json")));
        assert_eq!(a.threads_or(8), 3);
        assert_eq!(ok(&[]).unwrap().threads_or(8), 8);
        assert!(ok(&["--threads"]).is_err());
        assert!(ok(&["--threads", "zero"]).is_err());
        assert!(ok(&["--threads", "0"]).is_err());
        assert!(ok(&["--json"]).is_err());
        assert!(ok(&["--frobnicate"]).is_err());
    }

    #[test]
    fn paper_constants_sane() {
        assert_eq!(paper::FIG5_SP.len(), 6);
        // The quoted improvement factors hold in the digitized table.
        for (gpus, b, g) in &paper::FIG8[1..] {
            let ratio = b / g;
            assert!((1.4..1.8).contains(&ratio), "{gpus}: {ratio}");
        }
    }
}

//! Tune-cache persistence contract: write → reload → identical
//! decisions, and every corruption mode (truncation, bit flips, bad
//! magic, stale version) is a structured outcome — never a panic,
//! never a silent stale hit.

use lqcd_lattice::{Dims, PartitionScheme};
use lqcd_tune::{LadderChoice, TuneCache, TuneDecision, TuneKey, TuneParam};
use lqcd_util::Error;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("lqcd-tune-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn sample_key(ranks: usize) -> TuneKey {
    TuneKey::new("wilson_clover/dslash", Dims([8, 8, 8, 8]), ranks)
}

fn sample_decision(scheme: PartitionScheme, tuned_us: f64) -> TuneDecision {
    TuneDecision {
        param: TuneParam {
            scheme,
            interior_threads: 2,
            ghost_order: [3, 2, 1, 0],
            mr_steps: 8,
            n_kv: 16,
            ladder: LadderChoice::Double,
        },
        tuned_us,
        default_us: tuned_us * 1.25,
        model_us: tuned_us * 0.9,
        trials: 7,
    }
}

#[test]
fn round_trip_reloads_identical_decisions() {
    let path = tmpdir("roundtrip").join("cache.json");
    let mut cache = TuneCache::empty(&path);
    cache.insert(&sample_key(4), sample_decision(PartitionScheme::XYZT, 12.5));
    cache.insert(&sample_key(8), sample_decision(PartitionScheme::ZT, 9.75));
    cache.save().unwrap();

    let back = TuneCache::open(&path).unwrap();
    assert_eq!(back.len(), 2);
    for ranks in [4, 8] {
        let key = sample_key(ranks);
        assert_eq!(back.lookup(&key), cache.lookup(&key), "ranks {ranks}");
    }
    // Full float fidelity survives the JSON round trip.
    let d = back.lookup(&sample_key(4)).unwrap();
    assert_eq!(d.tuned_us.to_bits(), 12.5f64.to_bits());
    assert_eq!(d.param.ghost_order, [3, 2, 1, 0]);
}

#[test]
fn missing_file_reads_as_empty() {
    let path = tmpdir("missing").join("nope.json");
    let cache = TuneCache::open(&path).unwrap();
    assert!(cache.is_empty());
    assert!(cache.lookup(&sample_key(4)).is_none());
}

#[test]
fn truncated_file_is_structured_corruption() {
    let path = tmpdir("truncate").join("cache.json");
    let mut cache = TuneCache::empty(&path);
    cache.insert(&sample_key(4), sample_decision(PartitionScheme::XYZT, 12.5));
    cache.save().unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    for keep in [0, 1, text.len() / 2, text.len() - 1] {
        std::fs::write(&path, &text[..keep]).unwrap();
        match TuneCache::open(&path) {
            Err(Error::Corrupt { .. }) => {}
            other => panic!("truncation at {keep} gave {other:?}"),
        }
    }
}

#[test]
fn bit_flips_never_produce_a_stale_hit() {
    let path = tmpdir("bitflip").join("cache.json");
    let mut cache = TuneCache::empty(&path);
    cache.insert(&sample_key(4), sample_decision(PartitionScheme::XYZT, 12.5));
    cache.save().unwrap();
    let original = std::fs::read(&path).unwrap();
    let reference = TuneCache::open(&path).unwrap();
    let key = sample_key(4);

    // Flip one bit at a spread of positions. Every outcome must be
    // either Corrupt or a cache whose decision for the key is exactly
    // the original (flips in whitespace / unparsed regions) — never a
    // panic, never a changed decision accepted as valid.
    let step = (original.len() / 97).max(1);
    for pos in (0..original.len()).step_by(step) {
        let mut bytes = original.clone();
        bytes[pos] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        match TuneCache::open(&path) {
            Err(Error::Corrupt { .. }) | Err(Error::Io { .. }) => {}
            Ok(c) => {
                let got = c.lookup(&key);
                assert!(
                    got.is_none() || got == reference.lookup(&key),
                    "flip at {pos} silently changed the decision: {got:?}"
                );
            }
            Err(e) => panic!("flip at {pos} gave unexpected error {e:?}"),
        }
    }
}

#[test]
fn bad_magic_is_corrupt_but_stale_version_retunes() {
    let path = tmpdir("version").join("cache.json");
    let mut cache = TuneCache::empty(&path);
    cache.insert(&sample_key(4), sample_decision(PartitionScheme::XYZT, 12.5));
    cache.save().unwrap();
    let text = std::fs::read_to_string(&path).unwrap();

    std::fs::write(&path, text.replace("LQTUNE01", "LQTUNE??")).unwrap();
    assert!(matches!(TuneCache::open(&path), Err(Error::Corrupt { .. })));

    // A *valid* file of a different version is the documented
    // invalidation rule: reads as empty (forcing a retune), not corrupt.
    std::fs::write(&path, text.replace("\"version\": 1", "\"version\": 999")).unwrap();
    let stale = TuneCache::open(&path).unwrap();
    assert!(stale.is_empty());
}

#[test]
fn save_is_atomic_no_tmp_residue() {
    let dir = tmpdir("atomic");
    let path = dir.join("cache.json");
    let mut cache = TuneCache::empty(&path);
    cache.insert(&sample_key(4), sample_decision(PartitionScheme::T, 20.0));
    cache.save().unwrap();
    cache.insert(&sample_key(8), sample_decision(PartitionScheme::ZT, 10.0));
    cache.save().unwrap();
    let names: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert_eq!(names, vec!["cache.json"], "tmp sibling must not survive a save");
    assert_eq!(TuneCache::open(&path).unwrap().len(), 2);
}

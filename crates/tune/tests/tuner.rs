//! Tuner search semantics on a synthetic (deterministic) trial
//! function: prior pruning, the bitwise guard, argmin selection with
//! the baseline always measured, cache hits running zero trials, and
//! corruption answered by a successful retune.

use lqcd_lattice::{Dims, PartitionScheme};
use lqcd_tune::{TrialOutcome, TuneCache, TuneKey, TuneParam, Tuner};
use lqcd_util::trace::MetricsRegistry;
use lqcd_util::Error;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("lqcd-tuner-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Synthetic cost: XYZT with 4 threads and descending completion is the
/// planted optimum; everything else is slower in a deterministic way.
fn synthetic_cost(p: &TuneParam) -> f64 {
    let scheme_cost = match p.scheme {
        PartitionScheme::XYZT => 1.0,
        PartitionScheme::YZT => 1.2,
        PartitionScheme::ZT => 1.5,
        PartitionScheme::T => 2.0,
    };
    let thread_cost = 1.0 + 1.0 / p.interior_threads as f64;
    let order_cost = if p.ghost_order == [3, 2, 1, 0] { 0.95 } else { 1.0 };
    scheme_cost * thread_cost * order_cost * 1e-5
}

fn key() -> TuneKey {
    TuneKey::new("wilson_clover/dslash", Dims([8, 8, 8, 8]), 4)
}

/// A dslash tuner with pruning effectively disabled, so every candidate
/// is measured and the planted optimum cannot be dropped on its model
/// prior.
fn exhaustive_tuner() -> Tuner {
    let mut t = Tuner::dslash(TuneParam::baseline(1), 4);
    t.keep = 1024;
    t
}

#[test]
fn picks_the_planted_optimum_and_measures_the_baseline() {
    let path = tmpdir("argmin").join("cache.json");
    let mut cache = TuneCache::empty(&path);
    let mut metrics = MetricsRegistry::new();
    let tuner = exhaustive_tuner();
    let mut calls = 0usize;
    let report = tuner
        .tune(&key(), &mut cache, &mut metrics, |p| {
            calls += 1;
            Ok(TrialOutcome { secs_per_unit: synthetic_cost(p), bit_identical: true })
        })
        .unwrap();

    assert!(!report.cache_hit);
    assert_eq!(report.trials_run, calls);
    let d = &report.decision;
    assert_eq!(d.param.scheme, PartitionScheme::XYZT);
    assert_eq!(d.param.interior_threads, 4);
    assert_eq!(d.param.ghost_order, [3, 2, 1, 0]);
    // The baseline was measured under the same protocol, so the quoted
    // speedup is a real measured ratio ≥ 1.
    let expected_default = synthetic_cost(&TuneParam::baseline(1)) * 1e6;
    assert!((d.default_us - expected_default).abs() < 1e-9);
    assert!(d.speedup() >= 1.0);
    assert_eq!(metrics.counter("tune.trials"), calls as u64);
    assert_eq!(metrics.counter("tune.cache_misses"), 1);
}

#[test]
fn model_prior_prunes_and_bounds_the_trial_count() {
    let path = tmpdir("prune").join("cache.json");
    let mut cache = TuneCache::empty(&path);
    let mut metrics = MetricsRegistry::new();
    let tuner = Tuner::dslash(TuneParam::baseline(1), 4);
    let mut calls = 0usize;
    let report = tuner
        .tune(&key(), &mut cache, &mut metrics, |p| {
            calls += 1;
            Ok(TrialOutcome { secs_per_unit: synthetic_cost(p), bit_identical: true })
        })
        .unwrap();
    assert!(calls <= tuner.keep + 1, "prior pruning must bound the trial count");
    assert!(metrics.counter("tune.pruned") > 0);
    assert!(report.rows.iter().any(|r| r.pruned && r.measured_us.is_none()));
    // The winner is still the argmin of what was measured, baseline
    // included, so the quoted speedup stays a real measured ratio ≥ 1.
    assert!(report.decision.speedup() >= 1.0);
}

#[test]
fn guard_rejects_fast_but_wrong_candidates() {
    let path = tmpdir("guard").join("cache.json");
    let mut cache = TuneCache::empty(&path);
    let mut metrics = MetricsRegistry::new();
    let tuner = exhaustive_tuner();
    // The planted optimum claims an absurdly fast time but fails the
    // bitwise guard; the tuner must not choose it.
    let report = tuner
        .tune(&key(), &mut cache, &mut metrics, |p| {
            let wrong = p.scheme == PartitionScheme::XYZT && p.interior_threads == 4;
            Ok(TrialOutcome {
                secs_per_unit: if wrong { 1e-12 } else { synthetic_cost(p) },
                bit_identical: !wrong,
            })
        })
        .unwrap();
    let d = &report.decision;
    assert!(
        !(d.param.scheme == PartitionScheme::XYZT && d.param.interior_threads == 4),
        "guard-rejected candidate was chosen: {}",
        d.param.label()
    );
    assert!(metrics.counter("tune.guard_rejected") > 0);
    assert!(report.rows.iter().any(|r| r.rejected));
}

#[test]
fn second_run_hits_the_cache_with_zero_trials_and_identical_decision() {
    let path = tmpdir("warm").join("cache.json");
    let mut metrics = MetricsRegistry::new();
    let tuner = Tuner::dslash(TuneParam::baseline(1), 4);

    let mut cold_cache = TuneCache::empty(&path);
    let cold = tuner
        .tune(&key(), &mut cold_cache, &mut metrics, |p| {
            Ok(TrialOutcome { secs_per_unit: synthetic_cost(p), bit_identical: true })
        })
        .unwrap();

    // Fresh process equivalent: reopen from disk, trial closure must
    // never be called.
    let mut warm_cache = TuneCache::open(&path).unwrap();
    let warm = tuner
        .tune(&key(), &mut warm_cache, &mut metrics, |_| -> lqcd_util::Result<TrialOutcome> {
            panic!("cache hit must run zero micro-trials")
        })
        .unwrap();
    assert!(warm.cache_hit);
    assert_eq!(warm.trials_run, 0);
    assert_eq!(warm.decision, cold.decision);
    assert_eq!(metrics.counter("tune.cache_hits"), 1);
}

#[test]
fn corrupt_cache_is_a_structured_error_then_a_clean_retune() {
    let path = tmpdir("retune").join("cache.json");
    let tuner = Tuner::dslash(TuneParam::baseline(1), 4);
    let mut metrics = MetricsRegistry::new();
    let mut cache = TuneCache::empty(&path);
    let cold = tuner
        .tune(&key(), &mut cache, &mut metrics, |p| {
            Ok(TrialOutcome { secs_per_unit: synthetic_cost(p), bit_identical: true })
        })
        .unwrap();

    // Corrupt the file on disk.
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &text[..text.len() / 2]).unwrap();
    match TuneCache::open(&path) {
        Err(Error::Corrupt { what, .. }) => assert!(what.contains("cache.json")),
        other => panic!("expected structured corruption, got {other:?}"),
    }

    // The retune path: start from an explicit empty cache at the same
    // path, tune again, and the file is healthy afterwards.
    let mut fresh = TuneCache::empty(&path);
    let redo = tuner
        .tune(&key(), &mut fresh, &mut metrics, |p| {
            Ok(TrialOutcome { secs_per_unit: synthetic_cost(p), bit_identical: true })
        })
        .unwrap();
    assert_eq!(redo.decision.param, cold.decision.param);
    let healthy = TuneCache::open(&path).unwrap();
    assert_eq!(healthy.lookup(&key()).unwrap().param, cold.decision.param);
}

#[test]
fn trial_errors_on_candidates_reject_but_do_not_abort() {
    let path = tmpdir("trialerr").join("cache.json");
    let mut cache = TuneCache::empty(&path);
    let mut metrics = MetricsRegistry::new();
    let tuner = exhaustive_tuner();
    let report = tuner
        .tune(&key(), &mut cache, &mut metrics, |p| {
            if p.scheme == PartitionScheme::XYZT {
                Err(Error::Config("synthetic trial failure".into()))
            } else {
                Ok(TrialOutcome { secs_per_unit: synthetic_cost(p), bit_identical: true })
            }
        })
        .unwrap();
    assert_ne!(report.decision.param.scheme, PartitionScheme::XYZT);
    assert!(metrics.counter("tune.trial_failed") > 0);
}

//! The persistent tune cache.
//!
//! A versioned JSON file mapping [`TuneKey`]s to [`TuneDecision`]s.
//! Writes go through the same discipline as the checkpoint container
//! (`lqcd_util::checkpoint`): serialize, write a sibling tmp file,
//! re-read and fully re-validate what hit the disk, then rename into
//! place. The payload is guarded by a CRC-64 (stored as hex — JSON
//! numbers are f64 and cannot carry 64 significant bits) computed over
//! the canonical entry serialization, so a bit flip that survives the
//! JSON grammar still fails validation. Corruption is always a
//! structured [`Error::Corrupt`]; a stale `version` is the documented
//! invalidation rule and reads as an empty cache (retune), never as a
//! silent stale hit.

use crate::key::TuneKey;
use crate::param::{LadderChoice, TuneParam};
use lqcd_lattice::{PartitionScheme, NDIM};
use lqcd_util::checksum::crc64;
use lqcd_util::{Error, Result};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// File magic; first field of every cache file.
pub const MAGIC: &str = "LQTUNE01";

/// Current cache format version. Bumping it invalidates every cache on
/// disk (they reload as empty → retune), which is the upgrade path when
/// the parameter space or trial methodology changes incompatibly.
pub const VERSION: u32 = 1;

/// One cached tuning outcome: the winning parameter point plus the
/// measurements that justified it.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TuneDecision {
    /// The chosen configuration.
    pub param: TuneParam,
    /// Best measured time of the chosen configuration, µs per unit of
    /// trial work.
    pub tuned_us: f64,
    /// Measured time of the hardcoded baseline under the same protocol.
    pub default_us: f64,
    /// Stream-model prior for the chosen configuration, µs.
    pub model_us: f64,
    /// Micro-trials that were actually measured (pruned candidates are
    /// not counted).
    pub trials: usize,
}

impl TuneDecision {
    /// Measured default/tuned ratio (≥ 1.0 whenever the baseline was in
    /// the trialled set, since the winner is the argmin).
    pub fn speedup(&self) -> f64 {
        self.default_us / self.tuned_us
    }
}

/// Cache-file entry: flat key string plus the decision.
#[derive(Clone, Debug, Serialize)]
struct Entry {
    key: String,
    decision: TuneDecision,
}

/// The persistent key → decision map bound to one file path.
#[derive(Debug)]
pub struct TuneCache {
    path: PathBuf,
    entries: BTreeMap<String, TuneDecision>,
}

fn corrupt(what: &Path, detail: impl Into<String>) -> Error {
    Error::Corrupt { what: what.display().to_string(), detail: detail.into() }
}

fn io_err(path: &Path, e: std::io::Error) -> Error {
    Error::Io { path: path.display().to_string(), detail: e.to_string() }
}

fn field<'a>(v: &'a Value, name: &str, what: &Path) -> Result<&'a Value> {
    v.get(name).ok_or_else(|| corrupt(what, format!("missing field '{name}'")))
}

fn field_str(v: &Value, name: &str, what: &Path) -> Result<String> {
    Ok(field(v, name, what)?
        .as_str()
        .ok_or_else(|| corrupt(what, format!("field '{name}' is not a string")))?
        .to_string())
}

fn field_usize(v: &Value, name: &str, what: &Path) -> Result<usize> {
    let n = field(v, name, what)?
        .as_i64()
        .ok_or_else(|| corrupt(what, format!("field '{name}' is not an integer")))?;
    usize::try_from(n).map_err(|_| corrupt(what, format!("field '{name}' is negative")))
}

fn field_f64(v: &Value, name: &str, what: &Path) -> Result<f64> {
    field(v, name, what)?
        .as_f64()
        .ok_or_else(|| corrupt(what, format!("field '{name}' is not a number")))
}

fn param_from_value(v: &Value, what: &Path) -> Result<TuneParam> {
    let scheme_name = field_str(v, "scheme", what)?;
    let scheme = PartitionScheme::ALL
        .into_iter()
        .find(|s| s.label() == scheme_name)
        .ok_or_else(|| corrupt(what, format!("unknown partition scheme '{scheme_name}'")))?;
    let ladder_name = field_str(v, "ladder", what)?;
    let ladder = LadderChoice::ALL
        .into_iter()
        .find(|l| l.label().eq_ignore_ascii_case(&ladder_name))
        .ok_or_else(|| corrupt(what, format!("unknown ladder '{ladder_name}'")))?;
    let order_v = field(v, "ghost_order", what)?
        .as_array()
        .ok_or_else(|| corrupt(what, "ghost_order is not an array"))?;
    if order_v.len() != NDIM {
        return Err(corrupt(what, format!("ghost_order has {} entries", order_v.len())));
    }
    let mut ghost_order = [0usize; NDIM];
    for (slot, item) in ghost_order.iter_mut().zip(order_v) {
        let d = item.as_i64().ok_or_else(|| corrupt(what, "ghost_order entry not an integer"))?;
        *slot = usize::try_from(d).map_err(|_| corrupt(what, "ghost_order entry negative"))?;
    }
    Ok(TuneParam {
        scheme,
        interior_threads: field_usize(v, "interior_threads", what)?,
        ghost_order,
        mr_steps: field_usize(v, "mr_steps", what)?,
        n_kv: field_usize(v, "n_kv", what)?,
        ladder,
    })
}

fn decision_from_value(v: &Value, what: &Path) -> Result<TuneDecision> {
    Ok(TuneDecision {
        param: param_from_value(field(v, "param", what)?, what)?,
        tuned_us: field_f64(v, "tuned_us", what)?,
        default_us: field_f64(v, "default_us", what)?,
        model_us: field_f64(v, "model_us", what)?,
        trials: field_usize(v, "trials", what)?,
    })
}

impl TuneCache {
    /// An empty cache bound to `path` (nothing touches the disk yet).
    pub fn empty(path: impl Into<PathBuf>) -> Self {
        TuneCache { path: path.into(), entries: BTreeMap::new() }
    }

    /// Open the cache at `path`. A missing file or a stale (older
    /// `version`) file reads as empty — the caller retunes. A present
    /// file that fails *any* validation step (grammar, magic, CRC,
    /// entry schema) is [`Error::Corrupt`]: the caller must decide to
    /// retune, it is never silently treated as a hit source.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Self::empty(path));
            }
            Err(e) => return Err(io_err(&path, e)),
        };
        let entries = Self::parse(&text, &path)?;
        Ok(TuneCache { path, entries: entries.unwrap_or_default() })
    }

    /// Parse and validate cache-file text. `Ok(None)` means a valid
    /// file of a different version (invalidated, retune).
    fn parse(text: &str, what: &Path) -> Result<Option<BTreeMap<String, TuneDecision>>> {
        let v = serde_json::from_str(text)
            .map_err(|e| corrupt(what, format!("invalid JSON: {e:?}")))?;
        let magic = field_str(&v, "magic", what)?;
        if magic != MAGIC {
            return Err(corrupt(what, format!("bad magic '{magic}'")));
        }
        let version = field_usize(&v, "version", what)?;
        if version != VERSION as usize {
            return Ok(None);
        }
        let crc_hex = field_str(&v, "payload_crc64", what)?;
        let stored_crc = u64::from_str_radix(&crc_hex, 16)
            .map_err(|_| corrupt(what, format!("payload_crc64 '{crc_hex}' is not hex")))?;
        let entries_v = field(&v, "entries", what)?
            .as_array()
            .ok_or_else(|| corrupt(what, "entries is not an array"))?;
        let mut entries = BTreeMap::new();
        for e in entries_v {
            let key = field_str(e, "key", what)?;
            let decision = decision_from_value(field(e, "decision", what)?, what)?;
            if entries.insert(key.clone(), decision).is_some() {
                return Err(corrupt(what, format!("duplicate key '{key}'")));
            }
        }
        let canonical = Self::canonical_payload(&entries);
        let actual = crc64(canonical.as_bytes());
        if actual != stored_crc {
            return Err(corrupt(
                what,
                format!("payload crc mismatch: stored {stored_crc:016x}, computed {actual:016x}"),
            ));
        }
        Ok(Some(entries))
    }

    /// The canonical (deterministic, key-sorted) serialization the CRC
    /// covers.
    fn canonical_payload(entries: &BTreeMap<String, TuneDecision>) -> String {
        let rows: Vec<Entry> =
            entries.iter().map(|(k, d)| Entry { key: k.clone(), decision: *d }).collect();
        serde_json::to_string(&rows).expect("entry serialization is infallible")
    }

    /// Render the full cache file.
    fn render(&self) -> String {
        let rows: Vec<Entry> =
            self.entries.iter().map(|(k, d)| Entry { key: k.clone(), decision: *d }).collect();
        let crc = crc64(Self::canonical_payload(&self.entries).as_bytes());

        #[derive(Serialize)]
        struct FileForm {
            magic: String,
            version: u32,
            payload_crc64: String,
            entries: Vec<Entry>,
        }
        let form = FileForm {
            magic: MAGIC.into(),
            version: VERSION,
            payload_crc64: format!("{crc:016x}"),
            entries: rows,
        };
        serde_json::to_string_pretty(&form).expect("cache serialization is infallible")
    }

    /// Atomically persist: write a sibling tmp file, re-read and fully
    /// re-validate the round trip, then rename into place.
    pub fn save(&self) -> Result<()> {
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(|e| io_err(&self.path, e))?;
            }
        }
        let mut tmp_name = self.path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
        tmp_name.push(".tmp");
        let tmp = self.path.with_file_name(tmp_name);
        std::fs::write(&tmp, self.render()).map_err(|e| io_err(&tmp, e))?;
        let written = std::fs::read_to_string(&tmp).map_err(|e| io_err(&tmp, e))?;
        match Self::parse(&written, &tmp) {
            Ok(Some(reread)) if reread == self.entries => {}
            other => {
                let _ = std::fs::remove_file(&tmp);
                return Err(corrupt(
                    &tmp,
                    format!("round-trip verification failed after write: {other:?}"),
                ));
            }
        }
        std::fs::rename(&tmp, &self.path).map_err(|e| io_err(&self.path, e))?;
        Ok(())
    }

    /// Look a decision up.
    pub fn lookup(&self, key: &TuneKey) -> Option<&TuneDecision> {
        self.entries.get(&key.cache_key())
    }

    /// Insert (or replace) a decision. Call [`TuneCache::save`] to
    /// persist.
    pub fn insert(&mut self, key: &TuneKey, decision: TuneDecision) {
        self.entries.insert(key.cache_key(), decision);
    }

    /// Number of cached decisions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no decisions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The file this cache persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

//! What a tuning decision is keyed on.

use lqcd_lattice::Dims;
use serde::{Deserialize, Serialize};

/// Identity of a host for tuning purposes: architecture, OS, and the
/// core count the scheduler exposes. Decisions measured on one machine
/// shape never silently apply to another.
pub fn host_fingerprint() -> String {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    format!("{}-{}-{}c", std::env::consts::ARCH, std::env::consts::OS, cores)
}

/// The lookup key of one tuning decision. Two solves share a decision
/// only when every field matches — operator, global volume, rank count,
/// and host capability.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TuneKey {
    /// What was tuned, e.g. `wilson_clover/dslash` or
    /// `wilson_clover/gcr_dd` (operator plus trial kind).
    pub operator: String,
    /// Global lattice extents.
    pub global: [usize; 4],
    /// World size the decision was measured on.
    pub ranks: usize,
    /// Host capability fingerprint ([`host_fingerprint`]).
    pub host: String,
}

impl TuneKey {
    /// Key for `operator` on this host.
    pub fn new(operator: &str, global: Dims, ranks: usize) -> Self {
        TuneKey { operator: operator.into(), global: global.0, ranks, host: host_fingerprint() }
    }

    /// The flat string the cache indexes by, e.g.
    /// `wilson_clover/dslash@8x8x8x8/r4/x86_64-linux-8c`.
    pub fn cache_key(&self) -> String {
        let vol: Vec<String> = self.global.iter().map(|x| x.to_string()).collect();
        format!("{}@{}/r{}/{}", self.operator, vol.join("x"), self.ranks, self.host)
    }

    /// The global volume as [`Dims`].
    pub fn global_dims(&self) -> Dims {
        Dims(self.global)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_keys_separate_every_axis() {
        let base = TuneKey::new("wilson_clover/dslash", Dims([8, 8, 8, 8]), 4);
        assert!(base.cache_key().starts_with("wilson_clover/dslash@8x8x8x8/r4/"));
        let mut other = base.clone();
        other.ranks = 8;
        assert_ne!(base.cache_key(), other.cache_key());
        let mut host = base.clone();
        host.host = "other-machine-2c".into();
        assert_ne!(base.cache_key(), host.cache_key());
    }
}

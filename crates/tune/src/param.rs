//! The tunable parameter space.

use lqcd_lattice::{PartitionScheme, NDIM};
use lqcd_util::checksum::crc64;
use serde::{Deserialize, Serialize};

/// Which precision ladder a solve starts on (the reliable-update /
/// graceful-degradation choice): lower rungs are faster per iteration
/// but may pay fallback restarts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LadderChoice {
    /// Full double precision throughout.
    Double,
    /// f32 operator, single-precision Krylov storage.
    Single,
    /// f32 operator with 16-bit quantized Krylov/block storage — the
    /// paper's single-half-half configuration.
    Half,
}

impl LadderChoice {
    /// Every choice, cheapest storage last.
    pub const ALL: [LadderChoice; 3] =
        [LadderChoice::Double, LadderChoice::Single, LadderChoice::Half];

    /// Short label used in keys and tables.
    pub fn label(self) -> &'static str {
        match self {
            LadderChoice::Double => "double",
            LadderChoice::Single => "single",
            LadderChoice::Half => "half",
        }
    }

    /// Parse a [`LadderChoice::label`] back.
    pub fn from_label(s: &str) -> Option<LadderChoice> {
        LadderChoice::ALL.into_iter().find(|l| l.label() == s)
    }
}

/// One point in the tuning search space. Axes that do not apply to a
/// given trial (e.g. solver knobs during a dslash-only trial) are
/// simply held at the baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TuneParam {
    /// Which dimensions the rank grid splits (also fixes the Schwarz
    /// block geometry: blocks are the rank-local subdomains).
    pub scheme: PartitionScheme,
    /// Interior-kernel worker threads overlapping the exchange.
    pub interior_threads: usize,
    /// Ghost-exchange *completion* order (a permutation of the
    /// dimensions; results are bit-identical for every order).
    pub ghost_order: [usize; NDIM],
    /// MR smoother steps inside each Schwarz block.
    pub mr_steps: usize,
    /// GCR restart length (`n_kv` in the paper, `GcrParams::kmax` here).
    pub n_kv: usize,
    /// Precision-ladder starting rung.
    pub ladder: LadderChoice,
}

impl TuneParam {
    /// The workspace's historical hardcoded configuration: ZT
    /// partitioning, ascending completion, 8 MR steps, `n_kv` = 16,
    /// full double precision.
    pub fn baseline(interior_threads: usize) -> Self {
        TuneParam {
            scheme: PartitionScheme::ZT,
            interior_threads: interior_threads.max(1),
            ghost_order: [0, 1, 2, 3],
            mr_steps: 8,
            n_kv: 16,
            ladder: LadderChoice::Double,
        }
    }

    /// Compact human-readable identity, e.g.
    /// `XYZT t2 g3210 mr8 kv16 double`.
    pub fn label(&self) -> String {
        let order: String = self.ghost_order.iter().map(|d| d.to_string()).collect();
        format!(
            "{} t{} g{} mr{} kv{} {}",
            self.scheme.label(),
            self.interior_threads,
            order,
            self.mr_steps,
            self.n_kv,
            self.ladder.label()
        )
    }

    /// Stable 64-bit identity of this configuration (CRC-64 of the
    /// label; 0 is never produced, so 0 can mean "untuned").
    pub fn fingerprint(&self) -> u64 {
        crc64(self.label().as_bytes()).max(1)
    }
}

/// The candidate axes a [`Tuner`](crate::Tuner) enumerates: the
/// cartesian product of the listed values. Axes left as a single value
/// are held fixed.
#[derive(Clone, Debug)]
pub struct TuneSpace {
    /// Partition schemes to try.
    pub schemes: Vec<PartitionScheme>,
    /// Interior worker counts to try.
    pub threads: Vec<usize>,
    /// Ghost completion orders to try.
    pub ghost_orders: Vec<[usize; NDIM]>,
    /// Schwarz MR step counts to try.
    pub mr_steps: Vec<usize>,
    /// GCR restart lengths to try.
    pub n_kv: Vec<usize>,
    /// Ladder choices to try.
    pub ladders: Vec<LadderChoice>,
}

impl TuneSpace {
    /// The dslash-level space around a baseline: every partition scheme,
    /// worker counts up to `max_threads` (powers of two), ascending and
    /// descending completion orders. Solver axes stay at the baseline.
    pub fn dslash(baseline: &TuneParam, max_threads: usize) -> Self {
        let mut threads = vec![1usize];
        let mut t = 2;
        while t <= max_threads.max(1) {
            threads.push(t);
            t *= 2;
        }
        TuneSpace {
            schemes: PartitionScheme::ALL.to_vec(),
            threads,
            ghost_orders: vec![[0, 1, 2, 3], [3, 2, 1, 0]],
            mr_steps: vec![baseline.mr_steps],
            n_kv: vec![baseline.n_kv],
            ladders: vec![baseline.ladder],
        }
    }

    /// The solver-level space around a (dslash-tuned) baseline: Schwarz
    /// block work and restart length vary, the dslash axes stay fixed.
    pub fn solver(baseline: &TuneParam) -> Self {
        TuneSpace {
            schemes: vec![baseline.scheme],
            threads: vec![baseline.interior_threads],
            ghost_orders: vec![baseline.ghost_order],
            mr_steps: vec![4, 8, 12],
            n_kv: vec![8, 16, 24],
            ladders: vec![baseline.ladder],
        }
    }

    /// Enumerate the cartesian product, baseline-compatible axes first.
    pub fn enumerate(&self) -> Vec<TuneParam> {
        let mut out = Vec::new();
        for &scheme in &self.schemes {
            for &interior_threads in &self.threads {
                for &ghost_order in &self.ghost_orders {
                    for &mr_steps in &self.mr_steps {
                        for &n_kv in &self.n_kv {
                            for &ladder in &self.ladders {
                                out.push(TuneParam {
                                    scheme,
                                    interior_threads,
                                    ghost_order,
                                    mr_steps,
                                    n_kv,
                                    ladder,
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_fingerprints_are_stable_and_distinct() {
        let a = TuneParam::baseline(2);
        assert_eq!(a.label(), "ZT t2 g0123 mr8 kv16 double");
        let mut b = a;
        b.ghost_order = [3, 2, 1, 0];
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), TuneParam::baseline(2).fingerprint());
        assert_ne!(a.fingerprint(), 0);
    }

    #[test]
    fn spaces_enumerate_the_cartesian_product() {
        let base = TuneParam::baseline(1);
        let space = TuneSpace::dslash(&base, 4);
        // 4 schemes × {1,2,4} threads × 2 orders.
        assert_eq!(space.enumerate().len(), 4 * 3 * 2);
        assert!(space.enumerate().contains(&TuneParam::baseline(1)));
        let solver = TuneSpace::solver(&base);
        assert_eq!(solver.enumerate().len(), 9);
    }

    #[test]
    fn ladder_labels_round_trip() {
        for l in LadderChoice::ALL {
            assert_eq!(LadderChoice::from_label(l.label()), Some(l));
        }
        assert_eq!(LadderChoice::from_label("quad"), None);
    }
}

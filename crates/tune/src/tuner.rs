//! The measured-trial search driver.

use crate::cache::{TuneCache, TuneDecision};
use crate::key::TuneKey;
use crate::param::{LadderChoice, TuneParam, TuneSpace};
use lqcd_perf::cost::{OpConfig, PartitionGeometry};
use lqcd_perf::{edge, simulate_dslash, OperatorKind, Precision, Recon};
use lqcd_util::trace::{self, MetricsRegistry, Track};
use lqcd_util::{Error, Result};
use serde::Serialize;

/// What one micro-trial of a candidate measured.
#[derive(Clone, Copy, Debug)]
pub struct TrialOutcome {
    /// Best-of-N wall seconds per unit of trial work (one dslash apply,
    /// one preconditioned solve — whatever the closure measures).
    pub secs_per_unit: f64,
    /// Whether the candidate's output was bitwise equal to the
    /// reference path. A fast-but-wrong candidate is rejected.
    pub bit_identical: bool,
}

/// One row of the tuning table: a candidate and what happened to it.
#[derive(Clone, Debug, Serialize)]
pub struct TrialRow {
    /// Candidate label ([`TuneParam::label`]).
    pub label: String,
    /// The candidate.
    pub param: TuneParam,
    /// Stream-model prior, µs (`null` when the model rejects the
    /// geometry outright).
    pub model_us: Option<f64>,
    /// Measured µs per trial unit (`null` if pruned/rejected).
    pub measured_us: Option<f64>,
    /// Skipped on the model prior, never measured.
    pub pruned: bool,
    /// Measured but rejected by the bitwise-equality guard or a trial
    /// failure.
    pub rejected: bool,
}

/// Everything one [`Tuner::tune`] call did.
#[derive(Clone, Debug, Serialize)]
pub struct TuneReport {
    /// The key that was tuned.
    pub key: TuneKey,
    /// True when the decision came straight from the cache (zero
    /// micro-trials were run).
    pub cache_hit: bool,
    /// Micro-trials actually measured.
    pub trials_run: usize,
    /// The full candidate table (empty on a cache hit).
    pub rows: Vec<TrialRow>,
    /// The decision (freshly measured or cached).
    pub decision: TuneDecision,
}

impl TuneReport {
    /// Render the tuning table for terminal output.
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ =
            writeln!(out, "  {:<28} {:>10} {:>12}  status", "candidate", "model µs", "measured µs");
        for r in &self.rows {
            let model = r.model_us.map_or("-".into(), |m| format!("{m:.1}"));
            let measured = r.measured_us.map_or("-".into(), |m| format!("{m:.1}"));
            let status = if r.pruned {
                "pruned (model prior)"
            } else if r.rejected {
                "REJECTED"
            } else if r.param == self.decision.param {
                "<= chosen"
            } else {
                ""
            };
            let _ = writeln!(out, "  {:<28} {:>10} {:>12}  {}", r.label, model, measured, status);
        }
        out
    }
}

/// The trial protocol and search configuration. The caller's trial
/// closure owns the world and the clock; it is expected to honour
/// `warmup`/`rounds`/`applies` (min-of-`rounds` timing after `warmup`
/// untimed units, `applies` units per round) so measurements stay
/// comparable across candidates.
#[derive(Clone, Debug)]
pub struct Tuner {
    /// The hardcoded configuration trials are compared against; always
    /// measured, so the winner's speedup over it is ≥ 1 by
    /// construction.
    pub baseline: TuneParam,
    /// Candidate axes.
    pub space: TuneSpace,
    /// Candidates kept after model-prior pruning (the baseline is kept
    /// on top of this budget).
    pub keep: usize,
    /// Untimed warmup units before measurement.
    pub warmup: usize,
    /// Timed rounds; the fastest round counts.
    pub rounds: usize,
    /// Trial units per round.
    pub applies: usize,
}

impl Tuner {
    /// A dslash-axis tuner around `baseline` (short trials, small kept
    /// set).
    pub fn dslash(baseline: TuneParam, max_threads: usize) -> Self {
        Tuner {
            baseline,
            space: TuneSpace::dslash(&baseline, max_threads),
            keep: 12,
            warmup: 2,
            rounds: 3,
            applies: 20,
        }
    }

    /// A solver-axis tuner around a (dslash-tuned) `baseline`. Solver
    /// trials are whole preconditioned solves, so fewer and shorter.
    pub fn solver(baseline: TuneParam) -> Self {
        Tuner {
            baseline,
            space: TuneSpace::solver(&baseline),
            keep: 9,
            warmup: 1,
            rounds: 2,
            applies: 1,
        }
    }

    /// Stream-model prior for one candidate, µs per dslash apply:
    /// simulate the Fig. 4 pipeline on the candidate's partition
    /// geometry. `None` when the scheme cannot factor the rank count
    /// over the global volume — such candidates are unrunnable and are
    /// always pruned. Candidates differing only in thread count or
    /// completion order share a prior; the measured trials decide
    /// between them.
    pub fn model_prior_us(key: &TuneKey, param: &TuneParam) -> Option<f64> {
        let grid = param.scheme.grid(key.global_dims(), key.ranks).ok()?;
        let kind = if key.operator.contains("staggered") || key.operator.contains("asqtad") {
            OperatorKind::Asqtad
        } else if key.operator.contains("clover") {
            OperatorKind::WilsonClover
        } else {
            OperatorKind::Wilson
        };
        let precision = match param.ladder {
            LadderChoice::Double => Precision::Double,
            LadderChoice::Single => Precision::Single,
            LadderChoice::Half => Precision::Half,
        };
        let cfg = OpConfig { kind, precision, recon: Recon::None };
        let sim = simulate_dslash(&edge(), &PartitionGeometry::of(&grid), &cfg);
        Some(sim.total * 1e6)
    }

    /// Tune `key`: consult the cache first (a hit runs zero trials),
    /// otherwise enumerate the space, prune on the model prior, measure
    /// the survivors through `trial`, reject anything that fails the
    /// bitwise guard, pick the argmin, and persist the decision.
    ///
    /// Trial failures on non-baseline candidates reject the candidate
    /// and continue; a failing *baseline* trial aborts the tune (there
    /// is nothing sound to compare against).
    pub fn tune<F>(
        &self,
        key: &TuneKey,
        cache: &mut TuneCache,
        metrics: &mut MetricsRegistry,
        mut trial: F,
    ) -> Result<TuneReport>
    where
        F: FnMut(&TuneParam) -> Result<TrialOutcome>,
    {
        if let Some(d) = cache.lookup(key) {
            metrics.add("tune.cache_hits", 1);
            return Ok(TuneReport {
                key: key.clone(),
                cache_hit: true,
                trials_run: 0,
                rows: Vec::new(),
                decision: *d,
            });
        }
        metrics.add("tune.cache_misses", 1);

        // Candidate list: the baseline first, then the space (deduped).
        let mut candidates = vec![self.baseline];
        for c in self.space.enumerate() {
            if !candidates.contains(&c) {
                candidates.push(c);
            }
        }
        let priors: Vec<Option<f64>> =
            candidates.iter().map(|c| Self::model_prior_us(key, c)).collect();
        let base_prior = priors[0].ok_or_else(|| {
            Error::Config(format!(
                "tune baseline {} cannot run on {}: scheme does not factor the world",
                self.baseline.label(),
                key.cache_key()
            ))
        })?;

        // Prune: keep the `keep` best finite priors (baseline always
        // kept). Order of measurement = ascending prior.
        let mut order: Vec<usize> =
            (1..candidates.len()).filter(|&i| priors[i].is_some()).collect();
        order.sort_by(|&a, &b| priors[a].partial_cmp(&priors[b]).unwrap());
        let kept: Vec<usize> = order.iter().copied().take(self.keep).collect();

        let mut rows: Vec<TrialRow> = candidates
            .iter()
            .zip(&priors)
            .map(|(c, &prior)| TrialRow {
                label: c.label(),
                param: *c,
                model_us: prior,
                measured_us: None,
                pruned: true,
                rejected: false,
            })
            .collect();
        let pruned_count = candidates.len() - 1 - kept.len();
        if pruned_count > 0 {
            metrics.add("tune.pruned", pruned_count as u64);
        }

        let mut measure = |idx: usize,
                           rows: &mut Vec<TrialRow>,
                           metrics: &mut MetricsRegistry|
         -> Result<Option<f64>> {
            rows[idx].pruned = false;
            let span = trace::span_arg(Track::Solver, "tune_trial", idx as i64);
            let outcome = trial(&candidates[idx]);
            drop(span);
            metrics.add("tune.trials", 1);
            match outcome {
                Ok(o) if o.bit_identical => {
                    let us = o.secs_per_unit * 1e6;
                    rows[idx].measured_us = Some(us);
                    Ok(Some(us))
                }
                Ok(_) => {
                    metrics.add("tune.guard_rejected", 1);
                    rows[idx].rejected = true;
                    trace::instant(Track::Solver, "tune_guard_rejected", idx as i64);
                    Ok(None)
                }
                Err(e) => {
                    metrics.add("tune.trial_failed", 1);
                    rows[idx].rejected = true;
                    Err(e)
                }
            }
        };

        let default_us = match measure(0, &mut rows, metrics)? {
            Some(us) => us,
            None => {
                return Err(Error::Config(format!(
                    "tune baseline {} failed the bitwise guard — reference path broken",
                    self.baseline.label()
                )));
            }
        };
        let mut best = (0usize, default_us);
        let mut trials_run = 1usize;
        for &idx in &kept {
            trials_run += 1;
            match measure(idx, &mut rows, metrics) {
                Ok(Some(us)) if us < best.1 => best = (idx, us),
                Ok(_) => {}
                // Non-baseline trial failure: candidate rejected, keep
                // searching.
                Err(_) => {}
            }
        }

        let decision = TuneDecision {
            param: candidates[best.0],
            tuned_us: best.1,
            default_us,
            model_us: priors[best.0].unwrap_or(base_prior),
            trials: trials_run,
        };
        cache.insert(key, decision);
        cache.save()?;
        metrics.add("tune.decisions", 1);
        Ok(TuneReport { key: key.clone(), cache_hit: false, trials_run, rows, decision })
    }
}

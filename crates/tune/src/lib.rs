//! Benchmark-driven autotuning with a persistent tune cache.
//!
//! The paper's throughput hinges on execution parameters the rest of
//! the workspace exposes but hardcodes: which dimensions to partition
//! ([`PartitionScheme`]), how many interior workers overlap the ghost
//! exchange, the order exchanges are completed in, the Schwarz block
//! work (`mr_steps`), the GCR restart length `n_kv`, and the precision
//! ladder. Its QUDA lineage (arXiv:1011.0024) made *measured*
//! autotuning with a persistent cache a core library feature; this
//! crate is that subsystem:
//!
//! * [`TuneParam`] — one point in the search space; [`TuneSpace`]
//!   enumerates candidate points around a baseline.
//! * [`TuneKey`] — what a decision is keyed on: operator kind, global
//!   volume, world geometry, and a host capability fingerprint. A
//!   decision never silently applies to a different problem shape or
//!   machine.
//! * [`Tuner`] — runs short measured micro-trials (warmup + min-of-N)
//!   of the *real* pipeline through a caller-supplied trial closure,
//!   with the `lqcd-perf` stream model as a prior that prunes the
//!   candidate list before anything is measured, and a bitwise-equality
//!   guard: a candidate whose trial output differs from the reference
//!   path is rejected no matter how fast it ran.
//! * [`TuneCache`] — versioned JSON persistence (serde shims out,
//!   hand-rolled `serde_json::Value` parsing back), written with the
//!   same tmp-write → re-read/validate → rename discipline as the
//!   checkpoint container and guarded by a CRC-64 over the payload.
//!   Corruption is a structured [`Error::Corrupt`] that callers answer
//!   with a retune — never a panic, never a silent stale hit.
//!
//! Consumers choose behaviour through [`TunePolicy`]: `Off` (hardcoded
//! defaults), `Fixed` (apply a given configuration), or `Tuned`
//! (consult/populate a cache file). See DESIGN.md, "Autotuning".
//!
//! [`Error::Corrupt`]: lqcd_util::Error::Corrupt
//! [`PartitionScheme`]: lqcd_lattice::PartitionScheme

pub mod cache;
pub mod key;
pub mod param;
pub mod tuner;

pub use cache::{TuneCache, TuneDecision};
pub use key::{host_fingerprint, TuneKey};
pub use param::{LadderChoice, TuneParam, TuneSpace};
pub use tuner::{TrialOutcome, TrialRow, TuneReport, Tuner};

use std::path::PathBuf;

/// How a driver resolves its execution parameters.
#[derive(Clone, Debug, PartialEq)]
pub enum TunePolicy {
    /// Hardcoded defaults; the tuner is never consulted.
    Off,
    /// Apply exactly this configuration, no trials.
    Fixed(TuneParam),
    /// Consult the tune cache at this path; a hit applies instantly, a
    /// miss is answered by whoever owns the tuner (drivers themselves
    /// never launch trial worlds mid-solve).
    Tuned(PathBuf),
}

impl TunePolicy {
    /// Resolve this policy against a cache on disk: the fixed parameter,
    /// a cache hit, or `None` (Off, cache miss, or unreadable cache —
    /// corruption is surfaced to the caller as the `Err` arm so it can
    /// retune rather than silently fall back).
    pub fn resolve(&self, key: &TuneKey) -> lqcd_util::Result<Option<TuneParam>> {
        match self {
            TunePolicy::Off => Ok(None),
            TunePolicy::Fixed(p) => Ok(Some(*p)),
            TunePolicy::Tuned(path) => {
                let cache = TuneCache::open(path)?;
                Ok(cache.lookup(key).map(|d| d.param))
            }
        }
    }
}

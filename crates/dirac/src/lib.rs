//! Discretized Dirac operators with multi-dimensional partitioning.
//!
//! This crate implements the two discretizations the paper evaluates —
//! Wilson-clover (§2.2) and improved staggered / asqtad (§2.3) — in the
//! decomposition its multi-GPU strategy prescribes (§6):
//!
//! * ghost-zone **exchange** of source-field faces for every partitioned
//!   dimension ([`exchange`]);
//! * an **interior kernel** computing every contribution that needs no
//!   ghost data, plus one **exterior kernel per partitioned dimension**
//!   adding the boundary contributions (corner sites receive from several
//!   exterior kernels, which is why they run after communication and in
//!   sequence — §6.2);
//! * a **Dirichlet mode** that switches communication off entirely and
//!   drops boundary contributions, which is precisely the non-overlapping
//!   additive-Schwarz block operator of §8.1.
//!
//! The same code paths run on one rank (ghosts wrap periodically on-rank)
//! and on many (ghosts filled by [`lqcd_comms`]); the integration tests
//! pin distributed-equals-serial for every partitioning scheme.

pub mod exchange;
pub mod overlap;
pub mod reference;
pub mod staggered;
pub mod wilson;

pub use overlap::{DslashCounters, InteriorPolicy, OverlapHost};
pub use staggered::{StaggeredOp, STAGGERED_DEPTH};
pub use wilson::{WilsonCloverOp, WILSON_DEPTH};

/// Whether the operator communicates across rank boundaries.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BoundaryMode {
    /// Full operator: ghost zones exchanged and applied.
    Full,
    /// Dirichlet (zero) boundaries at rank cuts: no communication, no
    /// boundary contributions — the additive-Schwarz block operator.
    Dirichlet,
}

//! Overlap pipeline state: per-operator exchange buffers, interior
//! worker configuration, and per-apply timing counters.
//!
//! The stages (paper Fig. 4) are orchestrated by the operators'
//! `dslash`; this module holds what persists between applies. Everything
//! lives behind one `Mutex` per operator so `dslash` can stay `&self`
//! (operators are shared across solver layers) while buffers and
//! counters mutate.

use crate::exchange::ExchangeBuffers;
use lqcd_field::{LatticeField, SiteObject};
use lqcd_lattice::{FaceGeometry, SubLattice, NDIM};
use lqcd_util::{Error, Real, Result};
use std::sync::Mutex;
use std::time::Instant;

/// Cumulative timing of dslash applies, nanosecond resolution.
///
/// `exposed_comm_ns` is the time communication completion kept the
/// calling thread waiting *beyond* the interior kernel — the quantity
/// the paper's pipeline drives toward zero. `overlap_efficiency` is
/// `1 − exposed/total`: 1.0 means communication fully hidden.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DslashCounters {
    /// Number of dslash applications.
    pub applies: u64,
    /// Wall time of the applies, end to end.
    pub total_ns: u64,
    /// Face gather + nonblocking posts.
    pub gather_ns: u64,
    /// Interior kernel (max over workers when parallel).
    pub interior_ns: u64,
    /// Exterior (boundary) kernels.
    pub exterior_ns: u64,
    /// Communication time not hidden behind the interior kernel.
    pub exposed_comm_ns: u64,
}

impl DslashCounters {
    /// Fraction of wall time *not* lost to exposed communication, or
    /// `None` before any apply. Clamped to `[0, 1]`: counters absorbed
    /// from sequential (non-overlapped) applies can carry more exposed
    /// comm time than the overlapped wall time they are folded into.
    pub fn overlap_efficiency(&self) -> Option<f64> {
        (self.applies > 0 && self.total_ns > 0)
            .then(|| (1.0 - self.exposed_comm_ns as f64 / self.total_ns as f64).clamp(0.0, 1.0))
    }

    /// Merge another counter set into this one.
    pub fn absorb(&mut self, other: &DslashCounters) {
        self.applies += other.applies;
        self.total_ns += other.total_ns;
        self.gather_ns += other.gather_ns;
        self.interior_ns += other.interior_ns;
        self.exterior_ns += other.exterior_ns;
        self.exposed_comm_ns += other.exposed_comm_ns;
    }
}

/// Scheduling policy for the overlapped dslash: how many interior
/// workers run while the ghost exchange is in flight, and the order in
/// which partitioned dimensions' exchanges are completed. Every policy
/// produces bit-identical results — per-dimension ghost zones are
/// disjoint and the exterior kernels keep their fixed ascending-µ order
/// (corner accumulation, §6.2) — so these axes are free for the
/// autotuner to search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InteriorPolicy {
    /// Interior kernel workers (min 1); 1 = run on the calling thread
    /// (still overlapped: completion happens after the interior).
    pub threads: usize,
    /// Permutation of `0..NDIM` giving the ghost-*completion* order.
    /// Dimensions whose exchange lands first should be completed first;
    /// the default is ascending.
    pub ghost_order: [usize; NDIM],
}

impl InteriorPolicy {
    /// Validated policy: `threads ≥ 1` and `ghost_order` a permutation
    /// of the dimensions (structured [`Error::Config`], never a panic).
    pub fn new(threads: usize, ghost_order: [usize; NDIM]) -> Result<Self> {
        if threads == 0 {
            return Err(Error::Config("interior policy: thread count must be >= 1".into()));
        }
        let mut seen = [false; NDIM];
        for &mu in &ghost_order {
            if mu >= NDIM || seen[mu] {
                return Err(Error::Config(format!(
                    "interior policy: ghost order {ghost_order:?} is not a permutation of \
                     the {NDIM} dimensions"
                )));
            }
            seen[mu] = true;
        }
        Ok(InteriorPolicy { threads, ghost_order })
    }

    /// `threads` workers, ascending completion order.
    pub fn with_threads(threads: usize) -> Self {
        InteriorPolicy { threads: threads.max(1), ..Self::default() }
    }
}

impl Default for InteriorPolicy {
    fn default() -> Self {
        InteriorPolicy { threads: 1, ghost_order: [0, 1, 2, 3] }
    }
}

/// Mutable per-operator overlap state (exchange buffers, counters,
/// scheduling policy), kept behind a `Mutex` on the operator.
pub struct OverlapPipeline<R: Real> {
    /// Persistent exchange staging buffers.
    pub bufs: ExchangeBuffers<R>,
    /// Cumulative apply timings.
    pub counters: DslashCounters,
    /// Interior/completion scheduling policy.
    pub policy: InteriorPolicy,
}

impl<R: Real> OverlapPipeline<R> {
    /// Fresh state with `threads` interior workers.
    pub fn with_threads(threads: usize) -> Self {
        Self::with_policy(InteriorPolicy::with_threads(threads))
    }

    /// Fresh state under `policy`.
    pub fn with_policy(policy: InteriorPolicy) -> Self {
        OverlapPipeline {
            bufs: ExchangeBuffers::default(),
            counters: DslashCounters::default(),
            policy,
        }
    }
}

impl<R: Real> Default for OverlapPipeline<R> {
    fn default() -> Self {
        Self::with_threads(1)
    }
}

/// Shared accessors for operators that own an [`OverlapPipeline`]
/// behind a `Mutex` — the thread/counter plumbing that used to be
/// duplicated verbatim between the Wilson-clover and staggered
/// operators. Implementors provide the one state accessor; everything
/// else is derived.
pub trait OverlapHost<R: Real> {
    /// The operator's overlap pipeline state.
    fn overlap_state(&self) -> &Mutex<OverlapPipeline<R>>;

    /// Replace the whole scheduling policy (thread count + ghost
    /// completion order). Results are bit-identical for every policy;
    /// this only changes scheduling.
    fn set_interior_policy(&self, policy: InteriorPolicy) {
        self.overlap_state().lock().unwrap().policy = policy;
    }

    /// Current scheduling policy.
    fn interior_policy(&self) -> InteriorPolicy {
        self.overlap_state().lock().unwrap().policy
    }

    /// Set the number of interior-kernel worker threads (min 1),
    /// keeping the completion order.
    fn set_interior_threads(&self, n: usize) {
        self.overlap_state().lock().unwrap().policy.threads = n.max(1);
    }

    /// Current interior-kernel worker count.
    fn interior_threads(&self) -> usize {
        self.overlap_state().lock().unwrap().policy.threads
    }

    /// Snapshot of the cumulative per-apply timing counters.
    fn dslash_counters(&self) -> DslashCounters {
        self.overlap_state().lock().unwrap().counters
    }

    /// Zero the cumulative timing counters.
    fn reset_dslash_counters(&self) {
        self.overlap_state().lock().unwrap().counters = DslashCounters::default();
    }
}

/// Run `kernel` over disjoint site-range chunks of `body` while
/// `complete` (the communication-completion stage) runs on the calling
/// thread. Returns `(interior_ns, wall_ns)` where `interior_ns` is the
/// kernel time (max over workers) and `wall_ns` covers the whole stage —
/// their difference is the *exposed* communication time.
///
/// With `threads == 1` the kernel runs inline and `complete` after it:
/// no spawn overhead, and communication posted before this call still
/// overlaps the kernel. Chunking never changes results — each site's
/// value is computed independently by the same code path, so output is
/// bit-identical for every thread count.
pub fn run_overlapped<R, K, F>(
    threads: usize,
    body: &mut [R],
    reals_per_site: usize,
    kernel: &K,
    complete: F,
) -> Result<(u64, u64)>
where
    R: Real,
    K: Fn(&mut [R], usize) + Sync,
    F: FnOnce() -> Result<()>,
{
    let wall = Instant::now();
    if threads <= 1 || body.is_empty() {
        let t = Instant::now();
        kernel(body, 0);
        let interior_ns = t.elapsed().as_nanos() as u64;
        complete()?;
        return Ok((interior_ns, wall.elapsed().as_nanos() as u64));
    }
    let n_sites = body.len() / reals_per_site;
    let chunk_sites = n_sites.div_ceil(threads).max(1);
    let interior_ns = std::thread::scope(|s| -> Result<u64> {
        let workers: Vec<_> = body
            .chunks_mut(chunk_sites * reals_per_site)
            .enumerate()
            .map(|(k, chunk)| {
                s.spawn(move || {
                    let t = Instant::now();
                    kernel(chunk, k * chunk_sites);
                    t.elapsed().as_nanos() as u64
                })
            })
            .collect();
        complete()?;
        let mut max_ns = 0u64;
        for w in workers {
            max_ns = max_ns.max(w.join().unwrap_or_else(|p| std::panic::resume_unwind(p)));
        }
        Ok(max_ns)
    })?;
    Ok((interior_ns, wall.elapsed().as_nanos() as u64))
}

/// Geometry validation for a dslash apply, shared by every stencil
/// operator: parity pairing plus allocation shape of both fields
/// against the operator's subvolume and face geometry (structured
/// [`Error::Shape`], never a panic).
pub fn check_dslash_pair<R: Real, S: SiteObject<R>>(
    out: &LatticeField<R, S>,
    src: &LatticeField<R, S>,
    sub: &SubLattice,
    faces: &FaceGeometry,
) -> Result<()> {
    if out.parity() != src.parity().other() {
        return Err(Error::Shape("dslash: out must have opposite parity to src".into()));
    }
    check_field_geometry("out", out, sub, faces)?;
    check_field_geometry("src", src, sub, faces)
}

/// Validate that `field` was allocated against the operator's subvolume
/// and face geometry, so a depth/pad mismatch surfaces as a structured
/// [`Error::Shape`] instead of an index panic deep inside a gather.
pub fn check_field_geometry<R: Real, S: SiteObject<R>>(
    name: &str,
    field: &LatticeField<R, S>,
    sub: &SubLattice,
    faces: &FaceGeometry,
) -> Result<()> {
    if field.sublattice().dims != sub.dims {
        return Err(Error::Shape(format!(
            "dslash {name}: field subvolume {:?} does not match the operator's {:?}",
            field.sublattice().dims,
            sub.dims
        )));
    }
    let layout = field.layout();
    if layout.body_sites != sub.volume_cb() {
        return Err(Error::Shape(format!(
            "dslash {name}: field has {} body sites, operator subvolume has {}",
            layout.body_sites,
            sub.volume_cb()
        )));
    }
    for mu in 0..NDIM {
        let want = if sub.partitioned[mu] { faces.ghost_sites(mu) } else { 0 };
        if layout.ghost_sites[mu] != want {
            return Err(Error::Shape(format!(
                "dslash {name}: ghost zone of dimension {mu} holds {} sites, the \
                 operator's face geometry needs {want} (stencil depth mismatch?)",
                layout.ghost_sites[mu]
            )));
        }
    }
    Ok(())
}

//! Naive, formula-level reference implementations of the Dirac operators.
//!
//! These follow Eqs. (2) and (3) of the paper as directly as possible —
//! plain coordinate arithmetic, dense γ-matrix application, no
//! checkerboard cleverness, no half-spinor trick, no interior/exterior
//! split — and exist purely to cross-check the optimized operators.
//! Slow by design; global (single-rank) lattices only.

use crate::staggered::StaggeredOp;
use crate::wilson::WilsonCloverOp;
use lqcd_gauge::GaugeField;
use lqcd_lattice::{Dims, Parity, NDIM};
use lqcd_su3::gamma::project_reference;
use lqcd_su3::{ColorVector, Su3, WilsonSpinor};
use lqcd_util::Real;

/// A full-lattice Wilson spinor vector indexed by global lexicographic
/// site index.
pub type DenseSpinorVec = Vec<WilsonSpinor<f64>>;
/// A full-lattice staggered vector indexed by global lexicographic index.
pub type DenseColorVec = Vec<ColorVector<f64>>;

fn link_at(g: &GaugeField<f64>, _global: Dims, c: [usize; NDIM], mu: usize) -> Su3<f64> {
    let sub = g.sublattice();
    g.link(mu, sub.parity(c), sub.cb_index(c))
}

/// Apply the full Wilson-clover matrix `M = −(1/2)D + (4 + m + A)` of
/// Eq. (2) to a dense vector.
pub fn wilson_reference_apply(
    op: &WilsonCloverOp<f64>,
    global: Dims,
    src: &DenseSpinorVec,
) -> DenseSpinorVec {
    let sub = op.sublattice().clone();
    assert!(sub.partitioned.iter().all(|&p| !p), "reference runs on global lattices");
    assert_eq!(src.len(), global.volume());
    let mut out = vec![WilsonSpinor::zero(); global.volume()];
    for (lex, o) in out.iter_mut().enumerate() {
        let c = global.coords(lex);
        let s = &src[lex];
        // Site-diagonal term (4 + m + A).
        let mut acc = s.scale(4.0 + op.mass);
        if let Some(cl) = &op.clover {
            let a = cl[sub.parity(c).index()].site(sub.cb_index(c));
            acc = acc.add(&a.apply(s));
        }
        // −(1/2) Σ_µ [P−µ U ψ(x+µ̂) + P+µ U† ψ(x−µ̂)]; our projector
        // helpers compute (1 ± γ)ψ = 2P±ψ, hence the −1/4.
        for mu in 0..NDIM {
            let cp = global.displace(c, mu, 1);
            let cm = global.displace(c, mu, -1);
            let fwd = project_reference(mu, false, &src[global.index(cp)]);
            let u = link_at(&op.gauge, global, c, mu);
            let fwd = WilsonSpinor::from_fn(|sp| u.mul_vec(&fwd.s[sp]));
            let bwd = project_reference(mu, true, &src[global.index(cm)]);
            let um = link_at(&op.gauge, global, cm, mu);
            let bwd = WilsonSpinor::from_fn(|sp| um.adj_mul_vec(&bwd.s[sp]));
            acc = acc.add(&fwd.add(&bwd).scale(-0.25));
        }
        *o = acc;
    }
    out
}

/// Staggered phase η_µ(x) (global coordinates).
fn eta(c: [usize; NDIM], mu: usize) -> f64 {
    let s: usize = c[..mu].iter().sum();
    if s.is_multiple_of(2) {
        1.0
    } else {
        -1.0
    }
}

/// Apply the full improved-staggered matrix `M = m − (1/2)D` of Eq. (3)
/// (with explicit phases and the anti-Hermitian sign convention of
/// [`crate::staggered`]) to a dense vector.
pub fn staggered_reference_apply(
    op: &StaggeredOp<f64>,
    global: Dims,
    src: &DenseColorVec,
) -> DenseColorVec {
    let sub = op.sublattice().clone();
    assert!(sub.partitioned.iter().all(|&p| !p), "reference runs on global lattices");
    assert_eq!(src.len(), global.volume());
    let mut out = vec![ColorVector::zero(); global.volume()];
    for (lex, o) in out.iter_mut().enumerate() {
        let c = global.coords(lex);
        let mut d = ColorVector::zero();
        for mu in 0..NDIM {
            let e = eta(c, mu);
            for (links, hop) in [(&op.fat, 1isize), (&op.long, 3)] {
                let cp = global.displace(c, mu, hop);
                let cm = global.displace(c, mu, -hop);
                let fwd = link_at(links, global, c, mu).mul_vec(&src[global.index(cp)]);
                let bwd = link_at(links, global, cm, mu).adj_mul_vec(&src[global.index(cm)]);
                d = d.add(&fwd.sub(&bwd).scale(e));
            }
        }
        *o = src[lex].scale(op.mass).add(&d.scale(-0.5));
    }
    out
}

/// Gather a parity-split pair of optimized-layout fields into a dense
/// lexicographic vector, for comparisons.
pub fn gather_dense_staggered<R: Real>(
    e: &crate::staggered::StaggeredField<R>,
    o: &crate::staggered::StaggeredField<R>,
    global: Dims,
) -> DenseColorVec {
    let sub = e.sublattice().clone();
    let mut out = vec![ColorVector::zero(); global.volume()];
    for (f, p) in [(e, Parity::Even), (o, Parity::Odd)] {
        for (idx, c) in sub.sites(p) {
            out[global.index(c)] = f.site(idx).cast::<f64>();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BoundaryMode;
    use lqcd_comms::SingleComm;
    use lqcd_gauge::asqtad::{AsqtadCoeffs, AsqtadLinks};
    use lqcd_gauge::field::GaugeStart;
    use lqcd_lattice::{FaceGeometry, SubLattice};
    use lqcd_util::rng::SeedTree;
    use std::sync::Arc;

    const GLOBAL: Dims = Dims([4, 4, 4, 8]);

    #[test]
    fn staggered_optimized_matches_the_paper_formula() {
        // The asqtad operator (checkerboarded, half-spinorless, with its
        // exterior-kernel machinery) against the direct Eq. (3) loop.
        let seed = SeedTree::new(99);
        let sub = Arc::new(SubLattice::single(GLOBAL).unwrap());
        let faces = FaceGeometry::new(&sub, 3).unwrap();
        let thin = GaugeField::<f64>::generate(
            sub.clone(),
            &faces,
            GLOBAL,
            &seed,
            GaugeStart::Disordered(0.3),
        );
        let links = AsqtadLinks::compute(&thin, GLOBAL, &AsqtadCoeffs::default());
        let op = StaggeredOp::new(links.fat, links.long, 0.17).unwrap();
        // Random source.
        let mut rng = seed.child("src").rng();
        let mut se = op.alloc(Parity::Even);
        se.fill(|_| ColorVector::random(&mut rng));
        let mut so = op.alloc(Parity::Odd);
        so.fill(|_| ColorVector::random(&mut rng));
        let dense_src = gather_dense_staggered(&se, &so, GLOBAL);
        // Optimized.
        let mut comm = SingleComm::new(GLOBAL).unwrap();
        let mut oe = op.alloc(Parity::Even);
        let mut oo = op.alloc(Parity::Odd);
        op.apply_full(&mut oe, &mut oo, &mut se, &mut so, &mut comm, BoundaryMode::Full).unwrap();
        let dense_opt = gather_dense_staggered(&oe, &oo, GLOBAL);
        // Reference.
        let dense_ref = staggered_reference_apply(&op, GLOBAL, &dense_src);
        let mut max_err = 0.0f64;
        for (a, b) in dense_opt.iter().zip(&dense_ref) {
            max_err = max_err.max(a.sub(b).norm_sqr().sqrt());
        }
        assert!(max_err < 1e-12, "optimized vs Eq. (3): max deviation {max_err}");
    }

    #[test]
    fn wilson_reference_is_linear_and_local() {
        // Sanity of the reference itself: linearity and 9-point support.
        let seed = SeedTree::new(100);
        let sub = Arc::new(SubLattice::single(GLOBAL).unwrap());
        let faces = FaceGeometry::new(&sub, 1).unwrap();
        let gauge =
            GaugeField::<f64>::generate(sub, &faces, GLOBAL, &seed, GaugeStart::Disordered(0.2));
        let op = WilsonCloverOp::new(gauge, None, 0.1).unwrap();
        let mut delta = vec![WilsonSpinor::zero(); GLOBAL.volume()];
        let origin = GLOBAL.index([1, 2, 3, 4]);
        let mut s = WilsonSpinor::zero();
        s.s[2].c[1] = lqcd_util::Complex::one();
        delta[origin] = s;
        let out = wilson_reference_apply(&op, GLOBAL, &delta);
        let support = out.iter().filter(|v| v.norm_sqr() > 1e-24).count();
        assert_eq!(support, 9, "Wilson stencil touches source + 8 neighbours");
        // Linearity: M(2ψ) = 2Mψ.
        let doubled: DenseSpinorVec = delta.iter().map(|v| v.scale(2.0)).collect();
        let out2 = wilson_reference_apply(&op, GLOBAL, &doubled);
        for (a, b) in out2.iter().zip(&out) {
            assert!(a.sub(&b.scale(2.0)).norm_sqr() < 1e-24);
        }
    }
}

//! The improved staggered (asqtad) operator.
//!
//! Conventions (paper §2.3, with the staggered phases written explicitly):
//!
//! `(D ψ)(x) = Σ_µ η_µ(x) [ Û_µ(x) ψ(x+µ̂) − Û†_µ(x−µ̂) ψ(x−µ̂)
//!                        + Ǔ_µ(x) ψ(x+3µ̂) − Ǔ†_µ(x−3µ̂) ψ(x−3µ̂) ]`
//!
//! with fat links `Û` and long links `Ǔ` (Naik coefficient folded in) and
//! phases `η_x = 1`, `η_y = (−1)^x`, `η_z = (−1)^{x+y}`, `η_t = (−1)^{x+y+z}`
//! evaluated at **global** coordinates. `D` is anti-Hermitian, so
//! `M = m − (1/2) D` satisfies `M†M = m² − D²/4`, which decouples the
//! parities — the property multi-shift CG relies on (§3.1).
//!
//! The 3-hop Naik term makes the ghost zones three sites deep
//! ([`STAGGERED_DEPTH`]), which is what makes single-dimension partitioning
//! scale so poorly for asqtad (§5, end) and multi-dimensional partitioning
//! essential.

use crate::exchange::{complete_ghost_dim, exchange_ghosts_with, post_ghost_sends};
use crate::overlap::{check_dslash_pair, run_overlapped, OverlapHost, OverlapPipeline};
use crate::BoundaryMode;
use lqcd_comms::Communicator;
use lqcd_field::{blas, BodyView, LatticeField, SiteObject};
use lqcd_gauge::GaugeField;
use lqcd_lattice::{FaceGeometry, Neighbor, Parity, SubLattice, NDIM};
use lqcd_su3::ColorVector;
use lqcd_util::{Error, Real, Result};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Ghost-zone depth of the asqtad stencil (the 3-hop Naik term).
pub const STAGGERED_DEPTH: usize = 3;

/// A staggered "spinor" (color-vector) field.
pub type StaggeredField<R> = LatticeField<R, ColorVector<R>>;

/// The asqtad operator bound to one rank's fat+long link fields.
pub struct StaggeredOp<R: Real> {
    /// Fat links with depth-3 backward ghosts.
    pub fat: GaugeField<R>,
    /// Long links (Naik coefficient included) with depth-3 backward ghosts.
    pub long: GaugeField<R>,
    /// Quark mass `m`.
    pub mass: f64,
    sub: Arc<SubLattice>,
    faces: FaceGeometry,
    /// Exchange buffers, apply counters, scheduling policy.
    overlap: Mutex<OverlapPipeline<R>>,
}

impl<R: Real> Clone for StaggeredOp<R> {
    fn clone(&self) -> Self {
        let policy = self.interior_policy();
        StaggeredOp {
            fat: self.fat.clone(),
            long: self.long.clone(),
            mass: self.mass,
            sub: self.sub.clone(),
            faces: self.faces.clone(),
            overlap: Mutex::new(OverlapPipeline::with_policy(policy)),
        }
    }
}

impl<R: Real> OverlapHost<R> for StaggeredOp<R> {
    fn overlap_state(&self) -> &Mutex<OverlapPipeline<R>> {
        &self.overlap
    }
}

impl<R: Real> StaggeredOp<R> {
    /// Bind the operator to precomputed fat/long links.
    pub fn new(fat: GaugeField<R>, long: GaugeField<R>, mass: f64) -> Result<Self> {
        let sub = fat.sublattice().clone();
        if long.sublattice().dims != sub.dims {
            return Err(Error::Shape("fat/long links live on different subvolumes".into()));
        }
        if fat.depth() < STAGGERED_DEPTH || long.depth() < STAGGERED_DEPTH {
            return Err(Error::Geometry(
                "asqtad links need depth-3 ghost zones (Naik term)".into(),
            ));
        }
        let faces = FaceGeometry::new(&sub, STAGGERED_DEPTH)?;
        Ok(Self { fat, long, mass, sub, faces, overlap: Mutex::new(OverlapPipeline::default()) })
    }

    /// The subvolume the operator acts on.
    pub fn sublattice(&self) -> &Arc<SubLattice> {
        &self.sub
    }

    /// The face geometry (depth 3).
    pub fn faces(&self) -> &FaceGeometry {
        &self.faces
    }

    /// Allocate a compatible field.
    pub fn alloc(&self, parity: Parity) -> StaggeredField<R> {
        LatticeField::zeros(self.sub.clone(), &self.faces, parity, 0)
    }

    /// Staggered phase `η_µ(x)` at *global* coordinates.
    #[inline(always)]
    fn eta(&self, c: [usize; NDIM], mu: usize) -> R {
        let mut s = 0usize;
        for d in 0..mu {
            s += c[d] + self.sub.origin[d];
        }
        if s.is_multiple_of(2) {
            R::ONE
        } else {
            -R::ONE
        }
    }

    /// One signed boundary hop of dimension `dim`: crosses the rank cut
    /// into a ghost zone, or returns `None` (interior hops belong to
    /// [`StaggeredOp::hop_interior`]).
    #[inline(always)]
    fn hop_ghost(
        &self,
        links: &GaugeField<R>,
        src: &StaggeredField<R>,
        c: [usize; NDIM],
        idx: usize,
        mu: usize,
        step: isize,
        dim: usize,
    ) -> Option<ColorVector<R>> {
        let out_parity = src.parity().other();
        let hop = self.sub.neighbor(c, mu, step, STAGGERED_DEPTH);
        match hop {
            g @ Neighbor::Ghost { mu: gmu, forward, offset } if gmu == dim => {
                let v = src.ghost(gmu, forward, offset);
                Some(if step > 0 {
                    links.link(mu, out_parity, idx).mul_vec(&v)
                } else {
                    links.link_resolved(mu, src.parity(), g).adj_mul_vec(&v).scale(-R::ONE)
                })
            }
            _ => None,
        }
    }

    /// Geometry validation for a dslash apply (see
    /// [`overlap::check_dslash_pair`]).
    ///
    /// [`overlap::check_dslash_pair`]: crate::overlap::check_dslash_pair
    fn check_geometry(&self, out: &StaggeredField<R>, src: &StaggeredField<R>) -> Result<()> {
        check_dslash_pair(out, src, &self.sub, &self.faces)
    }

    /// The raw anti-Hermitian stencil `out = D src`, pipelined as in the
    /// paper's Fig. 4: face gathers are packed and posted as nonblocking
    /// exchanges, the interior kernel runs while they are in flight
    /// (optionally on worker threads), each dimension's ghosts complete
    /// as they land, and the exterior kernels run last. Output is
    /// bit-identical to [`StaggeredOp::dslash_sequential`] for every
    /// thread count.
    pub fn dslash<C: Communicator>(
        &self,
        out: &mut StaggeredField<R>,
        src: &mut StaggeredField<R>,
        comm: &mut C,
        mode: BoundaryMode,
    ) -> Result<()> {
        self.check_geometry(out, src)?;
        let apply_t = Instant::now();
        let mut guard = self.overlap.lock().unwrap();
        let OverlapPipeline { bufs, counters, policy } = &mut *guard;
        let exchange = mode == BoundaryMode::Full;

        let gather_t = Instant::now();
        let mut pending = if exchange {
            post_ghost_sends(src, &self.faces, comm, bufs)?
        } else {
            Default::default()
        };
        let gather_ns = gather_t.elapsed().as_nanos() as u64;

        // The block scopes the split borrow of `src` (body view + ghost
        // zones) so the exterior kernels can reborrow it whole below.
        let out_parity = out.parity();
        let src_parity = src.parity();
        let (interior_ns, wall_ns) = {
            let (src_view, mut zones) = src.body_and_ghosts_mut();
            let kernel = |chunk: &mut [R], lo_site: usize| {
                self.interior_range(chunk, lo_site, src_view, out_parity, src_parity);
            };
            run_overlapped(
                policy.threads,
                out.body_mut(),
                <ColorVector<R> as SiteObject<R>>::REALS,
                &kernel,
                || {
                    if exchange {
                        for &mu in &policy.ghost_order {
                            if self.sub.partitioned[mu] {
                                complete_ghost_dim(&mut pending, mu, &mut zones, comm, bufs)?;
                            }
                        }
                    }
                    Ok(())
                },
            )?
        };

        let ext_t = Instant::now();
        if exchange {
            for mu in 0..NDIM {
                if self.sub.partitioned[mu] {
                    self.dslash_exterior(out, src, mu);
                }
            }
        }
        counters.applies += 1;
        counters.gather_ns += gather_ns;
        counters.interior_ns += interior_ns;
        counters.exterior_ns += ext_t.elapsed().as_nanos() as u64;
        counters.exposed_comm_ns += wall_ns.saturating_sub(interior_ns);
        counters.total_ns += apply_t.elapsed().as_nanos() as u64;
        Ok(())
    }

    /// The same stencil with blocking communication: exchange every
    /// ghost zone up front, then interior, then exteriors. Kept as the
    /// baseline the overlapped path is measured (and bit-compared)
    /// against.
    pub fn dslash_sequential<C: Communicator>(
        &self,
        out: &mut StaggeredField<R>,
        src: &mut StaggeredField<R>,
        comm: &mut C,
        mode: BoundaryMode,
    ) -> Result<()> {
        self.check_geometry(out, src)?;
        if mode == BoundaryMode::Full {
            let bufs = &mut self.overlap.lock().unwrap().bufs;
            exchange_ghosts_with(src, &self.faces, comm, bufs)?;
        }
        self.dslash_interior(out, src);
        if mode == BoundaryMode::Full {
            for mu in 0..NDIM {
                if self.sub.partitioned[mu] {
                    self.dslash_exterior(out, src, mu);
                }
            }
        }
        Ok(())
    }

    /// One signed interior hop against a body-only view (ghost hops
    /// return `None`; the exterior kernels pick them up).
    #[inline(always)]
    fn hop_interior(
        &self,
        links: &GaugeField<R>,
        src: BodyView<'_, R, ColorVector<R>>,
        c: [usize; NDIM],
        idx: usize,
        mu: usize,
        step: isize,
        out_parity: Parity,
        src_parity: Parity,
    ) -> Option<ColorVector<R>> {
        if let Neighbor::Interior { idx: nidx } = self.sub.neighbor(c, mu, step, STAGGERED_DEPTH) {
            let v = src.site(nidx);
            Some(if step > 0 {
                links.link(mu, out_parity, idx).mul_vec(&v)
            } else {
                // Link at the displaced site x + step·µ̂ (parity: step
                // is odd, so the source parity).
                links.link(mu, src_parity, nidx).adj_mul_vec(&v).scale(-R::ONE)
            })
        } else {
            None
        }
    }

    /// Interior kernel (all non-ghost hops).
    fn dslash_interior(&self, out: &mut StaggeredField<R>, src: &StaggeredField<R>) {
        let out_parity = out.parity();
        let src_parity = src.parity();
        let view = src.body_view();
        self.interior_range(out.body_mut(), 0, view, out_parity, src_parity);
    }

    /// Interior kernel over a contiguous site range: `out_chunk` holds
    /// the flat reals of sites `lo_site ..`, each computed independently
    /// (this is what makes chunked parallel execution bit-identical to
    /// the single pass).
    fn interior_range(
        &self,
        out_chunk: &mut [R],
        lo_site: usize,
        src: BodyView<'_, R, ColorVector<R>>,
        out_parity: Parity,
        src_parity: Parity,
    ) {
        let reals = <ColorVector<R> as SiteObject<R>>::REALS;
        for (k, slot) in out_chunk.chunks_exact_mut(reals).enumerate() {
            let idx = lo_site + k;
            let c = self.sub.cb_coords(out_parity, idx);
            let mut acc = ColorVector::zero();
            for mu in 0..NDIM {
                let eta = self.eta(c, mu);
                for (links, dist) in [(&self.fat, 1isize), (&self.long, 3)] {
                    for step in [dist, -dist] {
                        if let Some(v) =
                            self.hop_interior(links, src, c, idx, mu, step, out_parity, src_parity)
                        {
                            acc = acc.add(&v.scale(eta));
                        }
                    }
                }
            }
            acc.write(slot);
        }
    }

    /// Exterior kernel for dimension `mu`: boundary (ghost) hops only.
    /// The depth-3 face tables cover every site whose 1- or 3-hop
    /// neighbour crosses the cut.
    fn dslash_exterior(&self, out: &mut StaggeredField<R>, src: &StaggeredField<R>, mu: usize) {
        let out_parity = out.parity();
        let mut update = |cb: u32| {
            let idx = cb as usize;
            let c = self.sub.cb_coords(out_parity, idx);
            let eta = self.eta(c, mu);
            let mut acc = out.site(idx);
            let mut touched = false;
            for (links, dist) in [(&self.fat, 1isize), (&self.long, 3)] {
                for step in [dist, -dist] {
                    if let Some(v) = self.hop_ghost(links, src, c, idx, mu, step, mu) {
                        acc = acc.add(&v.scale(eta));
                        touched = true;
                    }
                }
            }
            if touched {
                out.set_site(idx, acc);
            }
        };
        for &cb in self.faces.low_face(mu, out_parity) {
            update(cb);
        }
        // On thin ranks (L < 2·depth) the low and high face tables
        // overlap; one `update` already handles every ghost hop of a
        // site, so skip sites the low-face pass visited.
        let depth = self.faces.depth;
        for &cb in self.faces.high_face(mu, out_parity) {
            let c = self.sub.cb_coords(out_parity, cb as usize);
            if c[mu] < depth {
                continue;
            }
            update(cb);
        }
    }

    /// Full operator: `out = M src = m·src − (1/2) D src` (two parities).
    #[allow(clippy::too_many_arguments)]
    pub fn apply_full<C: Communicator>(
        &self,
        out_e: &mut StaggeredField<R>,
        out_o: &mut StaggeredField<R>,
        src_e: &mut StaggeredField<R>,
        src_o: &mut StaggeredField<R>,
        comm: &mut C,
        mode: BoundaryMode,
    ) -> Result<()> {
        self.dslash(out_e, src_o, comm, mode)?;
        self.dslash(out_o, src_e, comm, mode)?;
        let m = R::from_f64(self.mass);
        let half = -R::from_f64(0.5);
        blas::scale(out_e, half);
        blas::axpy(m, src_e, out_e);
        blas::scale(out_o, half);
        blas::axpy(m, src_o, out_o);
        Ok(())
    }

    /// The parity-decoupled normal operator on one parity:
    /// `out = (M†M)_pp src = m² src − (1/4) D_po D_op src`.
    ///
    /// This (shifted by σ) is what the multi-shift CG solves (§3.1, Eq. 4).
    pub fn apply_normal<C: Communicator>(
        &self,
        out: &mut StaggeredField<R>,
        src: &mut StaggeredField<R>,
        scratch: &mut StaggeredField<R>,
        comm: &mut C,
        mode: BoundaryMode,
    ) -> Result<()> {
        self.dslash(scratch, src, comm, mode)?;
        self.dslash(out, scratch, comm, mode)?;
        let m2 = R::from_f64(self.mass * self.mass);
        blas::scale(out, -R::from_f64(0.25));
        blas::axpy(m2, src, out);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqcd_comms::SingleComm;
    use lqcd_field::blas::{cdot_local, max_abs_diff, norm2_local};
    use lqcd_gauge::asqtad::{AsqtadCoeffs, AsqtadLinks};
    use lqcd_gauge::field::GaugeStart;
    use lqcd_lattice::Dims;
    use lqcd_util::rng::SeedTree;
    use lqcd_util::Complex;

    const GLOBAL: Dims = Dims([4, 4, 4, 8]);

    fn make_op(start: GaugeStart, mass: f64) -> StaggeredOp<f64> {
        let sub = Arc::new(SubLattice::single(GLOBAL).unwrap());
        let faces = FaceGeometry::new(&sub, STAGGERED_DEPTH).unwrap();
        let thin = GaugeField::<f64>::generate(sub, &faces, GLOBAL, &SeedTree::new(8), start);
        let links = AsqtadLinks::compute(&thin, GLOBAL, &AsqtadCoeffs::default());
        StaggeredOp::new(links.fat, links.long, mass).unwrap()
    }

    fn rand_pair(op: &StaggeredOp<f64>, seed: u64) -> (StaggeredField<f64>, StaggeredField<f64>) {
        let t = SeedTree::new(seed);
        let mut rng = t.rng();
        let mut e = op.alloc(Parity::Even);
        e.fill(|_| ColorVector::random(&mut rng));
        let mut o = op.alloc(Parity::Odd);
        o.fill(|_| ColorVector::random(&mut rng));
        (e, o)
    }

    #[test]
    fn dslash_is_antihermitian() {
        // ⟨w, D v⟩ = −⟨D w, v⟩ over the full lattice.
        let op = make_op(GaugeStart::Disordered(0.3), 0.0);
        let (mut ve, mut vo) = rand_pair(&op, 1);
        let (mut we, mut wo) = rand_pair(&op, 2);
        let mut comm = SingleComm::new(GLOBAL).unwrap();
        let mut dv_e = op.alloc(Parity::Even);
        let mut dv_o = op.alloc(Parity::Odd);
        op.dslash(&mut dv_e, &mut vo, &mut comm, BoundaryMode::Full).unwrap();
        op.dslash(&mut dv_o, &mut ve, &mut comm, BoundaryMode::Full).unwrap();
        let mut dw_e = op.alloc(Parity::Even);
        let mut dw_o = op.alloc(Parity::Odd);
        op.dslash(&mut dw_e, &mut wo, &mut comm, BoundaryMode::Full).unwrap();
        op.dslash(&mut dw_o, &mut we, &mut comm, BoundaryMode::Full).unwrap();
        let lhs = cdot_local(&we, &dv_e) + cdot_local(&wo, &dv_o);
        let rhs = cdot_local(&dw_e, &ve) + cdot_local(&dw_o, &vo);
        assert!(
            (lhs + rhs).abs() < 1e-9 * (lhs.abs() + 1.0),
            "anti-hermiticity violated: {lhs} vs {rhs}"
        );
    }

    #[test]
    fn free_field_dispersion_normalization() {
        // Cold links, plane wave at small momentum: the asqtad derivative
        // (9/8)·sin(p) − (1/24)·sin(3p)·... acts like i·sin-combination; at
        // p = 2π/L the eigenvalue of D on the wave must be ≈ i·p (the
        // improvement conditions kill the p³ term).
        let op = make_op(GaugeStart::Cold, 0.0);
        let sub = op.sublattice().clone();
        let lt = GLOBAL.0[3] as f64;
        let p = 2.0 * std::f64::consts::PI / lt;
        // Staggered phases for µ = T depend on x, y, z; pick a plane wave
        // in T modulated to be an η-eigenvector: χ(x) = e^{ipt}·φ(x,y,z)
        // with φ = 1 (η_t(x) multiplies the wave but D_t also carries it —
        // use sites with x+y+z even only via projection below).
        let mut se = op.alloc(Parity::Even);
        let mut so = op.alloc(Parity::Odd);
        let wave = |c: [usize; 4]| -> Complex<f64> {
            let phase = p * c[3] as f64;
            Complex::new(phase.cos(), phase.sin())
        };
        let subc = sub.clone();
        se.fill(|idx| {
            let c = subc.cb_coords(Parity::Even, idx);
            ColorVector::from_fn(|k| if k == 0 { wave(c) } else { Complex::zero() })
        });
        let subc = sub.clone();
        so.fill(|idx| {
            let c = subc.cb_coords(Parity::Odd, idx);
            ColorVector::from_fn(|k| if k == 0 { wave(c) } else { Complex::zero() })
        });
        let mut comm = SingleComm::new(GLOBAL).unwrap();
        let mut de = op.alloc(Parity::Even);
        let mut d_o = op.alloc(Parity::Odd);
        op.dslash(&mut de, &mut so, &mut comm, BoundaryMode::Full).unwrap();
        op.dslash(&mut d_o, &mut se, &mut comm, BoundaryMode::Full).unwrap();
        // At a site with x+y+z even, η_t = +1 and
        // (Dψ)(x) = [9/8·2i·sin p − 1/24·2i·sin 3p]·ψ(x) — wait: forward −
        // backward gives 2i sin; fat coefficient 9/8 and long −1/24 are in
        // the links, so eigenvalue = i[ (9/8)·2 sin p + (−1/24)·2 sin 3p ].
        let eig = 2.0 * ((9.0 / 8.0) * p.sin() - (1.0 / 24.0) * (3.0 * p).sin());
        let c0 = [0, 0, 2, 3]; // x+y+z = 2 even, odd site overall
        assert_eq!(sub.parity(c0), Parity::Odd);
        let got = d_o.site(sub.cb_index(c0)).c[0];
        let want = wave(c0).mul_i().scale(eig);
        assert!(
            (got - want).abs() < 1e-12,
            "dispersion: got {got}, want {want} (eig {eig}, 2p would be {})",
            2.0 * p
        );
        // The derivative normalization is M = m − D/2, so D ≈ 2i·p on a
        // plane wave; the improvement kills the p³ error, leaving only the
        // small O(p⁵) residue (the *unimproved* operator would miss by
        // |sin p − p| ≈ 0.078 here — an order of magnitude worse).
        assert!((eig / 2.0 - p).abs() < 0.1 * p.powi(5), "eig/2 {} vs p {p}", eig / 2.0);
    }

    #[test]
    fn normal_operator_is_hermitian_positive() {
        let op = make_op(GaugeStart::Disordered(0.25), 0.1);
        let (mut ve, _) = rand_pair(&op, 3);
        let (mut we, _) = rand_pair(&op, 4);
        let mut comm = SingleComm::new(GLOBAL).unwrap();
        let mut nv = op.alloc(Parity::Even);
        let mut nw = op.alloc(Parity::Even);
        let mut scratch = op.alloc(Parity::Odd);
        op.apply_normal(&mut nv, &mut ve, &mut scratch, &mut comm, BoundaryMode::Full).unwrap();
        op.apply_normal(&mut nw, &mut we, &mut scratch, &mut comm, BoundaryMode::Full).unwrap();
        let lhs = cdot_local(&we, &nv);
        let rhs = cdot_local(&nw, &ve);
        assert!((lhs - rhs).abs() < 1e-9 * (lhs.abs() + 1.0), "not Hermitian");
        // Positivity: ⟨v, M†M v⟩ ≥ m²‖v‖².
        let vv = cdot_local(&ve, &nv).re;
        let m2 = 0.1f64 * 0.1;
        assert!(vv >= m2 * norm2_local(&ve) * 0.999, "not positive definite");
    }

    #[test]
    fn full_vs_normal_consistency() {
        // M†M computed via apply_normal must equal applying M twice with a
        // sign flip on the mass (M† = m + D/2 = M with D → −D ... easier:
        // M†(Mv) where M† = 2m − M acting as m + D/2).
        let op = make_op(GaugeStart::Disordered(0.2), 0.25);
        let (mut ve, mut vo) = rand_pair(&op, 5);
        let mut comm = SingleComm::new(GLOBAL).unwrap();
        // Mv.
        let mut mv_e = op.alloc(Parity::Even);
        let mut mv_o = op.alloc(Parity::Odd);
        op.apply_full(&mut mv_e, &mut mv_o, &mut ve, &mut vo, &mut comm, BoundaryMode::Full)
            .unwrap();
        // M†(Mv) = m(Mv) + (1/2)D(Mv).
        let mut d_e = op.alloc(Parity::Even);
        let mut d_o = op.alloc(Parity::Odd);
        op.dslash(&mut d_e, &mut mv_o, &mut comm, BoundaryMode::Full).unwrap();
        op.dslash(&mut d_o, &mut mv_e, &mut comm, BoundaryMode::Full).unwrap();
        let m = 0.25f64;
        blas::scale(&mut d_e, 0.5);
        blas::axpy(m, &mv_e, &mut d_e);
        blas::scale(&mut d_o, 0.5);
        blas::axpy(m, &mv_o, &mut d_o);
        // Via apply_normal (even parity only; vo contributes nothing to
        // the even block of M†M... it does through D², so compare evens of
        // the full computation against normal applied to ve only when
        // vo = 0). Regenerate with vo = 0.
        let mut vo0 = op.alloc(Parity::Odd);
        let mut mv_e2 = op.alloc(Parity::Even);
        let mut mv_o2 = op.alloc(Parity::Odd);
        let mut ve2 = ve.clone();
        op.apply_full(&mut mv_e2, &mut mv_o2, &mut ve2, &mut vo0, &mut comm, BoundaryMode::Full)
            .unwrap();
        let mut d2_e = op.alloc(Parity::Even);
        let mut d2_o = op.alloc(Parity::Odd);
        op.dslash(&mut d2_e, &mut mv_o2, &mut comm, BoundaryMode::Full).unwrap();
        op.dslash(&mut d2_o, &mut mv_e2, &mut comm, BoundaryMode::Full).unwrap();
        blas::scale(&mut d2_e, 0.5);
        blas::axpy(m, &mv_e2, &mut d2_e);
        let mut normal = op.alloc(Parity::Even);
        let mut scratch = op.alloc(Parity::Odd);
        let mut ve3 = ve.clone();
        op.apply_normal(&mut normal, &mut ve3, &mut scratch, &mut comm, BoundaryMode::Full)
            .unwrap();
        assert!(max_abs_diff(&normal, &d2_e) < 1e-12);
    }

    #[test]
    fn stencil_support_is_one_and_three_hops() {
        // Needs extents > 6 so the ±3 hops don't alias the ∓1 hops
        // (on L = 4, x+3 ≡ x−1 and the supports merge).
        let global = Dims([8, 8, 8, 8]);
        let sub = Arc::new(SubLattice::single(global).unwrap());
        let faces = FaceGeometry::new(&sub, STAGGERED_DEPTH).unwrap();
        let thin = GaugeField::<f64>::generate(
            sub.clone(),
            &faces,
            global,
            &SeedTree::new(8),
            GaugeStart::Cold,
        );
        let links = AsqtadLinks::compute(&thin, global, &AsqtadCoeffs::default());
        let op = StaggeredOp::new(links.fat, links.long, 0.0).unwrap();
        let sub = op.sublattice().clone();
        let mut so = op.alloc(Parity::Odd);
        let c0 = [1, 2, 3, 5];
        assert_eq!(sub.parity(c0), Parity::Odd);
        let mut v = ColorVector::zero();
        v.c[0] = Complex::one();
        so.set_site(sub.cb_index(c0), v);
        let mut comm = SingleComm::new(global).unwrap();
        let mut de = op.alloc(Parity::Even);
        op.dslash(&mut de, &mut so, &mut comm, BoundaryMode::Full).unwrap();
        let mut support = Vec::new();
        for (idx, c) in sub.sites(Parity::Even) {
            if de.site(idx).norm_sqr() > 1e-20 {
                support.push(c);
            }
        }
        // 8 one-hop + 8 three-hop neighbours.
        assert_eq!(support.len(), 16);
        for c in support {
            let dist: usize = (0..4)
                .map(|d| {
                    let l = global.0[d] as isize;
                    let diff = (c[d] as isize - c0[d] as isize).rem_euclid(l);
                    diff.min(l - diff) as usize
                })
                .sum();
            assert!(dist == 1 || dist == 3, "unexpected support at {c:?}");
        }
    }
}

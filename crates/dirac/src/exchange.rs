//! Ghost-zone exchange for spinor fields.
//!
//! One call gathers the boundary faces of a source field into contiguous
//! buffers (the "gather kernels" of §6.1/Fig. 4), ships them with two
//! `send_recv`s per partitioned dimension, and deposits the received data
//! into the field's ghost zones:
//!
//! * low face → sent to the −µ neighbour → lands in *its* forward ghost;
//! * high face → sent to the +µ neighbour → lands in *its* backward ghost.
//!
//! Both sides of each shift happen in one collective `send_recv`, so the
//! exchange is deadlock-free by construction.

use lqcd_comms::Communicator;
use lqcd_field::{LatticeField, SiteObject};
use lqcd_lattice::{FaceGeometry, NDIM};
use lqcd_util::{Real, Result};

/// Exchange every ghost zone of `field` (all partitioned dimensions, both
/// directions). The field's own parity determines which face tables are
/// used — ghost zones always hold sites of the field's parity.
pub fn exchange_ghosts<R: Real, S: SiteObject<R>, C: Communicator>(
    field: &mut LatticeField<R, S>,
    faces: &FaceGeometry,
    comm: &mut C,
) -> Result<()> {
    let sub = field.sublattice().clone();
    let parity = field.parity();
    for mu in 0..NDIM {
        if !sub.partitioned[mu] {
            continue;
        }
        let n = faces.ghost_sites(mu) * S::REALS;
        // Low face backward: I receive my *forward* ghost from +µ.
        {
            let table = faces.low_face(mu, parity);
            let mut send = vec![R::ZERO; n];
            field.gather(table, &mut send);
            let send64: Vec<f64> = send.iter().map(|x| x.to_f64()).collect();
            let mut recv64 = vec![0.0f64; n];
            comm.send_recv(mu, false, &send64, &mut recv64)?;
            let zone = field.ghost_zone_mut(mu, true);
            for (z, v) in zone.iter_mut().zip(&recv64) {
                *z = R::from_f64(*v);
            }
        }
        // High face forward: I receive my *backward* ghost from −µ.
        {
            let table = faces.high_face(mu, parity);
            let mut send = vec![R::ZERO; n];
            field.gather(table, &mut send);
            let send64: Vec<f64> = send.iter().map(|x| x.to_f64()).collect();
            let mut recv64 = vec![0.0f64; n];
            comm.send_recv(mu, true, &send64, &mut recv64)?;
            let zone = field.ghost_zone_mut(mu, false);
            for (z, v) in zone.iter_mut().zip(&recv64) {
                *z = R::from_f64(*v);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqcd_comms::run_on_grid;
    use lqcd_lattice::{Dims, Neighbor, Parity, ProcessGrid, SubLattice};
    use lqcd_su3::ColorVector;
    use lqcd_util::Complex;
    use std::sync::Arc;

    /// Fill a field with its global site index encoded in component 0,
    /// exchange ghosts, and verify every ghost hop reads the global index
    /// of the physically-targeted site.
    #[test]
    fn ghosts_carry_the_right_global_sites() {
        let global = Dims([4, 4, 8, 8]);
        for (shape, depth) in
            [(Dims([1, 1, 2, 2]), 1usize), (Dims([1, 1, 1, 2]), 3), (Dims([1, 1, 2, 2]), 3)]
        {
            let grid = ProcessGrid::new(shape, global).unwrap();
            let grid2 = grid.clone();
            let checks = run_on_grid(grid, move |mut comm| {
                let sub = Arc::new(SubLattice::for_rank(&grid2, comm.rank()));
                let faces = FaceGeometry::new(&sub, depth).unwrap();
                let mut checked = 0usize;
                for parity in Parity::BOTH {
                    let mut field: LatticeField<f64, ColorVector<f64>> =
                        LatticeField::zeros(sub.clone(), &faces, parity, 3);
                    let subc = sub.clone();
                    field.fill(|idx| {
                        let c = subc.cb_coords(parity, idx);
                        let mut gc = c;
                        for d in 0..4 {
                            gc[d] = c[d] + subc.origin[d];
                        }
                        let mut v = ColorVector::zero();
                        v.c[0] = Complex::from_re(global.index(gc) as f64);
                        v
                    });
                    exchange_ghosts(&mut field, &faces, &mut comm).unwrap();
                    // Every ghost-resolved hop must read the right site.
                    for (_, c) in sub.sites(parity.other()) {
                        for mu in 0..4 {
                            for step in [-(depth as isize), -1, 1, depth as isize] {
                                if step.unsigned_abs() > depth || step % 2 == 0 {
                                    continue;
                                }
                                let hop = sub.neighbor(c, mu, step, depth);
                                let Neighbor::Ghost { mu: gmu, forward, offset } = hop else {
                                    continue;
                                };
                                let got = field.ghost(gmu, forward, offset).c[0].re;
                                let mut gc = c;
                                for d in 0..4 {
                                    gc[d] = c[d] + sub.origin[d];
                                }
                                let want = global.index(global.displace(gc, mu, step)) as f64;
                                assert_eq!(
                                    got,
                                    want,
                                    "rank {} parity {parity:?} µ={mu} step {step} {c:?}",
                                    comm.rank()
                                );
                                checked += 1;
                            }
                        }
                    }
                }
                checked
            });
            assert!(checks.iter().all(|&n| n > 0), "no ghost hops checked");
        }
    }

    /// Single-rank fields have no partitioned dims; exchange is a no-op.
    #[test]
    fn single_rank_exchange_is_noop() {
        let global = Dims([4, 4, 4, 4]);
        let sub = Arc::new(SubLattice::single(global).unwrap());
        let faces = FaceGeometry::new(&sub, 1).unwrap();
        let mut comm = lqcd_comms::SingleComm::new(global).unwrap();
        let mut field: LatticeField<f64, ColorVector<f64>> =
            LatticeField::zeros(sub, &faces, Parity::Even, 0);
        exchange_ghosts(&mut field, &faces, &mut comm).unwrap();
    }
}

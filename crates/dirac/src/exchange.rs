//! Ghost-zone exchange for spinor fields.
//!
//! The exchange is split into the stages of the paper's Fig. 4 pipeline:
//!
//! * [`post_ghost_sends`] gathers the boundary faces of a source field
//!   into persistent buffers (the "gather kernels" of §6.1), packs them
//!   at the field's storage precision, and *posts* both faces of every
//!   partitioned dimension with nonblocking
//!   [`Communicator::start_send_recv`]s;
//! * [`complete_ghost_dim`] finishes one dimension's pair of exchanges,
//!   unpacking received wire data straight into the field's ghost zones
//!   — callable while the interior kernel still runs, since the ghost
//!   zones are borrowed independently of the body
//!   ([`lqcd_field::LatticeField::body_and_ghosts_mut`]);
//! * [`exchange_ghosts`] is the blocking composition of the two (post
//!   everything, complete every dimension in order).
//!
//! Face data travels at the field's true storage width: `f32` fields
//! bit-pack two values per `f64` wire word ([`Real::pack_wire`]), so the
//! byte volume matches what the perf model's message pricing assumes.
//!
//! Direction convention (one collective `send_recv` pair per dimension,
//! deadlock-free by construction):
//!
//! * low face → sent to the −µ neighbour → lands in *its* forward ghost;
//! * high face → sent to the +µ neighbour → lands in *its* backward ghost.

use lqcd_comms::{Communicator, ExchangeHandle};
use lqcd_field::{GhostZonesMut, LatticeField, SiteObject};
use lqcd_lattice::{FaceGeometry, NDIM};
use lqcd_util::{trace, Error, Real, Result};

/// Persistent staging buffers for one operator's ghost exchanges,
/// indexed `[mu][dir]` with `dir = 0` for the low-face (backward) send
/// and `1` for the high-face (forward) send. Sized on first use and
/// reused for the lifetime of the operator, so solver hot loops stop
/// churning the allocator.
#[derive(Default)]
pub struct ExchangeBuffers<R: Real> {
    /// Typed gather targets (one face of sites each).
    send: [[Vec<R>; 2]; NDIM],
    /// Packed outgoing wire words.
    wire_send: [[Vec<f64>; 2]; NDIM],
    /// Incoming wire words, unpacked into ghost zones at completion.
    wire_recv: [[Vec<f64>; 2]; NDIM],
}

/// Handles of the in-flight exchanges started by [`post_ghost_sends`],
/// indexed like [`ExchangeBuffers`].
#[derive(Default)]
pub struct PendingGhosts {
    handles: [[Option<ExchangeHandle>; 2]; NDIM],
}

impl PendingGhosts {
    /// Whether dimension `mu` has an exchange in flight.
    pub fn in_flight(&self, mu: usize) -> bool {
        self.handles[mu].iter().any(Option::is_some)
    }
}

/// Gather and post both faces of every partitioned dimension of `field`.
/// Returns the in-flight handles; each dimension must be finished with
/// [`complete_ghost_dim`] before its ghost zones are read.
pub fn post_ghost_sends<R: Real, S: SiteObject<R>, C: Communicator>(
    field: &LatticeField<R, S>,
    faces: &FaceGeometry,
    comm: &mut C,
    bufs: &mut ExchangeBuffers<R>,
) -> Result<PendingGhosts> {
    let _sp = trace::span(trace::Track::Gather, "post_ghost_sends");
    let sub = field.sublattice();
    let parity = field.parity();
    let mut pending = PendingGhosts::default();
    for mu in 0..NDIM {
        if !sub.partitioned[mu] {
            continue;
        }
        let n = faces.ghost_sites(mu) * S::REALS;
        for (dir, table) in [(0usize, faces.low_face(mu, parity)), (1, faces.high_face(mu, parity))]
        {
            let send = &mut bufs.send[mu][dir];
            send.resize(n, R::ZERO);
            field.gather(table, send);
            let wire = &mut bufs.wire_send[mu][dir];
            wire.resize(R::wire_words(n), 0.0);
            R::pack_wire(send, wire);
            pending.handles[mu][dir] = Some(comm.start_send_recv(mu, dir == 1, wire)?);
        }
    }
    Ok(pending)
}

/// Complete dimension `mu`'s pair of exchanges, depositing received
/// faces into the matching ghost zones: the low-face send (dir 0) pairs
/// with a receive from +µ into the *forward* ghost, the high-face send
/// (dir 1) with a receive from −µ into the *backward* ghost.
pub fn complete_ghost_dim<R: Real, C: Communicator>(
    pending: &mut PendingGhosts,
    mu: usize,
    zones: &mut GhostZonesMut<'_, R>,
    comm: &mut C,
    bufs: &mut ExchangeBuffers<R>,
) -> Result<()> {
    let _sp = trace::span_arg(trace::Track::Comm, "complete_ghost_dim", mu as i64);
    for dir in 0..2 {
        let Some(handle) = pending.handles[mu][dir].take() else {
            return Err(Error::Comms(format!(
                "ghost completion for dimension {mu} has no exchange in flight"
            )));
        };
        let zone = zones.zone_mut(mu, dir == 0);
        let wire = &mut bufs.wire_recv[mu][dir];
        wire.resize(R::wire_words(zone.len()), 0.0);
        comm.complete_send_recv(handle, wire)?;
        R::unpack_wire(wire, zone);
    }
    Ok(())
}

/// Exchange every ghost zone of `field` (all partitioned dimensions, both
/// directions) through persistent buffers. The field's own parity
/// determines which face tables are used — ghost zones always hold sites
/// of the field's parity.
pub fn exchange_ghosts_with<R: Real, S: SiteObject<R>, C: Communicator>(
    field: &mut LatticeField<R, S>,
    faces: &FaceGeometry,
    comm: &mut C,
    bufs: &mut ExchangeBuffers<R>,
) -> Result<()> {
    let partitioned = field.sublattice().partitioned;
    let mut pending = post_ghost_sends(field, faces, comm, bufs)?;
    let (_, mut zones) = field.body_and_ghosts_mut();
    for mu in 0..NDIM {
        if partitioned[mu] {
            complete_ghost_dim(&mut pending, mu, &mut zones, comm, bufs)?;
        }
    }
    Ok(())
}

/// One-shot [`exchange_ghosts_with`] using throwaway buffers. Prefer an
/// operator-owned [`ExchangeBuffers`] in hot loops.
pub fn exchange_ghosts<R: Real, S: SiteObject<R>, C: Communicator>(
    field: &mut LatticeField<R, S>,
    faces: &FaceGeometry,
    comm: &mut C,
) -> Result<()> {
    exchange_ghosts_with(field, faces, comm, &mut ExchangeBuffers::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqcd_comms::run_on_grid;
    use lqcd_lattice::{Dims, Neighbor, Parity, ProcessGrid, SubLattice};
    use lqcd_su3::ColorVector;
    use lqcd_util::Complex;
    use std::sync::Arc;

    /// Fill a field with its global site index encoded in component 0,
    /// exchange ghosts, and verify every ghost hop reads the global index
    /// of the physically-targeted site.
    #[test]
    fn ghosts_carry_the_right_global_sites() {
        let global = Dims([4, 4, 8, 8]);
        for (shape, depth) in
            [(Dims([1, 1, 2, 2]), 1usize), (Dims([1, 1, 1, 2]), 3), (Dims([1, 1, 2, 2]), 3)]
        {
            let grid = ProcessGrid::new(shape, global).unwrap();
            let grid2 = grid.clone();
            let checks = run_on_grid(grid, move |mut comm| {
                let sub = Arc::new(SubLattice::for_rank(&grid2, comm.rank()));
                let faces = FaceGeometry::new(&sub, depth).unwrap();
                let mut checked = 0usize;
                for parity in Parity::BOTH {
                    let mut field: LatticeField<f64, ColorVector<f64>> =
                        LatticeField::zeros(sub.clone(), &faces, parity, 3);
                    let subc = sub.clone();
                    field.fill(|idx| {
                        let c = subc.cb_coords(parity, idx);
                        let mut gc = c;
                        for d in 0..4 {
                            gc[d] = c[d] + subc.origin[d];
                        }
                        let mut v = ColorVector::zero();
                        v.c[0] = Complex::from_re(global.index(gc) as f64);
                        v
                    });
                    exchange_ghosts(&mut field, &faces, &mut comm).unwrap();
                    // Every ghost-resolved hop must read the right site.
                    for (_, c) in sub.sites(parity.other()) {
                        for mu in 0..4 {
                            for step in [-(depth as isize), -1, 1, depth as isize] {
                                if step.unsigned_abs() > depth || step % 2 == 0 {
                                    continue;
                                }
                                let hop = sub.neighbor(c, mu, step, depth);
                                let Neighbor::Ghost { mu: gmu, forward, offset } = hop else {
                                    continue;
                                };
                                let got = field.ghost(gmu, forward, offset).c[0].re;
                                let mut gc = c;
                                for d in 0..4 {
                                    gc[d] = c[d] + sub.origin[d];
                                }
                                let want = global.index(global.displace(gc, mu, step)) as f64;
                                assert_eq!(
                                    got,
                                    want,
                                    "rank {} parity {parity:?} µ={mu} step {step} {c:?}",
                                    comm.rank()
                                );
                                checked += 1;
                            }
                        }
                    }
                }
                checked
            });
            assert!(checks.iter().all(|&n| n > 0), "no ghost hops checked");
        }
    }

    /// Single-rank fields have no partitioned dims; exchange is a no-op.
    #[test]
    fn single_rank_exchange_is_noop() {
        let global = Dims([4, 4, 4, 4]);
        let sub = Arc::new(SubLattice::single(global).unwrap());
        let faces = FaceGeometry::new(&sub, 1).unwrap();
        let mut comm = lqcd_comms::SingleComm::new(global).unwrap();
        let mut field: LatticeField<f64, ColorVector<f64>> =
            LatticeField::zeros(sub, &faces, Parity::Even, 0);
        exchange_ghosts(&mut field, &faces, &mut comm).unwrap();
    }

    /// Split stages with reused buffers must equal the one-shot path,
    /// with f32 faces shipping bit-exactly through packed wire words.
    #[test]
    fn split_stages_and_reused_buffers_match_oneshot() {
        let global = Dims([4, 4, 8, 8]);
        let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), global).unwrap();
        let grid2 = grid.clone();
        let ok = run_on_grid(grid, move |mut comm| {
            let sub = Arc::new(SubLattice::for_rank(&grid2, comm.rank()));
            let faces = FaceGeometry::new(&sub, 1).unwrap();
            let mut bufs = ExchangeBuffers::default();
            for round in 0..3u32 {
                for parity in Parity::BOTH {
                    let mut field: LatticeField<f32, ColorVector<f32>> =
                        LatticeField::zeros(sub.clone(), &faces, parity, 2);
                    let subc = sub.clone();
                    field.fill(|idx| {
                        let c = subc.cb_coords(parity, idx);
                        let mut gc = c;
                        for d in 0..4 {
                            gc[d] = c[d] + subc.origin[d];
                        }
                        let mut v = ColorVector::zero();
                        // 0.1 is inexact in binary: a value that would
                        // not survive rounding through a narrower path.
                        v.c[0] = Complex::from_re(global.index(gc) as f32 + 0.1 + round as f32);
                        v
                    });
                    let mut oneshot = field.clone();
                    exchange_ghosts(&mut oneshot, &faces, &mut comm).unwrap();

                    let partitioned = sub.partitioned;
                    let mut pending =
                        post_ghost_sends(&field, &faces, &mut comm, &mut bufs).unwrap();
                    let (_, mut zones) = field.body_and_ghosts_mut();
                    // Complete in reverse dimension order to prove
                    // per-dimension independence.
                    for mu in (0..NDIM).rev() {
                        if partitioned[mu] {
                            complete_ghost_dim(&mut pending, mu, &mut zones, &mut comm, &mut bufs)
                                .unwrap();
                        }
                    }
                    for mu in 0..NDIM {
                        assert!(!pending.in_flight(mu));
                        if !partitioned[mu] {
                            continue;
                        }
                        for fwd in [false, true] {
                            let a = field.ghost_zone(mu, fwd);
                            let b = oneshot.ghost_zone(mu, fwd);
                            assert!(
                                a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
                                "zone ({mu}, {fwd}) differs from one-shot exchange"
                            );
                        }
                    }
                }
            }
            true
        });
        assert!(ok.iter().all(|&b| b));
    }

    /// Completing a dimension that was never posted is a structured error.
    #[test]
    fn completing_unposted_dimension_errors() {
        let global = Dims([4, 4, 4, 8]);
        let grid = ProcessGrid::new(Dims([1, 1, 1, 2]), global).unwrap();
        let results = run_on_grid(grid.clone(), move |mut comm| {
            let sub = Arc::new(SubLattice::for_rank(&grid, comm.rank()));
            let faces = FaceGeometry::new(&sub, 1).unwrap();
            let mut field: LatticeField<f64, ColorVector<f64>> =
                LatticeField::zeros(sub, &faces, Parity::Even, 0);
            let mut bufs = ExchangeBuffers::default();
            let mut pending = PendingGhosts::default();
            let (_, mut zones) = field.body_and_ghosts_mut();
            complete_ghost_dim(&mut pending, 3, &mut zones, &mut comm, &mut bufs)
                .err()
                .map(|e| e.to_string())
        });
        for err in results {
            assert!(err.unwrap().contains("no exchange in flight"));
        }
    }
}

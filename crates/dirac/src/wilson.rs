//! The Wilson and Wilson-clover Dirac operators.
//!
//! Conventions (paper §2.2): the full matrix is
//! `M = −(1/2) D + (4 + m + A)` with the hopping term
//! `D_{x,x'} = Σ_µ [P−µ ⊗ U_µ(x) δ_{x+µ̂,x'} + P+µ ⊗ U†_µ(x−µ̂) δ_{x−µ̂,x'}]`.
//! Internally we compute the *doubled* stencil `D̂ = 2D` (our projectors
//! return `(1 ± γµ)ψ`, twice `P±ψ`, saving the halving until the final
//! axpy), so `M ψ = T ψ − (1/4) D̂ ψ` with `T = 4 + m + A` site-diagonal.
//!
//! Even-odd (red-black) preconditioning solves the Schur complement
//! `M̂_oo = T_oo − (1/16) D̂_oe T_ee⁻¹ D̂_eo` (§3.1).

use crate::exchange::{complete_ghost_dim, exchange_ghosts_with, post_ghost_sends};
use crate::overlap::{check_dslash_pair, run_overlapped, OverlapHost, OverlapPipeline};
use crate::BoundaryMode;
use lqcd_comms::Communicator;
use lqcd_field::{blas, BodyView, LatticeField, SiteObject};
use lqcd_gauge::GaugeField;
use lqcd_lattice::{FaceGeometry, Neighbor, Parity, SubLattice, NDIM};
use lqcd_su3::{CloverSite, Projector, WilsonSpinor};
use lqcd_util::{trace, Error, Real, Result};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Ghost-zone depth of the Wilson stencil (nearest neighbour).
pub const WILSON_DEPTH: usize = 1;

/// A Wilson spinor field.
pub type SpinorField<R> = LatticeField<R, WilsonSpinor<R>>;

/// The Wilson(-clover) operator bound to one rank's gauge field.
pub struct WilsonCloverOp<R: Real> {
    /// Gauge links with depth-1 backward ghosts.
    pub gauge: GaugeField<R>,
    /// The clover term `A` per parity (*without* the `4 + m` shift);
    /// `None` gives the plain Wilson operator.
    pub clover: Option<[LatticeField<R, CloverSite<R>>; 2]>,
    /// Precomputed `(4 + m + A)⁻¹` per parity (needed for even-odd
    /// preconditioning); built by [`WilsonCloverOp::build_t_inverse`].
    pub t_inv: Option<[LatticeField<R, CloverSite<R>>; 2]>,
    /// Quark mass parameter `m`.
    pub mass: f64,
    sub: Arc<SubLattice>,
    faces: FaceGeometry,
    /// Exchange buffers, apply counters, scheduling policy.
    overlap: Mutex<OverlapPipeline<R>>,
}

impl<R: Real> Clone for WilsonCloverOp<R> {
    fn clone(&self) -> Self {
        // Fresh pipeline state (buffers are lazily re-sized; counters
        // start at zero), same scheduling policy.
        let policy = self.interior_policy();
        WilsonCloverOp {
            gauge: self.gauge.clone(),
            clover: self.clover.clone(),
            t_inv: self.t_inv.clone(),
            mass: self.mass,
            sub: self.sub.clone(),
            faces: self.faces.clone(),
            overlap: Mutex::new(OverlapPipeline::with_policy(policy)),
        }
    }
}

impl<R: Real> OverlapHost<R> for WilsonCloverOp<R> {
    fn overlap_state(&self) -> &Mutex<OverlapPipeline<R>> {
        &self.overlap
    }
}

impl<R: Real> WilsonCloverOp<R> {
    /// Bind the operator to a gauge field (and optional clover term).
    pub fn new(
        gauge: GaugeField<R>,
        clover: Option<[LatticeField<R, CloverSite<R>>; 2]>,
        mass: f64,
    ) -> Result<Self> {
        let sub = gauge.sublattice().clone();
        let faces = FaceGeometry::new(&sub, WILSON_DEPTH)?;
        if gauge.depth() < WILSON_DEPTH {
            return Err(Error::Geometry(
                "gauge field ghost depth too small for the Wilson stencil".into(),
            ));
        }
        Ok(Self {
            gauge,
            clover,
            t_inv: None,
            mass,
            sub,
            faces,
            overlap: Mutex::new(OverlapPipeline::default()),
        })
    }

    /// The subvolume the operator acts on.
    pub fn sublattice(&self) -> &Arc<SubLattice> {
        &self.sub
    }

    /// The face geometry (depth 1).
    pub fn faces(&self) -> &FaceGeometry {
        &self.faces
    }

    /// Allocate a compatible spinor field.
    pub fn alloc(&self, parity: Parity) -> SpinorField<R> {
        LatticeField::zeros(self.sub.clone(), &self.faces, parity, 0)
    }

    /// The diagonal shift `4 + m`.
    #[inline]
    pub fn diag_shift(&self) -> R {
        R::from_f64(4.0 + self.mass)
    }

    /// Precompute `T⁻¹ = (4 + m + A)⁻¹` for even-odd preconditioning.
    pub fn build_t_inverse(&mut self) -> Result<()> {
        let shift = self.diag_shift();
        let mut out = [
            LatticeField::zeros(self.sub.clone(), &self.faces, Parity::Even, 0),
            LatticeField::zeros(self.sub.clone(), &self.faces, Parity::Odd, 0),
        ];
        for p in Parity::BOTH {
            let n = out[p.index()].num_sites();
            for idx in 0..n {
                let a = match &self.clover {
                    Some(c) => c[p.index()].site(idx),
                    None => CloverSite::default(),
                };
                out[p.index()].set_site(idx, a.add_diag(shift).inverse()?);
            }
        }
        self.t_inv = Some(out);
        Ok(())
    }

    /// Geometry validation for a dslash apply (see
    /// [`overlap::check_dslash_pair`]).
    ///
    /// [`overlap::check_dslash_pair`]: crate::overlap::check_dslash_pair
    fn check_geometry(&self, out: &SpinorField<R>, src: &SpinorField<R>) -> Result<()> {
        check_dslash_pair(out, src, &self.sub, &self.faces)
    }

    /// The doubled hopping stencil `out = D̂ src` (`D̂ = 2D`), pipelined
    /// as in the paper's Fig. 4: face gathers are packed and posted as
    /// nonblocking exchanges, the interior kernel runs while they are in
    /// flight (optionally on worker threads — see
    /// [`OverlapHost::set_interior_policy`]), each dimension's ghosts
    /// are completed as they land (in the policy's completion order),
    /// and the exterior kernels run last.
    ///
    /// `src` is mutable because its ghost zones are refreshed in `Full`
    /// mode. `out` must have the opposite parity of `src`. Output is
    /// bit-identical to [`WilsonCloverOp::dslash_sequential`] for every
    /// thread count.
    pub fn dslash<C: Communicator>(
        &self,
        out: &mut SpinorField<R>,
        src: &mut SpinorField<R>,
        comm: &mut C,
        mode: BoundaryMode,
    ) -> Result<()> {
        self.check_geometry(out, src)?;
        let traced = trace::is_enabled();
        let apply_t = Instant::now();
        let mut guard = self.overlap.lock().unwrap();
        let OverlapPipeline { bufs, counters, policy } = &mut *guard;
        let exchange = mode == BoundaryMode::Full;

        // Stage 1: gather faces, pack to wire precision, post sends.
        let gather_t = Instant::now();
        let mut pending = if exchange {
            post_ghost_sends(src, &self.faces, comm, bufs)?
        } else {
            Default::default()
        };
        let gather_ns = gather_t.elapsed().as_nanos() as u64;

        // Stage 2: interior kernel concurrent with ghost completion.
        // The block scopes the split borrow of `src` (body view + ghost
        // zones) so the exterior kernels can reborrow it whole below.
        let out_parity = out.parity();
        let src_parity = src.parity();
        let post_end_ns = if traced { trace::now_ns() } else { 0 };
        let mut comm_done_ns = post_end_ns;
        let (interior_ns, wall_ns) = {
            let (src_view, mut zones) = src.body_and_ghosts_mut();
            let kernel = |chunk: &mut [R], lo_site: usize| {
                self.interior_range(chunk, lo_site, src_view, out_parity, src_parity);
            };
            run_overlapped(
                policy.threads,
                out.body_mut(),
                <WilsonSpinor<R> as SiteObject<R>>::REALS,
                &kernel,
                || {
                    if exchange {
                        for &mu in &policy.ghost_order {
                            if self.sub.partitioned[mu] {
                                complete_ghost_dim(&mut pending, mu, &mut zones, comm, bufs)?;
                            }
                        }
                        if traced {
                            comm_done_ns = trace::now_ns();
                        }
                    }
                    Ok(())
                },
            )?
        };
        if traced {
            // The interior kernel ran on worker threads between the post
            // and now; reconstruct its span retroactively so the trace
            // shows it overlapping the in-flight exchange.
            trace::span_at(
                trace::Track::Interior,
                "interior",
                post_end_ns,
                post_end_ns + interior_ns,
                policy.threads as i64,
            );
            if exchange {
                trace::span_at(
                    trace::Track::Comm,
                    "exchange_inflight",
                    post_end_ns,
                    comm_done_ns,
                    0,
                );
            }
        }

        // Stage 3: exterior kernels, fixed ascending-µ order (corner
        // sites accumulate across dimensions — §6.2).
        let ext_t = Instant::now();
        if exchange {
            for mu in 0..NDIM {
                if self.sub.partitioned[mu] {
                    let _sp = trace::span_arg(trace::Track::Exterior, "exterior", mu as i64);
                    self.dslash_exterior(out, src, mu);
                }
            }
        }
        counters.applies += 1;
        counters.gather_ns += gather_ns;
        counters.interior_ns += interior_ns;
        counters.exterior_ns += ext_t.elapsed().as_nanos() as u64;
        counters.exposed_comm_ns += wall_ns.saturating_sub(interior_ns);
        counters.total_ns += apply_t.elapsed().as_nanos() as u64;
        Ok(())
    }

    /// The same stencil with blocking communication: exchange every
    /// ghost zone up front, then interior, then exteriors. Kept as the
    /// baseline the overlapped path is measured (and bit-compared)
    /// against.
    pub fn dslash_sequential<C: Communicator>(
        &self,
        out: &mut SpinorField<R>,
        src: &mut SpinorField<R>,
        comm: &mut C,
        mode: BoundaryMode,
    ) -> Result<()> {
        self.check_geometry(out, src)?;
        if mode == BoundaryMode::Full {
            let bufs = &mut self.overlap.lock().unwrap().bufs;
            exchange_ghosts_with(src, &self.faces, comm, bufs)?;
        }
        self.dslash_interior(out, src);
        if mode == BoundaryMode::Full {
            for mu in 0..NDIM {
                if self.sub.partitioned[mu] {
                    self.dslash_exterior(out, src, mu);
                }
            }
        }
        Ok(())
    }

    /// Interior kernel: every contribution that resolves inside the body.
    /// Boundary sites are *partially* updated (all their interior hops),
    /// exactly as §6.2 describes.
    fn dslash_interior(&self, out: &mut SpinorField<R>, src: &SpinorField<R>) {
        let out_parity = out.parity();
        let src_parity = src.parity();
        let view = src.body_view();
        self.interior_range(out.body_mut(), 0, view, out_parity, src_parity);
    }

    /// Interior kernel over a contiguous site range: `out_chunk` holds
    /// the flat reals of sites `lo_site ..`, each computed independently
    /// (this is what makes chunked parallel execution bit-identical to
    /// the single pass).
    fn interior_range(
        &self,
        out_chunk: &mut [R],
        lo_site: usize,
        src: BodyView<'_, R, WilsonSpinor<R>>,
        out_parity: Parity,
        src_parity: Parity,
    ) {
        let reals = <WilsonSpinor<R> as SiteObject<R>>::REALS;
        for (k, slot) in out_chunk.chunks_exact_mut(reals).enumerate() {
            let idx = lo_site + k;
            let c = self.sub.cb_coords(out_parity, idx);
            let mut acc = WilsonSpinor::zero();
            for mu in 0..NDIM {
                // Forward hop: U_µ(x) (1 − γµ) ψ(x + µ̂).
                if let Neighbor::Interior { idx: nidx } = self.sub.neighbor(c, mu, 1, WILSON_DEPTH)
                {
                    let proj = Projector { mu, plus: false };
                    let h = proj
                        .project(&src.site(nidx))
                        .color_mul(&self.gauge.link(mu, out_parity, idx));
                    proj.accumulate(&mut acc, &h);
                }
                // Backward hop: U†_µ(x − µ̂) (1 + γµ) ψ(x − µ̂).
                if let Neighbor::Interior { idx: nidx } = self.sub.neighbor(c, mu, -1, WILSON_DEPTH)
                {
                    let proj = Projector { mu, plus: true };
                    let h = proj
                        .project(&src.site(nidx))
                        .color_adj_mul(&self.gauge.link(mu, src_parity, nidx));
                    proj.accumulate(&mut acc, &h);
                }
            }
            acc.write(slot);
        }
    }

    /// Exterior kernel for dimension `mu`: adds the boundary contributions
    /// read from ghost zones. Must run after the exchange of dimension
    /// `mu` completes; corner sites accumulate across multiple calls.
    fn dslash_exterior(&self, out: &mut SpinorField<R>, src: &SpinorField<R>, mu: usize) {
        let out_parity = out.parity();
        let src_parity = src.parity();
        let l = self.sub.dims.extent(mu);
        // High face: forward hop crosses into the forward ghost.
        for &cb in self.faces.high_face(mu, out_parity) {
            let idx = cb as usize;
            let c = self.sub.cb_coords(out_parity, idx);
            debug_assert_eq!(c[mu], l - 1);
            let hop = self.sub.neighbor(c, mu, 1, WILSON_DEPTH);
            let Neighbor::Ghost { forward, offset, .. } = hop else { unreachable!() };
            let proj = Projector { mu, plus: false };
            let psi = src.ghost(mu, forward, offset);
            let h = proj.project(&psi).color_mul(&self.gauge.link(mu, out_parity, idx));
            let mut acc = out.site(idx);
            proj.accumulate(&mut acc, &h);
            out.set_site(idx, acc);
        }
        // Low face: backward hop crosses into the backward ghost; the
        // link comes from the gauge ghost of the same dimension.
        for &cb in self.faces.low_face(mu, out_parity) {
            let idx = cb as usize;
            let c = self.sub.cb_coords(out_parity, idx);
            debug_assert_eq!(c[mu], 0);
            let hop = self.sub.neighbor(c, mu, -1, WILSON_DEPTH);
            let Neighbor::Ghost { forward, offset, .. } = hop else { unreachable!() };
            let proj = Projector { mu, plus: true };
            let psi = src.ghost(mu, forward, offset);
            let u = self.gauge.link_resolved(mu, src_parity, hop);
            let h = proj.project(&psi).color_adj_mul(&u);
            let mut acc = out.site(idx);
            proj.accumulate(&mut acc, &h);
            out.set_site(idx, acc);
        }
    }

    /// Site-diagonal term: `out = (4 + m) src + A src`.
    pub fn t_apply(&self, out: &mut SpinorField<R>, src: &SpinorField<R>) {
        let p = src.parity();
        let shift = self.diag_shift();
        match &self.clover {
            Some(cl) => {
                let cf = &cl[p.index()];
                for idx in 0..src.num_sites() {
                    let s = src.site(idx);
                    let v = cf.site(idx).apply(&s).add(&s.scale(shift));
                    out.set_site(idx, v);
                }
            }
            None => {
                blas::copy(out, src);
                blas::scale(out, shift);
            }
        }
    }

    /// Apply the precomputed `T⁻¹` (requires
    /// [`WilsonCloverOp::build_t_inverse`]).
    pub fn t_inv_apply(&self, out: &mut SpinorField<R>, src: &SpinorField<R>) -> Result<()> {
        let t_inv = self.t_inv.as_ref().ok_or_else(|| {
            Error::Config(
                "T-inverse not built; call build_t_inverse() before even-odd preconditioning"
                    .into(),
            )
        })?;
        let cf = &t_inv[src.parity().index()];
        for idx in 0..src.num_sites() {
            out.set_site(idx, cf.site(idx).apply(&src.site(idx)));
        }
        Ok(())
    }

    /// Full (two-parity) operator: `out = M src = T src − (1/4) D̂ src`.
    #[allow(clippy::too_many_arguments)]
    pub fn apply_full<C: Communicator>(
        &self,
        out_e: &mut SpinorField<R>,
        out_o: &mut SpinorField<R>,
        src_e: &mut SpinorField<R>,
        src_o: &mut SpinorField<R>,
        comm: &mut C,
        mode: BoundaryMode,
    ) -> Result<()> {
        // Hopping parts first (they overwrite `out`).
        self.dslash(out_e, src_o, comm, mode)?;
        self.dslash(out_o, src_e, comm, mode)?;
        let quarter = -R::from_f64(0.25);
        blas::scale(out_e, quarter);
        blas::scale(out_o, quarter);
        // Add the site-diagonal term.
        let mut t = LatticeField::zeros_like(src_e);
        self.t_apply(&mut t, src_e);
        blas::axpy(R::ONE, &t, out_e);
        let mut t = LatticeField::zeros_like(src_o);
        self.t_apply(&mut t, src_o);
        blas::axpy(R::ONE, &t, out_o);
        Ok(())
    }

    /// Even-odd preconditioned operator on the odd parity:
    /// `out = M̂ src = T_oo src − (1/16) D̂_oe T_ee⁻¹ D̂_eo src`.
    pub fn apply_eo_prec<C: Communicator>(
        &self,
        out: &mut SpinorField<R>,
        src: &mut SpinorField<R>,
        scratch_e: &mut SpinorField<R>,
        scratch_e2: &mut SpinorField<R>,
        comm: &mut C,
        mode: BoundaryMode,
    ) -> Result<()> {
        if src.parity() != Parity::Odd {
            return Err(Error::Shape("eo-preconditioned operator acts on odd parity".into()));
        }
        self.dslash(scratch_e, src, comm, mode)?;
        self.t_inv_apply(scratch_e2, scratch_e)?;
        self.dslash(out, scratch_e2, comm, mode)?;
        blas::scale(out, -R::from_f64(1.0 / 16.0));
        let mut t = LatticeField::zeros_like(src);
        self.t_apply(&mut t, src);
        blas::axpy(R::ONE, &t, out);
        Ok(())
    }

    /// Reconstruct the even solution after an odd-parity Schur solve:
    /// `x_e = T_ee⁻¹ (b_e + (1/4) D̂_eo x_o)`.
    pub fn reconstruct_even<C: Communicator>(
        &self,
        x_e: &mut SpinorField<R>,
        b_e: &SpinorField<R>,
        x_o: &mut SpinorField<R>,
        comm: &mut C,
        mode: BoundaryMode,
    ) -> Result<()> {
        let mut tmp = LatticeField::zeros_like(b_e);
        self.dslash(&mut tmp, x_o, comm, mode)?;
        blas::scale(&mut tmp, R::from_f64(0.25));
        blas::axpy(R::ONE, b_e, &mut tmp);
        self.t_inv_apply(x_e, &tmp)
    }
}

/// Apply γ₅ to every site of a spinor field in place. With the
/// γ₅-hermiticity of the Wilson operator (`γ₅ M γ₅ = M†`, likewise for
/// the even-odd Schur complement), this makes adjoint applications free —
/// the basis of CGNR/CGNE (§3.1).
pub fn gamma5_in_place<R: Real>(f: &mut SpinorField<R>) {
    for idx in 0..f.num_sites() {
        f.set_site(idx, lqcd_su3::gamma::gamma5(&f.site(idx)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqcd_comms::SingleComm;
    use lqcd_field::blas::{cdot_local, max_abs_diff, norm2_local};
    use lqcd_gauge::clover_build::build_clover_field;
    use lqcd_gauge::field::GaugeStart;
    use lqcd_lattice::Dims;
    use lqcd_su3::gamma::{gamma5, project_reference};
    use lqcd_util::rng::SeedTree;
    use lqcd_util::Complex;

    const GLOBAL: Dims = Dims([4, 4, 4, 8]);

    fn make_op(start: GaugeStart, mass: f64, with_clover: bool) -> WilsonCloverOp<f64> {
        let sub = Arc::new(SubLattice::single(GLOBAL).unwrap());
        let faces = FaceGeometry::new(&sub, 1).unwrap();
        let gauge = GaugeField::<f64>::generate(sub, &faces, GLOBAL, &SeedTree::new(5), start);
        let clover = with_clover.then(|| build_clover_field(&gauge, GLOBAL, 1.0));
        WilsonCloverOp::new(gauge, clover, mass).unwrap()
    }

    fn rand_pair(op: &WilsonCloverOp<f64>, seed: u64) -> (SpinorField<f64>, SpinorField<f64>) {
        let t = SeedTree::new(seed);
        let mut rng = t.rng();
        let mut e = op.alloc(Parity::Even);
        e.fill(|_| WilsonSpinor::random(&mut rng));
        let mut o = op.alloc(Parity::Odd);
        o.fill(|_| WilsonSpinor::random(&mut rng));
        (e, o)
    }

    /// Independent reference: apply M to a full-lattice vector indexed by
    /// global coordinates using the dense projector formula.
    fn reference_apply(
        op: &WilsonCloverOp<f64>,
        src_e: &SpinorField<f64>,
        src_o: &SpinorField<f64>,
    ) -> (SpinorField<f64>, SpinorField<f64>) {
        let sub = op.sublattice().clone();
        let fetch = |c: [usize; 4]| -> WilsonSpinor<f64> {
            let p = sub.parity(c);
            let f = if p == Parity::Even { src_e } else { src_o };
            f.site(sub.cb_index(c))
        };
        let link = |c: [usize; 4], mu: usize| -> lqcd_su3::Su3<f64> {
            op.gauge.link(mu, sub.parity(c), sub.cb_index(c))
        };
        let mut out_e = op.alloc(Parity::Even);
        let mut out_o = op.alloc(Parity::Odd);
        for p in Parity::BOTH {
            for (idx, c) in sub.sites(p) {
                // T part.
                let s = fetch(c);
                let mut acc = s.scale(4.0 + op.mass);
                if let Some(cl) = &op.clover {
                    acc = acc.add(&cl[p.index()].site(idx).apply(&s));
                }
                // Hopping: −(1/2) Σ [P−µ U ψ(x+µ̂) + P+µ U† ψ(x−µ̂)]
                //        = −(1/4) Σ [(1−γµ) ... ] with doubled projectors.
                for mu in 0..4 {
                    let cp = GLOBAL.displace(c, mu, 1);
                    let cm = GLOBAL.displace(c, mu, -1);
                    let fwd = project_reference(mu, false, &fetch(cp));
                    let fwd = WilsonSpinor::from_fn(|sp| link(c, mu).mul_vec(&fwd.s[sp]));
                    let bwd = project_reference(mu, true, &fetch(cm));
                    let bwd = WilsonSpinor::from_fn(|sp| link(cm, mu).adj_mul_vec(&bwd.s[sp]));
                    acc = acc.add(&fwd.add(&bwd).scale(-0.25));
                }
                if p == Parity::Even {
                    out_e.set_site(idx, acc);
                } else {
                    out_o.set_site(idx, acc);
                }
            }
        }
        (out_e, out_o)
    }

    #[test]
    fn matches_reference_plain_wilson() {
        let op = make_op(GaugeStart::Disordered(0.3), 0.1, false);
        let (mut se, mut so) = rand_pair(&op, 1);
        let (want_e, want_o) = reference_apply(&op, &se, &so);
        let mut comm = SingleComm::new(GLOBAL).unwrap();
        let mut oe = op.alloc(Parity::Even);
        let mut oo = op.alloc(Parity::Odd);
        op.apply_full(&mut oe, &mut oo, &mut se, &mut so, &mut comm, BoundaryMode::Full).unwrap();
        assert!(max_abs_diff(&oe, &want_e) < 1e-12);
        assert!(max_abs_diff(&oo, &want_o) < 1e-12);
    }

    #[test]
    fn matches_reference_with_clover() {
        let op = make_op(GaugeStart::Disordered(0.25), -0.2, true);
        let (mut se, mut so) = rand_pair(&op, 2);
        let (want_e, want_o) = reference_apply(&op, &se, &so);
        let mut comm = SingleComm::new(GLOBAL).unwrap();
        let mut oe = op.alloc(Parity::Even);
        let mut oo = op.alloc(Parity::Odd);
        op.apply_full(&mut oe, &mut oo, &mut se, &mut so, &mut comm, BoundaryMode::Full).unwrap();
        assert!(max_abs_diff(&oe, &want_e) < 1e-12);
        assert!(max_abs_diff(&oo, &want_o) < 1e-12);
    }

    #[test]
    fn free_field_point_source_stencil() {
        // Cold links, source δ at one even site: M δ = (4+m)δ at the site
        // and −(1/2)P∓ at the eight neighbours.
        let op = make_op(GaugeStart::Cold, 0.5, false);
        let sub = op.sublattice().clone();
        let mut se = op.alloc(Parity::Even);
        let mut so = op.alloc(Parity::Odd);
        let c0 = [2, 2, 2, 4];
        assert_eq!(sub.parity(c0), Parity::Even);
        let mut point = WilsonSpinor::zero();
        point.s[0].c[0] = Complex::one();
        se.set_site(sub.cb_index(c0), point);
        let mut comm = SingleComm::new(GLOBAL).unwrap();
        let mut oe = op.alloc(Parity::Even);
        let mut oo = op.alloc(Parity::Odd);
        op.apply_full(&mut oe, &mut oo, &mut se, &mut so, &mut comm, BoundaryMode::Full).unwrap();
        // At the source: (4 + 0.5)·δ.
        let at_src = oe.site(sub.cb_index(c0));
        assert!((at_src.s[0].c[0].re - 4.5).abs() < 1e-13);
        // At the +T neighbour: −(1/2)(P+t ψ)... the neighbour receives the
        // backward-hop term −(1/2) P+µ δ; for t: P+t point has norm² 1/2.
        let ct = GLOBAL.displace(c0, 3, 1);
        let at_t = oo.site(sub.cb_index(ct));
        let expect = project_reference(3, true, &point).scale(-0.25);
        assert!(at_t.sub(&expect).norm_sqr() < 1e-26);
        // Total support: exactly 9 sites (source + 8 neighbours).
        let mut support = 0;
        for idx in 0..oe.num_sites() {
            if oe.site(idx).norm_sqr() > 1e-20 {
                support += 1;
            }
        }
        for idx in 0..oo.num_sites() {
            if oo.site(idx).norm_sqr() > 1e-20 {
                support += 1;
            }
        }
        assert_eq!(support, 9);
    }

    #[test]
    fn gamma5_hermiticity() {
        // γ₅ M γ₅ = M†, i.e. ⟨w, M v⟩ = ⟨γ₅ M γ₅ w, v⟩.
        let op = make_op(GaugeStart::Disordered(0.3), 0.05, true);
        let (mut ve, mut vo) = rand_pair(&op, 3);
        let (we, wo) = rand_pair(&op, 4);
        let mut comm = SingleComm::new(GLOBAL).unwrap();
        let mut mv_e = op.alloc(Parity::Even);
        let mut mv_o = op.alloc(Parity::Odd);
        op.apply_full(&mut mv_e, &mut mv_o, &mut ve, &mut vo, &mut comm, BoundaryMode::Full)
            .unwrap();
        let lhs = cdot_local(&we, &mv_e) + cdot_local(&wo, &mv_o);
        // γ₅ w.
        let g5 = |f: &SpinorField<f64>| {
            let mut out = LatticeField::zeros_like(f);
            for idx in 0..f.num_sites() {
                out.set_site(idx, gamma5(&f.site(idx)));
            }
            out
        };
        let mut g5we = g5(&we);
        let mut g5wo = g5(&wo);
        let mut mg_e = op.alloc(Parity::Even);
        let mut mg_o = op.alloc(Parity::Odd);
        op.apply_full(&mut mg_e, &mut mg_o, &mut g5we, &mut g5wo, &mut comm, BoundaryMode::Full)
            .unwrap();
        let g5mg_e = g5(&mg_e);
        let g5mg_o = g5(&mg_o);
        let rhs = cdot_local(&g5mg_e, &ve) + cdot_local(&g5mg_o, &vo);
        assert!(
            (lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0),
            "γ₅-hermiticity violated: {lhs} vs {rhs}"
        );
    }

    #[test]
    fn schur_complement_identity() {
        // For b = M x: M̂ x_o == b_o + (1/4) D̂_oe T_ee⁻¹ b_e.
        let mut op = make_op(GaugeStart::Disordered(0.3), 0.2, true);
        op.build_t_inverse().unwrap();
        let (mut xe, mut xo) = rand_pair(&op, 5);
        let mut comm = SingleComm::new(GLOBAL).unwrap();
        let mut be = op.alloc(Parity::Even);
        let mut bo = op.alloc(Parity::Odd);
        op.apply_full(&mut be, &mut bo, &mut xe, &mut xo, &mut comm, BoundaryMode::Full).unwrap();
        // LHS: M̂ x_o.
        let mut lhs = op.alloc(Parity::Odd);
        let mut s1 = op.alloc(Parity::Even);
        let mut s2 = op.alloc(Parity::Even);
        op.apply_eo_prec(&mut lhs, &mut xo, &mut s1, &mut s2, &mut comm, BoundaryMode::Full)
            .unwrap();
        // RHS: b_o + (1/4) D̂_oe T⁻¹ b_e.
        let mut tinv_be = op.alloc(Parity::Even);
        op.t_inv_apply(&mut tinv_be, &be).unwrap();
        let mut rhs = op.alloc(Parity::Odd);
        op.dslash(&mut rhs, &mut tinv_be, &mut comm, BoundaryMode::Full).unwrap();
        blas::scale(&mut rhs, 0.25);
        blas::axpy(1.0, &bo, &mut rhs);
        assert!(max_abs_diff(&lhs, &rhs) < 1e-11);
    }

    #[test]
    fn even_reconstruction_completes_the_solve() {
        // If x solves Mx = b then reconstruct_even recovers x_e from
        // (b_e, x_o).
        let mut op = make_op(GaugeStart::Disordered(0.2), 0.3, true);
        op.build_t_inverse().unwrap();
        let (mut xe, mut xo) = rand_pair(&op, 6);
        let mut comm = SingleComm::new(GLOBAL).unwrap();
        let mut be = op.alloc(Parity::Even);
        let mut bo = op.alloc(Parity::Odd);
        op.apply_full(&mut be, &mut bo, &mut xe, &mut xo, &mut comm, BoundaryMode::Full).unwrap();
        let mut xe_rec = op.alloc(Parity::Even);
        op.reconstruct_even(&mut xe_rec, &be, &mut xo, &mut comm, BoundaryMode::Full).unwrap();
        assert!(max_abs_diff(&xe_rec, &xe) < 1e-11);
    }

    #[test]
    fn dirichlet_equals_full_on_unpartitioned_lattice() {
        let op = make_op(GaugeStart::Disordered(0.3), 0.1, false);
        let (_, mut so) = rand_pair(&op, 7);
        let mut comm = SingleComm::new(GLOBAL).unwrap();
        let mut a = op.alloc(Parity::Even);
        let mut b = op.alloc(Parity::Even);
        op.dslash(&mut a, &mut so, &mut comm, BoundaryMode::Full).unwrap();
        op.dslash(&mut b, &mut so, &mut comm, BoundaryMode::Dirichlet).unwrap();
        assert_eq!(max_abs_diff(&a, &b), 0.0);
        assert!(norm2_local(&a) > 0.0);
    }
}

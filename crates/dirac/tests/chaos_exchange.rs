//! Chaos property test: ghost-zone exchange under injected message loss
//! (with the deadline/retry protocol absorbing it) must be *bit-identical*
//! to the fault-free exchange — dropped, retransmitted, and reordered
//! traffic may never change the physics.

use lqcd_comms::{
    run_world_fallible, CommConfig, Communicator, FaultPlan, FaultRule, FaultyComm, ThreadedComm,
};
use lqcd_dirac::exchange::exchange_ghosts;
use lqcd_field::LatticeField;
use lqcd_lattice::{Dims, FaceGeometry, Parity, ProcessGrid, SubLattice, NDIM};
use lqcd_su3::ColorVector;
use lqcd_util::rng::SeedTree;
use proptest::prelude::*;
use std::sync::Arc;

const GLOBAL: Dims = Dims([4, 4, 8, 8]);

/// 2-rank and 4-rank partitionings of the global lattice.
const SHAPES: [[usize; 4]; 5] =
    [[1, 1, 1, 2], [1, 1, 2, 1], [1, 1, 2, 2], [1, 1, 1, 4], [1, 2, 1, 2]];

/// One rank's exchange: fill a deterministic field keyed on global site
/// indices, exchange, and return every ghost zone plus the fault count.
fn rank_exchange<C: Communicator>(
    mut comm: C,
    grid: &ProcessGrid,
    parity: Parity,
    seed: u64,
) -> (Vec<Vec<f64>>, u64) {
    let sub = Arc::new(SubLattice::for_rank(grid, comm.rank()));
    let faces = FaceGeometry::new(&sub, 1).unwrap();
    let mut field: LatticeField<f64, ColorVector<f64>> =
        LatticeField::zeros(sub.clone(), &faces, parity, 0);
    let subc = sub.clone();
    let tree = SeedTree::new(seed);
    field.fill(|idx| {
        let c = subc.cb_coords(parity, idx);
        let mut gc = c;
        for d in 0..4 {
            gc[d] = c[d] + subc.origin[d];
        }
        ColorVector::random(&mut tree.child("src").stream(GLOBAL.index(gc) as u64))
    });
    exchange_ghosts(&mut field, &faces, &mut comm).unwrap();
    let mut zones = Vec::new();
    for mu in 0..NDIM {
        if !sub.partitioned[mu] {
            continue;
        }
        for fwd in [false, true] {
            zones.push(field.ghost_zone(mu, fwd).to_vec());
        }
    }
    (zones, comm.faults_survived())
}

/// Run one exchange per rank of `grid` (optionally under a fault plan)
/// and return the per-rank ghost zones in rank order.
fn exchanged_ghosts(
    grid: &ProcessGrid,
    parity: Parity,
    seed: u64,
    plan: Option<FaultPlan>,
) -> Vec<(Vec<Vec<f64>>, u64)> {
    let config = CommConfig::resilient();
    let g = grid.clone();
    let results = match plan {
        Some(plan) => {
            let comms = FaultyComm::world(grid.clone(), config, plan);
            run_world_fallible(comms, move |c| rank_exchange(c, &g, parity, seed))
        }
        None => {
            let comms = ThreadedComm::world_with(grid.clone(), config);
            run_world_fallible(comms, move |c| rank_exchange(c, &g, parity, seed))
        }
    };
    results
        .into_iter()
        .enumerate()
        .map(|(rank, r)| r.unwrap_or_else(|e| panic!("rank {rank} failed: {e}")))
        .collect()
}

fn assert_bit_identical(clean: &[(Vec<Vec<f64>>, u64)], chaotic: &[(Vec<Vec<f64>>, u64)]) {
    for (rank, (c, f)) in clean.iter().zip(chaotic).enumerate() {
        assert_eq!(c.0.len(), f.0.len(), "rank {rank} ghost-zone count differs");
        for (zc, zf) in c.0.iter().zip(&f.0) {
            assert!(
                zc.iter().zip(zf).all(|(a, b)| a.to_bits() == b.to_bits()),
                "rank {rank} ghost zone differs under faults"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Any bounded burst of dropped data messages, on any rank of any
    // partitioning, at either parity, is invisible after retries.
    #[test]
    fn dropped_messages_leave_ghosts_bit_identical(
        shape_idx in 0usize..5,
        parity_idx in 0usize..2,
        victim in 0usize..4,
        after in 0u64..4,
        burst in 1u64..4,
        seed in 0u64..1000,
    ) {
        let shape = Dims(SHAPES[shape_idx]);
        let grid = ProcessGrid::new(shape, GLOBAL).unwrap();
        let parity = if parity_idx == 0 { Parity::Even } else { Parity::Odd };
        let victim = victim % grid.num_ranks();
        // The victim sends exactly 2 data messages per partitioned dim;
        // keep the skip count inside that budget so the rule must fire.
        let sends = 2 * shape.0.iter().filter(|&&e| e > 1).count() as u64;
        let after = after % sends;

        let clean = exchanged_ghosts(&grid, parity, seed, None);
        let plan = FaultPlan::new(seed ^ 0xc4a05).with_rule(
            FaultRule::drop_message()
                .on_rank(victim)
                .data_only()
                .after(after)
                .times(burst),
        );
        let chaotic = exchanged_ghosts(&grid, parity, seed, Some(plan));

        assert_bit_identical(&clean, &chaotic);
        let survived: u64 = chaotic.iter().map(|(_, f)| *f).sum();
        prop_assert!(survived > 0, "fault plan never fired");
    }
}

/// Duplicated and delayed (reordered) traffic must equally be invisible —
/// the per-edge sequence numbers dedup and reorder on the receive side.
#[test]
fn duplicates_and_delays_leave_ghosts_bit_identical() {
    for (kind_idx, rule) in [
        FaultRule::duplicate_message().on_rank(0).data_only().times(4),
        FaultRule::delay_message(std::time::Duration::from_millis(30))
            .on_rank(1)
            .data_only()
            .times(3),
    ]
    .into_iter()
    .enumerate()
    {
        let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), GLOBAL).unwrap();
        let clean = exchanged_ghosts(&grid, Parity::Even, 7, None);
        let chaotic =
            exchanged_ghosts(&grid, Parity::Even, 7, Some(FaultPlan::new(41).with_rule(rule)));
        assert_bit_identical(&clean, &chaotic);
        assert!(
            chaotic.iter().map(|(_, f)| *f).sum::<u64>() > 0,
            "kind {kind_idx}: fault plan never fired"
        );
    }
}

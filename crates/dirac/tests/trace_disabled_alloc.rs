//! The disabled flight recorder must stay off the dslash hot path: with
//! tracing off (the default), a warmed-up dslash apply performs zero
//! heap allocations. A counting global allocator makes the check exact —
//! any gated trace call that allocates while disabled fails this test.

use lqcd_comms::SingleComm;
use lqcd_dirac::{BoundaryMode, WilsonCloverOp};
use lqcd_gauge::field::GaugeStart;
use lqcd_gauge::GaugeField;
use lqcd_lattice::{Dims, FaceGeometry, Parity, SubLattice};
use lqcd_util::rng::SeedTree;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

#[test]
fn disabled_recorder_adds_no_allocations_to_dslash() {
    assert!(!lqcd_util::trace::is_enabled(), "tracing must be off for this test");
    let global = Dims([4, 4, 4, 8]);
    let sub = Arc::new(SubLattice::single(global).unwrap());
    let faces = FaceGeometry::new(&sub, 1).unwrap();
    let gauge = GaugeField::<f64>::generate(
        sub,
        &faces,
        global,
        &SeedTree::new(5),
        GaugeStart::Disordered(0.3),
    );
    let op = WilsonCloverOp::new(gauge, None, 0.1).unwrap();
    let mut comm = SingleComm::new(global).unwrap();
    let mut src = op.alloc(Parity::Even);
    let mut out = op.alloc(Parity::Odd);
    // Warm up: first applies may size internal buffers.
    for _ in 0..3 {
        op.dslash(&mut out, &mut src, &mut comm, BoundaryMode::Full).unwrap();
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..10 {
        op.dslash(&mut out, &mut src, &mut comm, BoundaryMode::Full).unwrap();
    }
    let delta = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(delta, 0, "warmed-up dslash with tracing disabled must not allocate");
}

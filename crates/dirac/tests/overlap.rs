//! Overlap-pipeline equivalence: the overlapped dslash (nonblocking
//! exchange + interior kernel concurrent with completion + per-dimension
//! exteriors) must be *bit-identical* to the blocking sequential path —
//! for every precision, partitioning, interior thread count, and under
//! injected communication faults. Overlap is a scheduling optimization;
//! it may never change the physics.

use lqcd_comms::{
    run_on_grid, run_world_fallible, CommConfig, Communicator, FaultPlan, FaultRule, FaultyComm,
    MsgClass, SingleComm, ThreadedComm,
};
use lqcd_dirac::{
    BoundaryMode, OverlapHost, StaggeredOp, WilsonCloverOp, STAGGERED_DEPTH, WILSON_DEPTH,
};
use lqcd_field::{HalfField, LatticeField};
use lqcd_gauge::field::GaugeStart;
use lqcd_gauge::GaugeField;
use lqcd_lattice::{Dims, FaceGeometry, Parity, ProcessGrid, SubLattice};
use lqcd_su3::WilsonSpinor;
use lqcd_util::rng::SeedTree;
use lqcd_util::{Error, Real};
use std::sync::Arc;

const GLOBAL: Dims = Dims([4, 4, 8, 8]);
const SEED: u64 = 20260807;

/// Build one rank's plain Wilson operator with exchanged gauge ghosts.
fn build_wilson<C: Communicator>(
    comm: &mut C,
    grid: &ProcessGrid,
    seed: u64,
) -> WilsonCloverOp<f64> {
    let sub = Arc::new(SubLattice::for_rank(grid, comm.rank()));
    let faces = FaceGeometry::new(&sub, WILSON_DEPTH).unwrap();
    let mut gauge = GaugeField::<f64>::generate(
        sub,
        &faces,
        GLOBAL,
        &SeedTree::new(seed),
        GaugeStart::Disordered(0.3),
    );
    gauge.exchange_ghosts(comm, &faces).unwrap();
    WilsonCloverOp::new(gauge, None, 0.1).unwrap()
}

/// Deterministic odd-parity source keyed on global coordinates.
fn fill_source(op: &WilsonCloverOp<f64>, seed: u64) -> lqcd_dirac::wilson::SpinorField<f64> {
    let sub = op.sublattice().clone();
    let tree = SeedTree::new(seed);
    let mut src = op.alloc(Parity::Odd);
    src.fill(|idx| {
        let c = sub.cb_coords(Parity::Odd, idx);
        let mut gc = c;
        for d in 0..4 {
            gc[d] = c[d] + sub.origin[d];
        }
        WilsonSpinor::random(&mut tree.child("src").stream(GLOBAL.index(gc) as u64))
    });
    src
}

/// Sequential-vs-overlapped bitwise comparison at one precision. Returns
/// the number of body reals that differ (must be 0).
fn diff_bits<R: Real, C: Communicator>(
    op: &WilsonCloverOp<R>,
    src: &mut lqcd_dirac::wilson::SpinorField<R>,
    comm: &mut C,
    threads: &[usize],
) -> usize {
    let mut out_seq = op.alloc(Parity::Even);
    op.dslash_sequential(&mut out_seq, src, comm, BoundaryMode::Full).unwrap();
    let mut mismatches = 0usize;
    for &t in threads {
        op.set_interior_threads(t);
        let mut out_ovl = op.alloc(Parity::Even);
        op.dslash(&mut out_ovl, src, comm, BoundaryMode::Full).unwrap();
        mismatches += out_seq
            .body()
            .iter()
            .zip(out_ovl.body())
            .filter(|(a, b)| a.to_f64().to_bits() != b.to_f64().to_bits())
            .count();
    }
    mismatches
}

#[test]
fn ghost_completion_order_is_bit_invariant_and_validated() {
    use lqcd_dirac::InteriorPolicy;

    // Validation: non-permutations and zero threads are structured
    // errors, never panics.
    assert!(InteriorPolicy::new(0, [0, 1, 2, 3]).is_err());
    assert!(InteriorPolicy::new(1, [0, 0, 2, 3]).is_err());
    assert!(InteriorPolicy::new(1, [0, 1, 2, 4]).is_err());

    // Every completion order yields bit-identical output: per-dimension
    // ghost zones are disjoint and the exteriors keep ascending order.
    let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), GLOBAL).unwrap();
    let g = grid.clone();
    let mismatches = run_on_grid(grid, move |mut comm| {
        let op = build_wilson(&mut comm, &g, SEED);
        let mut src = fill_source(&op, SEED);
        let mut out_seq = op.alloc(Parity::Even);
        op.dslash_sequential(&mut out_seq, &mut src, &mut comm, BoundaryMode::Full).unwrap();
        let mut bad = 0usize;
        for order in [[0, 1, 2, 3], [3, 2, 1, 0], [2, 3, 0, 1], [1, 0, 3, 2]] {
            op.set_interior_policy(InteriorPolicy::new(2, order).unwrap());
            assert_eq!(op.interior_policy().ghost_order, order);
            let mut out = op.alloc(Parity::Even);
            op.dslash(&mut out, &mut src, &mut comm, BoundaryMode::Full).unwrap();
            bad += out_seq
                .body()
                .iter()
                .zip(out.body())
                .filter(|(a, b)| a.to_bits() != b.to_bits())
                .count();
        }
        bad
    });
    assert_eq!(mismatches.iter().sum::<usize>(), 0);
}

#[test]
fn wilson_overlapped_bitwise_equals_sequential_all_precisions() {
    for shape in [Dims([1, 1, 2, 2]), Dims([2, 2, 2, 2])] {
        let grid = ProcessGrid::new(shape, GLOBAL).unwrap();
        let g = grid.clone();
        let mismatches = run_on_grid(grid, move |mut comm| {
            let op = build_wilson(&mut comm, &g, SEED);
            let mut src = fill_source(&op, SEED);
            let mut bad = diff_bits(&op, &mut src, &mut comm, &[1, 2, 3]);

            // f32: cast operator and source, same bit-identity contract
            // (ghosts travel in wire precision, so f32 stays exact too).
            let op32 = WilsonCloverOp::<f32>::new(op.gauge.cast::<f32>(), None, op.mass).unwrap();
            let mut src32 = src.cast_all::<f32>();
            bad += diff_bits(&op32, &mut src32, &mut comm, &[1, 2, 3]);

            // Half: quantize the f32 source through the 16-bit fixed-point
            // round trip, then compare the two paths on the quantized
            // input — the mixed-precision solvers feed the operator
            // exactly such fields.
            let mut src_half = op32.alloc(Parity::Odd);
            HalfField::encode(&src32).decode_into(&mut src_half);
            bad += diff_bits(&op32, &mut src_half, &mut comm, &[1, 2]);
            bad
        });
        let total: usize = mismatches.iter().sum();
        assert_eq!(total, 0, "scheme {shape:?}: {total} reals differ between paths");
    }
}

#[test]
fn staggered_overlapped_bitwise_equals_sequential() {
    // Random (non-physical) fat/long links suffice for bit-equality of
    // the two schedules; depth-3 ghosts exercise the thick-face path.
    let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), GLOBAL).unwrap();
    let g = grid.clone();
    let mismatches = run_on_grid(grid, move |mut comm| {
        let sub = Arc::new(SubLattice::for_rank(&g, comm.rank()));
        let faces = FaceGeometry::new(&sub, STAGGERED_DEPTH).unwrap();
        let seed = SeedTree::new(SEED + 1);
        let mut fat = GaugeField::<f64>::generate(
            sub.clone(),
            &faces,
            GLOBAL,
            &seed.child("fat"),
            GaugeStart::Disordered(0.25),
        );
        fat.exchange_ghosts(&mut comm, &faces).unwrap();
        let mut long = GaugeField::<f64>::generate(
            sub.clone(),
            &faces,
            GLOBAL,
            &seed.child("long"),
            GaugeStart::Disordered(0.15),
        );
        long.exchange_ghosts(&mut comm, &faces).unwrap();
        let op = StaggeredOp::new(fat, long, 0.2).unwrap();
        let mut src = op.alloc(Parity::Odd);
        let subc = sub.clone();
        src.fill(|idx| {
            let c = subc.cb_coords(Parity::Odd, idx);
            let mut gc = c;
            for d in 0..4 {
                gc[d] = c[d] + subc.origin[d];
            }
            lqcd_su3::ColorVector::random(&mut seed.child("src").stream(GLOBAL.index(gc) as u64))
        });
        let mut out_seq = op.alloc(Parity::Even);
        op.dslash_sequential(&mut out_seq, &mut src, &mut comm, BoundaryMode::Full).unwrap();
        let mut bad = 0usize;
        for t in [1usize, 2, 3] {
            op.set_interior_threads(t);
            let mut out_ovl = op.alloc(Parity::Even);
            op.dslash(&mut out_ovl, &mut src, &mut comm, BoundaryMode::Full).unwrap();
            bad += out_seq
                .body()
                .iter()
                .zip(out_ovl.body())
                .filter(|(a, b)| a.to_bits() != b.to_bits())
                .count();
        }
        bad
    });
    let total: usize = mismatches.iter().sum();
    assert_eq!(total, 0, "{total} reals differ between staggered paths");
}

#[test]
fn overlapped_bitwise_identical_under_chaos() {
    // Clean world, sequential path → reference bits.
    let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), GLOBAL).unwrap();
    let g = grid.clone();
    let config = CommConfig::resilient();
    let comms = ThreadedComm::world_with(grid.clone(), config);
    let clean: Vec<Vec<u64>> = run_world_fallible(comms, move |mut comm| {
        let op = build_wilson(&mut comm, &g, SEED + 2);
        let mut src = fill_source(&op, SEED + 2);
        let mut out = op.alloc(Parity::Even);
        op.dslash_sequential(&mut out, &mut src, &mut comm, BoundaryMode::Full).unwrap();
        comm.barrier().unwrap();
        out.body().iter().map(|x| x.to_bits()).collect::<Vec<_>>()
    })
    .into_iter()
    .map(|r| r.unwrap())
    .collect();

    // Chaotic world, overlapped path with parallel interior: dropped
    // data and acks (the ARQ absorbs both), duplicates, and delays.
    // Reduce traffic has no retransmit protocol, so every drop rule is
    // scoped to data or ack messages.
    let plan = FaultPlan::new(SEED ^ 0x0d5)
        .with_rule(FaultRule::drop_message().data_only().with_probability(0.15))
        .with_rule(FaultRule::drop_message().for_class(MsgClass::Ack).with_probability(0.15))
        .with_rule(FaultRule::duplicate_message().data_only().with_probability(0.2))
        .with_rule(
            FaultRule::delay_message(std::time::Duration::from_millis(10))
                .data_only()
                .with_probability(0.2),
        );
    let g = grid.clone();
    let comms = FaultyComm::world(grid, config, plan);
    let chaotic: Vec<(Vec<u64>, u64, u64)> = run_world_fallible(comms, move |mut comm| {
        let op = build_wilson(&mut comm, &g, SEED + 2);
        op.set_interior_threads(2);
        let mut src = fill_source(&op, SEED + 2);
        let mut out = op.alloc(Parity::Even);
        for _ in 0..3 {
            op.dslash(&mut out, &mut src, &mut comm, BoundaryMode::Full).unwrap();
        }
        // The closing barrier keeps every rank's mailbox live until the
        // last stop-and-wait ack has landed (a peer that exits early
        // cannot re-ack a retransmitted final exchange).
        comm.barrier().unwrap();
        let bits = out.body().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        (bits, comm.faults_survived(), comm.exchange_retries())
    })
    .into_iter()
    .enumerate()
    .map(|(rank, r)| r.unwrap_or_else(|e| panic!("rank {rank} failed under chaos: {e}")))
    .collect();

    for (rank, (reference, (bits, _, _))) in clean.iter().zip(&chaotic).enumerate() {
        assert_eq!(reference, bits, "rank {rank}: overlapped-under-faults deviates");
    }
    let survived: u64 = chaotic.iter().map(|(_, f, _)| *f).sum();
    assert!(survived > 0, "fault plan never fired");
}

#[test]
fn interior_thread_count_never_changes_bits() {
    // Determinism across a spread of worker counts, including counts
    // larger than the core count and odd chunk remainders.
    let grid = ProcessGrid::new(Dims([1, 1, 1, 2]), GLOBAL).unwrap();
    let g = grid.clone();
    let mismatches = run_on_grid(grid, move |mut comm| {
        let op = build_wilson(&mut comm, &g, SEED + 3);
        let mut src = fill_source(&op, SEED + 3);
        op.set_interior_threads(1);
        let mut reference = op.alloc(Parity::Even);
        op.dslash(&mut reference, &mut src, &mut comm, BoundaryMode::Full).unwrap();
        let mut bad = 0usize;
        for t in [2usize, 3, 5, 8] {
            op.set_interior_threads(t);
            assert_eq!(op.interior_threads(), t);
            let mut out = op.alloc(Parity::Even);
            op.dslash(&mut out, &mut src, &mut comm, BoundaryMode::Full).unwrap();
            bad += reference
                .body()
                .iter()
                .zip(out.body())
                .filter(|(a, b)| a.to_bits() != b.to_bits())
                .count();
        }
        bad
    });
    let total: usize = mismatches.iter().sum();
    assert_eq!(total, 0, "{total} reals vary with interior thread count");
}

#[test]
fn overlap_counters_accumulate_per_apply() {
    let grid = ProcessGrid::new(Dims([1, 1, 1, 2]), GLOBAL).unwrap();
    let g = grid.clone();
    let ok = run_on_grid(grid, move |mut comm| {
        let op = build_wilson(&mut comm, &g, SEED + 4);
        let mut src = fill_source(&op, SEED + 4);
        let mut out = op.alloc(Parity::Even);
        assert_eq!(op.dslash_counters().applies, 0);
        for _ in 0..4 {
            op.dslash(&mut out, &mut src, &mut comm, BoundaryMode::Full).unwrap();
        }
        let c = op.dslash_counters();
        assert_eq!(c.applies, 4);
        assert!(c.total_ns > 0 && c.interior_ns > 0);
        assert!(c.total_ns >= c.interior_ns);
        let eff = c.overlap_efficiency().unwrap();
        assert!((0.0..=1.0).contains(&eff), "efficiency {eff} out of range");
        op.reset_dslash_counters();
        assert_eq!(op.dslash_counters().applies, 0);
        true
    });
    assert!(ok.into_iter().all(|b| b));
}

#[test]
fn geometry_mismatch_is_a_shape_error_not_a_panic() {
    // Field allocated for the wrong subvolume.
    let sub = Arc::new(SubLattice::single(GLOBAL).unwrap());
    let faces = FaceGeometry::new(&sub, WILSON_DEPTH).unwrap();
    let gauge = GaugeField::<f64>::generate(
        sub.clone(),
        &faces,
        GLOBAL,
        &SeedTree::new(SEED + 5),
        GaugeStart::Cold,
    );
    let op = WilsonCloverOp::new(gauge, None, 0.1).unwrap();
    let other = Arc::new(SubLattice::single(Dims([4, 4, 4, 8])).unwrap());
    let other_faces = FaceGeometry::new(&other, WILSON_DEPTH).unwrap();
    let mut src: LatticeField<f64, WilsonSpinor<f64>> =
        LatticeField::zeros(other, &other_faces, Parity::Odd, 0);
    let mut out = op.alloc(Parity::Even);
    let mut comm = SingleComm::new(GLOBAL).unwrap();
    let err = op.dslash(&mut out, &mut src, &mut comm, BoundaryMode::Full).unwrap_err();
    assert!(matches!(err, Error::Shape(_)), "wrong error class: {err:?}");

    // Ghost depth mismatch on a partitioned grid: a depth-3 allocation
    // handed to the depth-1 Wilson stencil.
    let grid = ProcessGrid::new(Dims([1, 1, 1, 2]), GLOBAL).unwrap();
    let g = grid.clone();
    let ok = run_on_grid(grid, move |mut comm| {
        let op = build_wilson(&mut comm, &g, SEED + 5);
        let sub = op.sublattice().clone();
        let deep_faces = FaceGeometry::new(&sub, 3).unwrap();
        let mut src: LatticeField<f64, WilsonSpinor<f64>> =
            LatticeField::zeros(sub, &deep_faces, Parity::Odd, 0);
        let mut out = op.alloc(Parity::Even);
        let err = op.dslash(&mut out, &mut src, &mut comm, BoundaryMode::Full).unwrap_err();
        matches!(err, Error::Shape(_))
    });
    assert!(ok.into_iter().all(|b| b));
}

//! Distributed-equals-serial: the multi-rank Dirac operators must
//! reproduce the single-rank result site-for-site, for every partitioning
//! scheme — the correctness core of the paper's multi-dimensional
//! parallelization (§6).

use lqcd_comms::{run_on_grid, Communicator, SingleComm};
use lqcd_dirac::{BoundaryMode, StaggeredOp, WilsonCloverOp, STAGGERED_DEPTH, WILSON_DEPTH};
use lqcd_gauge::asqtad::{AsqtadCoeffs, AsqtadLinks};
use lqcd_gauge::clover_build::{build_clover_field, restrict_clover};
use lqcd_gauge::field::GaugeStart;
use lqcd_gauge::GaugeField;
use lqcd_lattice::{Dims, FaceGeometry, Parity, ProcessGrid, SubLattice};
use lqcd_su3::{ColorVector, WilsonSpinor};
use lqcd_util::rng::SeedTree;
use lqcd_util::Complex;
use std::sync::Arc;

const GLOBAL: Dims = Dims([8, 8, 8, 8]);
const SEED: u64 = 20260707;

/// Deterministic source spinor keyed on global coordinates, so every rank
/// builds the identical physical field.
fn wilson_source(seed: &SeedTree, gc: [usize; 4]) -> WilsonSpinor<f64> {
    let key = GLOBAL.index(gc) as u64;
    WilsonSpinor::random(&mut seed.child("src").stream(key))
}

fn staggered_source(seed: &SeedTree, gc: [usize; 4]) -> ColorVector<f64> {
    let key = GLOBAL.index(gc) as u64;
    ColorVector::random(&mut seed.child("src").stream(key))
}

fn serial_wilson() -> (Vec<Complex<f64>>, Arc<SubLattice>) {
    let seed = SeedTree::new(SEED);
    let sub = Arc::new(SubLattice::single(GLOBAL).unwrap());
    let faces = FaceGeometry::new(&sub, WILSON_DEPTH).unwrap();
    let gauge = GaugeField::<f64>::generate(
        sub.clone(),
        &faces,
        GLOBAL,
        &seed,
        GaugeStart::Disordered(0.3),
    );
    let clover = build_clover_field(&gauge, GLOBAL, 1.0);
    let op = WilsonCloverOp::new(gauge, Some(clover), 0.1).unwrap();
    let mut se = op.alloc(Parity::Even);
    let mut so = op.alloc(Parity::Odd);
    let subc = sub.clone();
    let s2 = seed.clone();
    se.fill(|idx| wilson_source(&s2, subc.cb_coords(Parity::Even, idx)));
    let subc = sub.clone();
    so.fill(|idx| wilson_source(&seed, subc.cb_coords(Parity::Odd, idx)));
    let mut comm = SingleComm::new(GLOBAL).unwrap();
    let mut oe = op.alloc(Parity::Even);
    let mut oo = op.alloc(Parity::Odd);
    op.apply_full(&mut oe, &mut oo, &mut se, &mut so, &mut comm, BoundaryMode::Full).unwrap();
    // Flatten by global lex index for easy comparison.
    let mut flat = vec![Complex::zero(); GLOBAL.volume() * 12];
    for p in Parity::BOTH {
        let f = if p == Parity::Even { &oe } else { &oo };
        for (idx, c) in sub.sites(p) {
            let s = f.site(idx);
            let base = GLOBAL.index(c) * 12;
            for sp in 0..4 {
                for col in 0..3 {
                    flat[base + sp * 3 + col] = s.s[sp].c[col];
                }
            }
        }
    }
    (flat, sub)
}

#[test]
fn wilson_clover_distributed_equals_serial_all_schemes() {
    let (serial, _) = serial_wilson();
    let serial = Arc::new(serial);
    // Grids exercising T-only, ZT, YZT and XYZT partitionings.
    for shape in [
        Dims([1, 1, 1, 2]),
        Dims([1, 1, 2, 2]),
        Dims([1, 2, 2, 2]),
        Dims([2, 2, 2, 2]),
        Dims([1, 1, 1, 4]),
    ] {
        let grid = ProcessGrid::new(shape, GLOBAL).unwrap();
        let grid2 = grid.clone();
        let serial2 = serial.clone();
        let max_err = run_on_grid(grid, move |mut comm| {
            let seed = SeedTree::new(SEED);
            let sub = Arc::new(SubLattice::for_rank(&grid2, comm.rank()));
            let faces = FaceGeometry::new(&sub, WILSON_DEPTH).unwrap();
            let mut gauge = GaugeField::<f64>::generate(
                sub.clone(),
                &faces,
                GLOBAL,
                &seed,
                GaugeStart::Disordered(0.3),
            );
            gauge.exchange_ghosts(&mut comm, &faces).unwrap();
            // Clover built globally (site-diagonal) and restricted.
            let gsub = Arc::new(SubLattice::single(GLOBAL).unwrap());
            let gfaces = FaceGeometry::new(&gsub, WILSON_DEPTH).unwrap();
            let ggauge = GaugeField::<f64>::generate(
                gsub,
                &gfaces,
                GLOBAL,
                &seed,
                GaugeStart::Disordered(0.3),
            );
            let gclover = build_clover_field(&ggauge, GLOBAL, 1.0);
            let clover = restrict_clover(&gclover, sub.clone(), &faces);
            let op = WilsonCloverOp::new(gauge, Some(clover), 0.1).unwrap();
            let mut se = op.alloc(Parity::Even);
            let mut so = op.alloc(Parity::Odd);
            let subc = sub.clone();
            let s2 = seed.clone();
            se.fill(|idx| {
                let c = subc.cb_coords(Parity::Even, idx);
                let mut gc = c;
                for d in 0..4 {
                    gc[d] = c[d] + subc.origin[d];
                }
                wilson_source(&s2, gc)
            });
            let subc = sub.clone();
            so.fill(|idx| {
                let c = subc.cb_coords(Parity::Odd, idx);
                let mut gc = c;
                for d in 0..4 {
                    gc[d] = c[d] + subc.origin[d];
                }
                wilson_source(&seed, gc)
            });
            let mut oe = op.alloc(Parity::Even);
            let mut oo = op.alloc(Parity::Odd);
            op.apply_full(&mut oe, &mut oo, &mut se, &mut so, &mut comm, BoundaryMode::Full)
                .unwrap();
            // Compare against the serial result.
            let mut max_err = 0.0f64;
            for p in Parity::BOTH {
                let f = if p == Parity::Even { &oe } else { &oo };
                for (idx, c) in sub.sites(p) {
                    let mut gc = c;
                    for d in 0..4 {
                        gc[d] = c[d] + sub.origin[d];
                    }
                    let base = GLOBAL.index(gc) * 12;
                    let s = f.site(idx);
                    for sp in 0..4 {
                        for col in 0..3 {
                            let d = s.s[sp].c[col] - serial2[base + sp * 3 + col];
                            max_err = max_err.max(d.abs());
                        }
                    }
                }
            }
            max_err
        });
        let worst = max_err.iter().cloned().fold(0.0, f64::max);
        assert!(worst < 1e-11, "scheme {shape:?}: max deviation {worst}");
    }
}

#[test]
fn staggered_distributed_equals_serial_all_schemes() {
    let seed = SeedTree::new(SEED + 1);
    // Serial reference.
    let gsub = Arc::new(SubLattice::single(GLOBAL).unwrap());
    let gfaces = FaceGeometry::new(&gsub, STAGGERED_DEPTH).unwrap();
    let thin = GaugeField::<f64>::generate(
        gsub.clone(),
        &gfaces,
        GLOBAL,
        &seed,
        GaugeStart::Disordered(0.25),
    );
    let links = AsqtadLinks::compute(&thin, GLOBAL, &AsqtadCoeffs::default());
    let op = StaggeredOp::new(links.fat.clone(), links.long.clone(), 0.2).unwrap();
    let mut se = op.alloc(Parity::Even);
    let mut so = op.alloc(Parity::Odd);
    let subc = gsub.clone();
    let s2 = seed.clone();
    se.fill(|idx| staggered_source(&s2, subc.cb_coords(Parity::Even, idx)));
    let subc = gsub.clone();
    so.fill(|idx| staggered_source(&seed, subc.cb_coords(Parity::Odd, idx)));
    let mut comm = SingleComm::new(GLOBAL).unwrap();
    let mut oe = op.alloc(Parity::Even);
    let mut oo = op.alloc(Parity::Odd);
    op.apply_full(&mut oe, &mut oo, &mut se, &mut so, &mut comm, BoundaryMode::Full).unwrap();
    let mut flat = vec![Complex::<f64>::zero(); GLOBAL.volume() * 3];
    for p in Parity::BOTH {
        let f = if p == Parity::Even { &oe } else { &oo };
        for (idx, c) in gsub.sites(p) {
            let s = f.site(idx);
            let base = GLOBAL.index(c) * 3;
            flat[base..base + 3].copy_from_slice(&s.c);
        }
    }
    let flat = Arc::new(flat);
    let links = Arc::new(links);

    // Distributed runs: ZT, YZT, XYZT (and T-only with thin local T).
    for shape in [Dims([1, 1, 1, 2]), Dims([1, 1, 2, 2]), Dims([1, 2, 2, 2]), Dims([2, 2, 2, 2])] {
        let grid = ProcessGrid::new(shape, GLOBAL).unwrap();
        let grid2 = grid.clone();
        let flat2 = flat.clone();
        let links2 = links.clone();
        let seed2 = seed.clone();
        let max_err = run_on_grid(grid, move |mut comm| {
            let sub = Arc::new(SubLattice::for_rank(&grid2, comm.rank()));
            let faces = FaceGeometry::new(&sub, STAGGERED_DEPTH).unwrap();
            // Fat/long links restricted from the precomputed global pair
            // (body + gauge ghosts, no comm), as production does.
            let fat = GaugeField::restrict_from_global(&links2.fat, sub.clone(), &faces, GLOBAL);
            let long = GaugeField::restrict_from_global(&links2.long, sub.clone(), &faces, GLOBAL);
            let op = StaggeredOp::new(fat, long, 0.2).unwrap();
            let mut se = op.alloc(Parity::Even);
            let mut so = op.alloc(Parity::Odd);
            let subc = sub.clone();
            let sd = seed2.clone();
            se.fill(|idx| {
                let c = subc.cb_coords(Parity::Even, idx);
                let mut gc = c;
                for d in 0..4 {
                    gc[d] = c[d] + subc.origin[d];
                }
                staggered_source(&sd, gc)
            });
            let subc = sub.clone();
            let sd = seed2.clone();
            so.fill(|idx| {
                let c = subc.cb_coords(Parity::Odd, idx);
                let mut gc = c;
                for d in 0..4 {
                    gc[d] = c[d] + subc.origin[d];
                }
                staggered_source(&sd, gc)
            });
            let mut oe = op.alloc(Parity::Even);
            let mut oo = op.alloc(Parity::Odd);
            op.apply_full(&mut oe, &mut oo, &mut se, &mut so, &mut comm, BoundaryMode::Full)
                .unwrap();
            let mut max_err = 0.0f64;
            for p in Parity::BOTH {
                let f = if p == Parity::Even { &oe } else { &oo };
                for (idx, c) in sub.sites(p) {
                    let mut gc = c;
                    for d in 0..4 {
                        gc[d] = c[d] + sub.origin[d];
                    }
                    let base = GLOBAL.index(gc) * 3;
                    let s = f.site(idx);
                    for col in 0..3 {
                        max_err = max_err.max((s.c[col] - flat2[base + col]).abs());
                    }
                }
            }
            max_err
        });
        let worst = max_err.iter().cloned().fold(0.0, f64::max);
        assert!(worst < 1e-11, "scheme {shape:?}: max deviation {worst}");
    }
}

#[test]
fn dirichlet_mode_is_block_diagonal() {
    // A source supported on one rank must produce output supported on the
    // same rank only, when boundaries are Dirichlet.
    let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), GLOBAL).unwrap();
    let grid2 = grid.clone();
    let sums = run_on_grid(grid, move |mut comm| {
        let seed = SeedTree::new(SEED + 2);
        let sub = Arc::new(SubLattice::for_rank(&grid2, comm.rank()));
        let faces = FaceGeometry::new(&sub, WILSON_DEPTH).unwrap();
        let mut gauge = GaugeField::<f64>::generate(
            sub.clone(),
            &faces,
            GLOBAL,
            &seed,
            GaugeStart::Disordered(0.3),
        );
        gauge.exchange_ghosts(&mut comm, &faces).unwrap();
        let op = WilsonCloverOp::new(gauge, None, 0.1).unwrap();
        // Source nonzero only on rank 0.
        let mut so = op.alloc(Parity::Odd);
        if comm.rank() == 0 {
            let t = SeedTree::new(77);
            let mut rng = t.rng();
            so.fill(|_| WilsonSpinor::random(&mut rng));
        }
        let mut out = op.alloc(Parity::Even);
        op.dslash(&mut out, &mut so, &mut comm, BoundaryMode::Dirichlet).unwrap();
        lqcd_field::blas::norm2_local(&out)
    });
    assert!(sums[0] > 1.0, "rank 0 should have signal");
    for (rank, &s) in sums.iter().enumerate().skip(1) {
        assert_eq!(s, 0.0, "rank {rank} leaked across a Dirichlet boundary");
    }
}

#[test]
fn ghost_double_count_guard_on_thin_ranks() {
    // Local extent 4 with depth-3 ghosts: low/high faces overlap; the
    // exterior kernel must not double-apply ghost hops. Compare a 2-rank
    // staggered dslash against serial.
    let global = Dims([4, 4, 4, 8]);
    let seed = SeedTree::new(31);
    let gsub = Arc::new(SubLattice::single(global).unwrap());
    let gfaces = FaceGeometry::new(&gsub, STAGGERED_DEPTH).unwrap();
    let thin = GaugeField::<f64>::generate(
        gsub.clone(),
        &gfaces,
        global,
        &seed,
        GaugeStart::Disordered(0.2),
    );
    let links = Arc::new(AsqtadLinks::compute(&thin, global, &AsqtadCoeffs::default()));
    let op = StaggeredOp::new(links.fat.clone(), links.long.clone(), 0.1).unwrap();
    let mut so = op.alloc(Parity::Odd);
    let subc = gsub.clone();
    let sd = seed.clone();
    so.fill(|idx| {
        let c = subc.cb_coords(Parity::Odd, idx);
        ColorVector::random(&mut sd.child("src").stream(global.index(c) as u64))
    });
    let mut comm = SingleComm::new(global).unwrap();
    let mut serial_out = op.alloc(Parity::Even);
    op.dslash(&mut serial_out, &mut so, &mut comm, BoundaryMode::Full).unwrap();
    let mut flat = vec![Complex::<f64>::zero(); global.volume() * 3];
    for (idx, c) in gsub.sites(Parity::Even) {
        let s = serial_out.site(idx);
        for col in 0..3 {
            flat[global.index(c) * 3 + col] = s.c[col];
        }
    }
    let flat = Arc::new(flat);

    // Partition Z into 2 ranks of local extent... Z = 4 < 2·3.
    let grid = ProcessGrid::new(Dims([1, 1, 1, 2]), global).unwrap();
    let grid2 = grid.clone();
    let links2 = links.clone();
    let seed2 = seed.clone();
    let flat2 = flat.clone();
    let errs = run_on_grid(grid, move |mut comm| {
        let sub = Arc::new(SubLattice::for_rank(&grid2, comm.rank()));
        let faces = FaceGeometry::new(&sub, STAGGERED_DEPTH).unwrap();
        let fat = GaugeField::restrict_from_global(&links2.fat, sub.clone(), &faces, global);
        let long = GaugeField::restrict_from_global(&links2.long, sub.clone(), &faces, global);
        let op = StaggeredOp::new(fat, long, 0.1).unwrap();
        let mut so = op.alloc(Parity::Odd);
        let subc = sub.clone();
        let sd = seed2.clone();
        so.fill(|idx| {
            let c = subc.cb_coords(Parity::Odd, idx);
            let mut gc = c;
            for d in 0..4 {
                gc[d] = c[d] + subc.origin[d];
            }
            ColorVector::random(&mut sd.child("src").stream(global.index(gc) as u64))
        });
        let mut out = op.alloc(Parity::Even);
        op.dslash(&mut out, &mut so, &mut comm, BoundaryMode::Full).unwrap();
        let mut max_err = 0.0f64;
        for (idx, c) in sub.sites(Parity::Even) {
            let mut gc = c;
            for d in 0..4 {
                gc[d] = c[d] + sub.origin[d];
            }
            let s = out.site(idx);
            for col in 0..3 {
                max_err = max_err.max((s.c[col] - flat2[global.index(gc) * 3 + col]).abs());
            }
        }
        max_err
    });
    let worst = errs.iter().cloned().fold(0.0, f64::max);
    assert!(worst < 1e-12, "thin-rank double count: deviation {worst}");
}

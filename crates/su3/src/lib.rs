//! SU(3) color algebra for lattice QCD.
//!
//! This crate provides the per-site dense linear algebra that every Dirac
//! operator is built from:
//!
//! * [`Su3`] — 3×3 special-unitary color (link) matrices with products,
//!   adjoints, projection back onto SU(3), and random group elements;
//! * [`ColorVector`] — 3-component complex color vectors (the staggered
//!   per-site degrees of freedom);
//! * [`WilsonSpinor`] — 4 spins × 3 colors = 12 complex components (the
//!   Wilson-clover per-site degrees of freedom);
//! * [`gamma`] — the DeGrand–Rossi γ-matrix basis and the spin projectors
//!   `P±µ = (1 ± γµ)/2`, including the half-spinor (two-spin) projection
//!   trick QUDA uses to halve spinor traffic;
//! * [`compress`] — the 12-real and 8-real compressed gauge-link storage
//!   formats with exact SU(3) reconstruction (paper §5, "strategy (a)");
//! * [`clover`] — the packed 72-real clover term (two 6×6 Hermitian
//!   chiral blocks) with apply and inverse.

pub mod clover;
pub mod compress;
pub mod gamma;
pub mod matrix;
pub mod spinor;
pub mod vector;

pub use clover::CloverSite;
pub use compress::{Reconstruct, Su3Compressed12, Su3Compressed8};
pub use gamma::{HalfSpinor, Projector};
pub use matrix::Su3;
pub use spinor::WilsonSpinor;
pub use vector::ColorVector;

/// Number of colors. Fixed to 3 for QCD throughout the workspace.
pub const NCOLOR: usize = 3;
/// Number of spin components of a Wilson spinor.
pub const NSPIN: usize = 4;
/// Real degrees of freedom of an uncompressed link matrix.
pub const LINK_REALS: usize = 18;
/// Real degrees of freedom of a Wilson spinor.
pub const WILSON_SPINOR_REALS: usize = 24;
/// Real degrees of freedom of a staggered (color-vector) "spinor".
pub const STAGGERED_SPINOR_REALS: usize = 6;
/// Real degrees of freedom of the packed clover term per site.
pub const CLOVER_REALS: usize = 72;

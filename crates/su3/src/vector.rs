//! 3-component complex color vectors — the staggered per-site field.

use crate::NCOLOR;
use lqcd_util::{Complex, Real};
use rand::Rng;

/// A color vector: the per-site degrees of freedom of a staggered fermion
/// (3 complex = 6 real numbers, cf. paper Fig. 2).
#[derive(Copy, Clone, Debug, PartialEq)]
#[repr(C)]
pub struct ColorVector<R> {
    /// The three color components.
    pub c: [Complex<R>; NCOLOR],
}

impl<R: Real> Default for ColorVector<R> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<R: Real> ColorVector<R> {
    /// The zero vector.
    pub fn zero() -> Self {
        Self { c: [Complex::zero(); NCOLOR] }
    }

    /// Build from a closure over the color index.
    pub fn from_fn(mut f: impl FnMut(usize) -> Complex<R>) -> Self {
        let mut v = Self::zero();
        for (i, e) in v.c.iter_mut().enumerate() {
            *e = f(i);
        }
        v
    }

    /// Componentwise sum.
    #[inline(always)]
    pub fn add(&self, rhs: &Self) -> Self {
        Self::from_fn(|i| self.c[i] + rhs.c[i])
    }

    /// Componentwise difference.
    #[inline(always)]
    pub fn sub(&self, rhs: &Self) -> Self {
        Self::from_fn(|i| self.c[i] - rhs.c[i])
    }

    /// Scale by a real factor.
    #[inline(always)]
    pub fn scale(&self, s: R) -> Self {
        Self::from_fn(|i| self.c[i].scale(s))
    }

    /// Scale by a complex factor.
    #[inline(always)]
    pub fn scale_c(&self, s: Complex<R>) -> Self {
        Self::from_fn(|i| self.c[i] * s)
    }

    /// `self + a · rhs` (axpy-shaped accumulation).
    #[inline(always)]
    pub fn axpy(&self, a: R, rhs: &Self) -> Self {
        Self::from_fn(|i| Complex::mul_acc(self.c[i], Complex::from_re(a), rhs.c[i]))
    }

    /// Inner product `⟨self, rhs⟩ = Σ self*_i rhs_i` (conjugate-linear in
    /// the first argument, the physics convention).
    #[inline(always)]
    pub fn dot(&self, rhs: &Self) -> Complex<R> {
        let mut acc = Complex::zero();
        for i in 0..NCOLOR {
            acc = Complex::mul_acc(acc, self.c[i].conj(), rhs.c[i]);
        }
        acc
    }

    /// Squared 2-norm.
    #[inline(always)]
    pub fn norm_sqr(&self) -> R {
        self.c[0].norm_sqr() + self.c[1].norm_sqr() + self.c[2].norm_sqr()
    }

    /// Gaussian random vector (unit variance per real component).
    pub fn random<G: Rng>(rng: &mut G) -> Self {
        Self::from_fn(|_| {
            let (a, b) = lqcd_util::rng::normal_pair(rng);
            Complex::new(R::from_f64(a), R::from_f64(b))
        })
    }

    /// Convert to another precision through `f64`.
    pub fn cast<S: Real>(&self) -> ColorVector<S> {
        ColorVector::from_fn(|i| self.c[i].cast())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqcd_util::rng::SeedTree;

    type V = ColorVector<f64>;

    #[test]
    fn vector_space_axioms() {
        let t = SeedTree::new(1);
        let mut rng = t.rng();
        let a = V::random(&mut rng);
        let b = V::random(&mut rng);
        assert_eq!(a.add(&b), b.add(&a));
        assert!(a.sub(&a).norm_sqr() == 0.0);
        let s = a.scale(2.0);
        assert!((s.norm_sqr() - 4.0 * a.norm_sqr()).abs() < 1e-12);
    }

    #[test]
    fn dot_is_sesquilinear() {
        let t = SeedTree::new(2);
        let mut rng = t.rng();
        let a = V::random(&mut rng);
        let b = V::random(&mut rng);
        // ⟨a,b⟩ = conj(⟨b,a⟩)
        assert!((a.dot(&b) - b.dot(&a).conj()).abs() < 1e-12);
        // ⟨a,a⟩ = ‖a‖² real
        assert!((a.dot(&a).re - a.norm_sqr()).abs() < 1e-12);
        assert!(a.dot(&a).im.abs() < 1e-12);
        // linear in second argument
        let s = Complex::new(0.3, -0.7);
        assert!((a.dot(&b.scale_c(s)) - a.dot(&b) * s).abs() < 1e-12);
    }

    #[test]
    fn axpy_matches_expansion() {
        let t = SeedTree::new(3);
        let mut rng = t.rng();
        let a = V::random(&mut rng);
        let b = V::random(&mut rng);
        let got = a.axpy(1.5, &b);
        let want = a.add(&b.scale(1.5));
        assert!(got.sub(&want).norm_sqr() < 1e-24);
    }
}

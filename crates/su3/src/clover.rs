//! The packed per-site clover term.
//!
//! The clover matrix `A_x` is a 12×12 matrix in spin⊗color space. In a
//! chiral basis (ours — see [`crate::gamma`]) `σµν Fµν` is block diagonal
//! in chirality: two 6×6 **Hermitian** blocks, one acting on spins {0,1}
//! and one on spins {2,3}, each over the 3 colors. A Hermitian 6×6 block
//! has 6 real diagonal entries and 15 complex lower-triangle entries = 36
//! reals, so the full site term is described by 72 real numbers — exactly
//! the count the paper quotes (§2.2, footnote 1).
//!
//! Even-odd preconditioning of the Wilson-clover operator needs
//! `(4 + m + A)⁻¹` on one parity, so the block type carries a dense
//! inverse via Gauss–Jordan elimination with partial pivoting.

use crate::spinor::WilsonSpinor;
use crate::vector::ColorVector;
use lqcd_util::{BreakdownKind, Complex, Error, Real, Result};
use rand::Rng;

/// Number of rows/cols of one chiral block (2 spins × 3 colors).
pub const BLOCK_DIM: usize = 6;
/// Number of packed lower-triangle complex entries.
pub const BLOCK_OFF: usize = 15;

/// One 6×6 Hermitian chiral block in packed storage.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct HermBlock<R> {
    /// Real diagonal.
    pub diag: [R; BLOCK_DIM],
    /// Strict lower triangle, row-major: entry `(i, j)` with `i > j` lives
    /// at `i(i−1)/2 + j`.
    pub off: [Complex<R>; BLOCK_OFF],
}

/// Index of lower-triangle entry `(i, j)`, `i > j`.
#[inline(always)]
fn tri(i: usize, j: usize) -> usize {
    debug_assert!(i > j && i < BLOCK_DIM);
    i * (i - 1) / 2 + j
}

impl<R: Real> Default for HermBlock<R> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<R: Real> HermBlock<R> {
    /// The zero block.
    pub fn zero() -> Self {
        Self { diag: [R::ZERO; BLOCK_DIM], off: [Complex::zero(); BLOCK_OFF] }
    }

    /// A multiple of the identity.
    pub fn scaled_identity(s: R) -> Self {
        let mut b = Self::zero();
        b.diag = [s; BLOCK_DIM];
        b
    }

    /// Add `s·1` to the block (folds the `4 + m` Wilson diagonal in).
    pub fn add_diag(&self, s: R) -> Self {
        let mut b = *self;
        for d in &mut b.diag {
            *d += s;
        }
        b
    }

    /// Expand to a dense 6×6 complex matrix.
    pub fn dense(&self) -> [[Complex<R>; BLOCK_DIM]; BLOCK_DIM] {
        let mut m = [[Complex::zero(); BLOCK_DIM]; BLOCK_DIM];
        for i in 0..BLOCK_DIM {
            m[i][i] = Complex::from_re(self.diag[i]);
            for j in 0..i {
                m[i][j] = self.off[tri(i, j)];
                m[j][i] = self.off[tri(i, j)].conj();
            }
        }
        m
    }

    /// Pack a dense Hermitian matrix (the upper triangle is ignored; the
    /// imaginary part of the diagonal is dropped — callers are expected to
    /// pass genuinely Hermitian input).
    pub fn from_dense(m: &[[Complex<R>; BLOCK_DIM]; BLOCK_DIM]) -> Self {
        let mut b = Self::zero();
        for i in 0..BLOCK_DIM {
            b.diag[i] = m[i][i].re;
            for j in 0..i {
                b.off[tri(i, j)] = m[i][j];
            }
        }
        b
    }

    /// Dense matrix-vector product `self · v`.
    #[inline]
    pub fn apply(&self, v: &[Complex<R>; BLOCK_DIM]) -> [Complex<R>; BLOCK_DIM] {
        let mut out = [Complex::zero(); BLOCK_DIM];
        for i in 0..BLOCK_DIM {
            let mut acc = v[i].scale(self.diag[i]);
            for j in 0..i {
                acc = Complex::mul_acc(acc, self.off[tri(i, j)], v[j]);
            }
            for j in (i + 1)..BLOCK_DIM {
                acc = Complex::mul_acc(acc, self.off[tri(j, i)].conj(), v[j]);
            }
            out[i] = acc;
        }
        out
    }

    /// Invert the block. Errors with [`Error::Breakdown`] on singular input.
    pub fn inverse(&self) -> Result<Self> {
        let a = self.dense();
        let inv = invert6(&a)?;
        Ok(Self::from_dense(&inv))
    }

    /// Random Hermitian block, shifted to be safely positive definite
    /// (diagonal dominance), for tests.
    pub fn random_spd<G: Rng>(rng: &mut G) -> Self {
        let mut b = Self::zero();
        for d in &mut b.diag {
            let (x, _) = lqcd_util::rng::normal_pair(rng);
            *d = R::from_f64(8.0 + x);
        }
        for o in &mut b.off {
            let (x, y) = lqcd_util::rng::normal_pair(rng);
            *o = Complex::new(R::from_f64(0.3 * x), R::from_f64(0.3 * y));
        }
        b
    }

    /// Frobenius norm of the dense block.
    pub fn norm(&self) -> R {
        let mut s = R::ZERO;
        for d in &self.diag {
            s += *d * *d;
        }
        for o in &self.off {
            s += o.norm_sqr() + o.norm_sqr(); // both triangles
        }
        s.sqrt()
    }
}

/// Gauss–Jordan inverse of a dense 6×6 complex matrix with partial
/// pivoting.
pub fn invert6<R: Real>(
    a: &[[Complex<R>; BLOCK_DIM]; BLOCK_DIM],
) -> Result<[[Complex<R>; BLOCK_DIM]; BLOCK_DIM]> {
    let mut m = *a;
    let mut inv = [[Complex::zero(); BLOCK_DIM]; BLOCK_DIM];
    for (i, row) in inv.iter_mut().enumerate() {
        row[i] = Complex::one();
    }
    for col in 0..BLOCK_DIM {
        // Partial pivot.
        let mut pivot_row = col;
        let mut best = m[col][col].norm_sqr();
        for r in (col + 1)..BLOCK_DIM {
            let mag = m[r][col].norm_sqr();
            if mag > best {
                best = mag;
                pivot_row = r;
            }
        }
        if best.to_f64() < 1e-300 {
            return Err(Error::Breakdown {
                solver: "invert6",
                kind: BreakdownKind::ZeroPivot,
                detail: format!("singular matrix at column {col}"),
            });
        }
        m.swap(col, pivot_row);
        inv.swap(col, pivot_row);
        let p = m[col][col].inv().ok_or_else(|| Error::Breakdown {
            solver: "invert6",
            kind: BreakdownKind::ZeroPivot,
            detail: "zero pivot".into(),
        })?;
        for j in 0..BLOCK_DIM {
            m[col][j] *= p;
            inv[col][j] *= p;
        }
        for r in 0..BLOCK_DIM {
            if r == col {
                continue;
            }
            let factor = m[r][col];
            if factor == Complex::zero() {
                continue;
            }
            for j in 0..BLOCK_DIM {
                let mc = m[col][j];
                let ic = inv[col][j];
                m[r][j] -= factor * mc;
                inv[r][j] -= factor * ic;
            }
        }
    }
    Ok(inv)
}

/// The full per-site clover term: one Hermitian block per chirality.
///
/// Block 0 acts on spins {0, 1}; block 1 on spins {2, 3}.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CloverSite<R> {
    /// The two chiral blocks.
    pub blocks: [HermBlock<R>; 2],
}

impl<R: Real> Default for CloverSite<R> {
    fn default() -> Self {
        Self { blocks: [HermBlock::zero(), HermBlock::zero()] }
    }
}

impl<R: Real> CloverSite<R> {
    /// A multiple of the identity (e.g. `4 + m` with no field-strength
    /// contribution — the free-field clover term).
    pub fn scaled_identity(s: R) -> Self {
        Self { blocks: [HermBlock::scaled_identity(s), HermBlock::scaled_identity(s)] }
    }

    /// Add `s·1` across both chiralities.
    pub fn add_diag(&self, s: R) -> Self {
        Self { blocks: [self.blocks[0].add_diag(s), self.blocks[1].add_diag(s)] }
    }

    /// Apply to a spinor: each chirality pair (2 spins × 3 colors) is a
    /// 6-vector hit by its block.
    pub fn apply(&self, p: &WilsonSpinor<R>) -> WilsonSpinor<R> {
        let mut out = WilsonSpinor::zero();
        for (chi, block) in self.blocks.iter().enumerate() {
            let s0 = 2 * chi;
            let mut v = [Complex::zero(); BLOCK_DIM];
            for sp in 0..2 {
                for c in 0..3 {
                    v[sp * 3 + c] = p.s[s0 + sp].c[c];
                }
            }
            let w = block.apply(&v);
            for sp in 0..2 {
                out.s[s0 + sp] = ColorVector::from_fn(|c| w[sp * 3 + c]);
            }
        }
        out
    }

    /// Inverse clover term (both blocks inverted).
    pub fn inverse(&self) -> Result<CloverSite<R>> {
        Ok(CloverSite { blocks: [self.blocks[0].inverse()?, self.blocks[1].inverse()?] })
    }

    /// Random positive-definite site term for tests.
    pub fn random_spd<G: Rng>(rng: &mut G) -> Self {
        Self { blocks: [HermBlock::random_spd(rng), HermBlock::random_spd(rng)] }
    }

    /// Pack to the canonical 72 reals (block 0 then block 1; each block:
    /// 6 diagonal reals then 15 lower-triangle complex pairs).
    pub fn to_reals(&self) -> [R; 72] {
        let mut out = [R::ZERO; 72];
        let mut k = 0;
        for b in &self.blocks {
            for d in &b.diag {
                out[k] = *d;
                k += 1;
            }
            for o in &b.off {
                out[k] = o.re;
                out[k + 1] = o.im;
                k += 2;
            }
        }
        out
    }

    /// Rebuild from 72 reals (inverse of [`CloverSite::to_reals`]).
    pub fn from_reals(r: &[R; 72]) -> Self {
        let mut site = CloverSite::default();
        let mut k = 0;
        for b in &mut site.blocks {
            for d in &mut b.diag {
                *d = r[k];
                k += 1;
            }
            for o in &mut b.off {
                *o = Complex::new(r[k], r[k + 1]);
                k += 2;
            }
        }
        site
    }

    /// Convert precision through `f64`.
    pub fn cast<S: Real>(&self) -> CloverSite<S> {
        let mut out = CloverSite::<S>::default();
        for (dst, src) in out.blocks.iter_mut().zip(&self.blocks) {
            for (d, s) in dst.diag.iter_mut().zip(&src.diag) {
                *d = S::from_f64(s.to_f64());
            }
            for (o, s) in dst.off.iter_mut().zip(&src.off) {
                *o = s.cast();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqcd_util::rng::SeedTree;

    #[test]
    fn tri_indexing_is_a_bijection() {
        let mut seen = [false; BLOCK_OFF];
        for i in 1..BLOCK_DIM {
            for j in 0..i {
                let k = tri(i, j);
                assert!(!seen[k], "duplicate index {k}");
                seen[k] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dense_pack_roundtrip() {
        let b = HermBlock::<f64>::random_spd(&mut SeedTree::new(1).rng());
        assert_eq!(HermBlock::from_dense(&b.dense()), b);
    }

    #[test]
    fn apply_matches_dense_matvec() {
        let t = SeedTree::new(2);
        let mut rng = t.rng();
        let b = HermBlock::<f64>::random_spd(&mut rng);
        let dense = b.dense();
        let mut v = [Complex::zero(); BLOCK_DIM];
        for e in &mut v {
            let (x, y) = lqcd_util::rng::normal_pair(&mut rng);
            *e = Complex::new(x, y);
        }
        let fast = b.apply(&v);
        for i in 0..BLOCK_DIM {
            let mut acc = Complex::zero();
            for j in 0..BLOCK_DIM {
                acc = Complex::mul_acc(acc, dense[i][j], v[j]);
            }
            assert!((fast[i] - acc).abs() < 1e-12);
        }
    }

    #[test]
    fn hermiticity_of_apply() {
        // ⟨w, A v⟩ = ⟨A w, v⟩ for Hermitian A.
        let t = SeedTree::new(3);
        let mut rng = t.rng();
        let a = CloverSite::<f64>::random_spd(&mut rng);
        let v = WilsonSpinor::random(&mut rng);
        let w = WilsonSpinor::random(&mut rng);
        let lhs = w.dot(&a.apply(&v));
        let rhs = a.apply(&w).dot(&v);
        assert!((lhs - rhs).abs() < 1e-10);
    }

    #[test]
    fn inverse_really_inverts() {
        let t = SeedTree::new(4);
        let mut rng = t.rng();
        let a = CloverSite::<f64>::random_spd(&mut rng);
        let ainv = a.inverse().unwrap();
        let v = WilsonSpinor::random(&mut rng);
        let back = ainv.apply(&a.apply(&v));
        assert!(back.sub(&v).norm_sqr() < 1e-18);
    }

    #[test]
    fn invert6_rejects_singular() {
        let m = [[Complex::<f64>::zero(); BLOCK_DIM]; BLOCK_DIM];
        assert!(invert6(&m).is_err());
    }

    #[test]
    fn scaled_identity_applies_as_scale() {
        let t = SeedTree::new(5);
        let v = WilsonSpinor::<f64>::random(&mut t.rng());
        let a = CloverSite::scaled_identity(2.5);
        assert!(a.apply(&v).sub(&v.scale(2.5)).norm_sqr() < 1e-24);
    }

    #[test]
    fn reals_roundtrip_is_exact() {
        let t = SeedTree::new(6);
        let a = CloverSite::<f64>::random_spd(&mut t.rng());
        assert_eq!(CloverSite::from_reals(&a.to_reals()), a);
        // And the count is the paper's 72.
        assert_eq!(a.to_reals().len(), crate::CLOVER_REALS);
    }

    #[test]
    fn add_diag_shifts_spectrum() {
        let t = SeedTree::new(7);
        let mut rng = t.rng();
        let a = CloverSite::<f64>::random_spd(&mut rng);
        let v = WilsonSpinor::random(&mut rng);
        let shifted = a.add_diag(1.5).apply(&v);
        let manual = a.apply(&v).add(&v.scale(1.5));
        assert!(shifted.sub(&manual).norm_sqr() < 1e-20);
    }
}

//! The DeGrand–Rossi γ-matrix basis and Wilson spin projectors.
//!
//! In this (chiral) basis every γµ has exactly one nonzero entry per row,
//! with phase in `{±1, ±i}`, and maps the upper spin pair {0,1} to the
//! lower pair {2,3} and vice versa. Consequently the projected spinor
//! `P±µ ψ = (1 ± γµ)ψ / 2` has only two independent spin components — the
//! "half spinor" trick QUDA uses to halve spinor traffic in the Dirac
//! stencil (paper §5, strategy (b): similarity transforms that increase
//! sparsity). We implement both the generic dense application (used as a
//! reference in tests) and the optimized project/reconstruct pair used by
//! the operators.

use crate::spinor::WilsonSpinor;
use crate::vector::ColorVector;
use lqcd_util::{Complex, Real};

/// A quartic phase `i^k` represented exactly.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Phase {
    /// `+1`
    One,
    /// `+i`
    I,
    /// `-1`
    MinusOne,
    /// `-i`
    MinusI,
}

impl Phase {
    /// Multiply a complex number by this phase (exact, no rounding).
    #[inline(always)]
    pub fn apply<R: Real>(self, z: Complex<R>) -> Complex<R> {
        match self {
            Phase::One => z,
            Phase::I => z.mul_i(),
            Phase::MinusOne => -z,
            Phase::MinusI => z.mul_neg_i(),
        }
    }

    /// Apply to every component of a color vector.
    #[inline(always)]
    pub fn apply_vec<R: Real>(self, v: &ColorVector<R>) -> ColorVector<R> {
        ColorVector::from_fn(|i| self.apply(v.c[i]))
    }

    /// Phase product.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Phase) -> Phase {
        let k = (self.quarter() + other.quarter()) % 4;
        Phase::from_quarter(k)
    }

    /// Negation.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Phase {
        self.mul(Phase::MinusOne)
    }

    fn quarter(self) -> u8 {
        match self {
            Phase::One => 0,
            Phase::I => 1,
            Phase::MinusOne => 2,
            Phase::MinusI => 3,
        }
    }

    fn from_quarter(k: u8) -> Phase {
        match k % 4 {
            0 => Phase::One,
            1 => Phase::I,
            2 => Phase::MinusOne,
            _ => Phase::MinusI,
        }
    }

    /// The complex value of this phase in a given precision.
    pub fn value<R: Real>(self) -> Complex<R> {
        self.apply(Complex::one())
    }
}

/// A monomial spin matrix: one nonzero entry per row.
///
/// `(Γψ)_s = phase[s] · ψ_{col[s]}`. All DeGrand–Rossi γ-matrices, their
/// products, and γ₅ have this form.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SpinMatrix {
    /// Column of the nonzero entry in each row.
    pub col: [usize; 4],
    /// Phase of the nonzero entry in each row.
    pub phase: [Phase; 4],
}

impl SpinMatrix {
    /// The spin-space identity.
    pub const IDENTITY: SpinMatrix = SpinMatrix { col: [0, 1, 2, 3], phase: [Phase::One; 4] };

    /// Apply to a spinor.
    #[inline(always)]
    pub fn apply<R: Real>(&self, p: &WilsonSpinor<R>) -> WilsonSpinor<R> {
        WilsonSpinor::from_fn(|s| self.phase[s].apply_vec(&p.s[self.col[s]]))
    }

    /// Matrix product `self · rhs` (both monomial, so the product is too).
    pub fn mul(&self, rhs: &SpinMatrix) -> SpinMatrix {
        let mut col = [0usize; 4];
        let mut phase = [Phase::One; 4];
        for s in 0..4 {
            // (A·B)ψ |_s = phaseA[s] (Bψ)_{colA[s]}
            //            = phaseA[s] phaseB[colA[s]] ψ_{colB[colA[s]]}
            col[s] = rhs.col[self.col[s]];
            phase[s] = self.phase[s].mul(rhs.phase[self.col[s]]);
        }
        SpinMatrix { col, phase }
    }

    /// Hermitian conjugate.
    pub fn adjoint(&self) -> SpinMatrix {
        let mut col = [0usize; 4];
        let mut phase = [Phase::One; 4];
        for s in 0..4 {
            // entry (s, col[s]) with phase p  ⇒  adjoint has entry
            // (col[s], s) with phase conj(p).
            col[self.col[s]] = s;
            phase[self.col[s]] = match self.phase[s] {
                Phase::I => Phase::MinusI,
                Phase::MinusI => Phase::I,
                p => p,
            };
        }
        SpinMatrix { col, phase }
    }
}

/// The four Euclidean γ-matrices in the DeGrand–Rossi basis, indexed
/// µ = 0(X), 1(Y), 2(Z), 3(T).
pub const GAMMA: [SpinMatrix; 4] = [
    // γ_x: rows (0→3:+i), (1→2:+i), (2→1:−i), (3→0:−i)
    SpinMatrix { col: [3, 2, 1, 0], phase: [Phase::I, Phase::I, Phase::MinusI, Phase::MinusI] },
    // γ_y: rows (0→3:−1), (1→2:+1), (2→1:+1), (3→0:−1)
    SpinMatrix {
        col: [3, 2, 1, 0],
        phase: [Phase::MinusOne, Phase::One, Phase::One, Phase::MinusOne],
    },
    // γ_z: rows (0→2:+i), (1→3:−i), (2→0:−i), (3→1:+i)
    SpinMatrix { col: [2, 3, 0, 1], phase: [Phase::I, Phase::MinusI, Phase::MinusI, Phase::I] },
    // γ_t: rows (0→2:+1), (1→3:+1), (2→0:+1), (3→1:+1)
    SpinMatrix { col: [2, 3, 0, 1], phase: [Phase::One; 4] },
];

/// γ₅ = γ_x γ_y γ_z γ_t, computed from the table (diagonal ±1 in this
/// basis; see the unit test pinning the signs).
pub fn gamma5_matrix() -> SpinMatrix {
    GAMMA[0].mul(&GAMMA[1]).mul(&GAMMA[2]).mul(&GAMMA[3])
}

/// Apply γµ to a spinor.
#[inline]
pub fn gamma_mul<R: Real>(mu: usize, p: &WilsonSpinor<R>) -> WilsonSpinor<R> {
    GAMMA[mu].apply(p)
}

/// Apply γ₅ to a spinor.
#[inline]
pub fn gamma5<R: Real>(p: &WilsonSpinor<R>) -> WilsonSpinor<R> {
    gamma5_matrix().apply(p)
}

/// The two independent spin components of a projected spinor
/// `P±µ ψ`: 2 spins × 3 colors = 6 complex numbers.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct HalfSpinor<R> {
    /// Upper-pair components (spins 0 and 1 of the projected spinor).
    pub h: [ColorVector<R>; 2],
}

impl<R: Real> Default for HalfSpinor<R> {
    fn default() -> Self {
        Self { h: [ColorVector::zero(); 2] }
    }
}

impl<R: Real> HalfSpinor<R> {
    /// Apply a color matrix to both spin components (spin and color
    /// rotations commute).
    #[inline(always)]
    pub fn color_mul(&self, u: &crate::matrix::Su3<R>) -> HalfSpinor<R> {
        HalfSpinor { h: [u.mul_vec(&self.h[0]), u.mul_vec(&self.h[1])] }
    }

    /// Apply the adjoint of a color matrix to both spin components.
    #[inline(always)]
    pub fn color_adj_mul(&self, u: &crate::matrix::Su3<R>) -> HalfSpinor<R> {
        HalfSpinor { h: [u.adj_mul_vec(&self.h[0]), u.adj_mul_vec(&self.h[1])] }
    }
}

/// A spin projector `P±µ = (1 ± γµ)/2` identified by direction and sign.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Projector {
    /// Direction µ ∈ 0..4 (X, Y, Z, T).
    pub mu: usize,
    /// `true` for `P+µ`, `false` for `P−µ`.
    pub plus: bool,
}

impl Projector {
    /// Project a full spinor to its two independent components.
    ///
    /// `(P±ψ)_s = (ψ_s ± phase[s]·ψ_{col[s]}) / 2` for s = 0, 1. The factor
    /// 1/2 is *not* applied here — QUDA folds it into the −1/2 in front of
    /// the derivative term; callers of the raw stencil get `(1 ± γµ)ψ`
    /// restricted to the upper pair.
    #[inline(always)]
    pub fn project<R: Real>(&self, p: &WilsonSpinor<R>) -> HalfSpinor<R> {
        let g = &GAMMA[self.mu];
        let mut out = HalfSpinor::default();
        for s in 0..2 {
            let rotated = g.phase[s].apply_vec(&p.s[g.col[s]]);
            out.h[s] = if self.plus { p.s[s].add(&rotated) } else { p.s[s].sub(&rotated) };
        }
        out
    }

    /// Reconstruct the full `(1 ± γµ)ψ` from its two stored components.
    ///
    /// Uses `γµ P± = ±P±`, which fixes the lower pair as a phase of the
    /// upper pair: `f_{s'} = ± phase[s']·h_{col[s']}` for s' = 2, 3.
    #[inline(always)]
    pub fn reconstruct<R: Real>(&self, h: &HalfSpinor<R>) -> WilsonSpinor<R> {
        let g = &GAMMA[self.mu];
        let mut out = WilsonSpinor::zero();
        out.s[0] = h.h[0];
        out.s[1] = h.h[1];
        for sp in 2..4 {
            let v = g.phase[sp].apply_vec(&h.h[g.col[sp]]);
            out.s[sp] = if self.plus { v } else { v.scale(-R::ONE) };
        }
        out
    }

    /// Accumulate the reconstruction into an existing spinor (the hot path
    /// of the Wilson stencil).
    #[inline(always)]
    pub fn accumulate<R: Real>(&self, acc: &mut WilsonSpinor<R>, h: &HalfSpinor<R>) {
        let g = &GAMMA[self.mu];
        acc.s[0] = acc.s[0].add(&h.h[0]);
        acc.s[1] = acc.s[1].add(&h.h[1]);
        for sp in 2..4 {
            let v = g.phase[sp].apply_vec(&h.h[g.col[sp]]);
            acc.s[sp] = if self.plus { acc.s[sp].add(&v) } else { acc.s[sp].sub(&v) };
        }
    }
}

/// Dense reference implementation of `(1 ± γµ)ψ`, used to validate the
/// half-spinor fast path.
pub fn project_reference<R: Real>(mu: usize, plus: bool, p: &WilsonSpinor<R>) -> WilsonSpinor<R> {
    let gp = gamma_mul(mu, p);
    if plus {
        p.add(&gp)
    } else {
        p.sub(&gp)
    }
}

/// Convenience free function mirroring [`Projector::project`].
#[inline]
pub fn project<R: Real>(mu: usize, plus: bool, p: &WilsonSpinor<R>) -> HalfSpinor<R> {
    Projector { mu, plus }.project(p)
}

/// Convenience free function mirroring [`Projector::reconstruct`].
#[inline]
pub fn reconstruct<R: Real>(mu: usize, plus: bool, h: &HalfSpinor<R>) -> WilsonSpinor<R> {
    Projector { mu, plus }.reconstruct(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqcd_util::rng::SeedTree;

    type P = WilsonSpinor<f64>;

    fn rand_spinor(seed: u64) -> P {
        P::random(&mut SeedTree::new(seed).rng())
    }

    fn close(a: &P, b: &P, tol: f64) -> bool {
        a.sub(b).norm_sqr() < tol
    }

    #[test]
    fn gammas_square_to_identity() {
        for mu in 0..4 {
            let sq = GAMMA[mu].mul(&GAMMA[mu]);
            assert_eq!(sq, SpinMatrix::IDENTITY, "γ_{mu}² ≠ 1");
        }
    }

    #[test]
    fn gammas_are_hermitian() {
        for mu in 0..4 {
            assert_eq!(GAMMA[mu].adjoint(), GAMMA[mu], "γ_{mu} not Hermitian");
        }
    }

    #[test]
    fn gammas_anticommute() {
        let p = rand_spinor(1);
        for mu in 0..4 {
            for nu in 0..4 {
                if mu == nu {
                    continue;
                }
                let ab = GAMMA[mu].mul(&GAMMA[nu]).apply(&p);
                let ba = GAMMA[nu].mul(&GAMMA[mu]).apply(&p);
                assert!(close(&ab, &ba.scale(-1.0), 1e-24), "γ_{mu}γ_{nu} ≠ −γ_{nu}γ_{mu}");
            }
        }
    }

    #[test]
    fn gamma5_is_diagonal_chiral() {
        let g5 = gamma5_matrix();
        assert_eq!(g5.col, [0, 1, 2, 3], "γ₅ must be diagonal in a chiral basis");
        // Squares to identity and anticommutes with every γµ.
        assert_eq!(g5.mul(&g5), SpinMatrix::IDENTITY);
        // Upper/lower pairs carry opposite chirality.
        assert_eq!(g5.phase[0], g5.phase[1]);
        assert_eq!(g5.phase[2], g5.phase[3]);
        assert_eq!(g5.phase[0], g5.phase[2].neg());
        let p = rand_spinor(2);
        for mu in 0..4 {
            let ab = g5.mul(&GAMMA[mu]).apply(&p);
            let ba = GAMMA[mu].mul(&g5).apply(&p);
            assert!(close(&ab, &ba.scale(-1.0), 1e-24), "γ₅ must anticommute with γ_{mu}");
        }
    }

    #[test]
    fn projector_matches_dense_reference() {
        let p = rand_spinor(3);
        for mu in 0..4 {
            for &plus in &[false, true] {
                let fast = reconstruct(mu, plus, &project(mu, plus, &p));
                let reference = project_reference(mu, plus, &p);
                assert!(
                    close(&fast, &reference, 1e-24),
                    "half-spinor path diverges at µ={mu}, plus={plus}"
                );
            }
        }
    }

    #[test]
    fn projectors_are_complementary() {
        // P+ + P− = 1 (recall our projectors carry an extra factor 2:
        // they compute (1 ± γ)ψ, so the sum is 2ψ).
        let p = rand_spinor(4);
        for mu in 0..4 {
            let plusr = reconstruct(mu, true, &project(mu, true, &p));
            let minusr = reconstruct(mu, false, &project(mu, false, &p));
            assert!(close(&plusr.add(&minusr), &p.scale(2.0), 1e-24));
        }
    }

    #[test]
    fn projectors_are_idempotent_up_to_factor2() {
        // (1±γ)(1±γ) = 2(1±γ)
        let p = rand_spinor(5);
        for mu in 0..4 {
            for &plus in &[false, true] {
                let once = reconstruct(mu, plus, &project(mu, plus, &p));
                let twice = reconstruct(mu, plus, &project(mu, plus, &once));
                assert!(close(&twice, &once.scale(2.0), 1e-22));
            }
        }
    }

    #[test]
    fn accumulate_matches_add_reconstruct() {
        let p = rand_spinor(6);
        let q = rand_spinor(7);
        for mu in 0..4 {
            for &plus in &[false, true] {
                let h = project(mu, plus, &q);
                let mut acc = p;
                Projector { mu, plus }.accumulate(&mut acc, &h);
                let want = p.add(&reconstruct(mu, plus, &h));
                assert!(close(&acc, &want, 1e-24));
            }
        }
    }

    #[test]
    fn color_mul_commutes_with_reconstruct() {
        use crate::matrix::Su3;
        let p = rand_spinor(8);
        let u = Su3::<f64>::random(&mut SeedTree::new(9).rng());
        for mu in 0..4 {
            for &plus in &[false, true] {
                let h = project(mu, plus, &p).color_mul(&u);
                let a = reconstruct(mu, plus, &h);
                // Apply U to the full reconstructed spinor instead.
                let full = reconstruct(mu, plus, &project(mu, plus, &p));
                let b = P::from_fn(|sp| u.mul_vec(&full.s[sp]));
                assert!(close(&a, &b, 1e-22));
            }
        }
    }
}

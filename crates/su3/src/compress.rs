//! Compressed gauge-link storage with exact SU(3) reconstruction.
//!
//! Paper §5, strategy (a): "using compression for the SU(3) gauge matrices
//! to reduce the 18 real numbers to 12 (or 8) real numbers at the expense
//! of extra computation". Both schemes trade memory *bandwidth* (the
//! scarce resource on the GPU) for flops (abundant):
//!
//! * **12-real**: store the first two rows; the third is
//!   `conj(row0 × row1)` by unitarity and `det = 1`.
//! * **8-real**: a minimal parameterization — store `a2, a3` (row 0), `b1`
//!   (row 1, first element) as complex numbers plus the phases
//!   `θ1 = arg(a1)` and `θ2 = arg(c1)`; reconstruct everything else from
//!   unitarity. Degenerates when `|a2|² + |a3|² → 0`, which is
//!   measure-zero for equilibrated gauge fields; [`Su3Compressed8::encode`]
//!   reports that case so callers can fall back to 12-real storage (QUDA
//!   likewise excludes such links).

use crate::matrix::Su3;
use lqcd_util::{Complex, Error, Real, Result};

/// Which link-storage format a gauge field uses. Names follow QUDA.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Reconstruct {
    /// 18 reals: no compression (required for non-unitary fat links).
    None,
    /// 12 reals: two rows stored, third reconstructed.
    Twelve,
    /// 8 reals: minimal parameterization.
    Eight,
}

impl Reconstruct {
    /// Number of real numbers stored per link.
    pub const fn reals(self) -> usize {
        match self {
            Reconstruct::None => 18,
            Reconstruct::Twelve => 12,
            Reconstruct::Eight => 8,
        }
    }
}

/// A link compressed to 12 reals (two rows).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Su3Compressed12<R> {
    /// Rows 0 and 1 of the matrix.
    pub rows: [[Complex<R>; 3]; 2],
}

impl<R: Real> Su3Compressed12<R> {
    /// Compress a special-unitary matrix (rows are stored verbatim).
    pub fn encode(u: &Su3<R>) -> Self {
        Self { rows: [u.m[0], u.m[1]] }
    }

    /// Reconstruct the full matrix: `row2 = conj(row0 × row1)`.
    pub fn decode(&self) -> Su3<R> {
        let r0 = &self.rows[0];
        let r1 = &self.rows[1];
        let r2 = [
            (r0[1] * r1[2] - r0[2] * r1[1]).conj(),
            (r0[2] * r1[0] - r0[0] * r1[2]).conj(),
            (r0[0] * r1[1] - r0[1] * r1[0]).conj(),
        ];
        Su3 { m: [*r0, *r1, r2] }
    }

    /// Flatten to 12 reals.
    pub fn to_reals(&self) -> [R; 12] {
        let mut out = [R::ZERO; 12];
        let mut k = 0;
        for row in &self.rows {
            for e in row {
                out[k] = e.re;
                out[k + 1] = e.im;
                k += 2;
            }
        }
        out
    }

    /// Rebuild from 12 reals.
    pub fn from_reals(r: &[R; 12]) -> Self {
        let mut rows = [[Complex::zero(); 3]; 2];
        let mut k = 0;
        for row in &mut rows {
            for e in row.iter_mut() {
                *e = Complex::new(r[k], r[k + 1]);
                k += 2;
            }
        }
        Self { rows }
    }
}

/// A link compressed to the minimal 8 reals.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Su3Compressed8<R> {
    /// Row 0, elements 1 and 2 (`a2`, `a3`).
    pub a2: Complex<R>,
    /// See `a2`.
    pub a3: Complex<R>,
    /// Row 1, element 0 (`b1`).
    pub b1: Complex<R>,
    /// Phase of row 0 element 0 (`arg a1`).
    pub theta_a1: R,
    /// Phase of row 2 element 0 (`arg c1`).
    pub theta_c1: R,
}

impl<R: Real> Su3Compressed8<R> {
    /// Relative tolerance below which the parameterization degenerates.
    const DEGENERATE_TOL: f64 = 1e-10;

    /// Compress a special-unitary matrix.
    ///
    /// Returns `Err(Error::Shape)` when `|a2|² + |a3|²` is too small for a
    /// stable reconstruction (first row aligned with the color-1 axis);
    /// callers should store such links uncompressed or at 12 reals.
    pub fn encode(u: &Su3<R>) -> Result<Self> {
        let a1 = u.m[0][0];
        let a2 = u.m[0][1];
        let a3 = u.m[0][2];
        let b1 = u.m[1][0];
        let c1 = u.m[2][0];
        let tail = a2.norm_sqr() + a3.norm_sqr();
        if tail.to_f64() < Self::DEGENERATE_TOL {
            return Err(Error::Shape(
                "8-real compression degenerate: first row ≈ (e^{iθ}, 0, 0)".into(),
            ));
        }
        Ok(Self {
            a2,
            a3,
            b1,
            theta_a1: R::from_f64(a1.im.to_f64().atan2(a1.re.to_f64())),
            theta_c1: R::from_f64(c1.im.to_f64().atan2(c1.re.to_f64())),
        })
    }

    /// Reconstruct the full SU(3) matrix.
    ///
    /// With row 0 = `(a1, a2, a3)` and column 0 = `(a1, b1, c1)`:
    /// `|a1| = √(1 − |a2|² − |a3|²)` fixes `a1` given its stored phase;
    /// `|c1| = √(1 − |a1|² − |b1|²)` fixes `c1` likewise; the remaining
    /// four elements solve the 2×2 linear system given by row-orthogonality
    /// `row1 · row0* = 0` and the determinant condition
    /// `c1 = conj(a2·b3 − a3·b2)`.
    pub fn decode(&self) -> Su3<R> {
        let (a2, a3, b1) = (self.a2, self.a3, self.b1);
        let tail = a2.norm_sqr() + a3.norm_sqr();
        let a1_abs = (R::ONE - tail).max(R::ZERO).sqrt();
        let (s1, c1p) = {
            let t = self.theta_a1.to_f64();
            (R::from_f64(t.sin()), R::from_f64(t.cos()))
        };
        let a1 = Complex::new(a1_abs * c1p, a1_abs * s1);
        let c1_abs = (R::ONE - a1.norm_sqr() - b1.norm_sqr()).max(R::ZERO).sqrt();
        let (s2, c2p) = {
            let t = self.theta_c1.to_f64();
            (R::from_f64(t.sin()), R::from_f64(t.cos()))
        };
        let c1 = Complex::new(c1_abs * c2p, c1_abs * s2);

        // Solve  [a2*  a3*] [b2]   [−a1*·b1]
        //        [−a3  a2 ] [b3] = [ c1*   ]
        let det = Complex::from_re(tail);
        let r1 = -(a1.conj() * b1);
        let r2 = c1.conj();
        let b2 = (r1 * a2 - r2 * a3.conj()) / det;
        let b3 = (a2.conj() * r2 - a3 * a1.conj() * b1) / det;

        // Row 2 from the cross product: row2 = conj(row0 × row1), with the
        // first element replaced by the reconstructed c1 (identical up to
        // rounding; using c1 keeps the stored phase exact).
        let c2 = (a3 * b1 - a1 * b3).conj();
        let c3 = (a1 * b2 - a2 * b1).conj();

        Su3 { m: [[a1, a2, a3], [b1, b2, b3], [c1, c2, c3]] }
    }

    /// Flatten to 8 reals.
    pub fn to_reals(&self) -> [R; 8] {
        [
            self.a2.re,
            self.a2.im,
            self.a3.re,
            self.a3.im,
            self.b1.re,
            self.b1.im,
            self.theta_a1,
            self.theta_c1,
        ]
    }

    /// Rebuild from 8 reals.
    pub fn from_reals(r: &[R; 8]) -> Self {
        Self {
            a2: Complex::new(r[0], r[1]),
            a3: Complex::new(r[2], r[3]),
            b1: Complex::new(r[4], r[5]),
            theta_a1: r[6],
            theta_c1: r[7],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqcd_util::rng::SeedTree;
    use proptest::prelude::*;

    fn rand_su3(seed: u64) -> Su3<f64> {
        Su3::random(&mut SeedTree::new(seed).rng())
    }

    fn matrix_close(a: &Su3<f64>, b: &Su3<f64>, tol: f64) -> bool {
        a.sub(b).norm_sqr().sqrt() < tol
    }

    #[test]
    fn twelve_roundtrip_is_exact_to_rounding() {
        for seed in 0..30 {
            let u = rand_su3(seed);
            let v = Su3Compressed12::encode(&u).decode();
            assert!(matrix_close(&u, &v, 1e-13), "seed {seed}");
        }
    }

    #[test]
    fn twelve_reals_roundtrip() {
        let u = rand_su3(1);
        let c = Su3Compressed12::encode(&u);
        assert_eq!(Su3Compressed12::from_reals(&c.to_reals()), c);
    }

    #[test]
    fn eight_roundtrip_on_random_links() {
        for seed in 0..30 {
            let u = rand_su3(seed);
            let v = Su3Compressed8::encode(&u).unwrap().decode();
            assert!(
                matrix_close(&u, &v, 1e-10),
                "seed {seed}: error {}",
                u.sub(&v).norm_sqr().sqrt()
            );
        }
    }

    #[test]
    fn eight_reconstruction_is_special_unitary() {
        for seed in 0..10 {
            let u = rand_su3(seed + 100);
            let v = Su3Compressed8::encode(&u).unwrap().decode();
            assert!(v.unitarity_error() < 1e-10);
            assert!((v.det() - Complex::one()).abs() < 1e-10);
        }
    }

    #[test]
    fn eight_rejects_degenerate_first_row() {
        let u = Su3::<f64>::identity();
        assert!(Su3Compressed8::encode(&u).is_err());
    }

    #[test]
    fn eight_reals_roundtrip() {
        let u = rand_su3(2);
        let c = Su3Compressed8::encode(&u).unwrap();
        assert_eq!(Su3Compressed8::from_reals(&c.to_reals()), c);
    }

    #[test]
    fn reconstruct_reals_counts() {
        assert_eq!(Reconstruct::None.reals(), 18);
        assert_eq!(Reconstruct::Twelve.reals(), 12);
        assert_eq!(Reconstruct::Eight.reals(), 8);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_compression_roundtrips(seed in 0u64..10_000) {
            let u = rand_su3(seed);
            let v12 = Su3Compressed12::encode(&u).decode();
            prop_assert!(matrix_close(&u, &v12, 1e-12));
            let v8 = Su3Compressed8::encode(&u).unwrap().decode();
            prop_assert!(matrix_close(&u, &v8, 1e-9));
        }
    }
}

//! Wilson 4-spinors: 4 spin × 3 color complex components per site.

use crate::vector::ColorVector;
use crate::NSPIN;
use lqcd_util::{Complex, Real};
use rand::Rng;

/// A Wilson color-spinor: 12 complex (24 real) numbers per site, organized
/// as 4 spin components each carrying a color vector (paper §2.2).
#[derive(Copy, Clone, Debug, PartialEq)]
#[repr(C)]
pub struct WilsonSpinor<R> {
    /// Spin-major storage: `s[spin]` is the color vector of that spin.
    pub s: [ColorVector<R>; NSPIN],
}

impl<R: Real> Default for WilsonSpinor<R> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<R: Real> WilsonSpinor<R> {
    /// The zero spinor.
    pub fn zero() -> Self {
        Self { s: [ColorVector::zero(); NSPIN] }
    }

    /// Build from a closure over the spin index.
    pub fn from_fn(mut f: impl FnMut(usize) -> ColorVector<R>) -> Self {
        let mut p = Self::zero();
        for (i, e) in p.s.iter_mut().enumerate() {
            *e = f(i);
        }
        p
    }

    /// Componentwise sum.
    #[inline(always)]
    pub fn add(&self, rhs: &Self) -> Self {
        Self::from_fn(|i| self.s[i].add(&rhs.s[i]))
    }

    /// Componentwise difference.
    #[inline(always)]
    pub fn sub(&self, rhs: &Self) -> Self {
        Self::from_fn(|i| self.s[i].sub(&rhs.s[i]))
    }

    /// Scale by a real factor.
    #[inline(always)]
    pub fn scale(&self, a: R) -> Self {
        Self::from_fn(|i| self.s[i].scale(a))
    }

    /// Scale by a complex factor.
    #[inline(always)]
    pub fn scale_c(&self, a: Complex<R>) -> Self {
        Self::from_fn(|i| self.s[i].scale_c(a))
    }

    /// Inner product, conjugate-linear in `self`.
    #[inline(always)]
    pub fn dot(&self, rhs: &Self) -> Complex<R> {
        let mut acc = Complex::zero();
        for i in 0..NSPIN {
            acc += self.s[i].dot(&rhs.s[i]);
        }
        acc
    }

    /// Squared 2-norm over all 24 reals.
    #[inline(always)]
    pub fn norm_sqr(&self) -> R {
        self.s.iter().map(|v| v.norm_sqr()).sum()
    }

    /// Gaussian random spinor.
    pub fn random<G: Rng>(rng: &mut G) -> Self {
        Self::from_fn(|_| ColorVector::random(rng))
    }

    /// Convert to another precision through `f64`.
    pub fn cast<S: Real>(&self) -> WilsonSpinor<S> {
        WilsonSpinor::from_fn(|i| self.s[i].cast())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqcd_util::rng::SeedTree;

    type P = WilsonSpinor<f64>;

    #[test]
    fn linear_structure() {
        let t = SeedTree::new(1);
        let mut rng = t.rng();
        let a = P::random(&mut rng);
        let b = P::random(&mut rng);
        assert_eq!(a.add(&b), b.add(&a));
        assert!(a.sub(&a).norm_sqr() == 0.0);
        assert!((a.scale(3.0).norm_sqr() - 9.0 * a.norm_sqr()).abs() < 1e-10);
    }

    #[test]
    fn dot_consistent_with_norm() {
        let t = SeedTree::new(2);
        let mut rng = t.rng();
        let a = P::random(&mut rng);
        assert!((a.dot(&a).re - a.norm_sqr()).abs() < 1e-10);
        assert!(a.dot(&a).im.abs() < 1e-12);
        let b = P::random(&mut rng);
        assert!((a.dot(&b) - b.dot(&a).conj()).abs() < 1e-10);
    }

    #[test]
    fn cast_roundtrip_through_f32_is_close() {
        let t = SeedTree::new(3);
        let a = P::random(&mut t.rng());
        let b: WilsonSpinor<f32> = a.cast();
        assert!(a.sub(&b.cast()).norm_sqr() < 1e-10);
    }
}

//! 3×3 complex color matrices and the SU(3) group operations on them.

use crate::vector::ColorVector;
use crate::NCOLOR;
use lqcd_util::{Complex, Real};
use rand::Rng;

/// A 3×3 complex matrix in color space.
///
/// Gauge links `Uµ(x)` are elements of SU(3); smeared ("fat") staggered
/// links are general 3×3 complex matrices, so `Su3` does not enforce
/// unitarity — [`Su3::reunitarize`] projects back onto the group when
/// needed.
#[derive(Copy, Clone, Debug, PartialEq)]
#[repr(C)]
pub struct Su3<R> {
    /// Row-major storage: `m[row][col]`.
    pub m: [[Complex<R>; NCOLOR]; NCOLOR],
}

impl<R: Real> Default for Su3<R> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<R: Real> Su3<R> {
    /// The zero matrix.
    pub fn zero() -> Self {
        Self { m: [[Complex::zero(); NCOLOR]; NCOLOR] }
    }

    /// The identity matrix (the "cold" gauge link).
    pub fn identity() -> Self {
        let mut u = Self::zero();
        for i in 0..NCOLOR {
            u.m[i][i] = Complex::one();
        }
        u
    }

    /// Build from a row-major closure.
    pub fn from_fn(mut f: impl FnMut(usize, usize) -> Complex<R>) -> Self {
        let mut u = Self::zero();
        for (i, row) in u.m.iter_mut().enumerate() {
            for (j, e) in row.iter_mut().enumerate() {
                *e = f(i, j);
            }
        }
        u
    }

    /// Matrix product `self · rhs`.
    #[inline]
    pub fn mul(&self, rhs: &Self) -> Self {
        let mut out = Self::zero();
        for i in 0..NCOLOR {
            for k in 0..NCOLOR {
                let a = self.m[i][k];
                for j in 0..NCOLOR {
                    out.m[i][j] = Complex::mul_acc(out.m[i][j], a, rhs.m[k][j]);
                }
            }
        }
        out
    }

    /// Hermitian conjugate (adjoint) `U†`.
    #[inline]
    pub fn adjoint(&self) -> Self {
        Self::from_fn(|i, j| self.m[j][i].conj())
    }

    /// `self · v` on a color vector.
    #[inline(always)]
    pub fn mul_vec(&self, v: &ColorVector<R>) -> ColorVector<R> {
        let mut out = ColorVector::zero();
        for i in 0..NCOLOR {
            let mut acc = Complex::zero();
            for j in 0..NCOLOR {
                acc = Complex::mul_acc(acc, self.m[i][j], v.c[j]);
            }
            out.c[i] = acc;
        }
        out
    }

    /// `self† · v` without forming the adjoint.
    #[inline(always)]
    pub fn adj_mul_vec(&self, v: &ColorVector<R>) -> ColorVector<R> {
        let mut out = ColorVector::zero();
        for i in 0..NCOLOR {
            let mut acc = Complex::zero();
            for j in 0..NCOLOR {
                acc = Complex::mul_acc(acc, self.m[j][i].conj(), v.c[j]);
            }
            out.c[i] = acc;
        }
        out
    }

    /// Sum of two matrices.
    #[inline]
    pub fn add(&self, rhs: &Self) -> Self {
        Self::from_fn(|i, j| self.m[i][j] + rhs.m[i][j])
    }

    /// Difference of two matrices.
    #[inline]
    pub fn sub(&self, rhs: &Self) -> Self {
        Self::from_fn(|i, j| self.m[i][j] - rhs.m[i][j])
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(&self, s: R) -> Self {
        Self::from_fn(|i, j| self.m[i][j].scale(s))
    }

    /// Scale by a complex factor.
    #[inline]
    pub fn scale_c(&self, s: Complex<R>) -> Self {
        Self::from_fn(|i, j| self.m[i][j] * s)
    }

    /// Matrix trace.
    #[inline]
    pub fn trace(&self) -> Complex<R> {
        self.m[0][0] + self.m[1][1] + self.m[2][2]
    }

    /// Determinant (Laplace expansion along the first row).
    pub fn det(&self) -> Complex<R> {
        let m = &self.m;
        let c0 = m[1][1] * m[2][2] - m[1][2] * m[2][1];
        let c1 = m[1][0] * m[2][2] - m[1][2] * m[2][0];
        let c2 = m[1][0] * m[2][1] - m[1][1] * m[2][0];
        m[0][0] * c0 - m[0][1] * c1 + m[0][2] * c2
    }

    /// Frobenius norm squared `Σ |m_ij|²`.
    pub fn norm_sqr(&self) -> R {
        let mut s = R::ZERO;
        for row in &self.m {
            for e in row {
                s += e.norm_sqr();
            }
        }
        s
    }

    /// Deviation from unitarity: `‖U U† − 1‖_F`.
    pub fn unitarity_error(&self) -> R {
        let uu = self.mul(&self.adjoint());
        let mut s = R::ZERO;
        for i in 0..NCOLOR {
            for j in 0..NCOLOR {
                let target = if i == j { Complex::one() } else { Complex::zero() };
                s += (uu.m[i][j] - target).norm_sqr();
            }
        }
        s.sqrt()
    }

    /// Project onto SU(3) by Gram–Schmidt on the rows followed by fixing
    /// the third row to `conj(row0 × row1)`, which enforces `det = 1`.
    pub fn reunitarize(&self) -> Self {
        let mut r0 = [self.m[0][0], self.m[0][1], self.m[0][2]];
        let n0 = (r0[0].norm_sqr() + r0[1].norm_sqr() + r0[2].norm_sqr()).sqrt();
        for e in &mut r0 {
            *e /= n0;
        }
        let mut r1 = [self.m[1][0], self.m[1][1], self.m[1][2]];
        // r1 -= (r1 · r0*) r0
        let mut dot = Complex::zero();
        for k in 0..NCOLOR {
            dot = Complex::mul_acc(dot, r1[k], r0[k].conj());
        }
        for k in 0..NCOLOR {
            r1[k] -= dot * r0[k];
        }
        let n1 = (r1[0].norm_sqr() + r1[1].norm_sqr() + r1[2].norm_sqr()).sqrt();
        for e in &mut r1 {
            *e /= n1;
        }
        // r2 = conj(r0 × r1)
        let r2 = [
            (r0[1] * r1[2] - r0[2] * r1[1]).conj(),
            (r0[2] * r1[0] - r0[0] * r1[2]).conj(),
            (r0[0] * r1[1] - r0[1] * r1[0]).conj(),
        ];
        Self { m: [r0, r1, r2] }
    }

    /// A Haar-ish random SU(3) element: random complex Gaussian entries,
    /// reunitarized. Used for "hot" gauge starts.
    pub fn random<G: Rng>(rng: &mut G) -> Self {
        let mut u = Self::zero();
        for row in &mut u.m {
            for e in row.iter_mut() {
                let (a, b) = lqcd_util::rng::normal_pair(rng);
                *e = Complex::new(R::from_f64(a), R::from_f64(b));
            }
        }
        u.reunitarize()
    }

    /// A random SU(3) element near the identity: `exp`-like small
    /// perturbation of strength `eps ∈ [0, 1]`, reunitarized. `eps = 0`
    /// yields the identity; `eps = 1` approaches a fully random element.
    /// Used for tunable-disorder gauge fields (our stand-in for ensembles
    /// at different couplings).
    pub fn random_near_identity<G: Rng>(rng: &mut G, eps: f64) -> Self {
        let mut u = Self::identity();
        for row in &mut u.m {
            for e in row.iter_mut() {
                let (a, b) = lqcd_util::rng::normal_pair(rng);
                *e += Complex::new(R::from_f64(eps * a), R::from_f64(eps * b));
            }
        }
        u.reunitarize()
    }

    /// Convert to another precision through `f64`.
    pub fn cast<S: Real>(&self) -> Su3<S> {
        Su3::from_fn(|i, j| self.m[i][j].cast())
    }

    /// Flatten to 18 reals (row-major, re/im interleaved).
    pub fn to_reals(&self) -> [R; 18] {
        let mut out = [R::ZERO; 18];
        let mut k = 0;
        for row in &self.m {
            for e in row {
                out[k] = e.re;
                out[k + 1] = e.im;
                k += 2;
            }
        }
        out
    }

    /// Rebuild from 18 reals (inverse of [`Su3::to_reals`]).
    pub fn from_reals(r: &[R; 18]) -> Self {
        let mut u = Self::zero();
        let mut k = 0;
        for row in &mut u.m {
            for e in row.iter_mut() {
                *e = Complex::new(r[k], r[k + 1]);
                k += 2;
            }
        }
        u
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqcd_util::rng::SeedTree;

    type M = Su3<f64>;

    fn rand_su3(seed: u64) -> M {
        let tree = SeedTree::new(seed);
        M::random(&mut tree.rng())
    }

    #[test]
    fn identity_is_identity() {
        let i = M::identity();
        let u = rand_su3(1);
        assert!(i.mul(&u).sub(&u).norm_sqr() < 1e-28);
        assert!(u.mul(&i).sub(&u).norm_sqr() < 1e-28);
        assert_eq!(i.trace().re, 3.0);
    }

    #[test]
    fn random_elements_are_special_unitary() {
        for seed in 0..20 {
            let u = rand_su3(seed);
            assert!(u.unitarity_error() < 1e-12, "seed {seed}");
            let d = u.det();
            assert!((d.re - 1.0).abs() < 1e-12 && d.im.abs() < 1e-12, "seed {seed}: det {d}");
        }
    }

    #[test]
    fn group_closure() {
        let a = rand_su3(3);
        let b = rand_su3(4);
        let ab = a.mul(&b);
        assert!(ab.unitarity_error() < 1e-12);
        assert!((ab.det().abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn adjoint_is_inverse_on_group() {
        let u = rand_su3(5);
        let prod = u.mul(&u.adjoint());
        assert!(prod.sub(&M::identity()).norm_sqr() < 1e-24);
    }

    #[test]
    fn adj_mul_vec_matches_explicit_adjoint() {
        let u = rand_su3(6);
        let tree = SeedTree::new(99);
        let v = ColorVector::<f64>::random(&mut tree.rng());
        let a = u.adj_mul_vec(&v);
        let b = u.adjoint().mul_vec(&v);
        assert!(a.sub(&b).norm_sqr() < 1e-28);
    }

    #[test]
    fn mul_vec_is_linear_and_norm_preserving() {
        let u = rand_su3(7);
        let tree = SeedTree::new(100);
        let mut rng = tree.rng();
        let v = ColorVector::<f64>::random(&mut rng);
        let w = ColorVector::<f64>::random(&mut rng);
        let lin = u.mul_vec(&v.add(&w));
        let sum = u.mul_vec(&v).add(&u.mul_vec(&w));
        assert!(lin.sub(&sum).norm_sqr() < 1e-24);
        assert!((u.mul_vec(&v).norm_sqr() - v.norm_sqr()).abs() < 1e-12);
    }

    #[test]
    fn near_identity_interpolates() {
        let tree = SeedTree::new(8);
        let u0 = M::random_near_identity(&mut tree.rng(), 0.0);
        assert!(u0.sub(&M::identity()).norm_sqr() < 1e-24);
        let usmall = M::random_near_identity(&mut tree.rng(), 0.05);
        assert!(usmall.sub(&M::identity()).norm_sqr() < 0.2);
        assert!(usmall.unitarity_error() < 1e-12);
    }

    #[test]
    fn reals_roundtrip() {
        let u = rand_su3(9);
        assert_eq!(M::from_reals(&u.to_reals()), u);
    }

    #[test]
    fn det_of_product_is_product_of_dets() {
        let a = rand_su3(10);
        let b = rand_su3(11);
        let lhs = a.mul(&b).det();
        let rhs = a.det() * b.det();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn cast_to_f32_and_back_is_close() {
        let u = rand_su3(12);
        let v: Su3<f32> = u.cast();
        let back: Su3<f64> = v.cast();
        assert!(u.sub(&back).norm_sqr() < 1e-12);
    }

    #[test]
    fn reunitarize_fixes_perturbation() {
        let mut u = rand_su3(13);
        u.m[1][2] += Complex::new(0.1, -0.05);
        assert!(u.unitarity_error() > 1e-3);
        let v = u.reunitarize();
        assert!(v.unitarity_error() < 1e-12);
        assert!((v.det().abs() - 1.0).abs() < 1e-12);
    }
}

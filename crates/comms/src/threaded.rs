//! The threaded multi-rank backend: one thread per "GPU".
//!
//! Each rank owns a mailbox (an unbounded crossbeam channel). Sends are
//! non-blocking; receives match on `(source, tag)` with a pending queue to
//! tolerate out-of-order arrival across tags — the same matching semantics
//! MPI gives the paper's implementation. Reductions run as
//! gather-to-root + broadcast over the same mailboxes.

use crate::comm::Communicator;
use crossbeam::channel::{unbounded, Receiver, Sender};
use lqcd_lattice::ProcessGrid;
use lqcd_util::{Error, Result};
use std::collections::VecDeque;
use std::sync::Arc;

/// Message tags: exchanges carry `(mu, dir, sequence)`, reductions use
/// reserved tag spaces.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
struct Tag(u64);

const TAG_EXCHANGE: u64 = 0;
const TAG_REDUCE_UP: u64 = 1 << 60;
const TAG_REDUCE_DOWN: u64 = 2 << 60;

struct Message {
    from: usize,
    tag: Tag,
    payload: Vec<f64>,
}

/// Shared state for a world of ranks.
struct World {
    grid: ProcessGrid,
    senders: Vec<Sender<Message>>,
}

/// Per-rank handle to the threaded world.
pub struct ThreadedComm {
    world: Arc<World>,
    rank: usize,
    inbox: Receiver<Message>,
    pending: VecDeque<Message>,
    /// Per-(mu, dir) sequence numbers so repeated exchanges on the same
    /// edge match in order.
    seq: [[u64; 2]; 4],
    reduce_seq: u64,
}

impl ThreadedComm {
    /// Create communicators for every rank of `grid`. Index `i` of the
    /// returned vector belongs to rank `i`; hand each to its own thread.
    pub fn world(grid: ProcessGrid) -> Vec<ThreadedComm> {
        let n = grid.num_ranks();
        let mut senders = Vec::with_capacity(n);
        let mut inboxes = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            inboxes.push(rx);
        }
        let world = Arc::new(World { grid, senders });
        inboxes
            .into_iter()
            .enumerate()
            .map(|(rank, inbox)| ThreadedComm {
                world: world.clone(),
                rank,
                inbox,
                pending: VecDeque::new(),
                seq: [[0; 2]; 4],
                reduce_seq: 0,
            })
            .collect()
    }

    fn post(&self, to: usize, tag: Tag, payload: Vec<f64>) -> Result<()> {
        self.world.senders[to]
            .send(Message { from: self.rank, tag, payload })
            .map_err(|_| Error::Comms(format!("rank {to} mailbox closed")))
    }

    /// Blocking receive matching `(from, tag)`, buffering mismatches.
    fn recv_match(&mut self, from: usize, tag: Tag) -> Result<Vec<f64>> {
        if let Some(pos) = self.pending.iter().position(|m| m.from == from && m.tag == tag) {
            return Ok(self.pending.remove(pos).expect("position valid").payload);
        }
        loop {
            let msg = self
                .inbox
                .recv()
                .map_err(|_| Error::Comms(format!("rank {} inbox closed", self.rank)))?;
            if msg.from == from && msg.tag == tag {
                return Ok(msg.payload);
            }
            self.pending.push_back(msg);
        }
    }

    fn reduce(&mut self, vals: &mut [f64], combine: fn(f64, f64) -> f64) -> Result<()> {
        // Binary-tree-free, simple gather to rank 0 then broadcast:
        // adequate for the correctness path (the perf model prices
        // reductions independently).
        let n = self.world.grid.num_ranks();
        let seq = self.reduce_seq;
        self.reduce_seq += 1;
        let up = Tag(TAG_REDUCE_UP | seq);
        let down = Tag(TAG_REDUCE_DOWN | seq);
        if self.rank == 0 {
            for from in 1..n {
                let part = self.recv_match(from, up)?;
                if part.len() != vals.len() {
                    return Err(Error::Comms(format!(
                        "reduction length mismatch: {} vs {}",
                        part.len(),
                        vals.len()
                    )));
                }
                for (v, p) in vals.iter_mut().zip(part) {
                    *v = combine(*v, p);
                }
            }
            for to in 1..n {
                self.post(to, down, vals.to_vec())?;
            }
        } else {
            self.post(0, up, vals.to_vec())?;
            let result = self.recv_match(0, down)?;
            vals.copy_from_slice(&result);
        }
        Ok(())
    }
}

impl Communicator for ThreadedComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.world.grid.num_ranks()
    }

    fn grid(&self) -> &ProcessGrid {
        &self.world.grid
    }

    fn send_recv(
        &mut self,
        mu: usize,
        forward: bool,
        send: &[f64],
        recv: &mut [f64],
    ) -> Result<()> {
        let grid = &self.world.grid;
        let to = grid.neighbor_rank(self.rank, mu, forward);
        let from = grid.neighbor_rank(self.rank, mu, !forward);
        let dir = forward as usize;
        let seq = self.seq[mu][dir];
        self.seq[mu][dir] += 1;
        // Tag layout: [mu:2][dir:1][seq:rest] inside the exchange space.
        let tag = Tag(TAG_EXCHANGE | ((mu as u64) << 57) | ((dir as u64) << 56) | seq);
        self.post(to, tag, send.to_vec())?;
        let payload = self.recv_match(from, tag)?;
        if payload.len() != recv.len() {
            return Err(Error::Comms(format!(
                "exchange length mismatch: got {} expected {}",
                payload.len(),
                recv.len()
            )));
        }
        recv.copy_from_slice(&payload);
        Ok(())
    }

    fn allreduce_sum(&mut self, vals: &mut [f64]) -> Result<()> {
        self.reduce(vals, |a, b| a + b)
    }

    fn allreduce_max(&mut self, vals: &mut [f64]) -> Result<()> {
        self.reduce(vals, f64::max)
    }
}

/// SPMD launcher: run `body` once per rank of `grid`, each on its own
/// thread with its own communicator; returns the per-rank results in rank
/// order. Panics in any rank propagate.
pub fn run_on_grid<T, F>(grid: ProcessGrid, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(ThreadedComm) -> T + Sync,
{
    let comms = ThreadedComm::world(grid);
    let mut out: Vec<Option<T>> = comms.iter().map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (rank, comm) in comms.into_iter().enumerate() {
            let body = &body;
            handles.push((rank, scope.spawn(move |_| body(comm))));
        }
        for (rank, h) in handles {
            out[rank] = Some(h.join().expect("rank thread panicked"));
        }
    })
    .expect("scope failed");
    out.into_iter().map(|x| x.expect("rank result missing")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqcd_lattice::Dims;

    fn grid_1d(n: usize) -> ProcessGrid {
        ProcessGrid::new(Dims([1, 1, 1, n]), Dims([4, 4, 4, (4 * n).max(8)])).unwrap()
    }

    #[test]
    fn ring_shift_forward() {
        let n = 4;
        let results = run_on_grid(grid_1d(n), |mut comm| {
            let me = comm.rank() as f64;
            let mut recv = [0.0f64];
            comm.send_recv(3, true, &[me], &mut recv).unwrap();
            recv[0]
        });
        // Receiving from the backward neighbour: rank r gets r−1 (mod n).
        for (r, &got) in results.iter().enumerate() {
            let want = ((r + n - 1) % n) as f64;
            assert_eq!(got, want, "rank {r}");
        }
    }

    #[test]
    fn ring_shift_backward() {
        let n = 3;
        let results = run_on_grid(grid_1d(n), |mut comm| {
            let me = comm.rank() as f64;
            let mut recv = [0.0f64];
            comm.send_recv(3, false, &[me], &mut recv).unwrap();
            recv[0]
        });
        for (r, &got) in results.iter().enumerate() {
            assert_eq!(got, ((r + 1) % n) as f64, "rank {r}");
        }
    }

    #[test]
    fn allreduce_sum_and_max() {
        let n = 5;
        let results = run_on_grid(grid_1d(n), |mut comm| {
            let r = comm.rank() as f64;
            let sum = comm.sum_scalar(r).unwrap();
            let mut mx = [r];
            comm.allreduce_max(&mut mx).unwrap();
            (sum, mx[0])
        });
        for &(sum, mx) in &results {
            assert_eq!(sum, (0..n).sum::<usize>() as f64);
            assert_eq!(mx, (n - 1) as f64);
        }
    }

    #[test]
    fn interleaved_exchanges_match_in_order() {
        // Two back-to-back exchanges on the same edge must not cross.
        let n = 2;
        let results = run_on_grid(grid_1d(n), |mut comm| {
            let me = comm.rank() as f64;
            let mut r1 = [0.0f64];
            let mut r2 = [0.0f64];
            comm.send_recv(3, true, &[me * 10.0], &mut r1).unwrap();
            comm.send_recv(3, true, &[me * 10.0 + 1.0], &mut r2).unwrap();
            (r1[0], r2[0])
        });
        assert_eq!(results[0], (10.0, 11.0));
        assert_eq!(results[1], (0.0, 1.0));
    }

    #[test]
    fn multi_dim_exchange_2x2() {
        let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), Dims([4, 4, 8, 8])).unwrap();
        let results = run_on_grid(grid.clone(), |mut comm| {
            let me = comm.rank() as f64;
            let mut rz = [0.0f64];
            let mut rt = [0.0f64];
            // Exchange in Z then T.
            comm.send_recv(2, true, &[me], &mut rz).unwrap();
            comm.send_recv(3, false, &[me], &mut rt).unwrap();
            (rz[0], rt[0])
        });
        for rank in 0..grid.num_ranks() {
            let from_z = grid.neighbor_rank(rank, 2, false) as f64;
            let from_t = grid.neighbor_rank(rank, 3, true) as f64;
            assert_eq!(results[rank], (from_z, from_t), "rank {rank}");
        }
    }

    #[test]
    fn mismatched_lengths_error() {
        let results = run_on_grid(grid_1d(2), |mut comm| {
            let mut recv = [0.0f64; 2];
            comm.send_recv(3, true, &[1.0], &mut recv).err().is_some()
        });
        assert!(results.iter().all(|&e| e));
    }

    #[test]
    fn barrier_completes() {
        let results = run_on_grid(grid_1d(3), |mut comm| comm.barrier().is_ok());
        assert!(results.iter().all(|&ok| ok));
    }
}

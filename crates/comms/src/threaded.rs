//! The threaded multi-rank backend: one thread per "GPU".
//!
//! Each rank owns a mailbox (an unbounded `std::sync::mpsc` channel).
//! Sends are non-blocking; receives match on `(source, tag)` with a
//! pending queue to tolerate out-of-order arrival across tags — the same
//! matching semantics MPI gives the paper's implementation. Reductions
//! run as gather-to-root + broadcast over the same mailboxes.
//!
//! On top of that sits the fault-tolerance layer this crate's chaos
//! tests exercise:
//!
//! * **Deadline receives** — every receive polls in short
//!   `recv_timeout` slices against a [`CommConfig`] deadline and returns
//!   [`Error::Timeout`] instead of blocking forever;
//! * **Retry/ack protocol** — with `retries > 0`, exchanges become a
//!   stop-and-wait ARQ: data messages are acknowledged, retransmitted on
//!   backoff expiry, and deduplicated by sequence number, so dropped or
//!   duplicated messages are survived transparently (reductions use the
//!   root's broadcast as the implicit ack and retransmit their upward
//!   contributions);
//! * **World poisoning** — when a rank dies, [`PoisonHandle::poison`]
//!   marks the shared world; every other rank's receive loop notices
//!   within one poll slice and returns [`Error::RankFailure`] instead of
//!   waiting out its deadline;
//! * **Fault injection** — a [`crate::faulty::FaultPlan`] attached at
//!   world construction intercepts messages on the wire (drop,
//!   duplicate, delay, corrupt) deterministically.

use crate::comm::{Communicator, ExchangeHandle, HandleState};
use crate::faulty::{FaultKind, FaultState};
use lqcd_lattice::ProcessGrid;
use lqcd_util::{trace, Error, Result};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Message tags: exchanges carry `(mu, dir, sequence)`, acks mirror the
/// data tag they acknowledge, reductions use reserved tag spaces.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
struct Tag(u64);

pub(crate) const TAG_CLASS_MASK: u64 = 3 << 60;
pub(crate) const TAG_EXCHANGE: u64 = 0;
pub(crate) const TAG_REDUCE_UP: u64 = 1 << 60;
pub(crate) const TAG_REDUCE_DOWN: u64 = 2 << 60;
pub(crate) const TAG_ACK: u64 = 3 << 60;
const TAG_MU_SHIFT: u32 = 57;
const TAG_DIR_SHIFT: u32 = 56;
const TAG_SEQ_MASK: u64 = (1 << 56) - 1;

pub(crate) fn tag_class(tag: u64) -> u64 {
    tag & TAG_CLASS_MASK
}

pub(crate) fn tag_mu(tag: u64) -> usize {
    ((tag >> TAG_MU_SHIFT) & 0b11) as usize
}

fn tag_dir(tag: u64) -> usize {
    ((tag >> TAG_DIR_SHIFT) & 1) as usize
}

fn tag_seq(tag: u64) -> u64 {
    tag & TAG_SEQ_MASK
}

/// Encode a reduction tag: `class | seq`, with `seq` masked into the
/// 56-bit sequence field so a long-running world's counter can never
/// bleed into the class/mu/dir bits and corrupt the tag class.
fn reduce_tag(class: u64, seq: u64) -> Tag {
    debug_assert!(
        seq <= TAG_SEQ_MASK,
        "reduction sequence 0x{seq:x} overflows the 56-bit tag field"
    );
    Tag(class | (seq & TAG_SEQ_MASK))
}

/// Encode an exchange tag from its `(mu, dir, seq)` coordinates, with
/// the same sequence-field masking as [`reduce_tag`].
fn exchange_tag(mu: usize, dir: usize, seq: u64) -> Tag {
    debug_assert!(
        seq <= TAG_SEQ_MASK,
        "exchange sequence 0x{seq:x} overflows the 56-bit tag field"
    );
    Tag(TAG_EXCHANGE
        | ((mu as u64) << TAG_MU_SHIFT)
        | ((dir as u64) << TAG_DIR_SHIFT)
        | (seq & TAG_SEQ_MASK))
}

/// Granularity of the receive poll: how often a blocked receive checks
/// the poison flag and retransmit schedule.
const POLL_SLICE: Duration = Duration::from_millis(20);

/// Deadline/retry policy for a threaded world.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommConfig {
    /// Hard deadline per receive operation; when it expires the receive
    /// returns [`Error::Timeout`] instead of blocking further.
    pub timeout: Duration,
    /// Number of retransmissions per exchange (`0` disables the
    /// ack/retransmit protocol entirely: sends are fire-and-forget and a
    /// lost message surfaces as a timeout).
    pub retries: u32,
    /// How long to wait for an ack before retransmitting.
    pub backoff: Duration,
}

impl Default for CommConfig {
    fn default() -> Self {
        CommConfig {
            timeout: Duration::from_secs(30),
            retries: 0,
            backoff: Duration::from_millis(40),
        }
    }
}

impl CommConfig {
    /// A config suited to chaos tests: short deadline, ARQ enabled.
    pub fn resilient() -> Self {
        CommConfig {
            timeout: Duration::from_secs(10),
            retries: 8,
            backoff: Duration::from_millis(25),
        }
    }

    /// Override the receive deadline.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Override the retransmission budget.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Override the retransmission backoff.
    pub fn with_backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }
}

struct Message {
    from: usize,
    tag: Tag,
    payload: Vec<f64>,
}

/// Shared state for a world of ranks: the grid, the deadline policy,
/// the poison flag raised when a rank dies, and the optional fault
/// plan. (Mailbox senders are cloned per rank rather than shared here.)
struct World {
    grid: ProcessGrid,
    config: CommConfig,
    poisoned: AtomicBool,
    dead: Mutex<Vec<(usize, String)>>,
    faults: Option<Arc<FaultState>>,
}

/// A cloneable handle that can mark the world as having lost a rank.
/// Blocked peers observe the flag within one poll slice and fail their
/// pending operation with [`Error::RankFailure`].
#[derive(Clone)]
pub struct PoisonHandle {
    world: Arc<World>,
}

impl PoisonHandle {
    /// Record that `rank` died with `detail` and wake all blocked peers.
    pub fn poison(&self, rank: usize, detail: String) {
        self.world.dead.lock().unwrap_or_else(|e| e.into_inner()).push((rank, detail));
        self.world.poisoned.store(true, Ordering::Release);
    }

    /// Whether any rank has died.
    pub fn is_poisoned(&self) -> bool {
        self.world.poisoned.load(Ordering::Acquire)
    }
}

/// A communicator backed by a shared threaded world, from which a
/// [`PoisonHandle`] can be extracted (used by the fallible launcher to
/// wake peers when this rank's body panics).
pub trait WorldComm: Communicator {
    /// Handle onto this communicator's world poison flag.
    fn poison_handle(&self) -> PoisonHandle;
}

/// Per-rank handle to the threaded world.
pub struct ThreadedComm {
    world: Arc<World>,
    senders: Vec<Sender<Message>>,
    rank: usize,
    inbox: Receiver<Message>,
    pending: VecDeque<Message>,
    /// Per-(mu, dir) sequence numbers so repeated exchanges on the same
    /// edge match in order. Assigned when an exchange *starts*.
    seq: [[u64; 2]; 4],
    /// Per-(mu, dir) completion watermark: sequence numbers below it are
    /// finished, so a matching arrival is a stale retransmit to dedup.
    /// Distinct from `seq` because nonblocking exchanges can be started
    /// (counter bumped) long before they complete — their data must not
    /// be mistaken for a stale duplicate while they are in flight.
    done: [[u64; 2]; 4],
    reduce_seq: u64,
    /// Root's cached result of the last completed reduction, re-sent
    /// when a stale upward retransmit shows the original broadcast was
    /// lost.
    last_reduce: Option<(u64, Vec<f64>)>,
    /// Retransmissions performed (exchanges and reductions).
    retries_performed: u64,
}

impl ThreadedComm {
    /// Create communicators for every rank of `grid` with the default
    /// (no-retry, long-deadline) policy. Index `i` of the returned
    /// vector belongs to rank `i`; hand each to its own thread.
    pub fn world(grid: ProcessGrid) -> Vec<ThreadedComm> {
        Self::build_world(grid, CommConfig::default(), None)
    }

    /// Create communicators with an explicit deadline/retry policy.
    pub fn world_with(grid: ProcessGrid, config: CommConfig) -> Vec<ThreadedComm> {
        Self::build_world(grid, config, None)
    }

    pub(crate) fn build_world(
        grid: ProcessGrid,
        config: CommConfig,
        faults: Option<Arc<FaultState>>,
    ) -> Vec<ThreadedComm> {
        let n = grid.num_ranks();
        let mut senders = Vec::with_capacity(n);
        let mut inboxes = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            senders.push(tx);
            inboxes.push(rx);
        }
        let world = Arc::new(World {
            grid,
            config,
            poisoned: AtomicBool::new(false),
            dead: Mutex::new(Vec::new()),
            faults,
        });
        inboxes
            .into_iter()
            .enumerate()
            .map(|(rank, inbox)| ThreadedComm {
                world: world.clone(),
                senders: senders.clone(),
                rank,
                inbox,
                pending: VecDeque::new(),
                seq: [[0; 2]; 4],
                done: [[0; 2]; 4],
                reduce_seq: 0,
                last_reduce: None,
                retries_performed: 0,
            })
            .collect()
    }

    fn config(&self) -> CommConfig {
        self.world.config
    }

    fn check_poison(&self) -> Result<()> {
        if self.world.poisoned.load(Ordering::Acquire) {
            let dead = self.world.dead.lock().unwrap_or_else(|e| e.into_inner());
            let (rank, detail) =
                dead.first().cloned().unwrap_or((usize::MAX, "world poisoned".to_string()));
            return Err(Error::RankFailure { rank, detail });
        }
        Ok(())
    }

    /// Deliver a message, applying any wire faults the plan injects.
    fn post(&mut self, to: usize, tag: Tag, payload: Vec<f64>) -> Result<()> {
        self.check_poison()?;
        if trace::is_enabled() {
            let name = match tag_class(tag.0) {
                TAG_ACK => "send_ack",
                TAG_REDUCE_UP | TAG_REDUCE_DOWN => "send_reduce",
                _ => "send_exchange",
            };
            trace::instant(trace::Track::Comm, name, to as i64);
        }
        let mut payload = payload;
        let mut copies = 1usize;
        if let Some(faults) = &self.world.faults {
            match faults.wire_action(self.rank, to, tag.0) {
                None => {}
                Some(FaultKind::Drop) => return Ok(()),
                Some(FaultKind::Duplicate) => copies = 2,
                Some(FaultKind::Corrupt) => faults.corrupt(&mut payload),
                Some(FaultKind::Delay(delay)) => {
                    let sender = self.senders[to].clone();
                    let from = self.rank;
                    std::thread::spawn(move || {
                        std::thread::sleep(delay);
                        // The world may have shut down meanwhile; a
                        // closed mailbox just swallows the late message.
                        let _ = sender.send(Message { from, tag, payload });
                    });
                    return Ok(());
                }
                // Rank-level faults are injected by `FaultyComm`, not on
                // the wire.
                Some(FaultKind::Stall(_)) | Some(FaultKind::Die) => {}
            }
        }
        for i in 0..copies {
            let body = if i + 1 == copies { std::mem::take(&mut payload) } else { payload.clone() };
            // Sends are fire-and-forget: a closed mailbox means the peer
            // already exited. If it *completed* (e.g. the reduction root
            // posted its broadcast and returned while our retransmission
            // was in flight) nothing is owed to us; if it *died*, the
            // poison flag reports it at our next receive. Either way the
            // deadline bounds us — erroring here would turn a benign
            // shutdown race into a spurious failure.
            let _ = self.senders[to].send(Message { from: self.rank, tag, payload: body });
        }
        Ok(())
    }

    /// One bounded poll of the inbox.
    fn recv_slice(&mut self, dur: Duration) -> Result<Option<Message>> {
        match self.inbox.recv_timeout(dur) {
            Ok(msg) => Ok(Some(msg)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => {
                Err(Error::Comms(format!("rank {} inbox closed", self.rank)))
            }
        }
    }

    /// Take a matching message out of the pending queue, dropping any
    /// duplicate copies of it.
    fn take_pending(&mut self, from: usize, tag: Tag) -> Option<Vec<f64>> {
        let pos = self.pending.iter().position(|m| m.from == from && m.tag == tag)?;
        let msg = self.pending.remove(pos).expect("position valid");
        self.pending.retain(|m| !(m.from == from && m.tag == tag));
        Some(msg.payload)
    }

    /// File a message that doesn't match the operation in progress:
    /// future messages are queued for later matching; stale retransmits
    /// (sequence number below the edge's counter) are deduplicated and —
    /// under the ack protocol — re-acknowledged so their sender stops
    /// retransmitting.
    fn stash(&mut self, msg: Message) -> Result<()> {
        let t = msg.tag.0;
        let arq = self.config().retries > 0;
        match tag_class(t) {
            TAG_EXCHANGE => {
                let (mu, dir, seq) = (tag_mu(t), tag_dir(t), tag_seq(t));
                if seq < self.done[mu][dir] {
                    // Stale retransmit of an exchange we already
                    // completed: our ack was lost — re-ack and drop.
                    if arq {
                        let ack = Tag(TAG_ACK | (t & !TAG_CLASS_MASK));
                        self.post(msg.from, ack, Vec::new())?;
                    }
                } else {
                    self.pending.push_back(msg);
                }
            }
            TAG_ACK => {
                // An ack for an exchange still outstanding (several can
                // be in flight at once under the nonblocking API) must
                // be queued for that exchange's completion loop, or its
                // sender would retransmit for nothing. Only acks below
                // the completion watermark are droppable duplicates.
                let (mu, dir, seq) = (tag_mu(t), tag_dir(t), tag_seq(t));
                if seq >= self.done[mu][dir] {
                    self.pending.push_back(msg);
                }
            }
            TAG_REDUCE_UP => {
                // Contributions at or beyond the last *completed*
                // reduction belong to one in progress (they arrive out
                // of rank order while the root collects sequentially) —
                // queue them. Anything older is a stale retransmit whose
                // sender never saw our broadcast: re-send the cached
                // result if it's the most recent one.
                let seq = tag_seq(t);
                match &self.last_reduce {
                    Some((done, vals)) if seq <= *done => {
                        if seq == *done {
                            let vals = vals.clone();
                            self.post(msg.from, reduce_tag(TAG_REDUCE_DOWN, seq), vals)?;
                        }
                        // else: older than the cache — drop.
                    }
                    _ => self.pending.push_back(msg),
                }
            }
            _ => {
                // TAG_REDUCE_DOWN: the broadcast for the reduction in
                // progress (sequence `reduce_seq - 1`) is consumed by
                // the reduce loop itself, so anything strictly older is
                // a stale duplicate.
                if tag_seq(t) + 1 >= self.reduce_seq {
                    self.pending.push_back(msg);
                }
                // else: stale duplicate broadcast — drop.
            }
        }
        Ok(())
    }

    /// Deadline receive matching `(from, tag)`, polling in short slices
    /// so poisoning is observed promptly. `mu` only labels the error.
    fn recv_deadline(&mut self, from: usize, tag: Tag, mu: Option<usize>) -> Result<Vec<f64>> {
        if let Some(payload) = self.take_pending(from, tag) {
            return Ok(payload);
        }
        let timeout = self.config().timeout;
        let start = Instant::now();
        loop {
            self.check_poison()?;
            let waited = start.elapsed();
            if waited >= timeout {
                return Err(Error::Timeout { rank: self.rank, peer: from, mu, tag: tag.0, waited });
            }
            let slice = (timeout - waited).min(POLL_SLICE);
            if let Some(msg) = self.recv_slice(slice)? {
                if msg.from == from && msg.tag == tag {
                    return Ok(msg.payload);
                }
                self.stash(msg)?;
            }
        }
    }

    /// Completion half of a stop-and-wait ARQ exchange whose initial
    /// transmission went out at `posted_at` (see `start_send_recv`):
    /// retransmit on backoff expiry until acked, receive with dedup and
    /// acknowledgement, all under one deadline clocked from *this* call.
    fn complete_arq(
        &mut self,
        to: usize,
        from: usize,
        tag: Tag,
        posted_at: Instant,
        send: &[f64],
    ) -> Result<Vec<f64>> {
        let cfg = self.config();
        let ack_tag = Tag(TAG_ACK | (tag.0 & !TAG_CLASS_MASK));
        // Drain whatever already landed while the caller was computing
        // (the whole point of the nonblocking split), so an ack sitting
        // unread in the mailbox can't trigger a pointless retransmit.
        while let Some(msg) = self.recv_slice(Duration::ZERO)? {
            self.stash(msg)?;
        }
        let start = Instant::now();
        let mut next_send = posted_at + cfg.backoff;
        let mut sends_left = cfg.retries as u64;
        let mut got: Option<Vec<f64>> = None;
        let mut got_ack = false;
        loop {
            self.check_poison()?;
            // Harvest anything that arrived during earlier operations.
            if got.is_none() {
                if let Some(payload) = self.take_pending(from, tag) {
                    self.post(from, ack_tag, Vec::new())?;
                    got = Some(payload);
                }
            }
            if !got_ack && self.take_pending(to, ack_tag).is_some() {
                got_ack = true;
            }
            if let Some(payload) = got {
                if got_ack {
                    return Ok(payload);
                }
                got = Some(payload);
            }
            let waited = start.elapsed();
            if waited >= cfg.timeout {
                // Whichever message is still missing names the culprit.
                let (peer, tag) = if got.is_none() { (from, tag) } else { (to, ack_tag) };
                return Err(Error::Timeout {
                    rank: self.rank,
                    peer,
                    mu: Some(tag_mu(tag.0)),
                    tag: tag.0,
                    waited,
                });
            }
            let now = Instant::now();
            if !got_ack && now >= next_send && sends_left > 0 {
                self.retries_performed += 1;
                trace::instant(trace::Track::Comm, "arq_retry", tag_seq(tag.0) as i64);
                sends_left -= 1;
                next_send = now + cfg.backoff;
                self.post(to, tag, send.to_vec())?;
            }
            let mut slice = (cfg.timeout - waited).min(POLL_SLICE);
            if !got_ack && sends_left > 0 {
                slice = slice.min(next_send.saturating_duration_since(Instant::now()));
            }
            let Some(msg) = self.recv_slice(slice.max(Duration::from_millis(1)))? else {
                continue;
            };
            if msg.from == from && msg.tag == tag {
                // Data (or a duplicate of it): ack in both cases — a
                // duplicate means our previous ack was lost.
                self.post(from, ack_tag, Vec::new())?;
                if got.is_none() {
                    got = Some(msg.payload);
                }
            } else if msg.from == to && msg.tag == ack_tag {
                got_ack = true;
            } else {
                self.stash(msg)?;
            }
        }
    }

    fn reduce(&mut self, vals: &mut [f64], combine: fn(f64, f64) -> f64) -> Result<()> {
        // Gather to rank 0 then broadcast: adequate for the correctness
        // path (the perf model prices reductions independently). The
        // broadcast doubles as the ack of each upward contribution.
        let _sp = trace::span_arg(trace::Track::Comm, "allreduce", self.reduce_seq as i64);
        let n = self.world.grid.num_ranks();
        let cfg = self.config();
        let seq = self.reduce_seq;
        self.reduce_seq += 1;
        let up = reduce_tag(TAG_REDUCE_UP, seq);
        let down = reduce_tag(TAG_REDUCE_DOWN, seq);
        if self.rank == 0 {
            for from in 1..n {
                let part = self.recv_deadline(from, up, None)?;
                if part.len() != vals.len() {
                    return Err(Error::Comms(format!(
                        "reduction length mismatch at root: rank {from} sent {} values, \
                         expected {} (seq {seq})",
                        part.len(),
                        vals.len()
                    )));
                }
                for (v, p) in vals.iter_mut().zip(part) {
                    *v = combine(*v, p);
                }
            }
            for to in 1..n {
                self.post(to, down, vals.to_vec())?;
            }
            // Cache so a lost broadcast can be re-sent on a stale
            // upward retransmit.
            self.last_reduce = Some((seq, vals.to_vec()));
        } else {
            let start = Instant::now();
            let mut next_send = start;
            let mut sends_left = cfg.retries as u64 + 1;
            let result = loop {
                self.check_poison()?;
                if let Some(payload) = self.take_pending(0, down) {
                    break payload;
                }
                let waited = start.elapsed();
                if waited >= cfg.timeout {
                    return Err(Error::Timeout {
                        rank: self.rank,
                        peer: 0,
                        mu: None,
                        tag: down.0,
                        waited,
                    });
                }
                let now = Instant::now();
                if now >= next_send && sends_left > 0 {
                    if sends_left <= cfg.retries as u64 {
                        self.retries_performed += 1;
                        trace::instant(trace::Track::Comm, "arq_retry", seq as i64);
                    }
                    sends_left -= 1;
                    next_send = now + cfg.backoff;
                    self.post(0, up, vals.to_vec())?;
                }
                let mut slice = (cfg.timeout - waited).min(POLL_SLICE);
                if sends_left > 0 {
                    slice = slice.min(next_send.saturating_duration_since(Instant::now()));
                }
                let Some(msg) = self.recv_slice(slice.max(Duration::from_millis(1)))? else {
                    continue;
                };
                if msg.from == 0 && msg.tag == down {
                    break msg.payload;
                }
                self.stash(msg)?;
            };
            if result.len() != vals.len() {
                return Err(Error::Comms(format!(
                    "reduction length mismatch: root broadcast {} values, expected {} \
                     (rank {}, seq {seq})",
                    result.len(),
                    vals.len(),
                    self.rank
                )));
            }
            vals.copy_from_slice(&result);
        }
        // Drop leftover duplicates of this (or older) reductions that
        // retransmission may have queued.
        self.pending.retain(|m| {
            let t = m.tag.0;
            let class = tag_class(t);
            (class != TAG_REDUCE_UP && class != TAG_REDUCE_DOWN) || tag_seq(t) > seq
        });
        Ok(())
    }
}

impl Communicator for ThreadedComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.world.grid.num_ranks()
    }

    fn grid(&self) -> &ProcessGrid {
        &self.world.grid
    }

    fn send_recv(
        &mut self,
        mu: usize,
        forward: bool,
        send: &[f64],
        recv: &mut [f64],
    ) -> Result<()> {
        let handle = self.start_send_recv(mu, forward, send)?;
        self.complete_send_recv(handle, recv)
    }

    fn start_send_recv(
        &mut self,
        mu: usize,
        forward: bool,
        send: &[f64],
    ) -> Result<ExchangeHandle> {
        let grid = &self.world.grid;
        let to = grid.neighbor_rank(self.rank, mu, forward);
        let from = grid.neighbor_rank(self.rank, mu, !forward);
        let dir = forward as usize;
        let seq = self.seq[mu][dir];
        self.seq[mu][dir] += 1;
        // Tag layout: [class:2][_:1][mu:2][dir:1][seq:rest].
        let tag = exchange_tag(mu, dir, seq);
        // The payload is retained only when the ARQ protocol may need to
        // retransmit it; the fire-and-forget path stays allocation-lean.
        let resend = (self.config().retries > 0).then(|| send.to_vec());
        self.post(to, tag, send.to_vec())?;
        Ok(ExchangeHandle::posted(mu, forward, to, from, tag.0, Instant::now(), resend))
    }

    fn complete_send_recv(&mut self, handle: ExchangeHandle, recv: &mut [f64]) -> Result<()> {
        let (mu, forward) = (handle.mu, handle.forward);
        match handle.state {
            // A deferred handle (started on some other backend): honour
            // it with the blocking path.
            HandleState::Deferred(payload) => self.send_recv(mu, forward, &payload, recv),
            HandleState::Posted { to, from, tag, posted_at, resend } => {
                let t = Tag(tag);
                let payload = match &resend {
                    Some(send) => self.complete_arq(to, from, t, posted_at, send)?,
                    None => self.recv_deadline(from, t, Some(mu))?,
                };
                let (tmu, tdir, seq) = (tag_mu(tag), tag_dir(tag), tag_seq(tag));
                // Raise the completion watermark so stale retransmits of
                // this exchange dedup, and drop any duplicate acks it
                // queued.
                self.done[tmu][tdir] = self.done[tmu][tdir].max(seq + 1);
                let ack_tag = TAG_ACK | (tag & !TAG_CLASS_MASK);
                self.pending.retain(|m| m.tag.0 != ack_tag);
                if payload.len() != recv.len() {
                    return Err(Error::Comms(format!(
                        "exchange length mismatch: rank {} got {} values from peer {from}, \
                         expected {} (mu {mu}, dir {}, seq {seq})",
                        self.rank,
                        payload.len(),
                        recv.len(),
                        if forward { "fwd" } else { "bwd" },
                    )));
                }
                recv.copy_from_slice(&payload);
                Ok(())
            }
        }
    }

    fn allreduce_sum(&mut self, vals: &mut [f64]) -> Result<()> {
        self.reduce(vals, |a, b| a + b)
    }

    fn allreduce_max(&mut self, vals: &mut [f64]) -> Result<()> {
        self.reduce(vals, f64::max)
    }

    fn exchange_retries(&self) -> u64 {
        self.retries_performed
    }

    fn faults_survived(&self) -> u64 {
        self.world.faults.as_ref().map_or(0, |f| f.hits())
    }
}

impl WorldComm for ThreadedComm {
    fn poison_handle(&self) -> PoisonHandle {
        PoisonHandle { world: self.world.clone() }
    }
}

fn panic_payload(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Panic-safe SPMD launcher over pre-built communicators: run `body`
/// once per rank, each on its own thread. A panicking rank poisons the
/// world — so peers blocked on it fail fast with
/// [`Error::RankFailure`] instead of hanging — and its slot reports the
/// rank and panic payload.
pub fn run_world_fallible<C, T, F>(comms: Vec<C>, body: F) -> Vec<Result<T>>
where
    C: WorldComm + Send,
    T: Send,
    F: Fn(C) -> T + Sync,
{
    let mut out: Vec<Result<T>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (rank, comm) in comms.into_iter().enumerate() {
            let body = &body;
            let poison = comm.poison_handle();
            handles.push(scope.spawn(move || {
                // Route this rank thread's trace events to its own track
                // set for the lifetime of the body.
                let _trace = trace::rank_scope(rank);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(comm)));
                if let Err(payload) = &result {
                    // `comm` died inside the closure; wake everyone else.
                    poison.poison(rank, format!("panicked: {}", panic_payload(payload.as_ref())));
                }
                result
            }));
        }
        for (rank, h) in handles.into_iter().enumerate() {
            out.push(match h.join().expect("launcher thread infrastructure failed") {
                Ok(v) => Ok(v),
                Err(payload) => Err(Error::RankFailure {
                    rank,
                    detail: format!("panicked: {}", panic_payload(payload.as_ref())),
                }),
            });
        }
    });
    out
}

/// Fallible SPMD launcher over a fresh [`ThreadedComm`] world with the
/// given deadline/retry policy.
pub fn run_on_grid_fallible<T, F>(grid: ProcessGrid, config: CommConfig, body: F) -> Vec<Result<T>>
where
    T: Send,
    F: Fn(ThreadedComm) -> T + Sync,
{
    run_world_fallible(ThreadedComm::world_with(grid, config), body)
}

/// SPMD launcher: run `body` once per rank of `grid`, each on its own
/// thread with its own communicator; returns the per-rank results in
/// rank order. A panic in any rank propagates, naming the rank that
/// panicked and its payload (see [`run_on_grid_fallible`] for the
/// non-panicking variant).
pub fn run_on_grid<T, F>(grid: ProcessGrid, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(ThreadedComm) -> T + Sync,
{
    run_on_grid_fallible(grid, CommConfig::default(), body)
        .into_iter()
        .enumerate()
        .map(|(slot, r)| match r {
            Ok(v) => v,
            Err(Error::RankFailure { rank, detail }) => {
                panic!("rank {rank} {detail}")
            }
            Err(e) => panic!("rank {slot} failed: {e}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqcd_lattice::Dims;

    fn grid_1d(n: usize) -> ProcessGrid {
        ProcessGrid::new(Dims([1, 1, 1, n]), Dims([4, 4, 4, (4 * n).max(8)])).unwrap()
    }

    #[test]
    fn tag_round_trips_near_the_sequence_boundary() {
        // Regression: sequences at or past 2^56 must never bleed into
        // the class/mu/dir bits. The encode helpers mask, so the decoded
        // coordinates round-trip for every boundary-adjacent sequence.
        for seq in [0, 1, TAG_SEQ_MASK - 1, TAG_SEQ_MASK] {
            for (class, name) in [(TAG_REDUCE_UP, "up"), (TAG_REDUCE_DOWN, "down")] {
                let t = reduce_tag(class, seq).0;
                assert_eq!(tag_class(t), class, "class corrupted for {name} seq 0x{seq:x}");
                assert_eq!(tag_seq(t), seq & TAG_SEQ_MASK);
            }
            for mu in 0..4 {
                for dir in 0..2 {
                    let t = exchange_tag(mu, dir, seq).0;
                    assert_eq!(tag_class(t), TAG_EXCHANGE, "seq 0x{seq:x} bled into the class");
                    assert_eq!(tag_mu(t), mu);
                    assert_eq!(tag_dir(t), dir);
                    assert_eq!(tag_seq(t), seq & TAG_SEQ_MASK);
                }
            }
        }
        // Past the boundary the masked encode still yields a valid tag
        // of the right class (the sequence wraps; release builds must
        // not corrupt the class bits). debug_assert guards the invariant
        // in debug builds, so exercise the wrap in release terms here.
        #[cfg(not(debug_assertions))]
        {
            let t = reduce_tag(TAG_REDUCE_DOWN, TAG_SEQ_MASK + 5).0;
            assert_eq!(tag_class(t), TAG_REDUCE_DOWN);
            assert_eq!(tag_seq(t), 4);
            let e = exchange_tag(2, 1, TAG_SEQ_MASK + 5).0;
            assert_eq!(tag_class(e), TAG_EXCHANGE);
            assert_eq!(tag_mu(e), 2);
            assert_eq!(tag_seq(e), 4);
        }
    }

    #[test]
    fn ring_shift_forward() {
        let n = 4;
        let results = run_on_grid(grid_1d(n), |mut comm| {
            let me = comm.rank() as f64;
            let mut recv = [0.0f64];
            comm.send_recv(3, true, &[me], &mut recv).unwrap();
            recv[0]
        });
        // Receiving from the backward neighbour: rank r gets r−1 (mod n).
        for (r, &got) in results.iter().enumerate() {
            let want = ((r + n - 1) % n) as f64;
            assert_eq!(got, want, "rank {r}");
        }
    }

    #[test]
    fn ring_shift_backward() {
        let n = 3;
        let results = run_on_grid(grid_1d(n), |mut comm| {
            let me = comm.rank() as f64;
            let mut recv = [0.0f64];
            comm.send_recv(3, false, &[me], &mut recv).unwrap();
            recv[0]
        });
        for (r, &got) in results.iter().enumerate() {
            assert_eq!(got, ((r + 1) % n) as f64, "rank {r}");
        }
    }

    #[test]
    fn allreduce_sum_and_max() {
        let n = 5;
        let results = run_on_grid(grid_1d(n), |mut comm| {
            let r = comm.rank() as f64;
            let sum = comm.sum_scalar(r).unwrap();
            let mut mx = [r];
            comm.allreduce_max(&mut mx).unwrap();
            (sum, mx[0])
        });
        for &(sum, mx) in &results {
            assert_eq!(sum, (0..n).sum::<usize>() as f64);
            assert_eq!(mx, (n - 1) as f64);
        }
    }

    #[test]
    fn interleaved_exchanges_match_in_order() {
        // Two back-to-back exchanges on the same edge must not cross.
        let n = 2;
        let results = run_on_grid(grid_1d(n), |mut comm| {
            let me = comm.rank() as f64;
            let mut r1 = [0.0f64];
            let mut r2 = [0.0f64];
            comm.send_recv(3, true, &[me * 10.0], &mut r1).unwrap();
            comm.send_recv(3, true, &[me * 10.0 + 1.0], &mut r2).unwrap();
            (r1[0], r2[0])
        });
        assert_eq!(results[0], (10.0, 11.0));
        assert_eq!(results[1], (0.0, 1.0));
    }

    #[test]
    fn multi_dim_exchange_2x2() {
        let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), Dims([4, 4, 8, 8])).unwrap();
        let results = run_on_grid(grid.clone(), |mut comm| {
            let me = comm.rank() as f64;
            let mut rz = [0.0f64];
            let mut rt = [0.0f64];
            // Exchange in Z then T.
            comm.send_recv(2, true, &[me], &mut rz).unwrap();
            comm.send_recv(3, false, &[me], &mut rt).unwrap();
            (rz[0], rt[0])
        });
        for rank in 0..grid.num_ranks() {
            let from_z = grid.neighbor_rank(rank, 2, false) as f64;
            let from_t = grid.neighbor_rank(rank, 3, true) as f64;
            assert_eq!(results[rank], (from_z, from_t), "rank {rank}");
        }
    }

    #[test]
    fn mismatched_lengths_error_names_the_edge() {
        let results = run_on_grid(grid_1d(2), |mut comm| {
            let mut recv = [0.0f64; 2];
            comm.send_recv(3, true, &[1.0], &mut recv).err().map(|e| e.to_string())
        });
        for (rank, err) in results.iter().enumerate() {
            let msg = err.as_deref().expect("mismatch must error");
            assert!(msg.contains(&format!("rank {rank}")), "{msg}");
            assert!(msg.contains("mu 3"), "{msg}");
            assert!(msg.contains("seq 0"), "{msg}");
        }
    }

    #[test]
    fn barrier_completes() {
        let results = run_on_grid(grid_1d(3), |mut comm| comm.barrier().is_ok());
        assert!(results.iter().all(|&ok| ok));
    }

    #[test]
    fn exchanges_work_with_arq_enabled() {
        // The ack/retransmit protocol must be transparent when no faults
        // are injected.
        let config = CommConfig::resilient();
        let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), Dims([4, 4, 8, 8])).unwrap();
        let results = run_world_fallible(ThreadedComm::world_with(grid, config), |mut comm| {
            let me = comm.rank() as f64;
            let mut r1 = [0.0f64];
            let mut r2 = [0.0f64];
            comm.send_recv(2, true, &[me], &mut r1).unwrap();
            comm.send_recv(2, true, &[me + 0.5], &mut r2).unwrap();
            let sum = comm.sum_scalar(1.0).unwrap();
            (r1[0], r2[0], sum, comm.exchange_retries())
        });
        for r in results {
            let (a, b, sum, retries) = r.unwrap();
            assert_eq!(b, a + 0.5);
            assert_eq!(sum, 4.0);
            assert_eq!(retries, 0, "no faults, no retransmissions");
        }
    }

    #[test]
    fn nonblocking_exchanges_overlap_across_dims() {
        // The overlapped dslash posting pattern: one exchange per face
        // started before any completes, then completion out of start
        // order across edges.
        let dims = (Dims([1, 1, 2, 2]), Dims([4, 4, 8, 8]));
        let grid = ProcessGrid::new(dims.0, dims.1).unwrap();
        let results = run_on_grid(grid, |mut comm| {
            let me = comm.rank() as f64;
            let h2 = comm.start_send_recv(2, true, &[me, me]).unwrap();
            let h3f = comm.start_send_recv(3, true, &[10.0 + me]).unwrap();
            let h3b = comm.start_send_recv(3, false, &[20.0 + me]).unwrap();
            assert_eq!((h3b.mu(), h3b.forward()), (3, false));
            let (mut r3b, mut r3f, mut r2) = ([0.0], [0.0], [0.0; 2]);
            comm.complete_send_recv(h3b, &mut r3b).unwrap();
            comm.complete_send_recv(h2, &mut r2).unwrap();
            comm.complete_send_recv(h3f, &mut r3f).unwrap();
            (r2, r3f[0], r3b[0])
        });
        let grid = ProcessGrid::new(dims.0, dims.1).unwrap();
        for (rank, (r2, r3f, r3b)) in results.iter().enumerate() {
            let from2 = grid.neighbor_rank(rank, 2, false) as f64;
            let from3f = grid.neighbor_rank(rank, 3, false) as f64;
            let from3b = grid.neighbor_rank(rank, 3, true) as f64;
            assert_eq!(*r2, [from2, from2], "rank {rank}");
            assert_eq!(*r3f, 10.0 + from3f, "rank {rank}");
            assert_eq!(*r3b, 20.0 + from3b, "rank {rank}");
        }
    }

    #[test]
    fn nonblocking_conforms_under_arq() {
        // Several outstanding exchanges under the ack/retransmit
        // protocol: acks for other in-flight edges must be queued, not
        // dropped, and a fault-free run performs zero retransmissions.
        let config = CommConfig::resilient();
        let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), Dims([4, 4, 8, 8])).unwrap();
        let results = run_world_fallible(ThreadedComm::world_with(grid, config), |mut comm| {
            let mut seen = Vec::new();
            let me = comm.rank() as f64;
            for round in 0..3 {
                let h2 = comm.start_send_recv(2, true, &[me]).unwrap();
                let h3 = comm.start_send_recv(3, true, &[me + 0.25]).unwrap();
                let (mut r2, mut r3) = ([0.0], [0.0]);
                // Alternate completion order across rounds.
                if round % 2 == 0 {
                    comm.complete_send_recv(h3, &mut r3).unwrap();
                    comm.complete_send_recv(h2, &mut r2).unwrap();
                } else {
                    comm.complete_send_recv(h2, &mut r2).unwrap();
                    comm.complete_send_recv(h3, &mut r3).unwrap();
                }
                seen.push((r2[0], r3[0]));
            }
            comm.barrier().unwrap();
            (seen, comm.exchange_retries())
        });
        let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), Dims([4, 4, 8, 8])).unwrap();
        for (rank, r) in results.into_iter().enumerate() {
            let (seen, retries) = r.unwrap();
            let from2 = grid.neighbor_rank(rank, 2, false) as f64;
            let from3 = grid.neighbor_rank(rank, 3, false) as f64;
            for (r2, r3) in seen {
                assert_eq!((r2, r3), (from2, from3 + 0.25), "rank {rank}");
            }
            assert_eq!(retries, 0, "no faults, no retransmissions");
        }
    }

    #[test]
    fn nonblocking_survives_injected_faults() {
        // Drop + duplicate on the wire while exchanges are in flight:
        // the ARQ completion must still deliver every payload exactly
        // once, in order, on every rank.
        use crate::faulty::{FaultPlan, FaultRule, FaultyComm, MsgClass};
        // Drops are scoped to data and ack traffic: reductions have no
        // retransmit protocol (the perf model prices them separately),
        // so only the ARQ-protected classes may lose messages.
        let plan = FaultPlan::new(11)
            .with_rule(FaultRule::drop_message().data_only().with_probability(0.2))
            .with_rule(FaultRule::drop_message().for_class(MsgClass::Ack).with_probability(0.2))
            .with_rule(FaultRule::duplicate_message().data_only().with_probability(0.2));
        let config = CommConfig::resilient();
        let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), Dims([4, 4, 8, 8])).unwrap();
        let results = run_world_fallible(FaultyComm::world(grid, config, plan), |mut comm| {
            let me = comm.rank() as f64;
            let mut seen = Vec::new();
            for round in 0..4 {
                let h2 = comm.start_send_recv(2, true, &[me, round as f64]).unwrap();
                let h3 = comm.start_send_recv(3, false, &[me - round as f64]).unwrap();
                let (mut r2, mut r3) = ([0.0; 2], [0.0]);
                comm.complete_send_recv(h3, &mut r3).unwrap();
                comm.complete_send_recv(h2, &mut r2).unwrap();
                seen.push((r2, r3[0]));
            }
            // Keep every rank polling until all peers' final acks are
            // delivered (stop-and-wait needs a live peer; workloads end
            // in reductions, tests end in a barrier).
            comm.barrier().unwrap();
            seen
        });
        let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), Dims([4, 4, 8, 8])).unwrap();
        for (rank, r) in results.into_iter().enumerate() {
            let from2 = grid.neighbor_rank(rank, 2, false) as f64;
            let from3 = grid.neighbor_rank(rank, 3, true) as f64;
            for (round, (r2, r3)) in r.unwrap().into_iter().enumerate() {
                assert_eq!(r2, [from2, round as f64], "rank {rank} round {round}");
                assert_eq!(r3, from3 - round as f64, "rank {rank} round {round}");
            }
        }
    }

    #[test]
    fn panicking_rank_is_reported_and_peers_survive() {
        let config = CommConfig::default().with_timeout(Duration::from_secs(20));
        let results = run_on_grid_fallible(grid_1d(3), config, |mut comm| {
            if comm.rank() == 1 {
                panic!("injected test panic");
            }
            // Rank 1 never arrives: peers must fail fast, not wait out
            // the 20 s deadline.
            comm.barrier()
        });
        match &results[1] {
            Err(Error::RankFailure { rank, detail }) => {
                assert_eq!(*rank, 1);
                assert!(detail.contains("injected test panic"), "{detail}");
            }
            other => panic!("expected rank 1 failure, got {other:?}"),
        }
        for rank in [0, 2] {
            match &results[rank] {
                Ok(Err(Error::RankFailure { rank: dead, .. })) => assert_eq!(*dead, 1),
                other => panic!("rank {rank}: expected RankFailure, got {other:?}"),
            }
        }
    }

    #[test]
    fn run_on_grid_names_panicking_rank() {
        let caught = std::panic::catch_unwind(|| {
            run_on_grid(grid_1d(2), |comm| {
                if comm.rank() == 1 {
                    panic!("boom at rank one");
                }
                0u8
            });
        });
        let payload = caught.expect_err("must propagate");
        let msg = payload.downcast_ref::<String>().cloned().expect("string payload");
        assert!(msg.contains("rank 1"), "{msg}");
        assert!(msg.contains("boom at rank one"), "{msg}");
    }

    #[test]
    fn timeout_replaces_block_forever() {
        // One rank sends nothing: its peer's receive must end in a
        // structured Timeout naming the edge, not hang.
        let config = CommConfig::default().with_timeout(Duration::from_millis(200));
        let results = run_on_grid_fallible(grid_1d(2), config, |mut comm| {
            if comm.rank() == 0 {
                let mut recv = [0.0f64];
                comm.send_recv(3, true, &[1.0], &mut recv)
            } else {
                Ok(())
            }
        });
        match results[0].as_ref().unwrap() {
            Err(Error::Timeout { rank, peer, mu, waited, .. }) => {
                assert_eq!((*rank, *peer, *mu), (0, 1, Some(3)));
                assert!(*waited >= Duration::from_millis(200));
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }
}

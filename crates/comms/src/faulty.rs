//! Deterministic fault injection for the threaded comms world.
//!
//! A [`FaultPlan`] is a declarative, seeded list of [`FaultRule`]s.
//! Wire-level faults (drop, duplicate, delay, corrupt) are applied by
//! the world's message-post path; rank-level faults (stall, death) are
//! injected by the [`FaultyComm`] wrapper before communicator
//! operations. All randomness comes from the plan's seed, so a chaos
//! test replays identically on every run.
//!
//! ```
//! use lqcd_comms::{CommConfig, Communicator, FaultPlan, FaultRule, FaultyComm,
//!                  run_world_fallible};
//! use lqcd_lattice::{Dims, ProcessGrid};
//!
//! let grid = ProcessGrid::new(Dims([1, 1, 1, 2]), Dims([4, 4, 4, 8])).unwrap();
//! // Drop the first data message rank 0 sends; the ARQ layer retransmits.
//! let plan = FaultPlan::new(7)
//!     .with_rule(FaultRule::drop_message().on_rank(0).data_only().times(1));
//! let comms = FaultyComm::world(grid, CommConfig::resilient(), plan);
//! let results = run_world_fallible(comms, |mut comm| {
//!     let me = comm.rank() as f64;
//!     let mut recv = [0.0f64];
//!     comm.send_recv(3, true, &[me], &mut recv).unwrap();
//!     (recv[0], comm.faults_survived())
//! });
//! for (slot, r) in results.into_iter().enumerate() {
//!     let (got, survived) = r.unwrap();
//!     assert_eq!(got, (1 - slot) as f64);
//!     assert_eq!(survived, 1);
//! }
//! ```

use crate::comm::Communicator;
use crate::threaded::{
    self, CommConfig, PoisonHandle, ThreadedComm, WorldComm, TAG_ACK, TAG_EXCHANGE,
};
use lqcd_lattice::ProcessGrid;
use lqcd_util::Result;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The fault taxonomy. `Drop`/`Duplicate`/`Delay`/`Corrupt` act on
/// messages in flight; `Stall`/`Die` act on a rank itself.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The message is never delivered.
    Drop,
    /// The message is delivered twice.
    Duplicate,
    /// Delivery is deferred by the given duration (reordering it behind
    /// later traffic).
    Delay(Duration),
    /// One payload element is overwritten with NaN — an undetected
    /// transmission error that must be caught numerically downstream.
    Corrupt,
    /// The rank sleeps for the given duration before its next
    /// communicator operation.
    Stall(Duration),
    /// The rank panics at its next communicator operation.
    Die,
}

impl FaultKind {
    fn is_wire(&self) -> bool {
        matches!(
            self,
            FaultKind::Drop | FaultKind::Duplicate | FaultKind::Delay(_) | FaultKind::Corrupt
        )
    }
}

/// Message classes a rule can be scoped to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgClass {
    /// Ghost-zone exchange data.
    Exchange,
    /// ARQ acknowledgements.
    Ack,
    /// Reduction traffic (gather and broadcast).
    Reduce,
}

fn classify(tag: u64) -> MsgClass {
    match threaded::tag_class(tag) {
        TAG_EXCHANGE => MsgClass::Exchange,
        TAG_ACK => MsgClass::Ack,
        _ => MsgClass::Reduce,
    }
}

/// One fault rule: what to inject, where, and how often.
#[derive(Clone, Debug)]
pub struct FaultRule {
    kind: FaultKind,
    rank: Option<usize>,
    peer: Option<usize>,
    mu: Option<usize>,
    class: Option<MsgClass>,
    probability: f64,
    after: u64,
    max_hits: Option<u64>,
}

impl FaultRule {
    /// A rule injecting `kind` on every eligible event (scope it down
    /// with the builder methods).
    pub fn new(kind: FaultKind) -> Self {
        FaultRule {
            kind,
            rank: None,
            peer: None,
            mu: None,
            class: None,
            probability: 1.0,
            after: 0,
            max_hits: None,
        }
    }

    /// Drop messages.
    pub fn drop_message() -> Self {
        Self::new(FaultKind::Drop)
    }

    /// Deliver messages twice.
    pub fn duplicate_message() -> Self {
        Self::new(FaultKind::Duplicate)
    }

    /// Defer delivery by `delay`.
    pub fn delay_message(delay: Duration) -> Self {
        Self::new(FaultKind::Delay(delay))
    }

    /// Overwrite one payload element with NaN.
    pub fn corrupt_payload() -> Self {
        Self::new(FaultKind::Corrupt)
    }

    /// Sleep the rank for `pause` before an operation.
    pub fn stall_rank(pause: Duration) -> Self {
        Self::new(FaultKind::Stall(pause))
    }

    /// Panic the rank at an operation.
    pub fn die_rank() -> Self {
        Self::new(FaultKind::Die)
    }

    /// Restrict to events originated by `rank` (the sender for wire
    /// faults, the acting rank for stall/death).
    pub fn on_rank(mut self, rank: usize) -> Self {
        self.rank = Some(rank);
        self
    }

    /// Restrict wire faults to messages destined for `peer`.
    pub fn to_peer(mut self, peer: usize) -> Self {
        self.peer = Some(peer);
        self
    }

    /// Restrict wire faults to exchanges along grid dimension `mu`.
    pub fn for_mu(mut self, mu: usize) -> Self {
        self.mu = Some(mu);
        self
    }

    /// Restrict wire faults to one message class.
    pub fn for_class(mut self, class: MsgClass) -> Self {
        self.class = Some(class);
        self
    }

    /// Shorthand for [`Self::for_class`] with [`MsgClass::Exchange`].
    pub fn data_only(self) -> Self {
        self.for_class(MsgClass::Exchange)
    }

    /// Fire with probability `p` per eligible event instead of always.
    pub fn with_probability(mut self, p: f64) -> Self {
        self.probability = p.clamp(0.0, 1.0);
        self
    }

    /// Skip the first `n` eligible events before becoming active.
    pub fn after(mut self, n: u64) -> Self {
        self.after = n;
        self
    }

    /// Fire at most `n` times in total.
    pub fn times(mut self, n: u64) -> Self {
        self.max_hits = Some(n);
        self
    }

    fn matches_wire(&self, from: usize, to: usize, tag: u64) -> bool {
        self.kind.is_wire()
            && self.rank.is_none_or(|r| r == from)
            && self.peer.is_none_or(|p| p == to)
            && self.class.is_none_or(|c| c == classify(tag))
            && self
                .mu
                .is_none_or(|m| classify(tag) != MsgClass::Reduce && m == threaded::tag_mu(tag))
    }

    fn matches_rank(&self, rank: usize) -> bool {
        !self.kind.is_wire() && self.rank.is_none_or(|r| r == rank)
    }
}

/// A seeded, declarative set of fault rules.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan drawing randomness from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, rules: Vec::new() }
    }

    /// Add a rule.
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }
}

#[derive(Default)]
struct RuleCounter {
    seen: u64,
    hits: u64,
}

/// Shared runtime state of a plan: rule counters plus the seeded RNG.
/// One instance is shared by every rank of the world, so `hits()` is a
/// world-global count of injected faults.
pub struct FaultState {
    rules: Vec<FaultRule>,
    rng: Mutex<u64>,
    counters: Mutex<Vec<RuleCounter>>,
}

impl FaultState {
    fn new(plan: FaultPlan) -> Self {
        let counters = plan.rules.iter().map(|_| RuleCounter::default()).collect();
        FaultState {
            rules: plan.rules,
            rng: Mutex::new(plan.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1),
            counters: Mutex::new(counters),
        }
    }

    fn next_unit(&self) -> f64 {
        // SplitMix64 behind a mutex: cross-rank ordering of draws is
        // scheduling-dependent, but deterministic rules (p = 1.0, times
        // bounds) never consult it — those are the reproducible ones
        // chaos tests rely on.
        let mut state = self.rng.lock().unwrap_or_else(|e| e.into_inner());
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Whether rule `i` fires for one eligible event.
    fn fire(&self, i: usize) -> Option<FaultKind> {
        let rule = &self.rules[i];
        {
            let mut counters = self.counters.lock().unwrap_or_else(|e| e.into_inner());
            let c = &mut counters[i];
            c.seen += 1;
            if c.seen <= rule.after {
                return None;
            }
            if rule.max_hits.is_some_and(|m| c.hits >= m) {
                return None;
            }
            if rule.probability >= 1.0 {
                c.hits += 1;
                return Some(rule.kind);
            }
        }
        // Probabilistic rules draw outside the counter lock.
        if self.next_unit() < self.rules[i].probability {
            let mut counters = self.counters.lock().unwrap_or_else(|e| e.into_inner());
            counters[i].hits += 1;
            Some(self.rules[i].kind)
        } else {
            None
        }
    }

    /// First wire fault (if any) to apply to a message `from → to`.
    pub(crate) fn wire_action(&self, from: usize, to: usize, tag: u64) -> Option<FaultKind> {
        (0..self.rules.len())
            .filter(|&i| self.rules[i].matches_wire(from, to, tag))
            .find_map(|i| self.fire(i))
    }

    /// First rank fault (if any) to apply before an operation of `rank`.
    pub(crate) fn rank_action(&self, rank: usize) -> Option<FaultKind> {
        (0..self.rules.len())
            .filter(|&i| self.rules[i].matches_rank(rank))
            .find_map(|i| self.fire(i))
    }

    /// Overwrite one payload element with NaN.
    pub(crate) fn corrupt(&self, payload: &mut [f64]) {
        if payload.is_empty() {
            return;
        }
        let idx = (self.next_unit() * payload.len() as f64) as usize;
        payload[idx.min(payload.len() - 1)] = f64::NAN;
    }

    /// Total faults injected so far, across all ranks of the world.
    pub fn hits(&self) -> u64 {
        let counters = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        counters.iter().map(|c| c.hits).sum()
    }
}

/// A communicator wrapper that injects rank-level faults (stall, death)
/// before each operation and surfaces the world's fault counters. Use
/// [`FaultyComm::world`] to build a threaded world whose wire traffic
/// is also subject to the plan.
pub struct FaultyComm<C> {
    inner: C,
    state: Arc<FaultState>,
}

impl FaultyComm<ThreadedComm> {
    /// Build a threaded world under `plan`: wire faults apply inside the
    /// world's message path, rank faults in the returned wrappers.
    pub fn world(
        grid: ProcessGrid,
        config: CommConfig,
        plan: FaultPlan,
    ) -> Vec<FaultyComm<ThreadedComm>> {
        let state = Arc::new(FaultState::new(plan));
        ThreadedComm::build_world(grid, config, Some(state.clone()))
            .into_iter()
            .map(|inner| FaultyComm { inner, state: state.clone() })
            .collect()
    }
}

impl<C: Communicator> FaultyComm<C> {
    /// Wrap an existing communicator; only rank-level faults (and
    /// received-payload corruption) apply, since the wire is not under
    /// this plan.
    pub fn wrap(inner: C, plan: FaultPlan) -> Self {
        FaultyComm { inner, state: Arc::new(FaultState::new(plan)) }
    }

    /// Total faults injected so far under this plan.
    pub fn fault_hits(&self) -> u64 {
        self.state.hits()
    }

    fn before_op(&mut self) {
        match self.state.rank_action(self.inner.rank()) {
            Some(FaultKind::Stall(pause)) => std::thread::sleep(pause),
            Some(FaultKind::Die) => {
                panic!("injected fault: rank {} death", self.inner.rank())
            }
            _ => {}
        }
    }
}

impl<C: Communicator> Communicator for FaultyComm<C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }
    fn size(&self) -> usize {
        self.inner.size()
    }
    fn grid(&self) -> &ProcessGrid {
        self.inner.grid()
    }
    fn send_recv(
        &mut self,
        mu: usize,
        forward: bool,
        send: &[f64],
        recv: &mut [f64],
    ) -> Result<()> {
        self.before_op();
        self.inner.send_recv(mu, forward, send, recv)
    }
    fn start_send_recv(
        &mut self,
        mu: usize,
        forward: bool,
        send: &[f64],
    ) -> Result<crate::comm::ExchangeHandle> {
        // Rank-level faults fire once per exchange, when it is posted;
        // completion is plain delegation so a single exchange cannot be
        // double-injected relative to the blocking path.
        self.before_op();
        self.inner.start_send_recv(mu, forward, send)
    }
    fn complete_send_recv(
        &mut self,
        handle: crate::comm::ExchangeHandle,
        recv: &mut [f64],
    ) -> Result<()> {
        self.inner.complete_send_recv(handle, recv)
    }
    fn allreduce_sum(&mut self, vals: &mut [f64]) -> Result<()> {
        self.before_op();
        self.inner.allreduce_sum(vals)
    }
    fn allreduce_max(&mut self, vals: &mut [f64]) -> Result<()> {
        self.before_op();
        self.inner.allreduce_max(vals)
    }
    fn exchange_retries(&self) -> u64 {
        self.inner.exchange_retries()
    }
    fn faults_survived(&self) -> u64 {
        self.state.hits().max(self.inner.faults_survived())
    }
}

impl<C: WorldComm> WorldComm for FaultyComm<C> {
    fn poison_handle(&self) -> PoisonHandle {
        self.inner.poison_handle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_scoping_matches_expected_events() {
        let exchange_tag = (2u64 << 57) | (1 << 56) | 5; // mu 2, fwd, seq 5
        let reduce_tag = 1u64 << 60;
        let r = FaultRule::drop_message().on_rank(1).to_peer(2).for_mu(2).data_only();
        assert!(r.matches_wire(1, 2, exchange_tag));
        assert!(!r.matches_wire(0, 2, exchange_tag), "wrong sender");
        assert!(!r.matches_wire(1, 3, exchange_tag), "wrong peer");
        assert!(!r.matches_wire(1, 2, reduce_tag), "wrong class");
        assert!(!r.matches_rank(1), "wire rules never match rank events");

        let s = FaultRule::die_rank().on_rank(3);
        assert!(s.matches_rank(3));
        assert!(!s.matches_rank(2));
        assert!(!s.matches_wire(3, 0, exchange_tag));
    }

    #[test]
    fn after_and_times_bound_the_rule() {
        let plan = FaultPlan::new(1).with_rule(FaultRule::drop_message().after(2).times(2));
        let state = FaultState::new(plan);
        let fired: Vec<bool> = (0..6).map(|_| state.wire_action(0, 1, 0).is_some()).collect();
        assert_eq!(fired, [false, false, true, true, false, false]);
        assert_eq!(state.hits(), 2);
    }

    #[test]
    fn probabilistic_rules_fire_at_roughly_their_rate() {
        let plan = FaultPlan::new(42).with_rule(FaultRule::drop_message().with_probability(0.3));
        let state = FaultState::new(plan);
        let fired = (0..2000).filter(|_| state.wire_action(0, 1, 0).is_some()).count();
        assert!((450..750).contains(&fired), "fired {fired}/2000");
    }

    #[test]
    fn corrupt_writes_a_nan() {
        let plan = FaultPlan::new(3).with_rule(FaultRule::corrupt_payload());
        let state = FaultState::new(plan);
        let mut payload = vec![1.0f64; 16];
        state.corrupt(&mut payload);
        assert_eq!(payload.iter().filter(|v| v.is_nan()).count(), 1);
    }
}

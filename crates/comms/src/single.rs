//! The trivial single-rank communicator.

use crate::comm::Communicator;
use lqcd_lattice::{Dims, ProcessGrid};
use lqcd_util::{Error, Result};

/// Single-rank backend: neighbour exchange is a self-copy (periodic wrap
/// onto oneself), reductions are identities.
#[derive(Clone, Debug)]
pub struct SingleComm {
    grid: ProcessGrid,
}

impl SingleComm {
    /// A 1-rank grid over `global`.
    pub fn new(global: Dims) -> Result<Self> {
        Ok(Self { grid: ProcessGrid::new(Dims([1, 1, 1, 1]), global)? })
    }
}

impl Communicator for SingleComm {
    fn rank(&self) -> usize {
        0
    }

    fn size(&self) -> usize {
        1
    }

    fn grid(&self) -> &ProcessGrid {
        &self.grid
    }

    fn send_recv(
        &mut self,
        _mu: usize,
        _forward: bool,
        send: &[f64],
        recv: &mut [f64],
    ) -> Result<()> {
        if send.len() != recv.len() {
            return Err(Error::Comms(format!(
                "send/recv length mismatch: {} vs {}",
                send.len(),
                recv.len()
            )));
        }
        recv.copy_from_slice(send);
        Ok(())
    }

    fn allreduce_sum(&mut self, _vals: &mut [f64]) -> Result<()> {
        Ok(())
    }

    fn allreduce_max(&mut self, _vals: &mut [f64]) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_exchange_copies() {
        let mut c = SingleComm::new(Dims([4, 4, 4, 8])).unwrap();
        let send = [1.0, 2.0, 3.0];
        let mut recv = [0.0; 3];
        c.send_recv(3, true, &send, &mut recv).unwrap();
        assert_eq!(recv, send);
        let mut bad = [0.0; 2];
        assert!(c.send_recv(3, true, &send, &mut bad).is_err());
    }

    #[test]
    fn reductions_are_identity() {
        let mut c = SingleComm::new(Dims([4, 4, 4, 8])).unwrap();
        assert_eq!(c.sum_scalar(5.0).unwrap(), 5.0);
        let mut v = [1.0, -2.0];
        c.allreduce_max(&mut v).unwrap();
        assert_eq!(v, [1.0, -2.0]);
        c.barrier().unwrap();
        assert_eq!(c.rank(), 0);
        assert_eq!(c.size(), 1);
    }
}

//! The communicator trait.

use lqcd_lattice::ProcessGrid;
use lqcd_util::Result;

/// Message-passing surface used by the distributed Dirac operators and
/// solvers. Mirrors the subset of QMP/MPI the paper's implementation
/// relies on: grid-neighbour exchange plus global reductions.
pub trait Communicator {
    /// This rank's id in `0..size()`.
    fn rank(&self) -> usize;

    /// Total number of ranks.
    fn size(&self) -> usize;

    /// The process grid ranks are arranged in.
    fn grid(&self) -> &ProcessGrid;

    /// Simultaneous shift along grid dimension `mu`: send `send` to the
    /// neighbour in direction (`mu`, `forward`) and receive into `recv`
    /// from the neighbour in the opposite direction.
    ///
    /// Every rank of the grid must call this collectively with matching
    /// buffer lengths; mismatches surface as [`lqcd_util::Error::Comms`].
    fn send_recv(&mut self, mu: usize, forward: bool, send: &[f64], recv: &mut [f64])
        -> Result<()>;

    /// Global sum over all ranks, elementwise into `vals` (in place).
    fn allreduce_sum(&mut self, vals: &mut [f64]) -> Result<()>;

    /// Global max over all ranks, elementwise into `vals` (in place).
    fn allreduce_max(&mut self, vals: &mut [f64]) -> Result<()>;

    /// Block until every rank has arrived.
    fn barrier(&mut self) -> Result<()> {
        let mut dummy = [0.0f64];
        self.allreduce_sum(&mut dummy)
    }

    /// Convenience: global sum of a single scalar.
    fn sum_scalar(&mut self, v: f64) -> Result<f64> {
        let mut buf = [v];
        self.allreduce_sum(&mut buf)?;
        Ok(buf[0])
    }

    /// Convenience: global sum of a complex value packed as `[re, im]`.
    fn sum_complex(&mut self, re: f64, im: f64) -> Result<(f64, f64)> {
        let mut buf = [re, im];
        self.allreduce_sum(&mut buf)?;
        Ok((buf[0], buf[1]))
    }

    /// Retransmissions this endpoint has performed under the
    /// deadline/retry protocol (0 for backends without one).
    fn exchange_retries(&self) -> u64 {
        0
    }

    /// Injected faults this endpoint's world has absorbed so far
    /// (0 when no fault plan is attached).
    fn faults_survived(&self) -> u64 {
        0
    }
}

/// A rank-local shared handle to a communicator, so several operator
/// precisions (the mixed-precision solver stack) can use one rank's
/// endpoint. Single-threaded within a rank, hence `Rc<RefCell>`; the
/// process grid is cached at construction so `grid()` needs no borrow.
pub struct SharedComm<C> {
    inner: std::rc::Rc<std::cell::RefCell<C>>,
    grid: ProcessGrid,
}

impl<C: Communicator> SharedComm<C> {
    /// Wrap a communicator for sharing within one rank.
    pub fn new(comm: C) -> Self {
        let grid = comm.grid().clone();
        SharedComm { inner: std::rc::Rc::new(std::cell::RefCell::new(comm)), grid }
    }
}

impl<C> Clone for SharedComm<C> {
    fn clone(&self) -> Self {
        SharedComm { inner: self.inner.clone(), grid: self.grid.clone() }
    }
}

impl<C: Communicator> Communicator for SharedComm<C> {
    fn rank(&self) -> usize {
        self.inner.borrow().rank()
    }
    fn size(&self) -> usize {
        self.inner.borrow().size()
    }
    fn grid(&self) -> &ProcessGrid {
        &self.grid
    }
    fn send_recv(
        &mut self,
        mu: usize,
        forward: bool,
        send: &[f64],
        recv: &mut [f64],
    ) -> Result<()> {
        self.inner.borrow_mut().send_recv(mu, forward, send, recv)
    }
    fn allreduce_sum(&mut self, vals: &mut [f64]) -> Result<()> {
        self.inner.borrow_mut().allreduce_sum(vals)
    }
    fn allreduce_max(&mut self, vals: &mut [f64]) -> Result<()> {
        self.inner.borrow_mut().allreduce_max(vals)
    }
    fn exchange_retries(&self) -> u64 {
        self.inner.borrow().exchange_retries()
    }
    fn faults_survived(&self) -> u64 {
        self.inner.borrow().faults_survived()
    }
}

#[cfg(test)]
mod shared_tests {
    use super::*;
    use crate::single::SingleComm;
    use lqcd_lattice::Dims;

    #[test]
    fn shared_comm_multiplexes_one_endpoint() {
        // Two handles to the same endpoint (as the mixed-precision solver
        // stack holds one per operator precision) both work and see the
        // same grid.
        let base = SingleComm::new(Dims([4, 4, 4, 8])).unwrap();
        let mut a = SharedComm::new(base);
        let mut b = a.clone();
        assert_eq!(a.rank(), 0);
        assert_eq!(b.size(), 1);
        assert_eq!(a.grid().num_ranks(), b.grid().num_ranks());
        assert_eq!(a.sum_scalar(2.0).unwrap(), 2.0);
        let mut recv = [0.0f64; 2];
        b.send_recv(3, true, &[5.0, 6.0], &mut recv).unwrap();
        assert_eq!(recv, [5.0, 6.0]);
        a.barrier().unwrap();
    }

    #[test]
    fn shared_comm_over_threaded_world() {
        use crate::threaded::run_on_grid;
        use lqcd_lattice::ProcessGrid;
        let grid = ProcessGrid::new(Dims([1, 1, 1, 2]), Dims([4, 4, 4, 8])).unwrap();
        let sums = run_on_grid(grid, |comm| {
            let mut a = SharedComm::new(comm);
            let mut b = a.clone();
            // Interleave use of both handles.
            let s1 = a.sum_scalar(1.0).unwrap();
            let s2 = b.sum_scalar(10.0).unwrap();
            (s1, s2)
        });
        assert!(sums.iter().all(|&(s1, s2)| s1 == 2.0 && s2 == 20.0));
    }
}

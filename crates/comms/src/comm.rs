//! The communicator trait.

use lqcd_lattice::ProcessGrid;
use lqcd_util::{Error, Result};

/// An in-flight nonblocking exchange started by
/// [`Communicator::start_send_recv`] and finished by
/// [`Communicator::complete_send_recv`] — the `MPI_Isend`/`MPI_Wait`
/// split the paper's overlapped dslash pipeline is built on.
///
/// Backends that can truly post (the threaded world) carry routing state
/// here; backends that cannot defer the whole exchange to completion
/// time, so every communicator conforms to the same two-phase protocol.
#[derive(Debug)]
pub struct ExchangeHandle {
    pub(crate) mu: usize,
    pub(crate) forward: bool,
    pub(crate) state: HandleState,
}

#[derive(Debug)]
pub(crate) enum HandleState {
    /// Fallback for backends without a real nonblocking path: the
    /// payload is held and the blocking exchange runs at completion.
    Deferred(Vec<f64>),
    /// The threaded backend posted the message at start time; completion
    /// runs the receive (and, under ARQ, the ack/retransmit loop — its
    /// deadline is clocked from the completion call).
    Posted {
        to: usize,
        from: usize,
        tag: u64,
        posted_at: std::time::Instant,
        /// Payload retained for retransmission (ARQ worlds only).
        resend: Option<Vec<f64>>,
    },
}

impl ExchangeHandle {
    /// The grid dimension this exchange shifts along.
    pub fn mu(&self) -> usize {
        self.mu
    }

    /// The send direction passed to `start_send_recv`.
    pub fn forward(&self) -> bool {
        self.forward
    }

    pub(crate) fn deferred(mu: usize, forward: bool, payload: Vec<f64>) -> Self {
        ExchangeHandle { mu, forward, state: HandleState::Deferred(payload) }
    }

    pub(crate) fn posted(
        mu: usize,
        forward: bool,
        to: usize,
        from: usize,
        tag: u64,
        posted_at: std::time::Instant,
        resend: Option<Vec<f64>>,
    ) -> Self {
        ExchangeHandle {
            mu,
            forward,
            state: HandleState::Posted { to, from, tag, posted_at, resend },
        }
    }
}

/// Message-passing surface used by the distributed Dirac operators and
/// solvers. Mirrors the subset of QMP/MPI the paper's implementation
/// relies on: grid-neighbour exchange plus global reductions.
pub trait Communicator {
    /// This rank's id in `0..size()`.
    fn rank(&self) -> usize;

    /// Total number of ranks.
    fn size(&self) -> usize;

    /// The process grid ranks are arranged in.
    fn grid(&self) -> &ProcessGrid;

    /// Simultaneous shift along grid dimension `mu`: send `send` to the
    /// neighbour in direction (`mu`, `forward`) and receive into `recv`
    /// from the neighbour in the opposite direction.
    ///
    /// Every rank of the grid must call this collectively with matching
    /// buffer lengths; mismatches surface as [`lqcd_util::Error::Comms`].
    fn send_recv(&mut self, mu: usize, forward: bool, send: &[f64], recv: &mut [f64])
        -> Result<()>;

    /// Begin a nonblocking shift along dimension `mu`: post `send`
    /// toward (`mu`, `forward`) and return a handle for the matching
    /// receive. Several exchanges (e.g. one per partitioned dimension)
    /// may be outstanding at once; each must be finished with
    /// [`Communicator::complete_send_recv`], and handles on the *same*
    /// `(mu, forward)` edge must be completed in start order.
    ///
    /// The default implementation defers the whole exchange to
    /// completion time (correct for any backend); the threaded backend
    /// overrides it to genuinely put the message on the wire here.
    fn start_send_recv(
        &mut self,
        mu: usize,
        forward: bool,
        send: &[f64],
    ) -> Result<ExchangeHandle> {
        Ok(ExchangeHandle::deferred(mu, forward, send.to_vec()))
    }

    /// Finish a nonblocking shift: block until the matching message from
    /// the opposite neighbour lands in `recv`. Deadline and ARQ retry
    /// semantics apply at completion time, exactly as for a blocking
    /// [`Communicator::send_recv`].
    fn complete_send_recv(&mut self, handle: ExchangeHandle, recv: &mut [f64]) -> Result<()> {
        match handle.state {
            HandleState::Deferred(payload) => {
                self.send_recv(handle.mu, handle.forward, &payload, recv)
            }
            HandleState::Posted { .. } => Err(Error::Comms(
                "posted exchange completed on a backend that did not start it".into(),
            )),
        }
    }

    /// Global sum over all ranks, elementwise into `vals` (in place).
    fn allreduce_sum(&mut self, vals: &mut [f64]) -> Result<()>;

    /// Global max over all ranks, elementwise into `vals` (in place).
    fn allreduce_max(&mut self, vals: &mut [f64]) -> Result<()>;

    /// Block until every rank has arrived.
    fn barrier(&mut self) -> Result<()> {
        let mut dummy = [0.0f64];
        self.allreduce_sum(&mut dummy)
    }

    /// Convenience: global sum of a single scalar.
    fn sum_scalar(&mut self, v: f64) -> Result<f64> {
        let mut buf = [v];
        self.allreduce_sum(&mut buf)?;
        Ok(buf[0])
    }

    /// Convenience: global sum of a complex value packed as `[re, im]`.
    fn sum_complex(&mut self, re: f64, im: f64) -> Result<(f64, f64)> {
        let mut buf = [re, im];
        self.allreduce_sum(&mut buf)?;
        Ok((buf[0], buf[1]))
    }

    /// Retransmissions this endpoint has performed under the
    /// deadline/retry protocol (0 for backends without one).
    fn exchange_retries(&self) -> u64 {
        0
    }

    /// Injected faults this endpoint's world has absorbed so far
    /// (0 when no fault plan is attached).
    fn faults_survived(&self) -> u64 {
        0
    }
}

/// A rank-local shared handle to a communicator, so several operator
/// precisions (the mixed-precision solver stack) can use one rank's
/// endpoint. Single-threaded within a rank, hence `Rc<RefCell>`; the
/// process grid is cached at construction so `grid()` needs no borrow.
pub struct SharedComm<C> {
    inner: std::rc::Rc<std::cell::RefCell<C>>,
    grid: ProcessGrid,
}

impl<C: Communicator> SharedComm<C> {
    /// Wrap a communicator for sharing within one rank.
    pub fn new(comm: C) -> Self {
        let grid = comm.grid().clone();
        SharedComm { inner: std::rc::Rc::new(std::cell::RefCell::new(comm)), grid }
    }
}

impl<C> Clone for SharedComm<C> {
    fn clone(&self) -> Self {
        SharedComm { inner: self.inner.clone(), grid: self.grid.clone() }
    }
}

impl<C: Communicator> Communicator for SharedComm<C> {
    fn rank(&self) -> usize {
        self.inner.borrow().rank()
    }
    fn size(&self) -> usize {
        self.inner.borrow().size()
    }
    fn grid(&self) -> &ProcessGrid {
        &self.grid
    }
    fn send_recv(
        &mut self,
        mu: usize,
        forward: bool,
        send: &[f64],
        recv: &mut [f64],
    ) -> Result<()> {
        self.inner.borrow_mut().send_recv(mu, forward, send, recv)
    }
    fn start_send_recv(
        &mut self,
        mu: usize,
        forward: bool,
        send: &[f64],
    ) -> Result<ExchangeHandle> {
        self.inner.borrow_mut().start_send_recv(mu, forward, send)
    }
    fn complete_send_recv(&mut self, handle: ExchangeHandle, recv: &mut [f64]) -> Result<()> {
        self.inner.borrow_mut().complete_send_recv(handle, recv)
    }
    fn allreduce_sum(&mut self, vals: &mut [f64]) -> Result<()> {
        self.inner.borrow_mut().allreduce_sum(vals)
    }
    fn allreduce_max(&mut self, vals: &mut [f64]) -> Result<()> {
        self.inner.borrow_mut().allreduce_max(vals)
    }
    fn exchange_retries(&self) -> u64 {
        self.inner.borrow().exchange_retries()
    }
    fn faults_survived(&self) -> u64 {
        self.inner.borrow().faults_survived()
    }
}

#[cfg(test)]
mod shared_tests {
    use super::*;
    use crate::single::SingleComm;
    use lqcd_lattice::Dims;

    #[test]
    fn shared_comm_multiplexes_one_endpoint() {
        // Two handles to the same endpoint (as the mixed-precision solver
        // stack holds one per operator precision) both work and see the
        // same grid.
        let base = SingleComm::new(Dims([4, 4, 4, 8])).unwrap();
        let mut a = SharedComm::new(base);
        let mut b = a.clone();
        assert_eq!(a.rank(), 0);
        assert_eq!(b.size(), 1);
        assert_eq!(a.grid().num_ranks(), b.grid().num_ranks());
        assert_eq!(a.sum_scalar(2.0).unwrap(), 2.0);
        let mut recv = [0.0f64; 2];
        b.send_recv(3, true, &[5.0, 6.0], &mut recv).unwrap();
        assert_eq!(recv, [5.0, 6.0]);
        a.barrier().unwrap();
    }

    #[test]
    fn deferred_nonblocking_exchange_conforms() {
        // SingleComm has no real nonblocking path: the default deferred
        // handle must still deliver the payload at completion time, with
        // several exchanges outstanding at once.
        let mut c = SingleComm::new(Dims([4, 4, 4, 8])).unwrap();
        let h2 = c.start_send_recv(2, true, &[1.0, 2.0]).unwrap();
        let h3 = c.start_send_recv(3, false, &[7.0]).unwrap();
        assert_eq!((h3.mu(), h3.forward()), (3, false));
        // Complete out of start order across edges.
        let mut r3 = [0.0f64];
        c.complete_send_recv(h3, &mut r3).unwrap();
        let mut r2 = [0.0f64; 2];
        c.complete_send_recv(h2, &mut r2).unwrap();
        assert_eq!(r3, [7.0]);
        assert_eq!(r2, [1.0, 2.0]);
        // Length mismatch surfaces at completion, like the blocking path.
        let h = c.start_send_recv(0, true, &[1.0]).unwrap();
        let mut bad = [0.0f64; 3];
        assert!(c.complete_send_recv(h, &mut bad).is_err());
    }

    #[test]
    fn shared_comm_over_threaded_world() {
        use crate::threaded::run_on_grid;
        use lqcd_lattice::ProcessGrid;
        let grid = ProcessGrid::new(Dims([1, 1, 1, 2]), Dims([4, 4, 4, 8])).unwrap();
        let sums = run_on_grid(grid, |comm| {
            let mut a = SharedComm::new(comm);
            let mut b = a.clone();
            // Interleave use of both handles.
            let s1 = a.sum_scalar(1.0).unwrap();
            let s2 = b.sum_scalar(10.0).unwrap();
            (s1, s2)
        });
        assert!(sums.iter().all(|&(s1, s2)| s1 == 2.0 && s2 == 20.0));
    }
}

//! QMP-like message passing for the virtual GPU cluster.
//!
//! The paper's implementation can sit on either MPI or QMP, the "QCD
//! message-passing" standard offering exactly the primitives lattice codes
//! need (§6.1). This crate provides the same narrow surface:
//!
//! * [`Communicator`] — rank identity, neighbour `send_recv` along a
//!   process-grid dimension, and global reductions;
//! * [`SingleComm`] — the trivial single-rank backend;
//! * [`ThreadedComm`] — the multi-rank backend: every "GPU" is a thread,
//!   messages travel over crossbeam channels with MPI-style
//!   `(source, tag)` matching;
//! * [`run_on_grid`] — SPMD launcher: one thread per rank, each handed its
//!   own communicator, results collected in rank order.
//!
//! Payloads are `f64` slices; fields convert their storage precision at
//! the boundary. (The *performance model* prices messages at their true
//! storage width — the correctness path here is deliberately simple.)

pub mod comm;
pub mod single;
pub mod threaded;

pub use comm::{Communicator, SharedComm};
pub use single::SingleComm;
pub use threaded::{run_on_grid, ThreadedComm};

//! QMP-like message passing for the virtual GPU cluster.
//!
//! The paper's implementation can sit on either MPI or QMP, the "QCD
//! message-passing" standard offering exactly the primitives lattice codes
//! need (§6.1). This crate provides the same narrow surface:
//!
//! * [`Communicator`] — rank identity, neighbour `send_recv` along a
//!   process-grid dimension, and global reductions;
//! * [`SingleComm`] — the trivial single-rank backend;
//! * [`ThreadedComm`] — the multi-rank backend: every "GPU" is a thread,
//!   messages travel over std mpsc channels with MPI-style
//!   `(source, tag)` matching;
//! * [`run_on_grid`] — SPMD launcher: one thread per rank, each handed its
//!   own communicator, results collected in rank order.
//!
//! Layered on top is the fault-tolerance surface (see `DESIGN.md`,
//! "Fault model & recovery"):
//!
//! * [`CommConfig`] — per-world deadline, retry, and backoff policy;
//!   receives return [`lqcd_util::Error::Timeout`] instead of blocking
//!   forever, and with `retries > 0` exchanges run a stop-and-wait
//!   ack/retransmit protocol that survives dropped, duplicated, delayed,
//!   and reordered messages;
//! * [`run_on_grid_fallible`] / [`run_world_fallible`] — panic-safe SPMD
//!   launchers: a panicking rank poisons the world (waking blocked peers
//!   with [`lqcd_util::Error::RankFailure`]) and is reported in its
//!   result slot rather than tearing down the process;
//! * [`FaultPlan`] / [`FaultRule`] / [`FaultyComm`] — deterministic,
//!   seeded fault injection (message drop, duplication, delay,
//!   corruption; rank stall and death) for chaos testing.
//!
//! Payloads are `f64` slices; fields convert their storage precision at
//! the boundary. (The *performance model* prices messages at their true
//! storage width — the correctness path here is deliberately simple.)

pub mod comm;
pub mod faulty;
pub mod single;
pub mod threaded;

pub use comm::{Communicator, ExchangeHandle, SharedComm};
pub use faulty::{FaultKind, FaultPlan, FaultRule, FaultyComm, MsgClass};
pub use single::SingleComm;
pub use threaded::{
    run_on_grid, run_on_grid_fallible, run_world_fallible, CommConfig, PoisonHandle, ThreadedComm,
    WorldComm,
};

//! Flight-recorder coverage under chaos: a lossy `FaultyComm` world runs
//! traced exchanges and reductions; the collected per-rank buffers must
//! stay well-formed (every span `Begin` closed by an `End` on its track)
//! and must record the ARQ retransmissions the fault plan forces.

use lqcd_comms::{
    run_world_fallible, CommConfig, Communicator, FaultPlan, FaultRule, FaultyComm, MsgClass,
};
use lqcd_lattice::{Dims, ProcessGrid};
use lqcd_util::trace;
use std::collections::BTreeMap;

#[test]
fn chaos_world_spans_stay_balanced_and_record_retries() {
    trace::clear();
    trace::enable();
    let plan = FaultPlan::new(23)
        .with_rule(FaultRule::drop_message().data_only().with_probability(0.3))
        .with_rule(FaultRule::drop_message().for_class(MsgClass::Ack).with_probability(0.2));
    let config = CommConfig::resilient();
    let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), Dims([4, 4, 8, 8])).unwrap();
    let results = run_world_fallible(FaultyComm::world(grid, config, plan), |mut comm| {
        let me = comm.rank() as f64;
        for round in 0..4 {
            let h = comm.start_send_recv(3, true, &[me, round as f64]).unwrap();
            let mut r = [0.0; 2];
            comm.complete_send_recv(h, &mut r).unwrap();
            let mut v = [me];
            comm.allreduce_sum(&mut v).unwrap();
        }
        comm.barrier().unwrap();
        comm.exchange_retries()
    });
    trace::disable();
    let retries: u64 = results.into_iter().map(|r| r.unwrap()).sum();
    assert!(retries > 0, "the fault plan must force at least one retransmission");

    let ranks = trace::take();
    assert_eq!(ranks.len(), 4, "one merged buffer per rank");
    let mut retry_instants = 0u64;
    for (rank, events) in &ranks {
        assert!(!events.is_empty(), "rank {rank} recorded nothing");
        assert!(
            events.iter().any(|e| e.name == "allreduce"),
            "rank {rank}: no allreduce span recorded"
        );
        // Per-track span balance, in timestamp order as `take` returns it.
        let mut depth: BTreeMap<u64, i64> = BTreeMap::new();
        for e in events {
            match e.kind {
                trace::EventKind::Begin => *depth.entry(e.track.tid()).or_default() += 1,
                trace::EventKind::End => {
                    let d = depth.entry(e.track.tid()).or_default();
                    *d -= 1;
                    assert!(*d >= 0, "rank {rank}: End without Begin on {:?}", e.track);
                }
                _ => {}
            }
            if e.name == "arq_retry" {
                retry_instants += 1;
            }
        }
        for (tid, d) in depth {
            assert_eq!(d, 0, "rank {rank}: track {tid} finished with open spans");
        }
    }
    assert!(retry_instants > 0, "retries happened but no arq_retry instants were recorded");
}

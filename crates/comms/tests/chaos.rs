//! Chaos suite for the comms world: under every injected fault class the
//! system either completes with the correct values (after retries) or
//! returns a clean structured error — it never hangs and never silently
//! corrupts an exchange the ARQ layer is responsible for.

use lqcd_comms::{
    run_world_fallible, CommConfig, Communicator, FaultPlan, FaultRule, FaultyComm, MsgClass,
};
use lqcd_lattice::{Dims, ProcessGrid};
use lqcd_util::Error;
use std::time::Duration;

fn ring(n: usize) -> ProcessGrid {
    ProcessGrid::new(Dims([1, 1, 1, n]), Dims([4, 4, 4, (4 * n).max(8)])).unwrap()
}

/// The regression the deadline protocol exists for: before it, a dropped
/// message meant the receiver blocked forever. Now it must surface a
/// structured timeout naming the missing edge, within the deadline.
#[test]
fn dropped_message_times_out_cleanly_without_retries() {
    let grid = ring(2);
    let config = CommConfig::default().with_timeout(Duration::from_millis(250)).with_retries(0);
    let plan =
        FaultPlan::new(3).with_rule(FaultRule::drop_message().on_rank(0).data_only().times(1));
    let comms = FaultyComm::world(grid, config, plan);
    let started = std::time::Instant::now();
    let results = run_world_fallible(comms, |mut comm| {
        let mut recv = [0.0f64; 2];
        comm.send_recv(3, true, &[comm.rank() as f64; 2], &mut recv)
    });
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "timeout path took far longer than the deadline"
    );
    // Rank 0's message to rank 1 was dropped: rank 1 must report a
    // timeout naming that edge; rank 0 received fine.
    match &results[1] {
        Ok(Err(Error::Timeout { rank: 1, peer: 0, mu: Some(3), .. })) => {}
        other => panic!("expected rank 1 timeout on peer 0, got {other:?}"),
    }
    assert!(matches!(&results[0], Ok(Ok(()))), "rank 0 should have completed");
}

/// Drop, duplicate, and delay are all absorbed by the retry protocol:
/// repeated exchanges and reductions still produce exact values.
#[test]
fn drop_dup_delay_are_invisible_under_arq() {
    for (name, rule) in [
        ("drop", FaultRule::drop_message().on_rank(1).data_only().times(3)),
        ("dup", FaultRule::duplicate_message().on_rank(2).times(5)),
        ("delay", FaultRule::delay_message(Duration::from_millis(40)).on_rank(0).times(3)),
        ("drop-reduce", FaultRule::drop_message().on_rank(2).for_class(MsgClass::Reduce).times(2)),
        ("drop-ack", FaultRule::drop_message().on_rank(0).for_class(MsgClass::Ack).times(2)),
    ] {
        let grid = ring(4);
        let comms =
            FaultyComm::world(grid, CommConfig::resilient(), FaultPlan::new(17).with_rule(rule));
        let results = run_world_fallible(comms, |mut comm| {
            let n = comm.size();
            let mut ghost_sum = 0.0;
            for round in 0..4u64 {
                let me = (comm.rank() as u64 * 100 + round) as f64;
                let mut recv = [0.0f64; 3];
                comm.send_recv(3, true, &[me; 3], &mut recv).unwrap();
                let from = (comm.rank() + n - 1) % n;
                assert_eq!(recv, [(from as u64 * 100 + round) as f64; 3]);
                ghost_sum += recv[0];
                let total = comm.sum_scalar(1.0).unwrap();
                assert_eq!(total, n as f64);
            }
            (ghost_sum, comm.faults_survived(), comm.exchange_retries())
        });
        let mut survived_any = 0;
        for (slot, r) in results.into_iter().enumerate() {
            let (_, survived, _) = r.unwrap_or_else(|e| panic!("[{name}] rank {slot}: {e}"));
            survived_any = survived_any.max(survived);
        }
        assert!(survived_any > 0, "[{name}] fault plan never fired");
    }
}

/// Corruption is *not* the comm layer's to detect: the payload must be
/// delivered (exactly one NaN) and counted, with detection left to the
/// numerics above (see the solver breakdown tests).
#[test]
fn corruption_is_delivered_and_counted() {
    let grid = ring(2);
    let plan =
        FaultPlan::new(5).with_rule(FaultRule::corrupt_payload().on_rank(0).data_only().times(1));
    let comms = FaultyComm::world(grid, CommConfig::default(), plan);
    let results = run_world_fallible(comms, |mut comm| {
        let mut recv = [0.0f64; 8];
        comm.send_recv(3, true, &[2.5f64; 8], &mut recv).unwrap();
        let nans = recv.iter().filter(|v| v.is_nan()).count();
        let intact = recv.iter().filter(|&&v| v == 2.5).count();
        (nans, intact, comm.faults_survived())
    });
    let out: Vec<_> = results.into_iter().map(|r| r.unwrap()).collect();
    // Rank 1 received the corrupted payload; rank 0 received clean data.
    assert_eq!((out[1].0, out[1].1), (1, 7), "rank 1 should see exactly one NaN");
    assert_eq!((out[0].0, out[0].1), (0, 8), "rank 0's receive should be clean");
    assert!(out.iter().all(|o| o.2 == 1), "the corruption must be counted");
}

/// A stall shorter than the deadline is invisible; one longer than the
/// deadline surfaces as a timeout on the peers — never a hang.
#[test]
fn stalls_respect_the_deadline() {
    // Short stall, generous deadline: completes.
    let grid = ring(2);
    let plan = FaultPlan::new(9)
        .with_rule(FaultRule::stall_rank(Duration::from_millis(50)).on_rank(1).times(1));
    let comms = FaultyComm::world(grid, CommConfig::resilient(), plan);
    let results = run_world_fallible(comms, |mut comm| {
        let mut recv = [0.0f64];
        comm.send_recv(3, true, &[1.0], &mut recv).unwrap();
        comm.sum_scalar(1.0).unwrap()
    });
    for r in results {
        assert_eq!(r.unwrap(), 2.0);
    }

    // Stall far past the deadline, no retries: the healthy rank times
    // out with a structured error instead of waiting forever.
    let grid = ring(2);
    let config = CommConfig::default().with_timeout(Duration::from_millis(200)).with_retries(0);
    let plan = FaultPlan::new(9)
        .with_rule(FaultRule::stall_rank(Duration::from_millis(800)).on_rank(1).times(1));
    let comms = FaultyComm::world(grid, config, plan);
    let started = std::time::Instant::now();
    let results = run_world_fallible(comms, |mut comm| {
        let mut recv = [0.0f64];
        comm.send_recv(3, true, &[1.0], &mut recv)
    });
    assert!(started.elapsed() < Duration::from_secs(5));
    assert!(
        matches!(&results[0], Ok(Err(Error::Timeout { rank: 0, peer: 1, .. }))),
        "rank 0 should time out on the stalled rank, got {:?}",
        results[0]
    );
}

/// A dying rank is reported in its own slot; every peer unwinds with a
/// structured error (timeout or rank-failure) instead of hanging.
#[test]
fn rank_death_is_reported_and_peers_unwind() {
    let grid = ring(4);
    let config = CommConfig::resilient().with_timeout(Duration::from_secs(2));
    let plan = FaultPlan::new(13).with_rule(FaultRule::die_rank().on_rank(2).after(2).times(1));
    let comms = FaultyComm::world(grid, config, plan);
    let started = std::time::Instant::now();
    let results = run_world_fallible(comms, |mut comm| -> lqcd_util::Result<f64> {
        let mut total = 0.0;
        for _ in 0..4 {
            let mut recv = [0.0f64];
            comm.send_recv(3, true, &[1.0], &mut recv)?;
            total += comm.sum_scalar(1.0)?;
        }
        Ok(total)
    });
    assert!(started.elapsed() < Duration::from_secs(30), "death must not hang the world");
    match &results[2] {
        Err(Error::RankFailure { rank: 2, detail }) => {
            assert!(detail.contains("injected fault"), "detail: {detail}");
        }
        other => panic!("expected rank 2's own failure, got {other:?}"),
    }
    for (slot, r) in results.iter().enumerate() {
        if slot == 2 {
            continue;
        }
        match r {
            Ok(Err(Error::Timeout { .. } | Error::RankFailure { .. })) => {}
            Ok(Ok(_)) | Ok(Err(_)) | Err(_) => {
                panic!("rank {slot}: expected a structured unwind, got {r:?}")
            }
        }
    }
}

//! Hardware parameters of the simulated cluster.

use serde::{Deserialize, Serialize};

/// One GPU (device) model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GpuModel {
    /// Device name for reports.
    pub name: String,
    /// Effective device memory bandwidth, bytes/s (ECC on).
    pub mem_bw: f64,
    /// Peak single-precision flop rate, flops/s.
    pub peak_sp: f64,
    /// Peak double-precision flop rate, flops/s.
    pub peak_dp: f64,
    /// Checkerboard-site count at which kernels reach 50 % of peak
    /// bandwidth: utilization `u(s) = s / (s + sat_sites_cb)`. Calibrated
    /// so a single GPU at the 256-GPU local volume runs ≈ 2× slower than
    /// at the 16-GPU local volume (§9.1 last paragraph).
    pub sat_sites_cb: f64,
    /// Fixed overhead per kernel launch, seconds.
    pub launch_overhead: f64,
    /// Effective-bandwidth multiplier for half-precision kernels: the
    /// fixed-point unpack/normalize path does not reach full streaming
    /// efficiency (calibrated so HP ≈ 1.6× SP on a saturated device, as
    /// in Fig. 5's small-partition points).
    pub half_efficiency: f64,
}

/// One node and the fabric around it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NodeModel {
    /// GPUs per node (2 on Edge, sharing one x16 PCI-E connection, §7.1).
    pub gpus_per_node: usize,
    /// PCI-E bandwidth per direction for the *shared* x16 link, bytes/s.
    pub pcie_bw: f64,
    /// PCI-E transaction latency, s.
    pub pcie_latency: f64,
    /// Host pinned↔pageable memcpy bandwidth, bytes/s. Two such copies
    /// per message per side because "GPU pinned memory is not compatible
    /// with memory pinned by MPI implementations" (§6.3) and GPU-Direct
    /// was unavailable.
    pub host_memcpy_bw: f64,
    /// Interconnect point-to-point bandwidth per direction, bytes/s
    /// (QDR InfiniBand).
    pub nic_bw: f64,
    /// Interconnect message latency, s.
    pub nic_latency: f64,
    /// GPU-Direct / peer-to-peer transfers available: the two
    /// pinned↔pageable host copies are eliminated ("We expect to be able
    /// to remove these extra memory copies in the future", §6.3). Off for
    /// Edge in 2011; flip on for the ablation.
    pub gpu_direct: bool,
    /// Fixed per-stage synchronization cost, s: stream-event waits,
    /// MPI progress polling, and host scheduling between the stages of
    /// the ghost pipeline. Dominates small-message exchanges at high GPU
    /// counts — the regime where Fig. 5 notes the HP advantage fading.
    pub stage_sync_latency: f64,
}

/// The full cluster model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterModel {
    /// Cluster name for reports.
    pub name: String,
    /// Device parameters.
    pub gpu: GpuModel,
    /// Node/fabric parameters.
    pub node: NodeModel,
    /// Per-hop latency of a global reduction, s (allreduce modeled as
    /// `2·log₂(P)` hops plus software overhead).
    pub reduction_hop_latency: f64,
    /// Fixed software overhead per global reduction, s.
    pub reduction_overhead: f64,
}

impl ClusterModel {
    /// Effective device bandwidth at a given checkerboard volume.
    pub fn eff_bandwidth(&self, sites_cb: usize) -> f64 {
        let s = sites_cb as f64;
        self.gpu.mem_bw * s / (s + self.gpu.sat_sites_cb)
    }

    /// Time for one global reduction across `ranks` ranks.
    pub fn reduction_time(&self, ranks: usize) -> f64 {
        if ranks <= 1 {
            return self.reduction_overhead;
        }
        let hops = 2.0 * (ranks as f64).log2().ceil();
        self.reduction_overhead + hops * self.reduction_hop_latency
    }

    /// Per-GPU PCI-E bandwidth (the x16 link is shared by the node's
    /// GPUs, all active simultaneously during a collective exchange).
    pub fn pcie_bw_per_gpu(&self) -> f64 {
        self.node.pcie_bw / self.node.gpus_per_node as f64
    }
}

/// Edge with the §6.3 future-work improvements applied: GPU-Direct
/// removes both host memory copies from every ghost pipeline.
pub fn edge_gpu_direct() -> ClusterModel {
    let mut m = edge();
    m.name = "Edge + GPU-Direct (projected)".into();
    m.node.gpu_direct = true;
    m
}

/// The Edge cluster at LLNL (§7.1): dual-socket Westmere nodes with two
/// Tesla M2050s (ECC on) behind a shared x16 PCI-E switch and one QDR
/// InfiniBand HCA.
pub fn edge() -> ClusterModel {
    ClusterModel {
        name: "Edge (LLNL)".into(),
        gpu: GpuModel {
            name: "Tesla M2050 (ECC)".into(),
            // 148 GB/s raw, ~120 GB/s with ECC.
            mem_bw: 120.0e9,
            peak_sp: 1030.0e9,
            peak_dp: 515.0e9,
            // Calibrated against the §9.1 "factor of two slower" note.
            sat_sites_cb: 15_000.0,
            launch_overhead: 7.0e-6,
            half_efficiency: 0.8,
        },
        node: NodeModel {
            gpus_per_node: 2,
            // PCI-E gen2 x16 ≈ 8 GB/s raw, ~6 GB/s effective, shared.
            pcie_bw: 6.0e9,
            pcie_latency: 10.0e-6,
            host_memcpy_bw: 6.0e9,
            // QDR IB: 32 Gb/s signalling → ~3.2 GB/s effective.
            nic_bw: 3.2e9,
            nic_latency: 1.7e-6,
            gpu_direct: false,
            stage_sync_latency: 18.0e-6,
        },
        // A 2011-era GPU-cluster allreduce: device synchronization, D2H of
        // the partial, MPI_Allreduce under OS jitter, and the H2D of the
        // result — hundreds of microseconds of fixed cost plus a per-hop
        // term. This is the "periodic global reduction" cost of §3.2 that
        // the Schwarz preconditioner exists to avoid.
        reduction_hop_latency: 100.0e-6,
        reduction_overhead: 700.0e-6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_parameters_are_sane() {
        let m = edge();
        assert!(m.gpu.mem_bw > 1e11 && m.gpu.mem_bw < 1.5e11);
        assert!(m.gpu.peak_sp / m.gpu.peak_dp > 1.9 && m.gpu.peak_sp / m.gpu.peak_dp < 2.1);
        assert_eq!(m.node.gpus_per_node, 2);
        assert!(m.node.nic_bw < m.node.pcie_bw);
    }

    #[test]
    fn saturation_rolloff_matches_paper_claim() {
        // §9.1: single GPU at the 256-GPU local volume (32³·256/256 → CB
        // 16384) is ~2× slower than at the 16-GPU local volume (CB 262144).
        let m = edge();
        let slow = m.eff_bandwidth(16_384);
        let fast = m.eff_bandwidth(262_144);
        let ratio = fast / slow;
        assert!((1.6..=2.4).contains(&ratio), "saturation ratio {ratio}");
    }

    #[test]
    fn reduction_time_grows_logarithmically() {
        let m = edge();
        let t2 = m.reduction_time(2);
        let t256 = m.reduction_time(256);
        assert!(t256 > t2);
        // 256 ranks = 8 doublings → 16 hops.
        assert!((t256 - m.reduction_overhead - 16.0 * m.reduction_hop_latency).abs() < 1e-12);
        assert_eq!(m.reduction_time(1), m.reduction_overhead);
    }

    #[test]
    fn pcie_is_shared() {
        let m = edge();
        assert!((m.pcie_bw_per_gpu() - m.node.pcie_bw / 2.0).abs() < 1.0);
    }
}

//! Analytic models of the Fig. 9 capability machines.
//!
//! Fig. 9 puts the GPU results in context against leadership systems
//! running the same 32³×256 Wilson-clover problem: Jaguar (Cray XT4),
//! JaguarPF (Cray XT5) and Intrepid (BlueGene/P). We model each as a
//! per-core sustained solver rate degraded by strong-scaling
//! communication: the per-core subvolume's surface-to-volume ratio sets
//! the communication fraction, and a torus-appropriate per-core injection
//! bandwidth sets its cost. Parameters are calibrated to the paper's
//! reported band — 10–17 sustained Tflops somewhere above 16 384 cores.

use serde::{Deserialize, Serialize};

/// A CPU capability machine.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CpuMachine {
    /// Display name as in the figure legend.
    pub name: String,
    /// Per-core sustained solver flop rate on local data, flops/s.
    pub core_flops: f64,
    /// Per-core effective injection bandwidth, bytes/s.
    pub core_bw: f64,
    /// Global-reduction latency, s (tree networks make this cheap on
    /// BG/P).
    pub reduction_latency: f64,
    /// Solver precision label as in the legend.
    pub solver: String,
}

/// Jaguar, Cray XT4 (retired) — relaxed-iteration BiCGstab, mixed
/// precision.
pub fn xt4() -> CpuMachine {
    CpuMachine {
        name: "Jaguar XT4".into(),
        core_flops: 0.65e9,
        core_bw: 0.25e9,
        reduction_latency: 25.0e-6,
        solver: "Rel. IBiCGStab, Mixed Prec.".into(),
    }
}

/// JaguarPF, Cray XT5 — relaxed-iteration BiCGstab, mixed precision.
pub fn xt5() -> CpuMachine {
    CpuMachine {
        name: "Jaguar XT5".into(),
        core_flops: 0.60e9,
        core_bw: 0.30e9,
        reduction_latency: 22.0e-6,
        solver: "Rel. IBiCGStab, Mixed Prec.".into(),
    }
}

/// Intrepid, BlueGene/P — pure double-precision BiCGstab.
pub fn bgp() -> CpuMachine {
    CpuMachine {
        name: "Intrepid BG/P".into(),
        core_flops: 0.35e9,
        core_bw: 0.45e9,
        reduction_latency: 6.0e-6,
        solver: "BiCGStab DP".into(),
    }
}

/// Kraken (Cray XT5 at NICS) running CPU MILC: the §9.2 comparison point
/// — 942 Gflops sustained with 4096 cores in the double-precision
/// multi-shift solver, i.e. ≈ 0.23 Gflops/core, making one GPU worth
/// ≈ 74 cores.
pub const KRAKEN_GFLOPS_AT_4096: f64 = 942.0;

/// Sustained solver Tflops on `cores` cores for the 32³×256 Wilson
/// problem.
pub fn sustained_tflops(m: &CpuMachine, cores: usize, volume_sites: f64) -> f64 {
    let flops_per_site = 1464.0; // Wilson dslash + solver BLAS, per site
    let bytes_per_site_surface = 12.0 * 4.0; // projected half spinor, SP wire
    let local = volume_sites / cores as f64;
    // Balanced 4-D decomposition: surface/volume ≈ 8 / local^{1/4}… use
    // the exact 4-D cube surface for a hypercubic block of side
    // local^(1/4).
    let side = local.powf(0.25).max(1.0);
    let surface_sites = 8.0 * local / side;
    let t_compute = local * flops_per_site / m.core_flops;
    let t_comm = surface_sites * bytes_per_site_surface / m.core_bw;
    // ~4 reductions per iteration amortized over one dslash-pair's work.
    let t_reduce = 4.0 * m.reduction_latency * (cores as f64).log2() / 16.0;
    let t_iter = t_compute.max(t_comm) + t_reduce;
    let sustained = local * flops_per_site / t_iter * cores as f64;
    sustained / 1e12
}

#[cfg(test)]
mod tests {
    use super::*;

    const V: f64 = (32 * 32 * 32 * 256) as f64;

    #[test]
    fn machines_land_in_the_papers_band() {
        // "The performance range of 10-17 Tflops is attained on partitions
        // of size greater than 16,384 cores on all these systems."
        for (m, cores) in [
            (xt4(), [8192usize, 12_288, 16_384]),
            (xt5(), [16_384, 24_576, 32_768]),
            (bgp(), [16_384, 24_576, 32_768]),
        ] {
            let best = cores.iter().map(|&c| sustained_tflops(&m, c, V)).fold(0.0f64, f64::max);
            assert!(
                (8.0..20.0).contains(&best),
                "{}: best sustained {best} Tflops outside the plausible band",
                m.name
            );
        }
    }

    #[test]
    fn scaling_is_sublinear_at_scale() {
        let m = xt5();
        let t16k = sustained_tflops(&m, 16_384, V);
        let t32k = sustained_tflops(&m, 32_768, V);
        assert!(t32k > t16k, "more cores should still help");
        assert!(t32k < 1.9 * t16k, "but far from ideally");
    }

    #[test]
    fn kraken_comparison_point() {
        // 1 GPU ≈ 74 CPU cores at 942 Gflops / 4096 cores (§9.2).
        let per_core = KRAKEN_GFLOPS_AT_4096 / 4096.0;
        let gpu_equivalent = 74.0 * per_core;
        assert!((15.0..20.0).contains(&gpu_equivalent), "≈17 Gflops per GPU equivalent");
    }
}

//! Figure-series generators: one function per evaluation figure.
//!
//! Each returns serde-serializable rows so the bench binaries can print
//! the paper-style table *and* emit machine-checkable JSON for
//! EXPERIMENTS.md regression.

use crate::capability::{bgp, sustained_tflops, xt4, xt5, CpuMachine};
use crate::cost::{OpConfig, OperatorKind, PartitionGeometry, Precision, Recon};
use crate::model::ClusterModel;
use crate::solver_model::{
    bicgstab_solve, gcr_dd_solve, multishift_solve, StaggeredIterModel, WilsonIterModel,
};
use crate::streams::simulate_dslash;
use lqcd_lattice::{Dims, PartitionScheme};
use lqcd_util::Result;
use serde::{Deserialize, Serialize};

/// The paper's Wilson-clover volume (Figs. 5, 7, 8, 9).
pub fn wilson_volume() -> Dims {
    Dims::symm(32, 256)
}

/// The paper's asqtad volume (Figs. 6, 10).
pub fn staggered_volume() -> Dims {
    Dims::symm(64, 192)
}

/// One point of a per-GPU throughput curve.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ThroughputPoint {
    /// GPU count.
    pub gpus: usize,
    /// Partitioning label.
    pub scheme: String,
    /// Precision label.
    pub precision: String,
    /// Gflops per GPU.
    pub gflops_per_gpu: f64,
    /// Aggregate Tflops.
    pub total_tflops: f64,
}

fn dslash_point(
    model: &ClusterModel,
    volume: Dims,
    scheme: PartitionScheme,
    gpus: usize,
    cfg: &OpConfig,
) -> Result<ThroughputPoint> {
    let grid = scheme.grid(volume, gpus)?;
    let geo = PartitionGeometry::of(&grid);
    let t = simulate_dslash(model, &geo, cfg);
    let flops = geo.vol_cb as f64 * cfg.nominal_flops_per_site();
    let gflops = flops / t.total / 1e9;
    Ok(ThroughputPoint {
        gpus,
        scheme: scheme.label().into(),
        precision: cfg.precision.label().into(),
        gflops_per_gpu: gflops,
        total_tflops: gflops * gpus as f64 / 1e3,
    })
}

/// Fig. 5: Wilson-clover dslash strong scaling, SP & HP, 12-reconstruct,
/// V = 32³×256, 8→256 GPUs.
pub fn fig5(model: &ClusterModel) -> Result<Vec<ThroughputPoint>> {
    let mut out = Vec::new();
    for &p in &[Precision::Single, Precision::Half] {
        let cfg = OpConfig { kind: OperatorKind::WilsonClover, precision: p, recon: Recon::Twelve };
        for gpus in [8, 16, 32, 64, 128, 256] {
            out.push(dslash_point(model, wilson_volume(), PartitionScheme::XYZT, gpus, &cfg)?);
        }
    }
    Ok(out)
}

/// Fig. 6: asqtad dslash strong scaling, DP & SP, ZT vs YZT vs XYZT,
/// V = 64³×192, no reconstruction, 32→256 GPUs.
pub fn fig6(model: &ClusterModel) -> Result<Vec<ThroughputPoint>> {
    let mut out = Vec::new();
    for scheme in [PartitionScheme::ZT, PartitionScheme::YZT, PartitionScheme::XYZT] {
        for &p in &[Precision::Double, Precision::Single] {
            let cfg = OpConfig { kind: OperatorKind::Asqtad, precision: p, recon: Recon::None };
            for gpus in [32, 64, 128, 256] {
                match dslash_point(model, staggered_volume(), scheme, gpus, &cfg) {
                    Ok(pt) => out.push(pt),
                    // Some (scheme, count) pairs don't factor — the paper
                    // likewise only shows constructible points.
                    Err(_) => continue,
                }
            }
        }
    }
    Ok(out)
}

/// Weak scaling: per-GPU throughput at *fixed local volume* (the §5
/// contrast case — the predecessor work showed "excellent (artificial)
/// weak scaling performance" because the local problem, and hence the
/// surface-to-volume ratio, never changes as GPUs are added).
pub fn weak_scaling(
    model: &ClusterModel,
    local: Dims,
    scheme: PartitionScheme,
    gpu_counts: &[usize],
    cfg: &OpConfig,
) -> Result<Vec<ThroughputPoint>> {
    let mut out = Vec::new();
    for &gpus in gpu_counts {
        // Grow the global volume with the GPU count so the per-rank
        // volume stays constant (powers of two along the scheme's dims).
        let global = {
            let mut g = local.0;
            let mut remaining = gpus;
            let dims = scheme.dims();
            let mut i = 0;
            while remaining > 1 {
                let d = dims[i % dims.len()];
                g[d] *= 2;
                remaining /= 2;
                i += 1;
            }
            Dims(g)
        };
        let grid = scheme.grid(global, gpus)?;
        let geo = PartitionGeometry::of(&grid);
        debug_assert_eq!(geo.vol_cb, local.volume() / 2, "local volume must stay fixed");
        let t = simulate_dslash(model, &geo, cfg);
        let flops = geo.vol_cb as f64 * cfg.nominal_flops_per_site();
        let gflops = flops / t.total / 1e9;
        out.push(ThroughputPoint {
            gpus,
            scheme: scheme.label().into(),
            precision: cfg.precision.label().into(),
            gflops_per_gpu: gflops,
            total_tflops: gflops * gpus as f64 / 1e3,
        });
    }
    Ok(out)
}

/// One point of the Fig. 7/8 solver comparison.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SolverPoint {
    /// GPU count.
    pub gpus: usize,
    /// Solver label ("BiCGstab" / "GCR-DD").
    pub solver: String,
    /// Sustained Tflops over the solve.
    pub tflops: f64,
    /// Time to solution, s.
    pub time_to_solution: f64,
    /// Iterations.
    pub iterations: f64,
}

/// Figs. 7 & 8: Wilson-clover mixed-precision BiCGstab vs GCR-DD,
/// V = 32³×256, 10 MR steps.
pub fn fig7_fig8(model: &ClusterModel, iters: &WilsonIterModel) -> Result<Vec<SolverPoint>> {
    let sp = OpConfig {
        kind: OperatorKind::WilsonClover,
        precision: Precision::Single,
        recon: Recon::Twelve,
    };
    let hp = OpConfig { precision: Precision::Half, ..sp };
    let mut out = Vec::new();
    for gpus in [4usize, 8, 16, 32, 64, 128, 256] {
        let grid = PartitionScheme::XYZT.grid(wilson_volume(), gpus)?;
        let geo = PartitionGeometry::of(&grid);
        // BiCGstab: double-single, bulk iterations at SP.
        let b = bicgstab_solve(model, &geo, &sp, iters.bicgstab_iters);
        out.push(SolverPoint {
            gpus,
            solver: "BiCGstab".into(),
            tflops: b.sustained_flops / 1e12,
            time_to_solution: b.time_to_solution,
            iterations: b.iterations,
        });
        // GCR-DD: single-half-half.
        let g = gcr_dd_solve(model, &geo, &sp, &hp, iters);
        out.push(SolverPoint {
            gpus,
            solver: "GCR-DD".into(),
            tflops: g.sustained_flops / 1e12,
            time_to_solution: g.time_to_solution,
            iterations: g.iterations,
        });
    }
    Ok(out)
}

/// One point of the Fig. 9 capability-machine context plot.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CapabilityPoint {
    /// Machine name.
    pub machine: String,
    /// Solver description.
    pub solver: String,
    /// Core count.
    pub cores: usize,
    /// Sustained Tflops in the solver.
    pub tflops: f64,
}

/// Fig. 9: BG/P, XT4, XT5 strong scaling on the same 32³×256 volume.
pub fn fig9() -> Vec<CapabilityPoint> {
    let volume = wilson_volume().volume() as f64;
    let mut out = Vec::new();
    let machines: [(CpuMachine, &[usize]); 3] = [
        (bgp(), &[4096, 8192, 16_384, 24_576, 32_768]),
        (xt4(), &[4096, 8192, 12_288, 16_384]),
        (xt5(), &[8192, 16_384, 24_576, 32_768]),
    ];
    for (m, cores_list) in machines {
        for &cores in cores_list {
            out.push(CapabilityPoint {
                machine: m.name.clone(),
                solver: m.solver.clone(),
                cores,
                tflops: sustained_tflops(&m, cores, volume),
            });
        }
    }
    out
}

/// Fig. 10: asqtad mixed-precision multi-shift solver, ZT/YZT/XYZT,
/// V = 64³×192, total Tflops at 64→256 GPUs.
pub fn fig10(model: &ClusterModel, iters: &StaggeredIterModel) -> Result<Vec<ThroughputPoint>> {
    let sp =
        OpConfig { kind: OperatorKind::Asqtad, precision: Precision::Single, recon: Recon::None };
    let dp = OpConfig { precision: Precision::Double, ..sp };
    let mut out = Vec::new();
    for scheme in [PartitionScheme::ZT, PartitionScheme::YZT, PartitionScheme::XYZT] {
        for gpus in [64usize, 128, 256] {
            let Ok(grid) = scheme.grid(staggered_volume(), gpus) else { continue };
            let geo = PartitionGeometry::of(&grid);
            let s = multishift_solve(model, &geo, &sp, &dp, iters);
            out.push(ThroughputPoint {
                gpus,
                scheme: scheme.label().into(),
                precision: "mixed".into(),
                gflops_per_gpu: s.sustained_flops / gpus as f64 / 1e9,
                total_tflops: s.sustained_flops / 1e12,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::edge;

    #[test]
    fn fig5_shape_matches_paper() {
        let pts = fig5(&edge()).unwrap();
        let sp: Vec<&ThroughputPoint> = pts.iter().filter(|p| p.precision == "SP").collect();
        let hp: Vec<&ThroughputPoint> = pts.iter().filter(|p| p.precision == "HP").collect();
        // Monotone decline per GPU.
        for w in sp.windows(2) {
            assert!(w[1].gflops_per_gpu < w[0].gflops_per_gpu);
        }
        // HP > SP everywhere, with a shrinking ratio.
        let first_ratio = hp[0].gflops_per_gpu / sp[0].gflops_per_gpu;
        let last_ratio = hp[5].gflops_per_gpu / sp[5].gflops_per_gpu;
        assert!(first_ratio > 1.5, "HP/SP at 8 GPUs: {first_ratio}");
        assert!(last_ratio < first_ratio, "HP advantage must diminish (Fig. 5)");
        // Scale anchor: SP at 8 GPUs lands near the paper's ≈ 100–150
        // Gflops/GPU; at 256 GPUs well below 64.
        assert!((80.0..190.0).contains(&sp[0].gflops_per_gpu), "{}", sp[0].gflops_per_gpu);
        assert!(sp[5].gflops_per_gpu < 64.0);
    }

    #[test]
    fn fig6_xyzt_wins_at_256_but_not_at_32() {
        let pts = fig6(&edge()).unwrap();
        let get = |scheme: &str, gpus: usize, prec: &str| {
            pts.iter()
                .find(|p| p.scheme == scheme && p.gpus == gpus && p.precision == prec)
                .map(|p| p.gflops_per_gpu)
        };
        // At 256 GPUs the best surface-to-volume ratio wins (paper §7.3).
        if let (Some(xyzt), Some(zt)) = (get("XYZT", 256, "SP"), get("ZT", 256, "SP")) {
            assert!(xyzt > zt, "XYZT {xyzt} must beat ZT {zt} at 256 GPUs");
        } else {
            // ZT must at least exist at 64.
            let (xyzt, zt) = (get("XYZT", 256, "SP").unwrap(), get("ZT", 64, "SP").unwrap());
            assert!(xyzt > 0.0 && zt > 0.0);
        }
        // SP beats DP at like-for-like points.
        for gpus in [64usize, 256] {
            if let (Some(sp), Some(dp)) = (get("XYZT", gpus, "SP"), get("XYZT", gpus, "DP")) {
                assert!(sp > dp);
            }
        }
    }

    #[test]
    fn fig7_fig8_shape_matches_paper() {
        let pts = fig7_fig8(&edge(), &WilsonIterModel::default()).unwrap();
        let tts = |solver: &str, gpus: usize| {
            pts.iter()
                .find(|p| p.solver == solver && p.gpus == gpus)
                .map(|p| p.time_to_solution)
                .unwrap()
        };
        // At 32 GPUs BiCGstab is superior or comparable.
        assert!(tts("BiCGstab", 32) < tts("GCR-DD", 32) * 1.3);
        // Past 32, GCR-DD wins — the paper reports 1.52×/1.63×/1.64× at
        // 64/128/256; the model lands in the same band with a slightly
        // steeper trend.
        for gpus in [64usize, 128, 256] {
            let ratio = tts("BiCGstab", gpus) / tts("GCR-DD", gpus);
            assert!(
                (1.2..2.2).contains(&ratio),
                "at {gpus} GPUs improvement {ratio} should be near the paper's 1.5–1.64×"
            );
        }
        // And the win factor grows (or at least does not shrink) with
        // scale, as in Fig. 8.
        let r64 = tts("BiCGstab", 64) / tts("GCR-DD", 64);
        let r256 = tts("BiCGstab", 256) / tts("GCR-DD", 256);
        assert!(r256 >= r64);
        // GCR-DD exceeds 10 Tflops at ≥128 GPUs (§9.1).
        let tf = |gpus: usize| {
            pts.iter().find(|p| p.solver == "GCR-DD" && p.gpus == gpus).unwrap().tflops
        };
        assert!(tf(128) > 8.0, "GCR-DD at 128: {} Tflops", tf(128));
        assert!(tf(256) > 10.0, "GCR-DD at 256: {} Tflops", tf(256));
    }

    #[test]
    fn fig9_band() {
        let pts = fig9();
        let max = pts.iter().map(|p| p.tflops).fold(0.0f64, f64::max);
        assert!((10.0..20.0).contains(&max), "peak capability {max} Tflops");
        assert!(pts.iter().all(|p| p.tflops > 0.5));
    }

    #[test]
    fn weak_scaling_is_nearly_flat_while_strong_collapses() {
        let model = edge();
        let cfg = crate::cost::OpConfig {
            kind: crate::cost::OperatorKind::WilsonClover,
            precision: crate::cost::Precision::Single,
            recon: crate::cost::Recon::Twelve,
        };
        // T-only weak scaling, as the predecessor work [4] ran it: once
        // the first cut exists, the per-rank surface never changes, so
        // per-GPU throughput is flat ("excellent (artificial) weak
        // scaling performance", §5).
        let weak = weak_scaling(
            &model,
            Dims([16, 16, 16, 32]),
            PartitionScheme::T,
            &[2, 4, 8, 16, 32],
            &cfg,
        )
        .unwrap();
        let w0 = weak[0].gflops_per_gpu;
        let w_last = weak.last().unwrap().gflops_per_gpu;
        assert!(
            (w_last - w0).abs() < 0.05 * w0,
            "T-only weak scaling should be flat: {w0} -> {w_last}"
        );
        // ... while strong scaling at the same end volume collapses hard.
        let strong = fig5(&model).unwrap();
        let s8 = strong.iter().find(|p| p.precision == "SP" && p.gpus == 8).unwrap();
        let s256 = strong.iter().find(|p| p.precision == "SP" && p.gpus == 256).unwrap();
        assert!(s256.gflops_per_gpu < 0.35 * s8.gflops_per_gpu);
    }

    #[test]
    fn fig10_shape_matches_paper() {
        let pts = fig10(&edge(), &StaggeredIterModel::default()).unwrap();
        let xyzt: Vec<&ThroughputPoint> = pts.iter().filter(|p| p.scheme == "XYZT").collect();
        assert_eq!(xyzt.len(), 3);
        // 64→256 speedup in total Tflops near 2.56×.
        let speedup = xyzt[2].total_tflops / xyzt[0].total_tflops;
        assert!((1.9..3.3).contains(&speedup), "64→256 speedup {speedup}");
        // Absolute scale: ~5.5 Tflops at 256 GPUs mixed precision.
        assert!(
            (3.0..9.0).contains(&xyzt[2].total_tflops),
            "256-GPU total {} Tflops",
            xyzt[2].total_tflops
        );
    }
}

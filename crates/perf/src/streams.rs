//! Discrete-event simulation of the 9-stream dslash schedule (Fig. 4).
//!
//! One "GPU" executes kernels on a single in-order kernel stream; each
//! partitioned dimension has two communication pipelines (backward /
//! forward) that move a ghost message through D2H over the shared PCI-E
//! bus, a pinned→pageable host copy, the MPI transfer, a second host copy
//! and the H2D upload. The schedule is the paper's:
//!
//! 1. gather kernels for every partitioned dimension launch first (the T
//!    face is contiguous and needs no gather, §6.1);
//! 2. the interior kernel runs next, overlapping all communication;
//! 3. exterior kernels run sequentially, each blocking on its
//!    dimension's messages; corner sites force the sequential order
//!    (§6.2).
//!
//! Resources (`gpu`, `pcie`, `host`, `nic`) are modeled as serially
//! reusable; contention emerges naturally when several pipelines are in
//! flight — which is exactly the regime Figs. 5–6 probe.

use crate::cost::{OpConfig, PartitionGeometry, Precision};
use crate::model::ClusterModel;
use lqcd_lattice::NDIM;
use serde::{Deserialize, Serialize};

/// One scheduled interval, for timeline rendering.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimelineEntry {
    /// Stream label, mirroring Fig. 4 ("kernels", "Z-forward", ...).
    pub stream: String,
    /// Task label ("gather Z+", "interior", "MPI", ...).
    pub task: String,
    /// Start time, s.
    pub start: f64,
    /// End time, s.
    pub end: f64,
}

/// The outcome of one simulated dslash application (one parity).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DslashTiming {
    /// Wall-clock time of the whole application, s.
    pub total: f64,
    /// When the interior kernel finished, s.
    pub interior_end: f64,
    /// Time the GPU kernel stream sat idle waiting for communication, s.
    pub gpu_idle: f64,
    /// Aggregate bytes shipped over the interconnect (all dims/dirs), B.
    pub nic_bytes: f64,
    /// Full task timeline for visualization.
    pub timeline: Vec<TimelineEntry>,
}

const DIM_NAMES: [&str; 4] = ["X", "Y", "Z", "T"];

/// Kernel execution time: bandwidth-bound with small-volume saturation,
/// floored by the flop-rate limit, plus launch overhead.
fn kernel_time(
    model: &ClusterModel,
    sites_cb: usize,
    bytes: f64,
    flops: f64,
    precision: Precision,
) -> f64 {
    let peak = match precision {
        Precision::Double => model.gpu.peak_dp,
        // Half computes in f32 registers.
        Precision::Single | Precision::Half => model.gpu.peak_sp,
    };
    let mut bw = model.eff_bandwidth(sites_cb);
    if precision == Precision::Half {
        bw *= model.gpu.half_efficiency;
    }
    (bytes / bw).max(flops / peak) + model.gpu.launch_overhead
}

/// Simulate one dslash application (one parity of the source) on the
/// given partition geometry.
pub fn simulate_dslash(
    model: &ClusterModel,
    geo: &PartitionGeometry,
    cfg: &OpConfig,
) -> DslashTiming {
    let mut timeline = Vec::new();
    let push = |timeline: &mut Vec<TimelineEntry>, stream: &str, task: String, s: f64, e: f64| {
        timeline.push(TimelineEntry { stream: stream.to_string(), task, start: s, end: e });
    };

    // Serially-reusable resources: next-free timestamps.
    let mut gpu_free = 0.0f64;
    let mut pcie_free = 0.0f64;
    let mut host_free = 0.0f64;
    let mut nic_free = 0.0f64;
    let mut gpu_busy = 0.0f64;

    let depth = cfg.depth();
    let part_dims: Vec<usize> = (0..NDIM).filter(|&d| geo.partitioned[d]).collect();

    // --- 1. Gather kernels (both directions per dim; none for T). ---
    // Gather end time per (dim, dir).
    let mut gather_end = [[0.0f64; 2]; NDIM];
    for &d in &part_dims {
        for dir in 0..2 {
            if d == 3 {
                // T face contiguous: no gather kernel.
                gather_end[d][dir] = 0.0;
                continue;
            }
            let ghost_sites = depth * geo.face_vol_cb[d];
            // Read face spinors + write the packed buffer.
            let bytes =
                2.0 * ghost_sites as f64 * cfg.ghost_reals_per_site() * cfg.precision.bytes();
            let t = kernel_time(model, ghost_sites, bytes, 0.0, cfg.precision);
            let start = gpu_free;
            gpu_free += t;
            gpu_busy += t;
            gather_end[d][dir] = gpu_free;
            push(
                &mut timeline,
                "kernels",
                format!("gather {}{}", DIM_NAMES[d], if dir == 0 { "-" } else { "+" }),
                start,
                gpu_free,
            );
        }
    }

    // --- 2. Interior kernel. ---
    let interior_bytes = geo.vol_cb as f64 * cfg.bytes_per_site();
    let interior_flops = geo.vol_cb as f64 * cfg.flops_per_site();
    let t_int = kernel_time(model, geo.vol_cb, interior_bytes, interior_flops, cfg.precision);
    let int_start = gpu_free;
    gpu_free += t_int;
    gpu_busy += t_int;
    let interior_end = gpu_free;
    push(&mut timeline, "kernels", "interior".into(), int_start, interior_end);

    // --- 3. Communication pipelines per (dim, dir). ---
    let mut nic_bytes = 0.0f64;
    let mut comm_done = [[0.0f64; 2]; NDIM];
    let pcie_bw = model.pcie_bw_per_gpu();
    // Serve pipelines in readiness order: the T faces need no gather and
    // hit the bus first (paper §6.1).
    let mut order: Vec<(usize, usize)> =
        part_dims.iter().flat_map(|&d| [(d, 0usize), (d, 1usize)]).collect();
    order.sort_by(|a, b| gather_end[a.0][a.1].total_cmp(&gather_end[b.0][b.1]));
    for (d, dir) in order {
        {
            let stream =
                format!("{}-{}", DIM_NAMES[d], if dir == 0 { "backward" } else { "forward" });
            let msg = {
                // One parity's ghost message for this (dim, dir).
                let face_cb = geo.face_vol_cb[d] as f64;
                face_cb * depth as f64 * cfg.ghost_site_bytes()
            };
            nic_bytes += msg;
            let sync = model.node.stage_sync_latency;
            let mut t = gather_end[d][dir];
            // D2H over the shared PCI-E bus.
            let s = t.max(pcie_free) + sync;
            let e = s + model.node.pcie_latency + msg / pcie_bw;
            pcie_free = e;
            push(&mut timeline, &stream, "D2H".into(), s, e);
            t = e;
            // Pinned → pageable host copy (skipped under GPU-Direct,
            // §6.3's anticipated improvement).
            if !model.node.gpu_direct {
                let s = t.max(host_free) + sync;
                let e = s + msg / model.node.host_memcpy_bw;
                host_free = e;
                push(&mut timeline, &stream, "memcpy".into(), s, e);
                t = e;
            }
            // MPI transfer (send + matching receive modeled symmetric).
            let s = t.max(nic_free) + sync;
            let e = s + model.node.nic_latency + msg / model.node.nic_bw;
            nic_free = e;
            push(&mut timeline, &stream, "MPI".into(), s, e);
            t = e;
            // Pageable → pinned copy on the receive side.
            if !model.node.gpu_direct {
                let s = t.max(host_free) + sync;
                let e = s + msg / model.node.host_memcpy_bw;
                host_free = e;
                push(&mut timeline, &stream, "memcpy".into(), s, e);
                t = e;
            }
            // H2D upload.
            let s = t.max(pcie_free) + sync;
            let e = s + model.node.pcie_latency + msg / pcie_bw;
            pcie_free = e;
            push(&mut timeline, &stream, "H2D".into(), s, e);
            comm_done[d][dir] = e;
        }
    }

    // --- 4. Exterior kernels, sequential, each blocking on its dim. ---
    for &d in &part_dims {
        let ready = comm_done[d][0].max(comm_done[d][1]);
        let sites = 2 * depth * geo.face_vol_cb[d];
        // Per ghost hop: a link, the ghost (half-)spinor, and the
        // read-modify-write of the destination spinor.
        let hops = match cfg.kind {
            crate::cost::OperatorKind::Asqtad => 2.0 * 4.0 * geo.face_vol_cb[d] as f64,
            _ => 2.0 * geo.face_vol_cb[d] as f64,
        };
        let b = cfg.precision.bytes();
        let bytes = hops * (cfg.recon.reals() + cfg.ghost_reals_per_site()) * b
            + sites as f64 * 2.0 * cfg.spinor_reals() * b;
        let flops = hops / 8.0 * cfg.flops_per_site() * 0.5;
        let t = kernel_time(model, sites.max(1), bytes, flops, cfg.precision);
        let start = gpu_free.max(ready);
        let end = start + t;
        gpu_free = end;
        gpu_busy += t;
        push(&mut timeline, "kernels", format!("exterior {}", DIM_NAMES[d]), start, end);
    }

    let total = gpu_free;
    DslashTiming { total, interior_end, gpu_idle: total - gpu_busy, nic_bytes, timeline }
}

/// Time of the *Dirichlet* (communication-free) dslash: the Schwarz block
/// operator — interior work only, full local volume.
pub fn dirichlet_dslash_time(model: &ClusterModel, geo: &PartitionGeometry, cfg: &OpConfig) -> f64 {
    let bytes = geo.vol_cb as f64 * cfg.bytes_per_site();
    let flops = geo.vol_cb as f64 * cfg.flops_per_site();
    kernel_time(model, geo.vol_cb, bytes, flops, cfg.precision)
}

/// Time to stream `passes` full vectors through device memory (BLAS-1
/// costing).
pub fn blas_time(
    model: &ClusterModel,
    geo: &PartitionGeometry,
    cfg: &OpConfig,
    passes: f64,
) -> f64 {
    let bytes = passes * geo.vol_cb as f64 * cfg.spinor_reals() * cfg.precision.bytes();
    bytes / model.eff_bandwidth(geo.vol_cb) + model.gpu.launch_overhead
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{OperatorKind, Recon};
    use crate::model::edge;
    use lqcd_lattice::{Dims, PartitionScheme};

    fn wilson_cfg(p: Precision) -> OpConfig {
        OpConfig { kind: OperatorKind::WilsonClover, precision: p, recon: Recon::Twelve }
    }

    fn geo(ranks: usize) -> PartitionGeometry {
        let grid = PartitionScheme::XYZT.grid(Dims::symm(32, 256), ranks).unwrap();
        PartitionGeometry::of(&grid)
    }

    #[test]
    fn single_rank_has_no_comm() {
        let m = edge();
        let g = geo(1);
        let t = simulate_dslash(&m, &g, &wilson_cfg(Precision::Single));
        assert_eq!(t.nic_bytes, 0.0);
        assert!(t.gpu_idle.abs() < 1e-12);
        assert_eq!(t.total, t.interior_end);
        // Single GPU at full volume: Gflops in a plausible band.
        let gflops =
            g.vol_cb as f64 * wilson_cfg(Precision::Single).flops_per_site() / t.total / 1e9;
        assert!((80.0..200.0).contains(&gflops), "single-GPU SP dslash {gflops} Gflops");
    }

    #[test]
    fn strong_scaling_degrades_per_gpu_throughput() {
        let m = edge();
        let cfg = wilson_cfg(Precision::Single);
        let mut last_per_gpu = f64::INFINITY;
        for ranks in [8, 32, 128, 256] {
            let g = geo(ranks);
            let t = simulate_dslash(&m, &g, &cfg);
            let per_gpu = g.vol_cb as f64 * cfg.flops_per_site() / t.total / 1e9;
            assert!(
                per_gpu < last_per_gpu,
                "per-GPU Gflops should fall with rank count ({ranks}: {per_gpu})"
            );
            last_per_gpu = per_gpu;
        }
    }

    #[test]
    fn half_precision_advantage_shrinks_with_scale() {
        // Fig. 5's observation: HP beats SP by ~2× at small scale, but the
        // gap narrows once communication dominates.
        let m = edge();
        let sp = wilson_cfg(Precision::Single);
        let hp = wilson_cfg(Precision::Half);
        let ratio_at = |ranks: usize| {
            let g = geo(ranks);
            simulate_dslash(&m, &g, &sp).total / simulate_dslash(&m, &g, &hp).total
        };
        let small = ratio_at(8);
        let large = ratio_at(256);
        assert!(small > 1.5, "HP should be ≫ SP at small scale, ratio {small}");
        assert!(large < small, "HP advantage must shrink at scale: {large} vs {small}");
    }

    #[test]
    fn more_partitioned_dims_less_surface_but_more_pipelines() {
        // At 256 GPUs, XYZT has smaller per-dim faces than ZT (which may
        // not even be constructible) — compare at 64 where both exist on
        // the staggered volume.
        let m = edge();
        let v = Dims::symm(64, 192);
        let cfg = OpConfig {
            kind: OperatorKind::Asqtad,
            precision: Precision::Single,
            recon: Recon::None,
        };
        let zt = PartitionGeometry::of(&PartitionScheme::ZT.grid(v, 64).unwrap());
        let xyzt = PartitionGeometry::of(&PartitionScheme::XYZT.grid(v, 64).unwrap());
        let t_zt = simulate_dslash(&m, &zt, &cfg);
        let t_xyzt = simulate_dslash(&m, &xyzt, &cfg);
        // Total surface shipped is smaller for the balanced split.
        assert!(t_xyzt.nic_bytes < t_zt.nic_bytes);
    }

    #[test]
    fn timeline_is_consistent() {
        let m = edge();
        let g = geo(64);
        let t = simulate_dslash(&m, &g, &wilson_cfg(Precision::Single));
        for e in &t.timeline {
            assert!(e.end >= e.start, "negative interval in {e:?}");
            assert!(e.end <= t.total + 1e-12, "task past total in {e:?}");
        }
        // Kernel-stream entries never overlap.
        let mut kernel_spans: Vec<(f64, f64)> =
            t.timeline.iter().filter(|e| e.stream == "kernels").map(|e| (e.start, e.end)).collect();
        kernel_spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in kernel_spans.windows(2) {
            assert!(w[0].1 <= w[1].0 + 1e-15, "kernel overlap: {w:?}");
        }
        // Exterior kernels come after the interior.
        let interior_end = t.interior_end;
        for e in &t.timeline {
            if e.task.starts_with("exterior") {
                assert!(e.start >= interior_end - 1e-15);
            }
        }
    }

    #[test]
    fn dirichlet_time_has_no_comm_dependency() {
        let m = edge();
        let cfg = wilson_cfg(Precision::Half);
        let g = geo(256);
        let t_d = dirichlet_dslash_time(&m, &g, &cfg);
        let t_full = simulate_dslash(&m, &g, &cfg).total;
        assert!(t_d < t_full, "Dirichlet {t_d} must undercut full {t_full}");
    }
}

#[cfg(test)]
mod traffic_tests {
    use super::*;
    use crate::cost::{OpConfig, OperatorKind, PartitionGeometry, Recon};
    use crate::model::{edge, edge_gpu_direct};
    use lqcd_lattice::{Dims, PartitionScheme};

    /// Exact wire-byte accounting: the simulator's NIC total must equal
    /// the geometry-derived sum over partitioned dimensions — 2 messages
    /// per dim, each depth × face_cb ghost sites at the operator's wire
    /// width. Pins the model's inputs to the real lattice code.
    #[test]
    fn nic_bytes_match_geometry_exactly() {
        let m = edge();
        for (kind, vol, recon) in [
            (OperatorKind::WilsonClover, Dims::symm(32, 256), Recon::Twelve),
            (OperatorKind::Asqtad, Dims::symm(64, 192), Recon::None),
        ] {
            for prec in [Precision::Double, Precision::Single, Precision::Half] {
                let cfg = OpConfig { kind, precision: prec, recon };
                let grid = PartitionScheme::XYZT.grid(vol, 64).unwrap();
                let geo = PartitionGeometry::of(&grid);
                let t = simulate_dslash(&m, &geo, &cfg);
                let want: f64 = (0..NDIM)
                    .filter(|&d| geo.partitioned[d])
                    .map(|d| {
                        2.0 * geo.face_vol_cb[d] as f64
                            * cfg.depth() as f64
                            * cfg.ghost_site_bytes()
                    })
                    .sum();
                assert!(
                    (t.nic_bytes - want).abs() < 1e-6,
                    "{kind:?}/{prec:?}: simulated {} vs geometric {want}",
                    t.nic_bytes
                );
            }
        }
    }

    /// GPU-Direct strictly removes pipeline stages: fewer timeline tasks,
    /// never more total time, and zero host-memcpy entries.
    #[test]
    fn gpu_direct_removes_host_copies() {
        let cfg = OpConfig {
            kind: OperatorKind::WilsonClover,
            precision: Precision::Single,
            recon: Recon::Twelve,
        };
        let geo =
            PartitionGeometry::of(&PartitionScheme::XYZT.grid(Dims::symm(32, 256), 128).unwrap());
        let base = simulate_dslash(&edge(), &geo, &cfg);
        let direct = simulate_dslash(&edge_gpu_direct(), &geo, &cfg);
        let memcpys = |t: &DslashTiming| t.timeline.iter().filter(|e| e.task == "memcpy").count();
        assert!(memcpys(&base) > 0);
        assert_eq!(memcpys(&direct), 0, "GPU-Direct must eliminate host copies");
        assert!(direct.total < base.total);
        assert_eq!(direct.nic_bytes, base.nic_bytes, "wire traffic unchanged");
    }

    /// Staggered faces ship 3 layers of 6-real color vectors vs Wilson's
    /// single layer of 12-real half spinors: exactly 1.5× the wire bytes
    /// per face site at equal precision — and both operators launch the
    /// same number of gather kernels (two per non-T partitioned dim).
    #[test]
    fn naik_depth_wire_width_is_exactly_1p5x_wilson() {
        let m = edge();
        let vol = Dims::symm(32, 64);
        let grid = PartitionScheme::YZT.grid(vol, 8).unwrap();
        let geo = PartitionGeometry::of(&grid);
        let wilson = OpConfig {
            kind: OperatorKind::Wilson,
            precision: Precision::Single,
            recon: Recon::None,
        };
        let asqtad = OpConfig {
            kind: OperatorKind::Asqtad,
            precision: Precision::Single,
            recon: Recon::None,
        };
        let per_face = |cfg: &OpConfig| cfg.depth() as f64 * cfg.ghost_site_bytes();
        assert_eq!(per_face(&asqtad) / per_face(&wilson), 1.5);
        let tw = simulate_dslash(&m, &geo, &wilson);
        let ta = simulate_dslash(&m, &geo, &asqtad);
        assert!((ta.nic_bytes / tw.nic_bytes - 1.5).abs() < 1e-12);
        let gathers =
            |t: &DslashTiming| t.timeline.iter().filter(|e| e.task.starts_with("gather")).count();
        assert_eq!(gathers(&tw), gathers(&ta));
    }
}

//! The simulated GPU-cluster performance model.
//!
//! We have no Edge cluster, no Tesla M2050s, no QDR InfiniBand — so the
//! paper's *measurements* (Figs. 5–10) are regenerated from a calibrated
//! analytic model whose structure mirrors the implementation:
//!
//! * [`model`] — hardware parameters: device (bandwidth-bound kernels with
//!   a small-volume saturation roll-off), PCI-E bus shared by the two GPUs
//!   of a node, pinned↔pageable host copies, and the interconnect;
//!   presets for Edge (§7.1) and the Fig. 9 capability machines;
//! * [`cost`] — per-site flop and byte counts for each operator ×
//!   precision × link-compression combination, and ghost-zone traffic per
//!   partitioned dimension, derived from the *actual* lattice geometry
//!   code (`lqcd-lattice`), so the model cannot drift from the
//!   implementation;
//! * [`streams`] — a discrete-event simulation of the 9-stream schedule
//!   of Fig. 4: gather kernels first, the interior kernel overlapping the
//!   per-dimension communication pipelines (D2H → host memcpy → MPI →
//!   memcpy → H2D), then sequential exterior kernels;
//! * [`solver_model`] — per-iteration costs and iteration-count models
//!   for BiCGstab, GCR-DD and multi-shift CG, with the iteration inputs
//!   calibrated from this repository's *real* small-lattice solves;
//! * [`capability`] — the CPU capability-machine curves of Fig. 9;
//! * [`sweep`] — figure-series generators used by the bench binaries.

pub mod capability;
pub mod cost;
pub mod model;
pub mod solver_model;
pub mod streams;
pub mod sweep;

pub use cost::{OperatorKind, Precision, Recon};
pub use model::{edge, edge_gpu_direct, ClusterModel};
pub use streams::{simulate_dslash, DslashTiming};

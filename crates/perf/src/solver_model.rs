//! Per-iteration solver costs and iteration-count models.
//!
//! Wall-clock per iteration comes from the stream simulator; iteration
//! counts come from calibrated models whose *shape* is measured with this
//! repository's real solvers on scaled-down lattices (see EXPERIMENTS.md)
//! and whose absolute scale is set to the paper's physics point
//! (32³×256 anisotropic clover, m_π ≈ 230 MeV).

use crate::cost::{OpConfig, PartitionGeometry};
use crate::model::ClusterModel;
use crate::streams::{blas_time, dirichlet_dslash_time, simulate_dslash};
use serde::{Deserialize, Serialize};

/// Iteration-count model for the Fig. 7/8 Wilson-clover solves.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WilsonIterModel {
    /// Mixed-precision BiCGstab iterations to tolerance — independent of
    /// the process grid (the Krylov trajectory doesn't depend on the
    /// partitioning).
    pub bicgstab_iters: f64,
    /// GCR-DD outer iterations at the reference block volume.
    pub gcr_outer_ref: f64,
    /// Reference Schwarz-block checkerboard volume.
    pub block_ref_cb: f64,
    /// Growth exponent: `outer = ref · (block_ref/block)^q`. Measured
    /// q ≈ 0.15–0.25 on our small-lattice GCR-DD runs (blocks weaken as
    /// they shrink, §8.1/§9.1).
    pub block_exponent: f64,
    /// MR steps inside each Schwarz block (the figures use 10).
    pub mr_steps: usize,
    /// GCR restart length.
    pub kmax: usize,
}

impl Default for WilsonIterModel {
    fn default() -> Self {
        WilsonIterModel {
            // Calibrated so the 32-GPU BiCGstab time-to-solution lands
            // near the paper's ≈ 8–10 s (Fig. 8).
            bicgstab_iters: 520.0,
            gcr_outer_ref: 336.0,
            // The 256-GPU block of 32³×256 (CB volume 16384).
            block_ref_cb: 16_384.0,
            // Mild growth, consistent with our measured small-lattice
            // GCR-DD runs and with the paper's observation that the
            // 128→256 slopes of GCR and BiCGstab match (Amdahl-dominated,
            // not iteration-dominated).
            block_exponent: 0.10,
            mr_steps: 10,
            kmax: 16,
        }
    }
}

impl WilsonIterModel {
    /// GCR-DD outer iterations for a given block (per-rank) volume.
    pub fn gcr_outer(&self, block_cb: usize) -> f64 {
        self.gcr_outer_ref * (self.block_ref_cb / block_cb as f64).powf(self.block_exponent)
    }

    /// BiCGstab iterations (constant across process grids).
    pub fn bicgstab(&self) -> f64 {
        self.bicgstab_iters
    }
}

/// One solver-performance sample.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SolverSample {
    /// Number of GPUs.
    pub gpus: usize,
    /// Wall-clock time to solution, s.
    pub time_to_solution: f64,
    /// Sustained flop rate over the whole solve, flops/s.
    pub sustained_flops: f64,
    /// Iterations used.
    pub iterations: f64,
}

/// Model the mixed-precision BiCGstab solve of Fig. 7/8: double-precision
/// outer reliable updates with the bulk of iterations in single precision.
pub fn bicgstab_solve(
    model: &ClusterModel,
    geo: &PartitionGeometry,
    cfg_inner: &OpConfig,
    iters: f64,
) -> SolverSample {
    // Even-odd matvec = 2 dslash + the site-diagonal T applications.
    let dslash = simulate_dslash(model, geo, cfg_inner).total;
    let t_diag = blas_time(model, geo, cfg_inner, 4.0);
    let matvec = 2.0 * dslash + t_diag;
    // BiCGstab: 2 matvecs, 4 global reductions, ~12 vector passes.
    let per_iter = 2.0 * matvec
        + 4.0 * model.reduction_time(geo.ranks)
        + blas_time(model, geo, cfg_inner, 12.0);
    let time = iters * per_iter;
    // Flops: 2 dslash + diagonal + BLAS per matvec pair.
    let flops_iter = 2.0 * 2.0 * geo.vol_cb as f64 * cfg_inner.nominal_flops_per_site()
        + 12.0 * 2.0 * geo.vol_cb as f64 * cfg_inner.spinor_reals();
    SolverSample {
        gpus: geo.ranks,
        time_to_solution: time,
        sustained_flops: iters * flops_iter * geo.ranks as f64 / time,
        iterations: iters,
    }
}

/// Model the GCR-DD solve of Fig. 7/8 (single-half-half).
pub fn gcr_dd_solve(
    model: &ClusterModel,
    geo: &PartitionGeometry,
    cfg_outer: &OpConfig,
    cfg_precond: &OpConfig,
    iter_model: &WilsonIterModel,
) -> SolverSample {
    let outer_iters = iter_model.gcr_outer(geo.vol_cb);
    // Outer matvec: full communication dslash pair at (single) precision.
    let dslash = simulate_dslash(model, geo, cfg_outer).total;
    let matvec = 2.0 * dslash + blas_time(model, geo, cfg_outer, 4.0);
    // Preconditioner: mr_steps MR iterations on the Dirichlet block at
    // (half) precision: each step is one block matvec (2 Dirichlet
    // dslash) + local BLAS; *no* global reductions.
    let block_dslash = dirichlet_dslash_time(model, geo, cfg_precond);
    let precond =
        iter_model.mr_steps as f64 * (2.0 * block_dslash + blas_time(model, geo, cfg_precond, 6.0));
    // Orthogonalization: on average k/2 dots + caxpys against the basis,
    // plus ~3 reductions for the step scalars. Dots batch into one
    // reduction per iteration in QUDA; we charge two.
    let avg_k = iter_model.kmax as f64 / 2.0;
    let ortho = blas_time(model, geo, cfg_outer, 2.0 * avg_k);
    // One global reduction per outer iteration: the implicit-update
    // scheme batches the orthogonalization inner products ("reduces the
    // orthogonalization overhead", §8.1) — this is the communication
    // asymmetry vs. BiCGstab's four reductions that GCR-DD exploits.
    let per_iter = matvec + precond + ortho + model.reduction_time(geo.ranks);
    // Restart overhead: one high-precision matvec per kmax iterations.
    let restart = matvec / iter_model.kmax as f64;
    let time = outer_iters * (per_iter + restart);
    // Flops: outer matvec + precond (2·mr_steps Dirichlet dslash) + BLAS.
    let vol = geo.vol_cb as f64;
    let flops_iter = 2.0 * vol * cfg_outer.nominal_flops_per_site()
        + iter_model.mr_steps as f64 * 2.0 * vol * cfg_precond.nominal_flops_per_site()
        + (2.0 * avg_k + 6.0) * 2.0 * vol * cfg_outer.spinor_reals();
    SolverSample {
        gpus: geo.ranks,
        time_to_solution: time,
        sustained_flops: outer_iters * flops_iter * geo.ranks as f64 / time,
        iterations: outer_iters,
    }
}

/// Iteration model for the Fig. 10 staggered multi-shift solve.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StaggeredIterModel {
    /// Single-precision multi-shift CG iterations (set by the smallest
    /// shift; §3.1).
    pub multishift_iters: f64,
    /// Number of shifts solved simultaneously.
    pub num_shifts: usize,
    /// Sequential refinement iterations per shift (double-single CG),
    /// ~20 % of the initial count in total (the mixed-precision overhead
    /// note of §9.2).
    pub refine_iters_per_shift: f64,
}

impl Default for StaggeredIterModel {
    fn default() -> Self {
        StaggeredIterModel { multishift_iters: 2200.0, num_shifts: 9, refine_iters_per_shift: 50.0 }
    }
}

/// Model the mixed-precision multi-shift solve of Fig. 10.
pub fn multishift_solve(
    model: &ClusterModel,
    geo: &PartitionGeometry,
    cfg_sp: &OpConfig,
    cfg_dp: &OpConfig,
    iter_model: &StaggeredIterModel,
) -> SolverSample {
    let vol = geo.vol_cb as f64;
    // Normal-op matvec: 2 staggered dslash.
    let dslash_sp = simulate_dslash(model, geo, cfg_sp).total;
    let matvec_sp = 2.0 * dslash_sp;
    // Per iteration: matvec + base CG BLAS (6 passes) + per-shift fused
    // update (3 passes each) + 2 reductions. This is the "extra BLAS1-type
    // linear algebra [that] is extremely bandwidth intensive" (§8.2).
    let n = iter_model.num_shifts as f64;
    let per_iter = matvec_sp
        + blas_time(model, geo, cfg_sp, 6.0 + 3.0 * n)
        + 2.0 * model.reduction_time(geo.ranks);
    let t_multishift = iter_model.multishift_iters * per_iter;
    // Refinement: sequential double-single CG per shift.
    let dslash_dp = simulate_dslash(model, geo, cfg_dp).total;
    let per_refine = 2.0 * dslash_sp
        + blas_time(model, geo, cfg_sp, 6.0)
        + 2.0 * model.reduction_time(geo.ranks)
        // One double-precision true-residual matvec per reliable update
        // (every ~25 inner iterations).
        + (2.0 * dslash_dp) / 25.0;
    let t_refine = n * iter_model.refine_iters_per_shift * per_refine;
    let time = t_multishift + t_refine;
    // Flops.
    let flops_ms = iter_model.multishift_iters
        * (2.0 * vol * cfg_sp.nominal_flops_per_site()
            + (6.0 + 3.0 * n) * 2.0 * vol * cfg_sp.spinor_reals());
    let flops_ref = n
        * iter_model.refine_iters_per_shift
        * (2.0 * vol * cfg_sp.nominal_flops_per_site() + 6.0 * 2.0 * vol * cfg_sp.spinor_reals());
    SolverSample {
        gpus: geo.ranks,
        time_to_solution: time,
        sustained_flops: (flops_ms + flops_ref) * geo.ranks as f64 / time,
        iterations: iter_model.multishift_iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{OperatorKind, Precision, Recon};
    use crate::model::edge;
    use lqcd_lattice::{Dims, PartitionScheme};

    fn wilson_geo(ranks: usize) -> PartitionGeometry {
        PartitionGeometry::of(&PartitionScheme::XYZT.grid(Dims::symm(32, 256), ranks).unwrap())
    }

    const SP: OpConfig = OpConfig {
        kind: OperatorKind::WilsonClover,
        precision: Precision::Single,
        recon: Recon::Twelve,
    };
    const HP: OpConfig = OpConfig {
        kind: OperatorKind::WilsonClover,
        precision: Precision::Half,
        recon: Recon::Twelve,
    };

    #[test]
    fn gcr_outer_iterations_grow_as_blocks_shrink() {
        let m = WilsonIterModel::default();
        let big = m.gcr_outer(131_072);
        let small = m.gcr_outer(16_384);
        assert!(small > big, "smaller blocks ⇒ more outer iterations");
        assert!(small / big < 2.0, "growth should be mild (measured exponent)");
    }

    #[test]
    fn bicgstab_stops_scaling_past_32_gpus() {
        // Fig. 7/8's headline: BiCGstab time-to-solution stops improving.
        let model = edge();
        let iters = WilsonIterModel::default().bicgstab_iters;
        let t32 = bicgstab_solve(&model, &wilson_geo(32), &SP, iters).time_to_solution;
        let t256 = bicgstab_solve(&model, &wilson_geo(256), &SP, iters).time_to_solution;
        let speedup = t32 / t256;
        assert!(
            speedup < 2.0,
            "BiCGstab 32→256 speedup {speedup} should be far below the ideal 8×"
        );
    }

    #[test]
    fn gcr_dd_wins_at_scale_but_not_at_32() {
        let model = edge();
        let im = WilsonIterModel::default();
        let at = |ranks: usize| {
            let geo = wilson_geo(ranks);
            let b = bicgstab_solve(&model, &geo, &SP, im.bicgstab_iters);
            let g = gcr_dd_solve(&model, &geo, &SP, &HP, &im);
            b.time_to_solution / g.time_to_solution
        };
        let r32 = at(32);
        let r256 = at(256);
        assert!(r32 < 1.2, "at 32 GPUs BiCGstab should be competitive (ratio {r32})");
        assert!(r256 > 1.3, "at 256 GPUs GCR-DD must win clearly (ratio {r256})");
    }

    #[test]
    fn multishift_scales_to_256() {
        let model = edge();
        let geo64 =
            PartitionGeometry::of(&PartitionScheme::XYZT.grid(Dims::symm(64, 192), 64).unwrap());
        let geo256 =
            PartitionGeometry::of(&PartitionScheme::XYZT.grid(Dims::symm(64, 192), 256).unwrap());
        let sp = OpConfig {
            kind: OperatorKind::Asqtad,
            precision: Precision::Single,
            recon: Recon::None,
        };
        let dp = OpConfig { precision: Precision::Double, ..sp };
        let im = StaggeredIterModel::default();
        let s64 = multishift_solve(&model, &geo64, &sp, &dp, &im);
        let s256 = multishift_solve(&model, &geo256, &sp, &dp, &im);
        let speedup = s64.time_to_solution / s256.time_to_solution;
        assert!(
            (1.8..3.5).contains(&speedup),
            "64→256 speedup {speedup} should be near the paper's 2.56×"
        );
        assert!(s256.sustained_flops > s64.sustained_flops);
    }
}

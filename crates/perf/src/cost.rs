//! Per-site flop/byte costs of the Dirac operators.
//!
//! Flop counts are the community-standard figures QUDA reports against
//! (1320 flops/site for Wilson dslash, etc.), so our model Gflops are
//! directly comparable to the paper's axes. Byte counts follow from the
//! field encodings in `lqcd-su3`/`lqcd-field`.

use lqcd_lattice::{ProcessGrid, SubLattice, NDIM};
use serde::{Deserialize, Serialize};

/// Which discretization.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OperatorKind {
    /// Wilson (no clover term).
    Wilson,
    /// Wilson-clover.
    WilsonClover,
    /// Improved staggered (asqtad): fat + long links, 3-hop stencil.
    Asqtad,
}

/// Storage precision.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Precision {
    /// 64-bit IEEE.
    Double,
    /// 32-bit IEEE.
    Single,
    /// 16-bit fixed point with per-site norms (compute still in f32).
    Half,
}

impl Precision {
    /// Bytes per stored real number.
    pub fn bytes(self) -> f64 {
        match self {
            Precision::Double => 8.0,
            Precision::Single => 4.0,
            Precision::Half => 2.0,
        }
    }

    /// Label used in figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Precision::Double => "DP",
            Precision::Single => "SP",
            Precision::Half => "HP",
        }
    }
}

/// Gauge-link compression (paper §5 strategy (a)).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Recon {
    /// 18 reals per link (required for non-unitary fat links).
    None,
    /// 12 reals, third row reconstructed.
    Twelve,
    /// 8 reals, minimal parameterization.
    Eight,
}

impl Recon {
    /// Reals stored per link.
    pub fn reals(self) -> f64 {
        match self {
            Recon::None => 18.0,
            Recon::Twelve => 12.0,
            Recon::Eight => 8.0,
        }
    }

    /// Extra flops per link spent reconstructing.
    pub fn extra_flops(self) -> f64 {
        match self {
            Recon::None => 0.0,
            Recon::Twelve => 42.0,
            Recon::Eight => 106.0,
        }
    }
}

/// The standard flops/site of the Wilson dslash (8 SU(3) mat-vecs on
/// half spinors + spin projection/reconstruction + accumulation).
pub const WILSON_DSLASH_FLOPS: f64 = 1320.0;
/// Extra flops/site for the clover term (two 6×6 Hermitian mat-vecs).
pub const CLOVER_FLOPS: f64 = 504.0;
/// Flops/site of the asqtad dslash (16 SU(3) mat-vecs on color vectors +
/// accumulation), the MILC counting.
pub const ASQTAD_DSLASH_FLOPS: f64 = 1146.0;

/// A fully specified operator configuration for costing.
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
pub struct OpConfig {
    /// Discretization.
    pub kind: OperatorKind,
    /// Storage precision.
    pub precision: Precision,
    /// Link compression.
    pub recon: Recon,
}

impl OpConfig {
    /// Nominal flops per site — the community counting used on figure
    /// axes (reconstruction flops are *not* credited, matching QUDA's
    /// reporting).
    pub fn nominal_flops_per_site(&self) -> f64 {
        match self.kind {
            OperatorKind::Wilson => WILSON_DSLASH_FLOPS,
            OperatorKind::WilsonClover => WILSON_DSLASH_FLOPS + CLOVER_FLOPS,
            OperatorKind::Asqtad => ASQTAD_DSLASH_FLOPS,
        }
    }

    /// Flops per lattice site actually executed (including link
    /// reconstruction), used for the kernel flop-rate floor.
    pub fn flops_per_site(&self) -> f64 {
        match self.kind {
            OperatorKind::Wilson => WILSON_DSLASH_FLOPS + 8.0 * self.recon.extra_flops(),
            OperatorKind::WilsonClover => {
                WILSON_DSLASH_FLOPS + CLOVER_FLOPS + 8.0 * self.recon.extra_flops()
            }
            // Fat links can't be compressed; recon is ignored for asqtad.
            OperatorKind::Asqtad => ASQTAD_DSLASH_FLOPS,
        }
    }

    /// Device-memory bytes per site of one dslash application
    /// (links + neighbour spinors read, result written). Half precision
    /// pays an extra 4-byte `f32` norm per site-object touched (the
    /// per-site normalization of the fixed-point format).
    pub fn bytes_per_site(&self) -> f64 {
        let b = self.precision.bytes();
        let norm = if self.precision == Precision::Half { 4.0 } else { 0.0 };
        match self.kind {
            OperatorKind::Wilson => {
                8.0 * self.recon.reals() * b + 8.0 * (24.0 * b + norm) + 24.0 * b + norm
            }
            OperatorKind::WilsonClover => {
                8.0 * self.recon.reals() * b
                    + 8.0 * (24.0 * b + norm)
                    + 24.0 * b
                    + norm
                    + 72.0 * b
                    + norm
            }
            OperatorKind::Asqtad => {
                // 8 fat + 8 long links (18 reals each), 16 neighbour color
                // vectors, one write.
                16.0 * 18.0 * b + 16.0 * (6.0 * b + norm) + 6.0 * b + norm
            }
        }
    }

    /// Ghost bytes per face site per direction actually shipped: Wilson
    /// ships projected *half* spinors (12 reals), staggered full color
    /// vectors (6 reals).
    pub fn ghost_reals_per_site(&self) -> f64 {
        match self.kind {
            OperatorKind::Wilson | OperatorKind::WilsonClover => 12.0,
            OperatorKind::Asqtad => 6.0,
        }
    }

    /// Stencil depth (ghost layers).
    pub fn depth(&self) -> usize {
        match self.kind {
            OperatorKind::Wilson | OperatorKind::WilsonClover => 1,
            OperatorKind::Asqtad => 3,
        }
    }

    /// Ghost-zone bytes for one (dimension, direction) message of one
    /// parity, computed from the real geometry.
    pub fn ghost_bytes(&self, sub: &SubLattice, mu: usize) -> f64 {
        let face_cb = sub.face_vol_cb(mu) as f64;
        face_cb * self.depth() as f64 * self.ghost_site_bytes()
    }

    /// Wire bytes per ghost site (including the half-precision norm).
    pub fn ghost_site_bytes(&self) -> f64 {
        let norm = if self.precision == Precision::Half { 4.0 } else { 0.0 };
        self.ghost_reals_per_site() * self.precision.bytes() + norm
    }

    /// Per-site reals of the solution vector (BLAS costing).
    pub fn spinor_reals(&self) -> f64 {
        match self.kind {
            OperatorKind::Wilson | OperatorKind::WilsonClover => 24.0,
            OperatorKind::Asqtad => 6.0,
        }
    }
}

/// Geometry summary the stream simulator needs, extracted from the real
/// partitioning code.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PartitionGeometry {
    /// Checkerboard body volume per rank.
    pub vol_cb: usize,
    /// Per-dimension partitioned flag.
    pub partitioned: [bool; NDIM],
    /// Per-dimension checkerboard face volume.
    pub face_vol_cb: [usize; NDIM],
    /// Total number of ranks.
    pub ranks: usize,
}

impl PartitionGeometry {
    /// Extract from a process grid (rank 0's subvolume — all ranks are
    /// congruent).
    pub fn of(grid: &ProcessGrid) -> Self {
        let sub = SubLattice::for_rank(grid, 0);
        let mut face_vol_cb = [0usize; NDIM];
        for (mu, f) in face_vol_cb.iter_mut().enumerate() {
            *f = sub.face_vol_cb(mu);
        }
        PartitionGeometry {
            vol_cb: sub.volume_cb(),
            partitioned: sub.partitioned,
            face_vol_cb,
            ranks: grid.num_ranks(),
        }
    }

    /// Number of partitioned dimensions.
    pub fn num_partitioned(&self) -> usize {
        self.partitioned.iter().filter(|&&p| p).count()
    }

    /// Checkerboard surface sites (sum over partitioned faces × depth).
    pub fn surface_cb(&self, depth: usize) -> usize {
        (0..NDIM)
            .filter(|&mu| self.partitioned[mu])
            .map(|mu| 2 * depth * self.face_vol_cb[mu])
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqcd_lattice::{Dims, PartitionScheme};

    #[test]
    fn precision_and_recon_tables() {
        assert_eq!(Precision::Double.bytes(), 8.0);
        assert_eq!(Precision::Half.bytes(), 2.0);
        assert_eq!(Recon::Twelve.reals(), 12.0);
        assert!(Recon::Eight.extra_flops() > Recon::Twelve.extra_flops());
    }

    #[test]
    fn compression_cuts_bytes_adds_flops() {
        let full = OpConfig {
            kind: OperatorKind::WilsonClover,
            precision: Precision::Single,
            recon: Recon::None,
        };
        let r12 = OpConfig { recon: Recon::Twelve, ..full };
        assert!(r12.bytes_per_site() < full.bytes_per_site());
        assert!(r12.flops_per_site() > full.flops_per_site());
        // 12-recon saves 8 links × 6 reals × 4 B = 192 B/site.
        assert!((full.bytes_per_site() - r12.bytes_per_site() - 192.0).abs() < 1e-9);
    }

    #[test]
    fn asqtad_is_three_deep_and_uncompressed() {
        let cfg = OpConfig {
            kind: OperatorKind::Asqtad,
            precision: Precision::Double,
            recon: Recon::None,
        };
        assert_eq!(cfg.depth(), 3);
        // Ghost traffic on the paper's 64³×192 volume, ZT split over 64.
        let grid = PartitionScheme::ZT.grid(Dims::symm(64, 192), 64).unwrap();
        let sub = SubLattice::for_rank(&grid, 0);
        let mu = 3;
        let want = sub.face_vol_cb(mu) as f64 * 3.0 * 6.0 * 8.0;
        assert_eq!(cfg.ghost_bytes(&sub, mu), want);
    }

    #[test]
    fn arithmetic_intensity_is_below_one_flop_per_byte() {
        // "approximately 1 byte/flop in single precision" (§1).
        let cfg = OpConfig {
            kind: OperatorKind::Wilson,
            precision: Precision::Single,
            recon: Recon::None,
        };
        let intensity = cfg.flops_per_site() / cfg.bytes_per_site();
        assert!((0.7..1.3).contains(&intensity), "intensity {intensity}");
    }

    #[test]
    fn geometry_extraction_matches_lattice_code() {
        let grid = PartitionScheme::XYZT.grid(Dims::symm(32, 256), 256).unwrap();
        let geo = PartitionGeometry::of(&grid);
        assert_eq!(geo.ranks, 256);
        assert_eq!(geo.vol_cb * 2 * 256, 32 * 32 * 32 * 256);
        assert_eq!(geo.num_partitioned(), grid.num_partitioned());
    }
}

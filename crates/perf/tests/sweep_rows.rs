//! Contracts of the sweep row types and the capability machine models:
//! the JSON the figure bins emit round-trips field-for-field through
//! the serde shims, and the CPU machine models degrade monotonically
//! (per-core rate non-increasing) under strong scaling.

use lqcd_perf::capability::{bgp, sustained_tflops, xt4, xt5};
use lqcd_perf::sweep::{CapabilityPoint, SolverPoint, ThroughputPoint};
use serde::Serialize;
use serde_json::{from_str, Value};

fn json_of<T: Serialize>(v: &T) -> Value {
    from_str(&serde_json::to_string(v).unwrap()).unwrap()
}

#[test]
fn throughput_point_round_trips_through_json() {
    let p = ThroughputPoint {
        gpus: 256,
        scheme: "XYZT".into(),
        precision: "HP".into(),
        gflops_per_gpu: 27.125,
        total_tflops: 6.944,
    };
    let v = json_of(&p);
    assert_eq!(v.get("gpus").and_then(Value::as_i64), Some(256));
    assert_eq!(v.get("scheme").and_then(Value::as_str), Some("XYZT"));
    assert_eq!(v.get("precision").and_then(Value::as_str), Some("HP"));
    // f64 fields survive bit-exactly (shortest-round-trip float text).
    assert_eq!(v.get("gflops_per_gpu").and_then(Value::as_f64), Some(27.125));
    assert_eq!(
        v.get("total_tflops").and_then(Value::as_f64).map(f64::to_bits),
        Some(6.944f64.to_bits())
    );
}

#[test]
fn solver_point_round_trips_through_json() {
    let p = SolverPoint {
        gpus: 128,
        solver: "GCR-DD".into(),
        tflops: 10.5,
        time_to_solution: 3.9,
        iterations: 412.0,
    };
    let v = json_of(&p);
    assert_eq!(v.get("gpus").and_then(Value::as_i64), Some(128));
    assert_eq!(v.get("solver").and_then(Value::as_str), Some("GCR-DD"));
    assert_eq!(v.get("tflops").and_then(Value::as_f64), Some(10.5));
    assert_eq!(
        v.get("time_to_solution").and_then(Value::as_f64).map(f64::to_bits),
        Some(3.9f64.to_bits())
    );
    assert_eq!(v.get("iterations").and_then(Value::as_f64), Some(412.0));
}

#[test]
fn capability_point_round_trips_through_json() {
    let p = CapabilityPoint {
        machine: "Intrepid BG/P".into(),
        solver: "BiCGStab DP".into(),
        cores: 16384,
        tflops: 0.731,
    };
    let v = json_of(&p);
    assert_eq!(v.get("machine").and_then(Value::as_str), Some("Intrepid BG/P"));
    assert_eq!(v.get("solver").and_then(Value::as_str), Some("BiCGStab DP"));
    assert_eq!(v.get("cores").and_then(Value::as_i64), Some(16384));
    assert_eq!(v.get("tflops").and_then(Value::as_f64).map(f64::to_bits), Some(0.731f64.to_bits()));
}

#[test]
fn a_vec_of_rows_serializes_as_a_json_array() {
    let rows = vec![
        ThroughputPoint {
            gpus: 8,
            scheme: "T".into(),
            precision: "SP".into(),
            gflops_per_gpu: 128.0,
            total_tflops: 1.024,
        },
        ThroughputPoint {
            gpus: 16,
            scheme: "ZT".into(),
            precision: "SP".into(),
            gflops_per_gpu: 120.0,
            total_tflops: 1.92,
        },
    ];
    let v = json_of(&rows);
    let arr = v.as_array().expect("array form");
    assert_eq!(arr.len(), 2);
    assert_eq!(arr[1].get("scheme").and_then(Value::as_str), Some("ZT"));
}

/// Strong scaling can never *improve* the per-core rate: at fixed
/// volume, more cores mean smaller blocks and a worse surface-to-volume
/// ratio, so `sustained_tflops(m, cores, vol) / cores` must be
/// non-increasing in `cores` for every machine model.
#[test]
fn machine_models_degrade_per_core_under_strong_scaling() {
    let volume = (32usize * 32 * 32 * 256) as f64;
    for m in [xt4(), xt5(), bgp()] {
        let mut prev = f64::INFINITY;
        for cores in [512usize, 1024, 2048, 4096, 8192, 16384, 32768, 65536] {
            let per_core = sustained_tflops(&m, cores, volume) / cores as f64;
            assert!(per_core > 0.0, "{}: non-positive rate at {cores} cores", m.name);
            assert!(
                per_core <= prev * (1.0 + 1e-12),
                "{}: per-core rate rose {prev:.3e} -> {per_core:.3e} at {cores} cores",
                m.name
            );
            prev = per_core;
        }
        // And the aggregate still grows somewhere: scaling is degraded,
        // not inverted, at the small end.
        assert!(sustained_tflops(&m, 1024, volume) > sustained_tflops(&m, 512, volume));
    }
}

//! Property-based tests of the BLAS-1 layer: vector-space axioms over
//! randomized fields and coefficients, at both working precisions.

use lqcd_field::{blas, LatticeField};
use lqcd_lattice::{Dims, FaceGeometry, Parity, SubLattice};
use lqcd_su3::{ColorVector, WilsonSpinor};
use lqcd_util::rng::SeedTree;
use lqcd_util::Complex;
use proptest::prelude::*;
use std::sync::Arc;

type F64 = LatticeField<f64, WilsonSpinor<f64>>;
type F32 = LatticeField<f32, ColorVector<f32>>;

fn field64(seed: u64) -> F64 {
    let sub = Arc::new(SubLattice::single(Dims([4, 4, 2, 2])).unwrap());
    let faces = FaceGeometry::new(&sub, 1).unwrap();
    let mut f = F64::zeros(sub, &faces, Parity::Even, 1);
    let t = SeedTree::new(seed);
    let mut rng = t.rng();
    f.fill(|_| WilsonSpinor::random(&mut rng));
    f
}

fn field32(seed: u64) -> F32 {
    let sub = Arc::new(SubLattice::single(Dims([4, 4, 2, 2])).unwrap());
    let faces = FaceGeometry::new(&sub, 1).unwrap();
    let mut f = F32::zeros(sub, &faces, Parity::Even, 0);
    let t = SeedTree::new(seed);
    let mut rng = t.rng();
    f.fill(|_| ColorVector::random(&mut rng));
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn axpy_is_linear_in_coefficient(seed in 0u64..1000, a in -3.0f64..3.0, b in -3.0f64..3.0) {
        let x = field64(seed);
        let y0 = field64(seed + 1);
        // (a+b)·x + y == a·x + (b·x + y)
        let mut lhs = y0.clone();
        blas::axpy(a + b, &x, &mut lhs);
        let mut rhs = y0.clone();
        blas::axpy(b, &x, &mut rhs);
        blas::axpy(a, &x, &mut rhs);
        prop_assert!(blas::max_abs_diff(&lhs, &rhs) < 1e-12);
    }

    #[test]
    fn dot_is_conjugate_symmetric_and_positive(seed in 0u64..1000) {
        let x = field64(seed);
        let y = field64(seed + 7);
        let xy = blas::cdot_local(&x, &y);
        let yx = blas::cdot_local(&y, &x);
        prop_assert!((xy - yx.conj()).abs() < 1e-9 * (1.0 + xy.abs()));
        let xx = blas::cdot_local(&x, &x);
        prop_assert!(xx.re >= 0.0 && xx.im.abs() < 1e-9 * (1.0 + xx.re));
        prop_assert!((xx.re - blas::norm2_local(&x)).abs() < 1e-9 * (1.0 + xx.re));
    }

    #[test]
    fn cauchy_schwarz(seed in 0u64..1000) {
        let x = field64(seed);
        let y = field64(seed + 13);
        let dot = blas::cdot_local(&x, &y).abs();
        let bound = (blas::norm2_local(&x) * blas::norm2_local(&y)).sqrt();
        prop_assert!(dot <= bound * (1.0 + 1e-12));
    }

    #[test]
    fn caxpy_respects_complex_scaling(seed in 0u64..1000, re in -2.0f64..2.0, im in -2.0f64..2.0) {
        let x = field64(seed);
        let y0 = field64(seed + 3);
        let a = Complex::new(re, im);
        // ⟨w, y + a·x⟩ = ⟨w, y⟩ + a⟨w, x⟩
        let w = field64(seed + 5);
        let mut y = y0.clone();
        blas::caxpy(a, &x, &mut y);
        let lhs = blas::cdot_local(&w, &y);
        let rhs = blas::cdot_local(&w, &y0) + blas::cdot_local(&w, &x) * a;
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + lhs.abs()));
    }

    #[test]
    fn triangle_inequality_of_diff_norm(seed in 0u64..1000) {
        let x = field64(seed);
        let y = field64(seed + 17);
        let z = field64(seed + 23);
        let d = |a: &F64, b: &F64| blas::diff_norm2_local(a, b).sqrt();
        prop_assert!(d(&x, &z) <= d(&x, &y) + d(&y, &z) + 1e-9);
        prop_assert!((d(&x, &y) - d(&y, &x)).abs() < 1e-12);
    }

    #[test]
    fn f32_reductions_match_f64_recomputation(seed in 0u64..1000) {
        // The f64-accumulated reduction over an f32 field equals summing
        // the widened components directly.
        let x = field32(seed);
        let manual: f64 = x.body().iter().map(|&v| (v as f64) * (v as f64)).sum();
        prop_assert!((blas::norm2_local(&x) - manual).abs() < 1e-9 * (1.0 + manual));
    }

    #[test]
    fn scale_and_norm_are_consistent(seed in 0u64..1000, a in -4.0f64..4.0) {
        let mut x = field64(seed);
        let n0 = blas::norm2_local(&x);
        blas::scale(&mut x, a);
        let n1 = blas::norm2_local(&x);
        prop_assert!((n1 - a * a * n0).abs() < 1e-9 * (1.0 + n1));
    }
}

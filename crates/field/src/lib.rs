//! Lattice field containers with the QUDA memory layout.
//!
//! A field lives on one parity (checkerboard) of a rank's subvolume, in a
//! single contiguous allocation laid out as the paper's Figs. 2 and 3
//! describe: the local body first, then an adjustable padding region, then
//! one ghost zone per partitioned dimension and direction:
//!
//! ```text
//! [ body: Vh sites ][ pad ][ ghost X− ][ ghost X+ ][ ghost Y− ] ...
//! ```
//!
//! BLAS-1 kernels and reductions stride over the body only — placing the
//! ghosts *after* the body is exactly what makes that possible (paper
//! §6.1: "Ghost zones for the spinor field are placed in memory after the
//! local spinor field so that BLAS-like routines, including global
//! reductions, may be carried out efficiently").
//!
//! * [`SiteObject`] — trait tying a typed per-site object (spinor, color
//!   vector, link matrix, clover term) to its flat real-number encoding;
//! * [`FieldLayout`] — offsets of body/pad/ghosts for a subvolume;
//! * [`LatticeField`] — the container, with typed site access, ghost
//!   access, and the BLAS-1 surface the solvers use;
//! * [`blas`] — free-standing fused kernels (axpy/caxpy/dot/norm²/...)
//!   including the multi-shift update kernels;
//! * [`half`] — whole-field 16-bit fixed-point encode/decode used by the
//!   mixed-precision solvers;
//! * [`snapshot`] — versioned, checksummed, bit-exact binary snapshots of
//!   field bodies (all three precisions) for checkpoint/restart.

pub mod blas;
pub mod field;
pub mod half;
pub mod layout;
pub mod site;
pub mod snapshot;

pub use field::{BodyView, CastSite, CastSiteAny, GhostZonesMut, LatticeField};
pub use half::HalfField;
pub use layout::FieldLayout;
pub use site::SiteObject;
pub use snapshot::{decode_field_into, decode_half, encode_field, encode_half, SnapshotReal};

//! Offsets of body, pad, and ghost zones within one field allocation.

use lqcd_lattice::{FaceGeometry, SubLattice, NDIM};

/// Memory layout of one parity field (paper Figs. 2–3).
///
/// All offsets are in *sites*; multiply by the site's real count to get
/// scalar offsets. Ghost zones exist only for partitioned dimensions —
/// "allocation of ghost zones and data exchange in a given dimension only
/// takes place when that dimension is partitioned, so as to ensure that
/// GPU memory ... [is] not wasted" (§6.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldLayout {
    /// Sites in the body (`Vh`).
    pub body_sites: usize,
    /// Pad region, in sites (tunable; reduces partition camping on the
    /// hardware the paper targets — kept for layout fidelity).
    pub pad_sites: usize,
    /// Site offset of each ghost zone: `ghost_offset[mu][dir]`, with
    /// `dir = 0` for the backward (−µ) ghost and `1` for forward (+µ).
    /// `usize::MAX` marks an absent zone (unpartitioned dimension).
    pub ghost_offset: [[usize; 2]; NDIM],
    /// Sites per ghost zone (`depth × face_vol_cb`), zero when absent.
    pub ghost_sites: [usize; NDIM],
    /// Total allocation size in sites.
    pub total_sites: usize,
}

impl FieldLayout {
    /// Compute the layout for one parity of `sub` at stencil `depth`,
    /// with `pad_sites` of padding between body and ghosts.
    pub fn new(sub: &SubLattice, faces: &FaceGeometry, pad_sites: usize) -> Self {
        let body = sub.volume_cb();
        let mut ghost_offset = [[usize::MAX; 2]; NDIM];
        let mut ghost_sites = [0usize; NDIM];
        let mut cursor = body + pad_sites;
        for mu in 0..NDIM {
            if !sub.partitioned[mu] {
                continue;
            }
            let n = faces.ghost_sites(mu);
            ghost_sites[mu] = n;
            ghost_offset[mu][0] = cursor;
            cursor += n;
            ghost_offset[mu][1] = cursor;
            cursor += n;
        }
        FieldLayout { body_sites: body, pad_sites, ghost_offset, ghost_sites, total_sites: cursor }
    }

    /// Site offset of the ghost zone for `(mu, forward)`.
    ///
    /// # Panics
    /// Panics if the dimension has no ghost zone (callers must only hop
    /// into ghosts of partitioned dimensions — the geometry layer
    /// guarantees this for stencil-generated accesses).
    #[inline(always)]
    pub fn ghost_base(&self, mu: usize, forward: bool) -> usize {
        let off = self.ghost_offset[mu][forward as usize];
        assert!(off != usize::MAX, "no ghost zone for dimension {mu}");
        off
    }

    /// Whether dimension `mu` has ghost zones.
    #[inline]
    pub fn has_ghost(&self, mu: usize) -> bool {
        self.ghost_sites[mu] > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqcd_lattice::{Dims, ProcessGrid};

    fn layout_for(grid: &ProcessGrid, depth: usize, pad: usize) -> (SubLattice, FieldLayout) {
        let sub = SubLattice::for_rank(grid, 0);
        let faces = FaceGeometry::new(&sub, depth).unwrap();
        let l = FieldLayout::new(&sub, &faces, pad);
        (sub, l)
    }

    #[test]
    fn unpartitioned_field_is_body_plus_pad_only() {
        let grid = ProcessGrid::new(Dims([1, 1, 1, 1]), Dims([4, 4, 4, 8])).unwrap();
        let (sub, l) = layout_for(&grid, 1, 16);
        assert_eq!(l.body_sites, sub.volume_cb());
        assert_eq!(l.total_sites, sub.volume_cb() + 16);
        assert!((0..4).all(|mu| !l.has_ghost(mu)));
    }

    #[test]
    fn ghosts_follow_body_and_pad_in_order() {
        // Partition Z and T; Wilson depth.
        let grid = ProcessGrid::new(Dims([1, 1, 2, 2]), Dims([4, 4, 8, 8])).unwrap();
        let (sub, l) = layout_for(&grid, 1, 8);
        let body = sub.volume_cb();
        let fz = sub.face_vol_cb(2);
        let ft = sub.face_vol_cb(3);
        assert_eq!(l.ghost_base(2, false), body + 8);
        assert_eq!(l.ghost_base(2, true), body + 8 + fz);
        assert_eq!(l.ghost_base(3, false), body + 8 + 2 * fz);
        assert_eq!(l.ghost_base(3, true), body + 8 + 2 * fz + ft);
        assert_eq!(l.total_sites, body + 8 + 2 * fz + 2 * ft);
        assert!(!l.has_ghost(0) && !l.has_ghost(1));
    }

    #[test]
    fn naik_depth_triples_ghosts() {
        let grid = ProcessGrid::new(Dims([1, 1, 1, 4]), Dims([4, 4, 4, 16])).unwrap();
        let (sub, l1) = layout_for(&grid, 1, 0);
        let faces3 = FaceGeometry::new(&sub, 3).unwrap();
        let l3 = FieldLayout::new(&sub, &faces3, 0);
        assert_eq!(l3.ghost_sites[3], 3 * l1.ghost_sites[3]);
    }

    #[test]
    #[should_panic(expected = "no ghost zone")]
    fn ghost_base_panics_for_unpartitioned() {
        let grid = ProcessGrid::new(Dims([1, 1, 1, 2]), Dims([4, 4, 4, 8])).unwrap();
        let (_, l) = layout_for(&grid, 1, 0);
        let _ = l.ghost_base(0, true);
    }
}

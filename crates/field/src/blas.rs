//! BLAS-1 kernels over field bodies.
//!
//! These are the "BLAS-like routines" of paper §6.1, striding over the
//! body of the allocation only. All reductions accumulate in `f64`
//! regardless of storage precision — the solvers' convergence logic relies
//! on accurate inner products even when fields are single or half
//! precision (QUDA likewise reduces in double).
//!
//! Reductions return the *local* (per-rank) partial; distributed callers
//! combine partials with an allreduce through `lqcd-comms`.

use crate::field::LatticeField;
use crate::site::SiteObject;
use lqcd_util::{Complex, Real};

/// `y = 0`.
pub fn zero<R: Real, S: SiteObject<R>>(y: &mut LatticeField<R, S>) {
    for v in y.body_mut() {
        *v = R::ZERO;
    }
}

/// `y = x`.
pub fn copy<R: Real, S: SiteObject<R>>(y: &mut LatticeField<R, S>, x: &LatticeField<R, S>) {
    y.check_compatible(x).expect("copy: incompatible fields");
    y.body_mut().copy_from_slice(x.body());
}

/// `y *= a`.
pub fn scale<R: Real, S: SiteObject<R>>(y: &mut LatticeField<R, S>, a: R) {
    for v in y.body_mut() {
        *v *= a;
    }
}

/// `y += a·x` (real coefficient).
pub fn axpy<R: Real, S: SiteObject<R>>(a: R, x: &LatticeField<R, S>, y: &mut LatticeField<R, S>) {
    y.check_compatible(x).expect("axpy: incompatible fields");
    for (yv, xv) in y.body_mut().iter_mut().zip(x.body()) {
        *yv += a * *xv;
    }
}

/// `y = x + a·y`.
pub fn xpay<R: Real, S: SiteObject<R>>(x: &LatticeField<R, S>, a: R, y: &mut LatticeField<R, S>) {
    y.check_compatible(x).expect("xpay: incompatible fields");
    for (yv, xv) in y.body_mut().iter_mut().zip(x.body()) {
        *yv = *xv + a * *yv;
    }
}

/// `y = a·x + b·y`.
pub fn axpby<R: Real, S: SiteObject<R>>(
    a: R,
    x: &LatticeField<R, S>,
    b: R,
    y: &mut LatticeField<R, S>,
) {
    y.check_compatible(x).expect("axpby: incompatible fields");
    for (yv, xv) in y.body_mut().iter_mut().zip(x.body()) {
        *yv = a * *xv + b * *yv;
    }
}

/// `y += a·x` with a complex coefficient (fields are interleaved re/im, so
/// sites are processed as complex pairs).
pub fn caxpy<R: Real, S: SiteObject<R>>(
    a: Complex<R>,
    x: &LatticeField<R, S>,
    y: &mut LatticeField<R, S>,
) {
    y.check_compatible(x).expect("caxpy: incompatible fields");
    let yb = y.body_mut();
    let xb = x.body();
    for k in (0..xb.len()).step_by(2) {
        let xr = xb[k];
        let xi = xb[k + 1];
        yb[k] += a.re * xr - a.im * xi;
        yb[k + 1] += a.re * xi + a.im * xr;
    }
}

/// `y = x + a·y` with complex `a`.
pub fn cxpay<R: Real, S: SiteObject<R>>(
    x: &LatticeField<R, S>,
    a: Complex<R>,
    y: &mut LatticeField<R, S>,
) {
    y.check_compatible(x).expect("cxpay: incompatible fields");
    let yb = y.body_mut();
    let xb = x.body();
    for k in (0..xb.len()).step_by(2) {
        let yr = yb[k];
        let yi = yb[k + 1];
        yb[k] = xb[k] + a.re * yr - a.im * yi;
        yb[k + 1] = xb[k + 1] + a.re * yi + a.im * yr;
    }
}

/// Local partial of `⟨x, y⟩` (conjugate-linear in `x`), accumulated in
/// `f64`.
pub fn cdot_local<R: Real, S: SiteObject<R>>(
    x: &LatticeField<R, S>,
    y: &LatticeField<R, S>,
) -> Complex<f64> {
    x.check_compatible(y).expect("cdot: incompatible fields");
    let xb = x.body();
    let yb = y.body();
    let mut re = 0.0f64;
    let mut im = 0.0f64;
    for k in (0..xb.len()).step_by(2) {
        let xr = xb[k].to_f64();
        let xi = xb[k + 1].to_f64();
        let yr = yb[k].to_f64();
        let yi = yb[k + 1].to_f64();
        re += xr * yr + xi * yi;
        im += xr * yi - xi * yr;
    }
    Complex::new(re, im)
}

/// Local partial of `‖x‖²`, accumulated in `f64`.
pub fn norm2_local<R: Real, S: SiteObject<R>>(x: &LatticeField<R, S>) -> f64 {
    x.body().iter().map(|v| v.to_f64() * v.to_f64()).sum()
}

/// Local partial of `‖x − y‖²` without forming the difference.
pub fn diff_norm2_local<R: Real, S: SiteObject<R>>(
    x: &LatticeField<R, S>,
    y: &LatticeField<R, S>,
) -> f64 {
    x.check_compatible(y).expect("diff_norm2: incompatible fields");
    x.body()
        .iter()
        .zip(y.body())
        .map(|(a, b)| {
            let d = a.to_f64() - b.to_f64();
            d * d
        })
        .sum()
}

/// Maximum absolute component difference (debug/verification aid).
pub fn max_abs_diff<R: Real, S: SiteObject<R>>(
    x: &LatticeField<R, S>,
    y: &LatticeField<R, S>,
) -> f64 {
    x.body().iter().zip(y.body()).map(|(a, b)| (a.to_f64() - b.to_f64()).abs()).fold(0.0, f64::max)
}

/// Fused multi-shift CG update: `z = x + b·z; x += a·p` is *not* what we
/// need — the shifted-system update is `x_σ += a_σ·p_σ; p_σ = z + b_σ·p_σ`
/// per shift. This fuses the per-shift vector update to one pass.
pub fn shift_update<R: Real, S: SiteObject<R>>(
    a: R,
    b: R,
    z: &LatticeField<R, S>,
    x: &mut LatticeField<R, S>,
    p: &mut LatticeField<R, S>,
) {
    x.check_compatible(z).expect("shift_update: incompatible fields");
    p.check_compatible(z).expect("shift_update: incompatible fields");
    let xb = x.body_mut();
    let pb = p.body_mut();
    let zb = z.body();
    for k in 0..zb.len() {
        xb[k] += a * pb[k];
        pb[k] = zb[k] + b * pb[k];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lqcd_lattice::{Dims, FaceGeometry, Parity, SubLattice};
    use lqcd_su3::ColorVector;
    use lqcd_util::rng::SeedTree;
    use std::sync::Arc;

    type F = LatticeField<f64, ColorVector<f64>>;

    fn rand_field(seed: u64) -> F {
        let sub = Arc::new(SubLattice::single(Dims([4, 4, 4, 4])).unwrap());
        let faces = FaceGeometry::new(&sub, 1).unwrap();
        let mut f = F::zeros(sub, &faces, Parity::Even, 2);
        let t = SeedTree::new(seed);
        let mut rng = t.rng();
        f.fill(|_| ColorVector::random(&mut rng));
        f
    }

    #[test]
    fn axpy_family_consistency() {
        let x = rand_field(1);
        let mut y1 = rand_field(2);
        let mut y2 = y1.clone();
        // xpay(x, a, y) == y_new = x + a*y
        xpay(&x, 0.5, &mut y1);
        // Same through axpby.
        axpby(1.0, &x, 0.5, &mut y2);
        assert!(max_abs_diff(&y1, &y2) < 1e-15);
    }

    #[test]
    fn caxpy_matches_complex_sitewise() {
        let x = rand_field(3);
        let mut y = rand_field(4);
        let yref = y.clone();
        let a = Complex::new(0.3, -0.8);
        caxpy(a, &x, &mut y);
        for idx in 0..x.num_sites() {
            let want = yref.site(idx).add(&x.site(idx).scale_c(a));
            assert!(y.site(idx).sub(&want).norm_sqr() < 1e-24);
        }
    }

    #[test]
    fn cxpay_matches_definition() {
        let x = rand_field(5);
        let mut y = rand_field(6);
        let yref = y.clone();
        let a = Complex::new(-1.1, 0.4);
        cxpay(&x, a, &mut y);
        for idx in 0..x.num_sites() {
            let want = x.site(idx).add(&yref.site(idx).scale_c(a));
            assert!(y.site(idx).sub(&want).norm_sqr() < 1e-24);
        }
    }

    #[test]
    fn dot_and_norm_agree() {
        let x = rand_field(7);
        let d = cdot_local(&x, &x);
        assert!((d.re - norm2_local(&x)).abs() < 1e-9);
        assert!(d.im.abs() < 1e-9);
        let y = rand_field(8);
        // ⟨x,y⟩ = conj(⟨y,x⟩)
        let xy = cdot_local(&x, &y);
        let yx = cdot_local(&y, &x);
        assert!((xy - yx.conj()).abs() < 1e-9);
    }

    #[test]
    fn diff_norm2_matches_manual() {
        let x = rand_field(9);
        let mut y = x.clone();
        scale(&mut y, 0.9);
        let mut z = x.clone();
        axpy(-1.0, &y, &mut z); // z = x - y
        assert!((diff_norm2_local(&x, &y) - norm2_local(&z)).abs() < 1e-9);
    }

    #[test]
    fn shift_update_fused_matches_unfused() {
        let z = rand_field(10);
        let mut x1 = rand_field(11);
        let mut p1 = rand_field(12);
        let mut x2 = x1.clone();
        let mut p2 = p1.clone();
        let (a, b) = (0.7, -0.2);
        shift_update(a, b, &z, &mut x1, &mut p1);
        // Unfused: x += a p; p = z + b p.
        axpy(a, &p2, &mut x2);
        xpay(&z, b, &mut p2);
        assert!(max_abs_diff(&x1, &x2) < 1e-15);
        assert!(max_abs_diff(&p1, &p2) < 1e-15);
    }

    #[test]
    fn zero_and_copy() {
        let x = rand_field(13);
        let mut y = rand_field(14);
        copy(&mut y, &x);
        assert!(max_abs_diff(&x, &y) == 0.0);
        zero(&mut y);
        assert_eq!(norm2_local(&y), 0.0);
    }

    #[test]
    fn reductions_accumulate_in_f64_for_f32_fields() {
        // A sum that would lose precision in f32 accumulation.
        let sub = Arc::new(SubLattice::single(Dims([8, 8, 8, 8])).unwrap());
        let faces = FaceGeometry::new(&sub, 1).unwrap();
        let mut f: LatticeField<f32, ColorVector<f32>> =
            LatticeField::zeros(sub, &faces, Parity::Even, 0);
        f.fill(|_| ColorVector::from_fn(|_| Complex::new(1.0f32 + 1e-4, 0.0)));
        let n = f.num_sites() as f64 * 3.0;
        let want = n * (1.0 + 1_f64).powi(2);
        // f32 accumulation would drift by far more than this bound.
        let got = norm2_local(&f);
        let per_term = (1.0f32 + 1e-4).to_f64() * (1.0f32 + 1e-4).to_f64();
        assert!((got - n * per_term).abs() < 1e-6, "got {got}, want ≈ {want}");
    }
}

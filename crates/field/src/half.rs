//! Whole-field 16-bit fixed-point storage.
//!
//! The paper's mixed-precision solvers keep the Krylov space and the
//! preconditioner fields in "half" precision (§8.1: "the Krylov space is
//! built up in low precision"). On the GPU that is a storage format:
//! values live as 16-bit fixed point in memory and are expanded to `f32`
//! in registers. We reproduce the same semantics: [`HalfField`] is the
//! storage form (one `f32` norm + `REALS` 16-bit mantissas per site);
//! computation happens on a decoded `f32` [`LatticeField`], and every
//! store back through [`HalfField::encode_from`] re-quantizes — which is
//! exactly where half precision loses information on the GPU too.

use crate::field::LatticeField;
use crate::site::SiteObject;
use lqcd_util::half::{decode_block, encode_block};
use lqcd_util::Fixed16;
use std::marker::PhantomData;

/// A body-only field stored in per-site-normalized 16-bit fixed point.
#[derive(Clone, Debug)]
pub struct HalfField<S> {
    mantissas: Vec<Fixed16>,
    norms: Vec<f32>,
    sites: usize,
    reals_per_site: usize,
    _site: PhantomData<S>,
}

impl<S: SiteObject<f32>> HalfField<S> {
    /// Encode the body of an `f32` field.
    pub fn encode(src: &LatticeField<f32, S>) -> Self {
        let sites = src.num_sites();
        let mut h = Self {
            mantissas: vec![Fixed16(0); sites * S::REALS],
            norms: vec![0.0; sites],
            sites,
            reals_per_site: S::REALS,
            _site: PhantomData,
        };
        h.encode_from(src);
        h
    }

    /// Re-encode from an `f32` field into this existing storage.
    pub fn encode_from(&mut self, src: &LatticeField<f32, S>) {
        assert_eq!(src.num_sites(), self.sites, "site count mismatch");
        let body = src.body();
        for i in 0..self.sites {
            let block = &body[i * S::REALS..(i + 1) * S::REALS];
            self.norms[i] =
                encode_block(block, &mut self.mantissas[i * S::REALS..(i + 1) * S::REALS]);
        }
    }

    /// Decode into an existing `f32` field's body (ghosts untouched).
    pub fn decode_into(&self, dst: &mut LatticeField<f32, S>) {
        assert_eq!(dst.num_sites(), self.sites, "site count mismatch");
        let body = dst.body_mut();
        for i in 0..self.sites {
            decode_block(
                &self.mantissas[i * S::REALS..(i + 1) * S::REALS],
                self.norms[i],
                &mut body[i * S::REALS..(i + 1) * S::REALS],
            );
        }
    }

    /// Number of body sites.
    pub fn num_sites(&self) -> usize {
        self.sites
    }

    /// Bytes this field occupies (2 per mantissa + 4 per site norm) —
    /// used by the performance model to price half-precision traffic.
    pub fn storage_bytes(&self) -> usize {
        self.mantissas.len() * 2 + self.norms.len() * 4
    }

    /// Number of reals per site (mirror of `S::REALS`).
    pub fn reals_per_site(&self) -> usize {
        self.reals_per_site
    }

    /// The per-site `f32` norms (storage view, used by snapshots).
    pub fn norms(&self) -> &[f32] {
        &self.norms
    }

    /// The 16-bit mantissas (storage view, used by snapshots).
    pub fn mantissas(&self) -> &[Fixed16] {
        &self.mantissas
    }

    /// Rebuild storage from its raw parts (the inverse of the snapshot
    /// views above). Errors on inconsistent lengths instead of panicking —
    /// the parts may come from untrusted on-disk data.
    pub fn from_parts(mantissas: Vec<Fixed16>, norms: Vec<f32>) -> lqcd_util::Result<Self> {
        if mantissas.len() != norms.len() * S::REALS {
            return Err(lqcd_util::Error::Shape(format!(
                "half-field parts disagree: {} mantissas for {} sites × {} reals/site",
                mantissas.len(),
                norms.len(),
                S::REALS
            )));
        }
        let sites = norms.len();
        Ok(Self { mantissas, norms, sites, reals_per_site: S::REALS, _site: PhantomData })
    }
}

/// Precision-dispatched in-place quantization: a no-op at double
/// precision, a 16-bit fixed-point round trip at single.
///
/// This is how the mixed-precision solvers express "this vector is
/// *stored* in half precision": every store boundary passes through
/// [`quantize_in_place`], reproducing exactly the information loss the
/// GPU's half-precision fields suffer.
pub trait Quantize<R: lqcd_util::Real>: SiteObject<R> {
    /// Quantize the body of `field` in place (ghosts untouched).
    fn quantize_in_place(field: &mut LatticeField<R, Self>)
    where
        Self: Sized;
}

impl<S: SiteObject<f64>> Quantize<f64> for S {
    fn quantize_in_place(_field: &mut LatticeField<f64, Self>) {}
}

impl<S: SiteObject<f32>> Quantize<f32> for S {
    fn quantize_in_place(field: &mut LatticeField<f32, Self>) {
        let body = field.body_mut();
        let mut mant = vec![Fixed16(0); S::REALS];
        for i in 0..body.len() / S::REALS {
            let block = &mut body[i * S::REALS..(i + 1) * S::REALS];
            let norm = encode_block(block, &mut mant);
            decode_block(&mant, norm, block);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas;
    use lqcd_lattice::{Dims, FaceGeometry, Parity, SubLattice};
    use lqcd_su3::WilsonSpinor;
    use lqcd_util::rng::SeedTree;
    use std::sync::Arc;

    type F32 = LatticeField<f32, WilsonSpinor<f32>>;

    fn rand_field(seed: u64) -> F32 {
        let sub = Arc::new(SubLattice::single(Dims([4, 4, 4, 4])).unwrap());
        let faces = FaceGeometry::new(&sub, 1).unwrap();
        let mut f = F32::zeros(sub, &faces, Parity::Even, 0);
        let t = SeedTree::new(seed);
        let mut rng = t.rng();
        f.fill(|_| WilsonSpinor::random(&mut rng));
        f
    }

    #[test]
    fn roundtrip_error_is_half_precision_sized() {
        let f = rand_field(1);
        let h = HalfField::encode(&f);
        let mut back = F32::zeros_like(&f);
        h.decode_into(&mut back);
        // Relative error per site bounded by ~2^-15 of the site norm.
        let rel = blas::diff_norm2_local(&f, &back).sqrt() / blas::norm2_local(&f).sqrt();
        assert!(rel < 1e-4, "relative error {rel} too large for 16-bit storage");
        assert!(rel > 1e-7, "relative error {rel} suspiciously small — not quantizing?");
    }

    #[test]
    fn encode_is_idempotent_after_one_quantization() {
        // decode(encode(x)) is a fixed point of encode∘decode.
        let f = rand_field(2);
        let h = HalfField::encode(&f);
        let mut once = F32::zeros_like(&f);
        h.decode_into(&mut once);
        let h2 = HalfField::encode(&once);
        let mut twice = F32::zeros_like(&f);
        h2.decode_into(&mut twice);
        let drift = blas::max_abs_diff(&once, &twice);
        // One extra round trip may wiggle by a quantization step at most.
        assert!(drift < 1e-3, "drift {drift}");
    }

    #[test]
    fn storage_is_half_of_f32() {
        let f = rand_field(3);
        let h = HalfField::encode(&f);
        let f32_bytes = f.num_sites() * 24 * 4;
        // 2 bytes per real + 4-byte norm per site.
        assert_eq!(h.storage_bytes(), f.num_sites() * 24 * 2 + f.num_sites() * 4);
        assert!(h.storage_bytes() < f32_bytes * 6 / 10);
        assert_eq!(h.reals_per_site(), 24);
    }

    #[test]
    fn zero_field_encodes_to_zero() {
        let sub = Arc::new(SubLattice::single(Dims([2, 2, 2, 2])).unwrap());
        let faces = FaceGeometry::new(&sub, 1).unwrap();
        let z = F32::zeros(sub, &faces, Parity::Even, 0);
        let h = HalfField::encode(&z);
        let mut back = F32::zeros_like(&z);
        h.decode_into(&mut back);
        assert_eq!(blas::norm2_local(&back), 0.0);
    }
}
